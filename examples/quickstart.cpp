// Quickstart: the end-to-end pipeline in one file.
//
//  1. Generate a small data lake of tables.
//  2. Render a line chart from one of them (this is the "published chart"
//     whose source we will pretend not to know).
//  3. Extract its visual elements from the pixels alone.
//  4. Train FCM on training triplets generated from the lake.
//  5. Search the lake for the top-k tables able to produce that chart.

#include <chrono>
#include <cstdio>

#include "baselines/fcm_method.h"
#include "benchgen/benchmark.h"
#include "core/training.h"
#include "eval/metrics.h"
#include "vision/classical_extractor.h"

int main() {
  using namespace fcm;

  // 1-2-3. BuildBenchmark does the corpus generation, chart rendering,
  // pixel-level extraction and ground-truth computation for us.
  benchgen::BenchmarkConfig config;
  config.num_training_tables = 30;
  config.num_query_tables = 6;
  config.extra_lake_tables = 60;
  config.duplicates_per_query = 5;
  config.ground_truth_k = 5;
  vision::ClassicalExtractor extractor;
  std::printf("building benchmark corpus ...\n");
  const benchgen::Benchmark bench = BuildBenchmark(config, extractor);
  std::printf("lake: %zu tables, %zu training triplets, %zu queries\n\n",
              bench.lake.size(), bench.training.size(),
              bench.queries.size());

  // 4. Train FCM.
  core::FcmConfig model_config;  // Paper defaults, CPU-scaled.
  core::TrainOptions train_options;
  train_options.epochs = 20;
  baselines::FcmMethod fcm(model_config, train_options);
  std::printf("training FCM (%d epochs) ...\n", train_options.epochs);
  const auto t0 = std::chrono::steady_clock::now();
  fcm.Fit(bench.lake, bench.training);
  std::printf("trained in %.1fs (%lld parameters)\n\n",
              std::chrono::duration<double>(
                  std::chrono::steady_clock::now() - t0)
                  .count(),
              static_cast<long long>(fcm.model()->NumParameters()));

  // 5. Use the first query chart to search the lake.
  const benchgen::QueryRecord& query = bench.queries.front();
  std::printf("query: %d-line chart, y range [%.2f, %.2f]%s\n",
              query.extracted.num_lines(), query.y_lo, query.y_hi,
              query.is_da ? " (rendered from aggregated data)" : "");

  std::vector<std::pair<double, table::TableId>> scored;
  for (const auto& t : bench.lake.tables()) {
    scored.emplace_back(fcm.Score(query, t), t.id());
  }
  std::sort(scored.rbegin(), scored.rend());

  std::printf("\ntop-5 tables by Rel'(V, T):\n");
  for (int i = 0; i < 5 && i < static_cast<int>(scored.size()); ++i) {
    const auto& t = bench.lake.Get(scored[static_cast<size_t>(i)].second);
    const bool relevant =
        std::find(query.relevant.begin(), query.relevant.end(), t.id()) !=
        query.relevant.end();
    std::printf("  %d. %-18s score=%.3f %s\n", i + 1, t.name().c_str(),
                scored[static_cast<size_t>(i)].first,
                relevant ? "[ground-truth relevant]" : "");
  }

  std::vector<table::TableId> ranked;
  for (const auto& [score, id] : scored) ranked.push_back(id);
  std::printf("\nprec@5 for this query: %.2f\n",
              eval::PrecisionAtK(ranked, query.relevant, 5));
  return 0;
}
