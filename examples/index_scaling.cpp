// Index scaling demo: how the hybrid interval-tree + LSH pipeline (paper
// Sec. VI) changes query latency and candidate counts as the data lake
// grows. Run after the quickstart to see why the paper bothers with
// indexing at 10k+ tables.

#include <cstdio>
#include <vector>

#include "benchgen/benchmark.h"
#include "benchgen/series_generator.h"
#include "core/fcm_model.h"
#include "core/training.h"
#include "index/search_engine.h"
#include "vision/classical_extractor.h"

int main() {
  using namespace fcm;

  // One trained model reused across lake sizes.
  benchgen::BenchmarkConfig config;
  config.num_training_tables = 24;
  config.num_query_tables = 4;
  config.extra_lake_tables = 20;
  config.duplicates_per_query = 4;
  config.ground_truth_k = 4;
  vision::ClassicalExtractor extractor;
  benchgen::Benchmark bench = BuildBenchmark(config, extractor);

  core::FcmConfig model_config;
  core::FcmModel model(model_config);
  core::TrainOptions train_options;
  train_options.epochs = 12;
  std::printf("training FCM once ...\n");
  core::TrainFcm(&model, bench.lake, bench.training, train_options);

  std::printf("\n%-10s %-10s %-14s %-14s %-12s\n", "lake size", "strategy",
              "query ms", "candidates", "speedup");
  common::Rng rng(99);
  for (const int extra : {0, 200, 600}) {
    // Grow the lake with additional background tables.
    for (int i = 0; i < extra; ++i) {
      table::Table t;
      for (int c = 0; c < 4; ++c) {
        t.AddColumn(table::Column(
            "c" + std::to_string(c),
            benchgen::GenerateSeries(benchgen::RandomFamily(&rng), 150,
                                     &rng)));
      }
      t.set_name("grown_" + std::to_string(extra) + "_" +
                 std::to_string(i));
      bench.lake.Add(std::move(t));
    }
    index::SearchEngine engine(&model, &bench.lake);
    engine.Build();

    double linear_ms = 0.0;
    for (const auto strategy : {index::IndexStrategy::kNoIndex,
                                index::IndexStrategy::kIntervalTree,
                                index::IndexStrategy::kHybrid}) {
      double total_ms = 0.0;
      size_t candidates = 0;
      for (const auto& q : bench.queries) {
        index::QueryStats stats;
        engine.Search(q.extracted, 5, strategy, &stats);
        total_ms += stats.seconds * 1000.0;
        candidates += stats.candidates_scored;
      }
      total_ms /= static_cast<double>(bench.queries.size());
      candidates /= bench.queries.size();
      if (strategy == index::IndexStrategy::kNoIndex) linear_ms = total_ms;
      std::printf("%-10zu %-10s %-14.1f %-14zu %.1fx\n", bench.lake.size(),
                  index::IndexStrategyName(strategy), total_ms, candidates,
                  linear_ms / std::max(total_ms, 1e-9));
    }
  }
  std::printf(
      "\nThe hybrid index's advantage grows with the lake — the paper "
      "reports 41x at 10k tables.\n");
  return 0;
}
