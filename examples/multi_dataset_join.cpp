// Multi-dataset discovery walkthrough (paper Sec. IX future work): a chart
// whose two lines were plotted from *different* tables joined on a shared
// x index. Whole-chart search can surface at most one of the sources;
// per-line assignment (core/multi_dataset.h) recovers the set.

#include <algorithm>
#include <cstdio>

#include "benchgen/futurework.h"
#include "core/multi_dataset.h"
#include "core/training.h"
#include "vision/classical_extractor.h"

using namespace fcm;

int main() {
  // Build a small lake with background tables, then add multi-dataset
  // queries (each contributes its two source tables to the lake).
  benchgen::BenchmarkConfig bench_config;
  bench_config.num_training_tables = 16;
  bench_config.num_query_tables = 0;
  bench_config.extra_lake_tables = 30;
  vision::ClassicalExtractor extractor;
  std::printf("building lake ...\n");
  benchgen::Benchmark bench = BuildBenchmark(bench_config, extractor);

  benchgen::FutureworkConfig ext_config;
  ext_config.num_queries = 4;
  const auto queries = benchgen::MakeMultiDatasetQueries(
      &bench, extractor, ext_config, /*num_sources=*/2);
  if (queries.empty()) {
    std::printf("no multi-dataset queries extracted\n");
    return 1;
  }
  std::printf("lake: %zu tables; %zu joined-line queries\n\n",
              bench.lake.size(), queries.size());

  // Train FCM briefly on the single-table triplets.
  core::FcmConfig model_config;
  core::FcmModel model(model_config);
  core::TrainOptions train_options;
  train_options.epochs = 8;
  std::printf("training FCM (%d epochs) ...\n\n", train_options.epochs);
  core::TrainFcm(&model, bench.lake, bench.training, train_options);

  for (const auto& q : queries) {
    std::printf("query with %d lines; true sources:", q.extracted.num_lines());
    for (const auto tid : q.source_tables) {
      std::printf(" %s", bench.lake.Get(tid).name().c_str());
    }
    std::printf("\n");

    core::MultiDatasetOptions options;
    options.per_line_k = 3;
    const auto result =
        core::DiscoverMultiDataset(model, q.extracted, bench.lake, options);
    for (const auto& line : result.per_line) {
      std::printf("  line %d ->", line.line_index);
      for (const auto& [score, tid] : line.ranked) {
        const bool hit =
            std::find(q.source_tables.begin(), q.source_tables.end(), tid) !=
            q.source_tables.end();
        std::printf(" %s(%.3f)%s", bench.lake.Get(tid).name().c_str(), score,
                    hit ? "*" : "");
      }
      std::printf("\n");
    }
    int recovered = 0;
    const size_t budget = q.source_tables.size();
    for (const auto tid : q.source_tables) {
      const auto end =
          result.tables.begin() +
          static_cast<long>(std::min(budget, result.tables.size()));
      if (std::find(result.tables.begin(), end, tid) != end) ++recovered;
    }
    std::printf("  recovered %d/%zu sources in a budget of %zu\n\n",
                recovered, q.source_tables.size(), budget);
  }
  std::printf("(* marks a true source table)\n");
  return 0;
}
