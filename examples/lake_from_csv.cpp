// Loading a data lake from CSV files on disk — the deployment path a
// downstream user takes: export tables as CSV, point the library at the
// directory, render/extract a chart, and search.

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "chart/chart_spec.h"
#include "chart/renderer.h"
#include "core/fcm_model.h"
#include "table/csv.h"
#include "table/data_lake.h"
#include "vision/classical_extractor.h"

using namespace fcm;

namespace {

/// Writes a small demo corpus of CSV files (in real use these already
/// exist).
std::vector<std::string> WriteDemoCsvs(const std::string& dir) {
  std::filesystem::create_directories(dir);
  std::vector<std::string> paths;
  auto write = [&](const std::string& name, const table::Table& t) {
    const std::string path = dir + "/" + name + ".csv";
    const auto status = table::SaveCsvFile(t, path);
    if (status.ok()) paths.push_back(path);
  };

  std::vector<double> month, revenue, cost, temperature, humidity;
  for (int i = 0; i < 48; ++i) {
    month.push_back(i + 1.0);
    revenue.push_back(100.0 + 8.0 * i + 25.0 * std::sin(0.5 * i));
    cost.push_back(80.0 + 5.0 * i);
    temperature.push_back(15.0 + 10.0 * std::sin(2.0 * M_PI * i / 12.0));
    humidity.push_back(60.0 + 20.0 * std::cos(2.0 * M_PI * i / 12.0));
  }
  write("finance", table::Table("finance", {{"month", month},
                                            {"revenue", revenue},
                                            {"cost", cost}}));
  write("weather", table::Table("weather", {{"month", month},
                                            {"temperature", temperature},
                                            {"humidity", humidity}}));
  return paths;
}

}  // namespace

int main() {
  const std::string dir = "/tmp/fcm_csv_lake";
  const auto paths = WriteDemoCsvs(dir);
  std::printf("wrote %zu demo CSV files under %s\n", paths.size(),
              dir.c_str());

  // Load every CSV in the directory into a DataLake.
  table::DataLake lake;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() != ".csv") continue;
    auto t = table::LoadCsvFile(entry.path().string(),
                                entry.path().stem().string());
    if (!t.ok()) {
      std::printf("skipping %s: %s\n", entry.path().c_str(),
                  t.status().message().c_str());
      continue;
    }
    const auto id = lake.Add(std::move(t).ValueOrDie());
    std::printf("loaded %s as table %lld (%zu columns x %zu rows)\n",
                entry.path().filename().c_str(),
                static_cast<long long>(id),
                lake.Get(id).num_columns(), lake.Get(id).num_rows());
  }

  // Pretend someone published a chart of the finance table's revenue.
  const auto finance = lake.Get(lake.Get(0).name() == "finance" ? 0 : 1);
  chart::VisSpec spec;
  spec.x_column = 0;
  spec.y_columns = {1};
  const auto d = chart::BuildUnderlyingData(finance, spec);
  const auto rendered = chart::RenderLineChart(d);

  // Recover the chart's content from pixels and rank the lake.
  vision::ClassicalExtractor extractor;
  const auto extracted = extractor.Extract(rendered);
  if (!extracted.ok()) {
    std::printf("extraction failed: %s\n",
                extracted.status().message().c_str());
    return 1;
  }
  core::FcmModel model(core::FcmConfig{});  // Untrained: descriptor bridge.
  std::printf("\nranking (untrained model, descriptor bridge):\n");
  std::vector<std::pair<double, table::TableId>> scored;
  for (const auto& t : lake.tables()) {
    scored.emplace_back(model.Score(extracted.value(), t), t.id());
  }
  std::sort(scored.rbegin(), scored.rend());
  for (const auto& [score, id] : scored) {
    std::printf("  %-10s Rel'=%.4f%s\n", lake.Get(id).name().c_str(), score,
                lake.Get(id).name() == "finance" ? "  <- source" : "");
  }
  return 0;
}
