// Chart-type generalization walkthrough (paper Sec. VI-B): render a bar
// chart, a scatter chart and a pie chart from known data, recover the data
// from pixels alone with the chart-type extractors, and rank candidate
// tables — DTW relevance for bar/scatter, KL relevance for the pie.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "chart/chart_types.h"
#include "relevance/distribution.h"
#include "relevance/relevance.h"
#include "table/table.h"
#include "vision/chart_type_extractors.h"

using namespace fcm;

namespace {

/// Scores `recovered` (series recovered from a chart) against every table
/// and prints the ranking.
void RankTables(const char* what, const table::UnderlyingData& recovered,
                const std::vector<table::Table>& lake) {
  rel::RelevanceOptions options;
  options.dtw.z_normalize = true;
  std::vector<std::pair<double, const table::Table*>> scored;
  for (const auto& t : lake) {
    scored.emplace_back(rel::Relevance(recovered, t, options), &t);
  }
  std::sort(scored.rbegin(), scored.rend());
  std::printf("%s ranking:\n", what);
  for (const auto& [score, t] : scored) {
    std::printf("  %-14s Rel=%.4f\n", t->name().c_str(), score);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  // A tiny lake: the true source plus two distractors.
  std::vector<double> sales = {12.0, 19.0, 7.0, 14.0, 22.0, 9.0};
  std::vector<table::Table> lake;
  lake.emplace_back("sales_2025",
                    std::vector<table::Column>{{"units", sales}});
  lake.emplace_back(
      "flat_noise",
      std::vector<table::Column>{{"units", {10.0, 10.5, 9.8, 10.2, 10.1,
                                            9.9}}});
  lake.emplace_back(
      "spiky", std::vector<table::Column>{{"units", {0.0, 30.0, 0.0, 30.0,
                                                     0.0, 30.0}}});

  chart::ChartStyle style;
  style.width = 260;
  style.height = 150;

  // ---- Bar chart ----
  table::DataSeries bars;
  bars.label = "units";
  bars.y = sales;
  const auto bar_chart = chart::RenderBarChart({bars}, style);
  const auto bar_extract = vision::ExtractBarChart(bar_chart);
  if (!bar_extract.ok()) {
    std::printf("bar extraction failed: %s\n",
                bar_extract.status().message().c_str());
    return 1;
  }
  std::printf("bar chart: recovered %d series, y range [%.1f, %.1f]\n",
              bar_extract.value().num_lines(), bar_extract.value().y_lo,
              bar_extract.value().y_hi);
  table::DataSeries bar_series;
  bar_series.y = bar_extract.value().lines[0].values;
  RankTables("bar chart", {bar_series}, lake);

  // ---- Scatter chart ----
  const auto scatter_chart = chart::RenderScatterChart({bars}, style);
  const auto scatter_extract = vision::ExtractScatterChart(scatter_chart);
  if (!scatter_extract.ok()) {
    std::printf("scatter extraction failed: %s\n",
                scatter_extract.status().message().c_str());
    return 1;
  }
  table::DataSeries scatter_series;
  scatter_series.y = scatter_extract.value().lines[0].values;
  RankTables("scatter chart", {scatter_series}, lake);

  // ---- Pie chart (KL relevance per Sec. VI-B) ----
  chart::ChartStyle pie_style;
  pie_style.width = 160;
  pie_style.height = 160;
  const auto pie = chart::RenderPieChart(sales, pie_style);
  const auto shares = vision::ExtractPieDistribution(pie);
  if (!shares.ok()) {
    std::printf("pie extraction failed: %s\n",
                shares.status().message().c_str());
    return 1;
  }
  std::printf("pie chart: recovered %zu sector shares\n",
              shares.value().size());
  std::printf("pie ranking (KL relevance):\n");
  std::vector<std::pair<double, const table::Table*>> scored;
  for (const auto& t : lake) {
    scored.emplace_back(rel::PieRelevance(shares.value(), t), &t);
  }
  std::sort(scored.rbegin(), scored.rend());
  for (const auto& [score, t] : scored) {
    std::printf("  %-14s Rel=%.4f\n", t->name().c_str(), score);
  }
  std::printf(
      "\nAll three chart types rank the true source (sales_2025) first,\n"
      "using only pixels as input.\n");
  return 0;
}
