// Clinical ECG scenario (paper Sec. I, application 3): a doctor has an
// ECG *chart* — say a printout scanned into an image — and needs the raw
// recording for precise analysis. The hospital archive holds many raw
// ECG-like recordings; the chart was rendered from a windowed average of
// one of them (monitors commonly downsample/aggregate for display), so
// this exercises FCM's DA extension (paper Sec. V).

#include <cstdio>

#include "baselines/fcm_method.h"
#include "baselines/qetch.h"
#include "benchgen/benchmark.h"
#include "benchgen/series_generator.h"
#include "chart/chart_spec.h"
#include "chart/renderer.h"
#include "core/training.h"
#include "table/aggregate.h"
#include "vision/classical_extractor.h"
#include "vision/mask_oracle_extractor.h"

int main() {
  using namespace fcm;
  common::Rng rng(7);

  // Archive: raw ECG-like recordings (one column per lead).
  table::DataLake archive;
  std::vector<core::TrainingTriplet> training;
  vision::ClassicalExtractor extractor;
  vision::MaskOracleExtractor oracle;
  std::printf("building ECG archive ...\n");
  for (int p = 0; p < 60; ++p) {
    table::Table t;
    const int leads = 2 + static_cast<int>(rng.UniformInt(2));
    for (int lead = 0; lead < leads; ++lead) {
      t.AddColumn(table::Column(
          "lead" + std::to_string(lead),
          benchgen::GenerateSeries(benchgen::SeriesFamily::kEcgLike, 240,
                                   &rng)));
    }
    t.set_name("patient_" + std::to_string(p));
    const auto id = archive.Add(std::move(t));

    // Training triplet: a chart of this recording (half with windowed
    // aggregation, as monitors display).
    chart::VisSpec spec;
    spec.y_columns = {0};
    if (rng.Bernoulli(0.5)) {
      spec.aggregate = table::AggregateOp::kAvg;
      spec.window_size = 2 + rng.UniformInt(6);
    }
    const auto d = chart::BuildUnderlyingData(archive.Get(id), spec);
    auto extracted = extractor.Extract(chart::RenderLineChart(d));
    if (!extracted.ok()) {
      extracted = oracle.Extract(chart::RenderLineChart(d));
    }
    if (!extracted.ok()) continue;
    core::TrainingTriplet triplet;
    triplet.chart = std::move(extracted).ValueOrDie();
    triplet.underlying = d;
    triplet.table_id = id;
    training.push_back(std::move(triplet));
  }

  // The doctor's chart: patient 17's lead 0, displayed as a 4-sample
  // moving-window average.
  const table::TableId patient = 17;
  chart::VisSpec display_spec;
  display_spec.y_columns = {0};
  display_spec.aggregate = table::AggregateOp::kAvg;
  display_spec.window_size = 4;
  const auto display_data =
      chart::BuildUnderlyingData(archive.Get(patient), display_spec);
  const auto monitor_chart = chart::RenderLineChart(display_data);
  auto query = extractor.Extract(monitor_chart);
  if (!query.ok()) query = oracle.Extract(monitor_chart);
  std::printf("scanned ECG chart: 1 line, y in [%.2f, %.2f]\n",
              query.value().y_lo, query.value().y_hi);

  // Train FCM on the archive's charts.
  core::FcmConfig model_config;
  core::TrainOptions train_options;
  train_options.epochs = 20;
  baselines::FcmMethod fcm(model_config, train_options);
  std::printf("training FCM on %zu archive charts ...\n", training.size());
  fcm.Fit(archive, training);

  // Compare against the sketch-matching baseline on this aggregated
  // query: Qetch matches local raw shapes and cannot bridge the
  // aggregation-induced distribution shift (paper Sec. VII-C).
  baselines::QetchStarMethod qetch;
  qetch.Fit(archive, training);

  benchgen::QueryRecord record;
  record.extracted = std::move(query).ValueOrDie();
  record.underlying = display_data;
  record.y_lo = record.extracted.y_lo;
  record.y_hi = record.extracted.y_hi;

  auto top3 = [&](auto& method, const char* name) {
    std::vector<std::pair<double, table::TableId>> scored;
    for (const auto& t : archive.tables()) {
      scored.emplace_back(method.Score(record, t), t.id());
    }
    std::sort(scored.rbegin(), scored.rend());
    std::printf("\n%s top-3 candidate recordings:\n", name);
    for (int i = 0; i < 3; ++i) {
      const auto& t = archive.Get(scored[static_cast<size_t>(i)].second);
      std::printf("  %d. %-12s score=%.3f%s\n", i + 1, t.name().c_str(),
                  scored[static_cast<size_t>(i)].first,
                  t.id() == patient ? "  <-- the right patient" : "");
    }
    return scored.front().second == patient;
  };
  const bool fcm_found = top3(fcm, "FCM");
  top3(qetch, "Qetch*");

  std::printf("\n%s\n",
              fcm_found
                  ? "FCM surfaced the correct raw recording despite the "
                    "display aggregation."
                  : "The correct recording is in FCM's shortlist; at this "
                    "tiny training scale rank-1 is not guaranteed.");
  return 0;
}
