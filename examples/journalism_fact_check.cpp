// Journalism fact-checking scenario (paper Sec. I, application 1):
// a journalist sees a widely shared line chart and wants to trace the
// original dataset behind it. The chart circulated as an image — no data
// attached — and the newsroom's data lake is large, so we use the trained
// FCM model behind the hybrid interval-tree + LSH index (paper Sec. VI)
// and compare pruning strategies on this single query.

#include <cstdio>

#include "benchgen/benchmark.h"
#include "core/fcm_model.h"
#include "core/training.h"
#include "index/search_engine.h"
#include "vision/classical_extractor.h"

int main() {
  using namespace fcm;

  benchgen::BenchmarkConfig config;
  config.num_training_tables = 30;
  config.num_query_tables = 4;
  config.extra_lake_tables = 100;
  config.duplicates_per_query = 5;
  config.ground_truth_k = 5;
  config.da_query_fraction = 0.0;  // The published chart plots raw data.
  vision::ClassicalExtractor extractor;
  std::printf("assembling the newsroom data lake ...\n");
  const benchgen::Benchmark bench = BuildBenchmark(config, extractor);

  core::FcmConfig model_config;
  core::FcmModel model(model_config);
  core::TrainOptions train_options;
  train_options.epochs = 20;
  std::printf("training the relevance model ...\n");
  core::TrainFcm(&model, bench.lake, bench.training, train_options);

  std::printf("indexing %zu candidate datasets ...\n", bench.lake.size());
  index::SearchEngine engine(&model, &bench.lake);
  engine.Build();

  // The "viral chart": a query whose source table hides in the lake.
  const benchgen::QueryRecord& viral = bench.queries.front();
  std::printf(
      "\nfact-check request: %d-line chart, y in [%.2f, %.2f] — which "
      "dataset produced it?\n\n",
      viral.extracted.num_lines(), viral.y_lo, viral.y_hi);

  for (const auto strategy :
       {index::IndexStrategy::kNoIndex, index::IndexStrategy::kHybrid}) {
    index::QueryStats stats;
    const auto hits = engine.Search(viral.extracted, 3, strategy, &stats);
    std::printf("%s: scored %zu candidates in %.1f ms\n",
                index::IndexStrategyName(strategy), stats.candidates_scored,
                stats.seconds * 1000.0);
    for (size_t i = 0; i < hits.size(); ++i) {
      const auto& t = bench.lake.Get(hits[i].table_id);
      const bool is_source_family =
          t.name().rfind(bench.lake.Get(viral.source_table).name(), 0) == 0;
      std::printf("   %zu. %-20s score=%.3f%s\n", i + 1, t.name().c_str(),
                  hits[i].score,
                  is_source_family ? "  <-- the source (or a near copy)"
                                   : "");
    }
  }

  std::printf(
      "\nIf the top hit is the source table (or one of its noisy "
      "near-duplicates), the chart's provenance is confirmed and the "
      "journalist can pull the raw numbers for verification.\n");
  return 0;
}
