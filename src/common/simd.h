// Runtime-dispatched SIMD kernels for the hot numeric paths.
//
// A small set of float32/float64 primitives — dot products, axpy, a GEMM
// micro-kernel, reductions, min/max, and the banded-DTW row update — each
// with a scalar implementation plus, when compiled in, AVX2+FMA (x86-64)
// and NEON (aarch64) variants. One implementation table is selected at
// startup:
//
//   1. Compile-time: the AVX2 translation unit is built only when the
//      toolchain supports `-mavx2 -mfma` (CMake option FCM_SIMD, default
//      `auto`); the NEON unit only on ARM targets where NEON is baseline.
//   2. Runtime: among compiled-in targets, cpuid (x86) picks the best the
//      machine supports; the FCM_SIMD environment variable
//      (`scalar|avx2|neon|auto`) overrides the choice, falling back to
//      `auto` with a warning when the requested target is unavailable.
//
// Tolerance contract
// ------------------
// The scalar kernels preserve the exact accumulation order of the loops
// they replaced, so `FCM_SIMD=scalar` is bit-identical to the historical
// (pre-dispatch) output. The SIMD kernels reassociate sums and use fused
// multiply-add, so their results may differ from scalar in the last bits:
// callers must treat any value that crossed a SIMD kernel as equal to the
// scalar value only within 1e-5 *relative* tolerance (the bound enforced
// by tests/simd_test.cc). Exception: DtwRowF64 is a min-plus recurrence
// whose vector form performs the same IEEE operations in the same
// per-element order, so it is bit-identical under every target.
//
// The int8 kernels (DotI8, GemmI8F32) are stronger: integer accumulation
// is exact and associative, so reassociating it is invisible — every
// target returns the same bits for the same input, and the one float
// epilogue in GemmI8F32 is the same pinned IEEE expression everywhere.
// That exactness is what lets the quantized embedding tier keep the
// engine's bit-identical determinism contract (see index/search_engine.h)
// with no per-target tolerance at all.

#ifndef FCM_COMMON_SIMD_H_
#define FCM_COMMON_SIMD_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace fcm::simd {

/// Dispatch targets, best-first within each architecture.
enum class Target {
  kScalar = 0,
  kAvx2 = 1,  // x86-64 AVX2 + FMA.
  kNeon = 2,  // aarch64 Advanced SIMD.
};

/// Human-readable target name ("scalar", "avx2", "neon").
const char* TargetName(Target target);

/// One implementation of every kernel. All pointers are non-null.
struct KernelTable {
  Target target;

  /// sum_i a[i] * b[i] (single float accumulator in the scalar kernel).
  float (*dot_f32)(const float* a, const float* b, size_t n);

  /// y[i] += alpha * x[i].
  void (*axpy_f32)(float alpha, const float* x, float* y, size_t n);

  /// GEMM micro-kernel over one output row:
  ///   c[j] += sum_t a[t * a_stride] * b[t * b_stride + j],  j in [0, m).
  /// Zero a-coefficients are skipped (ReLU activations and their grads are
  /// sparse). With a_stride == 1 this is the blocked-MatMul forward inner
  /// tile; with a_stride == k it accumulates dB from strided columns of A.
  void (*gemm_micro_f32)(const float* a, size_t a_stride, const float* b,
                         size_t b_stride, size_t t_len, float* c, size_t m);

  /// sum_i a[i] * b[i] over doubles.
  double (*dot_f64)(const double* a, const double* b, size_t n);

  /// sum_i x[i].
  double (*reduce_sum_f64)(const double* x, size_t n);

  /// sum_i (x[i] - mean)^2.
  double (*sum_sq_diff_f64)(const double* x, size_t n, double mean);

  /// Writes min/max over x to *mn / *mx; an empty range yields +inf / -inf.
  void (*min_max_f64)(const double* x, size_t n, double* mn, double* mx);

  /// Banded-DTW row update over DP columns j in [j_lo, j_hi] (1-based):
  ///   cur[j] = |xi - y[j-1]| + min(prev[j], cur[j-1], prev[j-1])
  /// using `cost` (size >= j_hi + 1) as scratch; returns the row minimum.
  /// Bit-identical across targets (see tolerance contract above).
  double (*dtw_row_f64)(double xi, const double* y, const double* prev,
                        double* cur, double* cost, size_t j_lo, size_t j_hi);

  /// sum_i a[i] * b[i] over int8 operands, accumulated exactly in int32.
  /// Preconditions: operands lie in [-127, 127] (the symmetric quantizer's
  /// range — the AVX2 maddubs idiom needs |a|*|b'| pair sums < 2^15, and
  /// -128 would break the |a| <= 127 bound) and n <= 2^17 so the i32
  /// accumulator cannot overflow (127*127*2^17 < 2^31). Bit-identical
  /// across targets.
  int32_t (*dot_i8)(const int8_t* a, const int8_t* b, size_t n);

  /// Quantized row-block scoring micro-kernel (int8 x f32 "GEMM"): one
  /// quantized query row `a` (n int8 values, scale `scale_a`) against m
  /// quantized rows of `b` (row r starts at b + r * b_stride; b_stride >=
  /// n), dequantizing inside the accumulation:
  ///   c[r] = float(sum_i a[i] * b[r*b_stride + i]) * (scale_a * scale_b[r])
  /// c is overwritten, not accumulated. Same operand preconditions as
  /// dot_i8; the dequant epilogue is the pinned expression above (int32
  /// sum converted to float first, the two scales multiplied together) in
  /// every implementation, so results are bit-identical across targets.
  void (*gemm_i8f32)(const int8_t* a, const int8_t* b, size_t b_stride,
                     size_t n, float scale_a, const float* scale_b, float* c,
                     size_t m);
};

/// The active kernel table. Resolved once (thread-safe) on first use from
/// the compiled-in targets, cpuid, and the FCM_SIMD environment variable.
const KernelTable& Active();

/// Target of the active table.
Target ActiveTarget();

/// Forces the active table to `target` (tests and benchmarks). Returns
/// false — leaving the current table in place — when the target was not
/// compiled in or the CPU lacks it. Not safe concurrently with running
/// kernels; call only from single-threaded setup code.
bool SetTarget(Target target);

/// Re-runs the startup resolution (compiled targets + cpuid + FCM_SIMD
/// env var) and returns the winner. Used by tests to restore state after
/// SetTarget.
Target ResetTarget();

/// Every target compiled into this binary and supported by this CPU,
/// best-first. Always contains Target::kScalar.
std::vector<Target> SupportedTargets();

/// The accepted FCM_SIMD values, for diagnostics: "scalar|avx2|neon|auto".
const char* ValidEnvSpecs();

/// Outcome of resolving one FCM_SIMD override value.
struct EnvSpecResolution {
  /// What the process will run: the requested target when it is
  /// recognized and available, the best available target otherwise.
  Target target = Target::kScalar;
  /// `spec` named a member of ValidEnvSpecs() (null/empty counts as auto).
  bool recognized = false;
  /// The recognized target is compiled in and CPU-supported (always true
  /// for auto and scalar; meaningless when !recognized).
  bool available = false;
};

/// Pure resolution of an FCM_SIMD override string — the logic behind the
/// startup dispatch, exposed so tests can pin the fallback behavior. Does
/// not log and does not change the active table; Active()/ResetTarget()
/// apply the same resolution to the real environment variable and warn
/// loudly (naming ValidEnvSpecs()) on unrecognized or unavailable values.
EnvSpecResolution ResolveEnvSpec(const char* spec);

// ---- Convenience wrappers over the active table ----

inline float DotF32(const float* a, const float* b, size_t n) {
  return Active().dot_f32(a, b, n);
}
inline void AxpyF32(float alpha, const float* x, float* y, size_t n) {
  Active().axpy_f32(alpha, x, y, n);
}
inline void GemmMicroF32(const float* a, size_t a_stride, const float* b,
                         size_t b_stride, size_t t_len, float* c, size_t m) {
  Active().gemm_micro_f32(a, a_stride, b, b_stride, t_len, c, m);
}
inline double DotF64(const double* a, const double* b, size_t n) {
  return Active().dot_f64(a, b, n);
}
inline double ReduceSumF64(const double* x, size_t n) {
  return Active().reduce_sum_f64(x, n);
}
inline double SumSqDiffF64(const double* x, size_t n, double mean) {
  return Active().sum_sq_diff_f64(x, n, mean);
}
inline void MinMaxF64(const double* x, size_t n, double* mn, double* mx) {
  Active().min_max_f64(x, n, mn, mx);
}
inline double DtwRowF64(double xi, const double* y, const double* prev,
                        double* cur, double* cost, size_t j_lo, size_t j_hi) {
  return Active().dtw_row_f64(xi, y, prev, cur, cost, j_lo, j_hi);
}
inline int32_t DotI8(const int8_t* a, const int8_t* b, size_t n) {
  return Active().dot_i8(a, b, n);
}
inline void GemmI8F32(const int8_t* a, const int8_t* b, size_t b_stride,
                      size_t n, float scale_a, const float* scale_b, float* c,
                      size_t m) {
  Active().gemm_i8f32(a, b, b_stride, n, scale_a, scale_b, c, m);
}

// Implementation hooks for the per-target translation units; each returns
// nullptr when its target is not compiled into the binary. Not for direct
// use — call Active() / SetTarget() instead.
const KernelTable* GetAvx2Kernels();
const KernelTable* GetNeonKernels();

}  // namespace fcm::simd

#endif  // FCM_COMMON_SIMD_H_
