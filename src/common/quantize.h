// Symmetric per-row int8 quantization for the embedding tier (see
// docs/ARCHITECTURE.md, "Quantized embedding tier"): each row of floats
// is stored as round(v / scale) clamped to [-127, 127] with one f32
// scale = maxabs / 127 per row. The range is symmetric — -128 is never
// produced — which is what lets the int8 SIMD kernels (common/simd.h)
// accumulate exactly on every target. Properties the tests pin:
//   - round-trip error per element is at most scale / 2 (plus float
//     rounding slack),
//   - an all-zero row quantizes to scale 0 and all-zero codes, and
//     dequantizes back to exact zeros,
//   - values beyond the scale's range saturate at +/-127, never -128.
// Quantization is deterministic: the same row always yields the same
// codes and scale, on every platform (ties round to even via lrintf
// under the default rounding mode).

#ifndef FCM_COMMON_QUANTIZE_H_
#define FCM_COMMON_QUANTIZE_H_

#include <cstddef>
#include <cstdint>

namespace fcm::common {

/// Quantizes one row: picks scale = maxabs / 127 (0 for an all-zero
/// row), writes n codes in [-127, 127] to dst, and returns the scale.
float QuantizeRow(const float* src, size_t n, int8_t* dst);

/// Quantizes one row with a caller-fixed scale, clamping codes to
/// [-127, 127] (values beyond the representable range saturate). A
/// scale <= 0 writes all-zero codes.
void QuantizeRowWithScale(const float* src, size_t n, float scale,
                          int8_t* dst);

/// Reconstruction of one quantized value.
inline float Dequantize(int8_t code, float scale) {
  return static_cast<float>(code) * scale;
}

/// Reconstructs a full row into dst.
void DequantizeRow(const int8_t* src, size_t n, float scale, float* dst);

}  // namespace fcm::common

#endif  // FCM_COMMON_QUANTIZE_H_
