// Deterministic fault injection for the serving stack. A *failpoint* is a
// named site compiled into a hot spot (engine stages, queue operations,
// ThreadPool task bodies, CSV ingestion) that normally does nothing: the
// macros below compile to one relaxed atomic load when no failpoint is
// armed, so the sites stay in production builds. Arming a site — from a
// test via Arm(), or from the FCM_FAILPOINTS environment spec — makes it
// throw FailpointError, return a common::Status error, or sleep, under
// seeded-probability / every-Nth / bounded-fire triggers. That is what
// lets recovery behavior (blast-radius isolation, deadline shedding, the
// circuit breaker — see index/async_service.h) be *proven* by tests
// instead of assumed: the fault schedule is reproducible from a seed.
//
// Environment spec (parsed once at process start):
//   FCM_FAILPOINTS="site=action(key=value,...)[;site2=...]"
// with actions throw | error | delay and keys
//   p=<0..1>    fire probability (seeded Bernoulli per hit; default 1)
//   seed=<u64>  probability hash seed (default 0)
//   nth=<n>     fire on every n-th hit (1st, n+1-th, ...; default every)
//   max=<n>     stop firing after n fires (max=1 is a one-shot)
//   ms=<x>      sleep duration for delay (default 1)
//   code=<c>    Status code for error: invalid|notfound|range|io|
//               precondition|internal (default internal)
//   msg=<text>  error message override (no commas or semicolons)
// Example: FCM_FAILPOINTS="engine.score_stage=throw(p=0.05,seed=7)".
//
// Concurrency: sites are lock-free on the hit path (registry lookups take
// a shared lock only while at least one failpoint is armed); Arm/Disarm
// may race evaluations safely. Probability decisions hash (seed, hit
// index), so a fixed seed gives a reproducible fire set per site
// regardless of thread interleaving.

#ifndef FCM_COMMON_FAILPOINT_H_
#define FCM_COMMON_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>

#include "common/result.h"

namespace fcm::common::failpoint {

/// Thrown by an armed throw-action failpoint (and by error-action
/// failpoints evaluated at a throwing site).
struct FailpointError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// What an armed failpoint does when it fires.
enum class Action {
  kThrow,  ///< Throw FailpointError (Status-site: returns kInternal).
  kError,  ///< Return a Status error (throwing site: throws FailpointError).
  kDelay,  ///< Sleep for delay_ms, then continue normally.
};

/// Arming configuration for one site. Triggers compose: a hit fires only
/// if the matcher (when set) accepts the site's key AND the every-Nth
/// counter selects it AND the seeded Bernoulli draw passes AND fewer than
/// max_fires fires have happened.
struct Spec {
  Action action = Action::kThrow;
  /// Error/exception message; empty derives "failpoint <site>".
  std::string message;
  /// Fire probability in [0, 1]; decided by hashing (seed, hit index) so
  /// a fixed seed reproduces the same fire set independent of thread
  /// interleaving.
  double probability = 1.0;
  uint64_t seed = 0;
  /// > 0: fire only on hits 0, n, 2n, ... (by per-site hit index).
  uint64_t every_nth = 0;
  /// > 0: stop firing after this many fires (1 = one-shot).
  uint64_t max_fires = 0;
  /// Sleep for kDelay.
  double delay_ms = 1.0;
  /// Status code for kError at a Status site.
  StatusCode code = StatusCode::kInternal;
  /// Keyed sites (FCM_FAILPOINT_KEYED) only: fire only for keys this
  /// predicate accepts; null accepts every key. Un-keyed sites pass key
  /// 0. Programmatic arming only — the env spec cannot express matchers.
  std::function<bool(uint64_t)> matcher;
};

/// Per-site counters: hits = evaluations while armed, fires = faults
/// actually injected.
struct SiteStats {
  uint64_t hits = 0;
  uint64_t fires = 0;
};

namespace internal {
extern std::atomic<int> g_armed_count;
void Evaluate(const char* site, uint64_t key);  // Throws / sleeps.
Status EvaluateStatus(const char* site, uint64_t key);
}  // namespace internal

/// Number of currently armed sites. The macros gate on this with one
/// relaxed load, which is the entire disarmed cost of a failpoint site.
inline int ArmedCount() {
  return internal::g_armed_count.load(std::memory_order_relaxed);
}

/// Arms (or re-arms, replacing the previous spec and counters) a site.
void Arm(const std::string& site, Spec spec);

/// Disarms one site; false when it was not armed.
bool Disarm(const std::string& site);

/// Disarms every site (test teardown).
void DisarmAll();

/// Counters for a site; zeros when never armed.
SiteStats Stats(const std::string& site);

/// Parses a spec string (FCM_FAILPOINTS grammar above) and arms every
/// site in it. nullptr reads the FCM_FAILPOINTS environment variable (a
/// missing/empty variable is OK and arms nothing). Called automatically
/// once at process start; exposed for tests. On a malformed spec nothing
/// new is armed and InvalidArgument is returned.
Status ArmFromEnv(const char* spec_string = nullptr);

}  // namespace fcm::common::failpoint

/// Throwing-site failpoint: throws FailpointError (or sleeps) when armed
/// and firing; a single relaxed atomic load when nothing is armed.
#define FCM_FAILPOINT(site)                                          \
  do {                                                               \
    if (::fcm::common::failpoint::ArmedCount() > 0) {                \
      ::fcm::common::failpoint::internal::Evaluate((site), 0);       \
    }                                                                \
  } while (0)

/// Throwing-site failpoint carrying a key (e.g. a request id) that an
/// armed matcher can select on — how a test poisons exactly one request
/// of a coalesced micro-batch.
#define FCM_FAILPOINT_KEYED(site, key)                               \
  do {                                                               \
    if (::fcm::common::failpoint::ArmedCount() > 0) {                \
      ::fcm::common::failpoint::internal::Evaluate(                  \
          (site), static_cast<uint64_t>(key));                       \
    }                                                                \
  } while (0)

/// Status-site failpoint: `return`s a non-OK Status from the enclosing
/// function (which may also build a Result<T>) when armed and firing.
#define FCM_FAILPOINT_STATUS(site)                                   \
  do {                                                               \
    if (::fcm::common::failpoint::ArmedCount() > 0) {                \
      ::fcm::common::Status _fcm_fp_status =                         \
          ::fcm::common::failpoint::internal::EvaluateStatus((site), \
                                                             0);     \
      if (!_fcm_fp_status.ok()) return _fcm_fp_status;               \
    }                                                                \
  } while (0)

#endif  // FCM_COMMON_FAILPOINT_H_
