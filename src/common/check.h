// Lightweight assertion macros in the spirit of glog's CHECK family.
//
// CHECK(cond) aborts with a diagnostic when `cond` is false, in all build
// modes; DCHECK compiles away in NDEBUG builds. Use CHECK for invariants
// whose violation indicates a programming error (not recoverable input
// error — those go through fcm::common::Result).

#ifndef FCM_COMMON_CHECK_H_
#define FCM_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace fcm::common {

[[noreturn]] inline void CheckFailed(const char* expr, const char* file,
                                     int line) {
  std::fprintf(stderr, "CHECK failed: %s at %s:%d\n", expr, file, line);
  std::fflush(stderr);
  std::abort();
}

}  // namespace fcm::common

#define FCM_CHECK(cond)                                        \
  do {                                                         \
    if (!(cond)) {                                             \
      ::fcm::common::CheckFailed(#cond, __FILE__, __LINE__);   \
    }                                                          \
  } while (0)

#define FCM_CHECK_EQ(a, b) FCM_CHECK((a) == (b))
#define FCM_CHECK_NE(a, b) FCM_CHECK((a) != (b))
#define FCM_CHECK_LT(a, b) FCM_CHECK((a) < (b))
#define FCM_CHECK_LE(a, b) FCM_CHECK((a) <= (b))
#define FCM_CHECK_GT(a, b) FCM_CHECK((a) > (b))
#define FCM_CHECK_GE(a, b) FCM_CHECK((a) >= (b))

#ifdef NDEBUG
#define FCM_DCHECK(cond) \
  do {                   \
  } while (0)
#else
#define FCM_DCHECK(cond) FCM_CHECK(cond)
#endif

#endif  // FCM_COMMON_CHECK_H_
