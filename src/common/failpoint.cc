#include "common/failpoint.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/annotated_mutex.h"
#include "common/string_util.h"

namespace fcm::common::failpoint {

namespace {

/// Armed state of one site. The spec is immutable after construction (a
/// re-Arm swaps the whole shared_ptr), so evaluations touch only the
/// atomics — the hit path takes no per-site lock.
struct Site {
  explicit Site(Spec s) : spec(std::move(s)) {}
  const Spec spec;
  std::atomic<uint64_t> hits{0};
  std::atomic<uint64_t> fires{0};
};

struct Registry {
  SharedMutex mu;
  std::unordered_map<std::string, std::shared_ptr<Site>> sites
      FCM_GUARDED_BY(mu);
  /// Lifetime counters survive Disarm so tests can read stats after
  /// tearing a schedule down.
  std::unordered_map<std::string, SiteStats> retired FCM_GUARDED_BY(mu);
};

Registry& registry() {
  static Registry* r = new Registry();  // Leaked: outlives static dtors.
  return *r;
}

/// splitmix64: decorrelates (seed, hit index) into a uniform u64 so the
/// Bernoulli draw is reproducible per seed and independent of which
/// thread produced which hit index.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Decides whether this evaluation fires and, if so, returns the spec to
/// apply. Returns nullptr on "pass through untouched".
std::shared_ptr<Site> ShouldFire(const char* name, uint64_t key) {
  std::shared_ptr<Site> site;
  {
    ReaderMutexLock lk(&registry().mu);
    auto it = registry().sites.find(name);
    if (it == registry().sites.end()) return nullptr;
    site = it->second;
  }
  const Spec& spec = site->spec;
  if (spec.matcher && !spec.matcher(key)) return nullptr;
  const uint64_t hit = site->hits.fetch_add(1, std::memory_order_relaxed);
  if (spec.every_nth > 0 && hit % spec.every_nth != 0) return nullptr;
  if (spec.probability < 1.0) {
    const double draw =
        static_cast<double>(Mix(spec.seed ^ Mix(hit)) >> 11) * 0x1p-53;
    if (draw >= spec.probability) return nullptr;
  }
  if (spec.max_fires > 0) {
    // CAS keeps the cap exact under concurrent evaluations — only the
    // first max_fires winners fire — and `fires` counts actual fires,
    // never spent attempts.
    uint64_t fired = site->fires.load(std::memory_order_relaxed);
    do {
      if (fired >= spec.max_fires) return nullptr;
    } while (!site->fires.compare_exchange_weak(fired, fired + 1,
                                                std::memory_order_relaxed));
  } else {
    site->fires.fetch_add(1, std::memory_order_relaxed);
  }
  return site;
}

std::string FireMessage(const char* name, const Spec& spec) {
  return spec.message.empty() ? std::string("failpoint ") + name
                              : spec.message;
}

void SleepMs(double ms) {
  if (ms <= 0.0) return;
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
}

/// One-time FCM_FAILPOINTS parse at process start (file-scope initializer
/// in this TU; any use of the registry links it in). Malformed specs must
/// not abort a production binary — warn and run unarmed instead.
const bool g_env_armed = []() {
  const Status status = ArmFromEnv(nullptr);
  if (!status.ok()) {
    std::fprintf(stderr, "FCM_FAILPOINTS ignored: %s\n",
                 status.ToString().c_str());
  }
  return status.ok();
}();

}  // namespace

namespace internal {

std::atomic<int> g_armed_count{0};

void Evaluate(const char* site, uint64_t key) {
  const auto fired = ShouldFire(site, key);
  if (fired == nullptr) return;
  switch (fired->spec.action) {
    case Action::kDelay:
      SleepMs(fired->spec.delay_ms);
      return;
    case Action::kThrow:
    case Action::kError:
      // kError at a throwing site still has to manifest as a fault.
      throw FailpointError(FireMessage(site, fired->spec));
  }
}

Status EvaluateStatus(const char* site, uint64_t key) {
  const auto fired = ShouldFire(site, key);
  if (fired == nullptr) return Status::OK();
  switch (fired->spec.action) {
    case Action::kDelay:
      SleepMs(fired->spec.delay_ms);
      return Status::OK();
    case Action::kThrow:
    case Action::kError:
      // kThrow at a Status site degrades to an error Status: throwing
      // across a Result-returning boundary would defeat the contract the
      // site exists to test.
      return Status(fired->spec.code, FireMessage(site, fired->spec));
  }
  return Status::OK();
}

}  // namespace internal

void Arm(const std::string& site, Spec spec) {
  auto armed = std::make_shared<Site>(std::move(spec));
  WriterMutexLock lk(&registry().mu);
  auto it = registry().sites.find(site);
  if (it != registry().sites.end()) {
    auto& retired = registry().retired[site];
    retired.hits += it->second->hits.load(std::memory_order_relaxed);
    retired.fires += it->second->fires.load(std::memory_order_relaxed);
    it->second = std::move(armed);
  } else {
    registry().sites.emplace(site, std::move(armed));
    internal::g_armed_count.fetch_add(1, std::memory_order_relaxed);
  }
}

bool Disarm(const std::string& site) {
  WriterMutexLock lk(&registry().mu);
  auto it = registry().sites.find(site);
  if (it == registry().sites.end()) return false;
  auto& retired = registry().retired[site];
  retired.hits += it->second->hits.load(std::memory_order_relaxed);
  retired.fires += it->second->fires.load(std::memory_order_relaxed);
  registry().sites.erase(it);
  internal::g_armed_count.fetch_sub(1, std::memory_order_relaxed);
  return true;
}

void DisarmAll() {
  WriterMutexLock lk(&registry().mu);
  for (const auto& [name, site] : registry().sites) {
    auto& retired = registry().retired[name];
    retired.hits += site->hits.load(std::memory_order_relaxed);
    retired.fires += site->fires.load(std::memory_order_relaxed);
  }
  internal::g_armed_count.fetch_sub(
      static_cast<int>(registry().sites.size()), std::memory_order_relaxed);
  registry().sites.clear();
}

SiteStats Stats(const std::string& site) {
  ReaderMutexLock lk(&registry().mu);
  SiteStats out;
  auto retired = registry().retired.find(site);
  if (retired != registry().retired.end()) out = retired->second;
  auto it = registry().sites.find(site);
  if (it != registry().sites.end()) {
    out.hits += it->second->hits.load(std::memory_order_relaxed);
    out.fires += it->second->fires.load(std::memory_order_relaxed);
  }
  return out;
}

namespace {

/// Parses one "site=action(k=v,...)" clause into (site, spec).
Status ParseClause(const std::string& clause, std::string* site, Spec* spec) {
  const size_t eq = clause.find('=');
  if (eq == std::string::npos || eq == 0) {
    return Status::InvalidArgument("failpoint clause needs 'site=action': '" +
                                   clause + "'");
  }
  *site = Trim(clause.substr(0, eq));
  std::string rhs = Trim(clause.substr(eq + 1));
  std::string args;
  const size_t paren = rhs.find('(');
  if (paren != std::string::npos) {
    if (rhs.back() != ')') {
      return Status::InvalidArgument("unterminated '(' in '" + clause + "'");
    }
    args = rhs.substr(paren + 1, rhs.size() - paren - 2);
    rhs = Trim(rhs.substr(0, paren));
  }
  if (rhs == "throw") {
    spec->action = Action::kThrow;
  } else if (rhs == "error") {
    spec->action = Action::kError;
  } else if (rhs == "delay") {
    spec->action = Action::kDelay;
  } else {
    return Status::InvalidArgument("unknown failpoint action '" + rhs + "'");
  }
  for (const std::string& kv : Split(args, ',')) {
    if (Trim(kv).empty()) continue;
    const size_t kveq = kv.find('=');
    if (kveq == std::string::npos) {
      return Status::InvalidArgument("failpoint arg needs 'key=value': '" +
                                     kv + "'");
    }
    const std::string k = Trim(kv.substr(0, kveq));
    const std::string v = Trim(kv.substr(kveq + 1));
    double num = 0.0;
    if (k == "msg") {
      spec->message = v;
      continue;
    }
    if (k == "code") {
      if (v == "invalid") spec->code = StatusCode::kInvalidArgument;
      else if (v == "notfound") spec->code = StatusCode::kNotFound;
      else if (v == "range") spec->code = StatusCode::kOutOfRange;
      else if (v == "io") spec->code = StatusCode::kIoError;
      else if (v == "precondition") spec->code = StatusCode::kFailedPrecondition;
      else if (v == "internal") spec->code = StatusCode::kInternal;
      else return Status::InvalidArgument("unknown status code '" + v + "'");
      continue;
    }
    if (!ParseDouble(v, &num) || num < 0.0) {
      return Status::InvalidArgument("bad failpoint arg value '" + kv + "'");
    }
    if (k == "p") {
      if (num > 1.0) {
        return Status::InvalidArgument("failpoint p must be in [0,1]: '" +
                                       kv + "'");
      }
      spec->probability = num;
    } else if (k == "seed") {
      spec->seed = static_cast<uint64_t>(num);
    } else if (k == "nth") {
      spec->every_nth = static_cast<uint64_t>(num);
    } else if (k == "max") {
      spec->max_fires = static_cast<uint64_t>(num);
    } else if (k == "ms") {
      spec->delay_ms = num;
    } else {
      return Status::InvalidArgument("unknown failpoint arg '" + k + "'");
    }
  }
  return Status::OK();
}

}  // namespace

Status ArmFromEnv(const char* spec_string) {
  if (spec_string == nullptr) spec_string = std::getenv("FCM_FAILPOINTS");
  if (spec_string == nullptr) return Status::OK();
  // Validate every clause before arming any: a malformed spec arms
  // nothing instead of half a schedule.
  std::vector<std::pair<std::string, Spec>> parsed;
  for (const std::string& clause : Split(spec_string, ';')) {
    if (Trim(clause).empty()) continue;
    std::string site;
    Spec spec;
    FCM_RETURN_IF_ERROR(ParseClause(clause, &site, &spec));
    parsed.emplace_back(std::move(site), std::move(spec));
  }
  for (auto& [site, spec] : parsed) Arm(site, std::move(spec));
  return Status::OK();
}

}  // namespace fcm::common::failpoint
