// Minimal leveled logging to stderr.
//
//   FCM_LOG(INFO) << "built index with " << n << " entries";
//
// Level is controlled at runtime via fcm::common::SetLogLevel or the
// FCM_LOG_LEVEL environment variable (0=DEBUG, 1=INFO, 2=WARN, 3=ERROR,
// 4=silent).

#ifndef FCM_COMMON_LOGGING_H_
#define FCM_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace fcm::common {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Sets the global minimum level that will be emitted.
void SetLogLevel(LogLevel level);

/// Current global minimum level.
LogLevel GetLogLevel();

/// Internal: accumulates one log line and emits it on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Internal: no-op sink used when the level is below threshold.
class NullLogMessage {
 public:
  template <typename T>
  NullLogMessage& operator<<(const T&) {
    return *this;
  }
};

}  // namespace fcm::common

#define FCM_LOG_DEBUG ::fcm::common::LogLevel::kDebug
#define FCM_LOG_INFO ::fcm::common::LogLevel::kInfo
#define FCM_LOG_WARN ::fcm::common::LogLevel::kWarn
#define FCM_LOG_ERROR ::fcm::common::LogLevel::kError

#define FCM_LOG(severity)                                            \
  (FCM_LOG_##severity < ::fcm::common::GetLogLevel())                \
      ? (void)0                                                      \
      : (void)(::fcm::common::LogMessage(FCM_LOG_##severity,         \
                                         __FILE__, __LINE__))

// Streamable form: FCM_LOGS(INFO) << "x=" << x;
#define FCM_LOGS(severity)                                           \
  ::fcm::common::LogMessage(FCM_LOG_##severity, __FILE__, __LINE__)

#endif  // FCM_COMMON_LOGGING_H_
