#include "common/serialize.h"

#include <cstdio>

#if defined(__unix__) || defined(__APPLE__)
#define FCM_SERIALIZE_HAS_FSYNC 1
#include <unistd.h>
#endif

namespace fcm::common {

namespace {

// Writes `buf` to `path` directly (non-atomic). Used for the temporary
// file inside the atomic save.
Status WriteFileRaw(const std::string& path,
                    const std::vector<uint8_t>& buf) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IoError("cannot open for writing: " + path);
  }
  const size_t written =
      buf.empty() ? 0 : std::fwrite(buf.data(), 1, buf.size(), f);
  bool flushed = std::fflush(f) == 0;
#ifdef FCM_SERIALIZE_HAS_FSYNC
  // Push the bytes to the device before the rename makes them visible:
  // otherwise a crash after rename could expose a hole-punched file.
  flushed = flushed && fsync(fileno(f)) == 0;
#endif
  const int close_rc = std::fclose(f);
  if (written != buf.size() || !flushed || close_rc != 0) {
    std::remove(path.c_str());
    return Status::IoError("short write: " + path);
  }
  return Status::OK();
}

}  // namespace

Status BinaryWriter::SaveToFile(const std::string& path) const {
  const std::string tmp = path + ".tmp";
  FCM_RETURN_IF_ERROR(WriteFileRaw(tmp, buf_));
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IoError("cannot rename " + tmp + " to " + path);
  }
  return Status::OK();
}

Result<std::vector<uint8_t>> BinaryReader::LoadFileBytes(
    const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IoError("cannot open for reading: " + path);
  }
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  if (size < 0) {
    std::fclose(f);
    return Status::IoError("cannot stat: " + path);
  }
  std::vector<uint8_t> buf(static_cast<size_t>(size));
  const size_t read =
      buf.empty() ? 0 : std::fread(buf.data(), 1, buf.size(), f);
  std::fclose(f);
  if (read != buf.size()) {
    return Status::IoError("short read: " + path);
  }
  return buf;
}

Result<BinaryReader> BinaryReader::LoadFromFile(const std::string& path) {
  auto bytes = LoadFileBytes(path);
  if (!bytes.ok()) return bytes.status();
  return BinaryReader(std::move(bytes).ValueOrDie());
}

Result<std::string> BinaryReader::ReadString() {
  auto n = ReadU64();
  if (!n.ok()) return n.status();
  if (pos_ + n.value() > buf_.size()) {
    return Status::OutOfRange("binary reader: truncated string");
  }
  // fcm-lint: uint8_t -> char byte view of the read buffer; same size/rep.
  std::string s(reinterpret_cast<const char*>(buf_.data() + pos_),
                n.value());
  pos_ += n.value();
  return s;
}

Result<std::vector<float>> BinaryReader::ReadF32Vector() {
  auto n = ReadU64();
  if (!n.ok()) return n.status();
  const size_t bytes = n.value() * sizeof(float);
  if (pos_ + bytes > buf_.size()) {
    return Status::OutOfRange("binary reader: truncated f32 vector");
  }
  std::vector<float> v(n.value());
  std::memcpy(v.data(), buf_.data() + pos_, bytes);
  pos_ += bytes;
  return v;
}

Result<std::vector<double>> BinaryReader::ReadF64Vector() {
  auto n = ReadU64();
  if (!n.ok()) return n.status();
  const size_t bytes = n.value() * sizeof(double);
  if (pos_ + bytes > buf_.size()) {
    return Status::OutOfRange("binary reader: truncated f64 vector");
  }
  std::vector<double> v(n.value());
  std::memcpy(v.data(), buf_.data() + pos_, bytes);
  pos_ += bytes;
  return v;
}

}  // namespace fcm::common
