// Fixed-size worker pool with a deterministic ParallelFor/ParallelMap:
// work items are identified by index, results land in index order, and the
// computation per index is byte-identical to a serial loop — parallelism
// only changes wall-clock time, never output. Used by the search engine to
// fan out per-table encoding and candidate scoring, and by the async
// serving pipeline whose stage threads dispatch onto one shared pool.
//
// Concurrency contract: ParallelFor / ParallelForSharded may be called
// concurrently from any number of owner threads, and re-entrantly from
// inside a worker iteration. Every owner participates in its own batch, so
// an owner always makes progress even when all workers are busy elsewhere;
// idle workers spread across the in-flight batches (least-helped first)
// instead of queuing behind the oldest one, which is what lets pipeline
// stages overlap instead of serializing.

#ifndef FCM_COMMON_THREAD_POOL_H_
#define FCM_COMMON_THREAD_POOL_H_

#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/annotated_mutex.h"

namespace fcm::common {

class ThreadPool {
 public:
  /// `num_threads` <= 0 picks std::thread::hardware_concurrency(). A pool
  /// of 1 runs everything inline on the calling thread (no workers), which
  /// keeps single-threaded configurations free of scheduling overhead.
  explicit ThreadPool(int num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  /// Runs fn(i) for every i in [0, n). Blocks until all iterations finish
  /// (the calling thread participates). Iterations may run in any order on
  /// any worker; callers must make fn(i) touch only index-i state. If any
  /// iteration throws, the first exception (in completion order) is
  /// rethrown here after all workers drain. Safe to call from several
  /// owner threads at once and from inside a worker iteration (see the
  /// file comment); fn must not block waiting on another ParallelFor's
  /// *result* produced outside this call, only on pool progress.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  /// Deterministic map: out[i] = fn(i), in index order regardless of the
  /// execution schedule.
  template <typename T, typename Fn>
  std::vector<T> ParallelMap(size_t n, Fn&& fn) {
    std::vector<T> out(n);
    ParallelFor(n, [&](size_t i) { out[i] = fn(i); });
    return out;
  }

  /// ParallelFor with per-shard state: every index in [0, n) is routed to
  /// shard `shard_of(i)` (a value in [0, num_shards)), then fn(shard, i)
  /// runs for each index with all of one shard's indices visited in
  /// increasing order by a single worker at a time. fn may therefore
  /// mutate shard-local state without locks, and whatever state it builds
  /// is identical to the serial loop `for i: fn(shard_of(i), i)` — the
  /// schedule only decides which worker owns which shard. Routing runs
  /// serially on the caller, so keep shard_of cheap (e.g. a lookup of
  /// precomputed codes).
  void ParallelForSharded(size_t n, size_t num_shards,
                          const std::function<size_t(size_t)>& shard_of,
                          const std::function<void(size_t, size_t)>& fn);

 private:
  struct Batch;  // One ParallelFor invocation in flight.

  void WorkerLoop();
  static void RunBatch(const std::shared_ptr<Batch>& batch);

  /// Scheduler-wake predicate (workers sleep until shutdown or work).
  bool ShouldWakeLocked() const FCM_REQUIRES(mu_) {
    return shutdown_ || !pending_.empty();
  }

  int num_threads_ = 1;
  std::vector<std::thread> workers_;
  Mutex mu_;
  CondVar cv_;
  /// In-flight batches; exhausted entries are pruned by workers and by the
  /// owning ParallelFor on its way out.
  std::deque<std::shared_ptr<Batch>> pending_ FCM_GUARDED_BY(mu_);
  bool shutdown_ FCM_GUARDED_BY(mu_) = false;
};

}  // namespace fcm::common

#endif  // FCM_COMMON_THREAD_POOL_H_
