// AVX2+FMA kernel table. This translation unit is the only one compiled
// with -mavx2 -mfma (CMake sets FCM_SIMD_COMPILE_AVX2 and the flags on
// this file alone), so the intrinsics below must stay behind the runtime
// cpuid check in simd.cc — nothing here runs unless Active() selected it.
//
// Float32 kernels retire 8 lanes per vector with fused multiply-add and
// multiple accumulators (the scalar versions are latency-bound on one
// sequential add chain); sub-vector remainders use AVX2 masked loads and
// stores so no kernel ever touches memory past the caller's range. The
// float64 reductions keep vector main loops with scalar tails. Sums are
// reassociated, so results match scalar only within the 1e-5 relative
// tolerance documented in simd.h — except DtwRowF64, which performs the
// same IEEE ops per element and stays bit-identical.

#include "common/simd.h"

#if defined(FCM_SIMD_COMPILE_AVX2) && \
    (defined(__x86_64__) || defined(__i386__))

#include <immintrin.h>

#include <cmath>
#include <limits>

namespace fcm::simd {

namespace {

/// Lane mask enabling the first `rem` (< 8) float lanes.
inline __m256i TailMask32(size_t rem) {
  const __m256i lane = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
  return _mm256_cmpgt_epi32(_mm256_set1_epi32(static_cast<int>(rem)), lane);
}

inline float HorizontalSum(__m256 v) {
  __m128 lo = _mm256_castps256_ps128(v);
  __m128 hi = _mm256_extractf128_ps(v, 1);
  lo = _mm_add_ps(lo, hi);
  lo = _mm_add_ps(lo, _mm_movehl_ps(lo, lo));
  lo = _mm_add_ss(lo, _mm_shuffle_ps(lo, lo, 1));
  return _mm_cvtss_f32(lo);
}

inline double HorizontalSum(__m256d v) {
  __m128d lo = _mm256_castpd256_pd128(v);
  __m128d hi = _mm256_extractf128_pd(v, 1);
  lo = _mm_add_pd(lo, hi);
  return _mm_cvtsd_f64(_mm_add_sd(lo, _mm_unpackhi_pd(lo, lo)));
}

float Avx2DotF32(const float* a, const float* b, size_t n) {
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i),
                           acc0);
    acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i + 8),
                           _mm256_loadu_ps(b + i + 8), acc1);
  }
  if (i + 8 <= n) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i),
                           acc0);
    i += 8;
  }
  if (i < n) {
    const __m256i mask = TailMask32(n - i);
    acc1 = _mm256_fmadd_ps(_mm256_maskload_ps(a + i, mask),
                           _mm256_maskload_ps(b + i, mask), acc1);
  }
  return HorizontalSum(_mm256_add_ps(acc0, acc1));
}

void Avx2AxpyF32(float alpha, const float* x, float* y, size_t n) {
  const __m256 av = _mm256_set1_ps(alpha);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(
        y + i, _mm256_fmadd_ps(av, _mm256_loadu_ps(x + i),
                               _mm256_loadu_ps(y + i)));
  }
  if (i < n) {
    const __m256i mask = TailMask32(n - i);
    _mm256_maskstore_ps(
        y + i, mask,
        _mm256_fmadd_ps(av, _mm256_maskload_ps(x + i, mask),
                        _mm256_maskload_ps(y + i, mask)));
  }
}

void Avx2GemmMicroF32(const float* a, size_t a_stride, const float* b,
                      size_t b_stride, size_t t_len, float* c, size_t m) {
  if (t_len == 0 || m == 0) return;
  size_t j = 0;
  // 32-wide register block: c stays in four accumulators across the whole
  // t sweep, so each c element is loaded and stored once per call instead
  // of once per (t, j) pass.
  for (; j + 32 <= m; j += 32) {
    float* cj = c + j;
    __m256 acc0 = _mm256_loadu_ps(cj);
    __m256 acc1 = _mm256_loadu_ps(cj + 8);
    __m256 acc2 = _mm256_loadu_ps(cj + 16);
    __m256 acc3 = _mm256_loadu_ps(cj + 24);
    for (size_t t = 0; t < t_len; ++t) {
      const float at = a[t * a_stride];
      if (at == 0.0f) continue;
      const __m256 av = _mm256_set1_ps(at);
      const float* bj = b + t * b_stride + j;
      acc0 = _mm256_fmadd_ps(av, _mm256_loadu_ps(bj), acc0);
      acc1 = _mm256_fmadd_ps(av, _mm256_loadu_ps(bj + 8), acc1);
      acc2 = _mm256_fmadd_ps(av, _mm256_loadu_ps(bj + 16), acc2);
      acc3 = _mm256_fmadd_ps(av, _mm256_loadu_ps(bj + 24), acc3);
    }
    _mm256_storeu_ps(cj, acc0);
    _mm256_storeu_ps(cj + 8, acc1);
    _mm256_storeu_ps(cj + 16, acc2);
    _mm256_storeu_ps(cj + 24, acc3);
  }
  for (; j + 8 <= m; j += 8) {
    __m256 acc = _mm256_loadu_ps(c + j);
    for (size_t t = 0; t < t_len; ++t) {
      const float at = a[t * a_stride];
      if (at == 0.0f) continue;
      acc = _mm256_fmadd_ps(_mm256_set1_ps(at),
                            _mm256_loadu_ps(b + t * b_stride + j), acc);
    }
    _mm256_storeu_ps(c + j, acc);
  }
  if (j < m) {
    const __m256i mask = TailMask32(m - j);
    __m256 acc = _mm256_maskload_ps(c + j, mask);
    for (size_t t = 0; t < t_len; ++t) {
      const float at = a[t * a_stride];
      if (at == 0.0f) continue;
      acc = _mm256_fmadd_ps(
          _mm256_set1_ps(at),
          _mm256_maskload_ps(b + t * b_stride + j, mask), acc);
    }
    _mm256_maskstore_ps(c + j, mask, acc);
  }
}

double Avx2DotF64(const double* a, const double* b, size_t n) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i),
                           acc0);
    acc1 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i + 4),
                           _mm256_loadu_pd(b + i + 4), acc1);
  }
  if (i + 4 <= n) {
    acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i),
                           acc0);
    i += 4;
  }
  double s = HorizontalSum(_mm256_add_pd(acc0, acc1));
  for (; i < n; ++i) s += a[i] * b[i];
  return s;
}

double Avx2ReduceSumF64(const double* x, size_t n) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc0 = _mm256_add_pd(acc0, _mm256_loadu_pd(x + i));
    acc1 = _mm256_add_pd(acc1, _mm256_loadu_pd(x + i + 4));
  }
  if (i + 4 <= n) {
    acc0 = _mm256_add_pd(acc0, _mm256_loadu_pd(x + i));
    i += 4;
  }
  double s = HorizontalSum(_mm256_add_pd(acc0, acc1));
  for (; i < n; ++i) s += x[i];
  return s;
}

double Avx2SumSqDiffF64(const double* x, size_t n, double mean) {
  const __m256d mv = _mm256_set1_pd(mean);
  __m256d acc = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d d = _mm256_sub_pd(_mm256_loadu_pd(x + i), mv);
    acc = _mm256_fmadd_pd(d, d, acc);
  }
  double s = HorizontalSum(acc);
  for (; i < n; ++i) s += (x[i] - mean) * (x[i] - mean);
  return s;
}

void Avx2MinMaxF64(const double* x, size_t n, double* mn, double* mx) {
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  size_t i = 0;
  if (n >= 4) {
    __m256d vlo = _mm256_set1_pd(lo);
    __m256d vhi = _mm256_set1_pd(hi);
    for (; i + 4 <= n; i += 4) {
      const __m256d v = _mm256_loadu_pd(x + i);
      vlo = _mm256_min_pd(vlo, v);
      vhi = _mm256_max_pd(vhi, v);
    }
    alignas(32) double buf[4];
    _mm256_store_pd(buf, vlo);
    for (double v : buf) lo = v < lo ? v : lo;
    _mm256_store_pd(buf, vhi);
    for (double v : buf) hi = v > hi ? v : hi;
  }
  for (; i < n; ++i) {
    lo = x[i] < lo ? x[i] : lo;
    hi = x[i] > hi ? x[i] : hi;
  }
  *mn = lo;
  *mx = hi;
}

double Avx2DtwRowF64(double xi, const double* y, const double* prev,
                     double* cur, double* cost, size_t j_lo, size_t j_hi) {
  // Pass 1 (vector): cost[j] = |xi - y[j-1]| and the cur[j-1]-independent
  // part of the recurrence, cur[j] = cost[j] + min(prev[j], prev[j-1]).
  // Pass 2 (sequential scan): fold in the in-row dependency,
  // cur[j] = min(cur[j], cost[j] + cur[j-1]). Addition is monotone, so
  // min(cost + p, cost + q) == cost + min(p, q) holds bitwise and the two
  // passes reproduce the one-pass scalar recurrence exactly.
  const __m256d xv = _mm256_set1_pd(xi);
  const __m256d sign_clear =
      _mm256_castsi256_pd(_mm256_set1_epi64x(0x7fffffffffffffffLL));
  size_t j = j_lo;
  for (; j + 4 <= j_hi + 1; j += 4) {
    const __m256d cv = _mm256_and_pd(
        sign_clear, _mm256_sub_pd(xv, _mm256_loadu_pd(y + j - 1)));
    _mm256_storeu_pd(cost + j, cv);
    const __m256d pmin = _mm256_min_pd(_mm256_loadu_pd(prev + j),
                                       _mm256_loadu_pd(prev + j - 1));
    _mm256_storeu_pd(cur + j, _mm256_add_pd(cv, pmin));
  }
  for (; j <= j_hi; ++j) {
    cost[j] = std::fabs(xi - y[j - 1]);
    cur[j] = cost[j] + (prev[j] < prev[j - 1] ? prev[j] : prev[j - 1]);
  }
  double row_min = std::numeric_limits<double>::infinity();
  for (j = j_lo; j <= j_hi; ++j) {
    const double via_left = cost[j] + cur[j - 1];
    if (via_left < cur[j]) cur[j] = via_left;
    if (cur[j] < row_min) row_min = cur[j];
  }
  return row_min;
}

/// Horizontal sum of 8 int32 lanes.
inline int32_t HorizontalSum(__m256i v) {
  __m128i lo = _mm256_castsi256_si128(v);
  const __m128i hi = _mm256_extracti128_si256(v, 1);
  lo = _mm_add_epi32(lo, hi);
  lo = _mm_add_epi32(lo, _mm_shuffle_epi32(lo, _MM_SHUFFLE(1, 0, 3, 2)));
  lo = _mm_add_epi32(lo, _mm_shuffle_epi32(lo, _MM_SHUFFLE(2, 3, 0, 1)));
  return _mm_cvtsi128_si32(lo);
}

/// 32-lane int8 multiply-accumulate into 8 int32 lanes: AVX2 has no
/// s8 x s8 multiply, so route the product through the unsigned-signed
/// maddubs idiom — |a| * (b * sign(a)) == a * b element-wise, |a| <= 127
/// fits u8, and each i16 pair sum is <= 2 * 127 * 127 < 2^15 (why the
/// kernels require operands in [-127, 127]; see simd.h). madd then widens
/// the pairs into exact i32 lanes.
inline __m256i MulAccI8(__m256i acc, __m256i va, __m256i vb) {
  const __m256i abs_a = _mm256_abs_epi8(va);
  const __m256i signed_b = _mm256_sign_epi8(vb, va);
  const __m256i pairs16 = _mm256_maddubs_epi16(abs_a, signed_b);
  return _mm256_add_epi32(acc,
                          _mm256_madd_epi16(pairs16, _mm256_set1_epi16(1)));
}

/// Shared i32 accumulation core of DotI8 and GemmI8F32. Integer adds are
/// exact, so two accumulators and a scalar tail still return the same
/// bits as the scalar kernel.
inline int32_t Avx2DotI8Core(const int8_t* a, const int8_t* b, size_t n) {
  __m256i acc0 = _mm256_setzero_si256();
  __m256i acc1 = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 64 <= n; i += 64) {
    acc0 = MulAccI8(acc0,
                    _mm256_loadu_si256(
                        reinterpret_cast<const __m256i*>(a + i)),
                    _mm256_loadu_si256(
                        reinterpret_cast<const __m256i*>(b + i)));
    acc1 = MulAccI8(acc1,
                    _mm256_loadu_si256(
                        reinterpret_cast<const __m256i*>(a + i + 32)),
                    _mm256_loadu_si256(
                        reinterpret_cast<const __m256i*>(b + i + 32)));
  }
  if (i + 32 <= n) {
    acc0 = MulAccI8(acc0,
                    _mm256_loadu_si256(
                        reinterpret_cast<const __m256i*>(a + i)),
                    _mm256_loadu_si256(
                        reinterpret_cast<const __m256i*>(b + i)));
    i += 32;
  }
  int32_t s = HorizontalSum(_mm256_add_epi32(acc0, acc1));
  for (; i < n; ++i) {
    s += static_cast<int32_t>(a[i]) * static_cast<int32_t>(b[i]);
  }
  return s;
}

int32_t Avx2DotI8(const int8_t* a, const int8_t* b, size_t n) {
  return Avx2DotI8Core(a, b, n);
}

void Avx2GemmI8F32(const int8_t* a, const int8_t* b, size_t b_stride,
                   size_t n, float scale_a, const float* scale_b, float* c,
                   size_t m) {
  for (size_t r = 0; r < m; ++r) {
    const int32_t acc = Avx2DotI8Core(a, b + r * b_stride, n);
    // The pinned dequant epilogue shared by every target (see simd.h).
    c[r] = static_cast<float>(acc) * (scale_a * scale_b[r]);
  }
}

constexpr KernelTable kAvx2Kernels = {
    Target::kAvx2,     Avx2DotF32,       Avx2AxpyF32,
    Avx2GemmMicroF32,  Avx2DotF64,       Avx2ReduceSumF64,
    Avx2SumSqDiffF64,  Avx2MinMaxF64,    Avx2DtwRowF64,
    Avx2DotI8,         Avx2GemmI8F32,
};

}  // namespace

const KernelTable* GetAvx2Kernels() { return &kAvx2Kernels; }

}  // namespace fcm::simd

#else  // AVX2 not compiled into this build.

namespace fcm::simd {
const KernelTable* GetAvx2Kernels() { return nullptr; }
}  // namespace fcm::simd

#endif
