// Status / Result<T>: exception-free error propagation across public API
// boundaries, following the Arrow/Abseil convention.
//
//   fcm::common::Result<Table> t = LoadCsv(path);
//   if (!t.ok()) return t.status();
//   Use(t.value());

#ifndef FCM_COMMON_RESULT_H_
#define FCM_COMMON_RESULT_H_

#include <optional>
#include <string>
#include <utility>

#include "common/check.h"

namespace fcm::common {

/// Error category for a failed operation.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kIoError,
  kFailedPrecondition,
  kInternal,
};

/// Returns a human-readable name for a StatusCode.
inline const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "InvalidArgument";
    case StatusCode::kNotFound: return "NotFound";
    case StatusCode::kOutOfRange: return "OutOfRange";
    case StatusCode::kIoError: return "IoError";
    case StatusCode::kFailedPrecondition: return "FailedPrecondition";
    case StatusCode::kInternal: return "Internal";
  }
  return "Unknown";
}

/// Success-or-error outcome of an operation, carrying a message on
/// failure. [[nodiscard]]: silently dropping a Status is a compile
/// warning (an error under FCM_WERROR) — either handle it, propagate it
/// with FCM_RETURN_IF_ERROR, or consume it explicitly with
/// status.IgnoreError() naming why discarding is correct.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Formats as "Code: message" (or "OK").
  std::string ToString() const {
    if (ok()) return "OK";
    return std::string(StatusCodeName(code_)) + ": " + message_;
  }

  /// Explicitly discards this status. The only sanctioned way to drop a
  /// Status on the floor — the call documents, greppably, that failure at
  /// this site is intentionally not handled (e.g. best-effort cleanup).
  void IgnoreError() const {}

 private:
  StatusCode code_;
  std::string message_;
};

/// Holds either a value of type T or a failure Status. [[nodiscard]] like
/// Status: a dropped Result is a silently swallowed failure.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit from value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT
  /// Implicit from non-OK status (failure). Aborts if given an OK status.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    FCM_CHECK(!status_.ok());
  }

  bool ok() const { return value_.has_value(); }

  /// The failure status; OK when this result holds a value.
  const Status& status() const { return status_; }

  /// The contained value. Requires ok().
  const T& value() const& {
    FCM_CHECK(ok());
    return *value_;
  }
  T& value() & {
    FCM_CHECK(ok());
    return *value_;
  }
  T&& value() && {
    FCM_CHECK(ok());
    return std::move(*value_);
  }

  /// Moves the value out. Requires ok().
  T ValueOrDie() && {
    FCM_CHECK(ok());
    return std::move(*value_);
  }

 private:
  std::optional<T> value_;
  Status status_;  // OK iff value_ engaged.
};

}  // namespace fcm::common

/// Propagates a failed Status from an expression returning Status.
#define FCM_RETURN_IF_ERROR(expr)                  \
  do {                                             \
    ::fcm::common::Status _st = (expr);            \
    if (!_st.ok()) return _st;                     \
  } while (0)

#endif  // FCM_COMMON_RESULT_H_
