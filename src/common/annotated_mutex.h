// Clang Thread Safety Analysis wrappers: the only mutex/condvar types the
// repo's concurrent subsystems may use (enforced by tools/fcm_lint.py rule
// `naked-mutex`). Every protected field carries FCM_GUARDED_BY, every
// helper that assumes a held lock carries FCM_REQUIRES, and the annotation
// build (-Wthread-safety -Werror=thread-safety, see FCM_WERROR in
// CMakeLists.txt) turns a lock dropped on the wrong field into a compile
// error under clang. Under GCC the attributes expand to nothing and the
// wrappers are zero-cost shims over the std primitives, so behavior is
// identical on both toolchains — only the static checking differs.
//
// Conventions (docs/ARCHITECTURE.md "Static analysis & invariant
// enforcement"):
//  - Fields: `T field_ FCM_GUARDED_BY(mu_);` — after the member, before
//    any initializer.
//  - Locked helpers: name ends in `Locked` and the declaration carries
//    FCM_REQUIRES(mu_).
//  - CondVar predicates: the analysis checks each lambda body as a
//    free-standing function, so a predicate reading guarded state must be
//    marked FCM_NO_THREAD_SAFETY_ANALYSIS (the wait itself still runs
//    under the caller's MutexLock; only the *check* is exempted).

#ifndef FCM_COMMON_ANNOTATED_MUTEX_H_
#define FCM_COMMON_ANNOTATED_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

// ---- Attribute macros (no-ops outside clang) ----
#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define FCM_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef FCM_THREAD_ANNOTATION
#define FCM_THREAD_ANNOTATION(x)
#endif

#define FCM_CAPABILITY(x) FCM_THREAD_ANNOTATION(capability(x))
#define FCM_SCOPED_CAPABILITY FCM_THREAD_ANNOTATION(scoped_lockable)
#define FCM_GUARDED_BY(x) FCM_THREAD_ANNOTATION(guarded_by(x))
#define FCM_PT_GUARDED_BY(x) FCM_THREAD_ANNOTATION(pt_guarded_by(x))
#define FCM_REQUIRES(...) \
  FCM_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define FCM_REQUIRES_SHARED(...) \
  FCM_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#define FCM_ACQUIRE(...) \
  FCM_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define FCM_ACQUIRE_SHARED(...) \
  FCM_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define FCM_RELEASE(...) \
  FCM_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define FCM_RELEASE_SHARED(...) \
  FCM_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define FCM_EXCLUDES(...) FCM_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define FCM_NO_THREAD_SAFETY_ANALYSIS \
  FCM_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace fcm::common {

class CondVar;

/// Exclusive mutex carrying the `mutex` capability. Prefer MutexLock over
/// manual Lock/Unlock pairs; manual pairs are for lock handoff across
/// scopes only.
class FCM_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() FCM_ACQUIRE() { mu_.lock(); }
  void Unlock() FCM_RELEASE() { mu_.unlock(); }

 private:
  friend class CondVar;
  std::mutex mu_;  // fcm-lint: disable=naked-mutex (the wrapper itself)
};

/// RAII lock for Mutex. Supports early release (Unlock) and re-acquire
/// (Lock) so callers can drop the lock before slow work — e.g. settling a
/// promise — without leaving the scope.
class FCM_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) FCM_ACQUIRE(mu) : mu_(mu), held_(true) {
    mu_->Lock();
  }
  ~MutexLock() FCM_RELEASE() {
    if (held_) mu_->Unlock();
  }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Releases early; the destructor then does nothing.
  void Unlock() FCM_RELEASE() {
    mu_->Unlock();
    held_ = false;
  }
  /// Re-acquires after an early Unlock.
  void Lock() FCM_ACQUIRE() {
    mu_->Lock();
    held_ = true;
  }

 private:
  Mutex* const mu_;
  bool held_;
};

/// Reader-writer mutex carrying the `shared_mutex` capability (failpoint
/// registry: lock-free-ish hit path takes the shared side).
class FCM_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() FCM_ACQUIRE() { mu_.lock(); }
  void Unlock() FCM_RELEASE() { mu_.unlock(); }
  void ReaderLock() FCM_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void ReaderUnlock() FCM_RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  std::shared_mutex mu_;  // fcm-lint: disable=naked-mutex (wrapper)
};

/// RAII exclusive lock for SharedMutex.
class FCM_SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex* mu) FCM_ACQUIRE(mu) : mu_(mu) {
    mu_->Lock();
  }
  ~WriterMutexLock() FCM_RELEASE() { mu_->Unlock(); }
  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex* const mu_;
};

/// RAII shared lock for SharedMutex.
class FCM_SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex* mu) FCM_ACQUIRE_SHARED(mu)
      : mu_(mu) {
    mu_->ReaderLock();
  }
  ~ReaderMutexLock() FCM_RELEASE_SHARED() { mu_->ReaderUnlock(); }
  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex* const mu_;
};

/// Condition variable paired with common::Mutex. Waits take the Mutex the
/// caller already holds (via MutexLock); predicates that read guarded
/// state must be FCM_NO_THREAD_SAFETY_ANALYSIS (see the file comment).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex* mu) FCM_REQUIRES(mu) {
    std::unique_lock<std::mutex> lk(mu->mu_, std::adopt_lock);
    cv_.wait(lk);
    lk.release();  // The caller's MutexLock still owns the mutex.
  }

  template <typename Predicate>
  void Wait(Mutex* mu, Predicate pred) FCM_REQUIRES(mu) {
    std::unique_lock<std::mutex> lk(mu->mu_, std::adopt_lock);
    cv_.wait(lk, std::move(pred));
    lk.release();
  }

  /// Returns pred() at exit: false means the deadline passed with the
  /// predicate still unsatisfied (same contract as std::condition_variable
  /// wait_until).
  template <typename TimePoint, typename Predicate>
  bool WaitUntil(Mutex* mu, const TimePoint& deadline, Predicate pred)
      FCM_REQUIRES(mu) {
    std::unique_lock<std::mutex> lk(mu->mu_, std::adopt_lock);
    const bool satisfied = cv_.wait_until(lk, deadline, std::move(pred));
    lk.release();
    return satisfied;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;  // fcm-lint: disable=naked-mutex (wrapper)
};

}  // namespace fcm::common

#endif  // FCM_COMMON_ANNOTATED_MUTEX_H_
