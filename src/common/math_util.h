// Small numeric helpers shared across modules.

#ifndef FCM_COMMON_MATH_UTIL_H_
#define FCM_COMMON_MATH_UTIL_H_

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <vector>

#include "common/check.h"
#include "common/simd.h"

namespace fcm::common {

/// Clamps x into [lo, hi].
inline double Clamp(double x, double lo, double hi) {
  return std::max(lo, std::min(hi, x));
}

/// Arithmetic mean; 0 for an empty range.
inline double Mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  return simd::ReduceSumF64(v.data(), v.size()) /
         static_cast<double>(v.size());
}

/// Population variance; 0 for fewer than 2 elements.
inline double Variance(const std::vector<double>& v) {
  if (v.size() < 2) return 0.0;
  return simd::SumSqDiffF64(v.data(), v.size(), Mean(v)) /
         static_cast<double>(v.size());
}

/// Population standard deviation; 0 for fewer than 2 elements.
inline double Stddev(const std::vector<double>& v) {
  return std::sqrt(Variance(v));
}

/// Minimum element; +inf for an empty range.
inline double Min(const std::vector<double>& v) {
  double mn, mx;
  simd::MinMaxF64(v.data(), v.size(), &mn, &mx);
  return mn;
}

/// Maximum element; -inf for an empty range.
inline double Max(const std::vector<double>& v) {
  double mn, mx;
  simd::MinMaxF64(v.data(), v.size(), &mn, &mx);
  return mx;
}

/// Minimum and maximum in one pass; +inf / -inf for an empty range.
inline void MinMax(const std::vector<double>& v, double* mn, double* mx) {
  simd::MinMaxF64(v.data(), v.size(), mn, mx);
}

/// Sum of elements.
inline double Sum(const std::vector<double>& v) {
  return simd::ReduceSumF64(v.data(), v.size());
}

/// Dot product of equal-length vectors.
inline double Dot(const std::vector<double>& a, const std::vector<double>& b) {
  FCM_CHECK_EQ(a.size(), b.size());
  return simd::DotF64(a.data(), b.data(), a.size());
}

/// Euclidean norm.
inline double Norm(const std::vector<double>& v) {
  return std::sqrt(Dot(v, v));
}

/// Cosine similarity; 0 when either vector is (near) zero.
inline double CosineSimilarity(const std::vector<double>& a,
                               const std::vector<double>& b) {
  const double na = Norm(a), nb = Norm(b);
  if (na < 1e-12 || nb < 1e-12) return 0.0;
  return Dot(a, b) / (na * nb);
}

/// Linear interpolation between a and b at parameter t in [0,1].
inline double Lerp(double a, double b, double t) { return a + (b - a) * t; }

/// True when |a-b| <= tol (absolute) or relative tolerance is met.
inline bool AlmostEqual(double a, double b, double tol = 1e-9) {
  const double diff = std::fabs(a - b);
  if (diff <= tol) return true;
  return diff <= tol * std::max(std::fabs(a), std::fabs(b));
}

/// Linearly resamples `v` to `n` points (piecewise-linear interpolation).
/// An input of size 1 is replicated. Requires !v.empty() && n > 0.
std::vector<double> ResampleLinear(const std::vector<double>& v, size_t n);

}  // namespace fcm::common

#endif  // FCM_COMMON_MATH_UTIL_H_
