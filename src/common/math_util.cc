#include "common/math_util.h"

namespace fcm::common {

std::vector<double> ResampleLinear(const std::vector<double>& v, size_t n) {
  FCM_CHECK(!v.empty());
  FCM_CHECK_GT(n, 0u);
  std::vector<double> out(n);
  if (v.size() == 1) {
    std::fill(out.begin(), out.end(), v[0]);
    return out;
  }
  if (n == 1) {
    out[0] = v[0];
    return out;
  }
  const double scale =
      static_cast<double>(v.size() - 1) / static_cast<double>(n - 1);
  for (size_t i = 0; i < n; ++i) {
    const double pos = static_cast<double>(i) * scale;
    const size_t lo = static_cast<size_t>(pos);
    const size_t hi = std::min(lo + 1, v.size() - 1);
    const double t = pos - static_cast<double>(lo);
    out[i] = Lerp(v[lo], v[hi], t);
  }
  return out;
}

}  // namespace fcm::common
