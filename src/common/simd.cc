#include "common/simd.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>

#include "common/logging.h"

namespace fcm::simd {

namespace {

// ---- Scalar kernels ----
//
// Each scalar kernel reproduces, operation for operation, the loop it
// replaced in the pre-dispatch code (single sequential accumulator, same
// zero-skips), which is what makes FCM_SIMD=scalar bit-identical to the
// historical output.

float ScalarDotF32(const float* a, const float* b, size_t n) {
  float s = 0.0f;
  for (size_t i = 0; i < n; ++i) s += a[i] * b[i];
  return s;
}

void ScalarAxpyF32(float alpha, const float* x, float* y, size_t n) {
  for (size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void ScalarGemmMicroF32(const float* a, size_t a_stride, const float* b,
                        size_t b_stride, size_t t_len, float* c, size_t m) {
  for (size_t t = 0; t < t_len; ++t) {
    const float at = a[t * a_stride];
    if (at == 0.0f) continue;
    const float* brow = b + t * b_stride;
    for (size_t j = 0; j < m; ++j) c[j] += at * brow[j];
  }
}

double ScalarDotF64(const double* a, const double* b, size_t n) {
  double s = 0.0;
  for (size_t i = 0; i < n; ++i) s += a[i] * b[i];
  return s;
}

double ScalarReduceSumF64(const double* x, size_t n) {
  double s = 0.0;
  for (size_t i = 0; i < n; ++i) s += x[i];
  return s;
}

double ScalarSumSqDiffF64(const double* x, size_t n, double mean) {
  double s = 0.0;
  for (size_t i = 0; i < n; ++i) s += (x[i] - mean) * (x[i] - mean);
  return s;
}

void ScalarMinMaxF64(const double* x, size_t n, double* mn, double* mx) {
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < n; ++i) {
    lo = std::min(lo, x[i]);
    hi = std::max(hi, x[i]);
  }
  *mn = lo;
  *mx = hi;
}

double ScalarDtwRowF64(double xi, const double* y, const double* prev,
                       double* cur, double* /*cost*/, size_t j_lo,
                       size_t j_hi) {
  double row_min = std::numeric_limits<double>::infinity();
  for (size_t j = j_lo; j <= j_hi; ++j) {
    const double cost = std::fabs(xi - y[j - 1]);
    const double best = std::min({prev[j], cur[j - 1], prev[j - 1]});
    cur[j] = cost + best;
    row_min = std::min(row_min, cur[j]);
  }
  return row_min;
}

int32_t ScalarDotI8(const int8_t* a, const int8_t* b, size_t n) {
  int32_t s = 0;
  for (size_t i = 0; i < n; ++i) {
    s += static_cast<int32_t>(a[i]) * static_cast<int32_t>(b[i]);
  }
  return s;
}

void ScalarGemmI8F32(const int8_t* a, const int8_t* b, size_t b_stride,
                     size_t n, float scale_a, const float* scale_b, float* c,
                     size_t m) {
  for (size_t r = 0; r < m; ++r) {
    const int32_t acc = ScalarDotI8(a, b + r * b_stride, n);
    // The pinned dequant epilogue shared by every target (see simd.h).
    c[r] = static_cast<float>(acc) * (scale_a * scale_b[r]);
  }
}

constexpr KernelTable kScalarKernels = {
    Target::kScalar,     ScalarDotF32,       ScalarAxpyF32,
    ScalarGemmMicroF32,  ScalarDotF64,       ScalarReduceSumF64,
    ScalarSumSqDiffF64,  ScalarMinMaxF64,    ScalarDtwRowF64,
    ScalarDotI8,         ScalarGemmI8F32,
};

// ---- Dispatch resolution ----

const KernelTable* TableFor(Target target) {
  switch (target) {
    case Target::kScalar: return &kScalarKernels;
    case Target::kAvx2: return GetAvx2Kernels();
    case Target::kNeon: return GetNeonKernels();
  }
  return nullptr;
}

bool CpuSupports(Target target) {
  switch (target) {
    case Target::kScalar:
      return true;
    case Target::kAvx2:
#if defined(__x86_64__) || defined(__i386__)
      return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
      return false;
#endif
    case Target::kNeon:
      // The NEON unit is only compiled where NEON is baseline, so a
      // non-null table implies hardware support.
      return true;
  }
  return false;
}

/// Targets usable in this process: compiled in and CPU-supported.
bool TargetAvailable(Target target) {
  return TableFor(target) != nullptr && CpuSupports(target);
}

/// Best available target, AVX2 > NEON > scalar (the two SIMD targets are
/// mutually exclusive per architecture).
Target BestTarget() {
  if (TargetAvailable(Target::kAvx2)) return Target::kAvx2;
  if (TargetAvailable(Target::kNeon)) return Target::kNeon;
  return Target::kScalar;
}

/// Resolves FCM_SIMD via ResolveEnvSpec and logs the fallback loudly:
/// an unrecognized value is a configuration bug (ERROR, naming the valid
/// set), an unavailable one a platform mismatch (WARN). Either way the
/// process keeps serving on the best available target — a stale override
/// degrades dispatch, never disables serving.
Target ResolveStartupTarget() {
  const char* env = std::getenv("FCM_SIMD");
  const EnvSpecResolution r = ResolveEnvSpec(env);
  if (!r.recognized) {
    FCM_LOGS(ERROR) << "FCM_SIMD=" << env << " is not one of "
                    << ValidEnvSpecs() << "; ignoring the override and using "
                    << "auto (" << TargetName(r.target) << ")";
  } else if (!r.available) {
    FCM_LOGS(WARN) << "FCM_SIMD=" << env
                   << " is not compiled in or not supported by this CPU; "
                      "using auto ("
                   << TargetName(r.target) << ")";
  }
  return r.target;
}

std::atomic<const KernelTable*> g_active{nullptr};

}  // namespace

const char* TargetName(Target target) {
  switch (target) {
    case Target::kScalar: return "scalar";
    case Target::kAvx2: return "avx2";
    case Target::kNeon: return "neon";
  }
  return "?";
}

const KernelTable& Active() {
  const KernelTable* table = g_active.load(std::memory_order_acquire);
  if (table == nullptr) {
    // Racing first calls resolve to the same table; the store is idempotent.
    table = TableFor(ResolveStartupTarget());
    g_active.store(table, std::memory_order_release);
  }
  return *table;
}

Target ActiveTarget() { return Active().target; }

bool SetTarget(Target target) {
  if (!TargetAvailable(target)) return false;
  g_active.store(TableFor(target), std::memory_order_release);
  return true;
}

Target ResetTarget() {
  const KernelTable* table = TableFor(ResolveStartupTarget());
  g_active.store(table, std::memory_order_release);
  return table->target;
}

std::vector<Target> SupportedTargets() {
  std::vector<Target> out;
  for (Target t : {Target::kAvx2, Target::kNeon, Target::kScalar}) {
    if (TargetAvailable(t)) out.push_back(t);
  }
  return out;
}

const char* ValidEnvSpecs() { return "scalar|avx2|neon|auto"; }

EnvSpecResolution ResolveEnvSpec(const char* spec) {
  EnvSpecResolution r;
  if (spec == nullptr || *spec == '\0' || std::strcmp(spec, "auto") == 0) {
    r.target = BestTarget();
    r.recognized = true;
    r.available = true;
    return r;
  }
  Target requested = Target::kScalar;
  if (std::strcmp(spec, "scalar") == 0) {
    requested = Target::kScalar;
  } else if (std::strcmp(spec, "avx2") == 0) {
    requested = Target::kAvx2;
  } else if (std::strcmp(spec, "neon") == 0) {
    requested = Target::kNeon;
  } else {
    r.target = BestTarget();
    return r;  // Unrecognized: recognized/available stay false.
  }
  r.recognized = true;
  r.available = TargetAvailable(requested);
  r.target = r.available ? requested : BestTarget();
  return r;
}

}  // namespace fcm::simd
