#include "common/quantize.h"

#include <algorithm>
#include <cmath>

namespace fcm::common {

float QuantizeRow(const float* src, size_t n, int8_t* dst) {
  float maxabs = 0.0f;
  for (size_t i = 0; i < n; ++i) {
    maxabs = std::max(maxabs, std::fabs(src[i]));
  }
  if (maxabs == 0.0f) {
    for (size_t i = 0; i < n; ++i) dst[i] = 0;
    return 0.0f;
  }
  const float scale = maxabs / 127.0f;
  QuantizeRowWithScale(src, n, scale, dst);
  return scale;
}

void QuantizeRowWithScale(const float* src, size_t n, float scale,
                          int8_t* dst) {
  if (scale <= 0.0f) {
    for (size_t i = 0; i < n; ++i) dst[i] = 0;
    return;
  }
  const float inv = 1.0f / scale;
  for (size_t i = 0; i < n; ++i) {
    long code = std::lrintf(src[i] * inv);
    if (code > 127) code = 127;
    if (code < -127) code = -127;
    dst[i] = static_cast<int8_t>(code);
  }
}

void DequantizeRow(const int8_t* src, size_t n, float scale, float* dst) {
  for (size_t i = 0; i < n; ++i) dst[i] = Dequantize(src[i], scale);
}

}  // namespace fcm::common
