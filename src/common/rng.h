// Deterministic pseudo-random number generation.
//
// All stochastic components in this repository (corpus generation, model
// initialization, negative sampling, LSH hyperplanes) draw from fcm::common::Rng
// so that every experiment is reproducible from a single seed.

#ifndef FCM_COMMON_RNG_H_
#define FCM_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace fcm::common {

/// xoshiro256** PRNG seeded via splitmix64.
///
/// Fast, high-quality, and fully deterministic across platforms (unlike
/// std::mt19937 + std::normal_distribution whose outputs are
/// implementation-defined for some distributions).
class Rng {
 public:
  /// Seeds the generator; identical seeds produce identical streams.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit value.
  uint64_t NextU64();

  /// Uniform double in [0, 1).
  double Uniform();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t UniformInt(uint64_t n);

  /// Standard normal via Box-Muller (deterministic).
  double Normal();

  /// Normal with given mean and standard deviation.
  double Normal(double mean, double stddev);

  /// Bernoulli draw with probability p of true.
  bool Bernoulli(double p);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(UniformInt(i + 1));
      std::swap((*v)[i], (*v)[j]);
    }
  }

  /// Samples k distinct indices from [0, n) without replacement.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

  /// Derives an independent child generator (for parallel streams).
  Rng Fork();

 private:
  uint64_t s_[4];
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace fcm::common

#endif  // FCM_COMMON_RNG_H_
