#include "common/logging.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace fcm::common {

namespace {

LogLevel ParseEnvLevel() {
  const char* env = std::getenv("FCM_LOG_LEVEL");
  if (env == nullptr) return LogLevel::kWarn;
  int v = std::atoi(env);
  if (v < 0) v = 0;
  if (v > 3) v = 3;
  return static_cast<LogLevel>(v);
}

LogLevel& MutableLevel() {
  static LogLevel level = ParseEnvLevel();
  return level;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

}  // namespace

void SetLogLevel(LogLevel level) { MutableLevel() = level; }

LogLevel GetLogLevel() { return MutableLevel(); }

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelName(level) << " " << Basename(file) << ":" << line
          << "] ";
}

LogMessage::~LogMessage() {
  if (level_ < GetLogLevel()) return;
  std::fprintf(stderr, "%s\n", stream_.str().c_str());
}

}  // namespace fcm::common
