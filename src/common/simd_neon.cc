// NEON kernel table for aarch64, where Advanced SIMD is baseline — no
// extra compile flags and no cpuid gate needed; CMake defines
// FCM_SIMD_COMPILE_NEON on this file on ARM targets only. Kernels use
// 128-bit vectors with fused multiply-add and scalar tails (NEON has no
// masked loads/stores, and sub-vector tails are at most 3 lanes). The
// same tolerance contract as the AVX2 unit applies: reassociated sums
// within 1e-5 relative of scalar, DtwRowF64 bit-identical.

#include "common/simd.h"

#if defined(FCM_SIMD_COMPILE_NEON) && \
    (defined(__aarch64__) || defined(__ARM_NEON))

#include <arm_neon.h>

#include <cmath>
#include <limits>

namespace fcm::simd {

namespace {

float NeonDotF32(const float* a, const float* b, size_t n) {
  float32x4_t acc0 = vdupq_n_f32(0.0f);
  float32x4_t acc1 = vdupq_n_f32(0.0f);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc0 = vfmaq_f32(acc0, vld1q_f32(a + i), vld1q_f32(b + i));
    acc1 = vfmaq_f32(acc1, vld1q_f32(a + i + 4), vld1q_f32(b + i + 4));
  }
  if (i + 4 <= n) {
    acc0 = vfmaq_f32(acc0, vld1q_f32(a + i), vld1q_f32(b + i));
    i += 4;
  }
  float s = vaddvq_f32(vaddq_f32(acc0, acc1));
  for (; i < n; ++i) s += a[i] * b[i];
  return s;
}

void NeonAxpyF32(float alpha, const float* x, float* y, size_t n) {
  const float32x4_t av = vdupq_n_f32(alpha);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    vst1q_f32(y + i, vfmaq_f32(vld1q_f32(y + i), av, vld1q_f32(x + i)));
  }
  for (; i < n; ++i) y[i] += alpha * x[i];
}

void NeonGemmMicroF32(const float* a, size_t a_stride, const float* b,
                      size_t b_stride, size_t t_len, float* c, size_t m) {
  if (t_len == 0 || m == 0) return;
  size_t j = 0;
  // 16-wide register block: c is held in four accumulators across the
  // whole t sweep (one load + one store per c element per call).
  for (; j + 16 <= m; j += 16) {
    float* cj = c + j;
    float32x4_t acc0 = vld1q_f32(cj);
    float32x4_t acc1 = vld1q_f32(cj + 4);
    float32x4_t acc2 = vld1q_f32(cj + 8);
    float32x4_t acc3 = vld1q_f32(cj + 12);
    for (size_t t = 0; t < t_len; ++t) {
      const float at = a[t * a_stride];
      if (at == 0.0f) continue;
      const float32x4_t av = vdupq_n_f32(at);
      const float* bj = b + t * b_stride + j;
      acc0 = vfmaq_f32(acc0, av, vld1q_f32(bj));
      acc1 = vfmaq_f32(acc1, av, vld1q_f32(bj + 4));
      acc2 = vfmaq_f32(acc2, av, vld1q_f32(bj + 8));
      acc3 = vfmaq_f32(acc3, av, vld1q_f32(bj + 12));
    }
    vst1q_f32(cj, acc0);
    vst1q_f32(cj + 4, acc1);
    vst1q_f32(cj + 8, acc2);
    vst1q_f32(cj + 12, acc3);
  }
  for (; j + 4 <= m; j += 4) {
    float32x4_t acc = vld1q_f32(c + j);
    for (size_t t = 0; t < t_len; ++t) {
      const float at = a[t * a_stride];
      if (at == 0.0f) continue;
      acc = vfmaq_f32(acc, vdupq_n_f32(at), vld1q_f32(b + t * b_stride + j));
    }
    vst1q_f32(c + j, acc);
  }
  for (; j < m; ++j) {
    float s = c[j];
    for (size_t t = 0; t < t_len; ++t) {
      const float at = a[t * a_stride];
      if (at == 0.0f) continue;
      s += at * b[t * b_stride + j];
    }
    c[j] = s;
  }
}

double NeonDotF64(const double* a, const double* b, size_t n) {
  float64x2_t acc0 = vdupq_n_f64(0.0);
  float64x2_t acc1 = vdupq_n_f64(0.0);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc0 = vfmaq_f64(acc0, vld1q_f64(a + i), vld1q_f64(b + i));
    acc1 = vfmaq_f64(acc1, vld1q_f64(a + i + 2), vld1q_f64(b + i + 2));
  }
  double s = vaddvq_f64(vaddq_f64(acc0, acc1));
  for (; i < n; ++i) s += a[i] * b[i];
  return s;
}

double NeonReduceSumF64(const double* x, size_t n) {
  float64x2_t acc0 = vdupq_n_f64(0.0);
  float64x2_t acc1 = vdupq_n_f64(0.0);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc0 = vaddq_f64(acc0, vld1q_f64(x + i));
    acc1 = vaddq_f64(acc1, vld1q_f64(x + i + 2));
  }
  double s = vaddvq_f64(vaddq_f64(acc0, acc1));
  for (; i < n; ++i) s += x[i];
  return s;
}

double NeonSumSqDiffF64(const double* x, size_t n, double mean) {
  const float64x2_t mv = vdupq_n_f64(mean);
  float64x2_t acc = vdupq_n_f64(0.0);
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const float64x2_t d = vsubq_f64(vld1q_f64(x + i), mv);
    acc = vfmaq_f64(acc, d, d);
  }
  double s = vaddvq_f64(acc);
  for (; i < n; ++i) s += (x[i] - mean) * (x[i] - mean);
  return s;
}

void NeonMinMaxF64(const double* x, size_t n, double* mn, double* mx) {
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  size_t i = 0;
  if (n >= 2) {
    float64x2_t vlo = vdupq_n_f64(lo);
    float64x2_t vhi = vdupq_n_f64(hi);
    for (; i + 2 <= n; i += 2) {
      const float64x2_t v = vld1q_f64(x + i);
      vlo = vminq_f64(vlo, v);
      vhi = vmaxq_f64(vhi, v);
    }
    lo = vminvq_f64(vlo);
    hi = vmaxvq_f64(vhi);
  }
  for (; i < n; ++i) {
    lo = x[i] < lo ? x[i] : lo;
    hi = x[i] > hi ? x[i] : hi;
  }
  *mn = lo;
  *mx = hi;
}

double NeonDtwRowF64(double xi, const double* y, const double* prev,
                     double* cur, double* cost, size_t j_lo, size_t j_hi) {
  // Two-pass form of the row recurrence; see the AVX2 unit for why the
  // split is bitwise identical to the one-pass scalar loop.
  const float64x2_t xv = vdupq_n_f64(xi);
  size_t j = j_lo;
  for (; j + 2 <= j_hi + 1; j += 2) {
    const float64x2_t cv = vabsq_f64(vsubq_f64(xv, vld1q_f64(y + j - 1)));
    vst1q_f64(cost + j, cv);
    const float64x2_t pmin =
        vminq_f64(vld1q_f64(prev + j), vld1q_f64(prev + j - 1));
    vst1q_f64(cur + j, vaddq_f64(cv, pmin));
  }
  for (; j <= j_hi; ++j) {
    cost[j] = std::fabs(xi - y[j - 1]);
    cur[j] = cost[j] + (prev[j] < prev[j - 1] ? prev[j] : prev[j - 1]);
  }
  double row_min = std::numeric_limits<double>::infinity();
  for (j = j_lo; j <= j_hi; ++j) {
    const double via_left = cost[j] + cur[j - 1];
    if (via_left < cur[j]) cur[j] = via_left;
    if (cur[j] < row_min) row_min = cur[j];
  }
  return row_min;
}

/// Shared i32 accumulation core of DotI8 and GemmI8F32: vmull_s8 widens
/// 8 s8 x s8 products into exact i16 lanes (|p| <= 127 * 127 < 2^15),
/// vpadalq_s16 pair-adds them into i32 accumulators. Integer adds are
/// exact, so the reassociation still returns the scalar kernel's bits.
inline int32_t NeonDotI8Core(const int8_t* a, const int8_t* b, size_t n) {
  int32x4_t acc = vdupq_n_s32(0);
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const int8x16_t va = vld1q_s8(a + i);
    const int8x16_t vb = vld1q_s8(b + i);
    acc = vpadalq_s16(acc, vmull_s8(vget_low_s8(va), vget_low_s8(vb)));
    acc = vpadalq_s16(acc, vmull_s8(vget_high_s8(va), vget_high_s8(vb)));
  }
  int32_t s = vaddvq_s32(acc);
  for (; i < n; ++i) {
    s += static_cast<int32_t>(a[i]) * static_cast<int32_t>(b[i]);
  }
  return s;
}

int32_t NeonDotI8(const int8_t* a, const int8_t* b, size_t n) {
  return NeonDotI8Core(a, b, n);
}

void NeonGemmI8F32(const int8_t* a, const int8_t* b, size_t b_stride,
                   size_t n, float scale_a, const float* scale_b, float* c,
                   size_t m) {
  for (size_t r = 0; r < m; ++r) {
    const int32_t acc = NeonDotI8Core(a, b + r * b_stride, n);
    // The pinned dequant epilogue shared by every target (see simd.h).
    c[r] = static_cast<float>(acc) * (scale_a * scale_b[r]);
  }
}

constexpr KernelTable kNeonKernels = {
    Target::kNeon,     NeonDotF32,       NeonAxpyF32,
    NeonGemmMicroF32,  NeonDotF64,       NeonReduceSumF64,
    NeonSumSqDiffF64,  NeonMinMaxF64,    NeonDtwRowF64,
    NeonDotI8,         NeonGemmI8F32,
};

}  // namespace

const KernelTable* GetNeonKernels() { return &kNeonKernels; }

}  // namespace fcm::simd

#else  // NEON not compiled into this build.

namespace fcm::simd {
const KernelTable* GetNeonKernels() { return nullptr; }
}  // namespace fcm::simd

#endif
