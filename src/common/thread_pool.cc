#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <memory>

#include "common/check.h"
#include "common/failpoint.h"

namespace fcm::common {

// One ParallelFor invocation. Workers claim contiguous index chunks with a
// single fetch_add; the batch stays on the pending deque until exhausted so
// every idle worker can join it. `fn` is only dereferenced for indices
// claimed while next < n, and the owner blocks until next >= n with no
// worker inside, so the pointer never outlives the call — a worker that
// grabbed the batch just before exhaustion claims nothing and leaves.
struct ThreadPool::Batch {
  size_t n = 0;
  size_t chunk = 1;
  const std::function<void(size_t)>* fn = nullptr;
  std::atomic<size_t> next{0};
  /// Workers currently inside RunBatch. Read lock-free by the scheduler
  /// (least-helped batch pick); decrements happen under `mu` so the
  /// owner's completion wait cannot miss its wakeup.
  std::atomic<int> active{0};
  Mutex mu;
  CondVar cv;
  std::exception_ptr error FCM_GUARDED_BY(mu);  // First failure wins.

  bool exhausted() const {
    return next.load(std::memory_order_relaxed) >= n;
  }
};

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads <= 0) {
    num_threads = static_cast<int>(std::thread::hardware_concurrency());
  }
  num_threads_ = std::max(num_threads, 1);
  // The caller participates in every batch, so concurrency num_threads_
  // needs only num_threads_ - 1 workers.
  workers_.reserve(static_cast<size_t>(num_threads_ - 1));
  for (int i = 0; i < num_threads_ - 1; ++i) {
    workers_.emplace_back([this]() { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lk(&mu_);
    shutdown_ = true;
  }
  cv_.NotifyAll();
  for (auto& w : workers_) w.join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::shared_ptr<Batch> batch;
    {
      MutexLock lk(&mu_);
      cv_.Wait(&mu_, [this]() FCM_NO_THREAD_SAFETY_ANALYSIS {
        return ShouldWakeLocked();
      });
      if (pending_.empty()) return;  // Shutdown with nothing in flight.
      // Prune exhausted batches, then help the live batch with the fewest
      // active helpers. Concurrent owners (pipeline stages, re-entrant
      // calls) therefore share the workers instead of every idle worker
      // piling onto the oldest batch while the others run owner-only.
      int best_load = 0;
      for (size_t i = 0; i < pending_.size();) {
        if (pending_[i]->exhausted()) {
          pending_.erase(pending_.begin() + static_cast<long>(i));
          continue;
        }
        const int load = pending_[i]->active.load(std::memory_order_relaxed);
        if (batch == nullptr || load < best_load) {
          batch = pending_[i];
          best_load = load;
        }
        ++i;
      }
      if (batch == nullptr) continue;  // Only exhausted batches; re-wait.
    }
    RunBatch(batch);
  }
}

void ThreadPool::RunBatch(const std::shared_ptr<Batch>& batch) {
  batch->active.fetch_add(1, std::memory_order_relaxed);
  for (;;) {
    const size_t start = batch->next.fetch_add(batch->chunk);
    if (start >= batch->n) break;
    const size_t end = std::min(batch->n, start + batch->chunk);
    try {
      // Fault-injection site for task bodies: an armed failpoint here
      // exercises the pool's exception path (first error wins, remaining
      // iterations abandoned, rethrow on the owner) without needing a
      // cooperating fn.
      FCM_FAILPOINT("threadpool.task");
      for (size_t i = start; i < end; ++i) (*batch->fn)(i);
    } catch (...) {
      MutexLock lk(&batch->mu);
      if (!batch->error) batch->error = std::current_exception();
      batch->next.store(batch->n);  // Abandon the remaining iterations.
      break;
    }
  }
  {
    // The decrement must happen under mu: the owner's completion wait
    // checks `active` inside the same lock, so dropping to zero and the
    // notify can never interleave into a missed wakeup.
    MutexLock lk(&batch->mu);
    batch->active.fetch_sub(1, std::memory_order_relaxed);
  }
  batch->cv.NotifyAll();
}

void ThreadPool::ParallelForSharded(
    size_t n, size_t num_shards, const std::function<size_t(size_t)>& shard_of,
    const std::function<void(size_t, size_t)>& fn) {
  if (n == 0) return;
  FCM_CHECK_GT(num_shards, 0);  // Zero shards would silently drop the work.
  // Deterministic routing pass: per-shard index lists in increasing order,
  // independent of the pool size.
  std::vector<std::vector<size_t>> routed(num_shards);
  for (size_t i = 0; i < n; ++i) {
    const size_t s = shard_of(i);
    FCM_CHECK_LT(s, num_shards);
    routed[s].push_back(i);
  }
  ParallelFor(num_shards, [&](size_t s) {
    for (size_t i : routed[s]) fn(s, i);
  });
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (workers_.empty() || n == 1) {
    FCM_FAILPOINT("threadpool.task");  // Same site as the worker path.
    for (size_t i = 0; i < n; ++i) fn(i);  // Exceptions propagate directly.
    return;
  }
  auto batch = std::make_shared<Batch>();
  batch->n = n;
  batch->fn = &fn;
  // ~4 chunks per thread balances load without contending on every index.
  batch->chunk = std::max<size_t>(
      1, n / (static_cast<size_t>(num_threads_) * 4));
  {
    MutexLock lk(&mu_);
    pending_.push_back(batch);
  }
  cv_.NotifyAll();
  RunBatch(batch);
  std::exception_ptr error;
  {
    MutexLock lk(&batch->mu);
    // The predicate reads only the batch's atomics, never `error`, so it
    // needs no lock-analysis exemption.
    batch->cv.Wait(&batch->mu, [&batch]() {
      return batch->active.load(std::memory_order_relaxed) == 0 &&
             batch->exhausted();
    });
    error = batch->error;
  }
  {
    // Retire the batch eagerly so concurrent owners' scheduler scans stay
    // short; a worker may already have pruned it.
    MutexLock lk(&mu_);
    for (auto it = pending_.begin(); it != pending_.end(); ++it) {
      if (it->get() == batch.get()) {
        pending_.erase(it);
        break;
      }
    }
  }
  if (error) std::rethrow_exception(error);
}

}  // namespace fcm::common
