// String splitting / trimming / formatting helpers.

#ifndef FCM_COMMON_STRING_UTIL_H_
#define FCM_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace fcm::common {

/// Splits `s` on `delim`, keeping empty fields.
std::vector<std::string> Split(std::string_view s, char delim);

/// Removes leading/trailing ASCII whitespace.
std::string Trim(std::string_view s);

/// Joins pieces with `sep`.
std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Parses a double; returns false on malformed input (stores nothing).
bool ParseDouble(std::string_view s, double* out);

/// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// True if `s` ends with `suffix`.
bool EndsWith(std::string_view s, std::string_view suffix);

}  // namespace fcm::common

#endif  // FCM_COMMON_STRING_UTIL_H_
