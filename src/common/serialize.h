// Binary (de)serialization of PODs, strings, and vectors — used to persist
// trained model weights and built indexes.

#ifndef FCM_COMMON_SERIALIZE_H_
#define FCM_COMMON_SERIALIZE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/result.h"

namespace fcm::common {

/// Appends little-endian binary records to an in-memory buffer.
class BinaryWriter {
 public:
  void WriteU32(uint32_t v) { WriteRaw(&v, sizeof(v)); }
  void WriteU64(uint64_t v) { WriteRaw(&v, sizeof(v)); }
  void WriteI64(int64_t v) { WriteRaw(&v, sizeof(v)); }
  void WriteF32(float v) { WriteRaw(&v, sizeof(v)); }
  void WriteF64(double v) { WriteRaw(&v, sizeof(v)); }

  /// Appends raw bytes verbatim (no length prefix).
  void WriteBytes(const void* data, size_t n) { WriteRaw(data, n); }

  void WriteString(const std::string& s) {
    WriteU64(s.size());
    WriteRaw(s.data(), s.size());
  }

  void WriteF32Vector(const std::vector<float>& v) {
    WriteU64(v.size());
    WriteRaw(v.data(), v.size() * sizeof(float));
  }

  void WriteF64Vector(const std::vector<double>& v) {
    WriteU64(v.size());
    WriteRaw(v.data(), v.size() * sizeof(double));
  }

  const std::vector<uint8_t>& buffer() const { return buf_; }

  /// Atomically writes the buffer to a file: the bytes go to a temporary
  /// sibling first, are fsync'ed, and are renamed over `path` only once
  /// durable. A crash mid-save never leaves a torn file at `path` — readers
  /// see either the old content or the complete new content. Fails with
  /// IoError on any write problem (the temporary is cleaned up).
  Status SaveToFile(const std::string& path) const;

 private:
  void WriteRaw(const void* data, size_t n) {
    const auto* p = static_cast<const uint8_t*>(data);
    buf_.insert(buf_.end(), p, p + n);
  }

  std::vector<uint8_t> buf_;
};

/// Reads records written by BinaryWriter. All reads are bounds-checked and
/// fail with OutOfRange rather than reading past the end.
class BinaryReader {
 public:
  explicit BinaryReader(std::vector<uint8_t> buf) : buf_(std::move(buf)) {}

  /// Loads a whole file into a reader.
  static Result<BinaryReader> LoadFromFile(const std::string& path);

  /// Loads a whole file as raw bytes (no record framing).
  static Result<std::vector<uint8_t>> LoadFileBytes(const std::string& path);

  Result<uint32_t> ReadU32() { return ReadPod<uint32_t>(); }
  Result<uint64_t> ReadU64() { return ReadPod<uint64_t>(); }
  Result<int64_t> ReadI64() { return ReadPod<int64_t>(); }
  Result<float> ReadF32() { return ReadPod<float>(); }
  Result<double> ReadF64() { return ReadPod<double>(); }

  Result<std::string> ReadString();
  Result<std::vector<float>> ReadF32Vector();
  Result<std::vector<double>> ReadF64Vector();

  /// Bytes remaining to be read.
  size_t remaining() const { return buf_.size() - pos_; }

 private:
  template <typename T>
  Result<T> ReadPod() {
    if (pos_ + sizeof(T) > buf_.size()) {
      return Status::OutOfRange("binary reader: truncated input");
    }
    T v;
    std::memcpy(&v, buf_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  std::vector<uint8_t> buf_;
  size_t pos_ = 0;
};

}  // namespace fcm::common

#endif  // FCM_COMMON_SERIALIZE_H_
