// Underlying-data types: what a user plots in a line chart (paper Sec. II).

#ifndef FCM_TABLE_DATA_SERIES_H_
#define FCM_TABLE_DATA_SERIES_H_

#include <string>
#include <vector>

namespace fcm::table {

/// One plotted data series d = (p_1, ..., p_Nd). Following the paper's
/// relevance definition (Sec. III-A), only y-values participate in
/// matching; x-values are retained for rendering.
struct DataSeries {
  std::string label;
  /// X-axis values. Empty means "auto index" (1, 2, 3, ...).
  std::vector<double> x;
  /// Y-axis values; the series shape.
  std::vector<double> y;

  size_t size() const { return y.size(); }
  bool empty() const { return y.empty(); }

  /// Effective x value at position i (auto index when x is empty).
  double XAt(size_t i) const {
    return x.empty() ? static_cast<double>(i) + 1.0 : x[i];
  }
};

/// The underlying data D of a line chart: M data series sharing x-values.
using UnderlyingData = std::vector<DataSeries>;

}  // namespace fcm::table

#endif  // FCM_TABLE_DATA_SERIES_H_
