// Chart-semantics-preserving data augmentation (paper Sec. IV-A).
//
// The paper trains its segmentation model with augmentations applied to the
// *tabular* source data rather than the rendered image, so the augmented
// charts remain valid exemplars: Reverse, Partitioning, Down-Sampling.

#ifndef FCM_TABLE_AUGMENT_H_
#define FCM_TABLE_AUGMENT_H_

#include <vector>

#include "common/rng.h"
#include "table/table.h"

namespace fcm::table {

/// Reverses every column: C = (a_1..a_n) -> C' = (a_n..a_1).
Table ReverseAugment(const Table& t);

/// Randomly partitions each column at one position n' into two columns
/// C'_1 = (a_1..a_n') and C'_2 = (a_n'+1..a_n). Columns shorter than 2 are
/// kept unchanged. The split position is drawn from `rng`.
Table PartitionAugment(const Table& t, common::Rng* rng);

/// Keeps one of every `rho` consecutive points in each column.
/// Requires rho >= 1.
Table DownSampleAugment(const Table& t, size_t rho);

/// Applies a random augmentation pipeline (each of the three with
/// independent probability p), producing `count` augmented variants.
std::vector<Table> RandomAugmentations(const Table& t, size_t count,
                                       double p, common::Rng* rng);

}  // namespace fcm::table

#endif  // FCM_TABLE_AUGMENT_H_
