#include "table/table.h"

#include <algorithm>

namespace fcm::table {

size_t Table::num_rows() const {
  size_t n = 0;
  for (const auto& c : columns_) n = std::max(n, c.size());
  return n;
}

common::Result<size_t> Table::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return i;
  }
  return common::Status::NotFound("no column named '" + name + "' in table '" +
                                  name_ + "'");
}

bool Table::IsRectangular() const {
  if (columns_.empty()) return true;
  const size_t n = columns_[0].size();
  return std::all_of(columns_.begin(), columns_.end(),
                     [n](const Column& c) { return c.size() == n; });
}

}  // namespace fcm::table
