#include "table/aggregate.h"

#include <algorithm>
#include <limits>

#include "common/check.h"

namespace fcm::table {

const char* AggregateOpName(AggregateOp op) {
  switch (op) {
    case AggregateOp::kNone: return "none";
    case AggregateOp::kAvg: return "avg";
    case AggregateOp::kSum: return "sum";
    case AggregateOp::kMax: return "max";
    case AggregateOp::kMin: return "min";
  }
  return "?";
}

common::Result<AggregateOp> ParseAggregateOp(const std::string& name) {
  if (name == "none") return AggregateOp::kNone;
  if (name == "avg") return AggregateOp::kAvg;
  if (name == "sum") return AggregateOp::kSum;
  if (name == "max") return AggregateOp::kMax;
  if (name == "min") return AggregateOp::kMin;
  return common::Status::InvalidArgument("unknown aggregate op: " + name);
}

std::vector<double> Aggregate(const std::vector<double>& values,
                              AggregateOp op, size_t window_size) {
  FCM_CHECK_GE(window_size, 1u);
  if (op == AggregateOp::kNone || window_size == 1) return values;
  std::vector<double> out;
  out.reserve((values.size() + window_size - 1) / window_size);
  for (size_t start = 0; start < values.size(); start += window_size) {
    const size_t end = std::min(start + window_size, values.size());
    double acc = 0.0;
    switch (op) {
      case AggregateOp::kAvg:
      case AggregateOp::kSum: {
        acc = 0.0;
        for (size_t i = start; i < end; ++i) acc += values[i];
        if (op == AggregateOp::kAvg) acc /= static_cast<double>(end - start);
        break;
      }
      case AggregateOp::kMax: {
        acc = -std::numeric_limits<double>::infinity();
        for (size_t i = start; i < end; ++i) acc = std::max(acc, values[i]);
        break;
      }
      case AggregateOp::kMin: {
        acc = std::numeric_limits<double>::infinity();
        for (size_t i = start; i < end; ++i) acc = std::min(acc, values[i]);
        break;
      }
      case AggregateOp::kNone:
        acc = 0.0;  // Unreachable; handled above.
        break;
    }
    out.push_back(acc);
  }
  return out;
}

const std::vector<AggregateOp>& RealAggregateOps() {
  static const std::vector<AggregateOp> ops = {
      AggregateOp::kAvg, AggregateOp::kSum, AggregateOp::kMax,
      AggregateOp::kMin};
  return ops;
}

std::vector<double> NestedAggregate(const std::vector<double>& values,
                                    const std::vector<AggregateStep>& steps) {
  std::vector<double> out = values;
  for (const auto& step : steps) {
    out = Aggregate(out, step.op, step.window_size);
  }
  return out;
}

std::string AggregatePipelineName(const std::vector<AggregateStep>& steps) {
  std::string name;
  for (const auto& step : steps) {
    if (!name.empty()) name += " -> ";
    name += AggregateOpName(step.op);
    name += "(" + std::to_string(step.window_size) + ")";
  }
  return name.empty() ? "identity" : name;
}

}  // namespace fcm::table
