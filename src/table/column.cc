#include "table/column.h"

#include "common/math_util.h"

namespace fcm::table {

double Column::MinValue() const { return common::Min(values); }
double Column::MaxValue() const { return common::Max(values); }
double Column::SumValue() const { return common::Sum(values); }
double Column::MeanValue() const { return common::Mean(values); }

}  // namespace fcm::table
