#include "table/csv.h"

#include <cmath>
#include <cstdio>
#include <sstream>

#include "common/failpoint.h"
#include "common/string_util.h"

namespace fcm::table {

namespace {

/// Splits one CSV record into cells, honoring double-quoted fields: commas
/// inside quotes stay in the cell and "" unescapes to a single quote. A
/// trailing '\r' is stripped first, so CRLF files parsed by splitting on
/// '\n' no longer leak '\r' into the last header name and every row's last
/// cell (which silently broke column lookup and numeric parsing). An
/// unterminated quote runs to the end of the record.
std::vector<std::string> SplitCsvRecord(std::string_view line) {
  if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
  std::vector<std::string> cells;
  std::string cell;
  bool quoted = false;
  for (size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cell += '"';
          ++i;
        } else {
          quoted = false;
        }
      } else {
        cell += c;
      }
    } else if (c == '"') {
      quoted = true;
    } else if (c == ',') {
      cells.push_back(std::move(cell));
      cell.clear();
    } else {
      cell += c;
    }
  }
  cells.push_back(std::move(cell));
  return cells;
}

}  // namespace

common::Result<Table> ParseCsv(const std::string& content,
                               const std::string& table_name) {
  FCM_FAILPOINT_STATUS("table.parse_csv");
  std::vector<std::string> lines = common::Split(content, '\n');
  // Drop trailing blank lines (Trim also eats a blank CRLF line's '\r').
  while (!lines.empty() && common::Trim(lines.back()).empty()) {
    lines.pop_back();
  }
  if (lines.empty()) {
    return common::Status::InvalidArgument("empty CSV: " + table_name);
  }
  const std::vector<std::string> header = SplitCsvRecord(lines[0]);
  std::vector<Column> cols;
  cols.reserve(header.size());
  for (const auto& h : header) cols.emplace_back(common::Trim(h),
                                                 std::vector<double>{});
  // A header-only file would produce a zero-row table that every
  // downstream consumer (encoding, augmentation, DTW) treats as a
  // programming error; surface it at the ingestion boundary instead.
  if (lines.size() == 1) {
    return common::Status::InvalidArgument("CSV has no data rows: " +
                                           table_name);
  }
  for (size_t li = 1; li < lines.size(); ++li) {
    const std::vector<std::string> cells = SplitCsvRecord(lines[li]);
    if (cells.size() != cols.size()) {
      return common::Status::InvalidArgument(
          common::StrFormat("CSV row %zu has %zu cells, expected %zu", li,
                            cells.size(), cols.size()));
    }
    for (size_t ci = 0; ci < cells.size(); ++ci) {
      const std::string cell = common::Trim(cells[ci]);
      if (cell.empty()) continue;  // Padded cell from ragged export.
      double v = 0.0;
      if (!common::ParseDouble(cell, &v)) {
        return common::Status::InvalidArgument(
            common::StrFormat("CSV row %zu col %zu: non-numeric cell '%s'",
                              li, ci, cell.c_str()));
      }
      // strtod happily parses "nan"/"inf"; letting them into a column
      // poisons every downstream statistic (ranges, means, DTW), so they
      // count as malformed input here.
      if (!std::isfinite(v)) {
        return common::Status::InvalidArgument(
            common::StrFormat("CSV row %zu col %zu: non-finite cell '%s'",
                              li, ci, cell.c_str()));
      }
      cols[ci].values.push_back(v);
    }
  }
  return Table(table_name, std::move(cols));
}

common::Result<Table> LoadCsvFile(const std::string& path,
                                  const std::string& table_name) {
  FCM_FAILPOINT_STATUS("table.load_csv");
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return common::Status::IoError("cannot open: " + path);
  }
  std::string content;
  char buf[1 << 14];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    content.append(buf, n);
  }
  // A truncated read must not silently parse half a file as a valid
  // (shorter) table.
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) {
    return common::Status::IoError("read error: " + path);
  }
  return ParseCsv(content, table_name);
}

std::string ToCsv(const Table& t) {
  std::ostringstream out;
  for (size_t ci = 0; ci < t.num_columns(); ++ci) {
    if (ci > 0) out << ',';
    out << t.column(ci).name;
  }
  out << '\n';
  const size_t rows = t.num_rows();
  for (size_t r = 0; r < rows; ++r) {
    for (size_t ci = 0; ci < t.num_columns(); ++ci) {
      if (ci > 0) out << ',';
      const auto& vals = t.column(ci).values;
      if (r < vals.size()) out << common::StrFormat("%.10g", vals[r]);
    }
    out << '\n';
  }
  return out.str();
}

common::Status SaveCsvFile(const Table& t, const std::string& path) {
  const std::string content = ToCsv(t);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return common::Status::IoError("cannot open for writing: " + path);
  }
  const size_t written = std::fwrite(content.data(), 1, content.size(), f);
  const int rc = std::fclose(f);
  if (written != content.size() || rc != 0) {
    return common::Status::IoError("short write: " + path);
  }
  return common::Status::OK();
}

}  // namespace fcm::table
