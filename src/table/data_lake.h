// DataLake: the searchable repository of candidate datasets.

#ifndef FCM_TABLE_DATA_LAKE_H_
#define FCM_TABLE_DATA_LAKE_H_

#include <vector>

#include "common/result.h"
#include "table/table.h"

namespace fcm::table {

/// A large dataset repository T = {T_1, ..., T_|T|} (paper Def. 1). Tables
/// are assigned dense ids on insertion; ids are stable for the lifetime of
/// the lake.
class DataLake {
 public:
  DataLake() = default;

  /// Adds a table and returns its assigned id.
  TableId Add(Table t);

  size_t size() const { return tables_.size(); }
  bool empty() const { return tables_.empty(); }

  /// Table by id. Requires a valid id previously returned by Add.
  const Table& Get(TableId id) const {
    FCM_CHECK_GE(id, 0);
    FCM_CHECK_LT(static_cast<size_t>(id), tables_.size());
    return tables_[static_cast<size_t>(id)];
  }

  const std::vector<Table>& tables() const { return tables_; }

  /// Finds a table id by name; NotFound when absent.
  common::Result<TableId> FindByName(const std::string& name) const;

  /// Total number of columns across all tables.
  size_t TotalColumns() const;

 private:
  std::vector<Table> tables_;
};

}  // namespace fcm::table

#endif  // FCM_TABLE_DATA_LAKE_H_
