#include "table/augment.h"

#include <algorithm>

#include "common/check.h"

namespace fcm::table {

Table ReverseAugment(const Table& t) {
  Table out = t;
  out.set_name(t.name() + "#rev");
  for (auto& c : out.mutable_columns()) {
    std::reverse(c.values.begin(), c.values.end());
  }
  return out;
}

Table PartitionAugment(const Table& t, common::Rng* rng) {
  Table out;
  out.set_name(t.name() + "#part");
  for (const auto& c : t.columns()) {
    if (c.size() < 2) {
      out.AddColumn(c);
      continue;
    }
    // Split point in [1, n-1] keeps both halves non-empty.
    const size_t split = 1 + static_cast<size_t>(rng->UniformInt(c.size() - 1));
    Column left(c.name + "_a",
                std::vector<double>(c.values.begin(),
                                    c.values.begin() + static_cast<long>(split)));
    Column right(c.name + "_b",
                 std::vector<double>(c.values.begin() + static_cast<long>(split),
                                     c.values.end()));
    out.AddColumn(std::move(left));
    out.AddColumn(std::move(right));
  }
  return out;
}

Table DownSampleAugment(const Table& t, size_t rho) {
  FCM_CHECK_GE(rho, 1u);
  Table out = t;
  out.set_name(t.name() + "#ds");
  if (rho == 1) return out;
  for (auto& c : out.mutable_columns()) {
    std::vector<double> kept;
    kept.reserve(c.size() / rho + 1);
    for (size_t i = 0; i < c.values.size(); i += rho) {
      kept.push_back(c.values[i]);
    }
    c.values = std::move(kept);
  }
  return out;
}

std::vector<Table> RandomAugmentations(const Table& t, size_t count,
                                       double p, common::Rng* rng) {
  std::vector<Table> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    Table cur = t;
    if (rng->Bernoulli(p)) cur = ReverseAugment(cur);
    if (rng->Bernoulli(p)) cur = PartitionAugment(cur, rng);
    if (rng->Bernoulli(p)) {
      const size_t rho = 2 + static_cast<size_t>(rng->UniformInt(3));  // 2..4
      cur = DownSampleAugment(cur, rho);
    }
    out.push_back(std::move(cur));
  }
  return out;
}

}  // namespace fcm::table
