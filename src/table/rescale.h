// Data re-scaling transformations (paper Sec. IX "Data Re-scaling": line
// charts derived from datasets that undergo normalization or scaling
// during generation). These are the transformations the extension
// benchmark applies to query data, plus the scale-invariant comparison
// helpers used to stay robust against them.

#ifndef FCM_TABLE_RESCALE_H_
#define FCM_TABLE_RESCALE_H_

#include <vector>

#include "table/table.h"

namespace fcm::table {

/// Re-scaling operators a chart author may apply before plotting.
enum class RescaleOp {
  kNone = 0,
  /// (v - mean) / std (std-0 columns map to all-zero).
  kZScore = 1,
  /// (v - min) / (max - min) into [0, 1] (constant columns map to 0.5).
  kMinMax = 2,
  /// v * factor + offset.
  kAffine = 3,
};

const char* RescaleOpName(RescaleOp op);

/// Parameters for kAffine; ignored by the other operators.
struct RescaleParams {
  double factor = 1.0;
  double offset = 0.0;
};

/// Applies the re-scaling to one value series.
std::vector<double> Rescale(const std::vector<double>& values, RescaleOp op,
                            const RescaleParams& params = {});

/// Returns a copy of `t` with every column (optionally skipping
/// `x_column`; -1 = none) re-scaled.
Table RescaleTable(const Table& t, RescaleOp op,
                   const RescaleParams& params = {}, int x_column = -1);

}  // namespace fcm::table

#endif  // FCM_TABLE_RESCALE_H_
