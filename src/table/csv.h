// Numeric CSV import/export for Table.

#ifndef FCM_TABLE_CSV_H_
#define FCM_TABLE_CSV_H_

#include <string>

#include "common/result.h"
#include "table/table.h"

namespace fcm::table {

/// Parses a CSV string whose first line is a header and remaining lines are
/// numeric rows. Malformed input never aborts the process — non-numeric or
/// non-finite (nan/inf) cells, ragged rows, empty input, and header-only
/// input all fail with InvalidArgument. Handles CRLF line endings and
/// double-quoted fields (commas stay inside quotes; "" unescapes to one
/// quote). Newlines inside quoted fields are not supported — records are
/// one per line. Fault-injectable via the `table.parse_csv` failpoint.
common::Result<Table> ParseCsv(const std::string& content,
                               const std::string& table_name);

/// Reads a CSV file via ParseCsv; the table name is the given name.
common::Result<Table> LoadCsvFile(const std::string& path,
                                  const std::string& table_name);

/// Serializes a rectangular table to CSV (header + rows). Columns of
/// unequal lengths are padded with empty cells.
std::string ToCsv(const Table& t);

/// Writes ToCsv(t) to `path`.
common::Status SaveCsvFile(const Table& t, const std::string& path);

}  // namespace fcm::table

#endif  // FCM_TABLE_CSV_H_
