#include "table/data_lake.h"

namespace fcm::table {

TableId DataLake::Add(Table t) {
  const TableId id = static_cast<TableId>(tables_.size());
  t.set_id(id);
  tables_.push_back(std::move(t));
  return id;
}

common::Result<TableId> DataLake::FindByName(const std::string& name) const {
  for (const auto& t : tables_) {
    if (t.name() == name) return t.id();
  }
  return common::Status::NotFound("no table named '" + name + "' in lake");
}

size_t DataLake::TotalColumns() const {
  size_t n = 0;
  for (const auto& t : tables_) n += t.num_columns();
  return n;
}

}  // namespace fcm::table
