#include "table/noise.h"

#include "common/string_util.h"

namespace fcm::table {

Table InjectMultiplicativeNoise(const Table& t, double amplitude,
                                int x_column, common::Rng* rng) {
  Table out = t;
  auto& cols = out.mutable_columns();
  for (size_t ci = 0; ci < cols.size(); ++ci) {
    if (x_column >= 0 && ci == static_cast<size_t>(x_column)) continue;
    for (double& v : cols[ci].values) {
      v *= rng->Uniform(1.0 - amplitude, 1.0 + amplitude);
    }
  }
  return out;
}

std::vector<Table> MakeNoisyDuplicates(const Table& t, size_t count,
                                       double amplitude, int x_column,
                                       common::Rng* rng) {
  std::vector<Table> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    Table noisy = InjectMultiplicativeNoise(t, amplitude, x_column, rng);
    noisy.set_name(t.name() + common::StrFormat("#noise%zu", i));
    out.push_back(std::move(noisy));
  }
  return out;
}

}  // namespace fcm::table
