// Ground-truth noise injection (paper Sec. VII-A): create near-duplicate
// tables by multiplying each column element-wise with U(0.9, 1.1) noise.

#ifndef FCM_TABLE_NOISE_H_
#define FCM_TABLE_NOISE_H_

#include <vector>

#include "common/rng.h"
#include "table/table.h"

namespace fcm::table {

/// Returns a copy of `t` where every value in every column (optionally
/// skipping the column at `x_column`, matching the paper's exclusion of the
/// x-axis column) is multiplied by an independent draw from
/// U(1-amplitude, 1+amplitude).
Table InjectMultiplicativeNoise(const Table& t, double amplitude,
                                int x_column, common::Rng* rng);

/// Generates `count` noisy near-duplicates of `t` (paper uses 50 per query
/// with amplitude 0.1).
std::vector<Table> MakeNoisyDuplicates(const Table& t, size_t count,
                                       double amplitude, int x_column,
                                       common::Rng* rng);

}  // namespace fcm::table

#endif  // FCM_TABLE_NOISE_H_
