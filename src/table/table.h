// Table (dataset) type: an ordered collection of numeric columns.

#ifndef FCM_TABLE_TABLE_H_
#define FCM_TABLE_TABLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "table/column.h"

namespace fcm::table {

/// Opaque id for a table inside a DataLake.
using TableId = int64_t;
inline constexpr TableId kInvalidTableId = -1;

/// A dataset: a table of NC columns, each a numeric data series (paper
/// Sec. II). "Table" and "dataset" are used interchangeably, as in the
/// paper.
class Table {
 public:
  Table() = default;
  Table(std::string name, std::vector<Column> columns)
      : name_(std::move(name)), columns_(std::move(columns)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  TableId id() const { return id_; }
  void set_id(TableId id) { id_ = id; }

  size_t num_columns() const { return columns_.size(); }
  /// Number of rows = length of the longest column (columns may have been
  /// produced by partitioning augmentation and can differ in length).
  size_t num_rows() const;

  const std::vector<Column>& columns() const { return columns_; }
  std::vector<Column>& mutable_columns() { return columns_; }

  const Column& column(size_t i) const {
    FCM_CHECK_LT(i, columns_.size());
    return columns_[i];
  }

  /// Finds a column index by name; NotFound when absent.
  common::Result<size_t> ColumnIndex(const std::string& name) const;

  void AddColumn(Column c) { columns_.push_back(std::move(c)); }

  /// True when every column has the same number of rows.
  bool IsRectangular() const;

 private:
  TableId id_ = kInvalidTableId;
  std::string name_;
  std::vector<Column> columns_;
};

}  // namespace fcm::table

#endif  // FCM_TABLE_TABLE_H_
