// Numerical x-axis generalization (paper Sec. VI-B): treat a column as a
// candidate x-axis, sort rows by it, and interpolate the remaining columns
// onto an evenly spaced grid so FCM's evenly-spaced assumption holds.

#ifndef FCM_TABLE_RESAMPLE_H_
#define FCM_TABLE_RESAMPLE_H_

#include <vector>

#include "common/result.h"
#include "table/table.h"

namespace fcm::table {

/// Sorts all rows of `t` by column `x_index` and linearly interpolates every
/// other column onto `grid_size` evenly spaced x positions spanning
/// [min(x), max(x)]. The x column itself is replaced by the even grid.
///
/// Fails with InvalidArgument when the table is not rectangular, has fewer
/// than 2 rows, or the x column is constant (zero span).
common::Result<Table> ResampleByXColumn(const Table& t, size_t x_index,
                                        size_t grid_size);

/// Derives every T' of `t` (one per choice of x column) as in Sec. VI-B.
/// Non-resampleable choices are skipped.
std::vector<Table> AllXAxisDerivations(const Table& t, size_t grid_size);

}  // namespace fcm::table

#endif  // FCM_TABLE_RESAMPLE_H_
