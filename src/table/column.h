// A named numeric column — the unit of matching in dataset discovery.

#ifndef FCM_TABLE_COLUMN_H_
#define FCM_TABLE_COLUMN_H_

#include <string>
#include <vector>

namespace fcm::table {

/// A single numeric column of a dataset (paper Sec. II: each column is a
/// data series C = (a_1, ..., a_NR)).
struct Column {
  std::string name;
  std::vector<double> values;

  Column() = default;
  Column(std::string name_in, std::vector<double> values_in)
      : name(std::move(name_in)), values(std::move(values_in)) {}

  size_t size() const { return values.size(); }
  bool empty() const { return values.empty(); }

  /// Minimum value; +inf when empty.
  double MinValue() const;
  /// Maximum value; -inf when empty.
  double MaxValue() const;
  /// Sum of all values.
  double SumValue() const;
  /// Arithmetic mean; 0 when empty.
  double MeanValue() const;
};

}  // namespace fcm::table

#endif  // FCM_TABLE_COLUMN_H_
