#include "table/resample.h"

#include <algorithm>
#include <numeric>

#include "common/string_util.h"

namespace fcm::table {

common::Result<Table> ResampleByXColumn(const Table& t, size_t x_index,
                                        size_t grid_size) {
  if (x_index >= t.num_columns()) {
    return common::Status::InvalidArgument("x column index out of range");
  }
  if (!t.IsRectangular()) {
    return common::Status::InvalidArgument(
        "resample requires a rectangular table");
  }
  const size_t rows = t.num_rows();
  if (rows < 2) {
    return common::Status::InvalidArgument("resample requires >= 2 rows");
  }
  const std::vector<double>& x = t.column(x_index).values;

  std::vector<size_t> order(rows);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&x](size_t a, size_t b) { return x[a] < x[b]; });

  const double x_lo = x[order.front()];
  const double x_hi = x[order.back()];
  if (x_hi - x_lo < 1e-12) {
    return common::Status::InvalidArgument(
        "x column is constant; cannot define a grid");
  }

  Table out;
  out.set_name(t.name() + common::StrFormat("#x%zu", x_index));
  for (size_t ci = 0; ci < t.num_columns(); ++ci) {
    std::vector<double> vals(grid_size);
    if (ci == x_index) {
      for (size_t g = 0; g < grid_size; ++g) {
        vals[g] = x_lo + (x_hi - x_lo) * static_cast<double>(g) /
                             static_cast<double>(grid_size - 1);
      }
    } else {
      const std::vector<double>& y = t.column(ci).values;
      // Piecewise-linear interpolation over the sorted (x, y) points.
      for (size_t g = 0; g < grid_size; ++g) {
        const double gx = x_lo + (x_hi - x_lo) * static_cast<double>(g) /
                                     static_cast<double>(grid_size - 1);
        // Find the first sorted index with x >= gx.
        size_t hi = 0;
        while (hi < rows && x[order[hi]] < gx) ++hi;
        if (hi == 0) {
          vals[g] = y[order[0]];
        } else if (hi == rows) {
          vals[g] = y[order[rows - 1]];
        } else {
          const size_t lo = hi - 1;
          const double x0 = x[order[lo]], x1 = x[order[hi]];
          const double t01 = (x1 - x0 < 1e-12) ? 0.0 : (gx - x0) / (x1 - x0);
          vals[g] = y[order[lo]] + t01 * (y[order[hi]] - y[order[lo]]);
        }
      }
    }
    out.AddColumn(Column(t.column(ci).name, std::move(vals)));
  }
  return out;
}

std::vector<Table> AllXAxisDerivations(const Table& t, size_t grid_size) {
  std::vector<Table> out;
  for (size_t ci = 0; ci < t.num_columns(); ++ci) {
    auto r = ResampleByXColumn(t, ci, grid_size);
    if (r.ok()) out.push_back(std::move(r).ValueOrDie());
  }
  return out;
}

}  // namespace fcm::table
