// Windowed data-aggregation operators (paper Sec. II & V): avg, sum, max,
// min over non-overlapping windows, plus the identity (no aggregation).

#ifndef FCM_TABLE_AGGREGATE_H_
#define FCM_TABLE_AGGREGATE_H_

#include <string>
#include <vector>

#include "common/result.h"

namespace fcm::table {

/// The four aggregation operators the paper supports, plus identity
/// ("none") used for non-DA charts and as the 5th transformation expert.
enum class AggregateOp { kNone = 0, kAvg = 1, kSum = 2, kMax = 3, kMin = 4 };

/// Number of distinct operators (including kNone) — size of the MoE expert
/// pool in the extended FCM.
inline constexpr int kNumAggregateOps = 5;

/// Human-readable operator name ("none", "avg", ...).
const char* AggregateOpName(AggregateOp op);

/// Parses an operator name; InvalidArgument on unknown names.
common::Result<AggregateOp> ParseAggregateOp(const std::string& name);

/// Applies `op` to `values` over non-overlapping windows of size
/// `window_size`. A trailing partial window is aggregated as-is. kNone
/// returns the input unchanged (window ignored). Requires window_size >= 1.
std::vector<double> Aggregate(const std::vector<double>& values,
                              AggregateOp op, size_t window_size);

/// All operators that perform real aggregation (excludes kNone).
const std::vector<AggregateOp>& RealAggregateOps();

/// One stage of a nested aggregation pipeline (paper Sec. IX "Nested
/// aggregations": real-world charts often chain aggregation operations,
/// e.g. daily max of 5-minute averages).
struct AggregateStep {
  AggregateOp op = AggregateOp::kNone;
  size_t window_size = 1;
};

/// Applies the steps in order: the output of step i feeds step i+1.
/// An empty pipeline returns the input unchanged.
std::vector<double> NestedAggregate(const std::vector<double>& values,
                                    const std::vector<AggregateStep>& steps);

/// Human-readable pipeline description, e.g. "avg(4) -> max(3)".
std::string AggregatePipelineName(const std::vector<AggregateStep>& steps);

}  // namespace fcm::table

#endif  // FCM_TABLE_AGGREGATE_H_
