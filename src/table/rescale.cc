#include "table/rescale.h"

#include <algorithm>
#include <cmath>

namespace fcm::table {

const char* RescaleOpName(RescaleOp op) {
  switch (op) {
    case RescaleOp::kNone: return "none";
    case RescaleOp::kZScore: return "zscore";
    case RescaleOp::kMinMax: return "minmax";
    case RescaleOp::kAffine: return "affine";
  }
  return "?";
}

std::vector<double> Rescale(const std::vector<double>& values, RescaleOp op,
                            const RescaleParams& params) {
  std::vector<double> out = values;
  if (values.empty()) return out;
  switch (op) {
    case RescaleOp::kNone:
      break;
    case RescaleOp::kZScore: {
      double mean = 0.0;
      for (double v : values) mean += v;
      mean /= static_cast<double>(values.size());
      double var = 0.0;
      for (double v : values) var += (v - mean) * (v - mean);
      var /= static_cast<double>(values.size());
      const double std_dev = std::sqrt(var);
      for (double& v : out) {
        v = std_dev > 1e-12 ? (v - mean) / std_dev : 0.0;
      }
      break;
    }
    case RescaleOp::kMinMax: {
      const auto [min_it, max_it] =
          std::minmax_element(values.begin(), values.end());
      const double lo = *min_it, hi = *max_it;
      for (double& v : out) {
        v = hi - lo > 1e-12 ? (v - lo) / (hi - lo) : 0.5;
      }
      break;
    }
    case RescaleOp::kAffine: {
      for (double& v : out) v = v * params.factor + params.offset;
      break;
    }
  }
  return out;
}

Table RescaleTable(const Table& t, RescaleOp op, const RescaleParams& params,
                   int x_column) {
  Table out = t;
  for (size_t c = 0; c < out.num_columns(); ++c) {
    if (static_cast<int>(c) == x_column) continue;
    out.mutable_columns()[c].values =
        Rescale(out.column(c).values, op, params);
  }
  return out;
}

}  // namespace fcm::table
