#include "nn/optimizer.h"

#include <cmath>

namespace fcm::nn {

double Optimizer::GradNorm() const {
  double s = 0.0;
  for (const auto& p : params_) {
    if (p.grad().size() != p.data().size()) continue;
    for (float g : p.grad()) s += static_cast<double>(g) * g;
  }
  return std::sqrt(s);
}

void Optimizer::ClipGradNorm(double max_norm) {
  const double norm = GradNorm();
  if (norm <= max_norm || norm < 1e-12) return;
  const float scale = static_cast<float>(max_norm / norm);
  for (auto& p : params_) {
    if (p.grad().size() != p.data().size()) continue;
    for (float& g : p.grad()) g *= scale;
  }
}

Sgd::Sgd(std::vector<Tensor> params, float lr, float momentum)
    : Optimizer(std::move(params)), lr_(lr), momentum_(momentum) {
  velocity_.resize(params_.size());
  for (size_t i = 0; i < params_.size(); ++i) {
    velocity_[i].assign(params_[i].data().size(), 0.0f);
  }
}

void Sgd::Step() {
  for (size_t i = 0; i < params_.size(); ++i) {
    auto& data = params_[i].data();
    const auto& grad = params_[i].grad();
    if (grad.size() != data.size()) continue;  // Never touched by backward.
    auto& vel = velocity_[i];
    for (size_t j = 0; j < data.size(); ++j) {
      vel[j] = momentum_ * vel[j] + grad[j];
      data[j] -= lr_ * vel[j];
    }
  }
}

Adam::Adam(std::vector<Tensor> params, float lr, float beta1, float beta2,
           float epsilon, float weight_decay)
    : Optimizer(std::move(params)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      epsilon_(epsilon),
      weight_decay_(weight_decay) {
  m_.resize(params_.size());
  v_.resize(params_.size());
  for (size_t i = 0; i < params_.size(); ++i) {
    m_[i].assign(params_[i].data().size(), 0.0f);
    v_[i].assign(params_[i].data().size(), 0.0f);
  }
}

void Adam::Step() {
  ++t_;
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (size_t i = 0; i < params_.size(); ++i) {
    auto& data = params_[i].data();
    const auto& grad = params_[i].grad();
    if (grad.size() != data.size()) continue;
    auto& m = m_[i];
    auto& v = v_[i];
    for (size_t j = 0; j < data.size(); ++j) {
      m[j] = beta1_ * m[j] + (1.0f - beta1_) * grad[j];
      v[j] = beta2_ * v[j] + (1.0f - beta2_) * grad[j] * grad[j];
      const float mhat = m[j] / bc1;
      const float vhat = v[j] / bc2;
      data[j] -= lr_ * (mhat / (std::sqrt(vhat) + epsilon_) +
                        weight_decay_ * data[j]);
    }
  }
}

}  // namespace fcm::nn
