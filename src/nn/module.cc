#include "nn/module.h"

#include "common/string_util.h"

namespace fcm::nn {

std::vector<Tensor> Module::Parameters() const {
  std::vector<Tensor> out;
  for (const auto& [name, t] : NamedParameters()) out.push_back(t);
  return out;
}

std::vector<std::pair<std::string, Tensor>> Module::NamedParameters() const {
  std::vector<std::pair<std::string, Tensor>> out;
  for (const auto& [name, t] : params_) out.emplace_back(name, t);
  for (const auto& [name, child] : children_) {
    for (const auto& [cname, t] : child->NamedParameters()) {
      out.emplace_back(name + "." + cname, t);
    }
  }
  return out;
}

int64_t Module::NumParameters() const {
  int64_t n = 0;
  for (const auto& t : Parameters()) n += t.numel();
  return n;
}

void Module::ZeroGrad() {
  for (auto& t : Parameters()) t.ZeroGrad();
}

void Module::SaveState(common::BinaryWriter* writer) const {
  const auto named = NamedParameters();
  writer->WriteU64(named.size());
  for (const auto& [name, t] : named) {
    writer->WriteString(name);
    writer->WriteU64(static_cast<uint64_t>(t.shape().size()));
    for (int d : t.shape()) writer->WriteI64(d);
    writer->WriteF32Vector(t.data());
  }
}

common::Status Module::LoadState(common::BinaryReader* reader) {
  auto count = reader->ReadU64();
  if (!count.ok()) return count.status();
  auto named = NamedParameters();
  if (count.value() != named.size()) {
    return common::Status::InvalidArgument(common::StrFormat(
        "state has %llu parameters, model has %zu",
        static_cast<unsigned long long>(count.value()), named.size()));
  }
  for (auto& [name, t] : named) {
    auto rname = reader->ReadString();
    if (!rname.ok()) return rname.status();
    if (rname.value() != name) {
      return common::Status::InvalidArgument(
          "parameter name mismatch: saved '" + rname.value() +
          "' vs model '" + name + "'");
    }
    auto rank = reader->ReadU64();
    if (!rank.ok()) return rank.status();
    Shape shape;
    for (uint64_t i = 0; i < rank.value(); ++i) {
      auto d = reader->ReadI64();
      if (!d.ok()) return d.status();
      shape.push_back(static_cast<int>(d.value()));
    }
    if (shape != t.shape()) {
      return common::Status::InvalidArgument("shape mismatch for " + name);
    }
    auto values = reader->ReadF32Vector();
    if (!values.ok()) return values.status();
    if (values.value().size() != t.data().size()) {
      return common::Status::InvalidArgument("size mismatch for " + name);
    }
    t.data() = std::move(values).ValueOrDie();
  }
  return common::Status::OK();
}

Tensor Module::RegisterParameter(const std::string& name, Tensor t) {
  params_.emplace_back(name, t);
  return t;
}

void Module::RegisterModule(const std::string& name, Module* m) {
  children_.emplace_back(name, m);
}

}  // namespace fcm::nn
