// Multi-head attention and pre-LN transformer encoder blocks (paper
// Eq. 1): the shared backbone of the line chart encoder, dataset encoder,
// and the baselines' unimodal encoders.

#ifndef FCM_NN_ATTENTION_H_
#define FCM_NN_ATTENTION_H_

#include <memory>
#include <vector>

#include "nn/layers.h"
#include "nn/module.h"

namespace fcm::nn {

/// Multi-head scaled-dot-product attention. Queries may come from a
/// different sequence than keys/values (cross-attention); self-attention
/// passes the same tensor for both.
class MultiHeadAttention : public Module {
 public:
  MultiHeadAttention(int embed_dim, int num_heads, common::Rng* rng);

  /// query: [nq, K], kv: [nkv, K] -> [nq, K].
  Tensor Forward(const Tensor& query, const Tensor& kv) const;

  int embed_dim() const { return embed_dim_; }
  int num_heads() const { return num_heads_; }

 private:
  int embed_dim_;
  int num_heads_;
  int head_dim_;
  Linear wq_;
  Linear wk_;
  Linear wv_;
  Linear wo_;
};

/// One pre-LN transformer block: x + MSA(LN(x)); then x + MLP(LN(x))
/// (paper Eq. 1 uses the same residual structure).
class TransformerBlock : public Module {
 public:
  TransformerBlock(int embed_dim, int num_heads, int mlp_hidden,
                   common::Rng* rng);

  Tensor Forward(const Tensor& x) const;

 private:
  MultiHeadAttention attn_;
  LayerNormLayer ln1_;
  LayerNormLayer ln2_;
  Mlp mlp_;
};

/// A stack of J transformer blocks with optional learned positional
/// embeddings added to the input sequence (ViT-style).
class TransformerEncoder : public Module {
 public:
  /// `max_positions` > 0 enables positional embeddings for sequences up to
  /// that length (longer sequences reuse the last position's embedding).
  TransformerEncoder(int embed_dim, int num_heads, int mlp_hidden,
                     int num_layers, int max_positions, common::Rng* rng);

  /// x: [n, K] -> [n, K].
  Tensor Forward(const Tensor& x) const;

  int embed_dim() const { return embed_dim_; }

 private:
  int embed_dim_;
  int max_positions_;
  Tensor pos_embedding_;  // [max_positions, K]; undefined when disabled.
  std::vector<std::unique_ptr<TransformerBlock>> blocks_;
  LayerNormLayer final_ln_;
};

}  // namespace fcm::nn

#endif  // FCM_NN_ATTENTION_H_
