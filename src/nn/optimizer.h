// First-order optimizers over a parameter list (the paper trains FCM with
// Adam, lr 1e-6 at full scale; we default to a larger lr at reduced scale).

#ifndef FCM_NN_OPTIMIZER_H_
#define FCM_NN_OPTIMIZER_H_

#include <vector>

#include "nn/tensor.h"

namespace fcm::nn {

/// Common optimizer interface: Step consumes the gradients currently in
/// the parameters' grad buffers; ZeroGrad clears them.
class Optimizer {
 public:
  explicit Optimizer(std::vector<Tensor> params)
      : params_(std::move(params)) {}
  virtual ~Optimizer() = default;

  virtual void Step() = 0;

  void ZeroGrad() {
    for (auto& p : params_) p.ZeroGrad();
  }

  /// Global L2 norm of all gradients (diagnostics / clipping).
  double GradNorm() const;

  /// Scales gradients so their global norm is at most `max_norm`.
  void ClipGradNorm(double max_norm);

 protected:
  std::vector<Tensor> params_;
};

/// Plain SGD with optional momentum.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<Tensor> params, float lr, float momentum = 0.0f);

  void Step() override;

  float lr() const { return lr_; }
  void set_lr(float lr) { lr_ = lr; }

 private:
  float lr_;
  float momentum_;
  std::vector<std::vector<float>> velocity_;
};

/// Adam (Kingma & Ba) with bias correction and optional decoupled weight
/// decay (AdamW): decay is applied directly to the parameters, not mixed
/// into the adaptive gradient moments.
class Adam : public Optimizer {
 public:
  Adam(std::vector<Tensor> params, float lr, float beta1 = 0.9f,
       float beta2 = 0.999f, float epsilon = 1e-8f,
       float weight_decay = 0.0f);

  void Step() override;

  float lr() const { return lr_; }
  void set_lr(float lr) { lr_ = lr; }

 private:
  float lr_;
  float beta1_;
  float beta2_;
  float epsilon_;
  float weight_decay_;
  int64_t t_ = 0;
  std::vector<std::vector<float>> m_;
  std::vector<std::vector<float>> v_;
};

}  // namespace fcm::nn

#endif  // FCM_NN_OPTIMIZER_H_
