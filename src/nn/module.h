// Module: a named collection of trainable parameters with save/load.

#ifndef FCM_NN_MODULE_H_
#define FCM_NN_MODULE_H_

#include <string>
#include <utility>
#include <vector>

#include "common/serialize.h"
#include "nn/tensor.h"

namespace fcm::nn {

/// Base class for layers/models. Subclasses register their parameters (and
/// submodules) so optimizers and serialization can traverse them uniformly.
class Module {
 public:
  virtual ~Module() = default;

  /// All trainable parameters, depth-first through submodules.
  std::vector<Tensor> Parameters() const;

  /// Named parameters ("sub.weight" style dotted paths).
  std::vector<std::pair<std::string, Tensor>> NamedParameters() const;

  /// Total number of trainable scalars.
  int64_t NumParameters() const;

  /// Zeroes all parameter gradients.
  void ZeroGrad();

  /// Serializes all parameters (values only, in registration order, with
  /// names for integrity checking).
  void SaveState(common::BinaryWriter* writer) const;

  /// Restores parameters saved by SaveState. Fails when the parameter
  /// names/shapes do not match the current architecture.
  common::Status LoadState(common::BinaryReader* reader);

 protected:
  /// Registers a directly-owned parameter.
  Tensor RegisterParameter(const std::string& name, Tensor t);

  /// Registers a submodule (not owned; must outlive this module).
  void RegisterModule(const std::string& name, Module* m);

 private:
  std::vector<std::pair<std::string, Tensor>> params_;
  std::vector<std::pair<std::string, Module*>> children_;
};

}  // namespace fcm::nn

#endif  // FCM_NN_MODULE_H_
