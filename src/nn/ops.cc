#include "nn/ops.h"

#include <algorithm>
#include <cmath>

#include "common/simd.h"

namespace fcm::nn {

namespace {

// Backward closures capture raw TensorNode pointers: the result node owns
// its parents via the `parents` vector, and Backward() only runs while the
// result is alive, so raw pointers cannot dangle — and avoid the reference
// cycle a shared_ptr self-capture would create.
void CheckSameShape(const Tensor& a, const Tensor& b) {
  FCM_CHECK(a.shape() == b.shape());
}

int Rows(const Tensor& t) {
  FCM_CHECK_EQ(t.rank(), 2);
  return t.dim(0);
}
int Cols(const Tensor& t) {
  FCM_CHECK_EQ(t.rank(), 2);
  return t.dim(1);
}

}  // namespace

Tensor Add(const Tensor& a, const Tensor& b) {
  CheckSameShape(a, b);
  Tensor out = MakeOpResult(a.shape(), {a.node_ptr(), b.node_ptr()});
  const auto& av = a.data();
  const auto& bv = b.data();
  auto& ov = out.data();
  for (size_t i = 0; i < ov.size(); ++i) ov[i] = av[i] + bv[i];
  if (out.requires_grad()) {
    TensorNode* on = out.node();
    TensorNode* an = a.node();
    TensorNode* bn = b.node();
    on->backward_fn = [on, an, bn]() {
      for (size_t i = 0; i < on->grad.size(); ++i) {
        an->grad[i] += on->grad[i];
        bn->grad[i] += on->grad[i];
      }
    };
  }
  return out;
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  CheckSameShape(a, b);
  Tensor out = MakeOpResult(a.shape(), {a.node_ptr(), b.node_ptr()});
  const auto& av = a.data();
  const auto& bv = b.data();
  auto& ov = out.data();
  for (size_t i = 0; i < ov.size(); ++i) ov[i] = av[i] - bv[i];
  if (out.requires_grad()) {
    TensorNode* on = out.node();
    TensorNode* an = a.node();
    TensorNode* bn = b.node();
    on->backward_fn = [on, an, bn]() {
      for (size_t i = 0; i < on->grad.size(); ++i) {
        an->grad[i] += on->grad[i];
        bn->grad[i] -= on->grad[i];
      }
    };
  }
  return out;
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  CheckSameShape(a, b);
  Tensor out = MakeOpResult(a.shape(), {a.node_ptr(), b.node_ptr()});
  const auto& av = a.data();
  const auto& bv = b.data();
  auto& ov = out.data();
  for (size_t i = 0; i < ov.size(); ++i) ov[i] = av[i] * bv[i];
  if (out.requires_grad()) {
    TensorNode* on = out.node();
    TensorNode* an = a.node();
    TensorNode* bn = b.node();
    on->backward_fn = [on, an, bn]() {
      for (size_t i = 0; i < on->grad.size(); ++i) {
        an->grad[i] += on->grad[i] * bn->data[i];
        bn->grad[i] += on->grad[i] * an->data[i];
      }
    };
  }
  return out;
}

Tensor Scale(const Tensor& a, float s) {
  Tensor out = MakeOpResult(a.shape(), {a.node_ptr()});
  const auto& av = a.data();
  auto& ov = out.data();
  for (size_t i = 0; i < ov.size(); ++i) ov[i] = av[i] * s;
  if (out.requires_grad()) {
    TensorNode* on = out.node();
    TensorNode* an = a.node();
    on->backward_fn = [on, an, s]() {
      for (size_t i = 0; i < on->grad.size(); ++i) {
        an->grad[i] += on->grad[i] * s;
      }
    };
  }
  return out;
}

Tensor AddScalar(const Tensor& a, float s) {
  Tensor out = MakeOpResult(a.shape(), {a.node_ptr()});
  const auto& av = a.data();
  auto& ov = out.data();
  for (size_t i = 0; i < ov.size(); ++i) ov[i] = av[i] + s;
  if (out.requires_grad()) {
    TensorNode* on = out.node();
    TensorNode* an = a.node();
    on->backward_fn = [on, an]() {
      for (size_t i = 0; i < on->grad.size(); ++i) {
        an->grad[i] += on->grad[i];
      }
    };
  }
  return out;
}

Tensor AddRowBroadcast(const Tensor& m, const Tensor& row) {
  const int n = Rows(m), k = Cols(m);
  FCM_CHECK_EQ(row.rank(), 1);
  FCM_CHECK_EQ(row.dim(0), k);
  Tensor out = MakeOpResult(m.shape(), {m.node_ptr(), row.node_ptr()});
  const auto& mv = m.data();
  const auto& rv = row.data();
  auto& ov = out.data();
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < k; ++j) {
      ov[static_cast<size_t>(i) * k + j] =
          mv[static_cast<size_t>(i) * k + j] + rv[static_cast<size_t>(j)];
    }
  }
  if (out.requires_grad()) {
    TensorNode* on = out.node();
    TensorNode* mn = m.node();
    TensorNode* rn = row.node();
    on->backward_fn = [on, mn, rn, n, k]() {
      for (int i = 0; i < n; ++i) {
        for (int j = 0; j < k; ++j) {
          const float g = on->grad[static_cast<size_t>(i) * k + j];
          mn->grad[static_cast<size_t>(i) * k + j] += g;
          rn->grad[static_cast<size_t>(j)] += g;
        }
      }
    };
  }
  return out;
}

namespace {

// Cache tile edge for the blocked GEMM loops (floats; 64 x 64 tiles of
// a and b stay within L1/L2 alongside the running output rows).
constexpr int kMatMulBlock = 64;

// out[n,m] += a[n,k] * b[k,m], blocked over (i, kk) tiles. Each row of a
// tile is one dispatch into the simd GEMM micro-kernel (AVX2/NEON keep
// the output row in register accumulators across the kk sweep); blocking
// keeps the b tile cache-resident across the tile's rows. Under scalar
// dispatch the micro-kernel accumulates over kk ascending for every
// (i, j), exactly like the naive ikj loop, so results are bit-identical.
void GemmAccumulate(const float* a, const float* b, float* out, int n, int k,
                    int m) {
  const auto& kernels = simd::Active();
  for (int i0 = 0; i0 < n; i0 += kMatMulBlock) {
    const int i1 = std::min(n, i0 + kMatMulBlock);
    for (int k0 = 0; k0 < k; k0 += kMatMulBlock) {
      const int k1 = std::min(k, k0 + kMatMulBlock);
      for (int i = i0; i < i1; ++i) {
        kernels.gemm_micro_f32(
            a + static_cast<size_t>(i) * k + k0, 1,
            b + static_cast<size_t>(k0) * m, static_cast<size_t>(m),
            static_cast<size_t>(k1 - k0), out + static_cast<size_t>(i) * m,
            static_cast<size_t>(m));
      }
    }
  }
}

// out[n,k] += g[n,m] * b[k,m]^T: rows of g and b are contiguous, so each
// (i, kk) cell is one simd dot product, and the g row stays cached across
// the kk sweep.
void GemmAccumulateBt(const float* g, const float* b, float* out, int n,
                      int k, int m) {
  const auto& kernels = simd::Active();
  for (int i = 0; i < n; ++i) {
    const float* grow = g + static_cast<size_t>(i) * m;
    float* orow = out + static_cast<size_t>(i) * k;
    for (int kk = 0; kk < k; ++kk) {
      orow[kk] += kernels.dot_f32(grow, b + static_cast<size_t>(kk) * m,
                                  static_cast<size_t>(m));
    }
  }
}

}  // namespace

Tensor MatMul(const Tensor& a, const Tensor& b) {
  const int n = Rows(a), k = Cols(a);
  FCM_CHECK_EQ(Rows(b), k);
  const int m = Cols(b);
  Tensor out = MakeOpResult({n, m}, {a.node_ptr(), b.node_ptr()});
  GemmAccumulate(a.data().data(), b.data().data(), out.data().data(), n, k,
                 m);
  if (out.requires_grad()) {
    TensorNode* on = out.node();
    TensorNode* an = a.node();
    TensorNode* bn = b.node();
    on->backward_fn = [on, an, bn, n, k, m]() {
      // dA += dOut * B^T ; dB += A^T * dOut.
      GemmAccumulateBt(on->grad.data(), bn->data.data(), an->grad.data(), n,
                       k, m);
      // dB: iterate (kk, i) tiles so dB rows accumulate over i ascending —
      // the same order as the naive loops. Each (kk, i-tile) pair is one
      // micro-kernel dispatch reading a strided column of A (stride k)
      // against contiguous rows of dOut.
      const float* ad = an->data.data();
      const float* gd = on->grad.data();
      float* bg = bn->grad.data();
      const auto& kernels = simd::Active();
      for (int k0 = 0; k0 < k; k0 += kMatMulBlock) {
        const int k1 = std::min(k, k0 + kMatMulBlock);
        for (int i0 = 0; i0 < n; i0 += kMatMulBlock) {
          const int i1 = std::min(n, i0 + kMatMulBlock);
          for (int kk = k0; kk < k1; ++kk) {
            kernels.gemm_micro_f32(
                ad + static_cast<size_t>(i0) * k + kk,
                static_cast<size_t>(k), gd + static_cast<size_t>(i0) * m,
                static_cast<size_t>(m), static_cast<size_t>(i1 - i0),
                bg + static_cast<size_t>(kk) * m, static_cast<size_t>(m));
          }
        }
      }
    };
  }
  return out;
}

Tensor Transpose(const Tensor& a) {
  const int n = Rows(a), m = Cols(a);
  Tensor out = MakeOpResult({m, n}, {a.node_ptr()});
  const auto& av = a.data();
  auto& ov = out.data();
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < m; ++j) {
      ov[static_cast<size_t>(j) * n + i] = av[static_cast<size_t>(i) * m + j];
    }
  }
  if (out.requires_grad()) {
    TensorNode* on = out.node();
    TensorNode* an = a.node();
    on->backward_fn = [on, an, n, m]() {
      for (int i = 0; i < n; ++i) {
        for (int j = 0; j < m; ++j) {
          an->grad[static_cast<size_t>(i) * m + j] +=
              on->grad[static_cast<size_t>(j) * n + i];
        }
      }
    };
  }
  return out;
}

Tensor Reshape(const Tensor& a, const Shape& shape) {
  FCM_CHECK_EQ(NumElements(shape), a.numel());
  Tensor out = MakeOpResult(shape, {a.node_ptr()});
  out.data() = a.data();
  if (out.requires_grad()) {
    TensorNode* on = out.node();
    TensorNode* an = a.node();
    on->backward_fn = [on, an]() {
      for (size_t i = 0; i < on->grad.size(); ++i) {
        an->grad[i] += on->grad[i];
      }
    };
  }
  return out;
}

Tensor Softmax(const Tensor& a) {
  Shape shape = a.shape();
  int rows = 1, cols = 0;
  if (a.rank() == 2) {
    rows = a.dim(0);
    cols = a.dim(1);
  } else {
    FCM_CHECK_EQ(a.rank(), 1);
    cols = a.dim(0);
  }
  Tensor out = MakeOpResult(shape, {a.node_ptr()});
  const auto& av = a.data();
  auto& ov = out.data();
  for (int r = 0; r < rows; ++r) {
    const size_t base = static_cast<size_t>(r) * cols;
    float mx = -1e30f;
    for (int j = 0; j < cols; ++j) mx = std::max(mx, av[base + j]);
    float denom = 0.0f;
    for (int j = 0; j < cols; ++j) {
      ov[base + j] = std::exp(av[base + j] - mx);
      denom += ov[base + j];
    }
    for (int j = 0; j < cols; ++j) ov[base + j] /= denom;
  }
  if (out.requires_grad()) {
    TensorNode* on = out.node();
    TensorNode* an = a.node();
    on->backward_fn = [on, an, rows, cols]() {
      for (int r = 0; r < rows; ++r) {
        const size_t base = static_cast<size_t>(r) * cols;
        float dot = 0.0f;
        for (int j = 0; j < cols; ++j) {
          dot += on->grad[base + j] * on->data[base + j];
        }
        for (int j = 0; j < cols; ++j) {
          an->grad[base + j] +=
              on->data[base + j] * (on->grad[base + j] - dot);
        }
      }
    };
  }
  return out;
}

namespace {

template <typename FwdFn, typename GradFn>
Tensor ElementwiseOp(const Tensor& a, FwdFn fwd, GradFn grad_from_xy) {
  Tensor out = MakeOpResult(a.shape(), {a.node_ptr()});
  const auto& av = a.data();
  auto& ov = out.data();
  for (size_t i = 0; i < ov.size(); ++i) ov[i] = fwd(av[i]);
  if (out.requires_grad()) {
    TensorNode* on = out.node();
    TensorNode* an = a.node();
    on->backward_fn = [on, an, grad_from_xy]() {
      for (size_t i = 0; i < on->grad.size(); ++i) {
        an->grad[i] += on->grad[i] * grad_from_xy(an->data[i], on->data[i]);
      }
    };
  }
  return out;
}

}  // namespace

Tensor Sqrt(const Tensor& a) {
  return ElementwiseOp(
      a, [](float x) { return std::sqrt(std::max(x, 0.0f)); },
      [](float, float y) { return y > 1e-12f ? 0.5f / y : 0.0f; });
}

Tensor Rsqrt(const Tensor& a, float epsilon) {
  return ElementwiseOp(
      a,
      [epsilon](float x) { return 1.0f / std::sqrt(std::max(x, epsilon)); },
      [epsilon](float x, float y) {
        return x <= epsilon ? 0.0f : -0.5f * y * y * y;
      });
}

Tensor Relu(const Tensor& a) {
  return ElementwiseOp(
      a, [](float x) { return x > 0.0f ? x : 0.0f; },
      [](float x, float) { return x > 0.0f ? 1.0f : 0.0f; });
}

Tensor LeakyRelu(const Tensor& a, float negative_slope) {
  return ElementwiseOp(
      a,
      [negative_slope](float x) {
        return x > 0.0f ? x : negative_slope * x;
      },
      [negative_slope](float x, float) {
        return x > 0.0f ? 1.0f : negative_slope;
      });
}

Tensor Gelu(const Tensor& a) {
  // tanh approximation of GELU.
  constexpr float kC = 0.7978845608f;  // sqrt(2/pi)
  return ElementwiseOp(
      a,
      [](float x) {
        const float t =
            std::tanh(kC * (x + 0.044715f * x * x * x));
        return 0.5f * x * (1.0f + t);
      },
      [](float x, float) {
        const float u = kC * (x + 0.044715f * x * x * x);
        const float t = std::tanh(u);
        const float du = kC * (1.0f + 3.0f * 0.044715f * x * x);
        return 0.5f * (1.0f + t) + 0.5f * x * (1.0f - t * t) * du;
      });
}

Tensor Tanh(const Tensor& a) {
  return ElementwiseOp(
      a, [](float x) { return std::tanh(x); },
      [](float, float y) { return 1.0f - y * y; });
}

Tensor Sigmoid(const Tensor& a) {
  return ElementwiseOp(
      a, [](float x) { return 1.0f / (1.0f + std::exp(-x)); },
      [](float, float y) { return y * (1.0f - y); });
}

Tensor LayerNorm(const Tensor& a, const Tensor& gain, const Tensor& bias,
                 float epsilon) {
  int rows = 1, cols = 0;
  if (a.rank() == 2) {
    rows = a.dim(0);
    cols = a.dim(1);
  } else {
    FCM_CHECK_EQ(a.rank(), 1);
    cols = a.dim(0);
  }
  FCM_CHECK_EQ(gain.rank(), 1);
  FCM_CHECK_EQ(gain.dim(0), cols);
  FCM_CHECK_EQ(bias.dim(0), cols);
  Tensor out = MakeOpResult(a.shape(),
                            {a.node_ptr(), gain.node_ptr(), bias.node_ptr()});
  const auto& av = a.data();
  const auto& gv = gain.data();
  const auto& bv = bias.data();
  auto& ov = out.data();
  // Cache per-row mean and inverse stddev for the backward pass.
  auto stats = std::make_shared<std::vector<float>>(
      static_cast<size_t>(rows) * 2);
  for (int r = 0; r < rows; ++r) {
    const size_t base = static_cast<size_t>(r) * cols;
    float mean = 0.0f;
    for (int j = 0; j < cols; ++j) mean += av[base + j];
    mean /= static_cast<float>(cols);
    float var = 0.0f;
    for (int j = 0; j < cols; ++j) {
      const float d = av[base + j] - mean;
      var += d * d;
    }
    var /= static_cast<float>(cols);
    const float inv_std = 1.0f / std::sqrt(var + epsilon);
    (*stats)[static_cast<size_t>(r) * 2] = mean;
    (*stats)[static_cast<size_t>(r) * 2 + 1] = inv_std;
    for (int j = 0; j < cols; ++j) {
      const float xhat = (av[base + j] - mean) * inv_std;
      ov[base + j] = gv[static_cast<size_t>(j)] * xhat +
                     bv[static_cast<size_t>(j)];
    }
  }
  if (out.requires_grad()) {
    TensorNode* on = out.node();
    TensorNode* an = a.node();
    TensorNode* gn = gain.node();
    TensorNode* bn = bias.node();
    on->backward_fn = [on, an, gn, bn, rows, cols, stats]() {
      for (int r = 0; r < rows; ++r) {
        const size_t base = static_cast<size_t>(r) * cols;
        const float mean = (*stats)[static_cast<size_t>(r) * 2];
        const float inv_std = (*stats)[static_cast<size_t>(r) * 2 + 1];
        float sum_dy_g = 0.0f, sum_dy_g_xhat = 0.0f;
        for (int j = 0; j < cols; ++j) {
          const float xhat = (an->data[base + j] - mean) * inv_std;
          const float dy = on->grad[base + j];
          gn->grad[static_cast<size_t>(j)] += dy * xhat;
          bn->grad[static_cast<size_t>(j)] += dy;
          const float dyg = dy * gn->data[static_cast<size_t>(j)];
          sum_dy_g += dyg;
          sum_dy_g_xhat += dyg * xhat;
        }
        const float inv_n = 1.0f / static_cast<float>(cols);
        for (int j = 0; j < cols; ++j) {
          const float xhat = (an->data[base + j] - mean) * inv_std;
          const float dyg = on->grad[base + j] *
                            gn->data[static_cast<size_t>(j)];
          an->grad[base + j] +=
              inv_std * (dyg - inv_n * sum_dy_g - xhat * inv_n * sum_dy_g_xhat);
        }
      }
    };
  }
  return out;
}

Tensor MeanAll(const Tensor& a) {
  Tensor out = MakeOpResult({1}, {a.node_ptr()});
  const auto& av = a.data();
  float s = 0.0f;
  for (float x : av) s += x;
  out.data()[0] = s / static_cast<float>(av.size());
  if (out.requires_grad()) {
    TensorNode* on = out.node();
    TensorNode* an = a.node();
    const float inv_n = 1.0f / static_cast<float>(av.size());
    on->backward_fn = [on, an, inv_n]() {
      for (size_t i = 0; i < an->grad.size(); ++i) {
        an->grad[i] += on->grad[0] * inv_n;
      }
    };
  }
  return out;
}

Tensor SumAll(const Tensor& a) {
  Tensor out = MakeOpResult({1}, {a.node_ptr()});
  float s = 0.0f;
  for (float x : a.data()) s += x;
  out.data()[0] = s;
  if (out.requires_grad()) {
    TensorNode* on = out.node();
    TensorNode* an = a.node();
    on->backward_fn = [on, an]() {
      for (size_t i = 0; i < an->grad.size(); ++i) {
        an->grad[i] += on->grad[0];
      }
    };
  }
  return out;
}

Tensor MeanRows(const Tensor& a) {
  const int n = Rows(a), k = Cols(a);
  Tensor out = MakeOpResult({k}, {a.node_ptr()});
  const auto& av = a.data();
  auto& ov = out.data();
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < k; ++j) ov[static_cast<size_t>(j)] += av[static_cast<size_t>(i) * k + j];
  }
  const float inv_n = 1.0f / static_cast<float>(n);
  for (int j = 0; j < k; ++j) ov[static_cast<size_t>(j)] *= inv_n;
  if (out.requires_grad()) {
    TensorNode* on = out.node();
    TensorNode* an = a.node();
    on->backward_fn = [on, an, n, k, inv_n]() {
      for (int i = 0; i < n; ++i) {
        for (int j = 0; j < k; ++j) {
          an->grad[static_cast<size_t>(i) * k + j] +=
              on->grad[static_cast<size_t>(j)] * inv_n;
        }
      }
    };
  }
  return out;
}

Tensor MaxCols(const Tensor& a) {
  const int n = Rows(a), k = Cols(a);
  FCM_CHECK_GT(k, 0);
  Tensor out = MakeOpResult({n}, {a.node_ptr()});
  const auto& av = a.data();
  auto& ov = out.data();
  auto argmax = std::make_shared<std::vector<int>>(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    const size_t base = static_cast<size_t>(i) * k;
    int best = 0;
    for (int j = 1; j < k; ++j) {
      if (av[base + j] > av[base + best]) best = j;
    }
    (*argmax)[static_cast<size_t>(i)] = best;
    ov[static_cast<size_t>(i)] = av[base + best];
  }
  if (out.requires_grad()) {
    TensorNode* on = out.node();
    TensorNode* an = a.node();
    on->backward_fn = [on, an, argmax, k]() {
      for (size_t i = 0; i < on->grad.size(); ++i) {
        an->grad[i * k + (*argmax)[i]] += on->grad[i];
      }
    };
  }
  return out;
}

Tensor ConcatRows(const std::vector<Tensor>& parts) {
  FCM_CHECK(!parts.empty());
  const int k = Cols(parts[0]);
  int total = 0;
  std::vector<std::shared_ptr<TensorNode>> parents;
  for (const auto& p : parts) {
    FCM_CHECK_EQ(Cols(p), k);
    total += Rows(p);
    parents.push_back(p.node_ptr());
  }
  Tensor out = MakeOpResult({total, k}, std::move(parents));
  auto& ov = out.data();
  size_t offset = 0;
  for (const auto& p : parts) {
    const auto& pv = p.data();
    std::copy(pv.begin(), pv.end(), ov.begin() + static_cast<long>(offset));
    offset += pv.size();
  }
  if (out.requires_grad()) {
    TensorNode* on = out.node();
    on->backward_fn = [on]() {
      size_t off = 0;
      for (auto& parent : on->parents) {
        for (size_t i = 0; i < parent->grad.size(); ++i) {
          parent->grad[i] += on->grad[off + i];
        }
        off += parent->grad.size();
      }
    };
  }
  return out;
}

Tensor ConcatCols(const std::vector<Tensor>& parts) {
  FCM_CHECK(!parts.empty());
  const int n = Rows(parts[0]);
  int total_k = 0;
  std::vector<std::shared_ptr<TensorNode>> parents;
  std::vector<int> widths;
  for (const auto& p : parts) {
    FCM_CHECK_EQ(Rows(p), n);
    widths.push_back(Cols(p));
    total_k += Cols(p);
    parents.push_back(p.node_ptr());
  }
  Tensor out = MakeOpResult({n, total_k}, std::move(parents));
  auto& ov = out.data();
  int col_off = 0;
  for (size_t pi = 0; pi < parts.size(); ++pi) {
    const auto& pv = parts[pi].data();
    const int w = widths[pi];
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < w; ++j) {
        ov[static_cast<size_t>(i) * total_k + col_off + j] =
            pv[static_cast<size_t>(i) * w + j];
      }
    }
    col_off += w;
  }
  if (out.requires_grad()) {
    TensorNode* on = out.node();
    auto widths_sp = std::make_shared<std::vector<int>>(widths);
    on->backward_fn = [on, widths_sp, n, total_k]() {
      int coff = 0;
      for (size_t pi = 0; pi < on->parents.size(); ++pi) {
        const int w = (*widths_sp)[pi];
        auto& pg = on->parents[pi]->grad;
        for (int i = 0; i < n; ++i) {
          for (int j = 0; j < w; ++j) {
            pg[static_cast<size_t>(i) * w + j] +=
                on->grad[static_cast<size_t>(i) * total_k + coff + j];
          }
        }
        coff += w;
      }
    };
  }
  return out;
}

Tensor ConcatVec(const std::vector<Tensor>& parts) {
  FCM_CHECK(!parts.empty());
  int total = 0;
  std::vector<std::shared_ptr<TensorNode>> parents;
  for (const auto& p : parts) {
    FCM_CHECK_EQ(p.rank(), 1);
    total += p.dim(0);
    parents.push_back(p.node_ptr());
  }
  Tensor out = MakeOpResult({total}, std::move(parents));
  auto& ov = out.data();
  size_t offset = 0;
  for (const auto& p : parts) {
    const auto& pv = p.data();
    std::copy(pv.begin(), pv.end(), ov.begin() + static_cast<long>(offset));
    offset += pv.size();
  }
  if (out.requires_grad()) {
    TensorNode* on = out.node();
    on->backward_fn = [on]() {
      size_t off = 0;
      for (auto& parent : on->parents) {
        for (size_t i = 0; i < parent->grad.size(); ++i) {
          parent->grad[i] += on->grad[off + i];
        }
        off += parent->grad.size();
      }
    };
  }
  return out;
}

Tensor StackRows(const std::vector<Tensor>& rows) {
  FCM_CHECK(!rows.empty());
  const int k = rows[0].dim(0);
  std::vector<std::shared_ptr<TensorNode>> parents;
  for (const auto& r : rows) {
    FCM_CHECK_EQ(r.rank(), 1);
    FCM_CHECK_EQ(r.dim(0), k);
    parents.push_back(r.node_ptr());
  }
  const int n = static_cast<int>(rows.size());
  Tensor out = MakeOpResult({n, k}, std::move(parents));
  auto& ov = out.data();
  for (int i = 0; i < n; ++i) {
    const auto& rv = rows[static_cast<size_t>(i)].data();
    std::copy(rv.begin(), rv.end(),
              ov.begin() + static_cast<long>(static_cast<size_t>(i) * k));
  }
  if (out.requires_grad()) {
    TensorNode* on = out.node();
    on->backward_fn = [on, k]() {
      for (size_t i = 0; i < on->parents.size(); ++i) {
        auto& pg = on->parents[i]->grad;
        for (int j = 0; j < k; ++j) {
          pg[static_cast<size_t>(j)] += on->grad[i * k + j];
        }
      }
    };
  }
  return out;
}

Tensor SliceRows(const Tensor& a, int row_begin, int row_end) {
  const int n = Rows(a), k = Cols(a);
  FCM_CHECK_GE(row_begin, 0);
  FCM_CHECK_LE(row_end, n);
  FCM_CHECK_LT(row_begin, row_end);
  const int out_n = row_end - row_begin;
  Tensor out = MakeOpResult({out_n, k}, {a.node_ptr()});
  const auto& av = a.data();
  auto& ov = out.data();
  std::copy(av.begin() + static_cast<long>(static_cast<size_t>(row_begin) * k),
            av.begin() + static_cast<long>(static_cast<size_t>(row_end) * k),
            ov.begin());
  if (out.requires_grad()) {
    TensorNode* on = out.node();
    TensorNode* an = a.node();
    on->backward_fn = [on, an, row_begin, k]() {
      const size_t base = static_cast<size_t>(row_begin) * k;
      for (size_t i = 0; i < on->grad.size(); ++i) {
        an->grad[base + i] += on->grad[i];
      }
    };
  }
  return out;
}

Tensor SliceCols(const Tensor& a, int col_begin, int col_end) {
  const int n = Rows(a), k = Cols(a);
  FCM_CHECK_GE(col_begin, 0);
  FCM_CHECK_LE(col_end, k);
  FCM_CHECK_LT(col_begin, col_end);
  const int out_k = col_end - col_begin;
  Tensor out = MakeOpResult({n, out_k}, {a.node_ptr()});
  const auto& av = a.data();
  auto& ov = out.data();
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < out_k; ++j) {
      ov[static_cast<size_t>(i) * out_k + j] =
          av[static_cast<size_t>(i) * k + col_begin + j];
    }
  }
  if (out.requires_grad()) {
    TensorNode* on = out.node();
    TensorNode* an = a.node();
    on->backward_fn = [on, an, n, k, out_k, col_begin]() {
      for (int i = 0; i < n; ++i) {
        for (int j = 0; j < out_k; ++j) {
          an->grad[static_cast<size_t>(i) * k + col_begin + j] +=
              on->grad[static_cast<size_t>(i) * out_k + j];
        }
      }
    };
  }
  return out;
}

Tensor Row(const Tensor& a, int row) {
  const int k = Cols(a);
  FCM_CHECK_GE(row, 0);
  FCM_CHECK_LT(row, Rows(a));
  Tensor out = MakeOpResult({k}, {a.node_ptr()});
  const auto& av = a.data();
  auto& ov = out.data();
  std::copy(av.begin() + static_cast<long>(static_cast<size_t>(row) * k),
            av.begin() + static_cast<long>(static_cast<size_t>(row + 1) * k),
            ov.begin());
  if (out.requires_grad()) {
    TensorNode* on = out.node();
    TensorNode* an = a.node();
    on->backward_fn = [on, an, row, k]() {
      const size_t base = static_cast<size_t>(row) * k;
      for (int j = 0; j < k; ++j) an->grad[base + j] += on->grad[static_cast<size_t>(j)];
    };
  }
  return out;
}

Tensor BinaryCrossEntropy(const Tensor& pred, float label) {
  FCM_CHECK_EQ(pred.numel(), 1);
  Tensor out = MakeOpResult({1}, {pred.node_ptr()});
  static constexpr float kEps = 1e-7f;
  const float p = std::clamp(pred.data()[0], kEps, 1.0f - kEps);
  out.data()[0] = -(label * std::log(p) + (1.0f - label) * std::log(1.0f - p));
  if (out.requires_grad()) {
    TensorNode* on = out.node();
    TensorNode* pn = pred.node();
    on->backward_fn = [on, pn, label]() {
      const float p2 = std::clamp(pn->data[0], kEps, 1.0f - kEps);
      pn->grad[0] += on->grad[0] * (-(label / p2) + (1.0f - label) / (1.0f - p2));
    };
  }
  return out;
}

Tensor BinaryCrossEntropyWithLogits(const Tensor& logit, float label) {
  FCM_CHECK_EQ(logit.numel(), 1);
  Tensor out = MakeOpResult({1}, {logit.node_ptr()});
  const float z = logit.data()[0];
  // log(1 + exp(-|z|)) + max(z, 0) - z * label, the stable formulation.
  out.data()[0] = std::log1p(std::exp(-std::fabs(z))) + std::max(z, 0.0f) -
                  z * label;
  if (out.requires_grad()) {
    TensorNode* on = out.node();
    TensorNode* ln = logit.node();
    on->backward_fn = [on, ln, label]() {
      const float sig = 1.0f / (1.0f + std::exp(-ln->data[0]));
      ln->grad[0] += on->grad[0] * (sig - label);
    };
  }
  return out;
}

Tensor CrossEntropyWithLogits(const Tensor& logits,
                              const std::vector<int>& targets) {
  const int n = Rows(logits), c = Cols(logits);
  FCM_CHECK_EQ(static_cast<size_t>(n), targets.size());
  Tensor out = MakeOpResult({1}, {logits.node_ptr()});
  const auto& lv = logits.data();
  // Cache softmax probabilities for the backward pass.
  auto probs = std::make_shared<std::vector<float>>(lv.size());
  double loss = 0.0;
  for (int i = 0; i < n; ++i) {
    const size_t base = static_cast<size_t>(i) * c;
    FCM_CHECK_GE(targets[static_cast<size_t>(i)], 0);
    FCM_CHECK_LT(targets[static_cast<size_t>(i)], c);
    float mx = -1e30f;
    for (int j = 0; j < c; ++j) mx = std::max(mx, lv[base + j]);
    double denom = 0.0;
    for (int j = 0; j < c; ++j) {
      (*probs)[base + j] = std::exp(lv[base + j] - mx);
      denom += (*probs)[base + j];
    }
    for (int j = 0; j < c; ++j) {
      (*probs)[base + j] = static_cast<float>((*probs)[base + j] / denom);
    }
    loss -= std::log(std::max(
        1e-12, static_cast<double>(
                   (*probs)[base + targets[static_cast<size_t>(i)]])));
  }
  out.data()[0] = static_cast<float>(loss / n);
  if (out.requires_grad()) {
    TensorNode* on = out.node();
    TensorNode* ln = logits.node();
    auto tgt = std::make_shared<std::vector<int>>(targets);
    on->backward_fn = [on, ln, probs, tgt, n, c]() {
      const float g = on->grad[0] / static_cast<float>(n);
      for (int i = 0; i < n; ++i) {
        const size_t base = static_cast<size_t>(i) * c;
        for (int j = 0; j < c; ++j) {
          const float onehot =
              j == (*tgt)[static_cast<size_t>(i)] ? 1.0f : 0.0f;
          ln->grad[base + j] += g * ((*probs)[base + j] - onehot);
        }
      }
    };
  }
  return out;
}

Tensor DotProduct(const Tensor& a, const Tensor& b) {
  FCM_CHECK_EQ(a.rank(), 1);
  FCM_CHECK_EQ(b.rank(), 1);
  FCM_CHECK_EQ(a.dim(0), b.dim(0));
  Tensor out = MakeOpResult({1}, {a.node_ptr(), b.node_ptr()});
  const auto& av = a.data();
  const auto& bv = b.data();
  out.data()[0] = simd::DotF32(av.data(), bv.data(), av.size());
  if (out.requires_grad()) {
    TensorNode* on = out.node();
    TensorNode* an = a.node();
    TensorNode* bn = b.node();
    on->backward_fn = [on, an, bn]() {
      const float g = on->grad[0];
      for (size_t i = 0; i < an->grad.size(); ++i) {
        an->grad[i] += g * bn->data[i];
        bn->grad[i] += g * an->data[i];
      }
    };
  }
  return out;
}

}  // namespace fcm::nn
