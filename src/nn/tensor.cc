#include "nn/tensor.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace fcm::nn {

int64_t NumElements(const Shape& shape) {
  int64_t n = 1;
  for (int d : shape) {
    FCM_CHECK_GE(d, 0);
    n *= d;
  }
  return n;
}

Tensor Tensor::Zeros(const Shape& shape, bool requires_grad) {
  auto node = std::make_shared<TensorNode>();
  node->shape = shape;
  node->data.assign(static_cast<size_t>(NumElements(shape)), 0.0f);
  node->requires_grad = requires_grad;
  if (requires_grad) node->grad.assign(node->data.size(), 0.0f);
  return Wrap(std::move(node));
}

Tensor Tensor::Full(const Shape& shape, float value, bool requires_grad) {
  Tensor t = Zeros(shape, requires_grad);
  std::fill(t.data().begin(), t.data().end(), value);
  return t;
}

Tensor Tensor::FromVector(const Shape& shape, std::vector<float> values,
                          bool requires_grad) {
  FCM_CHECK_EQ(static_cast<int64_t>(values.size()), NumElements(shape));
  auto node = std::make_shared<TensorNode>();
  node->shape = shape;
  node->data = std::move(values);
  node->requires_grad = requires_grad;
  if (requires_grad) node->grad.assign(node->data.size(), 0.0f);
  return Wrap(std::move(node));
}

Tensor Tensor::XavierUniform(int rows, int cols, common::Rng* rng) {
  const float limit =
      std::sqrt(6.0f / static_cast<float>(rows + cols));
  std::vector<float> v(static_cast<size_t>(rows) * cols);
  for (auto& x : v) {
    x = static_cast<float>(rng->Uniform(-limit, limit));
  }
  return FromVector({rows, cols}, std::move(v), /*requires_grad=*/true);
}

Tensor Tensor::RandomNormal(const Shape& shape, float stddev,
                            common::Rng* rng, bool requires_grad) {
  std::vector<float> v(static_cast<size_t>(NumElements(shape)));
  for (auto& x : v) x = static_cast<float>(rng->Normal(0.0, stddev));
  return FromVector(shape, std::move(v), requires_grad);
}

void Tensor::ZeroGrad() {
  auto* n = node();
  if (n->grad.size() != n->data.size()) {
    n->grad.assign(n->data.size(), 0.0f);
  } else {
    std::fill(n->grad.begin(), n->grad.end(), 0.0f);
  }
}

Tensor Tensor::Detach() const {
  auto n = std::make_shared<TensorNode>();
  n->shape = node()->shape;
  n->data = node()->data;
  n->requires_grad = false;
  return Wrap(std::move(n));
}

namespace {

// Iterative post-order topological sort (avoids stack overflow on deep
// graphs such as unrolled training loops).
void TopoSort(TensorNode* root, std::vector<TensorNode*>* order) {
  std::unordered_set<TensorNode*> visited;
  std::vector<std::pair<TensorNode*, size_t>> stack;
  stack.emplace_back(root, 0);
  visited.insert(root);
  while (!stack.empty()) {
    auto& [node, next_child] = stack.back();
    if (next_child < node->parents.size()) {
      TensorNode* child = node->parents[next_child].get();
      ++next_child;
      if (visited.insert(child).second) {
        stack.emplace_back(child, 0);
      }
    } else {
      order->push_back(node);
      stack.pop_back();
    }
  }
}

}  // namespace

void Tensor::Backward() {
  FCM_CHECK_EQ(numel(), 1);
  std::vector<TensorNode*> order;
  TopoSort(node(), &order);
  // Ensure gradient buffers exist for all nodes in the graph.
  for (TensorNode* n : order) {
    if (n->grad.size() != n->data.size()) {
      n->grad.assign(n->data.size(), 0.0f);
    }
  }
  node()->grad[0] = 1.0f;
  // Reverse topological order: every node's grad is final before its
  // backward_fn pushes into parents.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    if ((*it)->backward_fn) (*it)->backward_fn();
  }
}

Tensor MakeOpResult(const Shape& shape,
                    std::vector<std::shared_ptr<TensorNode>> parents) {
  auto node = std::make_shared<TensorNode>();
  node->shape = shape;
  node->data.assign(static_cast<size_t>(NumElements(shape)), 0.0f);
  node->requires_grad = false;
  for (const auto& p : parents) {
    node->requires_grad = node->requires_grad || p->requires_grad;
  }
  node->parents = std::move(parents);
  if (node->requires_grad) node->grad.assign(node->data.size(), 0.0f);
  return Tensor::Wrap(std::move(node));
}

}  // namespace fcm::nn
