#include "nn/layers.h"

#include <algorithm>

namespace fcm::nn {

Tensor Activate(const Tensor& x, Activation act) {
  switch (act) {
    case Activation::kNone: return x;
    case Activation::kRelu: return Relu(x);
    case Activation::kLeakyRelu: return LeakyRelu(x);
    case Activation::kGelu: return Gelu(x);
    case Activation::kTanh: return Tanh(x);
    case Activation::kSigmoid: return Sigmoid(x);
  }
  return x;
}

Linear::Linear(int in_features, int out_features, common::Rng* rng,
               bool bias)
    : in_features_(in_features), out_features_(out_features) {
  weight_ = RegisterParameter(
      "weight", Tensor::XavierUniform(in_features, out_features, rng));
  if (bias) {
    bias_ = RegisterParameter(
        "bias", Tensor::Zeros({out_features}, /*requires_grad=*/true));
  }
}

void Linear::ZeroInit() {
  std::fill(weight_.data().begin(), weight_.data().end(), 0.0f);
  if (bias_.defined()) {
    std::fill(bias_.data().begin(), bias_.data().end(), 0.0f);
  }
}

Tensor Linear::Forward(const Tensor& x) const {
  const bool vector_input = x.rank() == 1;
  Tensor x2 = vector_input ? Reshape(x, {1, x.dim(0)}) : x;
  FCM_CHECK_EQ(x2.dim(1), in_features_);
  Tensor y = MatMul(x2, weight_);
  if (bias_.defined()) y = AddRowBroadcast(y, bias_);
  return vector_input ? Reshape(y, {out_features_}) : y;
}

Mlp::Mlp(int in_features, int hidden_features, int out_features,
         common::Rng* rng, Activation hidden_act)
    : fc1_(in_features, hidden_features, rng),
      fc2_(hidden_features, out_features, rng),
      act_(hidden_act) {
  RegisterModule("fc1", &fc1_);
  RegisterModule("fc2", &fc2_);
}

Tensor Mlp::Forward(const Tensor& x) const {
  return fc2_.Forward(Activate(fc1_.Forward(x), act_));
}

LayerNormLayer::LayerNormLayer(int features) {
  gain_ = RegisterParameter(
      "gain", Tensor::Full({features}, 1.0f, /*requires_grad=*/true));
  bias_ = RegisterParameter(
      "bias", Tensor::Zeros({features}, /*requires_grad=*/true));
}

Tensor LayerNormLayer::Forward(const Tensor& x) const {
  return LayerNorm(x, gain_, bias_);
}

}  // namespace fcm::nn
