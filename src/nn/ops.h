// Differentiable tensor operations. Every function builds a graph node
// whose backward_fn accumulates gradients into its inputs; see tensor.h.
//
// Shape conventions: activations are rank-2 [rows, cols] (rows = sequence
// positions, cols = embedding dim); rank-1 tensors are vectors. Reshape
// moves between the two.

#ifndef FCM_NN_OPS_H_
#define FCM_NN_OPS_H_

#include <vector>

#include "nn/tensor.h"

namespace fcm::nn {

/// Elementwise sum; shapes must match.
Tensor Add(const Tensor& a, const Tensor& b);
/// Elementwise difference; shapes must match.
Tensor Sub(const Tensor& a, const Tensor& b);
/// Elementwise (Hadamard) product; shapes must match.
Tensor Mul(const Tensor& a, const Tensor& b);
/// Multiplies every element by a constant.
Tensor Scale(const Tensor& a, float s);
/// Adds a constant to every element.
Tensor AddScalar(const Tensor& a, float s);

/// Matrix [n,k] + row vector [k], broadcast over rows (bias add).
Tensor AddRowBroadcast(const Tensor& m, const Tensor& row);

/// Matrix product: [n,k] x [k,m] -> [n,m].
Tensor MatMul(const Tensor& a, const Tensor& b);

/// Transpose of a rank-2 tensor.
Tensor Transpose(const Tensor& a);

/// Reinterprets the elements with a new shape (same element count).
Tensor Reshape(const Tensor& a, const Shape& shape);

/// Row-wise softmax over the last dimension of a rank-2 tensor (or the
/// whole of a rank-1 tensor).
Tensor Softmax(const Tensor& a);

/// Elementwise square root (inputs clamped to >= 0).
Tensor Sqrt(const Tensor& a);
/// Elementwise reciprocal square root (inputs clamped away from 0).
Tensor Rsqrt(const Tensor& a, float epsilon = 1e-8f);

/// Elementwise nonlinearities.
Tensor Relu(const Tensor& a);
Tensor LeakyRelu(const Tensor& a, float negative_slope = 0.01f);
Tensor Gelu(const Tensor& a);
Tensor Tanh(const Tensor& a);
Tensor Sigmoid(const Tensor& a);

/// Layer normalization over the last dimension, with learnable gain/bias
/// vectors of size [cols].
Tensor LayerNorm(const Tensor& a, const Tensor& gain, const Tensor& bias,
                 float epsilon = 1e-5f);

/// Mean over all elements -> scalar [1].
Tensor MeanAll(const Tensor& a);
/// Sum over all elements -> scalar [1].
Tensor SumAll(const Tensor& a);
/// Column-wise mean of a rank-2 tensor -> [cols] (mean over rows).
Tensor MeanRows(const Tensor& a);
/// Row-wise max over the last dimension of a rank-2 tensor -> [rows].
/// Gradient flows to the argmax element of each row.
Tensor MaxCols(const Tensor& a);

/// Vertical concatenation of rank-2 tensors with equal column counts.
Tensor ConcatRows(const std::vector<Tensor>& parts);
/// Horizontal concatenation of rank-2 tensors with equal row counts.
Tensor ConcatCols(const std::vector<Tensor>& parts);
/// Concatenates rank-1 vectors into a longer vector.
Tensor ConcatVec(const std::vector<Tensor>& parts);
/// Stacks rank-1 vectors of equal size into a rank-2 tensor [n, k].
Tensor StackRows(const std::vector<Tensor>& rows);

/// Rows [row_begin, row_end) of a rank-2 tensor.
Tensor SliceRows(const Tensor& a, int row_begin, int row_end);
/// Columns [col_begin, col_end) of a rank-2 tensor.
Tensor SliceCols(const Tensor& a, int col_begin, int col_end);
/// A single row of a rank-2 tensor as a rank-1 vector.
Tensor Row(const Tensor& a, int row);

/// Binary cross-entropy of a probability `pred` in (0,1) (scalar tensor)
/// against a fixed 0/1 `label`; clamps pred away from {0,1} for stability.
Tensor BinaryCrossEntropy(const Tensor& pred, float label);

/// Numerically stable BCE directly from a logit (scalar tensor).
Tensor BinaryCrossEntropyWithLogits(const Tensor& logit, float label);

/// Mean softmax cross-entropy of logits [n, classes] against integer
/// targets (size n) -> scalar [1].
Tensor CrossEntropyWithLogits(const Tensor& logits,
                              const std::vector<int>& targets);

/// Dot product of two equal-size rank-1 tensors -> scalar [1].
Tensor DotProduct(const Tensor& a, const Tensor& b);

}  // namespace fcm::nn

#endif  // FCM_NN_OPS_H_
