// A small dense float32 tensor with reverse-mode automatic
// differentiation — the training substrate replacing libtorch in this
// reproduction. Tensors are handles (cheap to copy) onto shared nodes of a
// dynamically built computation graph; Tensor::Backward() runs
// backpropagation over a topological order of the graph.

#ifndef FCM_NN_TENSOR_H_
#define FCM_NN_TENSOR_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/rng.h"

namespace fcm::nn {

/// Shape of a tensor; row-major storage. Rank 1 and 2 cover every model in
/// this repository ([seq, dim] activations, [in, out] weights, [dim]
/// biases).
using Shape = std::vector<int>;

/// Number of elements implied by a shape.
int64_t NumElements(const Shape& shape);

/// Graph node: storage + gradient + backward closure.
struct TensorNode {
  Shape shape;
  std::vector<float> data;
  std::vector<float> grad;
  bool requires_grad = false;
  /// Inputs this node was computed from (graph edges).
  std::vector<std::shared_ptr<TensorNode>> parents;
  /// Accumulates parent gradients given this node's gradient.
  std::function<void()> backward_fn;
};

/// Value-semantics handle to a TensorNode.
class Tensor {
 public:
  /// Null handle; most APIs require a non-null tensor.
  Tensor() = default;

  /// Fresh tensor filled with zeros.
  static Tensor Zeros(const Shape& shape, bool requires_grad = false);
  /// Fresh tensor filled with `value`.
  static Tensor Full(const Shape& shape, float value,
                     bool requires_grad = false);
  /// Takes ownership of `values` (size must match the shape).
  static Tensor FromVector(const Shape& shape, std::vector<float> values,
                           bool requires_grad = false);
  /// Xavier/Glorot-uniform initialized parameter.
  static Tensor XavierUniform(int rows, int cols, common::Rng* rng);
  /// Normal(0, stddev) initialized parameter.
  static Tensor RandomNormal(const Shape& shape, float stddev,
                             common::Rng* rng, bool requires_grad = true);

  bool defined() const { return node_ != nullptr; }
  const Shape& shape() const { return node()->shape; }
  int dim(int i) const {
    FCM_CHECK_LT(static_cast<size_t>(i), node()->shape.size());
    return node()->shape[static_cast<size_t>(i)];
  }
  int rank() const { return static_cast<int>(node()->shape.size()); }
  int64_t numel() const { return NumElements(node()->shape); }

  std::vector<float>& data() { return node()->data; }
  const std::vector<float>& data() const { return node()->data; }
  std::vector<float>& grad() { return node()->grad; }
  const std::vector<float>& grad() const { return node()->grad; }
  bool requires_grad() const { return node()->requires_grad; }

  /// Scalar value of a 1-element tensor.
  float item() const {
    FCM_CHECK_EQ(numel(), 1);
    return node()->data[0];
  }

  /// Runs backpropagation from this scalar tensor (numel() == 1): seeds
  /// d(this)/d(this) = 1 and accumulates gradients into every
  /// requires_grad node reachable through the graph.
  void Backward();

  /// Zeroes this node's gradient buffer.
  void ZeroGrad();

  /// Detached copy sharing no graph history (same data).
  Tensor Detach() const;

  std::shared_ptr<TensorNode> node_ptr() const { return node_; }
  TensorNode* node() const {
    FCM_CHECK(node_ != nullptr);
    return node_.get();
  }

  /// Builds a tensor wrapping an existing node (internal/ops use).
  static Tensor Wrap(std::shared_ptr<TensorNode> node) {
    Tensor t;
    t.node_ = std::move(node);
    return t;
  }

 private:
  std::shared_ptr<TensorNode> node_;
};

/// Creates a result node for an op over `parents`; requires_grad is
/// inherited. (Internal helper shared by ops.cc.)
Tensor MakeOpResult(const Shape& shape,
                    std::vector<std::shared_ptr<TensorNode>> parents);

}  // namespace fcm::nn

#endif  // FCM_NN_TENSOR_H_
