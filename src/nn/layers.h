// Basic trainable layers: Linear, two-layer MLP, LayerNorm wrapper.

#ifndef FCM_NN_LAYERS_H_
#define FCM_NN_LAYERS_H_

#include "nn/module.h"
#include "nn/ops.h"

namespace fcm::nn {

/// Activation choice for composite layers.
enum class Activation { kNone, kRelu, kLeakyRelu, kGelu, kTanh, kSigmoid };

/// Applies an activation (kNone is identity).
Tensor Activate(const Tensor& x, Activation act);

/// Fully connected layer y = x W + b. Accepts rank-2 [n, in] or rank-1
/// [in] inputs (rank-1 is treated as a single row and returned rank-1).
class Linear : public Module {
 public:
  Linear(int in_features, int out_features, common::Rng* rng,
         bool bias = true);

  Tensor Forward(const Tensor& x) const;

  /// Zeroes the weights (and bias): the layer starts as the constant-0
  /// map. Used to initialize residual/shortcut-adjacent output layers so
  /// an additive deterministic path defines the model's starting point.
  void ZeroInit();

  int in_features() const { return in_features_; }
  int out_features() const { return out_features_; }

 private:
  int in_features_;
  int out_features_;
  Tensor weight_;  // [in, out]
  Tensor bias_;    // [out] (undefined when bias=false)
};

/// Two-layer perceptron with a configurable hidden activation — the
/// building block used for the transformation layers, HMRL combiner, MoE
/// gates, and the matcher head (paper Secs. IV-D, V-B..D).
class Mlp : public Module {
 public:
  Mlp(int in_features, int hidden_features, int out_features,
      common::Rng* rng, Activation hidden_act = Activation::kGelu);

  Tensor Forward(const Tensor& x) const;

  /// Zero-initializes the output layer (see Linear::ZeroInit).
  void ZeroOutputLayer() { fc2_.ZeroInit(); }

 private:
  Linear fc1_;
  Linear fc2_;
  Activation act_;
};

/// Learnable layer normalization over the last dimension.
class LayerNormLayer : public Module {
 public:
  explicit LayerNormLayer(int features);

  Tensor Forward(const Tensor& x) const;

 private:
  Tensor gain_;
  Tensor bias_;
};

}  // namespace fcm::nn

#endif  // FCM_NN_LAYERS_H_
