#include "nn/attention.h"

#include <cmath>

#include "common/string_util.h"
#include "nn/ops.h"

namespace fcm::nn {

MultiHeadAttention::MultiHeadAttention(int embed_dim, int num_heads,
                                       common::Rng* rng)
    : embed_dim_(embed_dim),
      num_heads_(num_heads),
      head_dim_(embed_dim / num_heads),
      wq_(embed_dim, embed_dim, rng),
      wk_(embed_dim, embed_dim, rng),
      wv_(embed_dim, embed_dim, rng),
      wo_(embed_dim, embed_dim, rng) {
  FCM_CHECK_EQ(head_dim_ * num_heads, embed_dim);
  RegisterModule("wq", &wq_);
  RegisterModule("wk", &wk_);
  RegisterModule("wv", &wv_);
  RegisterModule("wo", &wo_);
}

Tensor MultiHeadAttention::Forward(const Tensor& query,
                                   const Tensor& kv) const {
  FCM_CHECK_EQ(query.dim(1), embed_dim_);
  FCM_CHECK_EQ(kv.dim(1), embed_dim_);
  const Tensor q = wq_.Forward(query);  // [nq, K]
  const Tensor k = wk_.Forward(kv);     // [nkv, K]
  const Tensor v = wv_.Forward(kv);     // [nkv, K]
  const float scale = 1.0f / std::sqrt(static_cast<float>(head_dim_));

  std::vector<Tensor> head_outputs;
  head_outputs.reserve(static_cast<size_t>(num_heads_));
  for (int h = 0; h < num_heads_; ++h) {
    const int c0 = h * head_dim_, c1 = (h + 1) * head_dim_;
    const Tensor qh = SliceCols(q, c0, c1);  // [nq, hd]
    const Tensor kh = SliceCols(k, c0, c1);  // [nkv, hd]
    const Tensor vh = SliceCols(v, c0, c1);  // [nkv, hd]
    const Tensor scores = Scale(MatMul(qh, Transpose(kh)), scale);
    const Tensor attn = Softmax(scores);      // [nq, nkv]
    head_outputs.push_back(MatMul(attn, vh));  // [nq, hd]
  }
  return wo_.Forward(ConcatCols(head_outputs));
}

TransformerBlock::TransformerBlock(int embed_dim, int num_heads,
                                   int mlp_hidden, common::Rng* rng)
    : attn_(embed_dim, num_heads, rng),
      ln1_(embed_dim),
      ln2_(embed_dim),
      mlp_(embed_dim, mlp_hidden, embed_dim, rng, Activation::kGelu) {
  RegisterModule("attn", &attn_);
  RegisterModule("ln1", &ln1_);
  RegisterModule("ln2", &ln2_);
  RegisterModule("mlp", &mlp_);
}

Tensor TransformerBlock::Forward(const Tensor& x) const {
  const Tensor normed = ln1_.Forward(x);
  Tensor y = Add(x, attn_.Forward(normed, normed));
  y = Add(y, mlp_.Forward(ln2_.Forward(y)));
  return y;
}

TransformerEncoder::TransformerEncoder(int embed_dim, int num_heads,
                                       int mlp_hidden, int num_layers,
                                       int max_positions, common::Rng* rng)
    : embed_dim_(embed_dim),
      max_positions_(max_positions),
      final_ln_(embed_dim) {
  if (max_positions > 0) {
    pos_embedding_ = RegisterParameter(
        "pos_embedding",
        Tensor::RandomNormal({max_positions, embed_dim}, 0.02f, rng));
  }
  for (int i = 0; i < num_layers; ++i) {
    blocks_.push_back(
        std::make_unique<TransformerBlock>(embed_dim, num_heads, mlp_hidden,
                                           rng));
    RegisterModule(common::StrFormat("block%d", i), blocks_.back().get());
  }
  RegisterModule("final_ln", &final_ln_);
}

Tensor TransformerEncoder::Forward(const Tensor& x) const {
  FCM_CHECK_EQ(x.rank(), 2);
  FCM_CHECK_EQ(x.dim(1), embed_dim_);
  Tensor h = x;
  if (pos_embedding_.defined()) {
    const int n = x.dim(0);
    // Positions beyond max_positions_ clamp to the final embedding row.
    std::vector<Tensor> rows;
    rows.reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
      rows.push_back(Row(pos_embedding_, std::min(i, max_positions_ - 1)));
    }
    h = Add(h, StackRows(rows));
  }
  for (const auto& block : blocks_) h = block->Forward(h);
  return final_ln_.Forward(h);
}

}  // namespace fcm::nn
