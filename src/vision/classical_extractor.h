// Pixels-only extractor: axis detection, bitmap-font tick OCR, and
// multi-line tracing (no access to renderer instrumentation).

#ifndef FCM_VISION_CLASSICAL_EXTRACTOR_H_
#define FCM_VISION_CLASSICAL_EXTRACTOR_H_

#include "vision/extractor.h"
#include "vision/pixel_analysis.h"

namespace fcm::vision {

/// Tuning knobs for the classical pipeline.
struct ClassicalExtractorOptions {
  /// Ink threshold separating line pixels from anti-aliasing haze.
  float ink_threshold = 0.35f;
};

/// Recovers lines and the y range from the raw raster alone. Works on any
/// chart drawn with axes + tick labels; Extract fails with NotFound when
/// axes or at least two readable tick labels cannot be located.
class ClassicalExtractor : public VisualElementExtractor {
 public:
  explicit ClassicalExtractor(ClassicalExtractorOptions options = {})
      : options_(options) {}

  common::Result<ExtractedChart> Extract(
      const chart::RenderedChart& chart) const override;

  const char* name() const override { return "classical"; }

  /// Core pipeline over a raw image buffer, shared with LearnedExtractor:
  /// `line_map` marks pixels believed to belong to lines (inside the plot
  /// area); axes/ticks are located via `full_map`.
  common::Result<ExtractedChart> ExtractFromMaps(
      const PixelMap& full_map, const PixelMap& line_map) const;

 private:
  ClassicalExtractorOptions options_;
};

}  // namespace fcm::vision

#endif  // FCM_VISION_CLASSICAL_EXTRACTOR_H_
