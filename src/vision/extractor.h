// Visual element extractor interface (paper Sec. IV-A).
//
// Three implementations, ordered by how much instrumentation they assume:
//  * MaskOracleExtractor — reads the renderer's per-element masks; the
//    upper bound that LineChartSeg's automatic labels provide.
//  * ClassicalExtractor — works on raw pixels only (axis detection, tick
//    OCR over our bitmap font, connected-run line tracing).
//  * LearnedExtractor — a pixel classifier trained from scratch on
//    LineChartSeg (the paper's "train a segmentation model from scratch"
//    path), followed by the same geometric recovery as the classical one.

#ifndef FCM_VISION_EXTRACTOR_H_
#define FCM_VISION_EXTRACTOR_H_

#include "chart/renderer.h"
#include "common/result.h"
#include "vision/extracted_chart.h"

namespace fcm::vision {

/// Base interface. Extract receives the rendered chart; implementations
/// other than the mask oracle must only touch `chart.canvas.ink()` (the
/// pixels) — never the masks or geometry metadata.
class VisualElementExtractor {
 public:
  virtual ~VisualElementExtractor() = default;

  virtual common::Result<ExtractedChart> Extract(
      const chart::RenderedChart& chart) const = 0;

  /// Implementation name for reports.
  virtual const char* name() const = 0;
};

}  // namespace fcm::vision

#endif  // FCM_VISION_EXTRACTOR_H_
