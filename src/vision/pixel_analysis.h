// Pixel-level geometry recovery shared by the classical and learned
// extractors: axis detection, tick-row detection, tick-label OCR over the
// renderer's bitmap font, row->value calibration, and multi-line tracing.

#ifndef FCM_VISION_PIXEL_ANALYSIS_H_
#define FCM_VISION_PIXEL_ANALYSIS_H_

#include <optional>
#include <vector>

#include "common/result.h"

namespace fcm::vision {

/// A binary pixel map with dimensions (row-major).
struct PixelMap {
  int width = 0;
  int height = 0;
  std::vector<uint8_t> on;  // 1 where the predicate holds.

  bool At(int x, int y) const {
    return on[static_cast<size_t>(y) * width + x] != 0;
  }
};

/// Thresholds a greyscale image into a PixelMap.
PixelMap Threshold(const std::vector<float>& ink, int width, int height,
                   float threshold = 0.5f);

/// Detected axes: pixel column of the y axis and pixel row of the x axis.
struct AxisGeometry {
  int y_axis_col = -1;
  int x_axis_row = -1;
  /// Plot area bounds derived from the axes (inclusive).
  int plot_left = 0, plot_right = 0, plot_top = 0, plot_bottom = 0;
};

/// Finds the y axis as the column with the longest vertical run and the
/// x axis as the row with the longest horizontal run of on-pixels.
common::Result<AxisGeometry> DetectAxes(const PixelMap& map);

/// Tick rows: rows with short horizontal marks immediately left of the
/// y axis.
std::vector<int> DetectTickRows(const PixelMap& map, const AxisGeometry& axes);

/// Reads the numeric label to the left of the tick at `row` via template
/// matching against the renderer's 3x5 font. Returns nullopt when no
/// parseable label is found.
std::optional<double> ReadTickLabel(const PixelMap& map,
                                    const AxisGeometry& axes, int row);

/// Least-squares linear fit value = a * row + b over (row, value) pairs.
struct RowValueMapping {
  double a = 0.0;
  double b = 0.0;
  double ValueAtRow(double row) const { return a * row + b; }
};
common::Result<RowValueMapping> FitRowValueMapping(
    const std::vector<int>& rows, const std::vector<double>& values);

/// A vertical run of line pixels in one column.
struct PixelRun {
  int y_begin = 0;  // Inclusive.
  int y_end = 0;    // Inclusive.
  double Center() const { return 0.5 * (y_begin + y_end); }
};

/// Extracts vertical runs of on-pixels per column inside the plot area.
std::vector<std::vector<PixelRun>> ColumnRuns(const PixelMap& map,
                                              const AxisGeometry& axes);

/// A traced line: for each plot-area column, the (fractional) center row,
/// or negative when the line is missing in that column (later
/// interpolated).
struct TracedLine {
  std::vector<double> center_rows;
};

/// Greedy multi-line tracker: estimates the number of lines as the modal
/// run count per column and assigns runs to tracks by vertical proximity,
/// carrying tracks through occlusions (line crossings).
std::vector<TracedLine> TraceLines(
    const std::vector<std::vector<PixelRun>>& runs);

/// Fills missing (negative) entries by linear interpolation between known
/// neighbours (nearest value at the borders).
void InterpolateMissing(std::vector<double>* center_rows);

}  // namespace fcm::vision

#endif  // FCM_VISION_PIXEL_ANALYSIS_H_
