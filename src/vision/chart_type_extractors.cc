#include "vision/chart_type_extractors.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "chart/canvas.h"
#include "chart/chart_types.h"
#include "vision/pixel_analysis.h"

namespace fcm::vision {

namespace internal {

int IntensitySlot(float ink, float threshold) {
  if (ink < threshold) return -1;
  int best = 0;
  float best_dist = std::numeric_limits<float>::infinity();
  for (int s = 0; s < chart::kMaxDistinctSeries; ++s) {
    const float dist = std::fabs(ink - chart::SeriesInkIntensity(s));
    if (dist < best_dist) {
      best_dist = dist;
      best = s;
    }
  }
  return best;
}

}  // namespace internal

namespace {

using internal::IntensitySlot;

/// Shared axis/tick calibration (identical to the classical line
/// extractor's first stage).
struct Calibration {
  AxisGeometry axes;
  RowValueMapping mapping;
  std::vector<double> tick_values;
};

common::Result<Calibration> Calibrate(const chart::RenderedChart& chart,
                                      float ink_threshold) {
  const PixelMap full_map =
      Threshold(chart.canvas.ink(), chart.canvas.width(),
                chart.canvas.height(), ink_threshold);
  auto axes_result = DetectAxes(full_map);
  if (!axes_result.ok()) return axes_result.status();
  const AxisGeometry axes = axes_result.value();

  const std::vector<int> tick_rows = DetectTickRows(full_map, axes);
  std::vector<int> calib_rows;
  std::vector<double> calib_values;
  for (int row : tick_rows) {
    const auto value = ReadTickLabel(full_map, axes, row);
    if (value.has_value()) {
      calib_rows.push_back(row);
      calib_values.push_back(*value);
    }
  }
  auto mapping_result = FitRowValueMapping(calib_rows, calib_values);
  if (!mapping_result.ok()) {
    return common::Status::NotFound(
        "could not calibrate y axis: " + mapping_result.status().message());
  }
  return Calibration{axes, mapping_result.value(), calib_values};
}

/// Per-series pixel rows inside the plot area, keyed by intensity slot:
/// slot -> per-plot-column list of pixel rows.
std::map<int, std::vector<std::vector<int>>> SlotPixels(
    const chart::RenderedChart& chart, const AxisGeometry& axes,
    float ink_threshold) {
  std::map<int, std::vector<std::vector<int>>> slots;
  const int pw = axes.plot_right - axes.plot_left + 1;
  const auto& ink = chart.canvas.ink();
  for (int y = axes.plot_top; y <= axes.plot_bottom; ++y) {
    for (int x = axes.plot_left; x <= axes.plot_right; ++x) {
      const float v = ink[static_cast<size_t>(y) * chart.canvas.width() + x];
      const int slot = IntensitySlot(v, ink_threshold);
      if (slot < 0) continue;
      auto [it, inserted] = slots.try_emplace(slot);
      if (inserted) it->second.resize(static_cast<size_t>(pw));
      it->second[static_cast<size_t>(x - axes.plot_left)].push_back(y);
    }
  }
  return slots;
}

/// Builds an ExtractedLine from per-plot-column recovered rows (negative =
/// missing): interpolates gaps, maps rows to values, re-renders the strip.
ExtractedLine LineFromRows(std::vector<double> rows,
                           const Calibration& calib) {
  InterpolateMissing(&rows);
  const int pw =
      calib.axes.plot_right - calib.axes.plot_left + 1;
  const int ph = calib.axes.plot_bottom - calib.axes.plot_top + 1;
  ExtractedLine line;
  line.width = pw;
  line.height = ph;
  line.values.resize(rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    line.values[i] = calib.mapping.ValueAtRow(rows[i]);
  }
  chart::Canvas strip(pw, ph);
  for (size_t i = 0; i + 1 < rows.size(); ++i) {
    strip.DrawLineAA(static_cast<double>(i), rows[i] - calib.axes.plot_top,
                     static_cast<double>(i + 1),
                     rows[i + 1] - calib.axes.plot_top,
                     chart::LineElementId(0));
  }
  line.strip = strip.ink();
  return line;
}

}  // namespace

common::Result<ExtractedChart> ExtractBarChart(
    const chart::RenderedChart& chart,
    const ChartTypeExtractorOptions& options) {
  auto calib_result = Calibrate(chart, options.ink_threshold);
  if (!calib_result.ok()) return calib_result.status();
  const Calibration calib = calib_result.value();

  const auto slots = SlotPixels(chart, calib.axes, options.ink_threshold);
  // Pixel row of the value-0 baseline bars grow from: invert the mapping.
  const double row0 = std::fabs(calib.mapping.a) > 1e-12
                          ? -calib.mapping.b / calib.mapping.a
                          : static_cast<double>(calib.axes.plot_bottom);

  ExtractedChart out;
  out.tick_values = calib.tick_values;
  out.y_lo = calib.mapping.ValueAtRow(calib.axes.plot_bottom);
  out.y_hi = calib.mapping.ValueAtRow(calib.axes.plot_top);

  for (const auto& [slot, columns] : slots) {
    int total_pixels = 0;
    for (const auto& rows : columns) {
      total_pixels += static_cast<int>(rows.size());
    }
    if (total_pixels < options.min_series_pixels) continue;
    // The bar's value edge in each column is the run endpoint farthest
    // from the baseline row.
    std::vector<double> value_rows(columns.size(), -1.0);
    for (size_t x = 0; x < columns.size(); ++x) {
      if (columns[x].empty()) continue;
      const auto [min_it, max_it] =
          std::minmax_element(columns[x].begin(), columns[x].end());
      const double top = *min_it, bottom = *max_it;
      value_rows[x] =
          std::fabs(top - row0) >= std::fabs(bottom - row0) ? top : bottom;
    }
    out.lines.push_back(LineFromRows(std::move(value_rows), calib));
  }
  if (out.lines.empty()) {
    return common::Status::NotFound("no bar series found inside plot area");
  }
  return out;
}

common::Result<ExtractedChart> ExtractScatterChart(
    const chart::RenderedChart& chart,
    const ChartTypeExtractorOptions& options) {
  auto calib_result = Calibrate(chart, options.ink_threshold);
  if (!calib_result.ok()) return calib_result.status();
  const Calibration calib = calib_result.value();

  const auto slots = SlotPixels(chart, calib.axes, options.ink_threshold);

  ExtractedChart out;
  out.tick_values = calib.tick_values;
  out.y_lo = calib.mapping.ValueAtRow(calib.axes.plot_bottom);
  out.y_hi = calib.mapping.ValueAtRow(calib.axes.plot_top);

  for (const auto& [slot, columns] : slots) {
    int total_pixels = 0;
    for (const auto& rows : columns) {
      total_pixels += static_cast<int>(rows.size());
    }
    if (total_pixels < options.min_series_pixels) continue;
    // Marker centroid per column; empty columns interpolated.
    std::vector<double> centroid_rows(columns.size(), -1.0);
    for (size_t x = 0; x < columns.size(); ++x) {
      if (columns[x].empty()) continue;
      double sum = 0.0;
      for (int y : columns[x]) sum += y;
      centroid_rows[x] = sum / static_cast<double>(columns[x].size());
    }
    out.lines.push_back(LineFromRows(std::move(centroid_rows), calib));
  }
  if (out.lines.empty()) {
    return common::Status::NotFound(
        "no marker series found inside plot area");
  }
  return out;
}

common::Result<std::vector<double>> ExtractPieDistribution(
    const chart::RenderedChart& chart,
    const ChartTypeExtractorOptions& options) {
  const auto& ink = chart.canvas.ink();
  std::vector<int64_t> counts(chart::kMaxDistinctSeries, 0);
  int64_t total = 0;
  for (float v : ink) {
    const int slot = IntensitySlot(v, options.ink_threshold);
    if (slot < 0) continue;
    ++counts[static_cast<size_t>(slot)];
    ++total;
  }
  if (total == 0) {
    return common::Status::NotFound("no pie disk pixels found");
  }
  // Keep slots up to the last populated one so sector order is preserved
  // (empty sectors in between report share 0).
  int last = -1;
  for (int s = 0; s < chart::kMaxDistinctSeries; ++s) {
    if (counts[static_cast<size_t>(s)] >=
        options.min_series_pixels) {
      last = s;
    }
  }
  if (last < 0) {
    return common::Status::NotFound("no pie sectors above minimum size");
  }
  std::vector<double> shares(static_cast<size_t>(last) + 1, 0.0);
  for (int s = 0; s <= last; ++s) {
    shares[static_cast<size_t>(s)] =
        static_cast<double>(counts[static_cast<size_t>(s)]) /
        static_cast<double>(total);
  }
  return shares;
}

}  // namespace fcm::vision
