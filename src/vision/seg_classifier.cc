#include "vision/seg_classifier.h"

#include <algorithm>

#include "common/logging.h"
#include "nn/optimizer.h"
#include "nn/ops.h"

namespace fcm::vision {

namespace {

// One labeled training pixel.
struct Sample {
  int example = 0;
  int x = 0;
  int y = 0;
  int label = 0;
};

}  // namespace

SegClassifier::SegClassifier(const SegClassifierConfig& config)
    : config_(config),
      rng_(config.seed),
      mlp_(config.patch_size * config.patch_size + 2, config.hidden_dim,
           chart::kNumSegClasses, &rng_, nn::Activation::kRelu) {
  RegisterModule("mlp", &mlp_);
}

std::vector<float> SegClassifier::Features(const std::vector<float>& image,
                                           int width, int height, int x,
                                           int y) const {
  std::vector<float> f;
  f.reserve(static_cast<size_t>(FeatureDim()));
  const int r = config_.patch_size / 2;
  for (int dy = -r; dy <= r; ++dy) {
    for (int dx = -r; dx <= r; ++dx) {
      const int px = x + dx, py = y + dy;
      const bool in = px >= 0 && px < width && py >= 0 && py < height;
      f.push_back(in ? image[static_cast<size_t>(py) * width + px] : 0.0f);
    }
  }
  f.push_back(static_cast<float>(x) / static_cast<float>(width));
  f.push_back(static_cast<float>(y) / static_cast<float>(height));
  return f;
}

double SegClassifier::Train(const std::vector<chart::SegExample>& examples) {
  // Collect a class-balanced pixel sample from every example.
  std::vector<Sample> samples;
  for (size_t ei = 0; ei < examples.size(); ++ei) {
    const auto& ex = examples[ei];
    std::vector<std::vector<size_t>> by_class(chart::kNumSegClasses);
    for (size_t i = 0; i < ex.label.size(); ++i) {
      by_class[ex.label[i]].push_back(i);
    }
    for (int cls = 0; cls < chart::kNumSegClasses; ++cls) {
      auto& pool = by_class[static_cast<size_t>(cls)];
      if (pool.empty()) continue;
      const size_t take = std::min<size_t>(
          pool.size(), static_cast<size_t>(config_.samples_per_class));
      const auto picked = rng_.SampleWithoutReplacement(pool.size(), take);
      for (size_t pi : picked) {
        const size_t flat = pool[pi];
        samples.push_back({static_cast<int>(ei),
                           static_cast<int>(flat % ex.width),
                           static_cast<int>(flat / ex.width), cls});
      }
    }
  }
  if (samples.empty()) return 0.0;

  nn::Adam optimizer(Parameters(), config_.learning_rate);
  double final_loss = 0.0;
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    rng_.Shuffle(&samples);
    double epoch_loss = 0.0;
    int batches = 0;
    for (size_t start = 0; start < samples.size();
         start += static_cast<size_t>(config_.batch_size)) {
      const size_t end = std::min(
          samples.size(), start + static_cast<size_t>(config_.batch_size));
      std::vector<float> feats;
      std::vector<int> targets;
      for (size_t i = start; i < end; ++i) {
        const auto& s = samples[i];
        const auto& ex = examples[static_cast<size_t>(s.example)];
        const auto f = Features(ex.image, ex.width, ex.height, s.x, s.y);
        feats.insert(feats.end(), f.begin(), f.end());
        targets.push_back(s.label);
      }
      const int n = static_cast<int>(targets.size());
      nn::Tensor x =
          nn::Tensor::FromVector({n, FeatureDim()}, std::move(feats));
      nn::Tensor logits = mlp_.Forward(x);
      nn::Tensor loss = nn::CrossEntropyWithLogits(logits, targets);
      optimizer.ZeroGrad();
      loss.Backward();
      optimizer.Step();
      epoch_loss += loss.item();
      ++batches;
    }
    final_loss = epoch_loss / std::max(1, batches);
    FCM_LOGS(INFO) << "SegClassifier epoch " << epoch << " loss "
                   << final_loss;
  }
  return final_loss;
}

std::vector<uint8_t> SegClassifier::Predict(const std::vector<float>& image,
                                            int width, int height) const {
  std::vector<uint8_t> out(static_cast<size_t>(width) * height,
                           static_cast<uint8_t>(chart::SegClass::kBackground));
  // Only classify pixels with any ink in their receptive field center —
  // background dominates and blank pixels are trivially background.
  std::vector<std::pair<int, int>> active;
  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      if (image[static_cast<size_t>(y) * width + x] > 0.05f) {
        active.emplace_back(x, y);
      }
    }
  }
  const int batch = 256;
  for (size_t start = 0; start < active.size();
       start += static_cast<size_t>(batch)) {
    const size_t end =
        std::min(active.size(), start + static_cast<size_t>(batch));
    std::vector<float> feats;
    for (size_t i = start; i < end; ++i) {
      const auto f =
          Features(image, width, height, active[i].first, active[i].second);
      feats.insert(feats.end(), f.begin(), f.end());
    }
    const int n = static_cast<int>(end - start);
    nn::Tensor x = nn::Tensor::FromVector({n, FeatureDim()},
                                          std::move(feats));
    nn::Tensor logits = mlp_.Forward(x);
    const auto& lv = logits.data();
    for (int i = 0; i < n; ++i) {
      const size_t base = static_cast<size_t>(i) * chart::kNumSegClasses;
      int best = 0;
      for (int c = 1; c < chart::kNumSegClasses; ++c) {
        if (lv[base + c] > lv[base + best]) best = c;
      }
      const auto [px, py] = active[start + static_cast<size_t>(i)];
      out[static_cast<size_t>(py) * width + px] = static_cast<uint8_t>(best);
    }
  }
  return out;
}

double SegClassifier::Evaluate(
    const std::vector<chart::SegExample>& examples) const {
  size_t correct = 0, total = 0;
  for (const auto& ex : examples) {
    const auto pred = Predict(ex.image, ex.width, ex.height);
    for (size_t i = 0; i < pred.size(); ++i) {
      // Score only inked pixels; blank background is trivial.
      if (ex.image[i] <= 0.05f) continue;
      ++total;
      if (pred[i] == ex.label[i]) ++correct;
    }
  }
  return total == 0 ? 0.0
                    : static_cast<double>(correct) / static_cast<double>(total);
}

}  // namespace fcm::vision
