// Extractor driven by the learned pixel classifier (LCSeg path): predicted
// class maps feed the same geometric recovery as the classical extractor.

#ifndef FCM_VISION_LEARNED_EXTRACTOR_H_
#define FCM_VISION_LEARNED_EXTRACTOR_H_

#include <memory>

#include "vision/classical_extractor.h"
#include "vision/seg_classifier.h"

namespace fcm::vision {

/// Wraps a trained SegClassifier. Line pixels come from the predicted
/// kLine class; axes/ticks/labels from the other predicted classes. The
/// classifier must outlive the extractor.
class LearnedExtractor : public VisualElementExtractor {
 public:
  explicit LearnedExtractor(const SegClassifier* classifier,
                            ClassicalExtractorOptions options = {})
      : classifier_(classifier), pipeline_(options) {}

  common::Result<ExtractedChart> Extract(
      const chart::RenderedChart& chart) const override;

  const char* name() const override { return "learned"; }

 private:
  const SegClassifier* classifier_;
  ClassicalExtractor pipeline_;
};

}  // namespace fcm::vision

#endif  // FCM_VISION_LEARNED_EXTRACTOR_H_
