// Extractor that reads the renderer's per-element masks — the upper bound
// the paper's automatic LineChartSeg labeling provides.

#ifndef FCM_VISION_MASK_ORACLE_EXTRACTOR_H_
#define FCM_VISION_MASK_ORACLE_EXTRACTOR_H_

#include "vision/extractor.h"

namespace fcm::vision {

/// Uses the instrumented element map for pixel classes and the renderer's
/// tick layout for the y range; line values come from per-column mask
/// centroids mapped through the true row->value transform.
class MaskOracleExtractor : public VisualElementExtractor {
 public:
  common::Result<ExtractedChart> Extract(
      const chart::RenderedChart& chart) const override;

  const char* name() const override { return "mask_oracle"; }
};

}  // namespace fcm::vision

#endif  // FCM_VISION_MASK_ORACLE_EXTRACTOR_H_
