#include "vision/classical_extractor.h"

#include <cmath>

#include "chart/canvas.h"
#include "common/logging.h"

namespace fcm::vision {

common::Result<ExtractedChart> ClassicalExtractor::Extract(
    const chart::RenderedChart& chart) const {
  // Pixels only: both maps come from the raw ink buffer.
  const PixelMap full_map =
      Threshold(chart.canvas.ink(), chart.canvas.width(),
                chart.canvas.height(), options_.ink_threshold);
  return ExtractFromMaps(full_map, full_map);
}

common::Result<ExtractedChart> ClassicalExtractor::ExtractFromMaps(
    const PixelMap& full_map, const PixelMap& line_map) const {
  auto axes_result = DetectAxes(full_map);
  if (!axes_result.ok()) return axes_result.status();
  const AxisGeometry axes = axes_result.value();

  // Calibrate the row -> value mapping from readable tick labels.
  const std::vector<int> tick_rows = DetectTickRows(full_map, axes);
  std::vector<int> calib_rows;
  std::vector<double> calib_values;
  for (int row : tick_rows) {
    const auto value = ReadTickLabel(full_map, axes, row);
    if (value.has_value()) {
      calib_rows.push_back(row);
      calib_values.push_back(*value);
    }
  }
  auto mapping_result = FitRowValueMapping(calib_rows, calib_values);
  if (!mapping_result.ok()) {
    return common::Status::NotFound(
        "could not calibrate y axis: " + mapping_result.status().message());
  }
  const RowValueMapping mapping = mapping_result.value();

  ExtractedChart out;
  out.tick_values = calib_values;
  out.y_lo = mapping.ValueAtRow(axes.plot_bottom);
  out.y_hi = mapping.ValueAtRow(axes.plot_top);

  // Trace line instances inside the plot area.
  const auto runs = ColumnRuns(line_map, axes);
  std::vector<TracedLine> traced = TraceLines(runs);
  if (traced.empty()) {
    return common::Status::NotFound("no lines found inside plot area");
  }

  const int pw = axes.plot_right - axes.plot_left + 1;
  const int ph = axes.plot_bottom - axes.plot_top + 1;
  for (auto& t : traced) {
    InterpolateMissing(&t.center_rows);
    ExtractedLine line;
    line.width = pw;
    line.height = ph;
    line.values.resize(t.center_rows.size());
    for (size_t i = 0; i < t.center_rows.size(); ++i) {
      line.values[i] = mapping.ValueAtRow(t.center_rows[i]);
    }
    // Re-render the recovered polyline into a clean per-line strip (the
    // segment-level encoder input).
    chart::Canvas strip(pw, ph);
    for (size_t i = 0; i + 1 < t.center_rows.size(); ++i) {
      strip.DrawLineAA(static_cast<double>(i),
                       t.center_rows[i] - axes.plot_top,
                       static_cast<double>(i + 1),
                       t.center_rows[i + 1] - axes.plot_top,
                       chart::LineElementId(0));
    }
    line.strip = strip.ink();
    out.lines.push_back(std::move(line));
  }
  return out;
}

}  // namespace fcm::vision
