#include "vision/pixel_analysis.h"

#include <algorithm>
#include <cmath>


#include "chart/glyphs.h"
#include "common/string_util.h"
#include "relevance/hungarian.h"

namespace fcm::vision {

PixelMap Threshold(const std::vector<float>& ink, int width, int height,
                   float threshold) {
  PixelMap map;
  map.width = width;
  map.height = height;
  map.on.resize(ink.size());
  for (size_t i = 0; i < ink.size(); ++i) {
    map.on[i] = ink[i] >= threshold ? 1 : 0;
  }
  return map;
}

namespace {

// Longest consecutive run of on-pixels along a column; returns (length,
// start).
std::pair<int, int> LongestVerticalRun(const PixelMap& map, int x) {
  int best = 0, best_start = 0, cur = 0, cur_start = 0;
  for (int y = 0; y < map.height; ++y) {
    if (map.At(x, y)) {
      if (cur == 0) cur_start = y;
      ++cur;
      if (cur > best) {
        best = cur;
        best_start = cur_start;
      }
    } else {
      cur = 0;
    }
  }
  return {best, best_start};
}

std::pair<int, int> LongestHorizontalRun(const PixelMap& map, int y) {
  int best = 0, best_start = 0, cur = 0, cur_start = 0;
  for (int x = 0; x < map.width; ++x) {
    if (map.At(x, y)) {
      if (cur == 0) cur_start = x;
      ++cur;
      if (cur > best) {
        best = cur;
        best_start = cur_start;
      }
    } else {
      cur = 0;
    }
  }
  return {best, best_start};
}

}  // namespace

common::Result<AxisGeometry> DetectAxes(const PixelMap& map) {
  AxisGeometry g;
  int best_v = 0, v_start = 0;
  for (int x = 0; x < map.width; ++x) {
    const auto [len, start] = LongestVerticalRun(map, x);
    // ">=" prefers the right-most column on ties; the y axis is the
    // left-most long vertical, so require strictly better after the first.
    if (len > best_v) {
      best_v = len;
      g.y_axis_col = x;
      v_start = start;
    }
  }
  int best_h = 0, h_start = 0, h_len = 0;
  for (int y = 0; y < map.height; ++y) {
    const auto [len, start] = LongestHorizontalRun(map, y);
    if (len > best_h) {
      best_h = len;
      g.x_axis_row = y;
      h_start = start;
      h_len = len;
    }
  }
  if (best_v < map.height / 4 || best_h < map.width / 4) {
    return common::Status::NotFound("no axes detected in chart image");
  }
  g.plot_left = g.y_axis_col + 1;
  g.plot_right = h_start + h_len - 1;
  g.plot_top = v_start;
  g.plot_bottom = g.x_axis_row - 1;
  if (g.plot_left >= g.plot_right || g.plot_top >= g.plot_bottom) {
    return common::Status::NotFound("degenerate plot area");
  }
  return g;
}

std::vector<int> DetectTickRows(const PixelMap& map,
                                const AxisGeometry& axes) {
  std::vector<int> rows;
  const int x0 = axes.y_axis_col - 3;
  const int x1 = axes.y_axis_col - 1;
  if (x0 < 0) return rows;
  for (int y = 0; y < map.height; ++y) {
    bool all_on = true;
    for (int x = x0; x <= x1 && all_on; ++x) all_on = map.At(x, y);
    if (all_on) rows.push_back(y);
  }
  return rows;
}

namespace {

// Matches the 3x5 cell at (x, y) against the bitmap font; returns the
// character or '\0'.
char MatchGlyph(const PixelMap& map, int x, int y) {
  static const char kChars[] = "0123456789-.e+";
  uint8_t cell[chart::kGlyphHeight] = {0};
  for (int r = 0; r < chart::kGlyphHeight; ++r) {
    for (int c = 0; c < chart::kGlyphWidth; ++c) {
      const int px = x + c, py = y + r;
      const bool on = px >= 0 && px < map.width && py >= 0 &&
                      py < map.height && map.At(px, py);
      if (on) cell[r] |= static_cast<uint8_t>(1u << (chart::kGlyphWidth - 1 - c));
    }
  }
  for (const char* p = kChars; *p != '\0'; ++p) {
    const uint8_t* rows = chart::GlyphRows(*p);
    bool match = true;
    for (int r = 0; r < chart::kGlyphHeight && match; ++r) {
      match = rows[r] == cell[r];
    }
    if (match) return *p;
  }
  return '\0';
}

}  // namespace

std::optional<double> ReadTickLabel(const PixelMap& map,
                                    const AxisGeometry& axes, int row) {
  // Labels are rendered with their vertical center at the tick row and end
  // 5px left of the plot area. Find the label's horizontal extent.
  const int y_top = row - chart::kGlyphHeight / 2;
  const int x_limit = axes.y_axis_col - 4;  // Exclusive right bound.
  int x_min = x_limit, x_max = -1;
  for (int y = y_top; y < y_top + chart::kGlyphHeight; ++y) {
    if (y < 0 || y >= map.height) continue;
    for (int x = 0; x < x_limit; ++x) {
      if (map.At(x, y)) {
        x_min = std::min(x_min, x);
        x_max = std::max(x_max, x);
      }
    }
  }
  if (x_max < 0) return std::nullopt;
  std::string text;
  for (int x = x_min; x <= x_max; x += chart::kGlyphAdvance) {
    const char c = MatchGlyph(map, x, y_top);
    if (c == '\0') return std::nullopt;  // Unreadable glyph.
    text.push_back(c);
  }
  double value = 0.0;
  if (!common::ParseDouble(text, &value)) return std::nullopt;
  return value;
}

common::Result<RowValueMapping> FitRowValueMapping(
    const std::vector<int>& rows, const std::vector<double>& values) {
  if (rows.size() != values.size() || rows.size() < 2) {
    return common::Status::InvalidArgument(
        "need at least two (row, value) pairs to calibrate the y axis");
  }
  const size_t n = rows.size();
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (size_t i = 0; i < n; ++i) {
    const double x = static_cast<double>(rows[i]);
    sx += x;
    sy += values[i];
    sxx += x * x;
    sxy += x * values[i];
  }
  const double denom = static_cast<double>(n) * sxx - sx * sx;
  if (std::fabs(denom) < 1e-9) {
    return common::Status::InvalidArgument("tick rows are degenerate");
  }
  RowValueMapping m;
  m.a = (static_cast<double>(n) * sxy - sx * sy) / denom;
  m.b = (sy - m.a * sx) / static_cast<double>(n);
  return m;
}

std::vector<std::vector<PixelRun>> ColumnRuns(const PixelMap& map,
                                              const AxisGeometry& axes) {
  std::vector<std::vector<PixelRun>> out(
      static_cast<size_t>(axes.plot_right - axes.plot_left + 1));
  for (int x = axes.plot_left; x <= axes.plot_right; ++x) {
    auto& runs = out[static_cast<size_t>(x - axes.plot_left)];
    int run_start = -1;
    for (int y = axes.plot_top; y <= axes.plot_bottom + 1; ++y) {
      const bool on = y <= axes.plot_bottom && map.At(x, y);
      if (on && run_start < 0) run_start = y;
      if (!on && run_start >= 0) {
        runs.push_back({run_start, y - 1});
        run_start = -1;
      }
    }
  }
  return out;
}

std::vector<TracedLine> TraceLines(
    const std::vector<std::vector<PixelRun>>& runs) {
  if (runs.empty()) return {};
  // Estimate the line count from the distribution of per-column run
  // counts. Crossings and near-overlaps merge runs, so the mode badly
  // undercounts dense multi-line charts; a high percentile is robust: all
  // M lines are separated in at least some columns.
  std::vector<size_t> counts;
  for (const auto& col : runs) {
    if (!col.empty()) counts.push_back(col.size());
  }
  if (counts.empty()) return {};
  std::sort(counts.begin(), counts.end());
  const size_t m = counts[counts.size() * 95 / 100];

  std::vector<TracedLine> tracks(m);
  for (auto& t : tracks) {
    t.center_rows.assign(runs.size(), -1.0);
  }
  std::vector<double> last_y(m, -1.0);

  for (size_t x = 0; x < runs.size(); ++x) {
    const auto& col = runs[x];
    if (col.empty()) continue;
    // First column with runs: seed tracks top-to-bottom.
    bool seeded = false;
    for (double ly : last_y) seeded = seeded || ly >= 0.0;
    if (!seeded) {
      for (size_t t = 0; t < m && t < col.size(); ++t) {
        last_y[t] = col[t].Center();
        tracks[t].center_rows[x] = last_y[t];
      }
      continue;
    }
    // Assign runs to tracks by vertical proximity (optimal assignment).
    std::vector<std::vector<double>> weights(
        m, std::vector<double>(col.size()));
    for (size_t t = 0; t < m; ++t) {
      for (size_t r = 0; r < col.size(); ++r) {
        const double ref = last_y[t] >= 0.0 ? last_y[t]
                                            : col[r].Center();
        const double dist = std::fabs(ref - col[r].Center());
        weights[t][r] = 1.0 / (1.0 + dist);
      }
    }
    const rel::MatchingResult match = rel::MaxWeightBipartiteMatching(weights);
    for (size_t t = 0; t < m; ++t) {
      const int r = match.assignment[t];
      if (r < 0) continue;
      const double y = col[static_cast<size_t>(r)].Center();
      // A run may cover several crossing lines; assign it to every track
      // close enough, but only advance tracks that actually matched.
      tracks[t].center_rows[x] = y;
      last_y[t] = y;
    }
  }
  return tracks;
}

void InterpolateMissing(std::vector<double>* center_rows) {
  auto& v = *center_rows;
  const size_t n = v.size();
  // Leading gap: copy first known value backwards.
  size_t first = 0;
  while (first < n && v[first] < 0.0) ++first;
  if (first == n) return;  // All missing; nothing to do.
  for (size_t i = 0; i < first; ++i) v[i] = v[first];
  size_t last_known = first;
  for (size_t i = first + 1; i < n; ++i) {
    if (v[i] < 0.0) continue;
    if (i > last_known + 1) {
      const double y0 = v[last_known], y1 = v[i];
      const double span = static_cast<double>(i - last_known);
      for (size_t j = last_known + 1; j < i; ++j) {
        v[j] = y0 + (y1 - y0) * static_cast<double>(j - last_known) / span;
      }
    }
    last_known = i;
  }
  for (size_t i = last_known + 1; i < n; ++i) v[i] = v[last_known];
}

}  // namespace fcm::vision
