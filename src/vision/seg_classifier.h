// LCSeg substitute: a per-pixel classifier trained from scratch on
// LineChartSeg (paper Sec. IV-A). The paper uses Mask R-CNN; at our CPU
// scale the same contract — pixel -> visual-element class — is provided by
// a patch MLP over a local receptive field plus normalized position.

#ifndef FCM_VISION_SEG_CLASSIFIER_H_
#define FCM_VISION_SEG_CLASSIFIER_H_

#include <vector>

#include "chart/linechartseg.h"
#include "common/rng.h"
#include "nn/layers.h"
#include "vision/pixel_analysis.h"

namespace fcm::vision {

/// Training configuration for the segmentation classifier.
struct SegClassifierConfig {
  /// Receptive field: a patch_size x patch_size window around the pixel.
  int patch_size = 5;
  int hidden_dim = 48;
  int epochs = 4;
  /// Pixels sampled per class per example (balances the heavy background
  /// class).
  int samples_per_class = 24;
  float learning_rate = 3e-3f;
  int batch_size = 64;
  uint64_t seed = 17;
};

/// The classifier network + train/predict API.
class SegClassifier : public nn::Module {
 public:
  explicit SegClassifier(const SegClassifierConfig& config = {});

  /// Trains on LineChartSeg examples; returns the final epoch's mean loss.
  double Train(const std::vector<chart::SegExample>& examples);

  /// Classifies every pixel of an image; returns row-major SegClass ids.
  std::vector<uint8_t> Predict(const std::vector<float>& image, int width,
                               int height) const;

  /// Pixel accuracy on a held-out set.
  double Evaluate(const std::vector<chart::SegExample>& examples) const;

  const SegClassifierConfig& config() const { return config_; }

 private:
  /// Patch features for pixel (x, y): window ink + normalized position.
  std::vector<float> Features(const std::vector<float>& image, int width,
                              int height, int x, int y) const;
  int FeatureDim() const {
    return config_.patch_size * config_.patch_size + 2;
  }

  SegClassifierConfig config_;
  common::Rng rng_;
  nn::Mlp mlp_;
};

}  // namespace fcm::vision

#endif  // FCM_VISION_SEG_CLASSIFIER_H_
