// Visual element extractors for the generalized chart types (paper
// Sec. VI-B): bars in a bar chart, marker series in a scatter chart,
// sectors in a pie chart. All work from raw pixels only, keying on the
// per-series ink intensity (the greyscale stand-in for series colors) and
// the shared axis/tick geometry recovery in pixel_analysis.
//
// Bar and scatter extraction produce the same ExtractedChart contract as
// the line extractors — per-series value sequences plus re-rendered
// strips — so the downstream FCM encoders and relevance machinery apply
// unchanged, exactly as the paper's generalization argument requires.
// Pie extraction produces a distribution (sector shares), matched with
// KL-based relevance (relevance/distribution.h).

#ifndef FCM_VISION_CHART_TYPE_EXTRACTORS_H_
#define FCM_VISION_CHART_TYPE_EXTRACTORS_H_

#include <vector>

#include "chart/renderer.h"
#include "common/result.h"
#include "vision/extracted_chart.h"

namespace fcm::vision {

/// Tuning knobs shared by the chart-type extractors.
struct ChartTypeExtractorOptions {
  /// Ink threshold separating element pixels from background/haze.
  float ink_threshold = 0.38f;
  /// Minimum pixels for an intensity slot to count as a series.
  int min_series_pixels = 4;
};

/// Recovers per-series bar-height profiles from a rendered bar chart.
/// Each series' `values` holds one value per plot-area pixel column (the
/// step profile of its bars; gaps interpolated), and `strip` is the
/// re-rendered profile, so the output is drop-in for the FCM encoders.
/// Fails with NotFound when axes/ticks cannot be calibrated or no bars
/// are found.
common::Result<ExtractedChart> ExtractBarChart(
    const chart::RenderedChart& chart,
    const ChartTypeExtractorOptions& options = {});

/// Recovers per-series point sequences from a rendered scatter chart
/// (per-column marker centroids, interpolated across empty columns).
common::Result<ExtractedChart> ExtractScatterChart(
    const chart::RenderedChart& chart,
    const ChartTypeExtractorOptions& options = {});

/// Recovers the sector share distribution from a rendered pie chart:
/// the fraction of disk pixels per intensity slot, in slot order. The
/// result sums to 1. Fails with NotFound when no disk is found.
common::Result<std::vector<double>> ExtractPieDistribution(
    const chart::RenderedChart& chart,
    const ChartTypeExtractorOptions& options = {});

namespace internal {

/// Classifies an ink intensity into the nearest series slot
/// (chart::SeriesInkIntensity levels); -1 when below threshold.
int IntensitySlot(float ink, float threshold);

}  // namespace internal

}  // namespace fcm::vision

#endif  // FCM_VISION_CHART_TYPE_EXTRACTORS_H_
