#include "vision/learned_extractor.h"

namespace fcm::vision {

common::Result<ExtractedChart> LearnedExtractor::Extract(
    const chart::RenderedChart& chart) const {
  const int w = chart.canvas.width(), h = chart.canvas.height();
  const std::vector<uint8_t> classes =
      classifier_->Predict(chart.canvas.ink(), w, h);

  PixelMap full_map;
  full_map.width = w;
  full_map.height = h;
  full_map.on.assign(classes.size(), 0);
  PixelMap line_map = full_map;
  for (size_t i = 0; i < classes.size(); ++i) {
    const auto cls = static_cast<chart::SegClass>(classes[i]);
    if (cls != chart::SegClass::kBackground) full_map.on[i] = 1;
    if (cls == chart::SegClass::kLine) line_map.on[i] = 1;
  }
  return pipeline_.ExtractFromMaps(full_map, line_map);
}

}  // namespace fcm::vision
