#include "vision/mask_oracle_extractor.h"

#include "vision/pixel_analysis.h"

namespace fcm::vision {

common::Result<ExtractedChart> MaskOracleExtractor::Extract(
    const chart::RenderedChart& chart) const {
  ExtractedChart out;
  out.y_lo = chart.y_ticks_layout.axis_lo;
  out.y_hi = chart.y_ticks_layout.axis_hi;
  for (const auto& tick : chart.y_ticks) out.tick_values.push_back(tick.value);

  const auto& plot = chart.plot;
  const int pw = plot.Width(), ph = plot.Height();
  const int cw = chart.canvas.width();
  const auto& elements = chart.canvas.elements();
  const auto& ink = chart.canvas.ink();

  for (int li = 0; li < chart.num_lines; ++li) {
    const int16_t id = chart::LineElementId(li);
    ExtractedLine line;
    line.width = pw;
    line.height = ph;
    line.strip.assign(static_cast<size_t>(pw) * ph, 0.0f);
    std::vector<double> centers(static_cast<size_t>(pw), -1.0);
    for (int x = plot.left; x <= plot.right; ++x) {
      double sum_y = 0.0;
      int count = 0;
      for (int y = plot.top; y <= plot.bottom; ++y) {
        const size_t idx = static_cast<size_t>(y) * cw + x;
        if (elements[idx] == id) {
          sum_y += y;
          ++count;
          line.strip[static_cast<size_t>(y - plot.top) * pw +
                     (x - plot.left)] = ink[idx];
        }
      }
      if (count > 0) {
        centers[static_cast<size_t>(x - plot.left)] = sum_y / count;
      }
    }
    InterpolateMissing(&centers);
    line.values.resize(centers.size());
    for (size_t i = 0; i < centers.size(); ++i) {
      line.values[i] = chart.RowToValue(centers[i]);
    }
    out.lines.push_back(std::move(line));
  }
  if (out.lines.empty()) {
    return common::Status::NotFound("no line elements present in chart");
  }
  return out;
}

}  // namespace fcm::vision
