// Bilinear image resize, used to normalize extracted line strips to the
// encoder's fixed input size.

#ifndef FCM_VISION_IMAGE_RESIZE_H_
#define FCM_VISION_IMAGE_RESIZE_H_

#include <vector>

namespace fcm::vision {

/// Resizes a row-major greyscale image from (w, h) to (out_w, out_h) with
/// bilinear sampling. Requires all dimensions >= 1.
std::vector<float> ResizeBilinear(const std::vector<float>& src, int w,
                                  int h, int out_w, int out_h);

}  // namespace fcm::vision

#endif  // FCM_VISION_IMAGE_RESIZE_H_
