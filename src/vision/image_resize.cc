#include "vision/image_resize.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace fcm::vision {

std::vector<float> ResizeBilinear(const std::vector<float>& src, int w,
                                  int h, int out_w, int out_h) {
  FCM_CHECK_GE(w, 1);
  FCM_CHECK_GE(h, 1);
  FCM_CHECK_GE(out_w, 1);
  FCM_CHECK_GE(out_h, 1);
  FCM_CHECK_EQ(static_cast<size_t>(w) * h, src.size());
  std::vector<float> dst(static_cast<size_t>(out_w) * out_h);
  const double sx = out_w > 1 ? static_cast<double>(w - 1) / (out_w - 1) : 0.0;
  const double sy = out_h > 1 ? static_cast<double>(h - 1) / (out_h - 1) : 0.0;
  for (int oy = 0; oy < out_h; ++oy) {
    const double fy = oy * sy;
    const int y0 = static_cast<int>(fy);
    const int y1 = std::min(y0 + 1, h - 1);
    const double ty = fy - y0;
    for (int ox = 0; ox < out_w; ++ox) {
      const double fx = ox * sx;
      const int x0 = static_cast<int>(fx);
      const int x1 = std::min(x0 + 1, w - 1);
      const double tx = fx - x0;
      const double v00 = src[static_cast<size_t>(y0) * w + x0];
      const double v01 = src[static_cast<size_t>(y0) * w + x1];
      const double v10 = src[static_cast<size_t>(y1) * w + x0];
      const double v11 = src[static_cast<size_t>(y1) * w + x1];
      const double top = v00 + (v01 - v00) * tx;
      const double bot = v10 + (v11 - v10) * tx;
      dst[static_cast<size_t>(oy) * out_w + ox] =
          static_cast<float>(top + (bot - top) * ty);
    }
  }
  return dst;
}

}  // namespace fcm::vision
