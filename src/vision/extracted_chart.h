// The contract between the visual element extractor and the rest of FCM
// (paper Sec. IV-A): per-line evidence plus the y-axis tick range.

#ifndef FCM_VISION_EXTRACTED_CHART_H_
#define FCM_VISION_EXTRACTED_CHART_H_

#include <vector>

namespace fcm::vision {

/// One extracted line: a greyscale strip image containing only that line
/// (the input to the segment-level line chart encoder) and the recovered
/// per-pixel-column data values (used by baselines and diagnostics).
struct ExtractedLine {
  /// Strip dimensions (plot-area size).
  int width = 0;
  int height = 0;
  /// Row-major greyscale image of just this line (0 = blank, 1 = ink).
  std::vector<float> strip;
  /// Recovered y data value for each pixel column (length == width).
  std::vector<double> values;
};

/// Extractor output: lines plus the y-axis value range read off the ticks.
struct ExtractedChart {
  std::vector<ExtractedLine> lines;
  /// Value range implied by the y-axis ticks ([axis_lo, axis_hi]).
  double y_lo = 0.0;
  double y_hi = 1.0;
  /// Tick values actually read (ascending), for diagnostics.
  std::vector<double> tick_values;

  int num_lines() const { return static_cast<int>(lines.size()); }
};

}  // namespace fcm::vision

#endif  // FCM_VISION_EXTRACTED_CHART_H_
