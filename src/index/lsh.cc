#include "index/lsh.h"

#include <algorithm>
#include <thread>
#include <utility>

#include "common/check.h"
#include "common/simd.h"

namespace fcm::index {

namespace {

/// Shared tail of Query/QueryBatch: collapse raw probe hits to the sorted
/// unique payload list the public API promises.
std::vector<int64_t> SortedUnique(std::vector<int64_t> hits) {
  std::sort(hits.begin(), hits.end());
  hits.erase(std::unique(hits.begin(), hits.end()), hits.end());
  return hits;
}

}  // namespace

RandomHyperplaneLsh::RandomHyperplaneLsh(int dim, const LshConfig& config)
    : dim_(dim), config_(config) {
  FCM_CHECK_GT(dim, 0);
  FCM_CHECK_GT(config.num_bits, 0);
  FCM_CHECK_LE(config.num_bits, 64);
  FCM_CHECK_GT(config.num_tables, 0);
  common::Rng rng(config.seed);
  hyperplanes_.resize(
      static_cast<size_t>(config.num_tables) * config.num_bits);
  for (auto& h : hyperplanes_) {
    h.resize(static_cast<size_t>(dim));
    for (auto& v : h) v = static_cast<float>(rng.Normal());
  }
  int requested = config.num_shards;
  if (requested <= 0) {
    requested =
        std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
  }
  shard_bits_ = 0;
  while ((1 << shard_bits_) < requested && shard_bits_ < config.num_bits &&
         shard_bits_ < 16) {
    ++shard_bits_;
  }
  num_shards_ = 1 << shard_bits_;
  config_.num_shards = num_shards_;
  shards_.resize(static_cast<size_t>(config.num_tables) * num_shards_);
}

size_t RandomHyperplaneLsh::ShardOf(uint64_t code) const {
  return shard_bits_ == 0
             ? 0
             : static_cast<size_t>(code >> (config_.num_bits - shard_bits_));
}

uint64_t RandomHyperplaneLsh::Code(const std::vector<float>& embedding,
                                   int table) const {
  FCM_CHECK_EQ(static_cast<int>(embedding.size()), dim_);
  const auto& kernels = simd::Active();
  uint64_t code = 0;
  for (int b = 0; b < config_.num_bits; ++b) {
    const auto& h =
        hyperplanes_[static_cast<size_t>(table) * config_.num_bits + b];
    const float dot = kernels.dot_f32(h.data(), embedding.data(),
                                      static_cast<size_t>(dim_));
    // The sign of the dot product rounds the cosine similarity to a bit.
    if (dot >= 0.0f) code |= (1ULL << b);
  }
  return code;
}

void RandomHyperplaneLsh::InsertCoded(int t, uint64_t code, int64_t payload) {
  auto& bucket =
      shards_[static_cast<size_t>(t) * num_shards_ + ShardOf(code)][code];
  if (!bucket.empty() && bucket.back() == payload) return;
  bucket.push_back(payload);
}

void RandomHyperplaneLsh::Insert(const std::vector<float>& embedding,
                                 int64_t payload) {
  for (int t = 0; t < config_.num_tables; ++t) {
    InsertCoded(t, Code(embedding, t), payload);
  }
  ++num_items_;
}

void RandomHyperplaneLsh::InsertBatch(const std::vector<LshInsertItem>& items,
                                      common::ThreadPool* pool) {
  if (items.empty()) return;
  if (pool == nullptr || num_shards_ == 1) {
    // A single shard has no per-shard locality to exploit: keep the legacy
    // serial build, which `num_shards == 1` promises to reproduce exactly.
    for (const auto& item : items) Insert(*item.embedding, item.payload);
    return;
  }
  const size_t tables = static_cast<size_t>(config_.num_tables);
  // Stage 1: per-(item, table) codes — the dot products dominate the build
  // and are embarrassingly parallel.
  std::vector<uint64_t> codes(items.size() * tables);
  pool->ParallelFor(items.size(), [&](size_t i) {
    for (size_t t = 0; t < tables; ++t) {
      codes[i * tables + t] = Code(*items[i].embedding, static_cast<int>(t));
    }
  });
  // Stage 2: (table, shard) tasks insert the pairs routed to them. Within
  // one shard pairs arrive in increasing flat index, i.e. item order, so
  // each bucket fills exactly as the serial loop would.
  pool->ParallelForSharded(
      codes.size(), tables * static_cast<size_t>(num_shards_),
      [&](size_t p) {
        return (p % tables) * num_shards_ + ShardOf(codes[p]);
      },
      [&](size_t /*shard*/, size_t p) {
        InsertCoded(static_cast<int>(p % tables), codes[p],
                    items[p / tables].payload);
      });
  num_items_ += items.size();
}

void RandomHyperplaneLsh::ProbeTable(int table, uint64_t code,
                                     std::vector<int64_t>* out) const {
  // Probing in ascending bit order is already shard-grouped: flipping a
  // bit below the shard prefix keeps the code in the query's home shard,
  // so the home shard takes the bulk of the lookups consecutively and
  // each top-bit flip then touches exactly one foreign shard. The final
  // sorted-unique merge makes the visit order invisible to callers.
  const auto probe_one = [&](uint64_t probe) {
    const auto& buckets =
        shards_[static_cast<size_t>(table) * num_shards_ + ShardOf(probe)];
    auto it = buckets.find(probe);
    if (it == buckets.end()) return;
    out->insert(out->end(), it->second.begin(), it->second.end());
  };
  probe_one(code);
  if (config_.probe_hamming1) {
    for (int b = 0; b < config_.num_bits; ++b) probe_one(code ^ (1ULL << b));
  }
}

std::vector<int64_t> RandomHyperplaneLsh::Query(
    const std::vector<float>& embedding) const {
  std::vector<int64_t> hits;
  for (int t = 0; t < config_.num_tables; ++t) {
    ProbeTable(t, Code(embedding, t), &hits);
  }
  return SortedUnique(std::move(hits));
}

std::vector<std::vector<int64_t>> RandomHyperplaneLsh::QueryBatch(
    const std::vector<std::vector<float>>& embeddings,
    common::ThreadPool* pool) const {
  const size_t n = embeddings.size();
  std::vector<std::vector<int64_t>> out(n);
  if (n == 0) return out;
  if (pool == nullptr) {
    for (size_t i = 0; i < n; ++i) out[i] = Query(embeddings[i]);
    return out;
  }
  const size_t tables = static_cast<size_t>(config_.num_tables);
  // Stage 1: every (embedding, table) pair codes and probes independently,
  // so small batches still spread across the pool.
  std::vector<std::vector<int64_t>> table_hits(n * tables);
  pool->ParallelFor(n * tables, [&](size_t p) {
    const size_t i = p / tables;
    const int t = static_cast<int>(p % tables);
    ProbeTable(t, Code(embeddings[i], t), &table_hits[p]);
  });
  // Stage 2: per-embedding merge, identical to Query's tail.
  pool->ParallelFor(n, [&](size_t i) {
    std::vector<int64_t> hits;
    for (size_t t = 0; t < tables; ++t) {
      const auto& h = table_hits[i * tables + t];
      hits.insert(hits.end(), h.begin(), h.end());
    }
    out[i] = SortedUnique(std::move(hits));
  });
  return out;
}

size_t RandomHyperplaneLsh::MemoryBytes() const {
  size_t bytes = hyperplanes_.size() * static_cast<size_t>(dim_) *
                 sizeof(float);
  for (const auto& shard : shards_) {
    for (const auto& [code, payloads] : shard) {
      bytes += sizeof(code) + payloads.size() * sizeof(int64_t) + 32;
    }
  }
  return bytes;
}

}  // namespace fcm::index
