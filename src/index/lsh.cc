#include "index/lsh.h"

#include <algorithm>

#include "common/check.h"

namespace fcm::index {

RandomHyperplaneLsh::RandomHyperplaneLsh(int dim, const LshConfig& config)
    : dim_(dim), config_(config) {
  FCM_CHECK_GT(dim, 0);
  FCM_CHECK_GT(config.num_bits, 0);
  FCM_CHECK_LE(config.num_bits, 64);
  FCM_CHECK_GT(config.num_tables, 0);
  common::Rng rng(config.seed);
  hyperplanes_.resize(
      static_cast<size_t>(config.num_tables) * config.num_bits);
  for (auto& h : hyperplanes_) {
    h.resize(static_cast<size_t>(dim));
    for (auto& v : h) v = static_cast<float>(rng.Normal());
  }
  tables_.resize(static_cast<size_t>(config.num_tables));
}

uint64_t RandomHyperplaneLsh::Code(const std::vector<float>& embedding,
                                   int table) const {
  FCM_CHECK_EQ(static_cast<int>(embedding.size()), dim_);
  uint64_t code = 0;
  for (int b = 0; b < config_.num_bits; ++b) {
    const auto& h =
        hyperplanes_[static_cast<size_t>(table) * config_.num_bits + b];
    float dot = 0.0f;
    for (int i = 0; i < dim_; ++i) {
      dot += h[static_cast<size_t>(i)] * embedding[static_cast<size_t>(i)];
    }
    // The sign of the dot product rounds the cosine similarity to a bit.
    if (dot >= 0.0f) code |= (1ULL << b);
  }
  return code;
}

void RandomHyperplaneLsh::Insert(const std::vector<float>& embedding,
                                 int64_t payload) {
  for (int t = 0; t < config_.num_tables; ++t) {
    tables_[static_cast<size_t>(t)][Code(embedding, t)].push_back(payload);
  }
  ++num_items_;
}

std::vector<int64_t> RandomHyperplaneLsh::Query(
    const std::vector<float>& embedding) const {
  std::unordered_set<int64_t> seen;
  for (int t = 0; t < config_.num_tables; ++t) {
    const uint64_t code = Code(embedding, t);
    const auto& buckets = tables_[static_cast<size_t>(t)];
    auto probe = [&](uint64_t c) {
      auto it = buckets.find(c);
      if (it == buckets.end()) return;
      for (int64_t p : it->second) seen.insert(p);
    };
    probe(code);
    if (config_.probe_hamming1) {
      for (int b = 0; b < config_.num_bits; ++b) probe(code ^ (1ULL << b));
    }
  }
  std::vector<int64_t> out(seen.begin(), seen.end());
  std::sort(out.begin(), out.end());
  return out;
}

size_t RandomHyperplaneLsh::MemoryBytes() const {
  size_t bytes = hyperplanes_.size() * static_cast<size_t>(dim_) *
                 sizeof(float);
  for (const auto& t : tables_) {
    for (const auto& [code, payloads] : t) {
      bytes += sizeof(code) + payloads.size() * sizeof(int64_t) + 32;
    }
  }
  return bytes;
}

}  // namespace fcm::index
