#include "index/lsh.h"

#include <algorithm>
#include <string>
#include <thread>
#include <utility>

#include "common/check.h"
#include "common/simd.h"

namespace fcm::index {

namespace {

/// Shared tail of Query/QueryBatch: collapse raw probe hits to the sorted
/// unique payload list the public API promises.
std::vector<int64_t> SortedUnique(std::vector<int64_t> hits) {
  std::sort(hits.begin(), hits.end());
  hits.erase(std::unique(hits.begin(), hits.end()), hits.end());
  return hits;
}

}  // namespace

RandomHyperplaneLsh::RandomHyperplaneLsh(int dim, const LshConfig& config)
    : dim_(dim), config_(config) {
  FCM_CHECK_GT(dim, 0);
  FCM_CHECK_GT(config.num_bits, 0);
  FCM_CHECK_LE(config.num_bits, 64);
  FCM_CHECK_GT(config.num_tables, 0);
  common::Rng rng(config.seed);
  hyperplane_data_.resize(static_cast<size_t>(config.num_tables) *
                          config.num_bits * static_cast<size_t>(dim));
  for (auto& v : hyperplane_data_) v = static_cast<float>(rng.Normal());
  hyperplanes_view_ = hyperplane_data_;
  int requested = config.num_shards;
  if (requested <= 0) {
    requested =
        std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
  }
  shard_bits_ = 0;
  while ((1 << shard_bits_) < requested && shard_bits_ < config.num_bits &&
         shard_bits_ < 16) {
    ++shard_bits_;
  }
  num_shards_ = 1 << shard_bits_;
  config_.num_shards = num_shards_;
  shards_.resize(static_cast<size_t>(config.num_tables) * num_shards_);
}

common::Result<RandomHyperplaneLsh> RandomHyperplaneLsh::FromFrozen(
    int dim, const LshConfig& config, size_t num_items,
    const Frozen& frozen) {
  auto bad = [](const std::string& what) {
    return common::Status::InvalidArgument("lsh frozen data: " + what);
  };
  if (dim <= 0 || config.num_bits <= 0 || config.num_bits > 64 ||
      config.num_tables <= 0 || config.num_shards <= 0 ||
      (config.num_shards & (config.num_shards - 1)) != 0) {
    return bad("invalid configuration");
  }
  int shard_bits = 0;
  while ((1 << shard_bits) < config.num_shards) ++shard_bits;
  if (shard_bits > config.num_bits || shard_bits > 16) {
    return bad("shard count out of range");
  }
  const size_t groups =
      static_cast<size_t>(config.num_tables) * config.num_shards;
  if (frozen.hyperplanes.size() != static_cast<size_t>(config.num_tables) *
                                       config.num_bits *
                                       static_cast<size_t>(dim)) {
    return bad("hyperplane block has the wrong size");
  }
  if (frozen.group_begin.size() != groups + 1) {
    return bad("group_begin length does not match table x shard count");
  }
  if (frozen.group_begin[0] != 0 ||
      frozen.group_begin[groups] != frozen.codes.size()) {
    return bad("group_begin does not span the code array");
  }
  for (size_t g = 0; g < groups; ++g) {
    if (frozen.group_begin[g] > frozen.group_begin[g + 1]) {
      return bad("group_begin is not monotone");
    }
    for (uint64_t i = frozen.group_begin[g] + 1;
         i < frozen.group_begin[g + 1]; ++i) {
      if (frozen.codes[i - 1] >= frozen.codes[i]) {
        return bad("codes are not strictly increasing within a group");
      }
    }
  }
  if (frozen.payload_begin.size() != frozen.codes.size() + 1) {
    return bad("payload_begin length does not match the code array");
  }
  if (!frozen.payload_begin.empty() &&
      (frozen.payload_begin[0] != 0 ||
       frozen.payload_begin.back() != frozen.payloads.size())) {
    return bad("payload_begin does not span the payload array");
  }
  for (size_t i = 0; i + 1 < frozen.payload_begin.size(); ++i) {
    // Every bucket holds at least one payload (empty buckets are never
    // created by Insert and would be dropped by Freeze).
    if (frozen.payload_begin[i] >= frozen.payload_begin[i + 1]) {
      return bad("payload_begin is not strictly monotone");
    }
  }

  RandomHyperplaneLsh lsh;
  lsh.dim_ = dim;
  lsh.config_ = config;
  lsh.num_shards_ = config.num_shards;
  lsh.shard_bits_ = shard_bits;
  lsh.hyperplanes_view_ = frozen.hyperplanes;
  lsh.frozen_ = true;
  lsh.view_ = frozen;
  lsh.num_items_ = num_items;
  return lsh;
}

void RandomHyperplaneLsh::Freeze() {
  if (frozen_) return;
  const size_t groups = shards_.size();
  group_begin_.assign(groups + 1, 0);
  codes_.clear();
  payload_begin_.clear();
  payloads_.clear();
  for (size_t g = 0; g < groups; ++g) {
    group_begin_[g] = codes_.size();
    // Sorted codes within the group make frozen probes binary searches;
    // per-bucket payload order (insertion order) is preserved, so the
    // frozen index answers bit-identically.
    std::vector<uint64_t> group_codes;
    group_codes.reserve(shards_[g].size());
    for (const auto& [code, payloads] : shards_[g]) {
      group_codes.push_back(code);
    }
    std::sort(group_codes.begin(), group_codes.end());
    for (const uint64_t code : group_codes) {
      codes_.push_back(code);
      payload_begin_.push_back(payloads_.size());
      const auto& bucket = shards_[g].at(code);
      payloads_.insert(payloads_.end(), bucket.begin(), bucket.end());
    }
  }
  group_begin_[groups] = codes_.size();
  payload_begin_.push_back(payloads_.size());
  shards_.clear();
  shards_.shrink_to_fit();
  frozen_ = true;
  view_ = Frozen{hyperplanes_view_, group_begin_, codes_, payload_begin_,
                 payloads_};
}

const RandomHyperplaneLsh::Frozen& RandomHyperplaneLsh::frozen_view() const {
  FCM_CHECK(frozen_);
  return view_;
}

size_t RandomHyperplaneLsh::ShardOf(uint64_t code) const {
  return shard_bits_ == 0
             ? 0
             : static_cast<size_t>(code >> (config_.num_bits - shard_bits_));
}

uint64_t RandomHyperplaneLsh::CodeRaw(const float* embedding,
                                      int table) const {
  const auto& kernels = simd::Active();
  uint64_t code = 0;
  for (int b = 0; b < config_.num_bits; ++b) {
    const float dot = kernels.dot_f32(Hyperplane(table, b), embedding,
                                      static_cast<size_t>(dim_));
    // The sign of the dot product rounds the cosine similarity to a bit.
    if (dot >= 0.0f) code |= (1ULL << b);
  }
  return code;
}

uint64_t RandomHyperplaneLsh::Code(const std::vector<float>& embedding,
                                   int table) const {
  FCM_CHECK_EQ(static_cast<int>(embedding.size()), dim_);
  return CodeRaw(embedding.data(), table);
}

void RandomHyperplaneLsh::InsertCoded(int t, uint64_t code, int64_t payload) {
  auto& bucket =
      shards_[static_cast<size_t>(t) * num_shards_ + ShardOf(code)][code];
  if (!bucket.empty() && bucket.back() == payload) return;
  bucket.push_back(payload);
}

void RandomHyperplaneLsh::Insert(const std::vector<float>& embedding,
                                 int64_t payload) {
  FCM_CHECK(!frozen_);
  for (int t = 0; t < config_.num_tables; ++t) {
    InsertCoded(t, Code(embedding, t), payload);
  }
  ++num_items_;
}

void RandomHyperplaneLsh::InsertBatch(const std::vector<LshInsertItem>& items,
                                      common::ThreadPool* pool) {
  FCM_CHECK(!frozen_);
  if (items.empty()) return;
  if (pool == nullptr || num_shards_ == 1) {
    // A single shard has no per-shard locality to exploit: keep the legacy
    // serial build, which `num_shards == 1` promises to reproduce exactly.
    for (const auto& item : items) {
      for (int t = 0; t < config_.num_tables; ++t) {
        InsertCoded(t, CodeRaw(item.embedding, t), item.payload);
      }
      ++num_items_;
    }
    return;
  }
  const size_t tables = static_cast<size_t>(config_.num_tables);
  // Stage 1: per-(item, table) codes — the dot products dominate the build
  // and are embarrassingly parallel.
  std::vector<uint64_t> codes(items.size() * tables);
  pool->ParallelFor(items.size(), [&](size_t i) {
    for (size_t t = 0; t < tables; ++t) {
      codes[i * tables + t] = CodeRaw(items[i].embedding, static_cast<int>(t));
    }
  });
  // Stage 2: (table, shard) tasks insert the pairs routed to them. Within
  // one shard pairs arrive in increasing flat index, i.e. item order, so
  // each bucket fills exactly as the serial loop would.
  pool->ParallelForSharded(
      codes.size(), tables * static_cast<size_t>(num_shards_),
      [&](size_t p) {
        return (p % tables) * num_shards_ + ShardOf(codes[p]);
      },
      [&](size_t /*shard*/, size_t p) {
        InsertCoded(static_cast<int>(p % tables), codes[p],
                    items[p / tables].payload);
      });
  num_items_ += items.size();
}

void RandomHyperplaneLsh::ProbeTable(int table, uint64_t code,
                                     std::vector<int64_t>* out) const {
  // Probing in ascending bit order is already shard-grouped: flipping a
  // bit below the shard prefix keeps the code in the query's home shard,
  // so the home shard takes the bulk of the lookups consecutively and
  // each top-bit flip then touches exactly one foreign shard. The final
  // sorted-unique merge makes the visit order invisible to callers.
  const auto probe_frozen = [&](uint64_t probe) {
    const size_t g =
        static_cast<size_t>(table) * num_shards_ + ShardOf(probe);
    const uint64_t* begin = view_.codes.data() + view_.group_begin[g];
    const uint64_t* end = view_.codes.data() + view_.group_begin[g + 1];
    const uint64_t* it = std::lower_bound(begin, end, probe);
    if (it == end || *it != probe) return;
    const size_t bucket = static_cast<size_t>(it - view_.codes.data());
    const uint64_t lo = view_.payload_begin[bucket];
    const uint64_t hi = view_.payload_begin[bucket + 1];
    out->insert(out->end(), view_.payloads.data() + lo,
                view_.payloads.data() + hi);
  };
  const auto probe_map = [&](uint64_t probe) {
    const auto& buckets =
        shards_[static_cast<size_t>(table) * num_shards_ + ShardOf(probe)];
    auto it = buckets.find(probe);
    if (it == buckets.end()) return;
    out->insert(out->end(), it->second.begin(), it->second.end());
  };
  const auto probe_one = [&](uint64_t probe) {
    if (frozen_) {
      probe_frozen(probe);
    } else {
      probe_map(probe);
    }
  };
  probe_one(code);
  if (config_.probe_hamming1) {
    for (int b = 0; b < config_.num_bits; ++b) probe_one(code ^ (1ULL << b));
  }
}

std::vector<int64_t> RandomHyperplaneLsh::Query(
    const std::vector<float>& embedding) const {
  std::vector<int64_t> hits;
  for (int t = 0; t < config_.num_tables; ++t) {
    ProbeTable(t, Code(embedding, t), &hits);
  }
  return SortedUnique(std::move(hits));
}

std::vector<std::vector<int64_t>> RandomHyperplaneLsh::QueryBatch(
    const std::vector<std::vector<float>>& embeddings,
    common::ThreadPool* pool) const {
  const size_t n = embeddings.size();
  std::vector<std::vector<int64_t>> out(n);
  if (n == 0) return out;
  if (pool == nullptr) {
    for (size_t i = 0; i < n; ++i) out[i] = Query(embeddings[i]);
    return out;
  }
  const size_t tables = static_cast<size_t>(config_.num_tables);
  // Stage 1: every (embedding, table) pair codes and probes independently,
  // so small batches still spread across the pool.
  std::vector<std::vector<int64_t>> table_hits(n * tables);
  pool->ParallelFor(n * tables, [&](size_t p) {
    const size_t i = p / tables;
    const int t = static_cast<int>(p % tables);
    ProbeTable(t, Code(embeddings[i], t), &table_hits[p]);
  });
  // Stage 2: per-embedding merge, identical to Query's tail.
  pool->ParallelFor(n, [&](size_t i) {
    std::vector<int64_t> hits;
    for (size_t t = 0; t < tables; ++t) {
      const auto& h = table_hits[i * tables + t];
      hits.insert(hits.end(), h.begin(), h.end());
    }
    out[i] = SortedUnique(std::move(hits));
  });
  return out;
}

size_t RandomHyperplaneLsh::MemoryBytes() const {
  size_t bytes = hyperplanes_view_.size() * sizeof(float);
  if (frozen_) {
    bytes += (view_.group_begin.size() + view_.codes.size() +
              view_.payload_begin.size()) *
                 sizeof(uint64_t) +
             view_.payloads.size() * sizeof(int64_t);
    return bytes;
  }
  for (const auto& shard : shards_) {
    for (const auto& [code, payloads] : shard) {
      bytes += sizeof(code) + payloads.size() * sizeof(int64_t) + 32;
    }
  }
  return bytes;
}

}  // namespace fcm::index
