#include "index/interval_tree.h"

#include <algorithm>
#include <memory>
#include <string>

namespace fcm::index {

namespace {

// Transient pointer-based node used only during construction; the tree is
// flattened into the columnar arrays and these nodes are discarded.
struct BuildNode {
  double center = 0.0;
  /// Intervals crossing the center, sorted by lo ascending.
  std::vector<Interval> by_lo;
  /// Same intervals sorted by hi descending.
  std::vector<Interval> by_hi;
  std::unique_ptr<BuildNode> left;
  std::unique_ptr<BuildNode> right;
};

std::unique_ptr<BuildNode> Build(std::vector<Interval> intervals) {
  if (intervals.empty()) return nullptr;
  // Median endpoint as the center keeps the tree balanced.
  std::vector<double> endpoints;
  endpoints.reserve(intervals.size() * 2);
  for (const auto& iv : intervals) {
    endpoints.push_back(iv.lo);
    endpoints.push_back(iv.hi);
  }
  std::nth_element(endpoints.begin(),
                   endpoints.begin() + static_cast<long>(endpoints.size() / 2),
                   endpoints.end());
  const double center = endpoints[endpoints.size() / 2];

  auto node = std::make_unique<BuildNode>();
  node->center = center;
  std::vector<Interval> left, right;
  for (auto& iv : intervals) {
    if (iv.hi < center) {
      left.push_back(iv);
    } else if (iv.lo > center) {
      right.push_back(iv);
    } else {
      node->by_lo.push_back(iv);
    }
  }
  // Degenerate split (all intervals cross the center): stop recursing.
  if (node->by_lo.empty() && (left.empty() || right.empty())) {
    node->by_lo = left.empty() ? std::move(right) : std::move(left);
    left.clear();
    right.clear();
  }
  node->by_hi = node->by_lo;
  std::sort(node->by_lo.begin(), node->by_lo.end(),
            [](const Interval& a, const Interval& b) { return a.lo < b.lo; });
  std::sort(node->by_hi.begin(), node->by_hi.end(),
            [](const Interval& a, const Interval& b) { return a.hi > b.hi; });
  node->left = Build(std::move(left));
  node->right = Build(std::move(right));
  return node;
}

}  // namespace

IntervalTree::IntervalTree(std::vector<Interval> intervals)
    : size_(intervals.size()) {
  std::unique_ptr<BuildNode> root = Build(std::move(intervals));

  // Flatten in preorder: children always land at larger indices than
  // their parent (FromFrozen relies on this for termination).
  struct Flattener {
    IntervalTree* t;
    int32_t Visit(const BuildNode* node) {
      if (node == nullptr) return -1;
      const auto idx = static_cast<int32_t>(t->center_.size());
      t->center_.push_back(node->center);
      t->left_.push_back(-1);
      t->right_.push_back(-1);
      t->slice_begin_.push_back(t->bylo_lo_.size());
      t->slice_count_.push_back(node->by_lo.size());
      for (const auto& iv : node->by_lo) {
        t->bylo_lo_.push_back(iv.lo);
        t->bylo_hi_.push_back(iv.hi);
        t->bylo_payload_.push_back(iv.payload);
      }
      for (const auto& iv : node->by_hi) {
        t->byhi_lo_.push_back(iv.lo);
        t->byhi_hi_.push_back(iv.hi);
        t->byhi_payload_.push_back(iv.payload);
      }
      t->left_[idx] = Visit(node->left.get());
      t->right_[idx] = Visit(node->right.get());
      return idx;
    }
  };
  Flattener{this}.Visit(root.get());

  view_ = Frozen{center_,      left_,    right_,        slice_begin_,
                 slice_count_, bylo_lo_, bylo_hi_,      bylo_payload_,
                 byhi_lo_,     byhi_hi_, byhi_payload_};
}

common::Result<IntervalTree> IntervalTree::FromFrozen(const Frozen& frozen) {
  const size_t n = frozen.center.size();
  auto bad = [](const std::string& what) {
    return common::Status::InvalidArgument("interval tree frozen data: " +
                                           what);
  };
  if (frozen.left.size() != n || frozen.right.size() != n ||
      frozen.slice_begin.size() != n || frozen.slice_count.size() != n) {
    return bad("node array lengths disagree");
  }
  const size_t total = frozen.bylo_lo.size();
  if (frozen.bylo_hi.size() != total || frozen.bylo_payload.size() != total ||
      frozen.byhi_lo.size() != total || frozen.byhi_hi.size() != total ||
      frozen.byhi_payload.size() != total) {
    return bad("interval array lengths disagree");
  }
  size_t covered = 0;
  for (size_t i = 0; i < n; ++i) {
    // Preorder property: a child's index strictly exceeds its parent's.
    // Every traversal step then increases the node index, so a query
    // terminates even on adversarial input.
    for (const int32_t child : {frozen.left[i], frozen.right[i]}) {
      if (child != -1 &&
          (child <= static_cast<int32_t>(i) ||
           child >= static_cast<int32_t>(n))) {
        return bad("child index " + std::to_string(child) +
                   " breaks preorder at node " + std::to_string(i));
      }
    }
    const uint64_t begin = frozen.slice_begin[i];
    const uint64_t count = frozen.slice_count[i];
    if (begin > total || count > total - begin) {
      return bad("interval slice of node " + std::to_string(i) +
                 " out of bounds");
    }
    covered += count;
  }
  if (covered != total) {
    return bad("interval slices cover " + std::to_string(covered) +
               " of " + std::to_string(total) + " intervals");
  }
  if (n == 0 && total != 0) {
    return bad("intervals present but no nodes");
  }

  IntervalTree tree;
  tree.view_ = frozen;
  tree.size_ = total;
  return tree;
}

void IntervalTree::QueryNode(size_t node, double qlo, double qhi,
                             std::vector<int64_t>* out) const {
  const Frozen& f = view_;
  const double center = f.center[node];
  const size_t begin = f.slice_begin[node];
  const size_t end = begin + f.slice_count[node];
  if (qhi < center) {
    // Only intervals whose lo <= qhi can overlap; by_lo is sorted by lo.
    for (size_t i = begin; i < end; ++i) {
      if (f.bylo_lo[i] > qhi) break;
      if (f.bylo_hi[i] >= qlo && f.bylo_lo[i] <= qhi) {
        out->push_back(f.bylo_payload[i]);
      }
    }
    if (f.left[node] >= 0) {
      QueryNode(static_cast<size_t>(f.left[node]), qlo, qhi, out);
    }
  } else if (qlo > center) {
    for (size_t i = begin; i < end; ++i) {
      if (f.byhi_hi[i] < qlo) break;
      if (f.byhi_hi[i] >= qlo && f.byhi_lo[i] <= qhi) {
        out->push_back(f.byhi_payload[i]);
      }
    }
    if (f.right[node] >= 0) {
      QueryNode(static_cast<size_t>(f.right[node]), qlo, qhi, out);
    }
  } else {
    // Query straddles the center: every stored interval crosses the
    // center, hence overlaps.
    for (size_t i = begin; i < end; ++i) {
      out->push_back(f.bylo_payload[i]);
    }
    if (f.left[node] >= 0) {
      QueryNode(static_cast<size_t>(f.left[node]), qlo, qhi, out);
    }
    if (f.right[node] >= 0) {
      QueryNode(static_cast<size_t>(f.right[node]), qlo, qhi, out);
    }
  }
}

std::vector<int64_t> IntervalTree::QueryOverlap(double qlo,
                                                double qhi) const {
  std::vector<int64_t> out;
  if (!view_.center.empty()) QueryNode(0, qlo, qhi, &out);
  return out;
}

std::vector<int64_t> IntervalTree::QueryPoint(double q) const {
  return QueryOverlap(q, q);
}

size_t IntervalTree::MemoryBytes() const {
  const Frozen& f = view_;
  return f.center.size() * sizeof(double) +
         (f.left.size() + f.right.size()) * sizeof(int32_t) +
         (f.slice_begin.size() + f.slice_count.size()) * sizeof(uint64_t) +
         (f.bylo_lo.size() + f.bylo_hi.size() + f.byhi_lo.size() +
          f.byhi_hi.size()) *
             sizeof(double) +
         (f.bylo_payload.size() + f.byhi_payload.size()) * sizeof(int64_t);
}

}  // namespace fcm::index
