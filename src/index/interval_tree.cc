#include "index/interval_tree.h"

#include <algorithm>

namespace fcm::index {

IntervalTree::IntervalTree(std::vector<Interval> intervals)
    : size_(intervals.size()) {
  root_ = Build(std::move(intervals));
}

std::unique_ptr<IntervalTree::Node> IntervalTree::Build(
    std::vector<Interval> intervals) {
  if (intervals.empty()) return nullptr;
  // Median endpoint as the center keeps the tree balanced.
  std::vector<double> endpoints;
  endpoints.reserve(intervals.size() * 2);
  for (const auto& iv : intervals) {
    endpoints.push_back(iv.lo);
    endpoints.push_back(iv.hi);
  }
  std::nth_element(endpoints.begin(),
                   endpoints.begin() + static_cast<long>(endpoints.size() / 2),
                   endpoints.end());
  const double center = endpoints[endpoints.size() / 2];

  auto node = std::make_unique<Node>();
  node->center = center;
  std::vector<Interval> left, right;
  for (auto& iv : intervals) {
    if (iv.hi < center) {
      left.push_back(iv);
    } else if (iv.lo > center) {
      right.push_back(iv);
    } else {
      node->by_lo.push_back(iv);
    }
  }
  // Degenerate split (all intervals cross the center): stop recursing.
  if (node->by_lo.empty() && (left.empty() || right.empty())) {
    node->by_lo = left.empty() ? std::move(right) : std::move(left);
    left.clear();
    right.clear();
  }
  node->by_hi = node->by_lo;
  std::sort(node->by_lo.begin(), node->by_lo.end(),
            [](const Interval& a, const Interval& b) { return a.lo < b.lo; });
  std::sort(node->by_hi.begin(), node->by_hi.end(),
            [](const Interval& a, const Interval& b) { return a.hi > b.hi; });
  node->left = Build(std::move(left));
  node->right = Build(std::move(right));
  return node;
}

void IntervalTree::Query(const Node* node, double qlo, double qhi,
                         std::vector<int64_t>* out) {
  if (node == nullptr) return;
  if (qhi < node->center) {
    // Only intervals whose lo <= qhi can overlap; by_lo is sorted by lo.
    for (const auto& iv : node->by_lo) {
      if (iv.lo > qhi) break;
      if (iv.Overlaps(qlo, qhi)) out->push_back(iv.payload);
    }
    Query(node->left.get(), qlo, qhi, out);
  } else if (qlo > node->center) {
    for (const auto& iv : node->by_hi) {
      if (iv.hi < qlo) break;
      if (iv.Overlaps(qlo, qhi)) out->push_back(iv.payload);
    }
    Query(node->right.get(), qlo, qhi, out);
  } else {
    // Query straddles the center: every stored interval crosses the
    // center, hence overlaps.
    for (const auto& iv : node->by_lo) out->push_back(iv.payload);
    Query(node->left.get(), qlo, qhi, out);
    Query(node->right.get(), qlo, qhi, out);
  }
}

std::vector<int64_t> IntervalTree::QueryOverlap(double qlo,
                                                double qhi) const {
  std::vector<int64_t> out;
  Query(root_.get(), qlo, qhi, &out);
  return out;
}

std::vector<int64_t> IntervalTree::QueryPoint(double q) const {
  return QueryOverlap(q, q);
}

size_t IntervalTree::NodeBytes(const Node* node) {
  if (node == nullptr) return 0;
  return sizeof(Node) + (node->by_lo.size() + node->by_hi.size()) *
                            sizeof(Interval) +
         NodeBytes(node->left.get()) + NodeBytes(node->right.get());
}

size_t IntervalTree::MemoryBytes() const { return NodeBytes(root_.get()); }

}  // namespace fcm::index
