#include "index/async_service.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/check.h"
#include "common/logging.h"

namespace fcm::index {

/// One accepted request travelling through the pipeline.
struct AsyncSearchService::Request {
  vision::ExtractedChart query;
  int k = 0;
  IndexStrategy strategy = IndexStrategy::kNoIndex;
  std::promise<std::vector<SearchHit>> promise;
};

/// A coalesced group of requests plus their engine-side stage state.
/// `staged[i].query` points into `requests[i]`, which is stable: the
/// vectors are never resized after staging is set up.
struct AsyncSearchService::MicroBatch {
  std::vector<Request> requests;
  std::vector<SearchEngine::StagedQuery> staged;
  /// Per-stage wall time, filled as the batch flows through the pipeline;
  /// the score thread feeds the total back to the adaptive controller.
  SearchEngine::StageTiming timing;
};

// Bounded stage hand-off. Depth 2 keeps at most one batch queued behind
// the one a stage is working on: enough to decouple the stages (the whole
// point of the pipeline) without letting an infinite tail of admitted
// work pile up between them — backpressure reaches Submit through the
// dispatcher blocking here.
class AsyncSearchService::StageChannel {
 public:
  static constexpr size_t kDepth = 2;

  /// Blocks while the channel is full. Never called after Close.
  void Push(std::unique_ptr<MicroBatch> batch) {
    std::unique_lock<std::mutex> lk(mu_);
    cv_space_.wait(lk, [this]() { return batches_.size() < kDepth; });
    batches_.push_back(std::move(batch));
    lk.unlock();
    cv_data_.notify_one();
  }

  /// Blocks until a batch or Close; nullptr means closed and drained.
  std::unique_ptr<MicroBatch> Pop() {
    std::unique_lock<std::mutex> lk(mu_);
    cv_data_.wait(lk, [this]() { return closed_ || !batches_.empty(); });
    if (batches_.empty()) return nullptr;
    auto batch = std::move(batches_.front());
    batches_.pop_front();
    lk.unlock();
    cv_space_.notify_one();
    return batch;
  }

  /// Marks the upstream stage done; queued batches still drain.
  void Close() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      closed_ = true;
    }
    cv_data_.notify_all();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_space_, cv_data_;
  std::deque<std::unique_ptr<MicroBatch>> batches_;
  bool closed_ = false;
};

AsyncSearchService::AsyncSearchService(const SearchEngine* engine,
                                       const AsyncServiceOptions& options)
    : engine_(engine), options_(options) {
  FCM_CHECK(engine_ != nullptr);
  FCM_CHECK_GT(options_.queue_capacity, 0u);
  FCM_CHECK_GT(options_.max_batch_size, 0u);
  if (options_.adaptive) {
    AdaptiveBatchConfig config = options_.adaptive_config;
    if (config.max_batch_size == 0) {
      config.max_batch_size = options_.max_batch_size;
      config.min_batch_size =
          std::min(config.min_batch_size, config.max_batch_size);
    }
    controller_ = std::make_unique<AdaptiveBatchController>(config);
  }
  encode_to_candidates_ = std::make_unique<StageChannel>();
  candidates_to_score_ = std::make_unique<StageChannel>();
  dispatch_thread_ = std::thread([this]() { DispatchLoop(); });
  candidate_thread_ = std::thread([this]() { CandidateLoop(); });
  score_thread_ = std::thread([this]() { ScoreLoop(); });
}

AsyncSearchService::~AsyncSearchService() { Shutdown(/*drain=*/true); }

std::future<std::vector<SearchHit>> AsyncSearchService::Submit(
    vision::ExtractedChart query, int k, IndexStrategy strategy) {
  Request request;
  request.query = std::move(query);
  request.k = k;
  request.strategy = strategy;
  auto future = request.promise.get_future();

  std::unique_lock<std::mutex> lk(mu_);
  if (options_.backpressure == BackpressureMode::kBlock) {
    cv_space_.wait(lk, [this]() {
      return stopping_ || queue_.size() < options_.queue_capacity;
    });
  }
  if (stopping_ || queue_.size() >= options_.queue_capacity) {
    ++rejected_;
    const char* reason =
        stopping_ ? "AsyncSearchService is shut down" : "request queue full";
    lk.unlock();
    request.promise.set_exception(
        std::make_exception_ptr(RejectedError(reason)));
    return future;
  }
  queue_.push_back(std::move(request));
  ++submitted_;
  lk.unlock();
  cv_data_.notify_one();
  return future;
}

std::vector<std::future<std::vector<SearchHit>>>
AsyncSearchService::SubmitBatch(std::vector<vision::ExtractedChart> queries,
                                int k, IndexStrategy strategy) {
  std::vector<std::future<std::vector<SearchHit>>> futures;
  futures.reserve(queries.size());
  for (auto& query : queries) {
    futures.push_back(Submit(std::move(query), k, strategy));
  }
  return futures;
}

void AsyncSearchService::DispatchLoop() {
  for (;;) {
    auto batch = std::make_unique<MicroBatch>();
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_data_.wait(lk, [this]() { return stopping_ || !queue_.empty(); });
      if (cancel_) {
        // Shutdown(false): fail everything still queued, deterministically
        // in queue order, then retire the pipeline.
        while (!queue_.empty()) {
          Request request = std::move(queue_.front());
          queue_.pop_front();
          ++cancelled_;
          request.promise.set_exception(std::make_exception_ptr(
              ShutdownError("cancelled by Shutdown(drain=false)")));
        }
        break;
      }
      if (queue_.empty()) break;  // stopping_ && drained: retire.

      // Coalesce: take the first request, then wait up to the batch delay
      // for more, capped at the batch-size cap. The deadline is measured
      // from the moment the batch starts forming, so a request's queueing
      // latency is bounded by the delay knob (plus pipeline occupancy).
      // Static mode uses the options' knobs; adaptive mode asks the
      // controller, which samples the queue depth it is handed here and
      // answers with this batch's window and size cap.
      size_t batch_cap = options_.max_batch_size;
      double delay_ms = options_.max_batch_delay_ms;
      if (controller_ != nullptr) {
        const BatchDecision decision = controller_->OnBatchStart(
            std::chrono::steady_clock::now(), queue_.size());
        batch_cap = decision.batch_size;
        delay_ms = decision.delay_ms;
      }
      const auto deadline =
          std::chrono::steady_clock::now() +
          std::chrono::duration_cast<std::chrono::steady_clock::duration>(
              std::chrono::duration<double, std::milli>(delay_ms));
      batch->requests.push_back(std::move(queue_.front()));
      queue_.pop_front();
      while (batch->requests.size() < batch_cap) {
        if (queue_.empty()) {
          if (stopping_ ||
              cv_data_.wait_until(lk, deadline, [this]() {
                return stopping_ || !queue_.empty();
              }) == false) {
            break;  // Delay budget spent (or draining): dispatch what we have.
          }
          if (queue_.empty()) break;  // stopping_ woke us with nothing new.
        }
        batch->requests.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      ++batches_;
      max_coalesced_ = std::max(max_coalesced_, batch->requests.size());
    }
    cv_space_.notify_all();  // Freed queue slots.

    batch->staged.resize(batch->requests.size());
    for (size_t i = 0; i < batch->requests.size(); ++i) {
      batch->staged[i].query = &batch->requests[i].query;
      batch->staged[i].strategy = batch->requests[i].strategy;
      batch->staged[i].k = batch->requests[i].k;
    }
    try {
      engine_->EncodeStage(&batch->staged, &batch->timing);
    } catch (...) {
      FailBatch(batch.get(), std::current_exception());
      continue;
    }
    encode_to_candidates_->Push(std::move(batch));
  }
  encode_to_candidates_->Close();
  cv_space_.notify_all();  // Unblock kBlock submitters racing the shutdown.
}

void AsyncSearchService::CandidateLoop() {
  for (;;) {
    auto batch = encode_to_candidates_->Pop();
    if (batch == nullptr) break;
    try {
      engine_->CandidateStage(&batch->staged, &batch->timing);
    } catch (...) {
      FailBatch(batch.get(), std::current_exception());
      continue;
    }
    candidates_to_score_->Push(std::move(batch));
  }
  candidates_to_score_->Close();
}

void AsyncSearchService::ScoreLoop() {
  for (;;) {
    auto batch = candidates_to_score_->Pop();
    if (batch == nullptr) break;
    std::vector<std::vector<SearchHit>> results;
    try {
      results = engine_->ScoreStage(batch->staged, nullptr, &batch->timing);
    } catch (...) {
      FailBatch(batch.get(), std::current_exception());
      continue;
    }
    for (size_t i = 0; i < batch->requests.size(); ++i) {
      batch->requests[i].promise.set_value(std::move(results[i]));
    }
    std::lock_guard<std::mutex> lk(mu_);
    completed_ += batch->requests.size();
    if (controller_ != nullptr) {
      // Feed the controller's service-time EWMA (latency clamp input).
      controller_->OnBatchServed(batch->timing.total_seconds());
    }
  }
}

void AsyncSearchService::FailBatch(MicroBatch* batch,
                                   const std::exception_ptr& error) {
  for (auto& request : batch->requests) {
    request.promise.set_exception(error);
  }
  std::lock_guard<std::mutex> lk(mu_);
  failed_ += batch->requests.size();
}

void AsyncSearchService::Shutdown(bool drain) {
  std::lock_guard<std::mutex> shutdown_lk(shutdown_mu_);
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (!stopping_) {
      stopping_ = true;
      cancel_ = !drain;
    }
    // A later Shutdown never un-cancels or re-cancels: the first call's
    // mode wins and this one just waits for the join below.
  }
  cv_data_.notify_all();
  cv_space_.notify_all();
  if (!joined_) {
    dispatch_thread_.join();
    candidate_thread_.join();
    score_thread_.join();
    joined_ = true;
  }
}

AsyncServiceStats AsyncSearchService::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  AsyncServiceStats out;
  out.submitted = submitted_;
  out.completed = completed_;
  out.rejected = rejected_;
  out.cancelled = cancelled_;
  out.failed = failed_;
  out.batches = batches_;
  out.max_coalesced = max_coalesced_;
  if (controller_ != nullptr) out.controller = controller_->counters();
  return out;
}

std::vector<AdaptiveBatchController::TraceEntry>
AsyncSearchService::controller_trace() const {
  std::lock_guard<std::mutex> lk(mu_);
  if (controller_ == nullptr) return {};
  return controller_->trace();
}

}  // namespace fcm::index
