#include "index/async_service.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/check.h"
#include "common/failpoint.h"
#include "common/logging.h"

namespace fcm::index {

namespace {

using Clock = std::chrono::steady_clock;

Clock::duration MsToDuration(double ms) {
  return std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double, std::milli>(ms));
}

std::exception_ptr DeadlineError(const char* where) {
  return std::make_exception_ptr(DeadlineExceededError(
      std::string("request deadline expired ") + where));
}

}  // namespace

const char* BreakerStateName(BreakerState s) {
  switch (s) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half_open";
  }
  return "unknown";
}

/// One accepted request travelling through the pipeline.
struct AsyncSearchService::Request {
  vision::ExtractedChart query;
  int k = 0;
  IndexStrategy strategy = IndexStrategy::kNoIndex;
  /// Admission-ordered id (from 1); keys the engine's per-query failpoint
  /// sites through StagedQuery::tag.
  uint64_t id = 0;
  Deadline deadline = kNoDeadline;
  std::promise<std::vector<SearchHit>> promise;
};

/// A coalesced group of requests plus their engine-side stage state.
/// `staged[i].query` points into `requests[i]`; ShedExpired compacts the
/// two vectors in lockstep and re-points the pointers, so the invariant
/// holds across deadline shedding between stages.
struct AsyncSearchService::MicroBatch {
  std::vector<Request> requests;
  std::vector<SearchEngine::StagedQuery> staged;
  /// Per-stage wall time, filled as the batch flows through the pipeline;
  /// the score thread feeds the total back to the adaptive controller.
  SearchEngine::StageTiming timing;
  /// Index generation pinned at dispatch; every stage of this batch runs
  /// against it, so concurrent Ingest/Compact publishes never change what
  /// an in-flight batch observes. Released (possibly retiring the epoch)
  /// when the batch is destroyed after fulfillment.
  EpochPin epoch;
};

// Bounded stage hand-off. Depth 2 keeps at most one batch queued behind
// the one a stage is working on: enough to decouple the stages (the whole
// point of the pipeline) without letting an infinite tail of admitted
// work pile up between them — backpressure reaches Submit through the
// dispatcher blocking here.
class AsyncSearchService::StageChannel {
 public:
  static constexpr size_t kDepth = 2;

  /// Blocks while the channel is full. Never called after Close.
  void Push(std::unique_ptr<MicroBatch> batch) {
    common::MutexLock lk(&mu_);
    cv_space_.Wait(&mu_, [this]() FCM_NO_THREAD_SAFETY_ANALYSIS {
      return batches_.size() < kDepth;
    });
    batches_.push_back(std::move(batch));
    lk.Unlock();
    cv_data_.NotifyOne();
  }

  /// Blocks until a batch or Close; nullptr means closed and drained.
  std::unique_ptr<MicroBatch> Pop() {
    common::MutexLock lk(&mu_);
    cv_data_.Wait(&mu_, [this]() FCM_NO_THREAD_SAFETY_ANALYSIS {
      return closed_ || !batches_.empty();
    });
    if (batches_.empty()) return nullptr;
    auto batch = std::move(batches_.front());
    batches_.pop_front();
    lk.Unlock();
    cv_space_.NotifyOne();
    return batch;
  }

  /// Marks the upstream stage done; queued batches still drain.
  void Close() {
    {
      common::MutexLock lk(&mu_);
      closed_ = true;
    }
    cv_data_.NotifyAll();
  }

 private:
  common::Mutex mu_;
  common::CondVar cv_space_, cv_data_;
  std::deque<std::unique_ptr<MicroBatch>> batches_ FCM_GUARDED_BY(mu_);
  bool closed_ FCM_GUARDED_BY(mu_) = false;
};

AsyncSearchService::AsyncSearchService(const SearchEngine* engine,
                                       const AsyncServiceOptions& options)
    : engine_(engine), options_(options) {
  FCM_CHECK(engine_ != nullptr);
  FCM_CHECK_GT(options_.queue_capacity, 0u);
  FCM_CHECK_GT(options_.max_batch_size, 0u);
  if (options_.adaptive) {
    AdaptiveBatchConfig config = options_.adaptive_config;
    if (config.max_batch_size == 0) {
      config.max_batch_size = options_.max_batch_size;
      config.min_batch_size =
          std::min(config.min_batch_size, config.max_batch_size);
    }
    controller_ = std::make_unique<AdaptiveBatchController>(config);
  }
  encode_to_candidates_ = std::make_unique<StageChannel>();
  candidates_to_score_ = std::make_unique<StageChannel>();
  dispatch_thread_ = std::thread([this]() { DispatchLoop(); });
  candidate_thread_ = std::thread([this]() { CandidateLoop(); });
  score_thread_ = std::thread([this]() { ScoreLoop(); });
}

AsyncSearchService::AsyncSearchService(SearchEngine* engine,
                                       const AsyncServiceOptions& options)
    : AsyncSearchService(static_cast<const SearchEngine*>(engine), options) {
  mutable_engine_ = engine;
}

AsyncSearchService::~AsyncSearchService() { Shutdown(/*drain=*/true); }

bool AsyncSearchService::HaveRoomLocked() const {
  return stopping_ || queue_.size() < options_.queue_capacity;
}

bool AsyncSearchService::QueueReadyLocked() const {
  return stopping_ || !queue_.empty();
}

std::future<std::vector<SearchHit>> AsyncSearchService::Submit(
    vision::ExtractedChart query, int k, IndexStrategy strategy,
    Deadline deadline) {
  Request request;
  request.query = std::move(query);
  request.k = k;
  request.strategy = strategy;
  request.deadline = deadline;
  auto future = request.promise.get_future();

  common::MutexLock lk(&mu_);
  // Degraded mode: an open breaker sheds load before any queueing or
  // blocking. After the cooldown the next arrival is admitted as a
  // half-open probe whose outcome decides between closing and re-opening.
  if (!stopping_ && breaker_ == BreakerState::kOpen) {
    if (Clock::now() - breaker_opened_at_ >=
        MsToDuration(options_.breaker_cooldown_ms)) {
      breaker_ = BreakerState::kHalfOpen;
    } else {
      ++fast_rejected_;
      lk.Unlock();
      request.promise.set_exception(std::make_exception_ptr(
          DegradedError("circuit breaker open: service degraded")));
      return future;
    }
  }
  if (options_.backpressure == BackpressureMode::kBlock) {
    const auto have_room = [this]() FCM_NO_THREAD_SAFETY_ANALYSIS {
      return HaveRoomLocked();
    };
    if (request.deadline == kNoDeadline) {
      cv_space_.Wait(&mu_, have_room);
    } else if (!cv_space_.WaitUntil(&mu_, request.deadline, have_room)) {
      // The deadline expired while the caller was blocked on admission.
      // The request was accepted for admission, so it counts as submitted
      // + deadline_expired (keeping the stats balance invariant).
      ++submitted_;
      ++deadline_expired_;
      lk.Unlock();
      request.promise.set_exception(DeadlineError("while blocked on a full "
                                                  "queue"));
      return future;
    }
  }
  if (stopping_ || queue_.size() >= options_.queue_capacity) {
    ++rejected_;
    const char* reason =
        stopping_ ? "AsyncSearchService is shut down" : "request queue full";
    lk.Unlock();
    request.promise.set_exception(
        std::make_exception_ptr(RejectedError(reason)));
    return future;
  }
  if (request.deadline <= Clock::now()) {
    ++submitted_;
    ++deadline_expired_;
    lk.Unlock();
    request.promise.set_exception(DeadlineError("before admission"));
    return future;
  }
  request.id = ++next_request_id_;
  try {
    FCM_FAILPOINT_KEYED("async.submit", request.id);
  } catch (...) {
    // Injected queue-op fault: the request was accepted, so it settles as
    // a failure (and counts against the breaker like any other failure).
    ++submitted_;
    ++failed_;
    NoteOutcomeLocked(false);
    lk.Unlock();
    request.promise.set_exception(std::current_exception());
    return future;
  }
  queue_.push_back(std::move(request));
  ++submitted_;
  lk.Unlock();
  cv_data_.NotifyOne();
  return future;
}

std::vector<std::future<std::vector<SearchHit>>>
AsyncSearchService::SubmitBatch(std::vector<vision::ExtractedChart> queries,
                                int k, IndexStrategy strategy,
                                Deadline deadline) {
  std::vector<std::future<std::vector<SearchHit>>> futures;
  futures.reserve(queries.size());
  for (auto& query : queries) {
    futures.push_back(Submit(std::move(query), k, strategy, deadline));
  }
  return futures;
}

void AsyncSearchService::DispatchLoop() {
  for (;;) {
    auto batch = std::make_unique<MicroBatch>();
    bool retire = false;
    {
      common::MutexLock lk(&mu_);
      cv_data_.Wait(&mu_, [this]() FCM_NO_THREAD_SAFETY_ANALYSIS {
        return QueueReadyLocked();
      });
      if (cancel_) {
        // Shutdown(false): fail everything still queued, deterministically
        // in queue order, then retire the pipeline.
        while (!queue_.empty()) {
          Request request = std::move(queue_.front());
          queue_.pop_front();
          ++cancelled_;
          request.promise.set_exception(std::make_exception_ptr(
              ShutdownError("cancelled by Shutdown(drain=false)")));
        }
        retire = true;
      } else {
        // Shed requests that expired while queued before spending a
        // controller decision or a pipeline pass on them.
        const auto now = Clock::now();
        while (!queue_.empty() && queue_.front().deadline <= now) {
          Request request = std::move(queue_.front());
          queue_.pop_front();
          ++deadline_expired_;
          request.promise.set_exception(DeadlineError("before dispatch"));
        }
        if (queue_.empty()) {
          // Everything queued had expired (or we woke for shutdown).
          retire = stopping_;
        } else {
          // Coalesce: take the first request, then wait up to the batch
          // delay for more, capped at the batch-size cap. The window is
          // measured from the moment the batch starts forming, so a
          // request's queueing latency is bounded by the delay knob (plus
          // pipeline occupancy). Static mode uses the options' knobs;
          // adaptive mode asks the controller, which samples the queue
          // depth it is handed here and answers with this batch's window
          // and size cap.
          size_t batch_cap = options_.max_batch_size;
          double delay_ms = options_.max_batch_delay_ms;
          if (controller_ != nullptr) {
            const BatchDecision decision =
                controller_->OnBatchStart(Clock::now(), queue_.size());
            batch_cap = decision.batch_size;
            delay_ms = decision.delay_ms;
          }
          const auto window_end = Clock::now() + MsToDuration(delay_ms);
          batch->requests.push_back(std::move(queue_.front()));
          queue_.pop_front();
          while (batch->requests.size() < batch_cap) {
            if (queue_.empty()) {
              if (stopping_ ||
                  !cv_data_.WaitUntil(
                      &mu_, window_end,
                      [this]() FCM_NO_THREAD_SAFETY_ANALYSIS {
                        return QueueReadyLocked();
                      })) {
                break;  // Window spent (or draining): dispatch what we have.
              }
              if (queue_.empty()) break;  // stopping_ woke us, nothing new.
            }
            // Shed instead of coalescing a request that already expired.
            if (queue_.front().deadline <= Clock::now()) {
              Request request = std::move(queue_.front());
              queue_.pop_front();
              ++deadline_expired_;
              request.promise.set_exception(DeadlineError("before dispatch"));
              continue;
            }
            batch->requests.push_back(std::move(queue_.front()));
            queue_.pop_front();
          }
          ++batches_;
          max_coalesced_ = std::max(max_coalesced_, batch->requests.size());
        }
      }
    }
    cv_space_.NotifyAll();  // Freed queue slots.
    if (retire) break;
    if (batch->requests.empty()) continue;

    RestageBatch(batch.get());
    // Pin this batch's index generation before any stage runs: the whole
    // pipeline pass — including singleton recovery re-runs — serves from
    // this epoch, whatever Ingest/Compact publishes meanwhile.
    batch->epoch = engine_->PinEpoch();
    try {
      FCM_FAILPOINT("async.dispatch");
      engine_->EncodeStage(&batch->staged, &batch->timing);
    } catch (...) {
      RecoverBatch(batch.get());
      continue;
    }
    encode_to_candidates_->Push(std::move(batch));
  }
  encode_to_candidates_->Close();
  cv_space_.NotifyAll();  // Unblock kBlock submitters racing the shutdown.
}

void AsyncSearchService::CandidateLoop() {
  for (;;) {
    auto batch = encode_to_candidates_->Pop();
    if (batch == nullptr) break;
    ShedExpired(batch.get());
    if (batch->requests.empty()) continue;
    try {
      engine_->CandidateStage(&batch->staged, &batch->timing, batch->epoch);
    } catch (...) {
      RecoverBatch(batch.get());
      continue;
    }
    candidates_to_score_->Push(std::move(batch));
  }
  candidates_to_score_->Close();
}

void AsyncSearchService::ScoreLoop() {
  for (;;) {
    auto batch = candidates_to_score_->Pop();
    if (batch == nullptr) break;
    ShedExpired(batch.get());
    if (batch->requests.empty()) continue;
    std::vector<std::vector<SearchHit>> results;
    try {
      results = engine_->ScoreStage(batch->staged, nullptr, &batch->timing,
                                    batch->epoch);
    } catch (...) {
      RecoverBatch(batch.get());
      continue;
    }
    // Count before settling: once a future resolves, stats()/Health()
    // must already reflect that request (tests rely on this ordering).
    {
      common::MutexLock lk(&mu_);
      completed_ += batch->requests.size();
      for (size_t i = 0; i < batch->requests.size(); ++i) {
        NoteOutcomeLocked(/*ok=*/true);
      }
      if (controller_ != nullptr) {
        // Feed the controller's service-time EWMA (latency clamp input).
        controller_->OnBatchServed(batch->timing.total_seconds());
      }
    }
    for (size_t i = 0; i < batch->requests.size(); ++i) {
      batch->requests[i].promise.set_value(std::move(results[i]));
    }
  }
}

void AsyncSearchService::RestageBatch(MicroBatch* batch) {
  batch->staged.resize(batch->requests.size());
  for (size_t i = 0; i < batch->requests.size(); ++i) {
    batch->staged[i].query = &batch->requests[i].query;
    batch->staged[i].strategy = batch->requests[i].strategy;
    batch->staged[i].k = batch->requests[i].k;
    batch->staged[i].tag = batch->requests[i].id;
  }
}

void AsyncSearchService::ShedExpired(MicroBatch* batch) {
  const auto now = Clock::now();
  std::vector<std::promise<std::vector<SearchHit>>> expired;
  size_t out = 0;
  for (size_t i = 0; i < batch->requests.size(); ++i) {
    if (batch->requests[i].deadline <= now) {
      expired.push_back(std::move(batch->requests[i].promise));
      continue;
    }
    if (out != i) {
      // Keep requests[] and staged[] in lockstep so surviving requests
      // retain the stage outputs already computed for them.
      batch->requests[out] = std::move(batch->requests[i]);
      batch->staged[out] = std::move(batch->staged[i]);
    }
    ++out;
  }
  if (expired.empty()) return;
  batch->requests.resize(out);
  batch->staged.resize(out);
  for (size_t i = 0; i < out; ++i) {
    batch->staged[i].query = &batch->requests[i].query;
  }
  {
    common::MutexLock lk(&mu_);
    deadline_expired_ += expired.size();
  }
  for (auto& promise : expired) {
    promise.set_exception(DeadlineError("between pipeline stages"));
  }
}

void AsyncSearchService::RecoverBatch(MicroBatch* batch) {
  // Retry-once blast-radius isolation: a stage failed on this batch, so
  // re-run each request individually through all three stages. Neighbors
  // of a poisoned request get rankings bit-identical to Search (same
  // stage code, singleton grouping) and requests hit by a transient
  // batch-level fault simply succeed on the re-run; only requests that
  // fail again — genuinely poisoned — carry an error, and that second
  // failure is final (the re-runs below never recurse).
  const size_t n = batch->requests.size();
  if (common::GetLogLevel() <= common::LogLevel::kWarn) {
    FCM_LOGS(WARN) << "stage failure on a micro-batch of " << n
                   << " request(s); re-running individually";
  }
  {
    common::MutexLock lk(&mu_);
    retried_ += n;
  }
  for (auto& request : batch->requests) {
    if (request.deadline <= Clock::now()) {
      {
        common::MutexLock lk(&mu_);
        ++deadline_expired_;
      }
      request.promise.set_exception(DeadlineError("during batch recovery"));
      continue;
    }
    std::vector<SearchEngine::StagedQuery> staged(1);
    staged[0].query = &request.query;
    staged[0].strategy = request.strategy;
    staged[0].k = request.k;
    staged[0].tag = request.id;
    // Re-run on the batch's pinned epoch so recovery cannot observe a
    // different index generation than the batch it recovers.
    const EpochPin pin =
        batch->epoch != nullptr ? batch->epoch : engine_->PinEpoch();
    try {
      engine_->EncodeStage(&staged);
      engine_->CandidateStage(&staged, nullptr, pin);
      auto results = engine_->ScoreStage(staged, nullptr, nullptr, pin);
      {
        common::MutexLock lk(&mu_);
        ++completed_;
        NoteOutcomeLocked(/*ok=*/true);
      }
      request.promise.set_value(std::move(results[0]));
    } catch (...) {
      const std::exception_ptr request_error = std::current_exception();
      {
        common::MutexLock lk(&mu_);
        ++failed_;
        NoteOutcomeLocked(/*ok=*/false);
      }
      request.promise.set_exception(request_error);
    }
  }
}

void AsyncSearchService::NoteOutcomeLocked(bool ok) {
  if (ok) {
    consecutive_failures_ = 0;
    if (breaker_ == BreakerState::kHalfOpen) {
      breaker_ = BreakerState::kClosed;
    }
    return;
  }
  ++consecutive_failures_;
  if (options_.breaker_threshold == 0) return;
  // A failed half-open probe re-opens (the run was never reset, so the
  // threshold is still met); each transition into kOpen counts as a trip.
  if (breaker_ != BreakerState::kOpen &&
      consecutive_failures_ >= options_.breaker_threshold) {
    breaker_ = BreakerState::kOpen;
    breaker_opened_at_ = Clock::now();
    ++breaker_trips_;
  }
}

common::Status AsyncSearchService::Ingest(std::vector<table::Table> tables,
                                          IngestStats* stats) {
  if (mutable_engine_ == nullptr) {
    return common::Status::FailedPrecondition(
        "Ingest requires the mutable-engine constructor");
  }
  // Choke point for fault schedules: an armed failure here models the
  // admission layer rejecting an append before it reaches the engine.
  FCM_FAILPOINT_STATUS("async.ingest");
  IngestStats local;
  FCM_RETURN_IF_ERROR(mutable_engine_->IngestBatch(std::move(tables), &local));
  {
    common::MutexLock lk(&mu_);
    ++ingest_batches_;
    ingested_tables_ += local.tables;
  }
  if (stats != nullptr) *stats = local;
  return common::Status::OK();
}

common::Status AsyncSearchService::Compact(CompactStats* stats) {
  if (mutable_engine_ == nullptr) {
    return common::Status::FailedPrecondition(
        "Compact requires the mutable-engine constructor");
  }
  FCM_FAILPOINT_STATUS("async.compact");
  CompactStats local;
  FCM_RETURN_IF_ERROR(mutable_engine_->Compact(&local));
  {
    common::MutexLock lk(&mu_);
    ++compactions_;
  }
  if (stats != nullptr) *stats = local;
  return common::Status::OK();
}

void AsyncSearchService::Shutdown(bool drain) {
  common::MutexLock shutdown_lk(&shutdown_mu_);
  {
    common::MutexLock lk(&mu_);
    if (!stopping_) {
      stopping_ = true;
      cancel_ = !drain;
    }
    // A later Shutdown never un-cancels or re-cancels: the first call's
    // mode wins and this one just waits for the join below.
  }
  cv_data_.NotifyAll();
  cv_space_.NotifyAll();
  if (!joined_) {
    dispatch_thread_.join();
    candidate_thread_.join();
    score_thread_.join();
    joined_ = true;
  }
}

AsyncServiceStats AsyncSearchService::StatsLocked() const {
  AsyncServiceStats out;
  out.submitted = submitted_;
  out.completed = completed_;
  out.rejected = rejected_;
  out.cancelled = cancelled_;
  out.failed = failed_;
  out.deadline_expired = deadline_expired_;
  out.retried = retried_;
  out.fast_rejected = fast_rejected_;
  out.batches = batches_;
  out.max_coalesced = max_coalesced_;
  out.ingest_batches = ingest_batches_;
  out.ingested_tables = ingested_tables_;
  out.compactions = compactions_;
  if (controller_ != nullptr) out.controller = controller_->counters();
  return out;
}

AsyncServiceStats AsyncSearchService::stats() const {
  common::MutexLock lk(&mu_);
  return StatsLocked();
}

HealthSnapshot AsyncSearchService::Health() const {
  common::MutexLock lk(&mu_);
  HealthSnapshot out;
  out.breaker = breaker_;
  out.consecutive_failures = consecutive_failures_;
  out.breaker_trips = breaker_trips_;
  out.degraded =
      breaker_ == BreakerState::kOpen &&
      Clock::now() - breaker_opened_at_ <
          MsToDuration(options_.breaker_cooldown_ms);
  out.stats = StatsLocked();
  return out;
}

std::vector<AdaptiveBatchController::TraceEntry>
AsyncSearchService::controller_trace() const {
  common::MutexLock lk(&mu_);
  if (controller_ == nullptr) return {};
  return controller_->trace();
}

}  // namespace fcm::index
