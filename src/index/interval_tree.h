// Centered interval tree (paper Sec. VI-A): indexes per-column possible
// value ranges [min(C), sum(C)] so a chart's y-tick range quickly yields
// the datasets with at least one overlapping column.
//
// Storage: the tree is frozen into flat parallel arrays at construction —
// nodes in preorder (so every child index is strictly greater than its
// parent's), each node owning a contiguous slice of the interval arrays.
// Queries run over storage::Span views of those arrays, which lets the
// identical traversal serve a heap-built tree or one whose arrays live in
// an mmap'ed snapshot section (IntervalTree::FromFrozen).

#ifndef FCM_INDEX_INTERVAL_TREE_H_
#define FCM_INDEX_INTERVAL_TREE_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "storage/span.h"

namespace fcm::index {

/// A closed interval [lo, hi] with an integer payload (table id).
struct Interval {
  double lo = 0.0;
  double hi = 0.0;
  int64_t payload = -1;

  bool Overlaps(double qlo, double qhi) const {
    return hi >= qlo && lo <= qhi;
  }
};

/// Static centered interval tree: O(n log n) build, O(log n + k) stabbing
/// and overlap queries. Copy is disabled (the view aliases the owned
/// arrays); move is fine (vector moves keep heap buffers alive).
class IntervalTree {
 public:
  /// The frozen columnar layout. One entry per node in the first five
  /// arrays; the by-lo / by-hi arrays hold every stored interval once
  /// each, sliced per node via slice_begin/slice_count. by_lo is sorted
  /// by lo ascending within a slice, by_hi by hi descending.
  struct Frozen {
    storage::Span<double> center;
    storage::Span<int32_t> left;    // Child node index, -1 = none.
    storage::Span<int32_t> right;
    storage::Span<uint64_t> slice_begin;
    storage::Span<uint64_t> slice_count;
    storage::Span<double> bylo_lo;
    storage::Span<double> bylo_hi;
    storage::Span<int64_t> bylo_payload;
    storage::Span<double> byhi_lo;
    storage::Span<double> byhi_hi;
    storage::Span<int64_t> byhi_payload;
  };

  /// Builds from a set of intervals (copied), then freezes.
  explicit IntervalTree(std::vector<Interval> intervals);

  /// Wraps externally owned frozen arrays (e.g. mmap'ed snapshot
  /// sections) without copying. Validates structural integrity — array
  /// length consistency, child indices strictly descending the preorder
  /// (termination), slice bounds — and fails loudly on any violation.
  /// The backing memory must outlive the returned tree.
  static common::Result<IntervalTree> FromFrozen(const Frozen& frozen);

  IntervalTree(const IntervalTree&) = delete;
  IntervalTree& operator=(const IntervalTree&) = delete;
  IntervalTree(IntervalTree&&) = default;
  IntervalTree& operator=(IntervalTree&&) = default;

  /// All payloads whose interval overlaps [qlo, qhi] (duplicates possible
  /// when one payload was inserted with several intervals).
  std::vector<int64_t> QueryOverlap(double qlo, double qhi) const;

  /// All payloads whose interval contains the point q.
  std::vector<int64_t> QueryPoint(double q) const;

  /// Number of stored intervals.
  size_t size() const { return size_; }

  /// The frozen arrays (for snapshot serialization).
  const Frozen& frozen() const { return view_; }

  /// Approximate memory footprint in bytes (for the Table VIII report).
  /// Counts the frozen arrays whether owned or file-backed.
  size_t MemoryBytes() const;

 private:
  IntervalTree() = default;

  void QueryNode(size_t node, double qlo, double qhi,
                 std::vector<int64_t>* out) const;

  // Owned backing (empty when wrapping external frozen memory).
  std::vector<double> center_;
  std::vector<int32_t> left_;
  std::vector<int32_t> right_;
  std::vector<uint64_t> slice_begin_;
  std::vector<uint64_t> slice_count_;
  std::vector<double> bylo_lo_;
  std::vector<double> bylo_hi_;
  std::vector<int64_t> bylo_payload_;
  std::vector<double> byhi_lo_;
  std::vector<double> byhi_hi_;
  std::vector<int64_t> byhi_payload_;

  Frozen view_;
  size_t size_ = 0;
};

}  // namespace fcm::index

#endif  // FCM_INDEX_INTERVAL_TREE_H_
