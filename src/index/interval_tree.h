// Centered interval tree (paper Sec. VI-A): indexes per-column possible
// value ranges [min(C), sum(C)] so a chart's y-tick range quickly yields
// the datasets with at least one overlapping column.

#ifndef FCM_INDEX_INTERVAL_TREE_H_
#define FCM_INDEX_INTERVAL_TREE_H_

#include <cstdint>
#include <memory>
#include <vector>

namespace fcm::index {

/// A closed interval [lo, hi] with an integer payload (table id).
struct Interval {
  double lo = 0.0;
  double hi = 0.0;
  int64_t payload = -1;

  bool Overlaps(double qlo, double qhi) const {
    return hi >= qlo && lo <= qhi;
  }
};

/// Static centered interval tree: O(n log n) build, O(log n + k) stabbing
/// and overlap queries.
class IntervalTree {
 public:
  /// Builds from a set of intervals (copied).
  explicit IntervalTree(std::vector<Interval> intervals);

  /// All payloads whose interval overlaps [qlo, qhi] (duplicates possible
  /// when one payload was inserted with several intervals).
  std::vector<int64_t> QueryOverlap(double qlo, double qhi) const;

  /// All payloads whose interval contains the point q.
  std::vector<int64_t> QueryPoint(double q) const;

  size_t size() const { return size_; }

  /// Approximate memory footprint in bytes (for the Table VIII report).
  size_t MemoryBytes() const;

 private:
  struct Node {
    double center = 0.0;
    /// Intervals crossing the center, sorted by lo ascending.
    std::vector<Interval> by_lo;
    /// Same intervals sorted by hi descending.
    std::vector<Interval> by_hi;
    std::unique_ptr<Node> left;
    std::unique_ptr<Node> right;
  };

  static std::unique_ptr<Node> Build(std::vector<Interval> intervals);
  static void Query(const Node* node, double qlo, double qhi,
                    std::vector<int64_t>* out);
  static size_t NodeBytes(const Node* node);

  std::unique_ptr<Node> root_;
  size_t size_ = 0;
};

}  // namespace fcm::index

#endif  // FCM_INDEX_INTERVAL_TREE_H_
