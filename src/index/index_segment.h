// Internal layout of one immutable index segment and of an engine epoch
// (the live-ingestion subsystem; see search_engine.h for the public API
// and docs/ARCHITECTURE.md "Epoch lifecycle" for the state machine).
//
// A *segment* is a self-contained, frozen slice of the index covering the
// contiguous table-id range [first_id, first_id + entries.size()): the
// detached per-table encodings, the segment's mean-embedding block (f32
// or int8 + scales), a frozen LSH index whose payloads are *global* table
// ids, and a frozen interval tree. Segments are immutable after
// construction and shared between epochs via shared_ptr — an epoch never
// copies a segment, and a segment's encodings (TableEntry) are themselves
// shared so compaction re-slices the means without duplicating tensors.
//
// An *epoch* is an ordered list of segments (base first, then delta
// segments in ingest order) whose id ranges tile [0, num_tables) exactly.
// Readers pin an epoch (shared_ptr copy) and run every query stage
// against that pin; writers publish a new epoch by swapping the engine's
// pointer. A retired epoch — and any segment no newer epoch references —
// is destroyed when its last pinned reader drains: RCU with refcounts in
// place of grace periods.

#ifndef FCM_INDEX_INDEX_SEGMENT_H_
#define FCM_INDEX_INDEX_SEGMENT_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/fcm_model.h"
#include "index/interval_tree.h"
#include "index/lsh.h"
#include "storage/span.h"
#include "table/table.h"

namespace fcm::index {

/// Everything cached for one table: detached encodings plus the size of
/// its mean-embedding slice. Immutable once built and shared across
/// segments (compaction re-slices mean offsets per segment, so the
/// offset lives in IndexSegment::mean_begin, not here).
struct TableEntry {
  core::DatasetRepresentation encoding;
  std::vector<core::DatasetRepresentation> derivations;
  /// Mean vectors this table contributes (column means first, then each
  /// derivation's), each embed_dim floats.
  size_t num_means = 0;
};

/// One immutable frozen index slice over a contiguous table-id range.
struct IndexSegment {
  /// Global id of entries[0]; entry for table `id` is
  /// entries[id - first_id].
  table::TableId first_id = 0;
  std::vector<std::shared_ptr<const TableEntry>> entries;

  /// Row offset of each entry's mean slice in this segment's means block
  /// (parallel to `entries`; entry i owns rows
  /// [mean_begin[i], mean_begin[i] + entries[i]->num_means)).
  std::vector<uint64_t> mean_begin;

  /// Mean-embedding block: rows x embed_dim floats. Owned after a build
  /// or ingest; a zero-copy view into the snapshot after OpenSnapshot.
  /// Empty in int8 mode (the quantized block is the tier's only storage).
  std::vector<float> means_data;
  storage::Span<float> means_view;

  /// int8 mode: quantized block + per-row f32 scales, same row order.
  std::vector<int8_t> means_q_data;
  storage::Span<int8_t> means_q_view;
  std::vector<float> means_scale_data;
  storage::Span<float> means_scale_view;

  /// Frozen interval tree over this segment's column ranges; payloads are
  /// global table ids.
  std::unique_ptr<IntervalTree> interval_tree;

  /// Frozen LSH over this segment's mean rows; payloads are global table
  /// ids. Hyperplanes are a pure function of (dim, LshConfig) — identical
  /// across every segment of an engine — so a query code probes the same
  /// buckets in every segment, and the union of per-segment hits equals a
  /// from-scratch single-index build's hits exactly.
  std::unique_ptr<RandomHyperplaneLsh> lsh;

  size_t num_tables() const { return entries.size(); }
  table::TableId end_id() const {
    return first_id + static_cast<table::TableId>(entries.size());
  }
  /// Bytes held by this segment's serving-side mean-embedding tier.
  size_t embedding_bytes() const {
    return means_view.size() * sizeof(float) +
           means_q_view.size() * sizeof(int8_t) +
           means_scale_view.size() * sizeof(float);
  }
};

}  // namespace fcm::index

#endif  // FCM_INDEX_INDEX_SEGMENT_H_
