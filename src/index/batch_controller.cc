#include "index/batch_controller.h"

#include <algorithm>

#include "common/check.h"

namespace fcm::index {

const char* AdaptiveBatchController::EventName(Event e) {
  switch (e) {
    case Event::kHold:
      return "hold";
    case Event::kGrow:
      return "grow";
    case Event::kDecay:
      return "decay";
    case Event::kIdleReset:
      return "idle_reset";
  }
  return "unknown";
}

AdaptiveBatchController::AdaptiveBatchController(
    const AdaptiveBatchConfig& config)
    : config_(config) {
  FCM_CHECK_GE(config_.min_delay_ms, 0.0);
  FCM_CHECK_GE(config_.max_delay_ms, config_.min_delay_ms);
  FCM_CHECK_GT(config_.min_batch_size, 0u);
  FCM_CHECK_GE(config_.max_batch_size, config_.min_batch_size);
  FCM_CHECK_GT(config_.growth, 1.0);
  FCM_CHECK_GT(config_.decay, 0.0);
  FCM_CHECK(config_.decay < 1.0);
  FCM_CHECK_GE(config_.backlog_depth, config_.drain_depth);
  FCM_CHECK_GT(config_.sustain, 0u);
  FCM_CHECK_GT(config_.seed_delay_ms, 0.0);
  FCM_CHECK_GT(config_.ewma_alpha, 0.0);
  FCM_CHECK(config_.ewma_alpha <= 1.0);
  CollapseToFloors();
}

void AdaptiveBatchController::CollapseToFloors() {
  window_ms_ = config_.min_delay_ms;
  batch_size_ = config_.min_batch_size;
  backlog_streak_ = 0;
}

BatchDecision AdaptiveBatchController::OnBatchStart(TimePoint now,
                                                    size_t queue_depth) {
  if (!started_) {
    started_ = true;
    origin_ = now;
    last_ = now;
  }
  const double gap_ms =
      std::chrono::duration<double, std::milli>(now - last_).count();
  last_ = now;

  Event event;
  const bool was_at_floors = window_ms_ <= config_.min_delay_ms &&
                             batch_size_ <= config_.min_batch_size;
  const bool idle_gap =
      config_.idle_reset_ms > 0.0 && gap_ms > config_.idle_reset_ms;
  // Any lull invalidates backlog evidence gathered before it — a stale
  // streak must not let the first batch of a fresh burst through the
  // sustain gate.
  if (idle_gap) backlog_streak_ = 0;
  if (idle_gap && !was_at_floors && queue_depth < config_.backlog_depth) {
    // The dispatcher slept on an empty queue through a traffic lull:
    // whatever arrives now is fresh closed-loop traffic and must not pay
    // the grown window one decay step at a time. A deep queue despite
    // the gap is not a lull — it means the pipeline itself is slower
    // than idle_reset_ms per batch under backlog, and collapsing then
    // would oscillate between floors and caps instead of holding the
    // caps, so the backlog branch below handles it.
    CollapseToFloors();
    event = Event::kIdleReset;
    ++counters_.idle_resets;
  } else if (queue_depth >= config_.backlog_depth) {
    ++backlog_streak_;
    if (backlog_streak_ >= config_.sustain) {
      // Multiplicative increase. A zero-floor window cannot leave 0 by
      // multiplication, so growth starts from the seed.
      window_ms_ = std::min(
          config_.max_delay_ms,
          std::max(window_ms_ * config_.growth, config_.seed_delay_ms));
      batch_size_ = std::min(
          config_.max_batch_size,
          std::max(static_cast<size_t>(static_cast<double>(batch_size_) *
                                       config_.growth),
                   batch_size_ + 1));
      event = Event::kGrow;
      ++counters_.grows;
    } else {
      event = Event::kHold;  // Backlog seen but not yet sustained.
      ++counters_.holds;
    }
  } else if (queue_depth <= config_.drain_depth) {
    backlog_streak_ = 0;
    // Multiplicative decrease, snapping to the floor once the window
    // falls below the seed — "toward immediate dispatch", not an
    // asymptote that never gets there.
    window_ms_ = std::max(config_.min_delay_ms, window_ms_ * config_.decay);
    if (window_ms_ < std::max(config_.min_delay_ms, config_.seed_delay_ms)) {
      window_ms_ = config_.min_delay_ms;
    }
    batch_size_ = std::max(
        config_.min_batch_size,
        static_cast<size_t>(static_cast<double>(batch_size_) * config_.decay));
    event = Event::kDecay;
    ++counters_.decays;
  } else {
    backlog_streak_ = 0;
    event = Event::kHold;
    ++counters_.holds;
  }

  BatchDecision decision;
  decision.delay_ms = window_ms_;
  decision.batch_size = batch_size_;
  if (config_.latency_headroom > 0.0 && counters_.ewma_service_ms > 0.0) {
    decision.delay_ms = std::min(
        decision.delay_ms,
        std::max(config_.min_delay_ms,
                 config_.latency_headroom * counters_.ewma_service_ms));
  }

  ++counters_.decisions;
  counters_.max_window_ms =
      std::max(counters_.max_window_ms, decision.delay_ms);
  counters_.max_batch_size =
      std::max(counters_.max_batch_size, decision.batch_size);

  TraceEntry entry;
  entry.t_ms = std::chrono::duration<double, std::milli>(now - origin_).count();
  entry.queue_depth = queue_depth;
  entry.window_ms = window_ms_;
  entry.batch_size = batch_size_;
  entry.event = event;
  if (trace_.size() == kTraceCapacity) trace_.pop_front();
  trace_.push_back(entry);

  return decision;
}

void AdaptiveBatchController::OnBatchServed(double service_seconds) {
  const double ms = std::max(0.0, service_seconds) * 1e3;
  counters_.ewma_service_ms =
      counters_.ewma_service_ms == 0.0
          ? ms
          : (1.0 - config_.ewma_alpha) * counters_.ewma_service_ms +
                config_.ewma_alpha * ms;
}

std::vector<AdaptiveBatchController::TraceEntry>
AdaptiveBatchController::trace() const {
  return {trace_.begin(), trace_.end()};
}

}  // namespace fcm::index
