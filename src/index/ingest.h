// Background compactor for the live-ingestion subsystem (search_engine.h):
// a single thread that watches the engine's delta-segment count and calls
// SearchEngine::Compact when it crosses a threshold, so steady appends
// cannot let per-query segment fan-out grow without bound. Compaction runs
// concurrently with serving traffic — readers keep their pinned epochs —
// and serializes with IngestBatch on the engine's writer lock.

#ifndef FCM_INDEX_INGEST_H_
#define FCM_INDEX_INGEST_H_

#include <chrono>
#include <cstdint>
#include <thread>

#include "common/annotated_mutex.h"
#include "index/search_engine.h"

namespace fcm::index {

struct CompactorOptions {
  /// Compact when the current epoch carries at least this many delta
  /// segments. 1 compacts after every ingest; higher trades per-query
  /// segment fan-out for less rebuild work.
  size_t max_delta_segments = 4;
  /// Fallback poll period: the loop also re-checks this often even
  /// without a Notify(), so a missed wakeup can only delay — never skip —
  /// a due compaction.
  std::chrono::milliseconds poll_interval{200};
};

/// Owns the compaction thread. Start/Stop are idempotent; the destructor
/// stops. Call Notify() after an IngestBatch to wake the loop immediately
/// instead of waiting out the poll interval. The engine must outlive the
/// compactor.
class Compactor {
 public:
  struct Stats {
    uint64_t compactions = 0;   // Compact calls that merged > 1 segment.
    uint64_t noops = 0;         // Wakeups where the epoch was compact.
    uint64_t errors = 0;        // Compact calls that returned non-OK.
  };

  explicit Compactor(SearchEngine* engine, const CompactorOptions& options = {});
  ~Compactor();

  Compactor(const Compactor&) = delete;
  Compactor& operator=(const Compactor&) = delete;

  void Start();
  void Stop();

  /// Wakes the loop now (e.g. right after an IngestBatch).
  void Notify();

  Stats stats() const;

 private:
  void Loop();

  SearchEngine* const engine_;
  const CompactorOptions options_;

  mutable common::Mutex mu_;
  common::CondVar cv_;
  bool running_ FCM_GUARDED_BY(mu_) = false;
  bool stop_ FCM_GUARDED_BY(mu_) = false;
  bool notified_ FCM_GUARDED_BY(mu_) = false;
  Stats stats_ FCM_GUARDED_BY(mu_);

  std::thread thread_;
};

}  // namespace fcm::index

#endif  // FCM_INDEX_INGEST_H_
