// End-to-end query processing (paper Sec. VI-A): optional interval-tree
// and LSH candidate pruning followed by FCM re-ranking of the survivors.

#ifndef FCM_INDEX_SEARCH_ENGINE_H_
#define FCM_INDEX_SEARCH_ENGINE_H_

#include <memory>
#include <vector>

#include "core/fcm_model.h"
#include "index/interval_tree.h"
#include "index/lsh.h"
#include "table/data_lake.h"
#include "vision/extracted_chart.h"

namespace fcm::index {

/// Candidate pruning strategies compared in Table VIII.
enum class IndexStrategy { kNoIndex, kIntervalTree, kLsh, kHybrid };

const char* IndexStrategyName(IndexStrategy s);

/// One ranked search hit.
struct SearchHit {
  table::TableId table_id = table::kInvalidTableId;
  double score = 0.0;
};

/// Per-query statistics for the efficiency study.
struct QueryStats {
  size_t candidates_scored = 0;
  double seconds = 0.0;
};

/// Index build statistics (Table VIII's build time / memory columns).
struct BuildStats {
  double interval_build_seconds = 0.0;
  double lsh_build_seconds = 0.0;
  double encode_seconds = 0.0;
  size_t interval_memory_bytes = 0;
  size_t lsh_memory_bytes = 0;
};

/// Engine construction options.
struct SearchEngineOptions {
  LshConfig lsh;
  /// Numerical x-axis generalization (paper Sec. VI-B): for every table,
  /// also index its T' derivations — the table re-sorted by each column
  /// treated as a candidate x axis and interpolated onto an even grid —
  /// and score a table as the max over its derivations. Off by default
  /// (the paper treats uneven numerical x axes as a rare case).
  bool index_x_derivations = false;
  /// Grid size for the derivations.
  int x_derivation_grid = 128;
};

/// Owns the per-table FCM encodings (computed once, detached) plus both
/// index structures; model and lake must outlive the engine.
class SearchEngine {
 public:
  SearchEngine(const core::FcmModel* model, const table::DataLake* lake);

  /// Encodes every dataset and builds the interval tree + LSH index.
  void Build(const LshConfig& lsh_config = {});

  /// Build with full options (x-derivation indexing etc.).
  void BuildWithOptions(const SearchEngineOptions& options);

  /// Top-k search with the chosen pruning strategy.
  std::vector<SearchHit> Search(const vision::ExtractedChart& query, int k,
                                IndexStrategy strategy,
                                QueryStats* stats = nullptr) const;

  const BuildStats& build_stats() const { return build_stats_; }

  /// Mean embedding of a [N, K] representation (index key derivation:
  /// "averaging all representations of segments", Sec. VI-A).
  static std::vector<float> MeanEmbedding(const nn::Tensor& rep);

 private:
  std::vector<table::TableId> Candidates(
      const vision::ExtractedChart& query,
      const core::ChartRepresentation& chart_rep,
      IndexStrategy strategy) const;

  const core::FcmModel* model_;
  const table::DataLake* lake_;
  SearchEngineOptions options_;
  std::vector<core::DatasetRepresentation> encodings_;  // Indexed by id.
  /// Per table id: encodings of its x-axis derivations (empty unless
  /// index_x_derivations).
  std::vector<std::vector<core::DatasetRepresentation>> derivations_;
  std::unique_ptr<IntervalTree> interval_tree_;
  std::unique_ptr<RandomHyperplaneLsh> lsh_;
  BuildStats build_stats_;
};

}  // namespace fcm::index

#endif  // FCM_INDEX_SEARCH_ENGINE_H_
