// End-to-end query processing (paper Sec. VI-A): optional interval-tree
// and LSH candidate pruning followed by FCM re-ranking of the survivors.
//
// Heavy stages fan out over a fixed thread pool: per-table encoding and
// sharded LSH insertion at build time, LSH candidate generation and
// per-candidate scoring at query time. Parallel execution is bit-identical
// to the serial path — tables and candidates are scored independently,
// consumed in deterministic order, and candidate ids are sorted before
// scoring — so rankings (including tie order) never depend on the thread
// count, the LSH shard count, or hash-set iteration order.
//
// Live ingestion (the mutable-data-lake tentpole): a built engine is no
// longer frozen for life. IngestBatch appends new tables as immutable
// *delta segments* (incremental sharded LSH insert + an interval-tree
// delta over just the new tables) and publishes a new *epoch*; Compact
// merges every segment into a fresh frozen base. Readers pin an epoch for
// the duration of a Search / SearchBatch / async request — an O(1)
// shared_ptr copy, never a lock held across query work — and retired
// epochs are destroyed when their last pinned reader drains (RCU with
// refcounts). The determinism contract is restated per epoch: any pinned
// epoch ranks bit-identically to a from-scratch Build over the same
// logical tables, across thread counts, strategies, batching, and async
// coalescing; ingestion and compaction never perturb a pinned epoch's
// results (proven by tests/ingest_test.cc).

#ifndef FCM_INDEX_SEARCH_ENGINE_H_
#define FCM_INDEX_SEARCH_ENGINE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/annotated_mutex.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "core/fcm_model.h"
#include "index/interval_tree.h"
#include "index/lsh.h"
#include "storage/snapshot.h"
#include "storage/span.h"
#include "table/data_lake.h"
#include "vision/extracted_chart.h"

namespace fcm::index {

/// Candidate pruning strategies compared in Table VIII.
enum class IndexStrategy { kNoIndex, kIntervalTree, kLsh, kHybrid };

const char* IndexStrategyName(IndexStrategy s);

/// Storage precision of the mean-embedding block. kInt8 stores symmetric
/// scale-per-row int8 codes (common/quantize.h) instead of f32 — about
/// 0.25x the bytes plus one f32 scale per row — and scores the
/// mean-similarity prefilter through the exact int8 SIMD kernels.
/// Candidate sets may legitimately differ from a kFloat32 engine (the
/// quantized means are what the LSH indexes and the prefilter ranks), but
/// within one precision mode the full determinism contract holds
/// unchanged. The final FCM relevance stage stays float either way.
enum class EmbeddingPrecision { kFloat32 = 0, kInt8 = 1 };

const char* EmbeddingPrecisionName(EmbeddingPrecision p);

/// One ranked search hit.
struct SearchHit {
  table::TableId table_id = table::kInvalidTableId;
  double score = 0.0;
};

/// Per-query statistics for the efficiency study.
struct QueryStats {
  size_t candidates_scored = 0;
  /// Time attributable to this query alone. Search reports the query's
  /// full wall time; SearchBatch reports the summed scoring time of the
  /// query's own candidates (its pairs may run on several workers at once,
  /// so this is aggregate CPU time, not elapsed time — and never the whole
  /// batch's wall clock, which used to over-count per-query cost).
  double seconds = 0.0;
  /// Wall time of the call that served this query: == seconds for Search,
  /// the shared whole-batch wall time for every query of a SearchBatch.
  double batch_seconds = 0.0;
};

/// Index build statistics (Table VIII's build time / memory columns).
struct BuildStats {
  double interval_build_seconds = 0.0;
  double lsh_build_seconds = 0.0;
  double encode_seconds = 0.0;
  size_t interval_memory_bytes = 0;
  size_t lsh_memory_bytes = 0;
  /// Shard count the LSH index resolved to (power of two; may differ from
  /// the requested LshConfig::num_shards).
  int lsh_shards = 1;
  /// Bytes held by the serving-side mean-embedding tier: the f32 block in
  /// kFloat32 mode, the int8 code block plus its per-row f32 scale vector
  /// in kInt8 mode (the f32 block is dropped after the LSH build).
  size_t embedding_bytes = 0;
};

/// Statistics of one IngestBatch call.
struct IngestStats {
  /// Tables appended by this batch.
  size_t tables = 0;
  /// Epoch id published by this batch (monotone; the base build is 0).
  uint64_t epoch_id = 0;
  /// Delta segments alive in the published epoch (base excluded).
  size_t delta_segments = 0;
  double encode_seconds = 0.0;
  double lsh_seconds = 0.0;
  double interval_seconds = 0.0;
};

/// Statistics of one Compact call.
struct CompactStats {
  /// Segments merged (1 means compaction was a no-op: already compact).
  size_t segments_merged = 0;
  /// Epoch id published (unchanged for a no-op).
  uint64_t epoch_id = 0;
  double seconds = 0.0;
};

/// Engine construction options.
struct SearchEngineOptions {
  /// LSH settings; `lsh.num_shards <= 0` resolves to the engine's thread
  /// pool size so build inserts fan out across every worker.
  LshConfig lsh;
  /// Numerical x-axis generalization (paper Sec. VI-B): for every table,
  /// also index its T' derivations — the table re-sorted by each column
  /// treated as a candidate x axis and interpolated onto an even grid —
  /// and score a table as the max over its derivations. Off by default
  /// (the paper treats uneven numerical x axes as a rare case).
  bool index_x_derivations = false;
  /// Grid size for the derivations.
  int x_derivation_grid = 128;
  /// Worker threads for build-time encoding and query-time scoring;
  /// <= 0 uses the hardware concurrency, 1 runs fully serial.
  int num_threads = 0;
  /// Storage precision of the mean-embedding block (see
  /// EmbeddingPrecision). kInt8 quantizes at Freeze() time and drops the
  /// f32 block, cutting the tier to ~0.28x of its f32 bytes.
  EmbeddingPrecision precision = EmbeddingPrecision::kFloat32;
  /// Mean-similarity prefilter: when > 0, CandidateStage keeps only the
  /// `mean_prefilter` candidates whose mean embeddings score highest
  /// against the query's line means (max over line x row dot products —
  /// f32 kernels in kFloat32 mode, the exact int8 kernels in kInt8 mode)
  /// before the expensive FCM scoring stage. 0 (default) scores every
  /// candidate, exactly the pre-prefilter behavior. Survivors are ranked
  /// (similarity desc, id asc) then re-sorted ascending, so the
  /// determinism contract is unchanged for a fixed configuration.
  int mean_prefilter = 0;
};

/// Options for SearchEngine::OpenSnapshot.
struct SnapshotOpenOptions {
  /// Worker threads for query-time scoring; <= 0 uses the hardware
  /// concurrency.
  int num_threads = 0;
  /// Serve the numeric index arrays straight out of a read-only mmap of
  /// the snapshot file (zero-copy); false reads the file onto the heap.
  bool use_mmap = true;
};

struct IndexSegment;  // Internal frozen slice; see index/index_segment.h.

/// One immutable index generation: an ordered list of frozen segments
/// (base first, deltas in ingest order) tiling table ids [0, num_tables).
/// Opaque to callers — pin one with SearchEngine::PinEpoch and pass it to
/// Search / SearchBatch / the stages to hold a consistent view across
/// concurrent ingestion and compaction. Destroying the last pin retires
/// the epoch (and any segment no newer epoch shares).
class EngineEpoch {
 public:
  ~EngineEpoch();

  /// Monotone generation number: 0 for the base build, +1 per published
  /// IngestBatch / Compact.
  uint64_t id() const { return id_; }
  /// Logical tables searchable in this epoch.
  size_t num_tables() const { return num_tables_; }
  /// Frozen segments (>= 1; 1 means compact).
  size_t num_segments() const { return segments_.size(); }

 private:
  friend class SearchEngine;
  EngineEpoch() = default;

  uint64_t id_ = 0;
  size_t num_tables_ = 0;
  std::vector<std::shared_ptr<const IndexSegment>> segments_;
};

/// A reader's hold on one epoch. Copy freely; O(1).
using EpochPin = std::shared_ptr<const EngineEpoch>;

/// Owns the per-table FCM encodings (computed once, detached) plus both
/// index structures; model and lake must outlive the engine (the lake is
/// only read during Build — ingested tables are encoded and dropped).
///
/// Lifecycle: Build/BuildWithOptions encodes the lake and freezes every
/// index structure into flat columnar arrays (LSH CSR buckets, interval
/// tree node arrays, one contiguous mean-embedding block), published as
/// epoch 0. IngestBatch appends delta segments and publishes new epochs;
/// Compact merges all segments back into one frozen base. SaveSnapshot
/// persists a compact epoch; OpenSnapshot serves a saved engine with the
/// numeric arrays read zero-copy out of an mmap'ed snapshot — and ranks
/// bit-identically to the engine that saved it under Search, SearchBatch,
/// and async coalescing, because both run the same query code over the
/// same frozen views.
///
/// Thread safety: all query-side methods (Search, SearchBatch, the
/// stages, PinEpoch, stats accessors) are const and safe to call
/// concurrently with each other AND with the writer-side methods
/// (IngestBatch, Compact), which serialize among themselves internally.
class SearchEngine {
 public:
  SearchEngine(const core::FcmModel* model, const table::DataLake* lake);
  ~SearchEngine();

  /// Encodes every dataset and builds the interval tree + LSH index.
  void Build(const LshConfig& lsh_config = {});

  /// Build with full options (x-derivation indexing, thread count etc.).
  void BuildWithOptions(const SearchEngineOptions& options);

  // ---- Live ingestion (writer side) ----

  /// Appends `tables` to the served index as one immutable delta segment
  /// and publishes a new epoch. The tables are assigned the next dense
  /// ids (num_tables(), num_tables()+1, ...), encoded with the engine's
  /// model, inserted into a fresh sharded LSH + interval-tree delta, and
  /// dropped — only their encodings are retained. In-flight readers keep
  /// their pinned epoch; new pins see the appended tables. Writers
  /// (IngestBatch / Compact) serialize among themselves; concurrent
  /// queries never block. Requires a built engine; an empty batch is a
  /// no-op returning OK.
  common::Status IngestBatch(std::vector<table::Table> tables,
                             IngestStats* stats = nullptr);

  /// Merges every segment of the current epoch into one fresh frozen
  /// base — the means blocks re-concatenated in table order and the LSH /
  /// interval tree rebuilt exactly as a from-scratch Build over the same
  /// logical tables would, so rankings are unchanged (and SaveSnapshot
  /// works again). Encodings are shared, never recomputed. A no-op when
  /// the epoch is already compact. Publishes a new epoch; pinned readers
  /// of older epochs are unaffected.
  common::Status Compact(CompactStats* stats = nullptr);

  /// Pins the current epoch: an O(1) shared_ptr copy readers hold for at
  /// most the duration of a request. Never returns null on a built
  /// engine.
  EpochPin PinEpoch() const;

  /// Logical tables in the current epoch (== lake size until the first
  /// IngestBatch).
  size_t num_tables() const;

  /// Delta segments in the current epoch (0 when compact).
  size_t num_delta_segments() const;

  /// Current epoch id (0 after Build, +1 per published ingest/compact).
  uint64_t epoch_id() const;

  /// Persists the built engine — model weights, frozen LSH + interval
  /// tree arrays, mean-embedding block, column encodings — as one
  /// versioned, checksummed snapshot file (see storage/snapshot.h).
  /// Atomic: a crash mid-save never leaves a torn file. Requires a built
  /// engine whose current epoch is compact (call Compact() after
  /// ingesting; FailedPrecondition otherwise).
  common::Status SaveSnapshot(const std::string& path) const;

  /// Opens a snapshot for serving. The returned engine is fully
  /// self-contained (it owns the model reconstructed from the snapshot,
  /// needs no data lake) and answers every query bit-identically to the
  /// engine that saved the snapshot. LSH buckets, interval-tree arrays,
  /// hyperplanes, and mean embeddings are served zero-copy from the mmap;
  /// column-encoding tensors are materialized at open (the nn substrate
  /// owns its buffers). The opened engine accepts IngestBatch like a
  /// built one. Any corruption or version mismatch fails loudly.
  static common::Result<std::unique_ptr<SearchEngine>> OpenSnapshot(
      const std::string& path,
      const SnapshotOpenOptions& options = SnapshotOpenOptions());

  /// Top-k search with the chosen pruning strategy. `k <= 0` asks for
  /// nothing and returns an empty ranking (candidates are still pruned and
  /// counted in `stats`). `epoch`, when given, serves the query from that
  /// pinned epoch; null pins the current one for the duration of the
  /// call.
  std::vector<SearchHit> Search(const vision::ExtractedChart& query, int k,
                                IndexStrategy strategy,
                                QueryStats* stats = nullptr,
                                const EpochPin& epoch = nullptr) const;

  /// Batched top-k search: answers every query with the same semantics as
  /// Search (identical hits and scores; `k <= 0` yields empty rankings)
  /// while amortizing thread-pool dispatch across the batch — chart
  /// encoding, LSH candidate generation (one QueryBatch over every
  /// query's line embeddings), candidate scoring, and ranking each fan
  /// out once for the whole batch. `stats`, when given, receives one entry
  /// per query (per-query scoring seconds plus the shared batch_seconds;
  /// see QueryStats). One epoch — `epoch` or a fresh pin — serves the
  /// whole batch.
  std::vector<std::vector<SearchHit>> SearchBatch(
      const std::vector<vision::ExtractedChart>& queries, int k,
      IndexStrategy strategy, std::vector<QueryStats>* stats = nullptr,
      const EpochPin& epoch = nullptr) const;

  // ---- Serving-pipeline stages ----
  // Search and SearchBatch are thin compositions of the three stages
  // below, and AsyncSearchService runs them as overlapping pipeline
  // stages on micro-batches of queued requests. Because every path goes
  // through the same stage code with per-request strategy and k, a
  // request's ranking is bit-identical however requests are grouped into
  // stage calls. Stages are const and safe to call concurrently from
  // several threads (the shared pool accepts concurrent owners). The
  // index-consulting stages take an optional pinned epoch; a caller
  // serving one request across several stage calls (the async pipeline)
  // passes the same pin to each so the request sees one consistent index
  // generation end to end.

  /// Wall seconds one batch spent inside each serving stage. Serving
  /// telemetry: AsyncSearchService feeds the per-batch total to its
  /// adaptive micro-batching controller (see index/batch_controller.h),
  /// and the tuning guide in docs/SERVING.md reads these to attribute
  /// latency to a stage. Purely observational — timing never changes
  /// what a stage computes.
  struct StageTiming {
    double encode_seconds = 0.0;
    double candidate_seconds = 0.0;
    double score_seconds = 0.0;
    double total_seconds() const {
      return encode_seconds + candidate_seconds + score_seconds;
    }
  };

  /// One request's stage state. `query` must outlive the stage calls.
  struct StagedQuery {
    const vision::ExtractedChart* query = nullptr;
    IndexStrategy strategy = IndexStrategy::kNoIndex;
    int k = 0;
    /// Caller-assigned identity carried through the stages, used only as
    /// the key of the per-query failpoint sites (common/failpoint.h) —
    /// AsyncSearchService sets it to the request id so a fault schedule
    /// can poison exactly one request of a coalesced micro-batch.
    /// Search/SearchBatch leave it 0. Never affects results.
    uint64_t tag = 0;
    core::ChartRepresentation chart_rep;           // Stage 1 output.
    std::vector<std::vector<int64_t>> line_hits;   // Stage 2, LSH probes.
    std::vector<table::TableId> candidates;        // Stage 2 output.
  };

  /// Stage 1 — chart encoding: fills chart_rep for every staged query in
  /// one pool dispatch. Queries without lines stay empty. `timing`, when
  /// given, receives the stage's wall time in encode_seconds.
  void EncodeStage(std::vector<StagedQuery>* staged,
                   StageTiming* timing = nullptr) const;

  /// Stage 2 — candidate generation: one sharded LSH QueryBatch per
  /// segment of the pinned epoch over every staged query that consults
  /// the LSH index, then the per-query merge (sorted ids, identical to
  /// the single-query path). `timing`, when given, receives the stage's
  /// wall time in candidate_seconds.
  void CandidateStage(std::vector<StagedQuery>* staged,
                      StageTiming* timing = nullptr,
                      const EpochPin& epoch = nullptr) const;

  /// Stage 3 — scoring + ranking: one flat dispatch over all
  /// (query, candidate) pairs, then per-query top-k assembly. `stats`,
  /// when given, must be parallel to *staged and receives
  /// candidates_scored plus per-query scoring seconds (batch_seconds is
  /// left for the caller to fill). `timing`, when given, receives the
  /// stage's wall time in score_seconds.
  std::vector<std::vector<SearchHit>> ScoreStage(
      const std::vector<StagedQuery>& staged,
      std::vector<QueryStats>* stats = nullptr,
      StageTiming* timing = nullptr,
      const EpochPin& epoch = nullptr) const;

  const BuildStats& build_stats() const { return build_stats_; }

  /// Storage precision of the mean-embedding block (build option, or the
  /// value recorded in the snapshot for an opened engine).
  EmbeddingPrecision precision() const { return options_.precision; }

  /// Bytes held by the serving-side mean-embedding tier across every
  /// segment of the current epoch (see BuildStats::embedding_bytes).
  size_t embedding_bytes() const;

  /// Mean embedding of a [N, K] representation (index key derivation:
  /// "averaging all representations of segments", Sec. VI-A).
  static std::vector<float> MeanEmbedding(const nn::Tensor& rep);

 private:
  /// Candidate ids for one query under `strategy`, sorted ascending:
  /// RankHits breaks score ties by candidate position, so a sorted order
  /// is what keeps rankings reproducible across runs and platforms.
  /// `line_hits` points at `num_line_hits` per-line LSH payload lists
  /// (one per chart line, merged across the epoch's segments by
  /// CandidateStage); required — possibly empty — for the LSH and hybrid
  /// strategies, ignored otherwise.
  std::vector<table::TableId> Candidates(
      const EngineEpoch& epoch, const vision::ExtractedChart& query,
      IndexStrategy strategy, const std::vector<int64_t>* line_hits = nullptr,
      size_t num_line_hits = 0) const;

  /// Rel'(V, T) for one candidate (max over the table's derivations), or
  /// false when the table has no encodable columns.
  bool ScoreCandidate(const EngineEpoch& epoch,
                      const core::ChartRepresentation& chart_rep,
                      const vision::ExtractedChart& query, table::TableId id,
                      double* score) const;

  /// Mean-similarity prefilter (options_.mean_prefilter > 0): keeps the
  /// candidates whose mean embeddings score highest against the query's
  /// `num_lines` line means (similarity desc, id asc), re-sorted
  /// ascending. Scores via the precision mode's kernels — f32 dot, or
  /// quantize-the-query + the exact int8 GemmI8F32 — reading each
  /// candidate's rows from its owning segment. Thread-safe (called from
  /// CandidateStage's per-query fan-out).
  void PrefilterCandidates(const EngineEpoch& epoch,
                           const std::vector<float>* line_means,
                           size_t num_lines,
                           std::vector<table::TableId>* candidates) const;

  /// Encodes `tables` (global ids first_id, first_id+1, ...) into one
  /// frozen segment: entries + means block (+ int8 tier), sharded LSH
  /// insert in table order, interval tree. The shared construction path
  /// of Build and IngestBatch — a delta segment is built exactly like a
  /// base, just over fewer tables.
  std::shared_ptr<const IndexSegment> BuildSegment(
      const std::vector<table::Table>& tables, table::TableId first_id,
      double* encode_seconds, double* interval_seconds,
      double* lsh_seconds) const;

  /// Rebuilds the interval tree + LSH of `segment` from its entries and
  /// means views (segment.means arrays must already be populated).
  /// Factored out of BuildSegment for Compact, which re-slices existing
  /// encodings instead of encoding.
  void BuildSegmentIndexes(IndexSegment* segment, double* interval_seconds,
                           double* lsh_seconds) const;

  /// Atomically publishes `epoch` as the current generation.
  void PublishEpoch(std::shared_ptr<const EngineEpoch> epoch);

  const core::FcmModel* model_;
  const table::DataLake* lake_;  // Null for a snapshot-opened engine.
  SearchEngineOptions options_;
  std::unique_ptr<common::ThreadPool> pool_;
  BuildStats build_stats_;

  /// The current epoch, swapped under epoch_mu_ by writers and copied
  /// under it by PinEpoch. The lock is held only for the pointer
  /// copy/swap — never across query or build work — which is what makes
  /// reader pinning O(1) and writer publication wait-free for readers.
  mutable common::Mutex epoch_mu_;
  std::shared_ptr<const EngineEpoch> epoch_ FCM_GUARDED_BY(epoch_mu_);

  /// Serializes writers (IngestBatch / Compact) so segment construction
  /// and epoch numbering are single-writer; never held by readers.
  common::Mutex ingest_mu_;

  /// Snapshot-opened engines own their model and keep the reader (and
  /// with it the mmap every frozen view points into) alive.
  std::unique_ptr<core::FcmModel> owned_model_;
  std::unique_ptr<storage::SnapshotReader> snapshot_;
};

}  // namespace fcm::index

#endif  // FCM_INDEX_SEARCH_ENGINE_H_
