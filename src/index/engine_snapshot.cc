// SearchEngine snapshot persistence: SaveSnapshot serializes the frozen
// engine state into the storage/snapshot container; OpenSnapshot rebuilds
// a serving engine on top of it. The numeric index arrays — LSH
// hyperplanes and CSR buckets, interval-tree node/interval arrays, the
// mean-embedding block — are written as raw typed sections and served as
// zero-copy spans over the mmap'ed file. Column-encoding tensors are the
// one exception: the nn substrate owns its float buffers, so they are
// materialized (copied out of the mapping) at open; see
// docs/ARCHITECTURE.md.
//
// Section layout (names are the contract; the "meta" and "enc.index"
// streams use common::BinaryWriter framing):
//   meta            engine + model + LSH configuration, table count;
//                   ends with an appended engine-meta v2 block (precision,
//                   mean_prefilter) — absent in pre-quantization
//                   snapshots, which still open with f32 defaults
//   model.state     FcmModel parameters (nn::Module::SaveState)
//   means.f32       mean-embedding block, num_means x embed_dim
//                   (kFloat32 engines only)
//   means.i8        quantized mean-embedding block, num_means x embed_dim
//                   int8 codes (kInt8 engines only; replaces means.f32)
//   means.scale.f32 per-row quantization scales, num_means (kInt8 only)
//   lsh.planes.f32  hyperplane block
//   lsh.gbegin.u64 / lsh.codes.u64 / lsh.pbegin.u64 / lsh.pay.i64
//   it.center.f64 / it.left.i32 / it.right.i32 / it.begin.u64 /
//   it.count.u64 / it.lo.{lo,hi}.f64 / it.lo.pay.i64 /
//   it.hi.{lo,hi}.f64 / it.hi.pay.i64
//   enc.index       per-table encoding structure + mean slice
//   enc.rep.f32 / enc.desc.f32 / enc.da.f32   flat float blocks consumed
//                   in canonical order (table id asc, columns, then
//                   derivations), checked for exact consumption

#include <utility>

#include "common/serialize.h"
#include "index/index_segment.h"
#include "index/search_engine.h"

namespace fcm::index {

namespace {

constexpr const char* kMetaSection = "meta";
constexpr const char* kModelSection = "model.state";
constexpr const char* kMeansSection = "means.f32";
constexpr const char* kMeansQSection = "means.i8";
constexpr const char* kMeansScaleSection = "means.scale.f32";

/// Version of the engine-meta block appended to the meta stream. v1
/// (pre-quantization) snapshots end right after the LSH item count; v2
/// appends {version, precision, mean_prefilter}.
constexpr uint32_t kEngineMetaVersion = 2;

common::Status Bad(const std::string& what) {
  return common::Status::InvalidArgument("engine snapshot: " + what);
}

void WriteConfig(common::BinaryWriter* w, const core::FcmConfig& c) {
  w->WriteU32(static_cast<uint32_t>(c.embed_dim));
  w->WriteU32(static_cast<uint32_t>(c.num_heads));
  w->WriteU32(static_cast<uint32_t>(c.num_layers));
  w->WriteU32(static_cast<uint32_t>(c.mlp_hidden));
  w->WriteU32(static_cast<uint32_t>(c.strip_height));
  w->WriteU32(static_cast<uint32_t>(c.strip_width));
  w->WriteU32(static_cast<uint32_t>(c.line_segment_width));
  w->WriteU32(static_cast<uint32_t>(c.column_length));
  w->WriteU32(static_cast<uint32_t>(c.data_segment_size));
  w->WriteU32(c.use_da_layers ? 1 : 0);
  w->WriteU32(static_cast<uint32_t>(c.beta));
  w->WriteU32(static_cast<uint32_t>(c.moe_gate_hidden));
  w->WriteU32(c.use_hcman ? 1 : 0);
  w->WriteU32(static_cast<uint32_t>(c.matcher_hidden));
  w->WriteU32(static_cast<uint32_t>(c.descriptor_size));
  w->WriteF32(c.learning_rate);
  w->WriteU32(static_cast<uint32_t>(c.epochs));
  w->WriteU32(static_cast<uint32_t>(c.batch_size));
  w->WriteU32(static_cast<uint32_t>(c.num_negatives));
  w->WriteU64(c.seed);
}

common::Status ReadConfig(common::BinaryReader* r, core::FcmConfig* c) {
  auto u32 = [&](int* out) -> common::Status {
    auto v = r->ReadU32();
    if (!v.ok()) return v.status();
    *out = static_cast<int>(v.value());
    return common::Status::OK();
  };
  auto b32 = [&](bool* out) -> common::Status {
    auto v = r->ReadU32();
    if (!v.ok()) return v.status();
    *out = v.value() != 0;
    return common::Status::OK();
  };
  FCM_RETURN_IF_ERROR(u32(&c->embed_dim));
  FCM_RETURN_IF_ERROR(u32(&c->num_heads));
  FCM_RETURN_IF_ERROR(u32(&c->num_layers));
  FCM_RETURN_IF_ERROR(u32(&c->mlp_hidden));
  FCM_RETURN_IF_ERROR(u32(&c->strip_height));
  FCM_RETURN_IF_ERROR(u32(&c->strip_width));
  FCM_RETURN_IF_ERROR(u32(&c->line_segment_width));
  FCM_RETURN_IF_ERROR(u32(&c->column_length));
  FCM_RETURN_IF_ERROR(u32(&c->data_segment_size));
  FCM_RETURN_IF_ERROR(b32(&c->use_da_layers));
  FCM_RETURN_IF_ERROR(u32(&c->beta));
  FCM_RETURN_IF_ERROR(u32(&c->moe_gate_hidden));
  FCM_RETURN_IF_ERROR(b32(&c->use_hcman));
  FCM_RETURN_IF_ERROR(u32(&c->matcher_hidden));
  FCM_RETURN_IF_ERROR(u32(&c->descriptor_size));
  auto lr = r->ReadF32();
  if (!lr.ok()) return lr.status();
  c->learning_rate = lr.value();
  FCM_RETURN_IF_ERROR(u32(&c->epochs));
  FCM_RETURN_IF_ERROR(u32(&c->batch_size));
  FCM_RETURN_IF_ERROR(u32(&c->num_negatives));
  auto seed = r->ReadU64();
  if (!seed.ok()) return seed.status();
  c->seed = seed.value();
  return common::Status::OK();
}

/// Serializes one column's structure into the index stream and appends
/// its float payloads to the flat blocks.
void WriteColumn(const core::ColumnEncoding& enc, common::BinaryWriter* idx,
                 std::vector<float>* rep, std::vector<float>* desc,
                 std::vector<float>* da) {
  idx->WriteI64(enc.column_index);
  idx->WriteF64(enc.range_lo);
  idx->WriteF64(enc.range_hi);
  idx->WriteU64(static_cast<uint64_t>(enc.representation.dim(0)));
  idx->WriteU64(static_cast<uint64_t>(enc.representation.dim(1)));
  idx->WriteU64(enc.descriptor.size());
  idx->WriteU64(enc.da_descriptors.size());
  for (const auto& d : enc.da_descriptors) idx->WriteU64(d.size());
  const auto& data = enc.representation.data();
  rep->insert(rep->end(), data.begin(), data.end());
  desc->insert(desc->end(), enc.descriptor.begin(), enc.descriptor.end());
  for (const auto& d : enc.da_descriptors) {
    da->insert(da->end(), d.begin(), d.end());
  }
}

/// Cursor-tracked consumption of the flat float blocks at open time.
struct BlockCursor {
  storage::Span<float> block;
  size_t pos = 0;
  const char* name;

  common::Result<std::vector<float>> Take(size_t n) {
    if (n > block.size() - pos || pos > block.size()) {
      return Bad(std::string(name) + " block exhausted");
    }
    std::vector<float> out(block.data() + pos, block.data() + pos + n);
    pos += n;
    return out;
  }
};

common::Status ReadColumn(common::BinaryReader* idx, BlockCursor* rep,
                          BlockCursor* desc, BlockCursor* da,
                          core::ColumnEncoding* out) {
  auto ci = idx->ReadI64();
  auto lo = idx->ReadF64();
  auto hi = idx->ReadF64();
  auto rows = idx->ReadU64();
  auto cols = idx->ReadU64();
  auto desc_len = idx->ReadU64();
  auto num_da = idx->ReadU64();
  for (const auto* r :
       {!ci.ok() ? &ci.status() : nullptr, !lo.ok() ? &lo.status() : nullptr,
        !hi.ok() ? &hi.status() : nullptr,
        !rows.ok() ? &rows.status() : nullptr,
        !cols.ok() ? &cols.status() : nullptr,
        !desc_len.ok() ? &desc_len.status() : nullptr,
        !num_da.ok() ? &num_da.status() : nullptr}) {
    if (r != nullptr) return *r;
  }
  out->column_index = static_cast<int>(ci.value());
  out->range_lo = lo.value();
  out->range_hi = hi.value();
  if (rows.value() > (1u << 24) || cols.value() > (1u << 24)) {
    return Bad("implausible representation shape");
  }
  const size_t n = static_cast<size_t>(rows.value()) *
                   static_cast<size_t>(cols.value());
  auto rep_values = rep->Take(n);
  if (!rep_values.ok()) return rep_values.status();
  out->representation = nn::Tensor::FromVector(
      {static_cast<int>(rows.value()), static_cast<int>(cols.value())},
      std::move(rep_values).ValueOrDie());
  auto desc_values = desc->Take(desc_len.value());
  if (!desc_values.ok()) return desc_values.status();
  out->descriptor = std::move(desc_values).ValueOrDie();
  out->da_descriptors.clear();
  for (uint64_t d = 0; d < num_da.value(); ++d) {
    auto len = idx->ReadU64();
    if (!len.ok()) return len.status();
    auto values = da->Take(len.value());
    if (!values.ok()) return values.status();
    out->da_descriptors.push_back(std::move(values).ValueOrDie());
  }
  return common::Status::OK();
}

}  // namespace

common::Status SearchEngine::SaveSnapshot(const std::string& path) const {
  const EpochPin pin = PinEpoch();
  if (pin == nullptr) {
    return common::Status::FailedPrecondition(
        "engine snapshot: engine is not built");
  }
  // The snapshot format is a single frozen base; a multi-segment epoch
  // must be merged first. (Compact is cheap relative to encoding — only
  // the means blocks move and the LSH / tree rebuild.)
  if (pin->num_segments() != 1) {
    return common::Status::FailedPrecondition(
        "engine snapshot: epoch has " + std::to_string(pin->num_segments()) +
        " segments; call Compact() before SaveSnapshot");
  }
  const IndexSegment& segment = *pin->segments_.front();
  FCM_CHECK(segment.lsh->frozen());
  storage::SnapshotWriter writer;

  // meta.
  common::BinaryWriter meta;
  meta.WriteU64(segment.entries.size());
  WriteConfig(&meta, model_->config());
  meta.WriteU32(options_.index_x_derivations ? 1 : 0);
  meta.WriteU32(static_cast<uint32_t>(options_.x_derivation_grid));
  meta.WriteU32(static_cast<uint32_t>(options_.lsh.num_bits));
  meta.WriteU32(static_cast<uint32_t>(options_.lsh.num_tables));
  meta.WriteU32(options_.lsh.probe_hamming1 ? 1 : 0);
  meta.WriteU64(options_.lsh.seed);
  meta.WriteU32(static_cast<uint32_t>(segment.lsh->num_shards()));
  meta.WriteU64(segment.lsh->num_items());
  // Engine-meta v2 block, appended so pre-quantization readers of the
  // prefix layout stay compatible (and v1 snapshots open with defaults).
  meta.WriteU32(kEngineMetaVersion);
  meta.WriteU32(static_cast<uint32_t>(options_.precision));
  meta.WriteU32(static_cast<uint32_t>(options_.mean_prefilter));
  writer.AddSection(kMetaSection, meta.buffer().data(), meta.buffer().size());

  // Model parameters.
  common::BinaryWriter model_state;
  model_->SaveState(&model_state);
  writer.AddSection(kModelSection, model_state.buffer().data(),
                    model_state.buffer().size());

  // Mean-embedding block: the precision mode's storage, nothing else —
  // an int8 snapshot carries no f32 means at all (the footprint win
  // persists to disk and to the mmap).
  if (options_.precision == EmbeddingPrecision::kInt8) {
    writer.AddTypedSection(kMeansQSection, segment.means_q_view);
    writer.AddTypedSection(kMeansScaleSection, segment.means_scale_view);
  } else {
    writer.AddTypedSection(kMeansSection, segment.means_view);
  }

  // Frozen LSH.
  const auto& lf = segment.lsh->frozen_view();
  writer.AddTypedSection("lsh.planes.f32", lf.hyperplanes);
  writer.AddTypedSection("lsh.gbegin.u64", lf.group_begin);
  writer.AddTypedSection("lsh.codes.u64", lf.codes);
  writer.AddTypedSection("lsh.pbegin.u64", lf.payload_begin);
  writer.AddTypedSection("lsh.pay.i64", lf.payloads);

  // Frozen interval tree.
  const auto& tf = segment.interval_tree->frozen();
  writer.AddTypedSection("it.center.f64", tf.center);
  writer.AddTypedSection("it.left.i32", tf.left);
  writer.AddTypedSection("it.right.i32", tf.right);
  writer.AddTypedSection("it.begin.u64", tf.slice_begin);
  writer.AddTypedSection("it.count.u64", tf.slice_count);
  writer.AddTypedSection("it.lo.lo.f64", tf.bylo_lo);
  writer.AddTypedSection("it.lo.hi.f64", tf.bylo_hi);
  writer.AddTypedSection("it.lo.pay.i64", tf.bylo_payload);
  writer.AddTypedSection("it.hi.lo.f64", tf.byhi_lo);
  writer.AddTypedSection("it.hi.hi.f64", tf.byhi_hi);
  writer.AddTypedSection("it.hi.pay.i64", tf.byhi_payload);

  // Column encodings: structure stream + flat float blocks.
  common::BinaryWriter idx;
  std::vector<float> rep_block, desc_block, da_block;
  for (size_t i = 0; i < segment.entries.size(); ++i) {
    const TableEntry& entry = *segment.entries[i];
    idx.WriteU64(entry.encoding.size());
    for (const auto& enc : entry.encoding) {
      WriteColumn(enc, &idx, &rep_block, &desc_block, &da_block);
    }
    idx.WriteU64(entry.derivations.size());
    for (const auto& derived : entry.derivations) {
      idx.WriteU64(derived.size());
      for (const auto& enc : derived) {
        WriteColumn(enc, &idx, &rep_block, &desc_block, &da_block);
      }
    }
    idx.WriteU64(segment.mean_begin[i]);
    idx.WriteU64(entry.num_means);
  }
  writer.AddSection("enc.index", idx.buffer().data(), idx.buffer().size());
  writer.AddTypedSection("enc.rep.f32", rep_block);
  writer.AddTypedSection("enc.desc.f32", desc_block);
  writer.AddTypedSection("enc.da.f32", da_block);

  return writer.WriteToFile(path);
}

common::Result<std::unique_ptr<SearchEngine>> SearchEngine::OpenSnapshot(
    const std::string& path, const SnapshotOpenOptions& options) {
  storage::SnapshotReadOptions read_options;
  read_options.use_mmap = options.use_mmap;
  auto reader_result = storage::SnapshotReader::Open(path, read_options);
  if (!reader_result.ok()) return reader_result.status();
  std::unique_ptr<storage::SnapshotReader> reader =
      std::move(reader_result).ValueOrDie();

  // meta.
  auto meta_raw = reader->Section(kMetaSection);
  if (!meta_raw.ok()) return meta_raw.status();
  common::BinaryReader meta(meta_raw.value().ToVector());
  auto num_tables = meta.ReadU64();
  if (!num_tables.ok()) return num_tables.status();
  core::FcmConfig config;
  FCM_RETURN_IF_ERROR(ReadConfig(&meta, &config));
  auto rd_u32 = [&meta](uint32_t* out) -> common::Status {
    auto v = meta.ReadU32();
    if (!v.ok()) return v.status();
    *out = v.value();
    return common::Status::OK();
  };
  uint32_t index_x_derivations = 0, x_derivation_grid = 0;
  uint32_t lsh_bits = 0, lsh_tables = 0, lsh_hamming1 = 0, lsh_shards = 0;
  FCM_RETURN_IF_ERROR(rd_u32(&index_x_derivations));
  FCM_RETURN_IF_ERROR(rd_u32(&x_derivation_grid));
  FCM_RETURN_IF_ERROR(rd_u32(&lsh_bits));
  FCM_RETURN_IF_ERROR(rd_u32(&lsh_tables));
  FCM_RETURN_IF_ERROR(rd_u32(&lsh_hamming1));
  auto lsh_seed = meta.ReadU64();
  if (!lsh_seed.ok()) return lsh_seed.status();
  FCM_RETURN_IF_ERROR(rd_u32(&lsh_shards));
  auto lsh_items = meta.ReadU64();
  if (!lsh_items.ok()) return lsh_items.status();
  if (config.embed_dim <= 0 || config.embed_dim > (1 << 20)) {
    return Bad("implausible embed_dim");
  }
  // Engine-meta v2 block. A pre-quantization (v1) snapshot's meta stream
  // ends here; it opens as an f32 engine with no prefilter.
  uint32_t precision = 0, mean_prefilter = 0;
  if (meta.remaining() != 0) {
    uint32_t engine_meta_version = 0;
    FCM_RETURN_IF_ERROR(rd_u32(&engine_meta_version));
    if (engine_meta_version != kEngineMetaVersion) {
      return Bad("unsupported engine meta version " +
                 std::to_string(engine_meta_version));
    }
    FCM_RETURN_IF_ERROR(rd_u32(&precision));
    FCM_RETURN_IF_ERROR(rd_u32(&mean_prefilter));
    if (precision > 1) return Bad("unknown embedding precision");
    if (meta.remaining() != 0) return Bad("trailing engine meta bytes");
  }

  // Model, reconstructed from config + saved parameters (shape- and
  // name-validated by Module::LoadState).
  auto model_raw = reader->Section(kModelSection);
  if (!model_raw.ok()) return model_raw.status();
  auto model = std::make_unique<core::FcmModel>(config);
  {
    common::BinaryReader model_state(model_raw.value().ToVector());
    FCM_RETURN_IF_ERROR(model->LoadState(&model_state));
  }

  auto engine = std::unique_ptr<SearchEngine>(
      new SearchEngine(model.get(), /*lake=*/nullptr));
  engine->owned_model_ = std::move(model);
  engine->options_.num_threads = options.num_threads;
  engine->options_.index_x_derivations = index_x_derivations != 0;
  engine->options_.x_derivation_grid = static_cast<int>(x_derivation_grid);
  engine->options_.lsh.num_bits = static_cast<int>(lsh_bits);
  engine->options_.lsh.num_tables = static_cast<int>(lsh_tables);
  engine->options_.lsh.probe_hamming1 = lsh_hamming1 != 0;
  engine->options_.lsh.seed = lsh_seed.value();
  engine->options_.lsh.num_shards = static_cast<int>(lsh_shards);
  engine->options_.precision = static_cast<EmbeddingPrecision>(precision);
  engine->options_.mean_prefilter = static_cast<int>(mean_prefilter);
  engine->pool_ = std::make_unique<common::ThreadPool>(options.num_threads);

  // Everything below populates one frozen base segment, published as
  // epoch 0 — an opened engine starts life compact, exactly like a
  // freshly built one, and accepts IngestBatch the same way.
  auto segment = std::make_shared<IndexSegment>();
  segment->first_id = 0;

  // Mean-embedding block: zero-copy view(s) over the snapshot — the f32
  // block, or in kInt8 mode the code block plus its per-row scales.
  size_t total_means = 0;
  if (engine->options_.precision == EmbeddingPrecision::kInt8) {
    auto codes = reader->TypedSection<int8_t>(kMeansQSection);
    if (!codes.ok()) return codes.status();
    auto scales = reader->TypedSection<float>(kMeansScaleSection);
    if (!scales.ok()) return scales.status();
    if (codes.value().size() %
            static_cast<size_t>(config.embed_dim) != 0) {
      return Bad("means.i8 block size is not a multiple of embed_dim");
    }
    total_means =
        codes.value().size() / static_cast<size_t>(config.embed_dim);
    if (scales.value().size() != total_means) {
      return Bad("means.scale.f32 size does not match means.i8 rows");
    }
    segment->means_q_view = codes.value();
    segment->means_scale_view = scales.value();
  } else {
    auto means = reader->TypedSection<float>(kMeansSection);
    if (!means.ok()) return means.status();
    segment->means_view = means.value();
    if (means.value().size() %
            static_cast<size_t>(config.embed_dim) != 0) {
      return Bad("means block size is not a multiple of embed_dim");
    }
    total_means =
        means.value().size() / static_cast<size_t>(config.embed_dim);
  }

  // Frozen LSH over the mapped sections.
  {
    RandomHyperplaneLsh::Frozen frozen;
    auto planes = reader->TypedSection<float>("lsh.planes.f32");
    auto gbegin = reader->TypedSection<uint64_t>("lsh.gbegin.u64");
    auto codes = reader->TypedSection<uint64_t>("lsh.codes.u64");
    auto pbegin = reader->TypedSection<uint64_t>("lsh.pbegin.u64");
    auto pay = reader->TypedSection<int64_t>("lsh.pay.i64");
    if (!planes.ok()) return planes.status();
    if (!gbegin.ok()) return gbegin.status();
    if (!codes.ok()) return codes.status();
    if (!pbegin.ok()) return pbegin.status();
    if (!pay.ok()) return pay.status();
    frozen.hyperplanes = planes.value();
    frozen.group_begin = gbegin.value();
    frozen.codes = codes.value();
    frozen.payload_begin = pbegin.value();
    frozen.payloads = pay.value();
    LshConfig lsh_config = engine->options_.lsh;
    auto lsh = RandomHyperplaneLsh::FromFrozen(
        config.embed_dim, lsh_config, lsh_items.value(), frozen);
    if (!lsh.ok()) return lsh.status();
    segment->lsh = std::make_unique<RandomHyperplaneLsh>(
        std::move(lsh).ValueOrDie());
  }

  // Frozen interval tree over the mapped sections.
  {
    IntervalTree::Frozen frozen;
    auto center = reader->TypedSection<double>("it.center.f64");
    auto left = reader->TypedSection<int32_t>("it.left.i32");
    auto right = reader->TypedSection<int32_t>("it.right.i32");
    auto begin = reader->TypedSection<uint64_t>("it.begin.u64");
    auto count = reader->TypedSection<uint64_t>("it.count.u64");
    auto lo_lo = reader->TypedSection<double>("it.lo.lo.f64");
    auto lo_hi = reader->TypedSection<double>("it.lo.hi.f64");
    auto lo_pay = reader->TypedSection<int64_t>("it.lo.pay.i64");
    auto hi_lo = reader->TypedSection<double>("it.hi.lo.f64");
    auto hi_hi = reader->TypedSection<double>("it.hi.hi.f64");
    auto hi_pay = reader->TypedSection<int64_t>("it.hi.pay.i64");
    for (const auto* s :
         {!center.ok() ? &center.status() : nullptr,
          !left.ok() ? &left.status() : nullptr,
          !right.ok() ? &right.status() : nullptr,
          !begin.ok() ? &begin.status() : nullptr,
          !count.ok() ? &count.status() : nullptr,
          !lo_lo.ok() ? &lo_lo.status() : nullptr,
          !lo_hi.ok() ? &lo_hi.status() : nullptr,
          !lo_pay.ok() ? &lo_pay.status() : nullptr,
          !hi_lo.ok() ? &hi_lo.status() : nullptr,
          !hi_hi.ok() ? &hi_hi.status() : nullptr,
          !hi_pay.ok() ? &hi_pay.status() : nullptr}) {
      if (s != nullptr) return *s;
    }
    frozen.center = center.value();
    frozen.left = left.value();
    frozen.right = right.value();
    frozen.slice_begin = begin.value();
    frozen.slice_count = count.value();
    frozen.bylo_lo = lo_lo.value();
    frozen.bylo_hi = lo_hi.value();
    frozen.bylo_payload = lo_pay.value();
    frozen.byhi_lo = hi_lo.value();
    frozen.byhi_hi = hi_hi.value();
    frozen.byhi_payload = hi_pay.value();
    auto tree = IntervalTree::FromFrozen(frozen);
    if (!tree.ok()) return tree.status();
    segment->interval_tree =
        std::make_unique<IntervalTree>(std::move(tree).ValueOrDie());
  }

  // Column encodings: materialize tensors from the flat blocks.
  {
    auto idx_raw = reader->Section("enc.index");
    auto rep = reader->TypedSection<float>("enc.rep.f32");
    auto desc = reader->TypedSection<float>("enc.desc.f32");
    auto da = reader->TypedSection<float>("enc.da.f32");
    if (!idx_raw.ok()) return idx_raw.status();
    if (!rep.ok()) return rep.status();
    if (!desc.ok()) return desc.status();
    if (!da.ok()) return da.status();
    common::BinaryReader idx(idx_raw.value().ToVector());
    BlockCursor rep_cursor{rep.value(), 0, "enc.rep.f32"};
    BlockCursor desc_cursor{desc.value(), 0, "enc.desc.f32"};
    BlockCursor da_cursor{da.value(), 0, "enc.da.f32"};
    segment->entries.reserve(num_tables.value());
    segment->mean_begin.reserve(num_tables.value());
    for (uint64_t t = 0; t < num_tables.value(); ++t) {
      auto entry = std::make_shared<TableEntry>();
      auto num_columns = idx.ReadU64();
      if (!num_columns.ok()) return num_columns.status();
      entry->encoding.resize(num_columns.value());
      for (auto& enc : entry->encoding) {
        FCM_RETURN_IF_ERROR(
            ReadColumn(&idx, &rep_cursor, &desc_cursor, &da_cursor, &enc));
      }
      auto num_derivations = idx.ReadU64();
      if (!num_derivations.ok()) return num_derivations.status();
      entry->derivations.resize(num_derivations.value());
      for (auto& derived : entry->derivations) {
        auto n = idx.ReadU64();
        if (!n.ok()) return n.status();
        derived.resize(n.value());
        for (auto& enc : derived) {
          FCM_RETURN_IF_ERROR(
              ReadColumn(&idx, &rep_cursor, &desc_cursor, &da_cursor, &enc));
        }
      }
      auto mean_begin = idx.ReadU64();
      auto num_means = idx.ReadU64();
      if (!mean_begin.ok()) return mean_begin.status();
      if (!num_means.ok()) return num_means.status();
      entry->num_means = num_means.value();
      if (mean_begin.value() > total_means ||
          entry->num_means > total_means - mean_begin.value()) {
        return Bad("table mean slice out of bounds");
      }
      segment->mean_begin.push_back(mean_begin.value());
      segment->entries.push_back(std::move(entry));
    }
    if (idx.remaining() != 0 || rep_cursor.pos != rep.value().size() ||
        desc_cursor.pos != desc.value().size() ||
        da_cursor.pos != da.value().size()) {
      return Bad("encoding blocks not fully consumed");
    }
  }

  engine->build_stats_.interval_memory_bytes =
      segment->interval_tree->MemoryBytes();
  engine->build_stats_.lsh_memory_bytes = segment->lsh->MemoryBytes();
  engine->build_stats_.lsh_shards = segment->lsh->num_shards();
  engine->build_stats_.embedding_bytes = segment->embedding_bytes();

  std::shared_ptr<EngineEpoch> epoch(new EngineEpoch());
  epoch->id_ = 0;
  epoch->num_tables_ = segment->num_tables();
  epoch->segments_.push_back(std::move(segment));
  engine->PublishEpoch(std::move(epoch));

  // The reader owns the mapping every frozen view points into; it must
  // live exactly as long as the engine.
  engine->snapshot_ = std::move(reader);
  return engine;
}

}  // namespace fcm::index
