// Random-hyperplane LSH (paper Sec. VI-A): each column's learned embedding
// is hashed to a binary code by signing cosine similarities against K
// random vectors; datasets are indexed by all their columns' codes and a
// query line retrieves every dataset colliding in at least one table.

#ifndef FCM_INDEX_LSH_H_
#define FCM_INDEX_LSH_H_

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/rng.h"

namespace fcm::index {

/// Configuration for the LSH index.
struct LshConfig {
  /// Bits per code (number of random hyperplanes per table).
  int num_bits = 12;
  /// Number of independent hash tables (multi-probe across tables raises
  /// recall at some cost in candidate-set size).
  int num_tables = 4;
  /// Also probe buckets at Hamming distance 1 from the query code.
  bool probe_hamming1 = true;
  uint64_t seed = 7;
};

/// Cosine LSH over dense float vectors with int64 payloads (table ids).
class RandomHyperplaneLsh {
 public:
  /// `dim` is the embedding dimensionality.
  RandomHyperplaneLsh(int dim, const LshConfig& config);

  /// Indexes `payload` under `embedding` (one call per column).
  void Insert(const std::vector<float>& embedding, int64_t payload);

  /// Binary code of an embedding in hash table `table`.
  uint64_t Code(const std::vector<float>& embedding, int table) const;

  /// All payloads colliding with the query embedding in any table
  /// (optionally probing Hamming-distance-1 buckets).
  std::vector<int64_t> Query(const std::vector<float>& embedding) const;

  /// Approximate memory footprint in bytes.
  size_t MemoryBytes() const;

  size_t num_items() const { return num_items_; }

 private:
  int dim_;
  LshConfig config_;
  /// hyperplanes_[table * num_bits + bit] is one random vector.
  std::vector<std::vector<float>> hyperplanes_;
  /// One bucket map per table: code -> payload set.
  std::vector<std::unordered_map<uint64_t, std::vector<int64_t>>> tables_;
  size_t num_items_ = 0;
};

}  // namespace fcm::index

#endif  // FCM_INDEX_LSH_H_
