// Random-hyperplane LSH (paper Sec. VI-A): each column's learned embedding
// is hashed to a binary code by signing cosine similarities against K
// random vectors; datasets are indexed by all their columns' codes and a
// query line retrieves every dataset colliding in at least one table.
//
// Sharding: every hash table's buckets are partitioned into `num_shards`
// shards addressed by the top log2(num_shards) bits of the code. Batched
// builds fan (table, shard) tasks across a thread pool — each task owns
// its shard's bucket maps exclusively, so no locks are needed — and
// multi-probe queries only touch the shards their probe codes route to.
// Query results are independent of the shard count and thread count;
// `num_shards == 1` reproduces the unsharded layout (and serial build)
// exactly.
//
// Lifecycle: build (hash-map buckets, mutable) -> Freeze() (buckets
// rewritten into CSR-style flat arrays, maps discarded) -> serve. Frozen
// probes binary-search sorted code arrays through storage::Span views, so
// the same probe code serves a heap-frozen index or one whose arrays live
// in an mmap'ed snapshot (FromFrozen). Query results are bit-identical
// across all three states — SortedUnique makes probe order invisible and
// per-bucket payload order is preserved by the freeze.

#ifndef FCM_INDEX_LSH_H_
#define FCM_INDEX_LSH_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "storage/span.h"

namespace fcm::index {

/// Configuration for the LSH index.
struct LshConfig {
  /// Bits per code (number of random hyperplanes per table).
  int num_bits = 12;
  /// Number of independent hash tables (multi-probe across tables raises
  /// recall at some cost in candidate-set size).
  int num_tables = 4;
  /// Also probe buckets at Hamming distance 1 from the query code.
  bool probe_hamming1 = true;
  uint64_t seed = 7;
  /// Bucket shards per table, rounded up to a power of two and capped at
  /// min(2^num_bits, 2^16). <= 0 picks the owning engine's thread-pool
  /// size (hardware concurrency when constructed standalone); 1 keeps the
  /// legacy single-structure layout and serial batch build.
  int num_shards = 0;
};

/// One item of a batched build; the embedding memory (dim floats) must
/// outlive the InsertBatch call.
struct LshInsertItem {
  const float* embedding = nullptr;
  int64_t payload = 0;
};

/// Cosine LSH over dense float vectors with int64 payloads (table ids).
class RandomHyperplaneLsh {
 public:
  /// The frozen columnar bucket layout. Buckets are grouped by
  /// group = table * num_shards + shard; within a group codes are sorted
  /// ascending. group_begin (size groups + 1) slices `codes`;
  /// payload_begin (size codes + 1) slices `payloads`, which preserve
  /// per-bucket insertion order.
  struct Frozen {
    /// hyperplanes[(table * num_bits + bit) * dim + d].
    storage::Span<float> hyperplanes;
    storage::Span<uint64_t> group_begin;
    storage::Span<uint64_t> codes;
    storage::Span<uint64_t> payload_begin;
    storage::Span<int64_t> payloads;
  };

  /// `dim` is the embedding dimensionality.
  RandomHyperplaneLsh(int dim, const LshConfig& config);

  /// Wraps externally owned frozen arrays (e.g. mmap'ed snapshot
  /// sections) without copying. `config.num_shards` must be the resolved
  /// power-of-two shard count. Validates array-length consistency,
  /// offset monotonicity and in-group code ordering; fails loudly
  /// otherwise. The backing memory must outlive the returned index.
  static common::Result<RandomHyperplaneLsh> FromFrozen(
      int dim, const LshConfig& config, size_t num_items,
      const Frozen& frozen);

  RandomHyperplaneLsh(const RandomHyperplaneLsh&) = delete;
  RandomHyperplaneLsh& operator=(const RandomHyperplaneLsh&) = delete;
  RandomHyperplaneLsh(RandomHyperplaneLsh&&) = default;
  RandomHyperplaneLsh& operator=(RandomHyperplaneLsh&&) = default;

  /// Indexes `payload` under `embedding` (one call per column). Adjacent
  /// duplicate payloads within a bucket — several columns of one table
  /// colliding — are dropped: they cannot change Query results (which
  /// dedup) and would only inflate memory and probe cost. Requires an
  /// unfrozen index.
  void Insert(const std::vector<float>& embedding, int64_t payload);

  /// Indexes every item with the build fanned out across `pool`: codes are
  /// computed in one parallel pass, then (table, shard) tasks consume the
  /// items routed to them, each owning its shard's bucket maps
  /// exclusively and visiting items in item order. The resulting layout is
  /// identical to calling Insert serially in item order, whatever the
  /// schedule. With a single shard or a null pool the build runs that
  /// serial loop directly (the pre-sharding behaviour). Requires an
  /// unfrozen index.
  void InsertBatch(const std::vector<LshInsertItem>& items,
                   common::ThreadPool* pool);

  /// Rewrites the hash-map buckets into the flat frozen layout and
  /// discards the maps. Inserts are rejected afterwards; queries return
  /// exactly what they returned before freezing. Idempotent.
  void Freeze();

  bool frozen() const { return frozen_; }

  /// The frozen arrays (for snapshot serialization). Requires frozen().
  const Frozen& frozen_view() const;

  /// Binary code of an embedding in hash table `table`.
  uint64_t Code(const std::vector<float>& embedding, int table) const;

  /// All payloads colliding with the query embedding in any table
  /// (optionally probing Hamming-distance-1 buckets), deduplicated and
  /// sorted ascending — the same list for every shard count.
  std::vector<int64_t> Query(const std::vector<float>& embedding) const;

  /// Batched Query: out[i] == Query(embeddings[i]) exactly, with the code
  /// computation and probing fanned out per (embedding, table) across
  /// `pool` and per-table hits merged per embedding in a second dispatch.
  /// A null pool runs the serial per-embedding loop.
  std::vector<std::vector<int64_t>> QueryBatch(
      const std::vector<std::vector<float>>& embeddings,
      common::ThreadPool* pool) const;

  /// Approximate memory footprint in bytes.
  size_t MemoryBytes() const;

  size_t num_items() const { return num_items_; }

  /// Resolved shard count (power of two).
  int num_shards() const { return num_shards_; }

 private:
  using BucketMap = std::unordered_map<uint64_t, std::vector<int64_t>>;

  RandomHyperplaneLsh() = default;

  /// Shard a code routes to: its top shard-bits prefix.
  size_t ShardOf(uint64_t code) const;

  /// The hyperplane for (table, bit): `dim_` floats.
  const float* Hyperplane(int table, int bit) const {
    return hyperplanes_view_.data() +
           (static_cast<size_t>(table) * config_.num_bits + bit) *
               static_cast<size_t>(dim_);
  }

  uint64_t CodeRaw(const float* embedding, int table) const;

  /// Appends `payload` to table `t`'s bucket for `code`, dropping adjacent
  /// duplicates.
  void InsertCoded(int t, uint64_t code, int64_t payload);

  /// Probes one table for `code` plus (when configured) its Hamming-1
  /// neighbours, appending raw hits to `out`. Ascending bit order visits
  /// the home shard's probes consecutively, then one foreign shard per
  /// shard-prefix bit flip.
  void ProbeTable(int table, uint64_t code, std::vector<int64_t>* out) const;

  int dim_ = 0;
  LshConfig config_;
  int num_shards_ = 1;  // Power of two.
  int shard_bits_ = 0;  // log2(num_shards_), <= config_.num_bits.

  /// Owned hyperplane block (empty when file-backed); hyperplanes_view_
  /// is the single access path either way.
  std::vector<float> hyperplane_data_;
  storage::Span<float> hyperplanes_view_;

  /// Build-phase buckets: shards_[table * num_shards_ + shard] maps
  /// code -> payloads. Cleared by Freeze().
  std::vector<BucketMap> shards_;

  /// Frozen layout: owned arrays (empty when file-backed) + the view.
  bool frozen_ = false;
  std::vector<uint64_t> group_begin_;
  std::vector<uint64_t> codes_;
  std::vector<uint64_t> payload_begin_;
  std::vector<int64_t> payloads_;
  Frozen view_;

  size_t num_items_ = 0;
};

}  // namespace fcm::index

#endif  // FCM_INDEX_LSH_H_
