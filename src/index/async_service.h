// Futures-based async serving front-end for SearchEngine (the ROADMAP's
// async-serving item): Submit() enqueues a request into a bounded queue
// with configurable backpressure and immediately returns a
// std::future<std::vector<SearchHit>>. A dispatcher coalesces queued
// requests into micro-batches under a max-size / max-delay policy and runs
// the engine's three serving stages — chart encoding, LSH candidate
// generation, candidate scoring + ranking — as overlapping pipeline stages
// on dedicated threads, each fanning its heavy work out on the engine's
// shared ThreadPool. Encoding of micro-batch N+1 therefore runs while
// micro-batch N is still scoring, which is what turns the synchronous
// batch API into a latency-bounded service.
//
// Determinism contract: every request's ranking is bit-identical to
// SearchEngine::Search(query, k, strategy) regardless of how requests were
// coalesced — all paths run the same per-request stage code. Shutdown
// either drains (every accepted request is served) or cancels (requests
// not yet dispatched fail with ShutdownError; micro-batches already in the
// pipeline still complete), deterministically in both modes.

#ifndef FCM_INDEX_ASYNC_SERVICE_H_
#define FCM_INDEX_ASYNC_SERVICE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "index/batch_controller.h"
#include "index/search_engine.h"
#include "vision/extracted_chart.h"

namespace fcm::index {

/// What Submit does when the request queue is full.
enum class BackpressureMode {
  /// Block the caller until space frees up (or the service shuts down).
  /// No accepted request is ever dropped in this mode.
  kBlock,
  /// Fail the returned future immediately with RejectedError.
  kReject,
};

/// Queue and micro-batching knobs.
struct AsyncServiceOptions {
  /// Max requests waiting to be dispatched into a micro-batch.
  size_t queue_capacity = 256;
  BackpressureMode backpressure = BackpressureMode::kBlock;
  /// Micro-batch size cap: the dispatcher never coalesces more requests
  /// than this into one pipeline pass.
  size_t max_batch_size = 16;
  /// How long the dispatcher waits for more requests after the first one
  /// of a forming micro-batch arrives. 0 dispatches immediately. Ignored
  /// when `adaptive` is on — the controller issues the window per batch.
  double max_batch_delay_ms = 1.0;
  /// Adaptive micro-batching: a queue-depth-driven controller
  /// (index/batch_controller.h) grows the coalesce window and batch-size
  /// cap multiplicatively under sustained backlog and collapses both
  /// toward immediate dispatch when the queue runs dry, replacing the
  /// static max_batch_size / max_batch_delay_ms trade-off. Results stay
  /// bit-identical to SearchEngine::Search in every mode — the controller
  /// only changes when batches cut, never what a request returns.
  bool adaptive = false;
  /// Controller tuning when `adaptive` is on: min/max window,
  /// growth/decay factors, depth thresholds (see AdaptiveBatchConfig).
  /// adaptive_config.max_batch_size == 0 inherits max_batch_size above.
  AdaptiveBatchConfig adaptive_config;
};

/// Thrown (through the future) when kReject backpressure refuses a request
/// or when Submit races a shutdown.
struct RejectedError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Thrown (through the future) for requests cancelled by
/// Shutdown(/*drain=*/false) before they were dispatched.
struct ShutdownError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Counter snapshot (stats()); monotone over the service's lifetime.
/// Every accepted request lands in exactly one of completed / cancelled /
/// failed, so submitted == completed + cancelled + failed once the
/// service is drained.
struct AsyncServiceStats {
  uint64_t submitted = 0;   ///< Requests accepted into the queue.
  uint64_t completed = 0;   ///< Futures fulfilled with a ranking.
  uint64_t rejected = 0;    ///< Refused at Submit (queue full / shut down).
  uint64_t cancelled = 0;   ///< Accepted but failed by Shutdown(false).
  uint64_t failed = 0;      ///< Accepted but failed by an engine-stage error.
  uint64_t batches = 0;     ///< Micro-batches dispatched into the pipeline.
  size_t max_coalesced = 0; ///< Largest micro-batch dispatched.
  /// Adaptive-controller counters (zero when options.adaptive is off).
  /// controller.decisions == batches: the controller decides once per
  /// dispatched micro-batch.
  AdaptiveBatchController::Counters controller;
};

class AsyncSearchService {
 public:
  /// `engine` must already be built and must outlive the service.
  explicit AsyncSearchService(const SearchEngine* engine,
                              const AsyncServiceOptions& options = {});
  /// Shutdown(/*drain=*/true): serves everything accepted, then joins.
  ~AsyncSearchService();

  AsyncSearchService(const AsyncSearchService&) = delete;
  AsyncSearchService& operator=(const AsyncSearchService&) = delete;

  /// Enqueues one query; the future resolves to the same hits
  /// SearchEngine::Search(query, k, strategy) would return. Under kBlock
  /// backpressure a full queue blocks the caller; under kReject the future
  /// fails with RejectedError. After Shutdown the future always fails with
  /// RejectedError.
  std::future<std::vector<SearchHit>> Submit(vision::ExtractedChart query,
                                             int k, IndexStrategy strategy);

  /// Enqueues a batch; one future per query, same semantics as Submit
  /// (requests may still be coalesced with other submitters' work).
  std::vector<std::future<std::vector<SearchHit>>> SubmitBatch(
      std::vector<vision::ExtractedChart> queries, int k,
      IndexStrategy strategy);

  /// Stops accepting requests and joins the pipeline. drain=true serves
  /// every accepted request first; drain=false fails queued-but-undispatched
  /// requests with ShutdownError (micro-batches already in the pipeline
  /// still complete). Idempotent; the first call's mode wins.
  void Shutdown(bool drain = true);

  AsyncServiceStats stats() const;

  /// Oldest-first copy of the adaptive controller's bounded decision
  /// trace (empty when options.adaptive is off). Each entry records the
  /// queue depth the dispatcher sampled and the window / size cap the
  /// controller answered with — the bench serializes this into the BENCH
  /// json's async section.
  std::vector<AdaptiveBatchController::TraceEntry> controller_trace() const;

 private:
  struct Request;
  struct MicroBatch;

  /// Bounded single-producer/single-consumer hand-off between adjacent
  /// pipeline stages. Push blocks while the stage ahead is `depth` batches
  /// behind, so admission control propagates back to the request queue.
  class StageChannel;

  void DispatchLoop();   // Coalesce + stage 1 (encode).
  void CandidateLoop();  // Stage 2 (LSH probes + merge).
  void ScoreLoop();      // Stage 3 (score + rank) and fulfillment.

  const SearchEngine* engine_;
  AsyncServiceOptions options_;

  mutable std::mutex mu_;
  std::condition_variable cv_space_;  // Queue has room (or shutting down).
  std::condition_variable cv_data_;   // Queue has data (or shutting down).
  std::deque<Request> queue_;
  bool stopping_ = false;  // No new requests; set once by Shutdown.
  bool cancel_ = false;    // Shutdown(false): fail undispatched requests.

  // Monotone counters (guarded by mu_ where they pair with queue state;
  // completed_ is only touched by the score thread).
  uint64_t submitted_ = 0;
  uint64_t completed_ = 0;
  uint64_t rejected_ = 0;
  uint64_t cancelled_ = 0;
  uint64_t failed_ = 0;
  uint64_t batches_ = 0;
  size_t max_coalesced_ = 0;

  /// Adaptive micro-batching controller; null when options_.adaptive is
  /// off. Guarded by mu_: the dispatcher consults it while holding the
  /// queue lock and the score thread reports batch service time under
  /// the same lock, so the controller itself needs no synchronization.
  std::unique_ptr<AdaptiveBatchController> controller_;

  /// Fails every request of `batch` with `error` and accounts them as
  /// failed — called when an engine stage throws; the pipeline stays up.
  void FailBatch(MicroBatch* batch, const std::exception_ptr& error);

  std::unique_ptr<StageChannel> encode_to_candidates_;
  std::unique_ptr<StageChannel> candidates_to_score_;
  std::thread dispatch_thread_;
  std::thread candidate_thread_;
  std::thread score_thread_;

  std::mutex shutdown_mu_;  // Serializes Shutdown callers / the dtor.
  bool joined_ = false;
};

}  // namespace fcm::index

#endif  // FCM_INDEX_ASYNC_SERVICE_H_
