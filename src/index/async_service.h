// Futures-based async serving front-end for SearchEngine (the ROADMAP's
// async-serving item): Submit() enqueues a request into a bounded queue
// with configurable backpressure and immediately returns a
// std::future<std::vector<SearchHit>>. A dispatcher coalesces queued
// requests into micro-batches under a max-size / max-delay policy and runs
// the engine's three serving stages — chart encoding, LSH candidate
// generation, candidate scoring + ranking — as overlapping pipeline stages
// on dedicated threads, each fanning its heavy work out on the engine's
// shared ThreadPool. Encoding of micro-batch N+1 therefore runs while
// micro-batch N is still scoring, which is what turns the synchronous
// batch API into a latency-bounded service.
//
// Determinism contract: every request's ranking is bit-identical to
// SearchEngine::Search(query, k, strategy) regardless of how requests were
// coalesced — all paths run the same per-request stage code. Shutdown
// either drains (every accepted request is served) or cancels (requests
// not yet dispatched fail with ShutdownError; micro-batches already in the
// pipeline still complete), deterministically in both modes.
//
// Live ingestion: a service constructed over a mutable engine also
// forwards Ingest / Compact to it, so tables can be appended and segments
// merged while the pipeline serves traffic. Each micro-batch pins one
// engine epoch at dispatch and runs all three stages against that pin, so
// every request observes a single consistent index generation — its
// ranking equals Search against *some* epoch current between its admission
// and its completion, bit-identically (the stage code is shared).
//
// Failure semantics (docs/SERVING.md "Failure semantics" for the caller
// view; fault schedules that prove them live in common/failpoint.h):
//  - Per-request deadlines: Submit takes an optional absolute deadline.
//    Expired requests are shed with DeadlineExceededError before wasting
//    pipeline work — at admission, at dispatch, and between stages.
//  - Blast-radius isolation: when an engine stage throws on a coalesced
//    micro-batch, the batch's requests are re-run individually (retry
//    once, bisected to singletons), so only a genuinely poisoned request
//    fails and every neighbor still returns hits bit-identical to Search.
//  - Circuit breaker: breaker_threshold consecutive request failures flip
//    the service into a degraded fast-reject mode (DegradedError) for
//    breaker_cooldown_ms, after which the next request is admitted as a
//    half-open probe whose outcome closes or re-opens the breaker.
//    Health() snapshots breaker state plus all per-outcome counters.

#ifndef FCM_INDEX_ASYNC_SERVICE_H_
#define FCM_INDEX_ASYNC_SERVICE_H_

#include <chrono>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/annotated_mutex.h"
#include "index/batch_controller.h"
#include "index/search_engine.h"
#include "vision/extracted_chart.h"

namespace fcm::index {

/// What Submit does when the request queue is full.
enum class BackpressureMode {
  /// Block the caller until space frees up (or the service shuts down,
  /// or the request's deadline expires).
  /// No accepted request is ever dropped in this mode.
  kBlock,
  /// Fail the returned future immediately with RejectedError.
  kReject,
};

/// Queue and micro-batching knobs.
struct AsyncServiceOptions {
  /// Max requests waiting to be dispatched into a micro-batch.
  size_t queue_capacity = 256;
  BackpressureMode backpressure = BackpressureMode::kBlock;
  /// Micro-batch size cap: the dispatcher never coalesces more requests
  /// than this into one pipeline pass.
  size_t max_batch_size = 16;
  /// How long the dispatcher waits for more requests after the first one
  /// of a forming micro-batch arrives. 0 dispatches immediately. Ignored
  /// when `adaptive` is on — the controller issues the window per batch.
  double max_batch_delay_ms = 1.0;
  /// Adaptive micro-batching: a queue-depth-driven controller
  /// (index/batch_controller.h) grows the coalesce window and batch-size
  /// cap multiplicatively under sustained backlog and collapses both
  /// toward immediate dispatch when the queue runs dry, replacing the
  /// static max_batch_size / max_batch_delay_ms trade-off. Results stay
  /// bit-identical to SearchEngine::Search in every mode — the controller
  /// only changes when batches cut, never what a request returns.
  bool adaptive = false;
  /// Controller tuning when `adaptive` is on: min/max window,
  /// growth/decay factors, depth thresholds (see AdaptiveBatchConfig).
  /// adaptive_config.max_batch_size == 0 inherits max_batch_size above.
  AdaptiveBatchConfig adaptive_config;
  /// Circuit breaker: this many *consecutive* request failures (engine
  /// stage errors after blast-radius isolation; deadline expiries and
  /// cancellations never count) open the breaker, flipping the service
  /// into fast-reject degraded mode. 0 disables the breaker.
  uint64_t breaker_threshold = 16;
  /// How long an open breaker fast-rejects before the next Submit is
  /// admitted as a half-open probe (its outcome closes or re-opens).
  double breaker_cooldown_ms = 100.0;
};

/// Thrown (through the future) when kReject backpressure refuses a request
/// or when Submit races a shutdown.
struct RejectedError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Thrown (through the future) when the circuit breaker is open and the
/// service fast-rejects without queueing. Subtypes RejectedError so
/// callers treating every admission failure alike keep working.
struct DegradedError : RejectedError {
  using RejectedError::RejectedError;
};

/// Thrown (through the future) for requests cancelled by
/// Shutdown(/*drain=*/false) before they were dispatched.
struct ShutdownError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Thrown (through the future) when a request's deadline expired before
/// the pipeline finished (or started) serving it.
struct DeadlineExceededError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Counter snapshot (stats()); monotone over the service's lifetime.
/// Every accepted request lands in exactly one of completed / cancelled /
/// failed / deadline_expired, so once the service is drained
///   submitted == completed + cancelled + failed + deadline_expired.
/// rejected and fast_rejected count requests refused at Submit — they
/// never enter the queue and are not part of `submitted`.
struct AsyncServiceStats {
  uint64_t submitted = 0;   ///< Requests accepted into the queue.
  uint64_t completed = 0;   ///< Futures fulfilled with a ranking.
  uint64_t rejected = 0;    ///< Refused at Submit (queue full / shut down).
  uint64_t cancelled = 0;   ///< Accepted but failed by Shutdown(false).
  uint64_t failed = 0;      ///< Accepted but failed by an engine-stage error.
  /// Accepted but shed with DeadlineExceededError (at admission wait,
  /// dispatch, or between stages).
  uint64_t deadline_expired = 0;
  /// Requests re-run individually after an engine stage threw on their
  /// coalesced micro-batch (blast-radius isolation). Each such request
  /// still lands in completed / failed / deadline_expired.
  uint64_t retried = 0;
  /// Refused at Submit by the open circuit breaker (degraded mode).
  uint64_t fast_rejected = 0;
  uint64_t batches = 0;     ///< Micro-batches dispatched into the pipeline.
  size_t max_coalesced = 0; ///< Largest micro-batch dispatched.
  // Writer-side counters (zero on a service without a mutable engine).
  // These count Ingest/Compact calls, not requests — they are outside the
  // submitted == completed + ... balance above.
  uint64_t ingest_batches = 0;   ///< Successful Ingest calls.
  uint64_t ingested_tables = 0;  ///< Tables appended across them.
  uint64_t compactions = 0;      ///< Successful Compact calls.
  /// Adaptive-controller counters (zero when options.adaptive is off).
  /// controller.decisions == batches: the controller decides once per
  /// dispatched micro-batch.
  AdaptiveBatchController::Counters controller;
};

/// Circuit-breaker position. Closed admits everything; Open fast-rejects
/// (degraded mode); HalfOpen admits probes whose outcomes decide between
/// Closed (success) and Open again (failure).
enum class BreakerState { kClosed, kOpen, kHalfOpen };

const char* BreakerStateName(BreakerState s);

/// Point-in-time health view: breaker position plus the full counter
/// snapshot. `degraded` is the actionable bit — true exactly when a
/// Submit issued now would be fast-rejected.
struct HealthSnapshot {
  BreakerState breaker = BreakerState::kClosed;
  bool degraded = false;
  /// Consecutive request failures since the last success (resets to 0 on
  /// every completed request).
  uint64_t consecutive_failures = 0;
  /// Times the breaker transitioned into kOpen over the service lifetime.
  uint64_t breaker_trips = 0;
  AsyncServiceStats stats;
};

class AsyncSearchService {
 public:
  /// Absolute per-request deadline on the steady clock.
  using Deadline = std::chrono::steady_clock::time_point;

  /// "No deadline": the request is served however long it queues.
  static constexpr Deadline kNoDeadline = Deadline::max();

  /// Deadline `ms` milliseconds from now.
  static Deadline DeadlineAfterMs(double ms) {
    return std::chrono::steady_clock::now() +
           std::chrono::duration_cast<std::chrono::steady_clock::duration>(
               std::chrono::duration<double, std::milli>(ms));
  }

  /// `engine` must already be built and must outlive the service.
  explicit AsyncSearchService(const SearchEngine* engine,
                              const AsyncServiceOptions& options = {});

  /// Mutable-engine constructor: same serving pipeline, plus Ingest /
  /// Compact forward to the engine so the index can grow under traffic.
  explicit AsyncSearchService(SearchEngine* engine,
                              const AsyncServiceOptions& options = {});
  /// Shutdown(/*drain=*/true): serves everything accepted, then joins.
  ~AsyncSearchService();

  AsyncSearchService(const AsyncSearchService&) = delete;
  AsyncSearchService& operator=(const AsyncSearchService&) = delete;

  /// Enqueues one query; the future resolves to the same hits
  /// SearchEngine::Search(query, k, strategy) would return. Under kBlock
  /// backpressure a full queue blocks the caller (at most until
  /// `deadline`); under kReject the future fails with RejectedError.
  /// After Shutdown the future always fails with RejectedError; while the
  /// breaker is open it fails with DegradedError. A request whose
  /// deadline expires before its ranking is computed fails with
  /// DeadlineExceededError instead of occupying the pipeline.
  std::future<std::vector<SearchHit>> Submit(vision::ExtractedChart query,
                                             int k, IndexStrategy strategy,
                                             Deadline deadline = kNoDeadline);

  /// Enqueues a batch; one future per query, same semantics as Submit
  /// (requests may still be coalesced with other submitters' work).
  std::vector<std::future<std::vector<SearchHit>>> SubmitBatch(
      std::vector<vision::ExtractedChart> queries, int k,
      IndexStrategy strategy, Deadline deadline = kNoDeadline);

  /// Appends `tables` to the served index (SearchEngine::IngestBatch)
  /// while the pipeline keeps serving: in-flight micro-batches finish on
  /// their pinned epochs, batches dispatched after the publish see the new
  /// tables. Requires the mutable-engine constructor (FailedPrecondition
  /// otherwise). Safe to call concurrently with Submit and Compact.
  common::Status Ingest(std::vector<table::Table> tables,
                        IngestStats* stats = nullptr);

  /// Merges the engine's segments (SearchEngine::Compact) under traffic —
  /// rankings are unchanged by contract. Requires the mutable-engine
  /// constructor.
  common::Status Compact(CompactStats* stats = nullptr);

  /// Stops accepting requests and joins the pipeline. drain=true serves
  /// every accepted request first; drain=false fails queued-but-undispatched
  /// requests with ShutdownError (micro-batches already in the pipeline
  /// still complete). Idempotent; the first call's mode wins.
  void Shutdown(bool drain = true);

  AsyncServiceStats stats() const;

  /// Breaker state + counters; see HealthSnapshot.
  HealthSnapshot Health() const;

  /// Oldest-first copy of the adaptive controller's bounded decision
  /// trace (empty when options.adaptive is off). Each entry records the
  /// queue depth the dispatcher sampled and the window / size cap the
  /// controller answered with — the bench serializes this into the BENCH
  /// json's async section.
  std::vector<AdaptiveBatchController::TraceEntry> controller_trace() const;

 private:
  struct Request;
  struct MicroBatch;

  /// Bounded single-producer/single-consumer hand-off between adjacent
  /// pipeline stages. Push blocks while the stage ahead is `depth` batches
  /// behind, so admission control propagates back to the request queue.
  class StageChannel;

  void DispatchLoop();   // Coalesce + stage 1 (encode).
  void CandidateLoop();  // Stage 2 (LSH probes + merge).
  void ScoreLoop();      // Stage 3 (score + rank) and fulfillment.

  /// (Re)points every staged[i].query at requests[i] — required after any
  /// operation that moved the Request objects (batch compaction).
  static void RestageBatch(MicroBatch* batch);

  /// Fails every already-expired request of `batch` with
  /// DeadlineExceededError, compacting the batch in place — called
  /// between pipeline stages so expired work never occupies a stage.
  void ShedExpired(MicroBatch* batch);

  /// Engine-stage failure on `batch`: every request is re-run one at a
  /// time through all three stages (retry-once blast-radius isolation).
  /// Neighbors of a poisoned request — and requests hit by a transient
  /// batch-level fault — still get exact rankings; only requests that
  /// fail again, which is final, carry an error.
  void RecoverBatch(MicroBatch* batch);

  /// Breaker bookkeeping for one settled request. Successes reset the
  /// consecutive-failure run and close a half-open breaker; failures
  /// extend the run and open the breaker at the threshold.
  void NoteOutcomeLocked(bool ok) FCM_REQUIRES(mu_);

  /// Counter snapshot (shared by stats() and Health()).
  AsyncServiceStats StatsLocked() const FCM_REQUIRES(mu_);

  /// Admission predicate: the queue has room or the service is draining.
  bool HaveRoomLocked() const FCM_REQUIRES(mu_);
  /// Dispatcher wake predicate.
  bool QueueReadyLocked() const FCM_REQUIRES(mu_);

  const SearchEngine* engine_;
  /// Non-null only for the mutable-engine constructor (same object as
  /// engine_); gates Ingest / Compact. Set during construction and
  /// immutable afterwards — never read by the pipeline threads — so it
  /// needs no lock.
  SearchEngine* mutable_engine_ = nullptr;
  AsyncServiceOptions options_;

  mutable common::Mutex mu_;
  common::CondVar cv_space_;  // Queue has room (or shutting down).
  common::CondVar cv_data_;   // Queue has data (or shutting down).
  std::deque<Request> queue_ FCM_GUARDED_BY(mu_);
  /// No new requests; set once by Shutdown.
  bool stopping_ FCM_GUARDED_BY(mu_) = false;
  /// Shutdown(false): fail undispatched requests.
  bool cancel_ FCM_GUARDED_BY(mu_) = false;

  // Monotone counters. All settle under mu_ so a stats()/Health() snapshot
  // is consistent the moment any future resolves.
  uint64_t submitted_ FCM_GUARDED_BY(mu_) = 0;
  uint64_t completed_ FCM_GUARDED_BY(mu_) = 0;
  uint64_t rejected_ FCM_GUARDED_BY(mu_) = 0;
  uint64_t cancelled_ FCM_GUARDED_BY(mu_) = 0;
  uint64_t failed_ FCM_GUARDED_BY(mu_) = 0;
  uint64_t deadline_expired_ FCM_GUARDED_BY(mu_) = 0;
  uint64_t retried_ FCM_GUARDED_BY(mu_) = 0;
  uint64_t fast_rejected_ FCM_GUARDED_BY(mu_) = 0;
  uint64_t batches_ FCM_GUARDED_BY(mu_) = 0;
  size_t max_coalesced_ FCM_GUARDED_BY(mu_) = 0;
  uint64_t ingest_batches_ FCM_GUARDED_BY(mu_) = 0;
  uint64_t ingested_tables_ FCM_GUARDED_BY(mu_) = 0;
  uint64_t compactions_ FCM_GUARDED_BY(mu_) = 0;
  /// Request ids start at 1 and are assigned in admission order; they key
  /// the engine's per-query failpoint sites via StagedQuery::tag (0 is
  /// reserved for untagged synchronous Search calls).
  uint64_t next_request_id_ FCM_GUARDED_BY(mu_) = 0;

  // Circuit breaker.
  BreakerState breaker_ FCM_GUARDED_BY(mu_) = BreakerState::kClosed;
  uint64_t consecutive_failures_ FCM_GUARDED_BY(mu_) = 0;
  uint64_t breaker_trips_ FCM_GUARDED_BY(mu_) = 0;
  std::chrono::steady_clock::time_point breaker_opened_at_
      FCM_GUARDED_BY(mu_){};

  /// Adaptive micro-batching controller; null when options_.adaptive is
  /// off. The under-lock contract (batch_controller.h "Thread safety:
  /// none") is compile-enforced here: both the pointer and the pointee
  /// are guarded by mu_ — the dispatcher consults it holding the queue
  /// lock and the score thread reports batch service time under the same
  /// lock, so the controller itself needs no synchronization.
  std::unique_ptr<AdaptiveBatchController> controller_ FCM_GUARDED_BY(mu_)
      FCM_PT_GUARDED_BY(mu_);

  std::unique_ptr<StageChannel> encode_to_candidates_;
  std::unique_ptr<StageChannel> candidates_to_score_;
  std::thread dispatch_thread_;
  std::thread candidate_thread_;
  std::thread score_thread_;

  common::Mutex shutdown_mu_;  // Serializes Shutdown callers / the dtor.
  bool joined_ FCM_GUARDED_BY(shutdown_mu_) = false;
};

}  // namespace fcm::index

#endif  // FCM_INDEX_ASYNC_SERVICE_H_
