// Closed-loop micro-batching controller for AsyncSearchService (the
// ROADMAP's adaptive micro-batching item). The dispatcher's static
// max-delay knob trades open-loop throughput against closed-loop latency:
// tuned for overload it inflates idle-time p99, tuned for closed-loop
// clients it forfeits coalescing under backlog. This controller makes the
// trade dynamically from one signal the dispatcher already holds — queue
// depth at the moment a batch starts forming — growing the coalesce
// window and the target batch size multiplicatively under sustained
// backlog and collapsing both toward immediate dispatch when the queue
// runs dry, so a single configuration serves both traffic shapes.
//
// The controller never touches request contents: it decides *when* a
// micro-batch cuts (window) and *how large* it may grow (size cap), and
// every batch still runs the same per-request stage code, so rankings
// stay bit-identical to SearchEngine::Search under every trajectory the
// controller takes.
//
// Determinism contract: the controller owns no clock and performs no
// waiting — callers pass `now` into every decision. Given the same
// sequence of (now, queue_depth) samples and OnBatchServed calls, two
// controllers with the same config produce identical decisions, counters,
// and traces, which is what makes convergence unit-testable with a fake
// clock and no wall-clock sleeps (tests/adaptive_batching_test.cc).
//
// Thread safety: none. AsyncSearchService calls it under its queue mutex —
// a contract the clang thread-safety build enforces: the service declares
// its controller_ pointer FCM_GUARDED_BY(mu_) FCM_PT_GUARDED_BY(mu_)
// (src/index/async_service.h), so any dereference outside the lock is a
// -Wthread-safety error. Standalone users must provide their own exclusion.

#ifndef FCM_INDEX_BATCH_CONTROLLER_H_
#define FCM_INDEX_BATCH_CONTROLLER_H_

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

namespace fcm::index {

/// Controller tuning. Defaults are the ones the serving bench ships with;
/// docs/SERVING.md maps latency/throughput symptoms to these knobs.
struct AdaptiveBatchConfig {
  /// Coalesce-window floor: the delay used once the queue runs dry.
  /// 0 (the default) collapses to immediate dispatch — closed-loop mode.
  double min_delay_ms = 0.0;
  /// Coalesce-window cap under sustained backlog.
  double max_delay_ms = 8.0;
  /// Batch-size floor (used when drained) and cap (used under backlog).
  /// AsyncSearchService treats max_batch_size == 0 as "inherit the
  /// service's static max_batch_size".
  size_t min_batch_size = 1;
  size_t max_batch_size = 16;
  /// Multiplicative-increase factor applied to both the window and the
  /// size cap on each grow step. Must be > 1.
  double growth = 2.0;
  /// Multiplicative-decrease factor applied on each decay step.
  /// Must be in (0, 1).
  double decay = 0.5;
  /// Queue depth at batch start counted as backlog (grow signal).
  size_t backlog_depth = 8;
  /// Queue depth at batch start counted as drained (decay signal);
  /// depths strictly between the two thresholds hold the current state.
  size_t drain_depth = 0;
  /// Consecutive backlog samples required before the first grow step —
  /// one transient burst must not open the window.
  size_t sustain = 2;
  /// A gap between consecutive batch starts longer than this means the
  /// dispatcher slept on an empty queue: the lull collapses the window
  /// and size cap to their floors immediately instead of paying one
  /// decay step per dispatch. <= 0 disables idle resets.
  double idle_reset_ms = 50.0;
  /// Window value a grow step starts from when the window sits at a zero
  /// floor (multiplication cannot leave 0), and the threshold below which
  /// a decay step snaps the window back to the floor.
  double seed_delay_ms = 0.25;
  /// Optional latency clamp: when > 0, the issued window is additionally
  /// capped at `latency_headroom * EWMA(batch service time)` — there is
  /// no point holding a batch open for much longer than the pipeline
  /// needs to serve one, because backpressure refills the queue anyway.
  /// 0 disables the clamp (OnBatchServed then only feeds telemetry).
  double latency_headroom = 0.0;
  /// EWMA smoothing for the batch-service-time estimate in (0, 1];
  /// higher weighs recent batches more.
  double ewma_alpha = 0.3;
};

/// What the dispatcher should use for the micro-batch it is forming.
struct BatchDecision {
  double delay_ms = 0.0;
  size_t batch_size = 1;
};

/// Queue-depth-driven multiplicative-increase / multiplicative-decrease
/// controller. See the file comment for the contract.
class AdaptiveBatchController {
 public:
  using Clock = std::chrono::steady_clock;
  using TimePoint = Clock::time_point;

  /// What a decision did; recorded per trace entry and counted.
  enum class Event : uint8_t {
    kHold,       ///< Depth between the thresholds (or sustain not yet met).
    kGrow,       ///< Sustained backlog: window and size cap multiplied up.
    kDecay,      ///< Queue drained: window and size cap multiplied down.
    kIdleReset,  ///< Idle gap exceeded idle_reset_ms: collapsed to floors.
  };

  static const char* EventName(Event e);

  /// One controller decision, kept in a bounded trace (most recent
  /// kTraceCapacity entries) for the bench's BENCH json and debugging.
  struct TraceEntry {
    double t_ms = 0.0;  ///< Time since the first decision.
    size_t queue_depth = 0;
    double window_ms = 0.0;   ///< Window after the decision (pre-clamp).
    size_t batch_size = 0;    ///< Size cap after the decision.
    Event event = Event::kHold;
  };

  /// Monotone observability counters.
  struct Counters {
    uint64_t decisions = 0;
    uint64_t grows = 0;
    uint64_t decays = 0;
    uint64_t holds = 0;
    uint64_t idle_resets = 0;
    double max_window_ms = 0.0;   ///< Largest window ever issued.
    size_t max_batch_size = 0;    ///< Largest size cap ever issued.
    double ewma_service_ms = 0.0; ///< Smoothed batch service time.
  };

  static constexpr size_t kTraceCapacity = 256;

  explicit AdaptiveBatchController(const AdaptiveBatchConfig& config);

  /// Called once per micro-batch, when the dispatcher wakes holding work:
  /// `queue_depth` is the number of queued requests (including the one
  /// about to seed the batch) and `now` is the caller's clock sample.
  /// Returns the coalesce window and batch-size cap for this batch.
  BatchDecision OnBatchStart(TimePoint now, size_t queue_depth);

  /// Feeds one served batch's summed stage wall time into the service-
  /// time EWMA (the latency clamp's input; always recorded in counters).
  void OnBatchServed(double service_seconds);

  /// Current (post-last-decision) state; floors before any decision.
  double window_ms() const { return window_ms_; }
  size_t batch_size() const { return batch_size_; }

  const Counters& counters() const { return counters_; }
  /// Oldest-first copy of the bounded decision trace.
  std::vector<TraceEntry> trace() const;

 private:
  void CollapseToFloors();

  AdaptiveBatchConfig config_;
  double window_ms_ = 0.0;
  size_t batch_size_ = 1;
  size_t backlog_streak_ = 0;
  bool started_ = false;
  TimePoint origin_{};   ///< First decision (trace time base).
  TimePoint last_{};     ///< Previous decision (idle-gap detection).
  Counters counters_;
  std::deque<TraceEntry> trace_;
};

}  // namespace fcm::index

#endif  // FCM_INDEX_BATCH_CONTROLLER_H_
