// Writer side of the live-ingestion subsystem: IngestBatch / Compact
// (members of SearchEngine, kept out of search_engine.cc so the serving
// path stays a pure-reader translation unit) plus the background
// Compactor thread.

#include "index/ingest.h"

#include <chrono>
#include <cstring>
#include <utility>

#include "common/failpoint.h"
#include "common/logging.h"
#include "index/index_segment.h"

namespace fcm::index {

namespace {

double Seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

common::Status SearchEngine::IngestBatch(std::vector<table::Table> tables,
                                         IngestStats* stats) {
  // One writer at a time: segment construction and epoch numbering are
  // single-writer, while readers keep pinning/serving untouched.
  common::MutexLock writer(&ingest_mu_);
  FCM_FAILPOINT_STATUS("engine.ingest_batch");
  const EpochPin current = PinEpoch();
  if (current == nullptr) {
    return common::Status::FailedPrecondition(
        "IngestBatch requires a built engine (call Build first)");
  }
  if (stats != nullptr) {
    *stats = {};
    stats->epoch_id = current->id();
    stats->delta_segments =
        current->num_segments() > 0 ? current->num_segments() - 1 : 0;
  }
  if (tables.empty()) return common::Status::OK();

  // The batch extends the dense id space: ids num_tables(), +1, ... —
  // whatever ids the tables carried before are overwritten, exactly like
  // DataLake::Add assigns dense ids at build time.
  const auto first_id = static_cast<table::TableId>(current->num_tables());
  for (size_t i = 0; i < tables.size(); ++i) {
    tables[i].set_id(first_id + static_cast<table::TableId>(i));
  }

  IngestStats local;
  local.tables = tables.size();
  auto segment =
      BuildSegment(tables, first_id, &local.encode_seconds,
                   &local.interval_seconds, &local.lsh_seconds);

  // Publish: new epoch = old segment list + the delta. Copying the list
  // copies shared_ptrs, never segments; in-flight readers keep their pin.
  std::shared_ptr<EngineEpoch> next(new EngineEpoch());
  next->id_ = current->id() + 1;
  next->num_tables_ = current->num_tables() + tables.size();
  next->segments_ = current->segments_;
  next->segments_.push_back(std::move(segment));
  local.epoch_id = next->id_;
  local.delta_segments = next->segments_.size() - 1;
  PublishEpoch(std::move(next));

  FCM_LOGS(INFO) << "Ingested " << local.tables << " tables as epoch "
                 << local.epoch_id << " (" << local.delta_segments
                 << " delta segments, encode " << local.encode_seconds
                 << "s, lsh " << local.lsh_seconds << "s)";
  if (stats != nullptr) *stats = local;
  return common::Status::OK();
}

common::Status SearchEngine::Compact(CompactStats* stats) {
  common::MutexLock writer(&ingest_mu_);
  FCM_FAILPOINT_STATUS("engine.compact");
  const EpochPin current = PinEpoch();
  if (current == nullptr) {
    return common::Status::FailedPrecondition(
        "Compact requires a built engine (call Build first)");
  }
  const auto t0 = std::chrono::steady_clock::now();
  if (stats != nullptr) {
    *stats = {};
    stats->segments_merged = current->num_segments();
    stats->epoch_id = current->id();
  }
  if (current->num_segments() <= 1) return common::Status::OK();  // No-op.

  // Merge every segment into one fresh base. Entries (the expensive
  // encodings) are shared, never copied; only the means blocks are
  // re-concatenated in global table order, and the LSH + interval tree
  // are rebuilt over them — the same inputs in the same order a
  // from-scratch Build over these logical tables would consume, so the
  // merged index is structurally identical and rankings cannot change.
  const size_t embed_dim = static_cast<size_t>(model_->config().embed_dim);
  const bool int8_mode = options_.precision == EmbeddingPrecision::kInt8;
  auto merged = std::make_shared<IndexSegment>();
  merged->first_id = 0;
  merged->entries.reserve(current->num_tables());
  merged->mean_begin.reserve(current->num_tables());
  uint64_t rows = 0;
  for (const auto& segment : current->segments_) {
    for (size_t i = 0; i < segment->entries.size(); ++i) {
      merged->entries.push_back(segment->entries[i]);
      merged->mean_begin.push_back(rows);
      const uint64_t begin = segment->mean_begin[i];
      const size_t num_means = segment->entries[i]->num_means;
      if (int8_mode) {
        const int8_t* codes =
            segment->means_q_view.data() + begin * embed_dim;
        merged->means_q_data.insert(merged->means_q_data.end(), codes,
                                    codes + num_means * embed_dim);
        const float* scales = segment->means_scale_view.data() + begin;
        merged->means_scale_data.insert(merged->means_scale_data.end(),
                                        scales, scales + num_means);
      } else {
        const float* block = segment->means_view.data() + begin * embed_dim;
        merged->means_data.insert(merged->means_data.end(), block,
                                  block + num_means * embed_dim);
      }
      rows += num_means;
    }
  }
  if (int8_mode) {
    merged->means_q_view = merged->means_q_data;
    merged->means_scale_view = merged->means_scale_data;
  } else {
    merged->means_view = merged->means_data;
  }

  CompactStats local;
  local.segments_merged = current->num_segments();
  double interval_seconds = 0.0, lsh_seconds = 0.0;
  BuildSegmentIndexes(merged.get(), &interval_seconds, &lsh_seconds);

  std::shared_ptr<EngineEpoch> next(new EngineEpoch());
  next->id_ = current->id() + 1;
  next->num_tables_ = current->num_tables();
  next->segments_.push_back(std::move(merged));
  local.epoch_id = next->id_;
  PublishEpoch(std::move(next));

  local.seconds = Seconds(t0);
  FCM_LOGS(INFO) << "Compacted " << local.segments_merged
                 << " segments into epoch " << local.epoch_id << " ("
                 << local.seconds << "s)";
  if (stats != nullptr) *stats = local;
  return common::Status::OK();
}

Compactor::Compactor(SearchEngine* engine, const CompactorOptions& options)
    : engine_(engine), options_(options) {}

Compactor::~Compactor() { Stop(); }

void Compactor::Start() {
  common::MutexLock lock(&mu_);
  if (running_) return;
  running_ = true;
  stop_ = false;
  notified_ = false;
  thread_ = std::thread([this] { Loop(); });
}

void Compactor::Stop() {
  {
    common::MutexLock lock(&mu_);
    if (!running_) return;
    stop_ = true;
  }
  cv_.NotifyAll();
  thread_.join();
  common::MutexLock lock(&mu_);
  running_ = false;
}

void Compactor::Notify() {
  {
    common::MutexLock lock(&mu_);
    notified_ = true;
  }
  cv_.NotifyOne();
}

Compactor::Stats Compactor::stats() const {
  common::MutexLock lock(&mu_);
  return stats_;
}

void Compactor::Loop() {
  for (;;) {
    {
      common::MutexLock lock(&mu_);
      // Poll-or-notify: a missed Notify costs at most one poll interval.
      cv_.WaitUntil(&mu_,
                    std::chrono::steady_clock::now() + options_.poll_interval,
                    [this]() FCM_REQUIRES(mu_) { return stop_ || notified_; });
      if (stop_) return;
      notified_ = false;
    }
    if (engine_->num_delta_segments() < options_.max_delta_segments) {
      continue;
    }
    CompactStats cs;
    const common::Status status = engine_->Compact(&cs);
    common::MutexLock lock(&mu_);
    if (!status.ok()) {
      // Failed compactions (e.g. an armed engine.compact failpoint) leave
      // the current epoch serving; the next wakeup retries.
      ++stats_.errors;
    } else if (cs.segments_merged > 1) {
      ++stats_.compactions;
    } else {
      ++stats_.noops;
    }
  }
}

}  // namespace fcm::index
