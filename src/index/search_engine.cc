#include "index/search_engine.h"

#include <algorithm>
#include <chrono>
#include <unordered_set>

#include "common/logging.h"
#include "table/resample.h"

namespace fcm::index {

namespace {

double Seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

const char* IndexStrategyName(IndexStrategy s) {
  switch (s) {
    case IndexStrategy::kNoIndex: return "No Index";
    case IndexStrategy::kIntervalTree: return "Interval Tree";
    case IndexStrategy::kLsh: return "LSH";
    case IndexStrategy::kHybrid: return "Hybrid";
  }
  return "?";
}

SearchEngine::SearchEngine(const core::FcmModel* model,
                           const table::DataLake* lake)
    : model_(model), lake_(lake) {}

std::vector<float> SearchEngine::MeanEmbedding(const nn::Tensor& rep) {
  const int n = rep.dim(0), k = rep.dim(1);
  std::vector<float> out(static_cast<size_t>(k), 0.0f);
  const auto& data = rep.data();
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < k; ++j) {
      out[static_cast<size_t>(j)] += data[static_cast<size_t>(i) * k + j];
    }
  }
  for (auto& v : out) v /= static_cast<float>(n);
  return out;
}

void SearchEngine::Build(const LshConfig& lsh_config) {
  SearchEngineOptions options;
  options.lsh = lsh_config;
  BuildWithOptions(options);
}

void SearchEngine::BuildWithOptions(const SearchEngineOptions& options) {
  options_ = options;
  const auto t_encode = std::chrono::steady_clock::now();
  encodings_.clear();
  encodings_.reserve(lake_->size());
  derivations_.assign(lake_->size(), {});
  for (const auto& t : lake_->tables()) {
    encodings_.push_back(core::FcmModel::Detach(model_->EncodeDataset(t)));
    if (options_.index_x_derivations) {
      // Sec. VI-B: derive T' per candidate x column and encode each.
      auto& per_table = derivations_[static_cast<size_t>(t.id())];
      for (const auto& derived : table::AllXAxisDerivations(
               t, static_cast<size_t>(options_.x_derivation_grid))) {
        per_table.push_back(
            core::FcmModel::Detach(model_->EncodeDataset(derived)));
      }
    }
  }
  build_stats_.encode_seconds = Seconds(t_encode);

  // Interval tree over per-column possible ranges [min(C), sum(C)] —
  // including every derivation's intervals when enabled (Sec. VI-B (2)).
  const auto t_interval = std::chrono::steady_clock::now();
  std::vector<Interval> intervals;
  for (const auto& t : lake_->tables()) {
    for (const auto& enc : encodings_[static_cast<size_t>(t.id())]) {
      intervals.push_back({enc.range_lo, enc.range_hi, t.id()});
    }
    for (const auto& derived : derivations_[static_cast<size_t>(t.id())]) {
      for (const auto& enc : derived) {
        intervals.push_back({enc.range_lo, enc.range_hi, t.id()});
      }
    }
  }
  interval_tree_ = std::make_unique<IntervalTree>(std::move(intervals));
  build_stats_.interval_build_seconds = Seconds(t_interval);
  build_stats_.interval_memory_bytes = interval_tree_->MemoryBytes();

  // LSH over mean column embeddings (plus derivation embeddings).
  const auto t_lsh = std::chrono::steady_clock::now();
  lsh_ = std::make_unique<RandomHyperplaneLsh>(model_->config().embed_dim,
                                               options_.lsh);
  for (const auto& t : lake_->tables()) {
    for (const auto& enc : encodings_[static_cast<size_t>(t.id())]) {
      lsh_->Insert(MeanEmbedding(enc.representation), t.id());
    }
    for (const auto& derived : derivations_[static_cast<size_t>(t.id())]) {
      for (const auto& enc : derived) {
        lsh_->Insert(MeanEmbedding(enc.representation), t.id());
      }
    }
  }
  build_stats_.lsh_build_seconds = Seconds(t_lsh);
  build_stats_.lsh_memory_bytes = lsh_->MemoryBytes();

  FCM_LOGS(INFO) << "SearchEngine built over " << lake_->size()
                 << " tables (encode " << build_stats_.encode_seconds
                 << "s, interval " << build_stats_.interval_build_seconds
                 << "s, lsh " << build_stats_.lsh_build_seconds << "s)";
}

std::vector<table::TableId> SearchEngine::Candidates(
    const vision::ExtractedChart& query,
    const core::ChartRepresentation& chart_rep,
    IndexStrategy strategy) const {
  std::vector<table::TableId> all(lake_->size());
  for (size_t i = 0; i < all.size(); ++i) {
    all[i] = static_cast<table::TableId>(i);
  }
  if (strategy == IndexStrategy::kNoIndex) return all;

  std::unordered_set<table::TableId> s1;  // Interval tree survivors.
  if (strategy == IndexStrategy::kIntervalTree ||
      strategy == IndexStrategy::kHybrid) {
    for (int64_t id : interval_tree_->QueryOverlap(query.y_lo, query.y_hi)) {
      s1.insert(id);
    }
    if (strategy == IndexStrategy::kIntervalTree) {
      return {s1.begin(), s1.end()};
    }
  }

  std::unordered_set<table::TableId> s2;  // LSH survivors.
  for (const auto& line : chart_rep) {
    for (int64_t id : lsh_->Query(MeanEmbedding(line.representation))) {
      s2.insert(id);
    }
  }
  if (strategy == IndexStrategy::kLsh) return {s2.begin(), s2.end()};

  // Hybrid: S1 ∩ S2.
  std::vector<table::TableId> out;
  for (table::TableId id : s2) {
    if (s1.count(id)) out.push_back(id);
  }
  return out;
}

std::vector<SearchHit> SearchEngine::Search(
    const vision::ExtractedChart& query, int k, IndexStrategy strategy,
    QueryStats* stats) const {
  FCM_CHECK(!encodings_.empty());
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<SearchHit> hits;
  if (query.lines.empty()) {
    if (stats != nullptr) *stats = {0, Seconds(t0)};
    return hits;
  }
  const core::ChartRepresentation chart_rep =
      core::FcmModel::Detach(model_->EncodeChart(query));
  const auto candidates = Candidates(query, chart_rep, strategy);
  hits.reserve(candidates.size());
  for (table::TableId id : candidates) {
    const auto& enc = encodings_[static_cast<size_t>(id)];
    if (enc.empty()) continue;
    double score =
        model_->ScoreEncoded(chart_rep, enc, query.y_lo, query.y_hi);
    // Sec. VI-B (1): a table's score is the max over its derivations.
    for (const auto& derived : derivations_[static_cast<size_t>(id)]) {
      if (derived.empty()) continue;
      score = std::max(score, model_->ScoreEncoded(chart_rep, derived,
                                                   query.y_lo, query.y_hi));
    }
    hits.push_back({id, score});
  }
  const size_t scored = hits.size();
  const size_t keep = std::min<size_t>(static_cast<size_t>(k), hits.size());
  std::partial_sort(hits.begin(), hits.begin() + static_cast<long>(keep),
                    hits.end(), [](const SearchHit& a, const SearchHit& b) {
                      return a.score > b.score;
                    });
  hits.resize(keep);
  if (stats != nullptr) *stats = {scored, Seconds(t0)};
  return hits;
}

}  // namespace fcm::index
