#include "index/search_engine.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <unordered_set>
#include <utility>

#include "common/failpoint.h"
#include "common/logging.h"
#include "common/quantize.h"
#include "common/simd.h"
#include "index/index_segment.h"
#include "table/resample.h"

namespace fcm::index {

namespace {

double Seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Top-k of a score array, equal scores broken by ascending table id —
/// the candidate order — explicitly, since partial_sort is unstable and
/// would otherwise order ties differently across stdlibs. k <= 0 is an
/// empty request — without the early return the size_t cast would turn a
/// negative k into "keep everything".
std::vector<SearchHit> RankHits(std::vector<SearchHit> hits, int k) {
  if (k <= 0) return {};
  const size_t keep = std::min<size_t>(static_cast<size_t>(k), hits.size());
  std::partial_sort(hits.begin(), hits.begin() + static_cast<long>(keep),
                    hits.end(), [](const SearchHit& a, const SearchHit& b) {
                      return a.score != b.score ? a.score > b.score
                                                : a.table_id < b.table_id;
                    });
  hits.resize(keep);
  return hits;
}

/// Sorted id vector from an unordered survivor set: candidate order feeds
/// RankHits' tie-breaking, so it must not depend on hash iteration order.
std::vector<table::TableId> SortedIds(
    const std::unordered_set<table::TableId>& ids) {
  std::vector<table::TableId> out(ids.begin(), ids.end());
  std::sort(out.begin(), out.end());
  return out;
}

/// The segment whose [first_id, end_id) range holds `id`. Segments tile
/// [0, num_tables) in ascending first_id order, so this is a plain binary
/// search over first_id.
const IndexSegment& SegmentContaining(
    const std::vector<std::shared_ptr<const IndexSegment>>& segments,
    table::TableId id) {
  size_t lo = 0, hi = segments.size();
  while (hi - lo > 1) {
    const size_t mid = lo + (hi - lo) / 2;
    if (segments[mid]->first_id <= id) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return *segments[lo];
}

}  // namespace

EngineEpoch::~EngineEpoch() = default;

const char* IndexStrategyName(IndexStrategy s) {
  switch (s) {
    case IndexStrategy::kNoIndex: return "No Index";
    case IndexStrategy::kIntervalTree: return "Interval Tree";
    case IndexStrategy::kLsh: return "LSH";
    case IndexStrategy::kHybrid: return "Hybrid";
  }
  return "?";
}

const char* EmbeddingPrecisionName(EmbeddingPrecision p) {
  switch (p) {
    case EmbeddingPrecision::kFloat32: return "f32";
    case EmbeddingPrecision::kInt8: return "int8";
  }
  return "?";
}

SearchEngine::SearchEngine(const core::FcmModel* model,
                           const table::DataLake* lake)
    : model_(model), lake_(lake) {}

SearchEngine::~SearchEngine() = default;

std::vector<float> SearchEngine::MeanEmbedding(const nn::Tensor& rep) {
  const int n = rep.dim(0), k = rep.dim(1);
  std::vector<float> out(static_cast<size_t>(k), 0.0f);
  const auto& data = rep.data();
  const auto& kernels = simd::Active();
  for (int i = 0; i < n; ++i) {
    kernels.axpy_f32(1.0f, data.data() + static_cast<size_t>(i) * k,
                     out.data(), static_cast<size_t>(k));
  }
  for (auto& v : out) v /= static_cast<float>(n);
  return out;
}

void SearchEngine::Build(const LshConfig& lsh_config) {
  SearchEngineOptions options;
  options.lsh = lsh_config;
  BuildWithOptions(options);
}

std::shared_ptr<const IndexSegment> SearchEngine::BuildSegment(
    const std::vector<table::Table>& tables, table::TableId first_id,
    double* encode_seconds, double* interval_seconds,
    double* lsh_seconds) const {
  auto segment = std::make_shared<IndexSegment>();
  segment->first_id = first_id;

  // Encoding dominates build time and is embarrassingly parallel: each
  // table's encodings and mean embeddings depend only on that table, so
  // the fan-out is bit-identical to a serial loop over tables.
  const auto t_encode = std::chrono::steady_clock::now();
  const size_t n = tables.size();
  segment->entries.resize(n);
  // Per-table mean vectors land in scratch first (the parallel tasks
  // cannot append to the shared block); a serial pass then flattens them
  // into the segment's means block in table-id order.
  std::vector<std::vector<std::vector<float>>> scratch_means(n);
  pool_->ParallelFor(n, [&](size_t i) {
    const auto& t = tables[i];
    auto entry = std::make_shared<TableEntry>();
    entry->encoding = core::FcmModel::Detach(model_->EncodeDataset(t));
    auto& means = scratch_means[i];
    means.reserve(entry->encoding.size());
    for (const auto& enc : entry->encoding) {
      means.push_back(MeanEmbedding(enc.representation));
    }
    if (options_.index_x_derivations) {
      // Sec. VI-B: derive T' per candidate x column and encode each.
      for (const auto& derived : table::AllXAxisDerivations(
               t, static_cast<size_t>(options_.x_derivation_grid))) {
        auto rep = core::FcmModel::Detach(model_->EncodeDataset(derived));
        for (const auto& enc : rep) {
          means.push_back(MeanEmbedding(enc.representation));
        }
        entry->derivations.push_back(std::move(rep));
      }
    }
    entry->num_means = means.size();
    segment->entries[i] = std::move(entry);
  });
  const size_t embed_dim = static_cast<size_t>(model_->config().embed_dim);
  segment->mean_begin.resize(n);
  for (size_t i = 0; i < n; ++i) {
    segment->mean_begin[i] = segment->means_data.size() / embed_dim;
    for (const auto& mean : scratch_means[i]) {
      segment->means_data.insert(segment->means_data.end(), mean.begin(),
                                 mean.end());
    }
  }
  scratch_means.clear();
  segment->means_view = segment->means_data;
  if (options_.precision == EmbeddingPrecision::kInt8) {
    // Quantize the block row by row, then drop the f32 block: from here
    // the int8 codes + scales are the tier's only storage. The LSH build
    // below indexes the dequantized reconstructions — exactly the values
    // the tier serves (and a snapshot reloads) — so bucket membership can
    // never disagree with the served embeddings. Rows are independent, so
    // the fan-out is deterministic.
    const size_t rows =
        segment->means_data.size() / std::max<size_t>(1, embed_dim);
    segment->means_q_data.resize(segment->means_data.size());
    segment->means_scale_data.resize(rows);
    pool_->ParallelFor(rows, [&](size_t r) {
      const float* row = segment->means_data.data() + r * embed_dim;
      int8_t* codes = segment->means_q_data.data() + r * embed_dim;
      segment->means_scale_data[r] =
          common::QuantizeRow(row, embed_dim, codes);
    });
    segment->means_q_view = segment->means_q_data;
    segment->means_scale_view = segment->means_scale_data;
    segment->means_data.clear();
    segment->means_data.shrink_to_fit();
    segment->means_view = storage::Span<float>();
  }
  if (encode_seconds != nullptr) *encode_seconds += Seconds(t_encode);

  BuildSegmentIndexes(segment.get(), interval_seconds, lsh_seconds);
  return segment;
}

void SearchEngine::BuildSegmentIndexes(IndexSegment* segment,
                                       double* interval_seconds,
                                       double* lsh_seconds) const {
  // Interval tree over per-column possible ranges [min(C), sum(C)] —
  // including every derivation's intervals when enabled (Sec. VI-B (2)).
  // Consumed serially in table order so the index layout is independent
  // of the encoding schedule.
  const auto t_interval = std::chrono::steady_clock::now();
  std::vector<Interval> intervals;
  for (size_t i = 0; i < segment->entries.size(); ++i) {
    const auto id = segment->first_id + static_cast<table::TableId>(i);
    const TableEntry& entry = *segment->entries[i];
    for (const auto& enc : entry.encoding) {
      intervals.push_back({enc.range_lo, enc.range_hi, id});
    }
    for (const auto& derived : entry.derivations) {
      for (const auto& enc : derived) {
        intervals.push_back({enc.range_lo, enc.range_hi, id});
      }
    }
  }
  segment->interval_tree = std::make_unique<IntervalTree>(std::move(intervals));
  if (interval_seconds != nullptr) *interval_seconds += Seconds(t_interval);

  // LSH over the segment's mean rows (plus derivation means), sharded by
  // code prefix so the batch insert fans (table, shard) tasks across the
  // pool. Items are flattened in table order, which fixes the bucket
  // layout whatever the schedule or shard count. Hyperplanes are a pure
  // function of (dim, LshConfig) — identical for every segment — so a
  // query probes the same buckets everywhere and the union of
  // per-segment hits equals a single merged index's hits.
  const auto t_lsh = std::chrono::steady_clock::now();
  const size_t embed_dim = static_cast<size_t>(model_->config().embed_dim);
  LshConfig lsh_config = options_.lsh;
  if (lsh_config.num_shards <= 0) {
    lsh_config.num_shards = pool_->num_threads();
  }
  segment->lsh = std::make_unique<RandomHyperplaneLsh>(
      model_->config().embed_dim, lsh_config);
  const float* rows = segment->means_view.data();
  std::vector<float> dequantized;
  if (options_.precision == EmbeddingPrecision::kInt8) {
    // int8 mode keeps no f32 block; reconstruct the rows the tier serves
    // for the hyperplane codes. Identical values however many times the
    // segment is (re)indexed — dequantization is pure.
    const size_t n_rows = segment->means_scale_view.size();
    dequantized.resize(n_rows * embed_dim);
    pool_->ParallelFor(n_rows, [&](size_t r) {
      common::DequantizeRow(segment->means_q_view.data() + r * embed_dim,
                            embed_dim, segment->means_scale_view[r],
                            dequantized.data() + r * embed_dim);
    });
    rows = dequantized.data();
  }
  std::vector<LshInsertItem> items;
  for (size_t i = 0; i < segment->entries.size(); ++i) {
    const auto id = segment->first_id + static_cast<table::TableId>(i);
    const size_t num_means = segment->entries[i]->num_means;
    for (size_t m = 0; m < num_means; ++m) {
      items.push_back(
          {rows + (segment->mean_begin[i] + m) * embed_dim, id});
    }
  }
  segment->lsh->InsertBatch(items, pool_.get());
  // Freeze rewrites the hash-map buckets into the flat CSR arrays the
  // serving path (and SaveSnapshot) reads; query results are unchanged.
  segment->lsh->Freeze();
  if (lsh_seconds != nullptr) *lsh_seconds += Seconds(t_lsh);
}

void SearchEngine::PublishEpoch(std::shared_ptr<const EngineEpoch> epoch) {
  common::MutexLock lock(&epoch_mu_);
  epoch_ = std::move(epoch);
}

EpochPin SearchEngine::PinEpoch() const {
  common::MutexLock lock(&epoch_mu_);
  return epoch_;
}

size_t SearchEngine::num_tables() const {
  const EpochPin pin = PinEpoch();
  return pin == nullptr ? 0 : pin->num_tables();
}

size_t SearchEngine::num_delta_segments() const {
  const EpochPin pin = PinEpoch();
  return pin == nullptr || pin->num_segments() == 0
             ? 0
             : pin->num_segments() - 1;
}

uint64_t SearchEngine::epoch_id() const {
  const EpochPin pin = PinEpoch();
  return pin == nullptr ? 0 : pin->id();
}

void SearchEngine::BuildWithOptions(const SearchEngineOptions& options) {
  options_ = options;
  pool_ = std::make_unique<common::ThreadPool>(options.num_threads);
  build_stats_ = {};

  auto segment = BuildSegment(
      lake_->tables(), /*first_id=*/0, &build_stats_.encode_seconds,
      &build_stats_.interval_build_seconds, &build_stats_.lsh_build_seconds);
  build_stats_.interval_memory_bytes = segment->interval_tree->MemoryBytes();
  build_stats_.lsh_memory_bytes = segment->lsh->MemoryBytes();
  build_stats_.lsh_shards = segment->lsh->num_shards();
  build_stats_.embedding_bytes = segment->embedding_bytes();

  std::shared_ptr<EngineEpoch> epoch(new EngineEpoch());
  epoch->id_ = 0;
  epoch->num_tables_ = segment->num_tables();
  epoch->segments_.push_back(std::move(segment));
  PublishEpoch(std::move(epoch));

  FCM_LOGS(INFO) << "SearchEngine built over " << lake_->size()
                 << " tables with " << pool_->num_threads() << " threads"
                 << " (encode " << build_stats_.encode_seconds
                 << "s, interval " << build_stats_.interval_build_seconds
                 << "s, lsh " << build_stats_.lsh_build_seconds << "s)";
}

std::vector<table::TableId> SearchEngine::Candidates(
    const EngineEpoch& epoch, const vision::ExtractedChart& query,
    IndexStrategy strategy, const std::vector<int64_t>* line_hits,
    size_t num_line_hits) const {
  if (strategy == IndexStrategy::kNoIndex) {
    // The epoch, not the lake: a snapshot-opened engine serves without
    // one, and ingested tables were dropped after encoding.
    std::vector<table::TableId> all(epoch.num_tables());
    for (size_t i = 0; i < all.size(); ++i) {
      all[i] = static_cast<table::TableId>(i);
    }
    return all;
  }

  std::unordered_set<table::TableId> s1;  // Interval tree survivors.
  if (strategy == IndexStrategy::kIntervalTree ||
      strategy == IndexStrategy::kHybrid) {
    // Per-segment trees store global ids; tables are range-partitioned
    // across segments, so the union is exactly the merged tree's answer.
    for (const auto& segment : epoch.segments_) {
      for (int64_t id :
           segment->interval_tree->QueryOverlap(query.y_lo, query.y_hi)) {
        s1.insert(id);
      }
    }
    if (strategy == IndexStrategy::kIntervalTree) return SortedIds(s1);
  }

  // LSH survivors. The per-line mean embeddings were computed once per
  // stage call by CandidateStage and probed across every table there —
  // Candidates only merges the payload lists, never recomputes query-side
  // means.
  FCM_CHECK(line_hits != nullptr || num_line_hits == 0);
  std::unordered_set<table::TableId> s2;
  for (size_t l = 0; l < num_line_hits; ++l) {
    s2.insert(line_hits[l].begin(), line_hits[l].end());
  }
  if (strategy == IndexStrategy::kLsh) return SortedIds(s2);

  // Hybrid: S1 ∩ S2, walked in sorted id order so the result is ordered
  // without a trailing sort.
  std::vector<table::TableId> out;
  for (table::TableId id : SortedIds(s2)) {
    if (s1.count(id)) out.push_back(id);
  }
  return out;
}

size_t SearchEngine::embedding_bytes() const {
  const EpochPin pin = PinEpoch();
  if (pin == nullptr) return 0;
  size_t total = 0;
  for (const auto& segment : pin->segments_) {
    total += segment->embedding_bytes();
  }
  return total;
}

void SearchEngine::PrefilterCandidates(
    const EngineEpoch& epoch, const std::vector<float>* line_means,
    size_t num_lines, std::vector<table::TableId>* candidates) const {
  const size_t keep = static_cast<size_t>(options_.mean_prefilter);
  if (num_lines == 0 || candidates->size() <= keep) return;
  const size_t dim = line_means[0].size();
  const bool int8_mode = options_.precision == EmbeddingPrecision::kInt8;

  // kInt8: quantize the query-side line means once per query; candidate
  // rows are already int8, so every similarity below runs through the
  // exact integer kernels.
  std::vector<int8_t> q_codes;
  std::vector<float> q_scales;
  if (int8_mode) {
    q_codes.resize(num_lines * dim);
    q_scales.resize(num_lines);
    for (size_t l = 0; l < num_lines; ++l) {
      q_scales[l] = common::QuantizeRow(line_means[l].data(), dim,
                                        q_codes.data() + l * dim);
    }
  }

  // Max over (line, mean-row) dot products per candidate, each candidate's
  // rows read from its owning segment. A candidate with no mean rows keeps
  // -inf and sorts last (it would score as invalid downstream anyway).
  std::vector<std::pair<float, table::TableId>> scored;
  scored.reserve(candidates->size());
  std::vector<float> sims;  // GemmI8F32 scratch, reused across candidates.
  for (const table::TableId id : *candidates) {
    const IndexSegment& segment = SegmentContaining(epoch.segments_, id);
    const size_t local = static_cast<size_t>(id - segment.first_id);
    const size_t num_means = segment.entries[local]->num_means;
    const uint64_t mean_begin = segment.mean_begin[local];
    float best = -std::numeric_limits<float>::infinity();
    if (int8_mode) {
      sims.resize(num_means);
      const int8_t* rows = segment.means_q_view.data() + mean_begin * dim;
      const float* row_scales =
          segment.means_scale_view.data() + mean_begin;
      for (size_t l = 0; l < num_lines; ++l) {
        simd::GemmI8F32(q_codes.data() + l * dim, rows, dim, dim,
                        q_scales[l], row_scales, sims.data(), num_means);
        for (size_t r = 0; r < num_means; ++r) {
          best = std::max(best, sims[r]);
        }
      }
    } else {
      for (size_t r = 0; r < num_means; ++r) {
        const float* row =
            segment.means_view.data() + (mean_begin + r) * dim;
        for (size_t l = 0; l < num_lines; ++l) {
          best = std::max(best, simd::DotF32(line_means[l].data(), row, dim));
        }
      }
    }
    scored.push_back({best, id});
  }

  // Survivors: highest similarity first, ties by ascending id — fully
  // deterministic — then re-sorted ascending to preserve the Candidates()
  // ordering contract RankHits' tie-breaking relies on.
  std::partial_sort(scored.begin(), scored.begin() + static_cast<long>(keep),
                    scored.end(), [](const auto& a, const auto& b) {
                      return a.first != b.first ? a.first > b.first
                                                : a.second < b.second;
                    });
  candidates->resize(keep);
  for (size_t i = 0; i < keep; ++i) (*candidates)[i] = scored[i].second;
  std::sort(candidates->begin(), candidates->end());
}

bool SearchEngine::ScoreCandidate(const EngineEpoch& epoch,
                                  const core::ChartRepresentation& chart_rep,
                                  const vision::ExtractedChart& query,
                                  table::TableId id, double* score) const {
  const IndexSegment& segment = SegmentContaining(epoch.segments_, id);
  const TableEntry& entry =
      *segment.entries[static_cast<size_t>(id - segment.first_id)];
  if (entry.encoding.empty()) return false;
  double s =
      model_->ScoreEncoded(chart_rep, entry.encoding, query.y_lo, query.y_hi);
  // Sec. VI-B (1): a table's score is the max over its derivations.
  for (const auto& derived : entry.derivations) {
    if (derived.empty()) continue;
    s = std::max(s, model_->ScoreEncoded(chart_rep, derived, query.y_lo,
                                         query.y_hi));
  }
  *score = s;
  return true;
}

void SearchEngine::EncodeStage(std::vector<StagedQuery>* staged,
                               StageTiming* timing) const {
  FCM_CHECK(pool_ != nullptr);
  const auto t0 = std::chrono::steady_clock::now();
  FCM_FAILPOINT("engine.encode_stage");
  pool_->ParallelFor(staged->size(), [&](size_t i) {
    StagedQuery& sq = (*staged)[i];
    FCM_FAILPOINT_KEYED("engine.encode_query", sq.tag);
    if (sq.query->lines.empty()) return;
    sq.chart_rep = core::FcmModel::Detach(model_->EncodeChart(*sq.query));
  });
  if (timing != nullptr) timing->encode_seconds = Seconds(t0);
}

void SearchEngine::CandidateStage(std::vector<StagedQuery>* staged,
                                  StageTiming* timing,
                                  const EpochPin& epoch) const {
  const auto t_stage = std::chrono::steady_clock::now();
  FCM_FAILPOINT("engine.candidate_stage");
  const EpochPin pin = epoch != nullptr ? epoch : PinEpoch();
  FCM_CHECK(pin != nullptr);
  const auto uses_lsh = [](IndexStrategy s) {
    return s == IndexStrategy::kLsh || s == IndexStrategy::kHybrid;
  };
  const bool prefilter_on = options_.mean_prefilter > 0;
  // Per-query line mean embeddings feed two consumers — the sharded LSH
  // QueryBatch and the mean-similarity prefilter — so compute each needed
  // query's means once, flattened in query order.
  std::vector<size_t> line_offset(staged->size(), 0);
  size_t total_lines = 0;
  for (size_t i = 0; i < staged->size(); ++i) {
    line_offset[i] = total_lines;
    if (uses_lsh((*staged)[i].strategy) || prefilter_on) {
      total_lines += (*staged)[i].chart_rep.size();
    }
  }
  std::vector<std::vector<float>> means(total_lines);
  if (total_lines > 0) {
    pool_->ParallelFor(staged->size(), [&](size_t i) {
      const StagedQuery& sq = (*staged)[i];
      if (!uses_lsh(sq.strategy) && !prefilter_on) return;
      for (size_t l = 0; l < sq.chart_rep.size(); ++l) {
        means[line_offset[i] + l] = MeanEmbedding(sq.chart_rep[l].representation);
      }
    });
    // One sharded QueryBatch over every LSH-consulting query's lines,
    // whatever mix of strategies the stage call carries. Prefilter-only
    // queries must not probe the index, so their means are skipped here
    // (moved when the prefilter no longer needs them).
    std::vector<std::vector<float>> lsh_means;
    std::vector<size_t> lsh_offset(staged->size(), 0);
    for (size_t i = 0; i < staged->size(); ++i) {
      lsh_offset[i] = lsh_means.size();
      const StagedQuery& sq = (*staged)[i];
      if (!uses_lsh(sq.strategy)) continue;
      for (size_t l = 0; l < sq.chart_rep.size(); ++l) {
        auto& mean = means[line_offset[i] + l];
        lsh_means.push_back(prefilter_on ? mean : std::move(mean));
      }
    }
    if (!lsh_means.empty()) {
      // One QueryBatch per segment of the pinned epoch, per-line payload
      // lists concatenated across segments. Segments hold disjoint id
      // ranges and Candidates() set-merges the lists, so concatenation
      // order cannot affect results — the union equals what one merged
      // index would return (identical hyperplanes ⇒ identical buckets).
      std::vector<std::vector<int64_t>> hits;
      for (const auto& segment : pin->segments_) {
        auto seg_hits = segment->lsh->QueryBatch(lsh_means, pool_.get());
        if (hits.empty()) {
          hits = std::move(seg_hits);
          continue;
        }
        for (size_t j = 0; j < hits.size(); ++j) {
          hits[j].insert(hits[j].end(), seg_hits[j].begin(),
                         seg_hits[j].end());
        }
      }
      for (size_t i = 0; i < staged->size(); ++i) {
        StagedQuery& sq = (*staged)[i];
        if (!uses_lsh(sq.strategy)) continue;
        sq.line_hits.assign(
            std::make_move_iterator(hits.begin() +
                                    static_cast<long>(lsh_offset[i])),
            std::make_move_iterator(hits.begin() +
                                    static_cast<long>(lsh_offset[i] +
                                                      sq.chart_rep.size())));
      }
    }
  }
  pool_->ParallelFor(staged->size(), [&](size_t i) {
    StagedQuery& sq = (*staged)[i];
    if (sq.query->lines.empty()) return;  // No candidates, empty ranking.
    sq.candidates = Candidates(*pin, *sq.query, sq.strategy,
                               sq.line_hits.data(), sq.line_hits.size());
    if (prefilter_on) {
      PrefilterCandidates(*pin, means.data() + line_offset[i],
                          sq.chart_rep.size(), &sq.candidates);
    }
  });
  if (timing != nullptr) timing->candidate_seconds = Seconds(t_stage);
}

std::vector<std::vector<SearchHit>> SearchEngine::ScoreStage(
    const std::vector<StagedQuery>& staged, std::vector<QueryStats>* stats,
    StageTiming* timing, const EpochPin& epoch) const {
  const auto t_stage = std::chrono::steady_clock::now();
  FCM_FAILPOINT("engine.score_stage");
  const EpochPin pin = epoch != nullptr ? epoch : PinEpoch();
  FCM_CHECK(pin != nullptr);
  const size_t q = staged.size();
  std::vector<std::vector<SearchHit>> results(q);
  if (stats != nullptr) stats->assign(q, {});
  if (q == 0) return results;

  // Score all (query, candidate) pairs through one flat dispatch, which
  // keeps every worker busy even when individual candidate sets are small
  // — the heavy-traffic serving shape. Slots keep candidate order so each
  // ranking (including tie order) matches the serial loop exactly.
  std::vector<size_t> offset(q, 0);
  size_t total = 0;
  for (size_t i = 0; i < q; ++i) {
    offset[i] = total;
    total += staged[i].candidates.size();
  }
  std::vector<double> scores(total);
  std::vector<char> valid(total, 0);
  std::vector<size_t> pair_query(total);
  for (size_t i = 0; i < q; ++i) {
    for (size_t c = 0; c < staged[i].candidates.size(); ++c) {
      pair_query[offset[i] + c] = i;
    }
  }
  // Per-pair durations (only when stats are requested) let each query's
  // scoring cost be reported individually even though its pairs interleave
  // with the whole batch across workers.
  std::vector<double> pair_seconds(stats != nullptr ? total : 0, 0.0);
  pool_->ParallelFor(total, [&](size_t p) {
    const StagedQuery& sq = staged[pair_query[p]];
    const table::TableId id = sq.candidates[p - offset[pair_query[p]]];
    const auto t0 = std::chrono::steady_clock::now();
    valid[p] =
        ScoreCandidate(*pin, sq.chart_rep, *sq.query, id, &scores[p]) ? 1 : 0;
    if (stats != nullptr) pair_seconds[p] = Seconds(t0);
  });

  pool_->ParallelFor(q, [&](size_t i) {
    const StagedQuery& sq = staged[i];
    // Keyed per-query site: poisons one request's scoring even when its
    // pairs interleaved with the whole batch in the flat dispatch above.
    FCM_FAILPOINT_KEYED("engine.score_query", sq.tag);
    std::vector<SearchHit> hits;
    hits.reserve(sq.candidates.size());
    for (size_t c = 0; c < sq.candidates.size(); ++c) {
      const size_t p = offset[i] + c;
      if (valid[p]) hits.push_back({sq.candidates[c], scores[p]});
    }
    if (stats != nullptr) {
      (*stats)[i].candidates_scored = hits.size();
      double secs = 0.0;
      for (size_t c = 0; c < sq.candidates.size(); ++c) {
        secs += pair_seconds[offset[i] + c];
      }
      (*stats)[i].seconds = secs;
    }
    results[i] = RankHits(std::move(hits), sq.k);
  });
  if (timing != nullptr) timing->score_seconds = Seconds(t_stage);
  return results;
}

std::vector<SearchHit> SearchEngine::Search(
    const vision::ExtractedChart& query, int k, IndexStrategy strategy,
    QueryStats* stats, const EpochPin& epoch) const {
  // Pin one epoch up front so the candidate and scoring stages see one
  // consistent index generation however ingestion interleaves.
  const EpochPin pin = epoch != nullptr ? epoch : PinEpoch();
  FCM_CHECK(pin != nullptr);
  const auto t0 = std::chrono::steady_clock::now();
  if (query.lines.empty()) {
    if (stats != nullptr) {
      *stats = {};
      stats->seconds = stats->batch_seconds = Seconds(t0);
    }
    return {};
  }
  std::vector<StagedQuery> staged(1);
  staged[0].query = &query;
  staged[0].strategy = strategy;
  staged[0].k = k;
  EncodeStage(&staged);
  CandidateStage(&staged, nullptr, pin);
  std::vector<QueryStats> stage_stats;
  auto results = ScoreStage(staged, stats != nullptr ? &stage_stats : nullptr,
                            nullptr, pin);
  if (stats != nullptr) {
    *stats = stage_stats[0];
    // A single-query call's whole wall time is that query's true cost.
    stats->seconds = stats->batch_seconds = Seconds(t0);
  }
  return std::move(results[0]);
}

std::vector<std::vector<SearchHit>> SearchEngine::SearchBatch(
    const std::vector<vision::ExtractedChart>& queries, int k,
    IndexStrategy strategy, std::vector<QueryStats>* stats,
    const EpochPin& epoch) const {
  const EpochPin pin = epoch != nullptr ? epoch : PinEpoch();
  FCM_CHECK(pin != nullptr);
  const auto t0 = std::chrono::steady_clock::now();
  const size_t q = queries.size();
  if (stats != nullptr) stats->assign(q, {});
  if (q == 0) return {};

  std::vector<StagedQuery> staged(q);
  for (size_t i = 0; i < q; ++i) {
    staged[i].query = &queries[i];
    staged[i].strategy = strategy;
    staged[i].k = k;
  }
  EncodeStage(&staged);
  CandidateStage(&staged, nullptr, pin);
  auto results = ScoreStage(staged, stats, nullptr, pin);
  if (stats != nullptr) {
    // Per-query `seconds` (scoring attribution) came from ScoreStage; the
    // shared wall clock lands in batch_seconds only, so the efficiency
    // study no longer charges the whole batch to every query.
    const double elapsed = Seconds(t0);
    for (auto& s : *stats) s.batch_seconds = elapsed;
  }
  return results;
}

}  // namespace fcm::index
