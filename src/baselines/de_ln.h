// DE-LN and Opt-LN baselines (paper Sec. VII-B).
//
// DE-LN: DeepEye-style VisRec proposes 5 line charts per candidate table;
// LineNet-style similarity between the query chart and each proposal; the
// max similarity is Rel'(V, T). Bounded by VisRec quality.
//
// Opt-LN: the impossible-in-practice upper bound — LineNet similarity
// against the chart rendered from the candidate with *oracle* column
// matching (it peeks at the query's underlying data).

#ifndef FCM_BASELINES_DE_LN_H_
#define FCM_BASELINES_DE_LN_H_

#include <map>
#include <memory>

#include "baselines/linenet.h"
#include "baselines/method.h"
#include "chart/chart_spec.h"

namespace fcm::baselines {

/// Builds LineNet contrastive training pairs from the benchmark training
/// triplets (positive: extraction vs re-rendered chart of the same table;
/// negative: vs charts of other tables) and trains the model.
double TrainLineNet(LineNetLite* model,
                    const table::DataLake& lake,
                    const std::vector<core::TrainingTriplet>& training,
                    const chart::ChartStyle& style = {});

class DeLnMethod : public RetrievalMethod {
 public:
  /// `linenet` may be shared with OptLnMethod; when `train_on_fit` is
  /// false the model is assumed already trained.
  DeLnMethod(std::shared_ptr<LineNetLite> linenet, bool train_on_fit = true,
             int num_recommendations = 5, chart::ChartStyle style = {});

  const char* name() const override { return "DE-LN"; }

  void Fit(const table::DataLake& lake,
           const std::vector<core::TrainingTriplet>& training) override;

  double Score(const benchgen::QueryRecord& query,
               const table::Table& t) const override;

 private:
  std::shared_ptr<LineNetLite> linenet_;
  bool train_on_fit_;
  int num_recommendations_;
  chart::ChartStyle style_;
  /// Per table id: embeddings of the recommended charts.
  std::vector<std::vector<std::vector<float>>> recommended_embeddings_;
  mutable std::map<const benchgen::QueryRecord*, std::vector<float>>
      query_cache_;
};

class OptLnMethod : public RetrievalMethod {
 public:
  OptLnMethod(std::shared_ptr<LineNetLite> linenet, bool train_on_fit = true,
              chart::ChartStyle style = {});

  const char* name() const override { return "Opt-LN"; }

  void Fit(const table::DataLake& lake,
           const std::vector<core::TrainingTriplet>& training) override;

  double Score(const benchgen::QueryRecord& query,
               const table::Table& t) const override;

 private:
  std::shared_ptr<LineNetLite> linenet_;
  bool train_on_fit_;
  chart::ChartStyle style_;
  mutable std::map<const benchgen::QueryRecord*, std::vector<float>>
      query_cache_;
};

}  // namespace fcm::baselines

#endif  // FCM_BASELINES_DE_LN_H_
