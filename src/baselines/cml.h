// CML baseline (paper Sec. VII-B): state-of-the-art unimodal encoders — a
// ViT-style chart encoder and a TURL-style transformer table encoder —
// scored by cosine similarity. Architecturally this is FCM's encoders
// without DA layers and without the cross-modal matcher, which isolates
// exactly what the paper's comparison isolates.

#ifndef FCM_BASELINES_CML_H_
#define FCM_BASELINES_CML_H_

#include <map>
#include <memory>

#include "baselines/method.h"
#include "core/dataset_encoder.h"
#include "core/fcm_config.h"
#include "core/line_chart_encoder.h"

namespace fcm::baselines {

/// The CML network: unimodal encoders + temperature-scaled cosine.
class CmlModel : public nn::Module {
 public:
  explicit CmlModel(const core::FcmConfig& config);

  core::ChartRepresentation EncodeChart(
      const vision::ExtractedChart& chart) const;
  core::DatasetRepresentation EncodeDataset(const table::Table& t) const;

  /// Encodes a single column's values to [N2, K] (pretraining hook).
  nn::Tensor EncodeColumnValues(const std::vector<double>& values) const;

  /// Temperature-scaled cosine logit between mean-pooled chart and dataset
  /// vectors (columns pre-filtered by the y-tick range, as all methods
  /// share that step).
  nn::Tensor ScoreLogit(const core::ChartRepresentation& chart_rep,
                        const core::DatasetRepresentation& dataset_rep,
                        double y_lo, double y_hi) const;

  double Score(const vision::ExtractedChart& chart,
               const table::Table& t) const;
  double ScoreEncoded(const core::ChartRepresentation& chart_rep,
                      const core::DatasetRepresentation& dataset_rep,
                      double y_lo, double y_hi) const;

  const core::FcmConfig& config() const { return config_; }

 private:
  core::FcmConfig config_;
  common::Rng rng_;
  core::LineChartEncoder chart_encoder_;
  core::DatasetEncoder dataset_encoder_;
  nn::Tensor temperature_;
};

/// RetrievalMethod wrapper: trains CmlModel on Fit and caches detached
/// dataset encodings for scoring.
class CmlMethod : public RetrievalMethod {
 public:
  CmlMethod(const core::FcmConfig& config, const core::TrainOptions& train);

  const char* name() const override { return "CML"; }

  void Fit(const table::DataLake& lake,
           const std::vector<core::TrainingTriplet>& training) override;

  double Score(const benchgen::QueryRecord& query,
               const table::Table& t) const override;

 private:
  core::TrainOptions train_options_;
  std::unique_ptr<CmlModel> model_;
  std::vector<core::DatasetRepresentation> encodings_;
  mutable std::map<const benchgen::QueryRecord*, core::ChartRepresentation>
      query_cache_;
};

}  // namespace fcm::baselines

#endif  // FCM_BASELINES_CML_H_
