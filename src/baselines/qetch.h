// Qetch* baseline (paper Sec. VII-B): Qetch's heuristic scale-tolerant
// local segment matching, extended to multi-line charts by extracting all
// lines and aggregating line-to-column scores with maximum bipartite
// matching (Sec. III-A).

#ifndef FCM_BASELINES_QETCH_H_
#define FCM_BASELINES_QETCH_H_

#include "baselines/method.h"

namespace fcm::baselines {

/// Qetch matching parameters.
struct QetchOptions {
  /// Qetch operates on coarse hand-drawn strokes: the extracted query
  /// line is first downsampled to this "sketch" resolution, discarding
  /// the fine detail a human sketch would never carry.
  int sketch_length = 24;
  /// Both series are resampled to this length before matching.
  int resample_length = 64;
  /// Number of local segments the sketch is divided into.
  int num_segments = 8;
  /// Weight of the local-distortion penalty |log scale|.
  double distortion_weight = 0.5;
};

/// Scale-free local match error between a query line and a candidate
/// column: per segment, the candidate is optimally affine-fitted to the
/// query and residual + distortion penalties accumulate (Qetch's local
/// matching principle). Lower is better.
double QetchMatchError(const std::vector<double>& query_line,
                       const std::vector<double>& column,
                       const QetchOptions& options = {});

/// RetrievalMethod wrapper (training-free).
class QetchStarMethod : public RetrievalMethod {
 public:
  explicit QetchStarMethod(QetchOptions options = {}) : options_(options) {}

  const char* name() const override { return "Qetch*"; }

  void Fit(const table::DataLake& lake,
           const std::vector<core::TrainingTriplet>& training) override;

  double Score(const benchgen::QueryRecord& query,
               const table::Table& t) const override;

 private:
  QetchOptions options_;
};

}  // namespace fcm::baselines

#endif  // FCM_BASELINES_QETCH_H_
