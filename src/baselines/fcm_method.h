// RetrievalMethod wrapper around the FCM model so the evaluation harness
// treats the paper's contribution and the baselines uniformly.

#ifndef FCM_BASELINES_FCM_METHOD_H_
#define FCM_BASELINES_FCM_METHOD_H_

#include <map>
#include <memory>

#include "baselines/method.h"
#include "core/fcm_model.h"

namespace fcm::baselines {

class FcmMethod : public RetrievalMethod {
 public:
  FcmMethod(const core::FcmConfig& config, const core::TrainOptions& train);

  /// Wraps an externally trained model (not owned; must outlive this).
  explicit FcmMethod(core::FcmModel* model);

  const char* name() const override { return name_; }
  void set_name(const char* name) { name_ = name; }

  void Fit(const table::DataLake& lake,
           const std::vector<core::TrainingTriplet>& training) override;

  double Score(const benchgen::QueryRecord& query,
               const table::Table& t) const override;

  core::FcmModel* model() { return model_; }
  const core::TrainStats& train_stats() const { return train_stats_; }

 private:
  const char* name_ = "FCM";
  std::unique_ptr<core::FcmModel> owned_model_;
  core::FcmModel* model_ = nullptr;
  core::TrainOptions train_options_;
  bool train_on_fit_ = true;
  core::TrainStats train_stats_;
  std::vector<core::DatasetRepresentation> encodings_;
  mutable std::map<const benchgen::QueryRecord*, core::ChartRepresentation>
      query_cache_;
};

}  // namespace fcm::baselines

#endif  // FCM_BASELINES_FCM_METHOD_H_
