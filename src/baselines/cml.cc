#include "baselines/cml.h"

#include <cmath>

#include "core/fcm_model.h"
#include "nn/ops.h"

namespace fcm::baselines {

namespace {

core::FcmConfig CmlConfig(core::FcmConfig config) {
  // TURL-style table encoding has no aggregation-aware layers.
  config.use_da_layers = false;
  return config;
}

}  // namespace

CmlModel::CmlModel(const core::FcmConfig& config)
    : config_(CmlConfig(config)),
      rng_(config_.seed + 1),
      chart_encoder_(config_, &rng_),
      dataset_encoder_(config_, &rng_) {
  RegisterModule("chart_encoder", &chart_encoder_);
  RegisterModule("dataset_encoder", &dataset_encoder_);
  temperature_ = RegisterParameter(
      "temperature", nn::Tensor::Full({1}, 5.0f, /*requires_grad=*/true));
}

core::ChartRepresentation CmlModel::EncodeChart(
    const vision::ExtractedChart& chart) const {
  return chart_encoder_.Forward(chart);
}

core::DatasetRepresentation CmlModel::EncodeDataset(
    const table::Table& t) const {
  return dataset_encoder_.Forward(t);
}

nn::Tensor CmlModel::EncodeColumnValues(
    const std::vector<double>& values) const {
  return dataset_encoder_.EncodeColumn(values);
}

nn::Tensor CmlModel::ScoreLogit(const core::ChartRepresentation& chart_rep,
                                const core::DatasetRepresentation& dataset_rep,
                                double y_lo, double y_hi) const {
  FCM_CHECK(!chart_rep.empty());
  const auto columns = core::FcmModel::FilterColumns(dataset_rep, y_lo, y_hi);
  FCM_CHECK(!columns.empty());

  std::vector<nn::Tensor> line_means;
  for (const auto& line : chart_rep) {
    line_means.push_back(nn::MeanRows(line.representation));
  }
  const nn::Tensor chart_vec = nn::MeanRows(nn::StackRows(line_means));

  std::vector<nn::Tensor> col_means;
  for (const auto* col : columns) {
    col_means.push_back(nn::MeanRows(col->representation));
  }
  const nn::Tensor dataset_vec = nn::MeanRows(nn::StackRows(col_means));

  const nn::Tensor dot = nn::DotProduct(chart_vec, dataset_vec);
  const nn::Tensor cosine =
      nn::Mul(dot, nn::Mul(nn::Rsqrt(nn::DotProduct(chart_vec, chart_vec)),
                           nn::Rsqrt(nn::DotProduct(dataset_vec,
                                                    dataset_vec))));
  return nn::Mul(cosine, temperature_);
}

double CmlModel::ScoreEncoded(const core::ChartRepresentation& chart_rep,
                              const core::DatasetRepresentation& dataset_rep,
                              double y_lo, double y_hi) const {
  if (chart_rep.empty() || dataset_rep.empty()) return 0.0;
  const nn::Tensor logit = ScoreLogit(chart_rep, dataset_rep, y_lo, y_hi);
  return 1.0 / (1.0 + std::exp(-static_cast<double>(logit.item())));
}

double CmlModel::Score(const vision::ExtractedChart& chart,
                       const table::Table& t) const {
  if (chart.lines.empty() || t.num_columns() == 0) return 0.0;
  return ScoreEncoded(EncodeChart(chart), EncodeDataset(t), chart.y_lo,
                      chart.y_hi);
}

CmlMethod::CmlMethod(const core::FcmConfig& config,
                     const core::TrainOptions& train)
    : train_options_(train), model_(std::make_unique<CmlModel>(config)) {}

void CmlMethod::Fit(const table::DataLake& lake,
                    const std::vector<core::TrainingTriplet>& training) {
  core::internal::TrainRelevanceModel(model_.get(), lake, training,
                                      train_options_);
  encodings_.clear();
  encodings_.reserve(lake.size());
  for (const auto& t : lake.tables()) {
    encodings_.push_back(core::FcmModel::Detach(model_->EncodeDataset(t)));
  }
  query_cache_.clear();
}

double CmlMethod::Score(const benchgen::QueryRecord& query,
                        const table::Table& t) const {
  auto it = query_cache_.find(&query);
  if (it == query_cache_.end()) {
    it = query_cache_
             .emplace(&query, core::FcmModel::Detach(
                                  model_->EncodeChart(query.extracted)))
             .first;
  }
  const auto& enc = encodings_[static_cast<size_t>(t.id())];
  if (enc.empty()) return 0.0;
  return model_->ScoreEncoded(it->second, enc, query.y_lo, query.y_hi);
}

}  // namespace fcm::baselines
