#include "baselines/fcm_method.h"

namespace fcm::baselines {

FcmMethod::FcmMethod(const core::FcmConfig& config,
                     const core::TrainOptions& train)
    : owned_model_(std::make_unique<core::FcmModel>(config)),
      model_(owned_model_.get()),
      train_options_(train),
      train_on_fit_(true) {}

FcmMethod::FcmMethod(core::FcmModel* model)
    : model_(model), train_on_fit_(false) {}

void FcmMethod::Fit(const table::DataLake& lake,
                    const std::vector<core::TrainingTriplet>& training) {
  if (train_on_fit_) {
    train_stats_ = core::TrainFcm(model_, lake, training, train_options_);
  }
  encodings_.clear();
  encodings_.reserve(lake.size());
  for (const auto& t : lake.tables()) {
    encodings_.push_back(core::FcmModel::Detach(model_->EncodeDataset(t)));
  }
  query_cache_.clear();
}

double FcmMethod::Score(const benchgen::QueryRecord& query,
                        const table::Table& t) const {
  auto it = query_cache_.find(&query);
  if (it == query_cache_.end()) {
    it = query_cache_
             .emplace(&query, core::FcmModel::Detach(
                                  model_->EncodeChart(query.extracted)))
             .first;
  }
  const auto& enc = encodings_[static_cast<size_t>(t.id())];
  if (enc.empty() || it->second.empty()) return 0.0;
  return model_->ScoreEncoded(it->second, enc, query.y_lo, query.y_hi);
}

}  // namespace fcm::baselines
