#include "baselines/qetch.h"

#include <algorithm>
#include <cmath>

#include "common/math_util.h"
#include "relevance/hungarian.h"

namespace fcm::baselines {

double QetchMatchError(const std::vector<double>& query_line,
                       const std::vector<double>& column,
                       const QetchOptions& options) {
  if (query_line.empty() || column.empty()) {
    return std::numeric_limits<double>::infinity();
  }
  const size_t n = static_cast<size_t>(options.resample_length);
  // Coarsen the query to sketch granularity first (Qetch matches strokes,
  // not pixel-exact traces), then bring both to the matching length.
  const std::vector<double> sketch = common::ResampleLinear(
      query_line, static_cast<size_t>(options.sketch_length));
  const std::vector<double> q = common::ResampleLinear(sketch, n);
  const std::vector<double> c = common::ResampleLinear(column, n);

  const size_t seg_len = n / static_cast<size_t>(options.num_segments);
  double total = 0.0;
  for (int s = 0; s < options.num_segments; ++s) {
    const size_t begin = static_cast<size_t>(s) * seg_len;
    const size_t end =
        s == options.num_segments - 1 ? n : begin + seg_len;
    const size_t len = end - begin;
    // Optimal least-squares affine fit c_seg -> q_seg: q ~ a * c + b.
    double mean_q = 0.0, mean_c = 0.0;
    for (size_t i = begin; i < end; ++i) {
      mean_q += q[i];
      mean_c += c[i];
    }
    mean_q /= static_cast<double>(len);
    mean_c /= static_cast<double>(len);
    double cov = 0.0, var_c = 0.0, var_q = 0.0;
    for (size_t i = begin; i < end; ++i) {
      cov += (c[i] - mean_c) * (q[i] - mean_q);
      var_c += (c[i] - mean_c) * (c[i] - mean_c);
      var_q += (q[i] - mean_q) * (q[i] - mean_q);
    }
    const double a = var_c > 1e-12 ? cov / var_c : 0.0;
    const double b = mean_q - a * mean_c;
    double residual = 0.0;
    for (size_t i = begin; i < end; ++i) {
      const double fit = a * c[i] + b;
      residual += (q[i] - fit) * (q[i] - fit);
    }
    // Normalize residual by the query segment's energy so segments of
    // different amplitudes contribute comparably (Qetch is scale-free).
    residual /= (var_q + 1e-9);
    // Local distortion penalty: Qetch punishes how much the candidate must
    // be stretched to match the sketch segment.
    const double distortion =
        std::fabs(std::log(std::max(std::fabs(a), 1e-3)));
    total += residual + options.distortion_weight * distortion;
  }
  return total / static_cast<double>(options.num_segments);
}

void QetchStarMethod::Fit(const table::DataLake& /*lake*/,
                          const std::vector<core::TrainingTriplet>&
                          /*training*/) {
  // Heuristic method: nothing to fit.
}

double QetchStarMethod::Score(const benchgen::QueryRecord& query,
                              const table::Table& t) const {
  const auto& lines = query.extracted.lines;
  if (lines.empty() || t.num_columns() == 0) return 0.0;
  std::vector<std::vector<double>> weights(
      lines.size(), std::vector<double>(t.num_columns(), 0.0));
  for (size_t li = 0; li < lines.size(); ++li) {
    for (size_t ci = 0; ci < t.num_columns(); ++ci) {
      const auto& col = t.column(ci).values;
      if (col.empty()) {
        weights[li][ci] = -1.0;  // Never match empty columns.
        continue;
      }
      const double err = QetchMatchError(lines[li].values, col, options_);
      weights[li][ci] = 1.0 / (1.0 + err);
    }
  }
  const rel::MatchingResult match = rel::MaxWeightBipartiteMatching(weights);
  return match.total_weight / static_cast<double>(lines.size());
}

}  // namespace fcm::baselines
