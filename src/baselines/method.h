// Common interface for all retrieval methods compared in the paper's
// evaluation (Tables II/III): FCM, CML, Qetch*, DE-LN, Opt-LN.

#ifndef FCM_BASELINES_METHOD_H_
#define FCM_BASELINES_METHOD_H_

#include <vector>

#include "benchgen/benchmark.h"
#include "core/training.h"
#include "table/data_lake.h"

namespace fcm::baselines {

/// A method that scores (line chart query, candidate table) pairs.
///
/// Fit receives the repository and training triplets; learned methods
/// train here, heuristic methods may precompute per-table caches. Score
/// must only consult `query.extracted` — except Opt-LN, which by design
/// (paper Sec. VII-B) uses oracle information and is impossible in
/// practice.
class RetrievalMethod {
 public:
  virtual ~RetrievalMethod() = default;

  virtual const char* name() const = 0;

  virtual void Fit(const table::DataLake& lake,
                   const std::vector<core::TrainingTriplet>& training) = 0;

  /// Relevance estimate Rel'(V, T); higher = more relevant.
  virtual double Score(const benchgen::QueryRecord& query,
                       const table::Table& t) const = 0;
};

}  // namespace fcm::baselines

#endif  // FCM_BASELINES_METHOD_H_
