#include "baselines/linenet.h"

#include <algorithm>
#include <cmath>

#include "common/math_util.h"
#include "nn/optimizer.h"
#include "nn/ops.h"
#include "vision/image_resize.h"

namespace fcm::baselines {

std::vector<float> CompositeStrips(const vision::ExtractedChart& chart,
                                   int* width, int* height) {
  *width = 0;
  *height = 0;
  for (const auto& line : chart.lines) {
    *width = std::max(*width, line.width);
    *height = std::max(*height, line.height);
  }
  std::vector<float> out(static_cast<size_t>(*width) * *height, 0.0f);
  for (const auto& line : chart.lines) {
    // Strips may differ in size; resize each onto the composite canvas.
    const std::vector<float> resized = vision::ResizeBilinear(
        line.strip, line.width, line.height, *width, *height);
    for (size_t i = 0; i < out.size(); ++i) {
      out[i] = std::min(1.0f, out[i] + resized[i]);
    }
  }
  return out;
}

LineNetLite::LineNetLite(const LineNetConfig& config)
    : config_(config),
      rng_(config.seed),
      patch_projection_(config.image_height * config.patch_width,
                        config.embed_dim, &rng_),
      encoder_(config.embed_dim, config.num_heads, config.mlp_hidden,
               config.num_layers, config.image_width / config.patch_width,
               &rng_) {
  RegisterModule("patch_projection", &patch_projection_);
  RegisterModule("encoder", &encoder_);
  temperature_ = RegisterParameter(
      "temperature", nn::Tensor::Full({1}, 5.0f, /*requires_grad=*/true));
}

nn::Tensor LineNetLite::EmbedTensor(const std::vector<float>& image,
                                    int width, int height) const {
  const int h = config_.image_height;
  const int w = config_.image_width;
  const int pw = config_.patch_width;
  const int n = w / pw;
  const std::vector<float> resized =
      vision::ResizeBilinear(image, width, height, w, h);
  std::vector<float> patches(static_cast<size_t>(n) * h * pw);
  for (int s = 0; s < n; ++s) {
    for (int y = 0; y < h; ++y) {
      for (int dx = 0; dx < pw; ++dx) {
        patches[static_cast<size_t>(s) * h * pw +
                static_cast<size_t>(y) * pw + dx] =
            resized[static_cast<size_t>(y) * w + s * pw + dx];
      }
    }
  }
  const nn::Tensor x =
      nn::Tensor::FromVector({n, h * pw}, std::move(patches));
  return nn::MeanRows(encoder_.Forward(patch_projection_.Forward(x)));
}

std::vector<float> LineNetLite::Embed(const std::vector<float>& image,
                                      int width, int height) const {
  const nn::Tensor e = EmbedTensor(image, width, height);
  return {e.data().begin(), e.data().end()};
}

std::vector<float> LineNetLite::EmbedExtracted(
    const vision::ExtractedChart& chart) const {
  int w = 0, h = 0;
  const auto image = CompositeStrips(chart, &w, &h);
  if (w == 0 || h == 0) return std::vector<float>(
      static_cast<size_t>(config_.embed_dim), 0.0f);
  return Embed(image, w, h);
}

std::vector<float> LineNetLite::EmbedRendered(
    const chart::RenderedChart& chart) const {
  // Crop the plot area out of the canvas.
  const auto& plot = chart.plot;
  const int pw = plot.Width(), ph = plot.Height();
  std::vector<float> image(static_cast<size_t>(pw) * ph);
  for (int y = 0; y < ph; ++y) {
    for (int x = 0; x < pw; ++x) {
      image[static_cast<size_t>(y) * pw + x] =
          chart.canvas.At(plot.left + x, plot.top + y);
    }
  }
  return Embed(image, pw, ph);
}

double LineNetLite::Similarity(const std::vector<float>& a,
                               const std::vector<float>& b) {
  std::vector<double> da(a.begin(), a.end());
  std::vector<double> db(b.begin(), b.end());
  return common::CosineSimilarity(da, db);
}

double LineNetLite::Train(const std::vector<TrainingPair>& pairs) {
  if (pairs.empty()) return 0.0;
  nn::Adam optimizer(Parameters(), config_.learning_rate);
  std::vector<size_t> order(pairs.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  double final_loss = 0.0;
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    rng_.Shuffle(&order);
    double epoch_loss = 0.0;
    for (size_t i : order) {
      const auto& p = pairs[i];
      const nn::Tensor ea = EmbedTensor(p.image_a, p.width_a, p.height_a);
      const nn::Tensor eb = EmbedTensor(p.image_b, p.width_b, p.height_b);
      const nn::Tensor cosine = nn::Mul(
          nn::DotProduct(ea, eb),
          nn::Mul(nn::Rsqrt(nn::DotProduct(ea, ea)),
                  nn::Rsqrt(nn::DotProduct(eb, eb))));
      const nn::Tensor logit = nn::Mul(cosine, temperature_);
      nn::Tensor loss = nn::BinaryCrossEntropyWithLogits(
          logit, p.same_source ? 1.0f : 0.0f);
      optimizer.ZeroGrad();
      loss.Backward();
      optimizer.ClipGradNorm(5.0);
      optimizer.Step();
      epoch_loss += loss.item();
    }
    final_loss = epoch_loss / static_cast<double>(pairs.size());
  }
  return final_loss;
}

}  // namespace fcm::baselines
