// DeepEye-style visualization recommendation (substitute for [14] in the
// DE-LN baseline): scores candidate line-chart specs for a table with
// interpretable "goodness" heuristics (trend smoothness, amplitude
// significance, multi-line range compatibility) and returns the top-n.

#ifndef FCM_BASELINES_DEEPEYE_H_
#define FCM_BASELINES_DEEPEYE_H_

#include <vector>

#include "chart/chart_spec.h"
#include "table/table.h"

namespace fcm::baselines {

/// Heuristic chart-worthiness of a single column in [0, 1]: penalizes
/// constants and pure noise, rewards smooth trends with real amplitude.
double ColumnChartScore(const std::vector<double>& values);

/// Recommends up to `n` line-chart specs for a table, best first
/// (single-line specs for the best columns plus multi-line combinations of
/// range-compatible columns).
std::vector<chart::VisSpec> RecommendLineCharts(const table::Table& t,
                                                int n);

}  // namespace fcm::baselines

#endif  // FCM_BASELINES_DEEPEYE_H_
