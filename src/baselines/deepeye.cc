#include "baselines/deepeye.h"

#include <algorithm>
#include <cmath>

#include "common/math_util.h"

namespace fcm::baselines {

double ColumnChartScore(const std::vector<double>& values) {
  if (values.size() < 4) return 0.0;
  const double lo = common::Min(values);
  const double hi = common::Max(values);
  const double range = hi - lo;
  if (range < 1e-12) return 0.0;  // Constant column: nothing to plot.

  // Smoothness: mean absolute step relative to the range. Pure noise has
  // large steps; a smooth trend has small ones.
  double mean_step = 0.0;
  for (size_t i = 1; i < values.size(); ++i) {
    mean_step += std::fabs(values[i] - values[i - 1]);
  }
  mean_step /= static_cast<double>(values.size() - 1) * range;
  const double smoothness = 1.0 / (1.0 + 10.0 * mean_step);

  // Amplitude significance: stddev relative to the mean magnitude.
  const double sd = common::Stddev(values);
  const double scale = std::max(std::fabs(common::Mean(values)), range);
  const double significance =
      common::Clamp(sd / (scale + 1e-12), 0.0, 1.0);

  return 0.7 * smoothness + 0.3 * significance;
}

std::vector<chart::VisSpec> RecommendLineCharts(const table::Table& t,
                                                int n) {
  struct Candidate {
    double score;
    chart::VisSpec spec;
  };
  std::vector<Candidate> candidates;

  std::vector<std::pair<double, int>> column_scores;
  for (size_t ci = 0; ci < t.num_columns(); ++ci) {
    column_scores.emplace_back(ColumnChartScore(t.column(ci).values),
                               static_cast<int>(ci));
  }
  std::sort(column_scores.rbegin(), column_scores.rend());

  // Single-line specs for every plottable column.
  for (const auto& [score, ci] : column_scores) {
    if (score <= 0.0) continue;
    chart::VisSpec spec;
    spec.y_columns = {ci};
    candidates.push_back({score, spec});
  }

  // Multi-line specs over range-compatible top columns (a chart with lines
  // of wildly different ranges wastes vertical resolution — DeepEye-style
  // goodness penalizes that).
  auto range_of = [&](int ci) {
    const auto& v = t.column(static_cast<size_t>(ci)).values;
    return std::make_pair(common::Min(v), common::Max(v));
  };
  for (size_t i = 0; i < column_scores.size(); ++i) {
    if (column_scores[i].first <= 0.0) continue;
    chart::VisSpec spec;
    spec.y_columns = {column_scores[i].second};
    auto [lo, hi] = range_of(column_scores[i].second);
    double score_sum = column_scores[i].first;
    for (size_t j = i + 1; j < column_scores.size() &&
                           spec.y_columns.size() < 4; ++j) {
      if (column_scores[j].first <= 0.0) continue;
      const auto [lo2, hi2] = range_of(column_scores[j].second);
      const double span = std::max(hi, hi2) - std::min(lo, lo2);
      const double overlap =
          std::min(hi, hi2) - std::max(lo, lo2);
      if (span <= 0.0 || overlap / span < 0.25) continue;  // Incompatible.
      spec.y_columns.push_back(column_scores[j].second);
      score_sum += column_scores[j].first;
      lo = std::min(lo, lo2);
      hi = std::max(hi, hi2);
    }
    if (spec.y_columns.size() >= 2) {
      candidates.push_back(
          {1.05 * score_sum / static_cast<double>(spec.y_columns.size()),
           spec});
    }
  }

  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.score > b.score;
            });
  std::vector<chart::VisSpec> out;
  for (const auto& c : candidates) {
    if (static_cast<int>(out.size()) >= n) break;
    out.push_back(c.spec);
  }
  return out;
}

}  // namespace fcm::baselines
