#include "baselines/de_ln.h"

#include <algorithm>

#include "baselines/deepeye.h"
#include "common/logging.h"
#include "common/math_util.h"
#include "relevance/relevance.h"

namespace fcm::baselines {

namespace {

// Plot-area pixels of a rendered chart as a standalone image.
std::vector<float> PlotImage(const chart::RenderedChart& rc, int* w,
                             int* h) {
  const auto& plot = rc.plot;
  *w = plot.Width();
  *h = plot.Height();
  std::vector<float> image(static_cast<size_t>(*w) * *h);
  for (int y = 0; y < *h; ++y) {
    for (int x = 0; x < *w; ++x) {
      image[static_cast<size_t>(y) * *w + x] =
          rc.canvas.At(plot.left + x, plot.top + y);
    }
  }
  return image;
}

}  // namespace

double TrainLineNet(LineNetLite* model, const table::DataLake& lake,
                    const std::vector<core::TrainingTriplet>& training,
                    const chart::ChartStyle& style) {
  std::vector<LineNetLite::TrainingPair> pairs;
  common::Rng rng(model->config().seed + 13);
  for (const auto& triplet : training) {
    if (triplet.chart.lines.empty()) continue;
    int qw = 0, qh = 0;
    const auto query_image = CompositeStrips(triplet.chart, &qw, &qh);
    if (qw == 0) continue;

    auto add_pair = [&](const table::Table& t, bool same) {
      const auto specs = RecommendLineCharts(t, 1);
      if (specs.empty()) return;
      const auto d = chart::BuildUnderlyingData(t, specs[0]);
      bool any = false;
      for (const auto& s : d) any = any || !s.empty();
      if (!any) return;
      const auto rendered = chart::RenderLineChart(d, style);
      LineNetLite::TrainingPair p;
      p.image_a = query_image;
      p.width_a = qw;
      p.height_a = qh;
      p.image_b = PlotImage(rendered, &p.width_b, &p.height_b);
      p.same_source = same;
      pairs.push_back(std::move(p));
    };

    add_pair(lake.Get(triplet.table_id), /*same=*/true);
    for (int n = 0; n < model->config().negatives_per_positive; ++n) {
      const auto other =
          static_cast<table::TableId>(rng.UniformInt(lake.size()));
      if (other == triplet.table_id) continue;
      add_pair(lake.Get(other), /*same=*/false);
    }
  }
  const double loss = model->Train(pairs);
  FCM_LOGS(INFO) << "LineNet trained on " << pairs.size()
                 << " pairs, final loss " << loss;
  return loss;
}

DeLnMethod::DeLnMethod(std::shared_ptr<LineNetLite> linenet,
                       bool train_on_fit, int num_recommendations,
                       chart::ChartStyle style)
    : linenet_(std::move(linenet)),
      train_on_fit_(train_on_fit),
      num_recommendations_(num_recommendations),
      style_(style) {}

void DeLnMethod::Fit(const table::DataLake& lake,
                     const std::vector<core::TrainingTriplet>& training) {
  if (train_on_fit_) TrainLineNet(linenet_.get(), lake, training, style_);
  recommended_embeddings_.assign(lake.size(), {});
  for (const auto& t : lake.tables()) {
    const auto specs = RecommendLineCharts(t, num_recommendations_);
    auto& embeddings =
        recommended_embeddings_[static_cast<size_t>(t.id())];
    for (const auto& spec : specs) {
      const auto d = chart::BuildUnderlyingData(t, spec);
      bool any = false;
      for (const auto& s : d) any = any || !s.empty();
      if (!any) continue;
      const auto rendered = chart::RenderLineChart(d, style_);
      int w = 0, h = 0;
      const auto image = PlotImage(rendered, &w, &h);
      embeddings.push_back(linenet_->Embed(image, w, h));
    }
  }
  query_cache_.clear();
}

double DeLnMethod::Score(const benchgen::QueryRecord& query,
                         const table::Table& t) const {
  auto it = query_cache_.find(&query);
  if (it == query_cache_.end()) {
    it = query_cache_
             .emplace(&query, linenet_->EmbedExtracted(query.extracted))
             .first;
  }
  const auto& embeddings =
      recommended_embeddings_[static_cast<size_t>(t.id())];
  double best = 0.0;
  for (const auto& e : embeddings) {
    best = std::max(best, LineNetLite::Similarity(it->second, e));
  }
  return best;
}

OptLnMethod::OptLnMethod(std::shared_ptr<LineNetLite> linenet,
                         bool train_on_fit, chart::ChartStyle style)
    : linenet_(std::move(linenet)),
      train_on_fit_(train_on_fit),
      style_(style) {}

void OptLnMethod::Fit(const table::DataLake& lake,
                      const std::vector<core::TrainingTriplet>& training) {
  if (train_on_fit_) TrainLineNet(linenet_.get(), lake, training, style_);
  query_cache_.clear();
}

double OptLnMethod::Score(const benchgen::QueryRecord& query,
                          const table::Table& t) const {
  if (query.underlying.empty() || t.num_columns() == 0) return 0.0;
  auto it = query_cache_.find(&query);
  if (it == query_cache_.end()) {
    it = query_cache_
             .emplace(&query, linenet_->EmbedExtracted(query.extracted))
             .first;
  }
  // Oracle column selection: match the query's true underlying data to the
  // candidate's columns (impossible in practice — D is unavailable at
  // query time; this is the declared upper bound).
  table::UnderlyingData d = query.underlying;
  for (auto& s : d) {
    if (s.y.size() > 120) s.y = common::ResampleLinear(s.y, 120);
    s.x.clear();
  }
  rel::RelevanceOptions options;
  options.dtw.band_fraction = 0.2;
  const auto detail = rel::RelevanceWithMatching(d, t, options);
  chart::VisSpec spec;
  for (int col : detail.series_to_column) {
    if (col >= 0 && !t.column(static_cast<size_t>(col)).empty()) {
      spec.y_columns.push_back(col);
    }
  }
  if (spec.y_columns.empty()) return 0.0;
  const auto candidate_data = chart::BuildUnderlyingData(t, spec);
  const auto rendered = chart::RenderLineChart(candidate_data, style_);
  int w = 0, h = 0;
  std::vector<float> image(static_cast<size_t>(rendered.plot.Width()) *
                           rendered.plot.Height());
  w = rendered.plot.Width();
  h = rendered.plot.Height();
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      image[static_cast<size_t>(y) * w + x] =
          rendered.canvas.At(rendered.plot.left + x, rendered.plot.top + y);
    }
  }
  return LineNetLite::Similarity(it->second, linenet_->Embed(image, w, h));
}

}  // namespace fcm::baselines
