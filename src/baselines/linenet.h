// LineNet-style chart-image similarity (substitute for [13] in the DE-LN
// and Opt-LN baselines): a learned whole-chart image embedding trained
// contrastively so charts of the same table embed close together.

#ifndef FCM_BASELINES_LINENET_H_
#define FCM_BASELINES_LINENET_H_

#include <vector>

#include "chart/renderer.h"
#include "core/fcm_config.h"
#include "nn/attention.h"
#include "vision/extracted_chart.h"

namespace fcm::baselines {

/// Training/architecture knobs for LineNetLite.
struct LineNetConfig {
  int image_height = 32;
  int image_width = 128;
  int patch_width = 16;
  int embed_dim = 32;
  int num_heads = 2;
  int num_layers = 2;
  int mlp_hidden = 64;
  int epochs = 6;
  float learning_rate = 1e-3f;
  int negatives_per_positive = 2;
  uint64_t seed = 99;
};

/// ViT-style whole-chart embedder with cosine similarity.
class LineNetLite : public nn::Module {
 public:
  explicit LineNetLite(const LineNetConfig& config = {});

  /// Embeds a raw greyscale chart image (any size; resized internally).
  std::vector<float> Embed(const std::vector<float>& image, int width,
                           int height) const;

  /// Embeds the composite of an extracted chart's line strips (queries are
  /// available only as extractions at search time).
  std::vector<float> EmbedExtracted(
      const vision::ExtractedChart& chart) const;

  /// Embeds a rendered chart's plot-area pixels.
  std::vector<float> EmbedRendered(const chart::RenderedChart& chart) const;

  /// Cosine similarity of two embeddings.
  static double Similarity(const std::vector<float>& a,
                           const std::vector<float>& b);

  /// Contrastive training: pairs of images with binary same-table labels.
  struct TrainingPair {
    std::vector<float> image_a;
    int width_a = 0, height_a = 0;
    std::vector<float> image_b;
    int width_b = 0, height_b = 0;
    bool same_source = false;
  };
  double Train(const std::vector<TrainingPair>& pairs);

  const LineNetConfig& config() const { return config_; }

 private:
  nn::Tensor EmbedTensor(const std::vector<float>& image, int width,
                         int height) const;

  LineNetConfig config_;
  common::Rng rng_;
  nn::Linear patch_projection_;
  nn::TransformerEncoder encoder_;
  nn::Tensor temperature_;
};

/// Composites an extracted chart's per-line strips into one greyscale
/// image (shared by DE-LN/Opt-LN query handling).
std::vector<float> CompositeStrips(const vision::ExtractedChart& chart,
                                   int* width, int* height);

}  // namespace fcm::baselines

#endif  // FCM_BASELINES_LINENET_H_
