#include "chart/renderer.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "chart/axes.h"
#include "common/check.h"
#include "common/math_util.h"

namespace fcm::chart {

double RenderedChart::ValueToRow(double v) const {
  const double lo = y_ticks_layout.axis_lo;
  const double hi = y_ticks_layout.axis_hi;
  const double t = (v - lo) / (hi - lo);
  return plot.bottom - t * (plot.Height() - 1);
}

double RenderedChart::RowToValue(double row) const {
  const double lo = y_ticks_layout.axis_lo;
  const double hi = y_ticks_layout.axis_hi;
  const double t =
      (static_cast<double>(plot.bottom) - row) / (plot.Height() - 1);
  return lo + t * (hi - lo);
}

std::vector<uint8_t> RenderedChart::LineMask(int line_index) const {
  const int16_t id = LineElementId(line_index);
  const auto& el = canvas.elements();
  std::vector<uint8_t> mask(el.size(), 0);
  for (size_t i = 0; i < el.size(); ++i) mask[i] = (el[i] == id) ? 1 : 0;
  return mask;
}

RenderedChart RenderLineChart(const table::UnderlyingData& d,
                              const ChartStyle& style) {
  FCM_CHECK(!d.empty());
  size_t max_len = 0;
  double y_min = std::numeric_limits<double>::infinity();
  double y_max = -std::numeric_limits<double>::infinity();
  for (const auto& s : d) {
    max_len = std::max(max_len, s.size());
    for (double v : s.y) {
      y_min = std::min(y_min, v);
      y_max = std::max(y_max, v);
    }
  }
  FCM_CHECK_GT(max_len, 0u);

  RenderedChart out(style.width, style.height);
  out.num_lines = static_cast<int>(d.size());
  LayoutAndDrawAxes(&out, style, y_min, y_max);

  Canvas& c = out.canvas;

  // Plot each series across the full plot width. For numeric x values the
  // horizontal position is proportional to x; otherwise even spacing.
  for (size_t li = 0; li < d.size(); ++li) {
    const auto& s = d[li];
    if (s.size() == 0) continue;
    const int16_t line_id = LineElementId(static_cast<int>(li));
    double x_lo = 1.0, x_hi = static_cast<double>(s.size());
    if (!s.x.empty()) {
      x_lo = common::Min(s.x);
      x_hi = common::Max(s.x);
      if (x_hi - x_lo < 1e-12) {
        x_lo -= 0.5;
        x_hi += 0.5;
      }
    }
    auto x_pos = [&](size_t i) {
      if (s.size() == 1) return (out.plot.left + out.plot.right) / 2.0;
      const double xv = s.XAt(i);
      const double t = (xv - x_lo) / (x_hi - x_lo);
      return out.plot.left + t * (out.plot.Width() - 1);
    };
    if (s.size() == 1) {
      c.Plot(static_cast<int>(std::lround(x_pos(0))),
             static_cast<int>(std::lround(out.ValueToRow(s.y[0]))), 1.0f,
             line_id);
      continue;
    }
    for (size_t i = 0; i + 1 < s.size(); ++i) {
      c.DrawLineAA(x_pos(i), out.ValueToRow(s.y[i]), x_pos(i + 1),
                   out.ValueToRow(s.y[i + 1]), line_id);
    }
  }
  return out;
}

}  // namespace fcm::chart
