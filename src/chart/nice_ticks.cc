#include "chart/nice_ticks.h"

#include <cmath>

#include "common/check.h"

namespace fcm::chart {

namespace {

// Rounds x to a "nice" value (1, 2, 5) x 10^k; `round` picks nearest,
// otherwise the ceiling — the classic Heckbert labeling helper.
double NiceNum(double x, bool round) {
  const double expv = std::floor(std::log10(x));
  const double f = x / std::pow(10.0, expv);  // 1 <= f < 10.
  double nf;
  if (round) {
    if (f < 1.5) nf = 1.0;
    else if (f < 3.0) nf = 2.0;
    else if (f < 7.0) nf = 5.0;
    else nf = 10.0;
  } else {
    if (f <= 1.0) nf = 1.0;
    else if (f <= 2.0) nf = 2.0;
    else if (f <= 5.0) nf = 5.0;
    else nf = 10.0;
  }
  return nf * std::pow(10.0, expv);
}

}  // namespace

TickLayout ComputeTicks(double lo, double hi, int target_count) {
  FCM_CHECK_GE(target_count, 2);
  if (!(hi > lo)) {
    // Degenerate range: pad around the value.
    const double pad = std::fabs(lo) > 1e-12 ? std::fabs(lo) * 0.1 : 1.0;
    lo -= pad;
    hi += pad;
  }
  TickLayout out;
  const double range = NiceNum(hi - lo, /*round=*/false);
  out.step = NiceNum(range / (target_count - 1), /*round=*/true);
  out.axis_lo = std::floor(lo / out.step) * out.step;
  out.axis_hi = std::ceil(hi / out.step) * out.step;
  const int n = static_cast<int>(
      std::round((out.axis_hi - out.axis_lo) / out.step)) + 1;
  out.ticks.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    double v = out.axis_lo + out.step * i;
    if (std::fabs(v) < out.step * 1e-9) v = 0.0;  // Snap -0 to 0.
    out.ticks.push_back(v);
  }
  return out;
}

}  // namespace fcm::chart
