#include "chart/glyphs.h"

#include "common/string_util.h"

namespace fcm::chart {

namespace {

// 3x5 bitmaps; each row uses bits 2 (left), 1, 0 (right).
struct Glyph {
  char c;
  uint8_t rows[5];
};

constexpr Glyph kGlyphs[] = {
    {'0', {0b111, 0b101, 0b101, 0b101, 0b111}},
    {'1', {0b010, 0b110, 0b010, 0b010, 0b111}},
    {'2', {0b111, 0b001, 0b111, 0b100, 0b111}},
    {'3', {0b111, 0b001, 0b111, 0b001, 0b111}},
    {'4', {0b101, 0b101, 0b111, 0b001, 0b001}},
    {'5', {0b111, 0b100, 0b111, 0b001, 0b111}},
    {'6', {0b111, 0b100, 0b111, 0b101, 0b111}},
    {'7', {0b111, 0b001, 0b010, 0b010, 0b010}},
    {'8', {0b111, 0b101, 0b111, 0b101, 0b111}},
    {'9', {0b111, 0b101, 0b111, 0b001, 0b111}},
    {'-', {0b000, 0b000, 0b111, 0b000, 0b000}},
    {'.', {0b000, 0b000, 0b000, 0b000, 0b010}},
    {'e', {0b000, 0b111, 0b110, 0b100, 0b111}},
    {'+', {0b000, 0b010, 0b111, 0b010, 0b000}},
};

}  // namespace

const uint8_t* GlyphRows(char c) {
  for (const auto& g : kGlyphs) {
    if (g.c == c) return g.rows;
  }
  return nullptr;
}

bool CanRenderText(const std::string& s) {
  for (char c : s) {
    if (GlyphRows(c) == nullptr) return false;
  }
  return true;
}

int DrawText(Canvas* canvas, int x, int y, const std::string& s,
             int16_t element_id) {
  for (char c : s) {
    const uint8_t* rows = GlyphRows(c);
    if (rows != nullptr) {
      for (int r = 0; r < kGlyphHeight; ++r) {
        for (int col = 0; col < kGlyphWidth; ++col) {
          if (rows[r] & (1u << (kGlyphWidth - 1 - col))) {
            canvas->Plot(x + col, y + r, 1.0f, element_id);
          }
        }
      }
    }
    x += kGlyphAdvance;
  }
  return x;
}

int TextWidth(const std::string& s) {
  return static_cast<int>(s.size()) * kGlyphAdvance;
}

std::string FormatTickValue(double v) {
  std::string s = common::StrFormat("%.6g", v);
  return s;
}

}  // namespace fcm::chart
