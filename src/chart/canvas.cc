#include "chart/canvas.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace fcm::chart {

void Canvas::Plot(int x, int y, float alpha, int16_t element_id) {
  if (!InBounds(x, y) || alpha <= 0.0f) return;
  const size_t i = Index(x, y);
  ink_[i] = std::min(1.0f, ink_[i] + alpha);
  // The strongest contributor owns the pixel in the element map; ties go to
  // the most recent painter, matching how an opaque renderer would layer.
  if (alpha >= 0.35f || element_[i] ==
                            static_cast<int16_t>(ElementClass::kBackground)) {
    element_[i] = element_id;
  }
}

void Canvas::DrawLineAA(double x0, double y0, double x1, double y1,
                        int16_t element_id) {
  // Xiaolin Wu's anti-aliased line algorithm.
  const bool steep = std::fabs(y1 - y0) > std::fabs(x1 - x0);
  if (steep) {
    std::swap(x0, y0);
    std::swap(x1, y1);
  }
  if (x0 > x1) {
    std::swap(x0, x1);
    std::swap(y0, y1);
  }
  const double dx = x1 - x0;
  const double dy = y1 - y0;
  const double gradient = dx < 1e-12 ? 1.0 : dy / dx;

  auto ipart = [](double v) { return std::floor(v); };
  auto fpart = [](double v) { return v - std::floor(v); };
  auto rfpart = [&](double v) { return 1.0 - fpart(v); };
  auto plot = [&](int px, int py, double a) {
    if (steep) {
      Plot(py, px, static_cast<float>(a), element_id);
    } else {
      Plot(px, py, static_cast<float>(a), element_id);
    }
  };

  // First endpoint.
  double xend = std::round(x0);
  double yend = y0 + gradient * (xend - x0);
  double xgap = rfpart(x0 + 0.5);
  const int xpxl1 = static_cast<int>(xend);
  int ypxl1 = static_cast<int>(ipart(yend));
  plot(xpxl1, ypxl1, rfpart(yend) * xgap);
  plot(xpxl1, ypxl1 + 1, fpart(yend) * xgap);
  double intery = yend + gradient;

  // Second endpoint.
  xend = std::round(x1);
  yend = y1 + gradient * (xend - x1);
  xgap = fpart(x1 + 0.5);
  const int xpxl2 = static_cast<int>(xend);
  int ypxl2 = static_cast<int>(ipart(yend));
  plot(xpxl2, ypxl2, rfpart(yend) * xgap);
  plot(xpxl2, ypxl2 + 1, fpart(yend) * xgap);

  for (int x = xpxl1 + 1; x <= xpxl2 - 1; ++x) {
    plot(x, static_cast<int>(ipart(intery)), rfpart(intery));
    plot(x, static_cast<int>(ipart(intery)) + 1, fpart(intery));
    intery += gradient;
  }
}

void Canvas::DrawHLine(int x0, int x1, int y, int16_t element_id) {
  if (x0 > x1) std::swap(x0, x1);
  for (int x = x0; x <= x1; ++x) Plot(x, y, 1.0f, element_id);
}

void Canvas::DrawVLine(int x, int y0, int y1, int16_t element_id) {
  if (y0 > y1) std::swap(y0, y1);
  for (int y = y0; y <= y1; ++y) Plot(x, y, 1.0f, element_id);
}

void Canvas::FillRect(int x0, int y0, int x1, int y1, int16_t element_id) {
  if (x0 > x1) std::swap(x0, x1);
  if (y0 > y1) std::swap(y0, y1);
  for (int y = y0; y <= y1; ++y) {
    for (int x = x0; x <= x1; ++x) Plot(x, y, 1.0f, element_id);
  }
}

common::Status Canvas::SavePgm(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return common::Status::IoError("cannot open for writing: " + path);
  }
  std::fprintf(f, "P5\n%d %d\n255\n", width_, height_);
  std::vector<uint8_t> row(static_cast<size_t>(width_));
  for (int y = 0; y < height_; ++y) {
    for (int x = 0; x < width_; ++x) {
      // Ink 1.0 -> black (0), background -> white (255).
      const float v = ink_[static_cast<size_t>(y) * width_ + x];
      row[static_cast<size_t>(x)] =
          static_cast<uint8_t>(std::lround((1.0f - v) * 255.0f));
    }
    std::fwrite(row.data(), 1, row.size(), f);
  }
  if (std::fclose(f) != 0) return common::Status::IoError("close: " + path);
  return common::Status::OK();
}

}  // namespace fcm::chart
