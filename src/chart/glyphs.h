// A tiny 3x5 bitmap font for tick labels (digits, minus, dot, e, plus).
//
// Rendering real glyphs (instead of carrying tick values in a metadata
// sidecar) lets the classical visual-element extractor *read* the y-axis
// range off the pixels, exercising the same contract the paper's Mask R-CNN
// + OCR pipeline provides.

#ifndef FCM_CHART_GLYPHS_H_
#define FCM_CHART_GLYPHS_H_

#include <string>

#include "chart/canvas.h"

namespace fcm::chart {

inline constexpr int kGlyphWidth = 3;
inline constexpr int kGlyphHeight = 5;
/// Horizontal advance between glyph origins.
inline constexpr int kGlyphAdvance = 4;

/// Returns the 5-row bitmap for `c` (rows of 3 bits, MSB = left pixel), or
/// nullptr for unsupported characters. Supported: 0-9 - . e +
const uint8_t* GlyphRows(char c);

/// True when every character of `s` has a glyph.
bool CanRenderText(const std::string& s);

/// Renders `s` with its left baseline origin at (x, y) (top-left of first
/// glyph). Returns the x coordinate just past the rendered text.
int DrawText(Canvas* canvas, int x, int y, const std::string& s,
             int16_t element_id);

/// Width in pixels DrawText would occupy.
int TextWidth(const std::string& s);

/// Formats a tick value compactly (no trailing zeros) so it fits the font.
std::string FormatTickValue(double v);

}  // namespace fcm::chart

#endif  // FCM_CHART_GLYPHS_H_
