// Declarative description of a line chart to render (the "visualization
// specification" attached to each Plotly record in the paper's corpus).

#ifndef FCM_CHART_CHART_SPEC_H_
#define FCM_CHART_CHART_SPEC_H_

#include "table/aggregate.h"
#include "table/data_series.h"
#include "table/table.h"

namespace fcm::chart {

/// How to build the underlying data D from a table (paper Sec. II):
/// a set of (x column, y column) pairs plus an optional aggregation.
struct VisSpec {
  /// Column index used for the x axis; -1 means auto index (1, 2, 3, ...).
  int x_column = -1;
  /// Column indices plotted as lines (the y columns).
  std::vector<int> y_columns;
  /// Aggregation applied to each y series before plotting.
  table::AggregateOp aggregate = table::AggregateOp::kNone;
  /// Non-overlapping aggregation window size (ignored for kNone).
  size_t window_size = 1;
};

/// Materializes the underlying data D = {d_1..d_M} from a table according
/// to a VisSpec. Aggregation is applied to y values; x values are the
/// window-start x (or auto index).
table::UnderlyingData BuildUnderlyingData(const table::Table& t,
                                          const VisSpec& spec);

/// Rendering parameters for the rasterizer.
struct ChartStyle {
  int width = 240;
  int height = 120;
  /// Target number of y-axis ticks.
  int y_tick_count = 5;
  bool draw_axes = true;
  bool draw_tick_labels = true;
  /// Margin pixels reserved outside the plot area (left is computed from
  /// tick label width when labels are drawn).
  int margin_top = 4;
  int margin_right = 4;
  int margin_bottom = 6;
  int min_margin_left = 8;
};

}  // namespace fcm::chart

#endif  // FCM_CHART_CHART_SPEC_H_
