// Shared axis/tick layout + drawing for all chart types with y axes
// (line, bar, scatter): computes "nice" ticks for the data range, sizes
// the left margin to the widest tick label, draws axes, tick marks and
// labels, and records RenderedTicks.

#ifndef FCM_CHART_AXES_H_
#define FCM_CHART_AXES_H_

#include "chart/chart_spec.h"
#include "chart/renderer.h"

namespace fcm::chart {

/// Initializes `out->y_ticks_layout`, `out->plot` and `out->y_ticks` for
/// data range [y_min, y_max] and draws axes/ticks/labels onto the canvas
/// according to `style`. Requires the canvas dimensions to match `style`.
void LayoutAndDrawAxes(RenderedChart* out, const ChartStyle& style,
                       double y_min, double y_max);

}  // namespace fcm::chart

#endif  // FCM_CHART_AXES_H_
