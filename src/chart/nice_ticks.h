// "Nice number" axis tick computation (loose labeling), as used by real
// plotting libraries: ticks land on multiples of {1, 2, 5} x 10^k and the
// tick range covers the data range.

#ifndef FCM_CHART_NICE_TICKS_H_
#define FCM_CHART_NICE_TICKS_H_

#include <vector>

namespace fcm::chart {

/// Axis tick layout: evenly spaced "nice" values covering [lo, hi].
struct TickLayout {
  /// Tick values in ascending order (at least 2).
  std::vector<double> ticks;
  /// The padded axis range implied by the ticks.
  double axis_lo = 0.0;
  double axis_hi = 1.0;
  /// Spacing between consecutive ticks.
  double step = 1.0;
};

/// Computes a loose tick layout for data range [lo, hi] targeting about
/// `target_count` ticks. Degenerate ranges (hi <= lo) are padded around the
/// value.
TickLayout ComputeTicks(double lo, double hi, int target_count = 5);

}  // namespace fcm::chart

#endif  // FCM_CHART_NICE_TICKS_H_
