// Line chart rasterizer. Renders underlying data into a greyscale canvas
// with axes, y-tick marks and y-tick labels, and records per-element pixel
// masks — our equivalent of instrumenting Plotly's pixel rendering to build
// the LineChartSeg corpus (paper Sec. IV-A).

#ifndef FCM_CHART_RENDERER_H_
#define FCM_CHART_RENDERER_H_

#include <vector>

#include "chart/canvas.h"
#include "chart/chart_spec.h"
#include "chart/nice_ticks.h"
#include "table/data_series.h"

namespace fcm::chart {

/// One rendered y-axis tick: value + pixel row of its mark.
struct RenderedTick {
  double value = 0.0;
  int row = 0;
};

/// The plot-area rectangle in pixel coordinates (inclusive bounds).
struct PlotArea {
  int left = 0, right = 0, top = 0, bottom = 0;
  int Width() const { return right - left + 1; }
  int Height() const { return bottom - top + 1; }
};

/// A rendered line chart plus the instrumentation metadata (masks, ticks,
/// geometry) that downstream components and LineChartSeg rely on.
struct RenderedChart {
  Canvas canvas;
  PlotArea plot;
  TickLayout y_ticks_layout;
  std::vector<RenderedTick> y_ticks;
  /// Number of plotted lines M.
  int num_lines = 0;

  RenderedChart(int w, int h) : canvas(w, h) {}

  /// Maps a data value to a (fractional) pixel row inside the plot area.
  double ValueToRow(double v) const;
  /// Inverse of ValueToRow.
  double RowToValue(double row) const;

  /// Per-line binary mask (true where the line deposited >= threshold ink),
  /// derived from the element map.
  std::vector<uint8_t> LineMask(int line_index) const;
};

/// Renders underlying data `d` with the given style. Series may have
/// different lengths; each spans the full plot width. Requires at least one
/// non-empty series.
RenderedChart RenderLineChart(const table::UnderlyingData& d,
                              const ChartStyle& style = {});

}  // namespace fcm::chart

#endif  // FCM_CHART_RENDERER_H_
