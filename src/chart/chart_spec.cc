#include "chart/chart_spec.h"

#include "common/check.h"

namespace fcm::chart {

table::UnderlyingData BuildUnderlyingData(const table::Table& t,
                                          const VisSpec& spec) {
  table::UnderlyingData d;
  d.reserve(spec.y_columns.size());
  for (int yc : spec.y_columns) {
    FCM_CHECK_GE(yc, 0);
    FCM_CHECK_LT(static_cast<size_t>(yc), t.num_columns());
    table::DataSeries s;
    s.label = t.column(static_cast<size_t>(yc)).name;
    s.y = table::Aggregate(t.column(static_cast<size_t>(yc)).values,
                           spec.aggregate, spec.window_size);
    if (spec.x_column >= 0) {
      FCM_CHECK_LT(static_cast<size_t>(spec.x_column), t.num_columns());
      const auto& xv = t.column(static_cast<size_t>(spec.x_column)).values;
      // One x per aggregation window (window start).
      const size_t step =
          spec.aggregate == table::AggregateOp::kNone ? 1 : spec.window_size;
      for (size_t i = 0; i < xv.size() && s.x.size() < s.y.size();
           i += step) {
        s.x.push_back(xv[i]);
      }
    }
    d.push_back(std::move(s));
  }
  return d;
}

}  // namespace fcm::chart
