#include "chart/linechartseg.h"

#include <algorithm>

#include "table/augment.h"

namespace fcm::chart {

SegExample MakeSegExample(const RenderedChart& chart) {
  SegExample ex;
  ex.width = chart.canvas.width();
  ex.height = chart.canvas.height();
  ex.image = chart.canvas.ink();
  const auto& el = chart.canvas.elements();
  ex.label.resize(el.size());
  const int16_t line_base = static_cast<int16_t>(ElementClass::kLineBase);
  for (size_t i = 0; i < el.size(); ++i) {
    if (el[i] >= line_base) {
      ex.label[i] = static_cast<uint8_t>(SegClass::kLine);
    } else {
      switch (static_cast<ElementClass>(el[i])) {
        case ElementClass::kAxis:
          ex.label[i] = static_cast<uint8_t>(SegClass::kAxis);
          break;
        case ElementClass::kTickMark:
          ex.label[i] = static_cast<uint8_t>(SegClass::kTickMark);
          break;
        case ElementClass::kTickLabel:
          ex.label[i] = static_cast<uint8_t>(SegClass::kTickLabel);
          break;
        default:
          ex.label[i] = static_cast<uint8_t>(SegClass::kBackground);
      }
    }
  }
  return ex;
}

namespace {

// Re-validates a spec against an augmented table (partitioning changes the
// column count); falls back to the first min(M, NC) columns.
VisSpec AdaptSpec(const VisSpec& spec, const table::Table& t) {
  VisSpec s = spec;
  s.x_column = -1;  // Augmented tables use auto index.
  bool valid = !s.y_columns.empty();
  for (int yc : s.y_columns) {
    if (yc < 0 || static_cast<size_t>(yc) >= t.num_columns() ||
        t.column(static_cast<size_t>(yc)).empty()) {
      valid = false;
      break;
    }
  }
  if (!valid) {
    s.y_columns.clear();
    const size_t m = std::min(std::max<size_t>(spec.y_columns.size(), 1),
                              t.num_columns());
    for (size_t i = 0; i < m; ++i) {
      if (!t.column(i).empty()) s.y_columns.push_back(static_cast<int>(i));
    }
  }
  return s;
}

}  // namespace

std::vector<SegExample> GenerateLineChartSeg(const table::Table& t,
                                             const VisSpec& spec,
                                             size_t augmentations,
                                             const ChartStyle& style,
                                             common::Rng* rng) {
  std::vector<SegExample> out;
  {
    const auto d = BuildUnderlyingData(t, spec);
    out.push_back(MakeSegExample(RenderLineChart(d, style)));
  }
  const std::vector<table::Table> aug =
      table::RandomAugmentations(t, augmentations, /*p=*/0.5, rng);
  for (const auto& at : aug) {
    if (at.num_columns() == 0) continue;
    const VisSpec s = AdaptSpec(spec, at);
    if (s.y_columns.empty()) continue;
    const auto d = BuildUnderlyingData(at, s);
    bool any = false;
    for (const auto& ds : d) any = any || !ds.empty();
    if (!any) continue;
    out.push_back(MakeSegExample(RenderLineChart(d, style)));
  }
  return out;
}

}  // namespace fcm::chart
