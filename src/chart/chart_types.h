// Generalization to other chart types (paper Sec. VI-B): bar, scatter and
// pie chart rasterizers sharing the line-chart renderer's axis/tick layout
// and per-element mask instrumentation. Each plotted series (bar group
// member, marker series, pie sector) is painted with a distinct element id
// (kLineBase + index) and a distinct ink intensity — the greyscale
// equivalent of the per-series colors real charts use, which is what the
// pixels-only extractors key on.

#ifndef FCM_CHART_CHART_TYPES_H_
#define FCM_CHART_CHART_TYPES_H_

#include <vector>

#include "chart/chart_spec.h"
#include "chart/renderer.h"
#include "table/data_series.h"

namespace fcm::chart {

/// Chart types supported by the generalized pipeline.
enum class ChartType { kLine = 0, kBar = 1, kScatter = 2, kPie = 3 };

const char* ChartTypeName(ChartType type);

/// Ink intensity used for the i-th series in bar/scatter/pie charts.
/// Distinct per series (within kMaxDistinctSeries) and bounded away from 0
/// so thresholding still separates ink from background.
float SeriesInkIntensity(int series_index);
inline constexpr int kMaxDistinctSeries = 8;

/// Renders a grouped bar chart: for M series of N values each, the plot
/// width is split into N groups and each group holds M bars side by side.
/// Bars grow from the value-0 baseline (clamped to the axis range). Axis,
/// tick and mask conventions match RenderLineChart; the i-th series' bars
/// carry element id LineElementId(i). Requires at least one non-empty
/// series; series are truncated to the shortest length.
RenderedChart RenderBarChart(const table::UnderlyingData& d,
                             const ChartStyle& style = {});

/// Marker shapes cycle per series so scatter series remain separable even
/// without intensity information.
enum class MarkerShape { kSquare = 0, kPlus = 1, kCross = 2, kDiamond = 3 };
MarkerShape SeriesMarker(int series_index);

/// Renders a scatter chart: each data point of series i is drawn as a
/// small marker (shape cycling by series) with element id LineElementId(i).
RenderedChart RenderScatterChart(const table::UnderlyingData& d,
                                 const ChartStyle& style = {});

/// Renders a pie chart of the given non-negative weights: a filled disk
/// centered in the canvas, sector i spanning an angle proportional to
/// weights[i] / sum(weights), painted with intensity SeriesInkIntensity(i)
/// and element id LineElementId(i). Sectors start at 12 o'clock and
/// proceed clockwise. num_lines is set to the number of sectors; axes and
/// ticks are not drawn. Requires at least one positive weight.
RenderedChart RenderPieChart(const std::vector<double>& weights,
                             const ChartStyle& style = {});

}  // namespace fcm::chart

#endif  // FCM_CHART_CHART_TYPES_H_
