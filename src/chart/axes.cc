#include "chart/axes.h"

#include <algorithm>
#include <cmath>

#include "chart/glyphs.h"
#include "common/check.h"

namespace fcm::chart {

void LayoutAndDrawAxes(RenderedChart* out, const ChartStyle& style,
                       double y_min, double y_max) {
  out->y_ticks_layout = ComputeTicks(y_min, y_max, style.y_tick_count);

  // Left margin: widest tick label + tick mark (3px) + 1px gap.
  int left_margin = style.min_margin_left;
  if (style.draw_axes && style.draw_tick_labels) {
    int widest = 0;
    for (double v : out->y_ticks_layout.ticks) {
      widest = std::max(widest, TextWidth(FormatTickValue(v)));
    }
    left_margin = std::max(left_margin, widest + 5);
  }
  out->plot.left = left_margin;
  out->plot.right = style.width - 1 - style.margin_right;
  out->plot.top = style.margin_top;
  out->plot.bottom = style.height - 1 - style.margin_bottom;
  FCM_CHECK_LT(out->plot.left, out->plot.right);
  FCM_CHECK_LT(out->plot.top, out->plot.bottom);

  Canvas& c = out->canvas;
  const int16_t axis_id = static_cast<int16_t>(ElementClass::kAxis);
  const int16_t tick_id = static_cast<int16_t>(ElementClass::kTickMark);
  const int16_t label_id = static_cast<int16_t>(ElementClass::kTickLabel);

  if (style.draw_axes) {
    // Y axis (left) and X axis (bottom).
    c.DrawVLine(out->plot.left - 1, out->plot.top, out->plot.bottom + 1,
                axis_id);
    c.DrawHLine(out->plot.left - 1, out->plot.right, out->plot.bottom + 1,
                axis_id);
    for (double v : out->y_ticks_layout.ticks) {
      const int row = static_cast<int>(std::lround(out->ValueToRow(v)));
      if (row < out->plot.top || row > out->plot.bottom) continue;
      c.DrawHLine(out->plot.left - 4, out->plot.left - 2, row, tick_id);
      out->y_ticks.push_back({v, row});
      if (style.draw_tick_labels) {
        const std::string text = FormatTickValue(v);
        const int tx = out->plot.left - 5 - TextWidth(text);
        DrawText(&c, std::max(0, tx), row - kGlyphHeight / 2, text, label_id);
      }
    }
  } else {
    for (double v : out->y_ticks_layout.ticks) {
      const int row = static_cast<int>(std::lround(out->ValueToRow(v)));
      if (row >= out->plot.top && row <= out->plot.bottom) {
        out->y_ticks.push_back({v, row});
      }
    }
  }
}

}  // namespace fcm::chart
