#include "chart/chart_types.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "chart/axes.h"
#include "common/check.h"
#include "common/math_util.h"

namespace fcm::chart {

const char* ChartTypeName(ChartType type) {
  switch (type) {
    case ChartType::kLine: return "line";
    case ChartType::kBar: return "bar";
    case ChartType::kScatter: return "scatter";
    case ChartType::kPie: return "pie";
  }
  return "unknown";
}

float SeriesInkIntensity(int series_index) {
  // Evenly spaced levels in [0.44, 1.0], strongest first. Spacing of 0.08
  // keeps levels separable after thresholding and anti-alias haze, and all
  // levels clear Canvas::Plot's 0.35 element-ownership cutoff.
  const int slot = series_index % kMaxDistinctSeries;
  return 1.0f - 0.08f * static_cast<float>(slot);
}

namespace {

/// Data range over all y values of the underlying data.
void YRange(const table::UnderlyingData& d, double* y_min, double* y_max) {
  *y_min = std::numeric_limits<double>::infinity();
  *y_max = -std::numeric_limits<double>::infinity();
  for (const auto& s : d) {
    for (double v : s.y) {
      *y_min = std::min(*y_min, v);
      *y_max = std::max(*y_max, v);
    }
  }
}

size_t ShortestSeries(const table::UnderlyingData& d) {
  size_t n = std::numeric_limits<size_t>::max();
  for (const auto& s : d) n = std::min(n, s.size());
  return n;
}

/// Fills an axis-aligned rectangle with a constant ink intensity.
void FillRectIntensity(Canvas* c, int x0, int y0, int x1, int y1,
                       float intensity, int16_t element_id) {
  if (x0 > x1) std::swap(x0, x1);
  if (y0 > y1) std::swap(y0, y1);
  for (int y = y0; y <= y1; ++y) {
    for (int x = x0; x <= x1; ++x) c->Plot(x, y, intensity, element_id);
  }
}

}  // namespace

RenderedChart RenderBarChart(const table::UnderlyingData& d,
                             const ChartStyle& style) {
  FCM_CHECK(!d.empty());
  const size_t num_groups = ShortestSeries(d);
  FCM_CHECK_GT(num_groups, 0u);
  const int num_series = static_cast<int>(d.size());

  double y_min, y_max;
  YRange(d, &y_min, &y_max);
  // Bars grow from 0, so the axis must include the baseline.
  y_min = std::min(y_min, 0.0);
  y_max = std::max(y_max, 0.0);

  RenderedChart out(style.width, style.height);
  out.num_lines = num_series;
  LayoutAndDrawAxes(&out, style, y_min, y_max);

  // Group layout: each group gets an equal horizontal slot; bars fill the
  // slot minus a 20% gap, divided evenly among the series.
  const double slot_width =
      static_cast<double>(out.plot.Width()) / static_cast<double>(num_groups);
  const double bars_width = slot_width * 0.8;
  const double bar_width =
      bars_width / static_cast<double>(num_series);
  const double baseline_row = out.ValueToRow(0.0);

  for (int si = 0; si < num_series; ++si) {
    const int16_t id = LineElementId(si);
    const float intensity = SeriesInkIntensity(si);
    for (size_t g = 0; g < num_groups; ++g) {
      const double v = d[static_cast<size_t>(si)].y[g];
      const double slot_left = out.plot.left + slot_width * g;
      const double x0 = slot_left + slot_width * 0.1 + bar_width * si;
      const double x1 = x0 + bar_width - 1.0;
      const double value_row = out.ValueToRow(v);
      FillRectIntensity(
          &out.canvas, static_cast<int>(std::lround(x0)),
          static_cast<int>(std::lround(std::min(value_row, baseline_row))),
          static_cast<int>(std::lround(std::max(x1, x0))),
          static_cast<int>(std::lround(std::max(value_row, baseline_row))),
          intensity, id);
    }
  }
  return out;
}

MarkerShape SeriesMarker(int series_index) {
  return static_cast<MarkerShape>(series_index % 4);
}

namespace {

/// Paints a marker centered at (cx, cy); half-extent 1px (3x3 footprint).
void DrawMarker(Canvas* c, int cx, int cy, MarkerShape shape, float intensity,
                int16_t element_id) {
  auto put = [&](int dx, int dy) {
    c->Plot(cx + dx, cy + dy, intensity, element_id);
  };
  switch (shape) {
    case MarkerShape::kSquare:
      for (int dy = -1; dy <= 1; ++dy) {
        for (int dx = -1; dx <= 1; ++dx) put(dx, dy);
      }
      break;
    case MarkerShape::kPlus:
      put(0, 0);
      put(-1, 0);
      put(1, 0);
      put(0, -1);
      put(0, 1);
      break;
    case MarkerShape::kCross:
      put(0, 0);
      put(-1, -1);
      put(1, -1);
      put(-1, 1);
      put(1, 1);
      break;
    case MarkerShape::kDiamond:
      put(0, 0);
      put(-1, 0);
      put(1, 0);
      put(0, -1);
      put(0, 1);
      put(0, 0);
      break;
  }
}

}  // namespace

RenderedChart RenderScatterChart(const table::UnderlyingData& d,
                                 const ChartStyle& style) {
  FCM_CHECK(!d.empty());
  double y_min, y_max;
  YRange(d, &y_min, &y_max);
  FCM_CHECK(std::isfinite(y_min));

  RenderedChart out(style.width, style.height);
  out.num_lines = static_cast<int>(d.size());
  LayoutAndDrawAxes(&out, style, y_min, y_max);

  for (size_t si = 0; si < d.size(); ++si) {
    const auto& s = d[si];
    if (s.empty()) continue;
    const int16_t id = LineElementId(static_cast<int>(si));
    const float intensity = SeriesInkIntensity(static_cast<int>(si));
    const MarkerShape shape = SeriesMarker(static_cast<int>(si));
    double x_lo = 1.0, x_hi = static_cast<double>(s.size());
    if (!s.x.empty()) {
      x_lo = common::Min(s.x);
      x_hi = common::Max(s.x);
      if (x_hi - x_lo < 1e-12) {
        x_lo -= 0.5;
        x_hi += 0.5;
      }
    }
    for (size_t i = 0; i < s.size(); ++i) {
      double t = 0.5;
      if (s.size() > 1) t = (s.XAt(i) - x_lo) / (x_hi - x_lo);
      const int cx = static_cast<int>(
          std::lround(out.plot.left + t * (out.plot.Width() - 1)));
      const int cy = static_cast<int>(std::lround(out.ValueToRow(s.y[i])));
      DrawMarker(&out.canvas, cx, cy, shape, intensity, id);
    }
  }
  return out;
}

RenderedChart RenderPieChart(const std::vector<double>& weights,
                             const ChartStyle& style) {
  double total = 0.0;
  for (double w : weights) {
    FCM_CHECK_GE(w, 0.0);
    total += w;
  }
  FCM_CHECK_GT(total, 0.0);

  RenderedChart out(style.width, style.height);
  out.num_lines = static_cast<int>(weights.size());
  // No axes/ticks for a pie; the full canvas is the plot area.
  out.plot = {0, style.width - 1, 0, style.height - 1};
  out.y_ticks_layout.axis_lo = 0.0;
  out.y_ticks_layout.axis_hi = 1.0;

  const double cx = 0.5 * (style.width - 1);
  const double cy = 0.5 * (style.height - 1);
  const double radius = 0.5 * std::min(style.width, style.height) - 2.0;

  // Cumulative angle bounds per sector, starting at 12 o'clock, clockwise.
  std::vector<double> bounds(weights.size() + 1, 0.0);
  for (size_t i = 0; i < weights.size(); ++i) {
    bounds[i + 1] = bounds[i] + weights[i] / total;
  }

  for (int y = 0; y < style.height; ++y) {
    for (int x = 0; x < style.width; ++x) {
      const double dx = x - cx;
      const double dy = y - cy;
      if (dx * dx + dy * dy > radius * radius) continue;
      // Angle fraction in [0, 1): 0 at 12 o'clock, growing clockwise.
      double frac = std::atan2(dx, -dy) / (2.0 * M_PI);
      if (frac < 0.0) frac += 1.0;
      // Find the owning sector (bounds are sorted).
      const auto it =
          std::upper_bound(bounds.begin(), bounds.end(), frac);
      int sector =
          static_cast<int>(std::distance(bounds.begin(), it)) - 1;
      sector = std::clamp(sector, 0,
                          static_cast<int>(weights.size()) - 1);
      out.canvas.Plot(x, y, SeriesInkIntensity(sector),
                      LineElementId(sector));
    }
  }
  return out;
}

}  // namespace fcm::chart
