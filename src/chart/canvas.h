// Greyscale raster canvas with anti-aliased line drawing and a parallel
// per-pixel element-id map (the instrumentation that makes LineChartSeg
// possible: every pixel knows which visual element painted it).

#ifndef FCM_CHART_CANVAS_H_
#define FCM_CHART_CANVAS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/result.h"

namespace fcm::chart {

/// Element classes for the per-pixel mask (paper Sec. IV-A: LineChartSeg
/// labels each pixel with its visual element).
enum class ElementClass : int16_t {
  kBackground = 0,
  kAxis = 1,
  kTickMark = 2,
  kTickLabel = 3,
  /// Lines get id kLineBase + line_index.
  kLineBase = 16,
};

/// Mask id for the i-th plotted line.
inline int16_t LineElementId(int line_index) {
  return static_cast<int16_t>(static_cast<int>(ElementClass::kLineBase) +
                              line_index);
}

/// A greyscale image: intensity 0 = white background, 1 = full ink.
/// Pixels are stored row-major; (x, y) has x growing right, y growing down.
class Canvas {
 public:
  Canvas(int width, int height)
      : width_(width), height_(height),
        ink_(static_cast<size_t>(width) * height, 0.0f),
        element_(static_cast<size_t>(width) * height,
                 static_cast<int16_t>(ElementClass::kBackground)) {
    FCM_CHECK_GT(width, 0);
    FCM_CHECK_GT(height, 0);
  }

  int width() const { return width_; }
  int height() const { return height_; }

  float At(int x, int y) const { return ink_[Index(x, y)]; }
  int16_t ElementAt(int x, int y) const { return element_[Index(x, y)]; }

  /// Deposits ink at (x, y) with the given alpha (clamped accumulation) and
  /// records the painting element. Out-of-bounds plots are ignored.
  void Plot(int x, int y, float alpha, int16_t element_id);

  /// Anti-aliased line segment (Xiaolin Wu's algorithm) from (x0,y0) to
  /// (x1,y1) in continuous pixel coordinates.
  void DrawLineAA(double x0, double y0, double x1, double y1,
                  int16_t element_id);

  /// 1px-thick horizontal/vertical hard line (axes, tick marks).
  void DrawHLine(int x0, int x1, int y, int16_t element_id);
  void DrawVLine(int x, int y0, int y1, int16_t element_id);

  /// Fills a rectangle (used by glyph rendering).
  void FillRect(int x0, int y0, int x1, int y1, int16_t element_id);

  /// Raw buffers (row-major, width*height).
  const std::vector<float>& ink() const { return ink_; }
  const std::vector<int16_t>& elements() const { return element_; }

  /// Saves as binary PGM (for human inspection).
  common::Status SavePgm(const std::string& path) const;

 private:
  size_t Index(int x, int y) const {
    FCM_DCHECK(InBounds(x, y));
    return static_cast<size_t>(y) * width_ + x;
  }
  bool InBounds(int x, int y) const {
    return x >= 0 && x < width_ && y >= 0 && y < height_;
  }

  int width_;
  int height_;
  std::vector<float> ink_;
  std::vector<int16_t> element_;
};

}  // namespace fcm::chart

#endif  // FCM_CHART_CANVAS_H_
