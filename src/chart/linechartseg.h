// LineChartSeg (paper Sec. IV-A): the first corpus for line-chart
// segmentation, generated automatically by instrumenting the renderer so
// every pixel carries its visual-element class. Augmentations operate on
// the *tabular* source (reverse / partition / down-sample), never on the
// image, preserving chart semantics.

#ifndef FCM_CHART_LINECHARTSEG_H_
#define FCM_CHART_LINECHARTSEG_H_

#include <vector>

#include "chart/chart_spec.h"
#include "chart/renderer.h"
#include "common/rng.h"
#include "table/table.h"

namespace fcm::chart {

/// Pixel classes for the segmentation task (collapsed from element ids:
/// all lines map to kLine — instance separation is recovered by connected
/// components downstream).
enum class SegClass : uint8_t {
  kBackground = 0,
  kAxis = 1,
  kTickMark = 2,
  kTickLabel = 3,
  kLine = 4,
};
inline constexpr int kNumSegClasses = 5;

/// One segmentation training example: greyscale image + per-pixel class.
struct SegExample {
  int width = 0;
  int height = 0;
  std::vector<float> image;   // Row-major ink values in [0, 1].
  std::vector<uint8_t> label;  // Row-major SegClass values.
};

/// Converts a rendered chart into a segmentation example.
SegExample MakeSegExample(const RenderedChart& chart);

/// Generates LineChartSeg examples from a (table, spec) pair:
/// the original chart plus `augmentations` augmented variants (reverse /
/// partition / down-sample applied to the table, each with probability
/// 0.5). Specs whose y columns disappear under partitioning fall back to
/// plotting the first min(M, NC) columns of the augmented table.
std::vector<SegExample> GenerateLineChartSeg(const table::Table& t,
                                             const VisSpec& spec,
                                             size_t augmentations,
                                             const ChartStyle& style,
                                             common::Rng* rng);

}  // namespace fcm::chart

#endif  // FCM_CHART_LINECHARTSEG_H_
