#include "relevance/distribution.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace fcm::rel {

std::vector<double> NormalizeToDistribution(const std::vector<double>& w) {
  std::vector<double> p(w.size(), 0.0);
  if (w.empty()) return p;
  double total = 0.0;
  for (size_t i = 0; i < w.size(); ++i) {
    p[i] = std::max(0.0, w[i]);
    total += p[i];
  }
  if (total <= 0.0) {
    std::fill(p.begin(), p.end(), 1.0 / static_cast<double>(p.size()));
    return p;
  }
  for (double& v : p) v /= total;
  return p;
}

double KlDivergence(const std::vector<double>& p, const std::vector<double>& q,
                    double epsilon) {
  FCM_CHECK_EQ(p.size(), q.size());
  double kl = 0.0;
  for (size_t i = 0; i < p.size(); ++i) {
    if (p[i] <= 0.0) continue;
    kl += p[i] * std::log(p[i] / std::max(q[i], epsilon));
  }
  return kl;
}

double SymmetricKl(const std::vector<double>& p, const std::vector<double>& q,
                   double epsilon) {
  return KlDivergence(p, q, epsilon) + KlDivergence(q, p, epsilon);
}

double JensenShannon(const std::vector<double>& p,
                     const std::vector<double>& q) {
  FCM_CHECK_EQ(p.size(), q.size());
  std::vector<double> m(p.size());
  for (size_t i = 0; i < p.size(); ++i) m[i] = 0.5 * (p[i] + q[i]);
  return 0.5 * KlDivergence(p, m) + 0.5 * KlDivergence(q, m);
}

double PieLowLevelRelevance(const std::vector<double>& shares,
                            const std::vector<double>& column_values) {
  if (shares.empty() || column_values.empty()) return 0.0;
  std::vector<double> p = NormalizeToDistribution(shares);
  std::vector<double> q = NormalizeToDistribution(column_values);
  const size_t n = std::max(p.size(), q.size());
  p.resize(n, 0.0);
  q.resize(n, 0.0);
  return 1.0 / (1.0 + SymmetricKl(p, q));
}

double PieRelevance(const std::vector<double>& shares, const table::Table& t,
                    int exclude_column) {
  double best = 0.0;
  for (size_t c = 0; c < t.num_columns(); ++c) {
    if (static_cast<int>(c) == exclude_column) continue;
    best = std::max(
        best, PieLowLevelRelevance(shares, t.column(c).values));
  }
  return best;
}

}  // namespace fcm::rel
