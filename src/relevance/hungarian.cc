#include "relevance/hungarian.h"

#include <algorithm>
#include <limits>

#include "common/check.h"

namespace fcm::rel {

namespace {

// Classic Hungarian algorithm with potentials on an n x m cost matrix
// (n <= m), minimizing total cost. Returns row -> column assignment
// (every row assigned). 1-indexed internals per the standard formulation.
std::vector<int> SolveMinCost(const std::vector<std::vector<double>>& cost) {
  const int n = static_cast<int>(cost.size());
  const int m = n == 0 ? 0 : static_cast<int>(cost[0].size());
  FCM_CHECK_LE(n, m);
  const double inf = std::numeric_limits<double>::infinity();

  std::vector<double> u(n + 1, 0.0), v(m + 1, 0.0);
  std::vector<int> p(m + 1, 0), way(m + 1, 0);
  for (int i = 1; i <= n; ++i) {
    p[0] = i;
    int j0 = 0;
    std::vector<double> minv(m + 1, inf);
    std::vector<char> used(m + 1, false);
    do {
      used[j0] = true;
      const int i0 = p[j0];
      double delta = inf;
      int j1 = -1;
      for (int j = 1; j <= m; ++j) {
        if (used[j]) continue;
        const double cur = cost[i0 - 1][j - 1] - u[i0] - v[j];
        if (cur < minv[j]) {
          minv[j] = cur;
          way[j] = j0;
        }
        if (minv[j] < delta) {
          delta = minv[j];
          j1 = j;
        }
      }
      for (int j = 0; j <= m; ++j) {
        if (used[j]) {
          u[p[j]] += delta;
          v[j] -= delta;
        } else {
          minv[j] -= delta;
        }
      }
      j0 = j1;
    } while (p[j0] != 0);
    do {
      const int j1 = way[j0];
      p[j0] = p[j1];
      j0 = j1;
    } while (j0 != 0);
  }

  std::vector<int> row_to_col(n, -1);
  for (int j = 1; j <= m; ++j) {
    if (p[j] > 0) row_to_col[p[j] - 1] = j - 1;
  }
  return row_to_col;
}

}  // namespace

MatchingResult MaxWeightBipartiteMatching(
    const std::vector<std::vector<double>>& weights) {
  MatchingResult result;
  const size_t rows = weights.size();
  if (rows == 0) return result;
  const size_t cols = weights[0].size();
  for (const auto& r : weights) FCM_CHECK_EQ(r.size(), cols);
  result.assignment.assign(rows, -1);
  if (cols == 0) return result;

  // Orient so the smaller side is the row side (Hungarian needs n <= m).
  const bool transposed = rows > cols;
  const size_t n = transposed ? cols : rows;
  const size_t m = transposed ? rows : cols;

  double max_w = 0.0;
  for (const auto& r : weights) {
    for (double w : r) max_w = std::max(max_w, w);
  }
  // Convert maximization to minimization. "Never match" (negative weight)
  // costs more than any chain of real assignments can save.
  const double forbidden_cost = (max_w + 1.0) * static_cast<double>(n + 1);
  std::vector<std::vector<double>> cost(n, std::vector<double>(m));
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < m; ++j) {
      const double w = transposed ? weights[j][i] : weights[i][j];
      cost[i][j] = w < 0.0 ? forbidden_cost : max_w - w;
    }
  }

  const std::vector<int> row_to_col = SolveMinCost(cost);
  for (size_t i = 0; i < n; ++i) {
    const int j = row_to_col[i];
    if (j < 0) continue;
    const double w = transposed ? weights[static_cast<size_t>(j)][i]
                                : weights[i][static_cast<size_t>(j)];
    if (w < 0.0) continue;  // Forbidden pair chosen only to fill; drop it.
    if (transposed) {
      result.assignment[static_cast<size_t>(j)] = static_cast<int>(i);
    } else {
      result.assignment[i] = j;
    }
    result.total_weight += w;
  }
  return result;
}

}  // namespace fcm::rel
