// Dynamic Time Warping distance (paper Sec. III-A), used to define the
// ground-truth low-level relevance rel(d, C) = 1 / (1 + DTW(d, C)).
//
// Bulk scans can prune most pairs without running the O(n*m) DP: setting
// DtwOptions::abandon_above to a finite cutoff enables an LB_Keogh-style
// envelope lower bound (O(n+m)) plus row-wise early abandoning inside the
// DP. Pruning is exact — whenever the true distance is below the cutoff
// the returned value is identical to the unpruned computation; pairs at or
// above the cutoff may return +infinity instead of their exact distance.

#ifndef FCM_RELEVANCE_DTW_H_
#define FCM_RELEVANCE_DTW_H_

#include <cstddef>
#include <limits>
#include <vector>

namespace fcm::rel {

/// Options controlling the DTW computation.
struct DtwOptions {
  /// Sakoe-Chiba band half-width as a fraction of the longer series length;
  /// negative disables the band (full DTW).
  double band_fraction = -1.0;
  /// Z-normalize both series before aligning (removes offset/scale). The
  /// paper's ground truth uses raw values; normalization is provided for
  /// the Qetch*-style baselines and ablations.
  bool z_normalize = false;
  /// Distances at or above this cutoff may be reported as +infinity
  /// (pruned before or during the DP); distances below it are exact.
  /// The default (+infinity) disables pruning entirely. For relevance
  /// scans that ignore rel(d, C) below some floor r, the matching cutoff
  /// is 1/r - 1.
  double abandon_above = std::numeric_limits<double>::infinity();
};

/// DTW distance with absolute-difference local cost. Empty inputs give
/// +infinity (no alignment exists).
double DtwDistance(const std::vector<double>& a, const std::vector<double>& b,
                   const DtwOptions& options = {});

/// The LB_Keogh-style envelope lower bound on DtwDistance(a, b, options)
/// under the same band (and z-normalization): sum over positions of a of
/// the distance to b's banded min/max envelope. Runs in O(n + m). Exposed
/// for tests and custom scan loops; DtwDistance applies it automatically
/// when abandon_above is finite.
double DtwLowerBound(const std::vector<double>& a,
                     const std::vector<double>& b,
                     const DtwOptions& options = {});

/// Band half-width DtwDistance uses for series of lengths n and m under
/// `options`: at least |n - m| so a valid alignment exists, max(n, m)
/// when the band is disabled.
size_t DtwBandWidth(const DtwOptions& options, size_t n, size_t m);

/// Tabulated banded min/max envelope of one series, the query-independent
/// half of the LB_Keogh bound: upper[i] / lower[i] are the max / min of
/// the series over the window [i - band, i + band] for every alignment
/// position i of an opposite series of length n. Compute once per
/// (candidate series, opposite length) and reuse across queries.
struct SeriesEnvelope {
  std::vector<double> upper;
  std::vector<double> lower;
};

/// Tabulates `y`'s envelope for opposite-series length n, applying the
/// band and z-normalization implied by `options` — exactly the values
/// DtwLowerBound's streaming pass derives on the fly. Empty `y` or n == 0
/// gives an empty envelope.
SeriesEnvelope ComputeSeriesEnvelope(const std::vector<double>& y, size_t n,
                                     const DtwOptions& options = {});

/// DtwLowerBound(a, b, options) with b's side of the bound answered from
/// `b_envelope` (which must have been built by ComputeSeriesEnvelope(b,
/// a.size(), options)) instead of a fresh streaming pass. Bit-identical
/// to DtwLowerBound — same per-position envelope values, same summation
/// order — just cheaper when b's envelope is cached across queries.
double DtwLowerBoundWithEnvelope(const std::vector<double>& a,
                                 const std::vector<double>& b,
                                 const SeriesEnvelope& b_envelope,
                                 const DtwOptions& options = {});

/// Low-level relevance rel(d, C) = 1 / (1 + DTW(d, C)) in (0, 1]. With a
/// finite abandon_above, pairs whose relevance falls below
/// 1 / (1 + abandon_above) may return 0 instead of their tiny exact value.
double LowLevelRelevance(const std::vector<double>& d,
                         const std::vector<double>& c,
                         const DtwOptions& options = {});

}  // namespace fcm::rel

#endif  // FCM_RELEVANCE_DTW_H_
