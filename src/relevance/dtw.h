// Dynamic Time Warping distance (paper Sec. III-A), used to define the
// ground-truth low-level relevance rel(d, C) = 1 / (1 + DTW(d, C)).
//
// Bulk scans can prune most pairs without running the O(n*m) DP: setting
// DtwOptions::abandon_above to a finite cutoff enables an LB_Keogh-style
// envelope lower bound (O(n+m)) plus row-wise early abandoning inside the
// DP. Pruning is exact — whenever the true distance is below the cutoff
// the returned value is identical to the unpruned computation; pairs at or
// above the cutoff may return +infinity instead of their exact distance.

#ifndef FCM_RELEVANCE_DTW_H_
#define FCM_RELEVANCE_DTW_H_

#include <cstddef>
#include <limits>
#include <vector>

namespace fcm::rel {

/// Options controlling the DTW computation.
struct DtwOptions {
  /// Sakoe-Chiba band half-width as a fraction of the longer series length;
  /// negative disables the band (full DTW).
  double band_fraction = -1.0;
  /// Z-normalize both series before aligning (removes offset/scale). The
  /// paper's ground truth uses raw values; normalization is provided for
  /// the Qetch*-style baselines and ablations.
  bool z_normalize = false;
  /// Distances at or above this cutoff may be reported as +infinity
  /// (pruned before or during the DP); distances below it are exact.
  /// The default (+infinity) disables pruning entirely. For relevance
  /// scans that ignore rel(d, C) below some floor r, the matching cutoff
  /// is 1/r - 1.
  double abandon_above = std::numeric_limits<double>::infinity();
};

/// DTW distance with absolute-difference local cost. Empty inputs give
/// +infinity (no alignment exists).
double DtwDistance(const std::vector<double>& a, const std::vector<double>& b,
                   const DtwOptions& options = {});

/// The LB_Keogh-style envelope lower bound on DtwDistance(a, b, options)
/// under the same band (and z-normalization): sum over positions of a of
/// the distance to b's banded min/max envelope. Runs in O(n + m). Exposed
/// for tests and custom scan loops; DtwDistance applies it automatically
/// when abandon_above is finite.
double DtwLowerBound(const std::vector<double>& a,
                     const std::vector<double>& b,
                     const DtwOptions& options = {});

/// Low-level relevance rel(d, C) = 1 / (1 + DTW(d, C)) in (0, 1]. With a
/// finite abandon_above, pairs whose relevance falls below
/// 1 / (1 + abandon_above) may return 0 instead of their tiny exact value.
double LowLevelRelevance(const std::vector<double>& d,
                         const std::vector<double>& c,
                         const DtwOptions& options = {});

}  // namespace fcm::rel

#endif  // FCM_RELEVANCE_DTW_H_
