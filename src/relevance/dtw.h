// Dynamic Time Warping distance (paper Sec. III-A), used to define the
// ground-truth low-level relevance rel(d, C) = 1 / (1 + DTW(d, C)).

#ifndef FCM_RELEVANCE_DTW_H_
#define FCM_RELEVANCE_DTW_H_

#include <cstddef>
#include <vector>

namespace fcm::rel {

/// Options controlling the DTW computation.
struct DtwOptions {
  /// Sakoe-Chiba band half-width as a fraction of the longer series length;
  /// negative disables the band (full DTW).
  double band_fraction = -1.0;
  /// Z-normalize both series before aligning (removes offset/scale). The
  /// paper's ground truth uses raw values; normalization is provided for
  /// the Qetch*-style baselines and ablations.
  bool z_normalize = false;
};

/// DTW distance with absolute-difference local cost. Empty inputs give
/// +infinity (no alignment exists).
double DtwDistance(const std::vector<double>& a, const std::vector<double>& b,
                   const DtwOptions& options = {});

/// Low-level relevance rel(d, C) = 1 / (1 + DTW(d, C)) in (0, 1].
double LowLevelRelevance(const std::vector<double>& d,
                         const std::vector<double>& c,
                         const DtwOptions& options = {});

}  // namespace fcm::rel

#endif  // FCM_RELEVANCE_DTW_H_
