#include "relevance/relevance.h"

#include <algorithm>
#include <limits>

namespace fcm::rel {

namespace {

/// Per-pair caps on rel(d_i, C_j) from the O(n + m) envelope bound:
/// DTW >= DtwLowerBound, so rel = 1 / (1 + DTW) <= 1 / (1 + LB).
/// Excluded columns get -1 ("never match"), mirroring RelevanceMatrix.
/// With an envelope cache the candidate-side envelope is looked up instead
/// of recomputed; DtwLowerBoundWithEnvelope guarantees the bound itself is
/// bit-identical either way.
std::vector<std::vector<double>> WeightCaps(const table::UnderlyingData& d,
                                            const table::Table& t,
                                            const RelevanceOptions& options) {
  std::vector<std::vector<double>> caps(
      d.size(), std::vector<double>(t.num_columns()));
  for (size_t i = 0; i < d.size(); ++i) {
    for (size_t j = 0; j < t.num_columns(); ++j) {
      if (options.exclude_column >= 0 &&
          j == static_cast<size_t>(options.exclude_column)) {
        caps[i][j] = -1.0;
        continue;
      }
      double lb;
      if (options.envelope_cache != nullptr && !d[i].y.empty() &&
          !t.column(j).values.empty()) {
        const SeriesEnvelope& env =
            options.envelope_cache->Get(t, j, d[i].y.size(), options.dtw);
        lb = DtwLowerBoundWithEnvelope(d[i].y, t.column(j).values, env,
                                       options.dtw);
      } else {
        lb = DtwLowerBound(d[i].y, t.column(j).values, options.dtw);
      }
      caps[i][j] = 1.0 / (1.0 + lb);
    }
  }
  return caps;
}

/// Sum over series of each series' best cap (clamped at 0: a series whose
/// columns are all excluded simply goes unmatched). A matching assigns at
/// most one column per series, so this dominates any matching total.
double CapTotal(const std::vector<std::vector<double>>& caps,
                std::vector<double>* row_best) {
  double total = 0.0;
  for (const auto& row : caps) {
    double best = 0.0;
    for (double c : row) best = std::max(best, c);
    if (row_best != nullptr) row_best->push_back(best);
    total += best;
  }
  return total;
}

}  // namespace

const SeriesEnvelope& EnvelopeCache::Get(const table::Table& t, size_t column,
                                         size_t n, const DtwOptions& options) {
  const Key key{t.id(), static_cast<uint64_t>(column),
                static_cast<uint64_t>(n)};
  auto it = cache_.find(key);
  if (it == cache_.end()) {
    it = cache_
             .emplace(key,
                      ComputeSeriesEnvelope(t.column(column).values, n, options))
             .first;
  }
  return it->second;
}

std::vector<std::vector<double>> RelevanceMatrix(
    const table::UnderlyingData& d, const table::Table& t,
    const RelevanceOptions& options) {
  std::vector<std::vector<double>> w(d.size(),
                                     std::vector<double>(t.num_columns()));
  for (size_t i = 0; i < d.size(); ++i) {
    for (size_t j = 0; j < t.num_columns(); ++j) {
      if (options.exclude_column >= 0 &&
          j == static_cast<size_t>(options.exclude_column)) {
        w[i][j] = -1.0;
        continue;
      }
      w[i][j] = LowLevelRelevance(d[i].y, t.column(j).values, options.dtw);
    }
  }
  return w;
}

RelevanceDetail RelevanceWithMatching(const table::UnderlyingData& d,
                                      const table::Table& t,
                                      const RelevanceOptions& options) {
  RelevanceDetail out;
  if (d.empty() || t.num_columns() == 0) return out;
  const auto weights = RelevanceMatrix(d, t, options);
  MatchingResult m = MaxWeightBipartiteMatching(weights);
  out.series_to_column = std::move(m.assignment);
  out.score = m.total_weight;
  if (options.normalize_by_series) {
    out.score /= static_cast<double>(d.size());
  }
  return out;
}

double Relevance(const table::UnderlyingData& d, const table::Table& t,
                 const RelevanceOptions& options) {
  return RelevanceWithMatching(d, t, options).score;
}

double RelevanceUpperBound(const table::UnderlyingData& d,
                           const table::Table& t,
                           const RelevanceOptions& options) {
  if (d.empty() || t.num_columns() == 0) return 0.0;
  const double total = CapTotal(WeightCaps(d, t, options), nullptr);
  return options.normalize_by_series ? total / static_cast<double>(d.size())
                                     : total;
}

double PrunedRelevance(const table::UnderlyingData& d, const table::Table& t,
                       const RelevanceOptions& options, double threshold) {
  if (d.empty() || t.num_columns() == 0) return 0.0;
  // Relevance is non-negative, so a negative threshold can never prune;
  // skip the envelope pass entirely.
  if (threshold < 0.0) return Relevance(d, t, options);
  const double denom =
      options.normalize_by_series ? static_cast<double>(d.size()) : 1.0;
  const auto caps = WeightCaps(d, t, options);
  std::vector<double> row_best;
  row_best.reserve(d.size());
  const double cap_total = CapTotal(caps, &row_best);
  // Whole-table prune: even the per-series cap maxima cannot beat the
  // threshold, so no DP is worth running.
  if (cap_total <= threshold * denom) return cap_total / denom;
  // Per-pair prune: pair (i, j) may only enter the optimal matching
  // alongside at most the other series' caps, so once
  //   w_ij <= floor_i = threshold * denom - sum_{i' != i} row_best[i']
  // the whole table provably stays at or below the threshold. In DTW
  // terms w = 1 / (1 + dist) <= floor exactly when dist >= 1/floor - 1,
  // which is DtwDistance's abandon contract — distances below the cutoff
  // stay exact, so any table that can beat the threshold gets the same
  // weights (and the same Hungarian matching) as the unpruned scan.
  // cap_total > threshold * denom guarantees floor_i < row_best[i] <= 1.
  std::vector<std::vector<double>> w(d.size(),
                                     std::vector<double>(t.num_columns()));
  for (size_t i = 0; i < d.size(); ++i) {
    const double floor_i = threshold * denom - (cap_total - row_best[i]);
    DtwOptions dtw = options.dtw;
    if (floor_i > 0.0) {
      dtw.abandon_above =
          std::min(dtw.abandon_above, 1.0 / floor_i - 1.0);
    }
    for (size_t j = 0; j < t.num_columns(); ++j) {
      if (caps[i][j] < 0.0) {
        w[i][j] = -1.0;  // Excluded column.
      } else if (floor_i > 0.0 && caps[i][j] <= floor_i) {
        // The envelope cap already proves w_ij <= floor_i: prune without
        // recomputing the envelope (or the DP) inside DtwDistance.
        w[i][j] = 0.0;
      } else {
        w[i][j] = LowLevelRelevance(d[i].y, t.column(j).values, dtw);
      }
    }
  }
  const MatchingResult m = MaxWeightBipartiteMatching(w);
  return m.total_weight / denom;
}

}  // namespace fcm::rel
