#include "relevance/relevance.h"

namespace fcm::rel {

std::vector<std::vector<double>> RelevanceMatrix(
    const table::UnderlyingData& d, const table::Table& t,
    const RelevanceOptions& options) {
  std::vector<std::vector<double>> w(d.size(),
                                     std::vector<double>(t.num_columns()));
  for (size_t i = 0; i < d.size(); ++i) {
    for (size_t j = 0; j < t.num_columns(); ++j) {
      if (options.exclude_column >= 0 &&
          j == static_cast<size_t>(options.exclude_column)) {
        w[i][j] = -1.0;
        continue;
      }
      w[i][j] = LowLevelRelevance(d[i].y, t.column(j).values, options.dtw);
    }
  }
  return w;
}

RelevanceDetail RelevanceWithMatching(const table::UnderlyingData& d,
                                      const table::Table& t,
                                      const RelevanceOptions& options) {
  RelevanceDetail out;
  if (d.empty() || t.num_columns() == 0) return out;
  const auto weights = RelevanceMatrix(d, t, options);
  MatchingResult m = MaxWeightBipartiteMatching(weights);
  out.series_to_column = std::move(m.assignment);
  out.score = m.total_weight;
  if (options.normalize_by_series) {
    out.score /= static_cast<double>(d.size());
  }
  return out;
}

double Relevance(const table::UnderlyingData& d, const table::Table& t,
                 const RelevanceOptions& options) {
  return RelevanceWithMatching(d, t, options).score;
}

}  // namespace fcm::rel
