// Ground-truth relevance Rel(D, T) between the underlying data of a chart
// and a candidate dataset (paper Sec. III-A): low-level DTW relevance per
// (series, column) pair, lifted via weighted maximum bipartite matching.

#ifndef FCM_RELEVANCE_RELEVANCE_H_
#define FCM_RELEVANCE_RELEVANCE_H_

#include <cstdint>
#include <map>
#include <tuple>
#include <vector>

#include "relevance/dtw.h"
#include "relevance/hungarian.h"
#include "table/data_series.h"
#include "table/table.h"

namespace fcm::rel {

/// Cross-query cache of candidate-side LB_Keogh envelopes. The envelope of
/// a table column depends only on (column values, opposite-series length,
/// DtwOptions) — never on the query's values — so bulk scans that probe
/// the same lake with many queries of the same resampled length rebuild
/// identical envelopes per query. Keyed by (table id, column index,
/// opposite length); entries are computed on first use and reused verbatim
/// afterwards, so the cached bound is bit-identical to the uncached one.
///
/// Caveats: keys on Table::id(), so distinct tables must carry distinct
/// ids and a table's columns must not change while cached. All lookups
/// must use the same DtwOptions (band_fraction / z_normalize) — the
/// options are not part of the key. Not thread-safe; use one cache per
/// scan thread.
class EnvelopeCache {
 public:
  /// The envelope of t.column(column) for opposite-series length n,
  /// computed via ComputeSeriesEnvelope on first use.
  const SeriesEnvelope& Get(const table::Table& t, size_t column, size_t n,
                            const DtwOptions& options);

  /// Number of cached envelopes.
  size_t size() const { return cache_.size(); }

  void clear() { cache_.clear(); }

 private:
  using Key = std::tuple<int64_t, uint64_t, uint64_t>;
  std::map<Key, SeriesEnvelope> cache_;
};

/// Options for Rel(D, T) computation.
struct RelevanceOptions {
  DtwOptions dtw;
  /// Column index of T to exclude from matching (the x-axis column), or -1.
  int exclude_column = -1;
  /// Normalize the matched weight sum by the number of data series so that
  /// Rel is comparable across charts with different line counts.
  bool normalize_by_series = true;
  /// Optional (not owned, may be null) envelope cache consulted by the
  /// pruning bounds in RelevanceUpperBound / PrunedRelevance. Purely a
  /// speed knob: scores and pruning decisions are bit-identical with or
  /// without it. See EnvelopeCache for the sharing rules.
  EnvelopeCache* envelope_cache = nullptr;
};

/// The bipartite relevance matrix: rel(d_i, C_j) for every series/column
/// pair. Excluded columns get weight -1 ("never match").
std::vector<std::vector<double>> RelevanceMatrix(
    const table::UnderlyingData& d, const table::Table& t,
    const RelevanceOptions& options = {});

/// High-level relevance Rel(D, T): maximum-weight bipartite matching over
/// RelevanceMatrix, optionally normalized by |D|. Returns 0 for empty
/// inputs.
double Relevance(const table::UnderlyingData& d, const table::Table& t,
                 const RelevanceOptions& options = {});

/// Like Relevance but also reports which column matched each series.
struct RelevanceDetail {
  double score = 0.0;
  /// series index -> column index in T (or -1 when unmatched).
  std::vector<int> series_to_column;
};
RelevanceDetail RelevanceWithMatching(const table::UnderlyingData& d,
                                      const table::Table& t,
                                      const RelevanceOptions& options = {});

/// Matching-aware envelope upper bound on Relevance(d, t, options): each
/// pair's weight is capped by 1 / (1 + DtwLowerBound(d_i, C_j)) and the
/// matching total by the sum of per-series caps' maxima (a matching picks
/// at most one column per series). Runs the O(n + m) envelope per pair,
/// never the O(n * m) DP.
double RelevanceUpperBound(const table::UnderlyingData& d,
                           const table::Table& t,
                           const RelevanceOptions& options = {});

/// Threshold-pruned Rel(D, T) for bulk top-k scans. Exactness contract:
/// the return value equals Relevance(d, t, options) whenever that value
/// exceeds `threshold`; when the matching-aware bound proves
/// Rel <= threshold, DP work may be skipped (whole-table via
/// RelevanceUpperBound, per-pair via DtwOptions::abandon_above cutoffs
/// that leave room for every other series' cap) and some value
/// <= threshold is returned instead. Pruning therefore stays exact
/// through the Hungarian step for any caller that only keeps scores
/// strictly above its running threshold. threshold = -infinity disables
/// pruning and returns the exact score.
double PrunedRelevance(const table::UnderlyingData& d, const table::Table& t,
                       const RelevanceOptions& options, double threshold);

}  // namespace fcm::rel

#endif  // FCM_RELEVANCE_RELEVANCE_H_
