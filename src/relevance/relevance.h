// Ground-truth relevance Rel(D, T) between the underlying data of a chart
// and a candidate dataset (paper Sec. III-A): low-level DTW relevance per
// (series, column) pair, lifted via weighted maximum bipartite matching.

#ifndef FCM_RELEVANCE_RELEVANCE_H_
#define FCM_RELEVANCE_RELEVANCE_H_

#include <vector>

#include "relevance/dtw.h"
#include "relevance/hungarian.h"
#include "table/data_series.h"
#include "table/table.h"

namespace fcm::rel {

/// Options for Rel(D, T) computation.
struct RelevanceOptions {
  DtwOptions dtw;
  /// Column index of T to exclude from matching (the x-axis column), or -1.
  int exclude_column = -1;
  /// Normalize the matched weight sum by the number of data series so that
  /// Rel is comparable across charts with different line counts.
  bool normalize_by_series = true;
};

/// The bipartite relevance matrix: rel(d_i, C_j) for every series/column
/// pair. Excluded columns get weight -1 ("never match").
std::vector<std::vector<double>> RelevanceMatrix(
    const table::UnderlyingData& d, const table::Table& t,
    const RelevanceOptions& options = {});

/// High-level relevance Rel(D, T): maximum-weight bipartite matching over
/// RelevanceMatrix, optionally normalized by |D|. Returns 0 for empty
/// inputs.
double Relevance(const table::UnderlyingData& d, const table::Table& t,
                 const RelevanceOptions& options = {});

/// Like Relevance but also reports which column matched each series.
struct RelevanceDetail {
  double score = 0.0;
  /// series index -> column index in T (or -1 when unmatched).
  std::vector<int> series_to_column;
};
RelevanceDetail RelevanceWithMatching(const table::UnderlyingData& d,
                                      const table::Table& t,
                                      const RelevanceOptions& options = {});

}  // namespace fcm::rel

#endif  // FCM_RELEVANCE_RELEVANCE_H_
