// Weighted maximum bipartite matching (paper Sec. III-A) via the Hungarian
// (Kuhn-Munkres) algorithm with potentials, O(n^2 m).

#ifndef FCM_RELEVANCE_HUNGARIAN_H_
#define FCM_RELEVANCE_HUNGARIAN_H_

#include <vector>

namespace fcm::rel {

/// Result of a maximum-weight bipartite matching.
struct MatchingResult {
  /// assignment[i] = column matched to row i, or -1 when unmatched.
  std::vector<int> assignment;
  /// Sum of weights over matched pairs.
  double total_weight = 0.0;
};

/// Finds a matching of rows to columns maximizing total weight. `weights`
/// is a rows x cols matrix (weights[i][j] >= 0; negative weights are
/// treated as "never match"). Every row is matched when rows <= cols,
/// except rows whose only available weights are negative.
MatchingResult MaxWeightBipartiteMatching(
    const std::vector<std::vector<double>>& weights);

}  // namespace fcm::rel

#endif  // FCM_RELEVANCE_HUNGARIAN_H_
