#include "relevance/dtw.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/math_util.h"

namespace fcm::rel {

namespace {

std::vector<double> ZNormalize(const std::vector<double>& v) {
  const double m = common::Mean(v);
  double sd = common::Stddev(v);
  if (sd < 1e-12) sd = 1.0;
  std::vector<double> out(v.size());
  for (size_t i = 0; i < v.size(); ++i) out[i] = (v[i] - m) / sd;
  return out;
}

}  // namespace

double DtwDistance(const std::vector<double>& a, const std::vector<double>& b,
                   const DtwOptions& options) {
  if (a.empty() || b.empty()) {
    return std::numeric_limits<double>::infinity();
  }
  std::vector<double> x = a, y = b;
  if (options.z_normalize) {
    x = ZNormalize(x);
    y = ZNormalize(y);
  }
  const size_t n = x.size(), m = y.size();
  const double inf = std::numeric_limits<double>::infinity();

  size_t band = std::max(n, m);
  if (options.band_fraction >= 0.0) {
    band = static_cast<size_t>(
        std::ceil(options.band_fraction * static_cast<double>(std::max(n, m))));
    // The band must be at least |n - m| for a valid alignment to exist.
    const size_t min_band = n > m ? n - m : m - n;
    band = std::max(band, min_band);
  }

  // Rolling two-row DP over the (n+1) x (m+1) cost matrix.
  std::vector<double> prev(m + 1, inf), cur(m + 1, inf);
  prev[0] = 0.0;
  for (size_t i = 1; i <= n; ++i) {
    std::fill(cur.begin(), cur.end(), inf);
    const size_t j_lo = (i > band) ? i - band : 1;
    const size_t j_hi = std::min(m, i + band);
    for (size_t j = j_lo; j <= j_hi; ++j) {
      const double cost = std::fabs(x[i - 1] - y[j - 1]);
      const double best =
          std::min({prev[j], cur[j - 1], prev[j - 1]});
      cur[j] = cost + best;
    }
    std::swap(prev, cur);
  }
  return prev[m];
}

double LowLevelRelevance(const std::vector<double>& d,
                         const std::vector<double>& c,
                         const DtwOptions& options) {
  const double dist = DtwDistance(d, c, options);
  if (std::isinf(dist)) return 0.0;
  return 1.0 / (1.0 + dist);
}

}  // namespace fcm::rel
