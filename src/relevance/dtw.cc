#include "relevance/dtw.h"

#include <algorithm>
#include <cmath>
#include <deque>

#include "common/check.h"
#include "common/math_util.h"
#include "common/simd.h"

namespace fcm::rel {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

std::vector<double> ZNormalize(const std::vector<double>& v) {
  const double m = common::Mean(v);
  double sd = common::Stddev(v);
  if (sd < 1e-12) sd = 1.0;
  std::vector<double> out(v.size());
  for (size_t i = 0; i < v.size(); ++i) out[i] = (v[i] - m) / sd;
  return out;
}

/// Band half-width implied by the options for series of lengths n and m:
/// at least |n - m| so a valid alignment exists, all of max(n, m) when the
/// band is disabled.
size_t BandWidth(const DtwOptions& options, size_t n, size_t m) {
  size_t band = std::max(n, m);
  if (options.band_fraction >= 0.0) {
    band = static_cast<size_t>(
        std::ceil(options.band_fraction * static_cast<double>(std::max(n, m))));
    const size_t min_band = n > m ? n - m : m - n;
    band = std::max(band, min_band);
  }
  return band;
}

/// LB_Keogh-style bound on the banded DTW: every warping path matches
/// position i of x to at least one j with |i - j| <= band, so
/// sum_i min_{j in band} |x[i] - y[j]| — computed against y's sliding
/// min/max envelope with monotonic deques — never exceeds the DTW cost.
double EnvelopeLowerBound(const std::vector<double>& x,
                          const std::vector<double>& y, size_t band,
                          double abandon_above) {
  const size_t n = x.size(), m = y.size();
  // Monotonic index deques over y for the window [i - band, i + band].
  std::deque<size_t> max_q, min_q;
  size_t next = 0;  // First y index not yet pushed.
  double lb = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const size_t j_lo = (i > band) ? i - band : 0;
    const size_t j_hi = std::min(m - 1, i + band);  // Window is non-empty.
    while (next <= j_hi) {
      while (!max_q.empty() && y[max_q.back()] <= y[next]) max_q.pop_back();
      max_q.push_back(next);
      while (!min_q.empty() && y[min_q.back()] >= y[next]) min_q.pop_back();
      min_q.push_back(next);
      ++next;
    }
    while (max_q.front() < j_lo) max_q.pop_front();
    while (min_q.front() < j_lo) min_q.pop_front();
    const double hi = y[max_q.front()], lo = y[min_q.front()];
    if (x[i] > hi) {
      lb += x[i] - hi;
    } else if (x[i] < lo) {
      lb += lo - x[i];
    }
    if (lb >= abandon_above) return lb;  // Already past the cutoff.
  }
  return lb;
}

double BandedDtw(const std::vector<double>& x, const std::vector<double>& y,
                 size_t band, double abandon_above) {
  const size_t n = x.size(), m = y.size();
  // Rolling two-row DP over the (n+1) x (m+1) cost matrix. The row update
  // — local cost, three-way min, row-minimum — runs through the simd
  // dispatch (bit-identical across targets; see simd.h) with `cost` as
  // the kernel's scratch row.
  std::vector<double> prev(m + 1, kInf), cur(m + 1, kInf), cost(m + 1);
  const auto& kernels = simd::Active();
  prev[0] = 0.0;
  for (size_t i = 1; i <= n; ++i) {
    std::fill(cur.begin(), cur.end(), kInf);
    const size_t j_lo = (i > band) ? i - band : 1;
    const size_t j_hi = std::min(m, i + band);
    const double row_min = kernels.dtw_row_f64(
        x[i - 1], y.data(), prev.data(), cur.data(), cost.data(), j_lo, j_hi);
    // Every warping path passes through row i and costs are non-negative,
    // so row_min lower-bounds the final distance: abandon once it clears
    // the cutoff (kInf cutoff never triggers).
    if (row_min >= abandon_above) return kInf;
    std::swap(prev, cur);
  }
  return prev[m];
}

}  // namespace

double DtwDistance(const std::vector<double>& a, const std::vector<double>& b,
                   const DtwOptions& options) {
  if (a.empty() || b.empty()) return kInf;
  // Normalized copies are made only when requested; the common raw-value
  // path aliases the inputs directly.
  std::vector<double> xn, yn;
  if (options.z_normalize) {
    xn = ZNormalize(a);
    yn = ZNormalize(b);
  }
  const std::vector<double>& x = options.z_normalize ? xn : a;
  const std::vector<double>& y = options.z_normalize ? yn : b;
  const size_t band = BandWidth(options, x.size(), y.size());

  if (options.abandon_above < kInf) {
    // O(n + m) envelope prefilter from both sides before the O(n*m) DP.
    if (EnvelopeLowerBound(x, y, band, options.abandon_above) >=
        options.abandon_above) {
      return kInf;
    }
    if (EnvelopeLowerBound(y, x, band, options.abandon_above) >=
        options.abandon_above) {
      return kInf;
    }
  }
  return BandedDtw(x, y, band, options.abandon_above);
}

double DtwLowerBound(const std::vector<double>& a,
                     const std::vector<double>& b,
                     const DtwOptions& options) {
  if (a.empty() || b.empty()) return kInf;
  std::vector<double> xn, yn;
  if (options.z_normalize) {
    xn = ZNormalize(a);
    yn = ZNormalize(b);
  }
  const std::vector<double>& x = options.z_normalize ? xn : a;
  const std::vector<double>& y = options.z_normalize ? yn : b;
  const size_t band = BandWidth(options, x.size(), y.size());
  return std::max(EnvelopeLowerBound(x, y, band, kInf),
                  EnvelopeLowerBound(y, x, band, kInf));
}

size_t DtwBandWidth(const DtwOptions& options, size_t n, size_t m) {
  return BandWidth(options, n, m);
}

SeriesEnvelope ComputeSeriesEnvelope(const std::vector<double>& y_raw,
                                     size_t n, const DtwOptions& options) {
  SeriesEnvelope env;
  if (y_raw.empty() || n == 0) return env;
  std::vector<double> yn;
  if (options.z_normalize) yn = ZNormalize(y_raw);
  const std::vector<double>& y = options.z_normalize ? yn : y_raw;
  const size_t m = y.size();
  const size_t band = BandWidth(options, n, m);
  env.upper.resize(n);
  env.lower.resize(n);
  // Same monotonic-deque walk as EnvelopeLowerBound, values recorded
  // instead of consumed — the tabulated envelope is bit-identical to what
  // the streaming pass sees.
  std::deque<size_t> max_q, min_q;
  size_t next = 0;
  for (size_t i = 0; i < n; ++i) {
    const size_t j_lo = (i > band) ? i - band : 0;
    const size_t j_hi = std::min(m - 1, i + band);
    while (next <= j_hi) {
      while (!max_q.empty() && y[max_q.back()] <= y[next]) max_q.pop_back();
      max_q.push_back(next);
      while (!min_q.empty() && y[min_q.back()] >= y[next]) min_q.pop_back();
      min_q.push_back(next);
      ++next;
    }
    while (max_q.front() < j_lo) max_q.pop_front();
    while (min_q.front() < j_lo) min_q.pop_front();
    env.upper[i] = y[max_q.front()];
    env.lower[i] = y[min_q.front()];
  }
  return env;
}

double DtwLowerBoundWithEnvelope(const std::vector<double>& a,
                                 const std::vector<double>& b,
                                 const SeriesEnvelope& b_envelope,
                                 const DtwOptions& options) {
  if (a.empty() || b.empty()) return kInf;
  FCM_CHECK_EQ(b_envelope.upper.size(), a.size());
  std::vector<double> xn, yn;
  if (options.z_normalize) {
    xn = ZNormalize(a);
    yn = ZNormalize(b);
  }
  const std::vector<double>& x = options.z_normalize ? xn : a;
  const std::vector<double>& y = options.z_normalize ? yn : b;
  // x against b's cached envelope: the identical accumulation (and the
  // identical per-position envelope values) as the streaming direction of
  // DtwLowerBound.
  double lb = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    const double hi = b_envelope.upper[i], lo = b_envelope.lower[i];
    if (x[i] > hi) {
      lb += x[i] - hi;
    } else if (x[i] < lo) {
      lb += lo - x[i];
    }
  }
  const size_t band = BandWidth(options, x.size(), y.size());
  return std::max(lb, EnvelopeLowerBound(y, x, band, kInf));
}

double LowLevelRelevance(const std::vector<double>& d,
                         const std::vector<double>& c,
                         const DtwOptions& options) {
  const double dist = DtwDistance(d, c, options);
  if (std::isinf(dist)) return 0.0;
  return 1.0 / (1.0 + dist);
}

}  // namespace fcm::rel
