// Distribution-based relevance for pie charts (paper Sec. VI-B: "since a
// pie chart commonly depicts a data distribution, metrics such as
// KL-Distance may be more appropriate to compute Rel(D, T)").

#ifndef FCM_RELEVANCE_DISTRIBUTION_H_
#define FCM_RELEVANCE_DISTRIBUTION_H_

#include <vector>

#include "table/table.h"

namespace fcm::rel {

/// Normalizes non-negative weights into a probability distribution.
/// Negative entries are clamped to 0; an all-zero input yields the uniform
/// distribution. Empty input returns empty.
std::vector<double> NormalizeToDistribution(const std::vector<double>& w);

/// KL divergence KL(p || q) over distributions of equal length, with
/// epsilon smoothing so zero entries in q stay finite. Asymmetric.
double KlDivergence(const std::vector<double>& p, const std::vector<double>& q,
                    double epsilon = 1e-9);

/// Symmetrized KL: KL(p||q) + KL(q||p).
double SymmetricKl(const std::vector<double>& p, const std::vector<double>& q,
                   double epsilon = 1e-9);

/// Jensen-Shannon divergence (bounded in [0, ln 2], symmetric).
double JensenShannon(const std::vector<double>& p,
                     const std::vector<double>& q);

/// Low-level pie relevance between a sector-share distribution and a
/// column, mirroring rel(d, C) = 1 / (1 + dist): the column's non-negative
/// values are normalized into a distribution; when lengths differ the
/// shorter is zero-padded (extra categories that the other side lacks).
double PieLowLevelRelevance(const std::vector<double>& shares,
                            const std::vector<double>& column_values);

/// High-level pie relevance Rel(D, T): the best PieLowLevelRelevance over
/// all columns of T (a pie depicts one distribution, so bipartite matching
/// degenerates to a max). `exclude_column` skips the x column (-1 = none).
double PieRelevance(const std::vector<double>& shares, const table::Table& t,
                    int exclude_column = -1);

}  // namespace fcm::rel

#endif  // FCM_RELEVANCE_DISTRIBUTION_H_
