// Synthetic data-series families standing in for the Plotly corpus
// columns. Families cover the qualitative shapes line charts typically
// plot: walks, trends with seasonality, ECG-like waveforms, steps, bursts,
// exponentials, mean-reverting processes, and S-curves.

#ifndef FCM_BENCHGEN_SERIES_GENERATOR_H_
#define FCM_BENCHGEN_SERIES_GENERATOR_H_

#include <vector>

#include "common/rng.h"

namespace fcm::benchgen {

/// Shape families for generated columns.
enum class SeriesFamily {
  kRandomWalk = 0,
  kTrendSeasonal = 1,
  kEcgLike = 2,
  kStep = 3,
  kExponential = 4,
  kMeanReverting = 5,
  kBursty = 6,
  kLogistic = 7,
};
inline constexpr int kNumSeriesFamilies = 8;

const char* SeriesFamilyName(SeriesFamily f);

/// Generates `n` points of the given family with randomized parameters
/// (scale, offset, frequency, noise) drawn from `rng`.
std::vector<double> GenerateSeries(SeriesFamily family, size_t n,
                                   common::Rng* rng);

/// Picks a random family.
SeriesFamily RandomFamily(common::Rng* rng);

}  // namespace fcm::benchgen

#endif  // FCM_BENCHGEN_SERIES_GENERATOR_H_
