// Query generators for the paper's future-work extensions (Sec. IX):
//  * Multiple datasets — lines of one chart originate from different
//    tables joined on a shared x axis.
//  * Data re-scaling — the underlying data is normalized/scaled before
//    plotting.
//  * Nested aggregations — a pipeline of aggregation operations is applied
//    before plotting.
//  * Multiple aggregations — every line is the same column under a
//    different aggregation operator.
//
// Each generator appends fresh source tables (plus noisy near-duplicates,
// mirroring the main benchmark's ground-truth construction) to an existing
// Benchmark's lake and returns self-describing query records.

#ifndef FCM_BENCHGEN_FUTUREWORK_H_
#define FCM_BENCHGEN_FUTUREWORK_H_

#include <vector>

#include "benchgen/benchmark.h"
#include "table/aggregate.h"
#include "table/rescale.h"

namespace fcm::benchgen {

/// One extension query: the chart, its provenance and ground truth.
struct ExtensionQuery {
  vision::ExtractedChart extracted;
  table::UnderlyingData underlying;
  /// The tables the lines were plotted from (one entry per source; a
  /// multi-dataset query lists several).
  std::vector<table::TableId> source_tables;
  /// Re-scaling applied before plotting (kNone for other families).
  table::RescaleOp rescale = table::RescaleOp::kNone;
  /// Aggregation pipeline (empty = no aggregation; length 1 = the paper's
  /// single-aggregation case; length >= 2 = nested).
  std::vector<table::AggregateStep> pipeline;
  /// Per-line operators for the multiple-aggregations family (empty
  /// otherwise). All lines plot the same column.
  std::vector<table::AggregateOp> per_line_ops;
  double y_lo = 0.0;
  double y_hi = 1.0;
  /// Ground truth top-k tables (scale-invariant relevance for the
  /// re-scaling family). Empty for the multi-dataset family, where the
  /// target is `source_tables` itself.
  std::vector<table::TableId> relevant;
};

/// Knobs for the extension generators; near-duplicate and ground-truth
/// conventions mirror BenchmarkConfig.
struct FutureworkConfig {
  int num_queries = 12;
  int duplicates_per_query = 6;
  int ground_truth_k = 6;
  double noise_amplitude = 0.1;
  int min_rows = 96;
  int max_rows = 256;
  int ground_truth_resample = 160;
  double ground_truth_band = 0.2;
  chart::ChartStyle chart_style;
  uint64_t seed = 7;
};

/// Lines from `num_sources` distinct tables (2 by default), sharing an
/// auto-index x axis (the paper's "join key"). No near-duplicates are
/// added; the evaluation target is recovering `source_tables`.
std::vector<ExtensionQuery> MakeMultiDatasetQueries(
    Benchmark* bench, const vision::VisualElementExtractor& extractor,
    const FutureworkConfig& config, int num_sources = 2);

/// Single-line charts whose underlying data is re-scaled by `op` before
/// rendering. Ground truth uses z-normalized DTW (scale-invariant), so
/// the source table and its near-duplicates remain the right answer.
std::vector<ExtensionQuery> MakeRescaledQueries(
    Benchmark* bench, const vision::VisualElementExtractor& extractor,
    const FutureworkConfig& config, table::RescaleOp op);

/// Single-line charts whose underlying data went through a two-step
/// aggregation pipeline (random real ops and windows).
std::vector<ExtensionQuery> MakeNestedAggQueries(
    Benchmark* bench, const vision::VisualElementExtractor& extractor,
    const FutureworkConfig& config);

/// Charts with one line per aggregation operator, all over the same
/// column of the source table (window shared across lines).
std::vector<ExtensionQuery> MakeMultiAggQueries(
    Benchmark* bench, const vision::VisualElementExtractor& extractor,
    const FutureworkConfig& config);

}  // namespace fcm::benchgen

#endif  // FCM_BENCHGEN_FUTUREWORK_H_
