#include "benchgen/series_generator.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace fcm::benchgen {

const char* SeriesFamilyName(SeriesFamily f) {
  switch (f) {
    case SeriesFamily::kRandomWalk: return "random_walk";
    case SeriesFamily::kTrendSeasonal: return "trend_seasonal";
    case SeriesFamily::kEcgLike: return "ecg_like";
    case SeriesFamily::kStep: return "step";
    case SeriesFamily::kExponential: return "exponential";
    case SeriesFamily::kMeanReverting: return "mean_reverting";
    case SeriesFamily::kBursty: return "bursty";
    case SeriesFamily::kLogistic: return "logistic";
  }
  return "?";
}

SeriesFamily RandomFamily(common::Rng* rng) {
  return static_cast<SeriesFamily>(
      rng->UniformInt(static_cast<uint64_t>(kNumSeriesFamilies)));
}

std::vector<double> GenerateSeries(SeriesFamily family, size_t n,
                                   common::Rng* rng) {
  FCM_CHECK_GT(n, 0u);
  std::vector<double> v(n);
  // A random affine frame gives every family varied absolute ranges,
  // exercising the y-tick range filter.
  const double scale = std::exp(rng->Uniform(-1.0, 3.5));  // ~0.37 .. 33
  const double offset = rng->Normal(0.0, 2.0 * scale);

  switch (family) {
    case SeriesFamily::kRandomWalk: {
      double x = 0.0;
      const double vol = rng->Uniform(0.3, 1.5);
      for (size_t i = 0; i < n; ++i) {
        x += rng->Normal(0.0, vol);
        v[i] = x;
      }
      break;
    }
    case SeriesFamily::kTrendSeasonal: {
      const double slope = rng->Uniform(-0.05, 0.05);
      const double amp = rng->Uniform(0.5, 3.0);
      const double freq = rng->Uniform(1.0, 6.0) * 2.0 * M_PI /
                          static_cast<double>(n);
      const double phase = rng->Uniform(0.0, 2.0 * M_PI);
      const double noise = rng->Uniform(0.0, 0.15);
      for (size_t i = 0; i < n; ++i) {
        const double t = static_cast<double>(i);
        v[i] = slope * t + amp * std::sin(freq * t + phase) +
               rng->Normal(0.0, noise);
      }
      break;
    }
    case SeriesFamily::kEcgLike: {
      // Repeating beat: flat baseline, small P bump, sharp QRS spike,
      // rounded T bump.
      const size_t period = 20 + static_cast<size_t>(rng->UniformInt(30));
      const double r_height = rng->Uniform(2.0, 5.0);
      const double noise = rng->Uniform(0.0, 0.05);
      for (size_t i = 0; i < n; ++i) {
        const double ph =
            static_cast<double>(i % period) / static_cast<double>(period);
        double y = 0.0;
        auto bump = [](double x, double center, double width, double h) {
          const double d = (x - center) / width;
          return h * std::exp(-d * d);
        };
        y += bump(ph, 0.18, 0.03, 0.25);              // P wave.
        y += bump(ph, 0.38, 0.008, -0.3 * r_height);  // Q dip.
        y += bump(ph, 0.40, 0.010, r_height);         // R spike.
        y += bump(ph, 0.43, 0.010, -0.2 * r_height);  // S dip.
        y += bump(ph, 0.62, 0.05, 0.5);               // T wave.
        v[i] = y + rng->Normal(0.0, noise);
      }
      break;
    }
    case SeriesFamily::kStep: {
      const size_t num_steps = 3 + static_cast<size_t>(rng->UniformInt(5));
      double level = rng->Normal(0.0, 1.0);
      size_t next_change = 0;
      for (size_t i = 0; i < n; ++i) {
        if (i >= next_change) {
          level += rng->Normal(0.0, 1.5);
          next_change = i + n / num_steps +
                        static_cast<size_t>(rng->UniformInt(n / num_steps + 1));
        }
        v[i] = level + rng->Normal(0.0, 0.05);
      }
      break;
    }
    case SeriesFamily::kExponential: {
      const double rate = rng->Uniform(-4.0, 4.0) / static_cast<double>(n);
      const double noise = rng->Uniform(0.0, 0.05);
      for (size_t i = 0; i < n; ++i) {
        v[i] = std::exp(rate * static_cast<double>(i)) +
               rng->Normal(0.0, noise);
      }
      break;
    }
    case SeriesFamily::kMeanReverting: {
      const double theta = rng->Uniform(0.02, 0.2);
      const double vol = rng->Uniform(0.2, 1.0);
      double x = rng->Normal(0.0, 1.0);
      for (size_t i = 0; i < n; ++i) {
        x += -theta * x + rng->Normal(0.0, vol);
        v[i] = x;
      }
      break;
    }
    case SeriesFamily::kBursty: {
      const double p_spike = rng->Uniform(0.02, 0.08);
      const double spike = rng->Uniform(3.0, 8.0);
      for (size_t i = 0; i < n; ++i) {
        v[i] = rng->Normal(0.0, 0.2);
        if (rng->Bernoulli(p_spike)) {
          v[i] += spike * rng->Uniform(0.5, 1.0);
        }
      }
      break;
    }
    case SeriesFamily::kLogistic: {
      const double mid = rng->Uniform(0.3, 0.7) * static_cast<double>(n);
      const double steep = rng->Uniform(4.0, 15.0) / static_cast<double>(n);
      const double noise = rng->Uniform(0.0, 0.04);
      for (size_t i = 0; i < n; ++i) {
        v[i] = 1.0 / (1.0 + std::exp(-steep * (static_cast<double>(i) - mid))) +
               rng->Normal(0.0, noise);
      }
      break;
    }
  }
  for (auto& x : v) x = offset + scale * x;
  return v;
}

}  // namespace fcm::benchgen
