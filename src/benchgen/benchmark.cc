#include "benchgen/benchmark.h"

#include <algorithm>
#include <limits>

#include "benchgen/series_generator.h"
#include "common/logging.h"
#include "common/math_util.h"
#include "common/string_util.h"
#include "relevance/relevance.h"
#include "table/noise.h"
#include "vision/mask_oracle_extractor.h"

namespace fcm::benchgen {

int Benchmark::LineCountBucket(int m) {
  if (m <= 1) return 0;
  if (m <= 4) return 1;
  if (m <= 7) return 2;
  return 3;
}

const char* Benchmark::LineCountBucketName(int bucket) {
  switch (bucket) {
    case 0: return "1";
    case 1: return "2-4";
    case 2: return "5-7";
    default: return ">7";
  }
}

namespace {

// Table I proportions over the M strata (10161 repo charts: 36/25/21/18%).
int SampleBucket(common::Rng* rng) {
  const double u = rng->Uniform();
  if (u < 0.36) return 0;
  if (u < 0.61) return 1;
  if (u < 0.82) return 2;
  return 3;
}

int LinesForBucket(int bucket, common::Rng* rng) {
  switch (bucket) {
    case 0: return 1;
    case 1: return 2 + static_cast<int>(rng->UniformInt(3));   // 2-4.
    case 2: return 5 + static_cast<int>(rng->UniformInt(3));   // 5-7.
    default: return 8 + static_cast<int>(rng->UniformInt(3));  // 8-10.
  }
}

table::Table GenerateTable(const BenchmarkConfig& config, int min_columns,
                           const std::string& name, common::Rng* rng) {
  const int rows = config.min_rows +
                   static_cast<int>(rng->UniformInt(
                       static_cast<uint64_t>(config.max_rows -
                                             config.min_rows + 1)));
  int cols = config.min_columns +
             static_cast<int>(rng->UniformInt(static_cast<uint64_t>(
                 config.max_columns - config.min_columns + 1)));
  cols = std::max(cols, min_columns);
  table::Table t;
  t.set_name(name);
  for (int c = 0; c < cols; ++c) {
    t.AddColumn(table::Column(
        common::StrFormat("c%d", c),
        GenerateSeries(RandomFamily(rng), static_cast<size_t>(rows), rng)));
  }
  return t;
}

// Builds a vis spec with `m` lines over distinct random columns.
chart::VisSpec MakeSpec(const table::Table& t, int m, bool with_da,
                        common::Rng* rng) {
  chart::VisSpec spec;
  const auto cols = rng->SampleWithoutReplacement(
      t.num_columns(), static_cast<size_t>(
                           std::min<int>(m, static_cast<int>(t.num_columns()))));
  for (size_t c : cols) spec.y_columns.push_back(static_cast<int>(c));
  if (with_da) {
    const auto& ops = table::RealAggregateOps();
    spec.aggregate = ops[rng->UniformInt(ops.size())];
    // Window uniform in [2, min(scaled_cap, NR/8)]; paper uses
    // min(100, NR/10) at full scale.
    const size_t cap = std::max<size_t>(
        2, std::min<size_t>(24, t.num_rows() / 8));
    spec.window_size = 2 + rng->UniformInt(cap - 1);
  }
  return spec;
}

// Resamples underlying data / tables for the ground-truth DTW cost cap.
table::UnderlyingData ResampleUnderlying(const table::UnderlyingData& d,
                                         size_t n) {
  table::UnderlyingData out = d;
  for (auto& s : out) {
    if (s.y.size() > n) s.y = common::ResampleLinear(s.y, n);
    s.x.clear();
  }
  return out;
}

table::Table ResampleTable(const table::Table& t, size_t n) {
  table::Table out;
  out.set_name(t.name());
  out.set_id(t.id());
  for (const auto& c : t.columns()) {
    if (c.values.empty()) {
      out.AddColumn(c);
    } else if (c.values.size() > n) {
      out.AddColumn(table::Column(c.name, common::ResampleLinear(c.values, n)));
    } else {
      out.AddColumn(c);
    }
  }
  return out;
}

}  // namespace

Benchmark BuildBenchmark(const BenchmarkConfig& config,
                         const vision::VisualElementExtractor& extractor) {
  Benchmark bench;
  bench.config = config;
  common::Rng rng(config.seed);
  vision::MaskOracleExtractor oracle;

  // ---- Training triplets (several charts per table, as the Plotly
  // corpus attaches several visualization configs to popular tables) ----
  for (int i = 0; i < config.num_training_tables; ++i) {
    table::Table t = GenerateTable(config, /*min_columns=*/0,
                                   common::StrFormat("train_%d", i), &rng);
    const table::TableId tid = bench.lake.Add(std::move(t));
    for (int c = 0; c < config.charts_per_training_table; ++c) {
      const table::Table& source = bench.lake.Get(tid);
      const int m = LinesForBucket(SampleBucket(&rng), &rng);
      const bool da = rng.Bernoulli(config.da_query_fraction);
      const chart::VisSpec spec = MakeSpec(source, m, da, &rng);
      const table::UnderlyingData d =
          chart::BuildUnderlyingData(source, spec);
      const chart::RenderedChart rendered =
          chart::RenderLineChart(d, config.chart_style);
      auto extracted = extractor.Extract(rendered);
      if (!extracted.ok()) extracted = oracle.Extract(rendered);
      if (!extracted.ok()) continue;
      core::TrainingTriplet triplet;
      triplet.chart = std::move(extracted).ValueOrDie();
      triplet.underlying = d;
      triplet.table_id = tid;
      bench.training.push_back(std::move(triplet));
    }
  }

  // ---- Background repository tables ----
  for (int i = 0; i < config.extra_lake_tables; ++i) {
    bench.lake.Add(GenerateTable(config, /*min_columns=*/0,
                                 common::StrFormat("lake_%d", i), &rng));
  }

  // ---- Queries (round-robin over the M strata so Table III has every
  // bucket) ----
  for (int i = 0; i < config.num_query_tables; ++i) {
    const int bucket = i % 4;
    const int m = LinesForBucket(bucket, &rng);
    table::Table t = GenerateTable(config, /*min_columns=*/m,
                                   common::StrFormat("query_%d", i), &rng);
    const bool da = rng.Bernoulli(config.da_query_fraction);
    const chart::VisSpec spec = MakeSpec(t, m, da, &rng);
    const table::UnderlyingData d = chart::BuildUnderlyingData(t, spec);
    const table::TableId tid = bench.lake.Add(std::move(t));

    const chart::RenderedChart rendered =
        chart::RenderLineChart(d, config.chart_style);
    auto extracted = extractor.Extract(rendered);
    if (!extracted.ok()) {
      FCM_LOGS(WARN) << "query extraction failed ("
                     << extracted.status().ToString()
                     << "); falling back to mask oracle";
      extracted = oracle.Extract(rendered);
      if (!extracted.ok()) continue;
    }
    QueryRecord q;
    q.extracted = std::move(extracted).ValueOrDie();
    q.underlying = d;
    q.source_table = tid;
    q.num_lines = static_cast<int>(d.size());
    q.is_da = spec.aggregate != table::AggregateOp::kNone;
    q.op = spec.aggregate;
    q.window_size = spec.window_size;
    q.y_lo = q.extracted.y_lo;
    q.y_hi = q.extracted.y_hi;
    bench.queries.push_back(std::move(q));
  }

  // ---- Noisy near-duplicates per query ----
  for (auto& q : bench.queries) {
    const table::Table& src = bench.lake.Get(q.source_table);
    auto dups = table::MakeNoisyDuplicates(
        src, static_cast<size_t>(config.duplicates_per_query),
        config.noise_amplitude, /*x_column=*/-1, &rng);
    for (auto& dup : dups) bench.lake.Add(std::move(dup));
  }

  // ---- Ground truth: top-k by Rel(D, T) over the whole repository ----
  // The scan maintains a running top-k (score descending, table id
  // ascending on ties — tables are visited in id order, so a later tie
  // can never displace an earlier entry) and hands the current k-th score
  // to rel::PrunedRelevance as the abandon threshold: tables whose
  // matching-aware envelope bound proves Rel <= threshold skip the DTW
  // DP, and per-pair DtwOptions::abandon_above cutoffs prune inside
  // surviving tables. Pruning is exact through the Hungarian step — every
  // table that can enter the top k gets its exact unpruned score (see
  // PrunedRelevance's contract).
  const size_t resample = static_cast<size_t>(config.ground_truth_resample);
  std::vector<table::Table> resampled_lake;
  resampled_lake.reserve(bench.lake.size());
  for (const auto& t : bench.lake.tables()) {
    resampled_lake.push_back(ResampleTable(t, resample));
  }
  rel::RelevanceOptions rel_options;
  rel_options.dtw.band_fraction = config.ground_truth_band;
  // Candidate-side envelopes depend only on (table, column, resampled
  // query length), all fixed across the query loop — cache them so each
  // column's envelope is built once instead of once per query.
  rel::EnvelopeCache envelope_cache;
  rel_options.envelope_cache = &envelope_cache;
  const double kNegInf = -std::numeric_limits<double>::infinity();
  for (auto& q : bench.queries) {
    const size_t k = std::min<size_t>(
        static_cast<size_t>(std::max(config.ground_truth_k, 0)),
        resampled_lake.size());
    if (k == 0) {  // Nothing to rank — and top.back() below needs k > 0.
      q.relevant.clear();
      continue;
    }
    const table::UnderlyingData d = ResampleUnderlying(q.underlying, resample);
    std::vector<std::pair<double, table::TableId>> top;  // Sorted as above.
    top.reserve(k + 1);
    for (const auto& t : resampled_lake) {
      const double threshold = top.size() < k ? kNegInf : top.back().first;
      const double score = rel::PrunedRelevance(d, t, rel_options, threshold);
      if (top.size() >= k && score <= threshold) continue;
      auto pos = std::upper_bound(
          top.begin(), top.end(), score,
          [](double s, const auto& e) { return s > e.first; });
      top.insert(pos, {score, t.id()});
      if (top.size() > k) top.pop_back();
    }
    q.relevant.clear();
    for (const auto& [score, id] : top) q.relevant.push_back(id);
  }

  FCM_LOGS(INFO) << "benchmark built: " << bench.lake.size() << " tables, "
                 << bench.training.size() << " training triplets, "
                 << bench.queries.size() << " queries";
  return bench;
}

}  // namespace fcm::benchgen
