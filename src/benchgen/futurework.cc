#include "benchgen/futurework.h"

#include <algorithm>

#include "benchgen/series_generator.h"
#include "common/logging.h"
#include "common/math_util.h"
#include "common/string_util.h"
#include "relevance/relevance.h"
#include "table/noise.h"
#include "vision/mask_oracle_extractor.h"

namespace fcm::benchgen {

namespace {

table::Table GenerateSourceTable(const FutureworkConfig& config,
                                 const std::string& name, int columns,
                                 common::Rng* rng) {
  const int rows =
      config.min_rows +
      static_cast<int>(rng->UniformInt(
          static_cast<uint64_t>(config.max_rows - config.min_rows + 1)));
  table::Table t;
  t.set_name(name);
  for (int c = 0; c < columns; ++c) {
    t.AddColumn(table::Column(
        common::StrFormat("c%d", c),
        GenerateSeries(RandomFamily(rng), static_cast<size_t>(rows), rng)));
  }
  return t;
}

/// Renders + extracts; falls back to the mask oracle like the main
/// benchmark builder. Returns false when both fail.
bool RenderAndExtract(const table::UnderlyingData& d,
                      const chart::ChartStyle& style,
                      const vision::VisualElementExtractor& extractor,
                      ExtensionQuery* q) {
  const chart::RenderedChart rendered = chart::RenderLineChart(d, style);
  auto extracted = extractor.Extract(rendered);
  if (!extracted.ok()) {
    vision::MaskOracleExtractor oracle;
    extracted = oracle.Extract(rendered);
    if (!extracted.ok()) return false;
  }
  q->extracted = std::move(extracted).ValueOrDie();
  q->underlying = d;
  q->y_lo = q->extracted.y_lo;
  q->y_hi = q->extracted.y_hi;
  return true;
}

table::UnderlyingData ResampleUnderlying(const table::UnderlyingData& d,
                                         size_t n) {
  table::UnderlyingData out = d;
  for (auto& s : out) {
    if (s.y.size() > n) s.y = common::ResampleLinear(s.y, n);
    s.x.clear();
  }
  return out;
}

/// Adds noisy near-duplicates of `source` and fills `q->relevant` with the
/// lake-wide top-k by Rel (optionally z-normalized).
void AddDuplicatesAndGroundTruth(Benchmark* bench,
                                 const FutureworkConfig& config,
                                 table::TableId source, bool z_normalize,
                                 common::Rng* rng, ExtensionQuery* q) {
  {
    const table::Table& src = bench->lake.Get(source);
    auto dups = table::MakeNoisyDuplicates(
        src, static_cast<size_t>(config.duplicates_per_query),
        config.noise_amplitude, /*x_column=*/-1, rng);
    for (auto& dup : dups) bench->lake.Add(std::move(dup));
  }

  rel::RelevanceOptions options;
  options.dtw.band_fraction = config.ground_truth_band;
  options.dtw.z_normalize = z_normalize;
  const size_t resample =
      static_cast<size_t>(config.ground_truth_resample);
  const table::UnderlyingData d = ResampleUnderlying(q->underlying, resample);

  std::vector<std::pair<double, table::TableId>> scored;
  scored.reserve(bench->lake.size());
  for (const auto& t : bench->lake.tables()) {
    // Resample long columns for DTW cost control (mirrors the main
    // benchmark's ground-truth computation).
    table::Table rt;
    rt.set_id(t.id());
    for (const auto& c : t.columns()) {
      rt.AddColumn(c.values.size() > resample
                       ? table::Column(
                             c.name, common::ResampleLinear(c.values, resample))
                       : c);
    }
    scored.emplace_back(rel::Relevance(d, rt, options), t.id());
  }
  const size_t k = std::min<size_t>(
      static_cast<size_t>(config.ground_truth_k), scored.size());
  std::partial_sort(scored.begin(), scored.begin() + static_cast<long>(k),
                    scored.end(), [](const auto& a, const auto& b) {
                      return a.first > b.first;
                    });
  q->relevant.clear();
  for (size_t i = 0; i < k; ++i) q->relevant.push_back(scored[i].second);
}

}  // namespace

std::vector<ExtensionQuery> MakeMultiDatasetQueries(
    Benchmark* bench, const vision::VisualElementExtractor& extractor,
    const FutureworkConfig& config, int num_sources) {
  common::Rng rng(config.seed);
  std::vector<ExtensionQuery> queries;
  for (int i = 0; i < config.num_queries; ++i) {
    ExtensionQuery q;
    table::UnderlyingData d;
    // All sources share a row count so the lines join on the x index.
    const int rows =
        config.min_rows +
        static_cast<int>(rng.UniformInt(static_cast<uint64_t>(
            config.max_rows - config.min_rows + 1)));
    for (int s = 0; s < num_sources; ++s) {
      table::Table t;
      t.set_name(common::StrFormat("multids_%d_%d", i, s));
      const int cols = 2 + static_cast<int>(rng.UniformInt(3));
      for (int c = 0; c < cols; ++c) {
        t.AddColumn(table::Column(
            common::StrFormat("c%d", c),
            GenerateSeries(RandomFamily(&rng), static_cast<size_t>(rows),
                           &rng)));
      }
      // Plot one random column of this source as one line.
      table::DataSeries line;
      line.label = t.name();
      line.y = t.column(rng.UniformInt(t.num_columns())).values;
      d.push_back(std::move(line));
      q.source_tables.push_back(bench->lake.Add(std::move(t)));
    }
    if (!RenderAndExtract(d, config.chart_style, extractor, &q)) continue;
    queries.push_back(std::move(q));
  }
  return queries;
}

std::vector<ExtensionQuery> MakeRescaledQueries(
    Benchmark* bench, const vision::VisualElementExtractor& extractor,
    const FutureworkConfig& config, table::RescaleOp op) {
  common::Rng rng(config.seed ^ 0x5c5c5c5cULL);
  std::vector<ExtensionQuery> queries;
  for (int i = 0; i < config.num_queries; ++i) {
    table::Table t = GenerateSourceTable(
        config, common::StrFormat("rescale_%d", i), /*columns=*/3, &rng);
    const size_t col = rng.UniformInt(t.num_columns());
    ExtensionQuery q;
    q.rescale = op;
    table::RescaleParams params;
    if (op == table::RescaleOp::kAffine) {
      params.factor = 0.25 + 4.0 * rng.Uniform();
      params.offset = -10.0 + 20.0 * rng.Uniform();
    }
    table::DataSeries line;
    line.label = "rescaled";
    line.y = table::Rescale(t.column(col).values, op, params);
    const table::TableId tid = bench->lake.Add(std::move(t));
    q.source_tables.push_back(tid);
    if (!RenderAndExtract({line}, config.chart_style, extractor, &q)) {
      continue;
    }
    AddDuplicatesAndGroundTruth(bench, config, tid, /*z_normalize=*/true,
                                &rng, &q);
    queries.push_back(std::move(q));
  }
  return queries;
}

std::vector<ExtensionQuery> MakeNestedAggQueries(
    Benchmark* bench, const vision::VisualElementExtractor& extractor,
    const FutureworkConfig& config) {
  common::Rng rng(config.seed ^ 0x11223344ULL);
  std::vector<ExtensionQuery> queries;
  const auto& ops = table::RealAggregateOps();
  for (int i = 0; i < config.num_queries; ++i) {
    table::Table t = GenerateSourceTable(
        config, common::StrFormat("nested_%d", i), /*columns=*/3, &rng);
    const size_t col = rng.UniformInt(t.num_columns());
    ExtensionQuery q;
    // Two-step pipeline with small windows so enough points survive.
    q.pipeline.push_back(
        {ops[rng.UniformInt(ops.size())], 2 + rng.UniformInt(3)});
    q.pipeline.push_back(
        {ops[rng.UniformInt(ops.size())], 2 + rng.UniformInt(2)});
    table::DataSeries line;
    line.label = table::AggregatePipelineName(q.pipeline);
    line.y = table::NestedAggregate(t.column(col).values, q.pipeline);
    const table::TableId tid = bench->lake.Add(std::move(t));
    q.source_tables.push_back(tid);
    if (!RenderAndExtract({line}, config.chart_style, extractor, &q)) {
      continue;
    }
    AddDuplicatesAndGroundTruth(bench, config, tid, /*z_normalize=*/false,
                                &rng, &q);
    queries.push_back(std::move(q));
  }
  return queries;
}

std::vector<ExtensionQuery> MakeMultiAggQueries(
    Benchmark* bench, const vision::VisualElementExtractor& extractor,
    const FutureworkConfig& config) {
  common::Rng rng(config.seed ^ 0x99aabbccULL);
  std::vector<ExtensionQuery> queries;
  const auto& ops = table::RealAggregateOps();
  for (int i = 0; i < config.num_queries; ++i) {
    table::Table t = GenerateSourceTable(
        config, common::StrFormat("multiagg_%d", i), /*columns=*/3, &rng);
    const size_t col = rng.UniformInt(t.num_columns());
    const size_t window = 3 + rng.UniformInt(5);
    ExtensionQuery q;
    table::UnderlyingData d;
    for (const auto op : ops) {
      table::DataSeries line;
      line.label = table::AggregateOpName(op);
      line.y = table::Aggregate(t.column(col).values, op, window);
      d.push_back(std::move(line));
      q.per_line_ops.push_back(op);
    }
    q.pipeline.push_back({table::AggregateOp::kNone, window});
    const table::TableId tid = bench->lake.Add(std::move(t));
    q.source_tables.push_back(tid);
    if (!RenderAndExtract(d, config.chart_style, extractor, &q)) continue;
    AddDuplicatesAndGroundTruth(bench, config, tid, /*z_normalize=*/false,
                                &rng, &q);
    queries.push_back(std::move(q));
  }
  return queries;
}

}  // namespace fcm::benchgen
