// Benchmark construction (paper Sec. VII-A), at configurable scale:
// generate a corpus of (table, vis-spec) records; split into training
// tables and query tables; per query, render a line chart (optionally
// DA-based), inject multiplicative noise to create near-duplicate tables,
// and compute ground truth as the top-k tables by Rel(D, T).

#ifndef FCM_BENCHGEN_BENCHMARK_H_
#define FCM_BENCHGEN_BENCHMARK_H_

#include <vector>

#include "chart/chart_spec.h"
#include "chart/renderer.h"
#include "core/training.h"
#include "table/aggregate.h"
#include "table/data_lake.h"
#include "vision/extracted_chart.h"
#include "vision/extractor.h"

namespace fcm::benchgen {

/// Scale and behaviour of the generated benchmark. Paper-scale values in
/// comments.
struct BenchmarkConfig {
  int num_training_tables = 60;    // Paper: 3000.
  /// Charts (training triplets) generated per training table.
  int charts_per_training_table = 2;
  int num_query_tables = 24;       // Paper: 100.
  int extra_lake_tables = 120;     // Background tables in the repository.
  int duplicates_per_query = 10;   // Paper: 50.
  int ground_truth_k = 10;         // Paper: 50 (= duplicates_per_query).
  double noise_amplitude = 0.1;    // U(0.9, 1.1) per the paper.
  /// Fraction of queries rendered from aggregated data.
  double da_query_fraction = 0.5;  // Paper: one DA + one non-DA per table.
  /// Rows per generated table, uniform in [min, max].
  int min_rows = 96;
  int max_rows = 320;
  /// Columns per generated table.
  int min_columns = 3;
  int max_columns = 8;
  /// Ground-truth DTW is computed over series resampled to this length
  /// (cost control; relative ranks are preserved at benchmark scale).
  int ground_truth_resample = 160;
  /// Sakoe-Chiba band fraction for the ground-truth DTW.
  double ground_truth_band = 0.2;
  chart::ChartStyle chart_style;
  uint64_t seed = 2024;
};

/// One benchmark query: the rendered chart, its extraction, the underlying
/// data, provenance, and the ground-truth relevant set.
struct QueryRecord {
  vision::ExtractedChart extracted;
  table::UnderlyingData underlying;
  table::TableId source_table = table::kInvalidTableId;
  /// Number of lines M (stratification key for Table III).
  int num_lines = 0;
  /// Data-aggregation provenance (Table IV).
  bool is_da = false;
  table::AggregateOp op = table::AggregateOp::kNone;
  size_t window_size = 1;
  /// y range of the query chart.
  double y_lo = 0.0;
  double y_hi = 1.0;
  /// Ground truth: top-k table ids by Rel(D, T), best first.
  std::vector<table::TableId> relevant;
};

/// The generated benchmark: repository + training triplets + queries.
struct Benchmark {
  table::DataLake lake;
  std::vector<core::TrainingTriplet> training;
  std::vector<QueryRecord> queries;
  BenchmarkConfig config;

  /// Table I style strata over M: {1, 2-4, 5-7, >7} -> bucket 0..3.
  static int LineCountBucket(int m);
  static const char* LineCountBucketName(int bucket);
};

/// Builds the benchmark. `extractor` converts rendered query/training
/// charts into ExtractedChart (the classical extractor by default — the
/// whole pipeline then runs from pixels alone).
Benchmark BuildBenchmark(const BenchmarkConfig& config,
                         const vision::VisualElementExtractor& extractor);

}  // namespace fcm::benchgen

#endif  // FCM_BENCHGEN_BENCHMARK_H_
