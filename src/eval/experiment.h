// Experiment runner: evaluates a RetrievalMethod over a benchmark (linear
// scan over the repository, as in the paper's effectiveness studies) and
// aggregates prec@k / ndcg@k overall and by the paper's strata (with /
// without DA; number of lines; DA operator x window bucket).

#ifndef FCM_EVAL_EXPERIMENT_H_
#define FCM_EVAL_EXPERIMENT_H_

#include <vector>

#include "baselines/method.h"
#include "benchgen/benchmark.h"

namespace fcm::eval {

/// Per-query evaluation record.
struct QueryResult {
  int query_index = 0;
  double prec_at_k = 0.0;
  double ndcg_at_k = 0.0;
  int num_lines = 0;
  bool is_da = false;
  table::AggregateOp op = table::AggregateOp::kNone;
  size_t window_size = 1;
  /// The method's ranked top-k table ids.
  std::vector<table::TableId> ranked;
};

/// Aggregate (mean) effectiveness over a set of query results.
struct Aggregate {
  double prec = 0.0;
  double ndcg = 0.0;
  int count = 0;
};

/// All per-query results for one method.
struct MethodResults {
  const char* method_name = "";
  std::vector<QueryResult> queries;

  Aggregate Overall() const;
  Aggregate WithDa() const;
  Aggregate WithoutDa() const;
  /// By the Table I/III strata bucket (0:1, 1:2-4, 2:5-7, 3:>7).
  Aggregate ByLineBucket(int bucket) const;
  /// By aggregation operator (DA queries only).
  Aggregate ByOperator(table::AggregateOp op) const;
  /// By operator and window-size range [w_lo, w_hi] (DA queries only).
  Aggregate ByOperatorAndWindow(table::AggregateOp op, size_t w_lo,
                                size_t w_hi) const;
};

/// Scores every (query, table) pair with a linear scan and computes
/// prec@k / ndcg@k per query. `k` defaults to the benchmark's ground
/// truth size (the paper's k = 50 scaled).
MethodResults EvaluateMethod(const baselines::RetrievalMethod& method,
                             const benchgen::Benchmark& bench, int k = -1);

/// Ranks the repository for a single query (exposed for the index bench,
/// which compares pruning strategies against this linear scan).
std::vector<table::TableId> RankRepository(
    const baselines::RetrievalMethod& method,
    const benchgen::QueryRecord& query, const table::DataLake& lake, int k);

}  // namespace fcm::eval

#endif  // FCM_EVAL_EXPERIMENT_H_
