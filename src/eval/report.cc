#include "eval/report.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/check.h"
#include "common/string_util.h"

namespace fcm::eval {

ReportTable::ReportTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void ReportTable::AddRow(std::vector<std::string> row) {
  FCM_CHECK_EQ(row.size(), header_.size());
  rows_.push_back(std::move(row));
}

std::string ReportTable::ToString() const {
  std::vector<size_t> widths(header_.size(), 0);
  for (size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      out << (c == 0 ? "| " : " | ");
      out << row[c];
      out << std::string(widths[c] - row[c].size(), ' ');
    }
    out << " |\n";
  };
  emit_row(header_);
  for (size_t c = 0; c < header_.size(); ++c) {
    out << (c == 0 ? "|" : "|") << std::string(widths[c] + 2, '-');
  }
  out << "|\n";
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

void ReportTable::Print() const {
  std::fputs(ToString().c_str(), stdout);
  std::fflush(stdout);
}

std::string Fmt3(double v) { return common::StrFormat("%.3f", v); }
std::string Fmt1(double v) { return common::StrFormat("%.1f", v); }

}  // namespace fcm::eval
