// Fixed-width table printing for the bench binaries, mirroring the paper's
// table layout.

#ifndef FCM_EVAL_REPORT_H_
#define FCM_EVAL_REPORT_H_

#include <string>
#include <vector>

namespace fcm::eval {

/// A printable table: a header row and data rows of equal arity.
class ReportTable {
 public:
  explicit ReportTable(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);

  /// Formats with per-column widths and a header separator.
  std::string ToString() const;

  /// Prints to stdout.
  void Print() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// "%.3f"-formatted cell.
std::string Fmt3(double v);
/// "%.1f"-formatted cell.
std::string Fmt1(double v);

}  // namespace fcm::eval

#endif  // FCM_EVAL_REPORT_H_
