// Retrieval effectiveness metrics (paper Sec. VII-B): prec@k and ndcg@k
// with binary relevance against the ground-truth relevant set.

#ifndef FCM_EVAL_METRICS_H_
#define FCM_EVAL_METRICS_H_

#include <vector>

#include "table/table.h"

namespace fcm::eval {

/// Fraction of the top-k ranked ids that appear in `relevant`.
double PrecisionAtK(const std::vector<table::TableId>& ranked,
                    const std::vector<table::TableId>& relevant, int k);

/// Normalized discounted cumulative gain at k with binary gains: DCG over
/// the ranked list divided by the ideal DCG (all |relevant| items first).
double NdcgAtK(const std::vector<table::TableId>& ranked,
               const std::vector<table::TableId>& relevant, int k);

/// Mean of a vector (0 when empty); convenience for aggregating per-query
/// metrics.
double MeanOf(const std::vector<double>& values);

}  // namespace fcm::eval

#endif  // FCM_EVAL_METRICS_H_
