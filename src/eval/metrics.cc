#include "eval/metrics.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace fcm::eval {

double PrecisionAtK(const std::vector<table::TableId>& ranked,
                    const std::vector<table::TableId>& relevant, int k) {
  if (k <= 0 || relevant.empty()) return 0.0;
  const std::unordered_set<table::TableId> rel(relevant.begin(),
                                               relevant.end());
  const size_t limit = std::min<size_t>(static_cast<size_t>(k),
                                        ranked.size());
  size_t hits = 0;
  for (size_t i = 0; i < limit; ++i) {
    if (rel.count(ranked[i])) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(k);
}

double NdcgAtK(const std::vector<table::TableId>& ranked,
               const std::vector<table::TableId>& relevant, int k) {
  if (k <= 0 || relevant.empty()) return 0.0;
  const std::unordered_set<table::TableId> rel(relevant.begin(),
                                               relevant.end());
  const size_t limit = std::min<size_t>(static_cast<size_t>(k),
                                        ranked.size());
  double dcg = 0.0;
  for (size_t i = 0; i < limit; ++i) {
    if (rel.count(ranked[i])) {
      dcg += 1.0 / std::log2(static_cast<double>(i) + 2.0);
    }
  }
  const size_t ideal_hits = std::min<size_t>(static_cast<size_t>(k),
                                             relevant.size());
  double idcg = 0.0;
  for (size_t i = 0; i < ideal_hits; ++i) {
    idcg += 1.0 / std::log2(static_cast<double>(i) + 2.0);
  }
  return idcg > 0.0 ? dcg / idcg : 0.0;
}

double MeanOf(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double s = 0.0;
  for (double v : values) s += v;
  return s / static_cast<double>(values.size());
}

}  // namespace fcm::eval
