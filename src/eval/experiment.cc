#include "eval/experiment.h"

#include <algorithm>

#include "common/logging.h"
#include "eval/metrics.h"

namespace fcm::eval {

namespace {

Aggregate AggregateWhere(
    const std::vector<QueryResult>& queries,
    const std::function<bool(const QueryResult&)>& predicate) {
  Aggregate agg;
  double p = 0.0, n = 0.0;
  for (const auto& q : queries) {
    if (!predicate(q)) continue;
    p += q.prec_at_k;
    n += q.ndcg_at_k;
    ++agg.count;
  }
  if (agg.count > 0) {
    agg.prec = p / agg.count;
    agg.ndcg = n / agg.count;
  }
  return agg;
}

}  // namespace

Aggregate MethodResults::Overall() const {
  return AggregateWhere(queries, [](const QueryResult&) { return true; });
}

Aggregate MethodResults::WithDa() const {
  return AggregateWhere(queries,
                        [](const QueryResult& q) { return q.is_da; });
}

Aggregate MethodResults::WithoutDa() const {
  return AggregateWhere(queries,
                        [](const QueryResult& q) { return !q.is_da; });
}

Aggregate MethodResults::ByLineBucket(int bucket) const {
  return AggregateWhere(queries, [bucket](const QueryResult& q) {
    return benchgen::Benchmark::LineCountBucket(q.num_lines) == bucket;
  });
}

Aggregate MethodResults::ByOperator(table::AggregateOp op) const {
  return AggregateWhere(queries, [op](const QueryResult& q) {
    return q.is_da && q.op == op;
  });
}

Aggregate MethodResults::ByOperatorAndWindow(table::AggregateOp op,
                                             size_t w_lo, size_t w_hi) const {
  return AggregateWhere(queries, [op, w_lo, w_hi](const QueryResult& q) {
    return q.is_da && q.op == op && q.window_size >= w_lo &&
           q.window_size <= w_hi;
  });
}

std::vector<table::TableId> RankRepository(
    const baselines::RetrievalMethod& method,
    const benchgen::QueryRecord& query, const table::DataLake& lake,
    int k) {
  std::vector<std::pair<double, table::TableId>> scored;
  scored.reserve(lake.size());
  for (const auto& t : lake.tables()) {
    scored.emplace_back(method.Score(query, t), t.id());
  }
  const size_t keep =
      std::min<size_t>(static_cast<size_t>(k), scored.size());
  std::partial_sort(scored.begin(), scored.begin() + static_cast<long>(keep),
                    scored.end(), [](const auto& a, const auto& b) {
                      return a.first > b.first;
                    });
  std::vector<table::TableId> ranked;
  ranked.reserve(keep);
  for (size_t i = 0; i < keep; ++i) ranked.push_back(scored[i].second);
  return ranked;
}

MethodResults EvaluateMethod(const baselines::RetrievalMethod& method,
                             const benchgen::Benchmark& bench, int k) {
  if (k <= 0) k = bench.config.ground_truth_k;
  MethodResults results;
  results.method_name = method.name();
  for (size_t qi = 0; qi < bench.queries.size(); ++qi) {
    const auto& query = bench.queries[qi];
    QueryResult qr;
    qr.query_index = static_cast<int>(qi);
    qr.num_lines = query.num_lines;
    qr.is_da = query.is_da;
    qr.op = query.op;
    qr.window_size = query.window_size;
    qr.ranked = RankRepository(method, query, bench.lake, k);
    qr.prec_at_k = PrecisionAtK(qr.ranked, query.relevant, k);
    qr.ndcg_at_k = NdcgAtK(qr.ranked, query.relevant, k);
    results.queries.push_back(std::move(qr));
  }
  const Aggregate overall = results.Overall();
  FCM_LOGS(INFO) << method.name() << ": prec@" << k << " = " << overall.prec
                 << ", ndcg@" << k << " = " << overall.ndcg;
  return results;
}

}  // namespace fcm::eval
