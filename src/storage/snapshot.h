// Versioned, checksummed snapshot container for frozen index state — the
// on-disk half of the storage layer. A snapshot file is a flat set of
// named byte sections behind a fixed header and a section table:
//
//   [header, 64 B] [section table, 48 B x N] [pad] [section 0] [pad] ...
//
//   header:  magic "FCMSNAP\0" | u32 format_version | u32 section_count
//            | u64 file_bytes | u64 table_offset | u32 table_crc
//            | zero padding | u32 header_crc (over bytes [0, 60))
//   entry:   char name[24] (NUL-padded) | u64 offset | u64 size
//            | u32 crc | u32 zero
//
// Every payload section starts on a 64-byte boundary, so numeric blocks
// (f32/f64/u64/i64 arrays) written as sections can be handed out as typed
// spans straight over the mmap'ed file — zero copies, N serving processes
// share one page-cache copy. Every byte of the file is covered by exactly
// one check: the header by header_crc, the table by table_crc, each
// section by its entry's crc, and all padding must read zero. Any
// truncation or byte flip therefore fails SnapshotReader::Open with a
// loud Status — never UB, never a silently wrong ranking.
//
// Writes go through common::BinaryWriter::SaveToFile, which is atomic
// (temp file + fsync + rename): a crash mid-save can never leave a torn
// snapshot at the target path.

#ifndef FCM_STORAGE_SNAPSHOT_H_
#define FCM_STORAGE_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/span.h"

namespace fcm::storage {

/// Container format version; readers reject anything else.
inline constexpr uint32_t kSnapshotFormatVersion = 1;
/// Payload sections start on this boundary (>= any alignof we hand out).
inline constexpr size_t kSnapshotAlignment = 64;
/// Section names are at most this many bytes (excluding the NUL).
inline constexpr size_t kSnapshotMaxNameLength = 23;

/// Accumulates named sections and serializes the container. Section order
/// is preserved in the file (and in SnapshotReader::section_names()).
class SnapshotWriter {
 public:
  /// Adds a section (bytes are copied). Name must be non-empty, unique,
  /// and at most kSnapshotMaxNameLength bytes.
  void AddSection(const std::string& name, const void* data, size_t bytes);

  /// Typed convenience: the vector's elements as raw little-endian bytes.
  template <typename T>
  void AddTypedSection(const std::string& name, const std::vector<T>& v) {
    AddSection(name, v.data(), v.size() * sizeof(T));
  }
  template <typename T>
  void AddTypedSection(const std::string& name, Span<T> v) {
    AddSection(name, v.data(), v.size() * sizeof(T));
  }

  /// Serializes the container into a byte buffer (the file image).
  std::vector<uint8_t> Serialize() const;

  /// Serializes and atomically writes the file.
  common::Status WriteToFile(const std::string& path) const;

 private:
  struct Section {
    std::string name;
    std::vector<uint8_t> bytes;
  };
  std::vector<Section> sections_;
};

/// How SnapshotReader::Open backs the file bytes.
struct SnapshotReadOptions {
  /// mmap the file read-only; false (or a platform without mmap) falls
  /// back to reading the file onto the heap.
  bool use_mmap = true;
};

/// Validates and serves an on-disk snapshot. The preferred backing is a
/// read-only mmap of the file — typed sections are then served zero-copy
/// out of the page cache — with a heap read as fallback (or on request).
/// The reader must outlive every span it hands out.
class SnapshotReader {
 public:
  using Options = SnapshotReadOptions;

  /// Opens and fully validates a snapshot: magic, version, size, section
  /// table, every section CRC, and zeroed padding. Any mismatch is a
  /// Status error.
  static common::Result<std::unique_ptr<SnapshotReader>> Open(
      const std::string& path, const Options& options = Options());

  /// Validates an in-memory file image (tests, corruption property
  /// checks). The buffer is copied.
  static common::Result<std::unique_ptr<SnapshotReader>> OpenFromBuffer(
      std::vector<uint8_t> buffer);

  ~SnapshotReader();

  SnapshotReader(const SnapshotReader&) = delete;
  SnapshotReader& operator=(const SnapshotReader&) = delete;

  bool HasSection(const std::string& name) const;

  /// Raw bytes of a section; NotFound for unknown names.
  common::Result<Span<uint8_t>> Section(const std::string& name) const;

  /// Section as a typed span. Fails when the section size is not a
  /// multiple of sizeof(T) (alignment is guaranteed by the format).
  template <typename T>
  common::Result<Span<T>> TypedSection(const std::string& name) const {
    auto raw = Section(name);
    if (!raw.ok()) return raw.status();
    if (raw.value().size() % sizeof(T) != 0) {
      return common::Status::InvalidArgument(
          "snapshot section '" + name + "' size " +
          std::to_string(raw.value().size()) +
          " is not a multiple of the element size");
    }
    return Span<T>(reinterpret_cast<const T*>(raw.value().data()),
                   raw.value().size() / sizeof(T));
  }

  /// Section names in file order.
  const std::vector<std::string>& section_names() const { return names_; }
  size_t SectionBytes(const std::string& name) const;
  uint32_t SectionCrc(const std::string& name) const;

  size_t file_bytes() const { return size_; }
  bool mmap_backed() const { return mmap_base_ != nullptr; }
  uint32_t format_version() const { return format_version_; }

 private:
  SnapshotReader() = default;

  /// Parses + validates the image at [data_, size_). Fills sections_.
  common::Status Validate();

  struct SectionEntry {
    std::string name;
    uint64_t offset = 0;
    uint64_t size = 0;
    uint32_t crc = 0;
  };

  const uint8_t* data_ = nullptr;
  size_t size_ = 0;
  void* mmap_base_ = nullptr;       // Non-null when mmap-backed.
  size_t mmap_length_ = 0;
  std::vector<uint8_t> heap_;       // Backing when not mmap-backed.
  std::vector<SectionEntry> sections_;
  std::vector<std::string> names_;  // File order.
  uint32_t format_version_ = 0;
};

}  // namespace fcm::storage

#endif  // FCM_STORAGE_SNAPSHOT_H_
