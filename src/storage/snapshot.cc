#include "storage/snapshot.h"

#include <algorithm>
#include <cstring>

#include "common/serialize.h"
#include "storage/crc32.h"

#if defined(__unix__) || defined(__APPLE__)
#define FCM_SNAPSHOT_HAS_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace fcm::storage {

namespace {

constexpr char kMagic[8] = {'F', 'C', 'M', 'S', 'N', 'A', 'P', '\0'};
constexpr size_t kHeaderBytes = 64;
constexpr size_t kEntryBytes = 48;
constexpr size_t kNameBytes = 24;

size_t AlignUp(size_t v, size_t a) { return (v + a - 1) / a * a; }

void PutU32(uint8_t* p, uint32_t v) { std::memcpy(p, &v, sizeof(v)); }
void PutU64(uint8_t* p, uint64_t v) { std::memcpy(p, &v, sizeof(v)); }
uint32_t GetU32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}
uint64_t GetU64(const uint8_t* p) {
  uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

common::Status Corrupt(const std::string& what) {
  return common::Status::InvalidArgument("snapshot: " + what);
}

}  // namespace

void SnapshotWriter::AddSection(const std::string& name, const void* data,
                                size_t bytes) {
  FCM_CHECK(!name.empty());
  FCM_CHECK_LE(name.size(), kSnapshotMaxNameLength);
  for (const auto& s : sections_) FCM_CHECK(s.name != name);
  Section section;
  section.name = name;
  const auto* p = static_cast<const uint8_t*>(data);
  section.bytes.assign(p, p + bytes);
  sections_.push_back(std::move(section));
}

std::vector<uint8_t> SnapshotWriter::Serialize() const {
  const size_t table_offset = kHeaderBytes;
  const size_t table_bytes = sections_.size() * kEntryBytes;
  // Assign each section the next aligned offset.
  std::vector<size_t> offsets(sections_.size());
  size_t cursor = AlignUp(table_offset + table_bytes, kSnapshotAlignment);
  for (size_t i = 0; i < sections_.size(); ++i) {
    offsets[i] = cursor;
    cursor = AlignUp(cursor + sections_[i].bytes.size(), kSnapshotAlignment);
  }
  // The file ends right after the last section's payload — the final
  // alignment hop is not emitted (nothing follows it).
  size_t file_bytes = table_offset + table_bytes;
  for (size_t i = 0; i < sections_.size(); ++i) {
    file_bytes = std::max(file_bytes, offsets[i] + sections_[i].bytes.size());
  }

  std::vector<uint8_t> out(file_bytes, 0);
  // Section table.
  for (size_t i = 0; i < sections_.size(); ++i) {
    uint8_t* e = out.data() + table_offset + i * kEntryBytes;
    std::memcpy(e, sections_[i].name.data(), sections_[i].name.size());
    PutU64(e + kNameBytes, offsets[i]);
    PutU64(e + kNameBytes + 8, sections_[i].bytes.size());
    PutU32(e + kNameBytes + 16,
           Crc32(sections_[i].bytes.data(), sections_[i].bytes.size()));
    // Trailing u32 stays zero (validated by the reader).
  }
  // Payloads. Empty sections are skipped: memcpy from an empty vector's
  // data() (null) is UB even with a zero byte count.
  for (size_t i = 0; i < sections_.size(); ++i) {
    if (sections_[i].bytes.empty()) continue;
    std::memcpy(out.data() + offsets[i], sections_[i].bytes.data(),
                sections_[i].bytes.size());
  }
  // Header (last: it checksums the section table).
  uint8_t* h = out.data();
  std::memcpy(h, kMagic, sizeof(kMagic));
  PutU32(h + 8, kSnapshotFormatVersion);
  PutU32(h + 12, static_cast<uint32_t>(sections_.size()));
  PutU64(h + 16, file_bytes);
  PutU64(h + 24, table_offset);
  PutU32(h + 32, Crc32(out.data() + table_offset, table_bytes));
  PutU32(h + 60, Crc32(h, 60));
  return out;
}

common::Status SnapshotWriter::WriteToFile(const std::string& path) const {
  const std::vector<uint8_t> image = Serialize();
  common::BinaryWriter writer;
  writer.WriteBytes(image.data(), image.size());
  return writer.SaveToFile(path);
}

SnapshotReader::~SnapshotReader() {
#ifdef FCM_SNAPSHOT_HAS_MMAP
  if (mmap_base_ != nullptr) munmap(mmap_base_, mmap_length_);
#endif
}

common::Result<std::unique_ptr<SnapshotReader>> SnapshotReader::Open(
    const std::string& path, const Options& options) {
  std::unique_ptr<SnapshotReader> reader(new SnapshotReader());
#ifdef FCM_SNAPSHOT_HAS_MMAP
  if (options.use_mmap) {
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
      return common::Status::IoError("snapshot: cannot open " + path);
    }
    struct stat st;
    if (fstat(fd, &st) != 0 || st.st_size < 0) {
      ::close(fd);
      return common::Status::IoError("snapshot: cannot stat " + path);
    }
    const size_t size = static_cast<size_t>(st.st_size);
    // mmap of an empty file is invalid; size-0 files fail header checks
    // below through the heap path instead.
    if (size > 0) {
      void* base = mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
      ::close(fd);
      if (base == MAP_FAILED) {
        return common::Status::IoError("snapshot: mmap failed for " + path);
      }
      reader->mmap_base_ = base;
      reader->mmap_length_ = size;
      reader->data_ = static_cast<const uint8_t*>(base);
      reader->size_ = size;
      auto status = reader->Validate();
      if (!status.ok()) return status;
      return reader;
    }
    ::close(fd);
    return Corrupt("file is empty: " + path);
  }
#endif
  auto buf = common::BinaryReader::LoadFileBytes(path);
  if (!buf.ok()) return buf.status();
  reader->heap_ = std::move(buf).ValueOrDie();
  reader->data_ = reader->heap_.data();
  reader->size_ = reader->heap_.size();
  auto status = reader->Validate();
  if (!status.ok()) return status;
  return reader;
}

common::Result<std::unique_ptr<SnapshotReader>>
SnapshotReader::OpenFromBuffer(std::vector<uint8_t> buffer) {
  std::unique_ptr<SnapshotReader> reader(new SnapshotReader());
  const size_t image_bytes = buffer.size();
  // Section offsets are kSnapshotAlignment-aligned *within the image*;
  // for TypedSection's reinterpretation to be aligned in memory the image
  // base must be too. A vector only guarantees max_align_t (typically
  // 16), so re-land the bytes at an aligned base when the allocator
  // hands us less — mmap-backed opens are page-aligned and never copy.
  const uintptr_t base = reinterpret_cast<uintptr_t>(buffer.data());
  if (base % kSnapshotAlignment != 0) {
    std::vector<uint8_t> aligned(image_bytes + kSnapshotAlignment);
    const uintptr_t raw = reinterpret_cast<uintptr_t>(aligned.data());
    const size_t shift =
        (kSnapshotAlignment - raw % kSnapshotAlignment) % kSnapshotAlignment;
    std::memcpy(aligned.data() + shift, buffer.data(), image_bytes);
    reader->heap_ = std::move(aligned);
    reader->data_ = reader->heap_.data() + shift;
  } else {
    reader->heap_ = std::move(buffer);
    reader->data_ = reader->heap_.data();
  }
  reader->size_ = image_bytes;
  auto status = reader->Validate();
  if (!status.ok()) return status;
  return reader;
}

common::Status SnapshotReader::Validate() {
  if (size_ < kHeaderBytes) return Corrupt("shorter than the header");
  if (std::memcmp(data_, kMagic, sizeof(kMagic)) != 0) {
    return Corrupt("bad magic (not a snapshot file)");
  }
  if (GetU32(data_ + 60) != Crc32(data_, 60)) {
    return Corrupt("header checksum mismatch");
  }
  format_version_ = GetU32(data_ + 8);
  if (format_version_ != kSnapshotFormatVersion) {
    return Corrupt("unsupported format version " +
                   std::to_string(format_version_) + " (expected " +
                   std::to_string(kSnapshotFormatVersion) + ")");
  }
  const uint32_t count = GetU32(data_ + 12);
  const uint64_t file_bytes = GetU64(data_ + 16);
  const uint64_t table_offset = GetU64(data_ + 24);
  if (file_bytes != size_) {
    return Corrupt("file size " + std::to_string(size_) +
                   " does not match recorded size " +
                   std::to_string(file_bytes) + " (truncated?)");
  }
  const uint64_t table_bytes = static_cast<uint64_t>(count) * kEntryBytes;
  if (table_offset < kHeaderBytes || table_offset > size_ ||
      table_bytes > size_ - table_offset) {
    return Corrupt("section table out of bounds");
  }
  if (GetU32(data_ + 32) != Crc32(data_ + table_offset, table_bytes)) {
    return Corrupt("section table checksum mismatch");
  }

  // Parse + validate every entry.
  sections_.clear();
  names_.clear();
  for (uint32_t i = 0; i < count; ++i) {
    const uint8_t* e = data_ + table_offset + i * kEntryBytes;
    SectionEntry entry;
    // Name: NUL-terminated within 24 bytes, zero-padded after.
    size_t len = 0;
    while (len < kNameBytes && e[len] != 0) ++len;
    if (len == 0 || len > kSnapshotMaxNameLength) {
      return Corrupt("section " + std::to_string(i) + " has a bad name");
    }
    for (size_t j = len; j < kNameBytes; ++j) {
      if (e[j] != 0) {
        return Corrupt("section " + std::to_string(i) +
                       " has garbage after its name");
      }
    }
    entry.name.assign(reinterpret_cast<const char*>(e), len);
    entry.offset = GetU64(e + kNameBytes);
    entry.size = GetU64(e + kNameBytes + 8);
    entry.crc = GetU32(e + kNameBytes + 16);
    if (GetU32(e + kNameBytes + 20) != 0) {
      return Corrupt("section '" + entry.name +
                     "' has a nonzero reserved field");
    }
    if (entry.offset % kSnapshotAlignment != 0) {
      return Corrupt("section '" + entry.name + "' is misaligned");
    }
    if (entry.offset > size_ || entry.size > size_ - entry.offset) {
      return Corrupt("section '" + entry.name + "' out of bounds");
    }
    if (Crc32(data_ + entry.offset, entry.size) != entry.crc) {
      return Corrupt("section '" + entry.name + "' checksum mismatch");
    }
    for (const auto& prev : sections_) {
      if (prev.name == entry.name) {
        return Corrupt("duplicate section '" + entry.name + "'");
      }
    }
    names_.push_back(entry.name);
    sections_.push_back(std::move(entry));
  }

  // Every byte outside header/table/sections is padding and must be zero
  // — otherwise a flip in a gap would escape every checksum.
  std::vector<std::pair<uint64_t, uint64_t>> covered;
  covered.emplace_back(0, kHeaderBytes);
  covered.emplace_back(table_offset, table_offset + table_bytes);
  for (const auto& s : sections_) {
    if (s.size > 0) covered.emplace_back(s.offset, s.offset + s.size);
  }
  std::sort(covered.begin(), covered.end());
  uint64_t cursor = 0;
  for (const auto& [lo, hi] : covered) {
    if (lo < cursor) return Corrupt("overlapping regions");
    for (uint64_t b = cursor; b < lo; ++b) {
      if (data_[b] != 0) {
        return Corrupt("nonzero padding byte at offset " + std::to_string(b));
      }
    }
    cursor = std::max(cursor, hi);
  }
  for (uint64_t b = cursor; b < size_; ++b) {
    if (data_[b] != 0) {
      return Corrupt("nonzero trailing byte at offset " + std::to_string(b));
    }
  }
  return common::Status::OK();
}

bool SnapshotReader::HasSection(const std::string& name) const {
  for (const auto& s : sections_) {
    if (s.name == name) return true;
  }
  return false;
}

common::Result<Span<uint8_t>> SnapshotReader::Section(
    const std::string& name) const {
  for (const auto& s : sections_) {
    if (s.name == name) return Span<uint8_t>(data_ + s.offset, s.size);
  }
  return common::Status::NotFound("snapshot has no section '" + name + "'");
}

size_t SnapshotReader::SectionBytes(const std::string& name) const {
  for (const auto& s : sections_) {
    if (s.name == name) return s.size;
  }
  return 0;
}

uint32_t SnapshotReader::SectionCrc(const std::string& name) const {
  for (const auto& s : sections_) {
    if (s.name == name) return s.crc;
  }
  return 0;
}

}  // namespace fcm::storage
