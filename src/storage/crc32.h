// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the per-section
// integrity check of the snapshot format. Table-driven, byte-at-a-time;
// snapshot validation is a one-time open cost, so simplicity wins over a
// slicing-by-8 variant.

#ifndef FCM_STORAGE_CRC32_H_
#define FCM_STORAGE_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace fcm::storage {

/// CRC-32 of `n` bytes. `seed` chains partial computations:
/// Crc32(ab) == Crc32(b, n_b, Crc32(a, n_a)).
uint32_t Crc32(const void* data, size_t n, uint32_t seed = 0);

}  // namespace fcm::storage

#endif  // FCM_STORAGE_CRC32_H_
