// Non-owning read-only view over a contiguous typed block — the access
// primitive of the frozen storage layer. A Span can sit on top of a
// heap-built std::vector (the build-then-Freeze lifecycle) or straight on
// an mmap'ed snapshot section; the query code consuming it cannot tell the
// difference, which is what makes zero-copy serving possible.
//
// C++17 substrate (std::span is C++20), read-only by design: frozen
// structures are immutable, so there is no mutable variant.

#ifndef FCM_STORAGE_SPAN_H_
#define FCM_STORAGE_SPAN_H_

#include <cstddef>
#include <vector>

#include "common/check.h"

namespace fcm::storage {

template <typename T>
class Span {
 public:
  constexpr Span() = default;
  constexpr Span(const T* data, size_t size) : data_(data), size_(size) {}
  /// Views a vector's contents; the vector must outlive the span.
  Span(const std::vector<T>& v)  // NOLINT: implicit by design.
      : data_(v.data()), size_(v.size()) {}

  const T* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  const T& operator[](size_t i) const {
    FCM_CHECK_LT(i, size_);
    return data_[i];
  }
  const T& front() const { return (*this)[0]; }
  const T& back() const { return (*this)[size_ - 1]; }

  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }

  Span subspan(size_t offset, size_t count) const {
    FCM_CHECK_LE(offset, size_);
    FCM_CHECK_LE(count, size_ - offset);
    return Span(data_ + offset, count);
  }

  /// Materializes an owning copy (used when a consumer genuinely needs
  /// mutable or outliving storage, e.g. tensor construction at open).
  std::vector<T> ToVector() const { return std::vector<T>(begin(), end()); }

 private:
  const T* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace fcm::storage

#endif  // FCM_STORAGE_SPAN_H_
