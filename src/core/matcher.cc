#include "core/matcher.h"

#include <cmath>

#include "nn/ops.h"

namespace fcm::core {

namespace {

// L2-normalizes each row of a rank-2 tensor (cosine-space projection).
nn::Tensor NormalizeRows(const nn::Tensor& x) {
  const int n = x.dim(0);
  std::vector<nn::Tensor> rows;
  rows.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    const nn::Tensor row = nn::Row(x, i);
    const nn::Tensor inv_norm = nn::Rsqrt(nn::DotProduct(row, row));
    std::vector<nn::Tensor> reps(static_cast<size_t>(x.dim(1)), inv_norm);
    rows.push_back(nn::Mul(row, nn::ConcatVec(reps)));
  }
  return nn::StackRows(rows);
}

// Similarity of two per-point shape descriptors in [0, 1]:
// 1 - mean absolute difference (both live in [0, 1]).
float DescriptorSimilarity(const float* a, const float* b, int n) {
  float diff = 0.0f;
  for (int i = 0; i < n; ++i) diff += std::fabs(a[i] - b[i]);
  return 1.0f - diff / static_cast<float>(n);
}

// Fine-grained descriptor match between a line and a column: each line
// segment finds its best column segment and vice versa (the symmetric
// mean-of-best is robust to partial matches like Example 1 in the
// paper, where only three quarters of a line align with a column).
float LineColumnDescriptorScore(const std::vector<float>& line_desc,
                                const std::vector<float>& col_desc,
                                int s_points) {
  const int n1 = static_cast<int>(line_desc.size()) / s_points;
  const int n2 = static_cast<int>(col_desc.size()) / s_points;
  if (n1 == 0 || n2 == 0) return 0.0f;
  float line_side = 0.0f;
  std::vector<float> col_best(static_cast<size_t>(n2), 0.0f);
  for (int j = 0; j < n1; ++j) {
    float best = 0.0f;
    for (int n = 0; n < n2; ++n) {
      const float sim = DescriptorSimilarity(
          line_desc.data() + static_cast<size_t>(j) * s_points,
          col_desc.data() + static_cast<size_t>(n) * s_points, s_points);
      best = std::max(best, sim);
      col_best[static_cast<size_t>(n)] =
          std::max(col_best[static_cast<size_t>(n)], sim);
    }
    line_side += best;
  }
  line_side /= static_cast<float>(n1);
  float col_side = 0.0f;
  for (float v : col_best) col_side += v;
  col_side /= static_cast<float>(n2);
  return 0.5f * (line_side + col_side);
}

// Best descriptor match between a line and a column over the raw
// descriptor and (for DA-enabled configs) its aggregated-shape variants.
float BestLineColumnDescriptorScore(const std::vector<float>& line_desc,
                                    const ColumnEncoding& col,
                                    int s_points) {
  float best =
      LineColumnDescriptorScore(line_desc, col.descriptor, s_points);
  for (const auto& variant : col.da_descriptors) {
    best = std::max(best,
                    LineColumnDescriptorScore(line_desc, variant, s_points));
  }
  return best;
}

}  // namespace

CrossModalMatcher::CrossModalMatcher(const FcmConfig& config,
                                     common::Rng* rng)
    : config_(config),
      sl_query_(config.embed_dim, config.embed_dim, rng),
      sl_key_(config.embed_dim, config.embed_dim, rng),
      sl_value_(config.embed_dim, config.embed_dim, rng),
      sl_line_out_(2 * config.embed_dim, config.embed_dim, rng),
      sl_col_out_(2 * config.embed_dim, config.embed_dim, rng),
      ll_query_(config.embed_dim, config.embed_dim, rng),
      ll_key_(config.embed_dim, config.embed_dim, rng),
      head_(config.use_hcman ? 3 * config.embed_dim + 7
                             : 2 * config.embed_dim,
            config.matcher_hidden, 1, rng, nn::Activation::kGelu) {
  descriptor_gate_ = RegisterParameter(
      "descriptor_gate",
      nn::Tensor::Full({1}, 2.0f, /*requires_grad=*/true));
  descriptor_logit_weight_ = RegisterParameter(
      "descriptor_logit_weight",
      nn::Tensor::Full({2}, 10.0f, /*requires_grad=*/true));
  RegisterModule("sl_query", &sl_query_);
  RegisterModule("sl_key", &sl_key_);
  RegisterModule("sl_value", &sl_value_);
  RegisterModule("sl_line_out", &sl_line_out_);
  RegisterModule("sl_col_out", &sl_col_out_);
  RegisterModule("ll_query", &ll_query_);
  RegisterModule("ll_key", &ll_key_);
  RegisterModule("head", &head_);
  // Zero-init the head's output layer: at initialization the relevance
  // logit equals the descriptor shortcut alone, so the model *starts* at
  // descriptor-bridge ranking quality (which already separates relevant
  // from background tables) and training adjusts around that operating
  // point instead of having to fight random head noise.
  head_.ZeroOutputLayer();
}

nn::Tensor CrossModalMatcher::ForwardLogit(
    const ChartRepresentation& chart_rep,
    const std::vector<const ColumnEncoding*>& columns) const {
  FCM_CHECK(!chart_rep.empty());
  FCM_CHECK(!columns.empty());
  return config_.use_hcman ? HcmanLogit(chart_rep, columns)
                           : MeanPoolLogit(chart_rep, columns);
}

double CrossModalMatcher::DescriptorOnlyScore(
    const ChartRepresentation& chart_rep,
    const std::vector<const ColumnEncoding*>& columns) const {
  const int m_lines = static_cast<int>(chart_rep.size());
  const int n_cols = static_cast<int>(columns.size());
  if (m_lines == 0 || n_cols == 0) return 0.0;
  std::vector<float> line_best(static_cast<size_t>(m_lines), 0.0f);
  std::vector<float> col_best(static_cast<size_t>(n_cols), 0.0f);
  for (int i = 0; i < m_lines; ++i) {
    for (int m = 0; m < n_cols; ++m) {
      const float s = BestLineColumnDescriptorScore(
          chart_rep[static_cast<size_t>(i)].descriptor,
          *columns[static_cast<size_t>(m)], config_.descriptor_size);
      line_best[static_cast<size_t>(i)] =
          std::max(line_best[static_cast<size_t>(i)], s);
      col_best[static_cast<size_t>(m)] =
          std::max(col_best[static_cast<size_t>(m)], s);
    }
  }
  double line_side = 0.0, col_side = 0.0;
  for (float v : line_best) line_side += v;
  for (float v : col_best) col_side += v;
  return 0.5 * (line_side / m_lines + col_side / n_cols);
}

nn::Tensor CrossModalMatcher::HcmanLogit(
    const ChartRepresentation& chart_rep,
    const std::vector<const ColumnEncoding*>& columns) const {
  const float scale =
      1.0f / std::sqrt(static_cast<float>(config_.embed_dim));

  // All data segments of all candidate columns, stacked: [NC*N2, K].
  std::vector<nn::Tensor> col_parts;
  col_parts.reserve(columns.size());
  for (const auto* col : columns) col_parts.push_back(col->representation);
  const nn::Tensor all_data_segments = nn::ConcatRows(col_parts);
  const nn::Tensor data_keys = sl_key_.Forward(all_data_segments);
  const nn::Tensor data_values = sl_value_.Forward(all_data_segments);

  // ---- SL-SAN: line side ----
  // For each line, segment relevance = max similarity to any data segment;
  // the line vector is the relevance-weighted sum of its own segments
  // (paper: "reconstructed using the relevance-weighted sum of all the
  // corresponding line segments") concatenated with the attention context
  // from the data segments.
  std::vector<nn::Tensor> line_vectors;
  line_vectors.reserve(chart_rep.size());
  for (const auto& line : chart_rep) {
    const nn::Tensor& ev = line.representation;                  // [N1, K]
    const nn::Tensor q = sl_query_.Forward(ev);                  // [N1, K]
    const nn::Tensor scores =
        nn::Scale(nn::MatMul(q, nn::Transpose(data_keys)), scale);
    const nn::Tensor seg_rel = nn::MaxCols(scores);              // [N1]
    const nn::Tensor weights =
        nn::Reshape(nn::Softmax(seg_rel), {1, ev.dim(0)});       // [1, N1]
    const nn::Tensor self_recon =
        nn::Reshape(nn::MatMul(weights, ev), {config_.embed_dim});
    const nn::Tensor context =
        nn::MeanRows(nn::MatMul(nn::Softmax(scores), data_values));
    line_vectors.push_back(
        sl_line_out_.Forward(nn::ConcatVec({self_recon, context})));
  }
  const nn::Tensor lines = nn::StackRows(line_vectors);  // [M, K]

  // ---- SL-SAN: column side (symmetric) ----
  std::vector<nn::Tensor> chart_parts;
  chart_parts.reserve(chart_rep.size());
  for (const auto& line : chart_rep) {
    chart_parts.push_back(line.representation);
  }
  const nn::Tensor all_line_segments = nn::ConcatRows(chart_parts);
  const nn::Tensor line_keys = sl_key_.Forward(all_line_segments);
  const nn::Tensor line_values = sl_value_.Forward(all_line_segments);

  std::vector<nn::Tensor> column_vectors;
  column_vectors.reserve(columns.size());
  for (const auto* col : columns) {
    const nn::Tensor et = col->representation;  // [N2, K]
    const nn::Tensor q = sl_query_.Forward(et);
    const nn::Tensor scores =
        nn::Scale(nn::MatMul(q, nn::Transpose(line_keys)), scale);
    const nn::Tensor seg_rel = nn::MaxCols(scores);
    const nn::Tensor weights =
        nn::Reshape(nn::Softmax(seg_rel), {1, et.dim(0)});
    const nn::Tensor self_recon =
        nn::Reshape(nn::MatMul(weights, et), {config_.embed_dim});
    const nn::Tensor context =
        nn::MeanRows(nn::MatMul(nn::Softmax(scores), line_values));
    column_vectors.push_back(
        sl_col_out_.Forward(nn::ConcatVec({self_recon, context})));
  }
  const nn::Tensor cols = nn::StackRows(column_vectors);  // [NC, K]

  // ---- Deterministic descriptor similarity between every line and
  // every candidate column (modality bridge; constant w.r.t. autograd).
  const int m_lines = static_cast<int>(chart_rep.size());
  const int n_cols = static_cast<int>(columns.size());
  std::vector<float> sd(static_cast<size_t>(m_lines) * n_cols);
  for (int i = 0; i < m_lines; ++i) {
    for (int m = 0; m < n_cols; ++m) {
      sd[static_cast<size_t>(i) * n_cols + m] =
          BestLineColumnDescriptorScore(
              chart_rep[static_cast<size_t>(i)].descriptor,
              *columns[static_cast<size_t>(m)], config_.descriptor_size);
    }
  }
  const nn::Tensor sd_matrix =
      nn::Tensor::FromVector({m_lines, n_cols}, sd);

  // ---- LL-SAN: line-to-column matching; the attention logits combine
  // the learned projection similarity with the gated descriptor
  // similarity.
  const nn::Tensor learned_s2 = nn::Scale(
      nn::MatMul(ll_query_.Forward(lines),
                 nn::Transpose(ll_key_.Forward(cols))),
      scale);  // [M, NC]
  const nn::Tensor gated_sd = nn::Reshape(
      nn::MatMul(nn::Reshape(sd_matrix, {m_lines * n_cols, 1}),
                 nn::Reshape(descriptor_gate_, {1, 1})),
      {m_lines, n_cols});
  const nn::Tensor s2 = nn::Add(learned_s2, gated_sd);
  // Chart vector: lines weighted by their best-matching column.
  const nn::Tensor line_best = nn::MaxCols(s2);  // [M]
  const nn::Tensor line_weights =
      nn::Reshape(nn::Softmax(line_best), {1, lines.dim(0)});
  const nn::Tensor chart_vec =
      nn::Reshape(nn::MatMul(line_weights, lines), {config_.embed_dim});
  // Dataset vector: columns weighted by their best-matching line.
  const nn::Tensor col_best = nn::MaxCols(nn::Transpose(s2));  // [NC]
  const nn::Tensor col_weights =
      nn::Reshape(nn::Softmax(col_best), {1, cols.dim(0)});
  const nn::Tensor dataset_vec =
      nn::Reshape(nn::MatMul(col_weights, cols), {config_.embed_dim});

  // Encoder-space alignment statistics. The (pretrained) encoders place
  // matching shapes close in cosine space; these features expose that
  // alignment to the head directly, before any matcher projection mixes
  // it: per-line best column cosine, per-column best line cosine, and the
  // pooled chart/dataset cosine.
  std::vector<nn::Tensor> raw_line_means, raw_col_means;
  for (const auto& line : chart_rep) {
    raw_line_means.push_back(nn::MeanRows(line.representation));
  }
  for (const auto* col : columns) {
    raw_col_means.push_back(nn::MeanRows(col->representation));
  }
  const nn::Tensor raw_lines =
      NormalizeRows(nn::StackRows(raw_line_means));  // [M, K]
  const nn::Tensor raw_cols =
      NormalizeRows(nn::StackRows(raw_col_means));   // [NC, K]
  const nn::Tensor raw_sim = nn::MatMul(raw_lines, nn::Transpose(raw_cols));
  const nn::Tensor line_raw_best = nn::MeanAll(nn::MaxCols(raw_sim));
  const nn::Tensor col_raw_best =
      nn::MeanAll(nn::MaxCols(nn::Transpose(raw_sim)));
  const nn::Tensor pooled_cos = nn::MeanAll(raw_sim);

  // Relevance head features: both pooled vectors, their elementwise
  // product (a direct vector-similarity signal the MLP would otherwise
  // have to discover), the mean best-match scores from each side of
  // LL-SAN — "every line found a column" and "every matched column found
  // a line" are near-linear indicators of Rel(D, T) — and the raw
  // encoder-space alignment statistics above.
  const nn::Tensor interaction = nn::Mul(chart_vec, dataset_vec);
  const nn::Tensor mean_line_best = nn::MeanAll(line_best);
  const nn::Tensor mean_col_best = nn::MeanAll(col_best);
  // Descriptor-similarity stats: how well every line found a matching
  // column (and vice versa) on raw shape alone. Centered near the
  // typical unrelated-pair level so the logit shortcut does not saturate.
  const nn::Tensor desc_line_best = nn::AddScalar(
      nn::MeanAll(nn::MaxCols(sd_matrix)), -0.8f);
  const nn::Tensor desc_col_best = nn::AddScalar(
      nn::MeanAll(nn::MaxCols(nn::Transpose(sd_matrix))), -0.8f);
  const nn::Tensor desc_stats =
      nn::ConcatVec({desc_line_best, desc_col_best});
  const nn::Tensor head_logit = nn::Reshape(
      head_.Forward(nn::ConcatVec({chart_vec, dataset_vec, interaction,
                                   mean_line_best, mean_col_best,
                                   line_raw_best, col_raw_best, pooled_cos,
                                   desc_line_best, desc_col_best})),
      {1});
  return nn::Add(head_logit,
                 nn::DotProduct(descriptor_logit_weight_, desc_stats));
}

nn::Tensor CrossModalMatcher::MeanPoolLogit(
    const ChartRepresentation& chart_rep,
    const std::vector<const ColumnEncoding*>& columns) const {
  // FCM-HCMAN ablation: average line segment embeddings per line, then
  // across lines; same on the dataset side; concat + MLP. No descriptor
  // bridge either — the ablation removes all fine-grained matching.
  std::vector<nn::Tensor> line_means;
  for (const auto& line : chart_rep) {
    line_means.push_back(nn::MeanRows(line.representation));
  }
  const nn::Tensor chart_vec = nn::MeanRows(nn::StackRows(line_means));

  std::vector<nn::Tensor> col_means;
  for (const auto* col : columns) {
    col_means.push_back(nn::MeanRows(col->representation));
  }
  const nn::Tensor dataset_vec = nn::MeanRows(nn::StackRows(col_means));

  return nn::Reshape(
      head_.Forward(nn::ConcatVec({chart_vec, dataset_vec})), {1});
}

}  // namespace fcm::core
