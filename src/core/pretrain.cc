#include "core/pretrain.h"

#include <cmath>

#include "chart/renderer.h"
#include "common/rng.h"
#include "table/data_series.h"
#include "vision/classical_extractor.h"
#include "vision/mask_oracle_extractor.h"

namespace fcm::core {

namespace {

// A small local family of series shapes (kept independent of benchgen to
// avoid a dependency cycle; pretraining supervision only needs variety,
// not realism).
std::vector<double> RandomShape(common::Rng* rng, size_t n) {
  std::vector<double> v(n);
  const double scale = std::exp(rng->Uniform(-0.5, 3.0));
  const double offset = rng->Normal(0.0, scale);
  switch (rng->UniformInt(4)) {
    case 0: {  // Random walk.
      double x = 0.0;
      for (auto& y : v) {
        x += rng->Normal(0.0, 1.0);
        y = x;
      }
      break;
    }
    case 1: {  // Trend + wave.
      const double slope = rng->Uniform(-0.05, 0.05);
      const double freq =
          rng->Uniform(1.0, 5.0) * 2.0 * M_PI / static_cast<double>(n);
      const double phase = rng->Uniform(0.0, 2.0 * M_PI);
      for (size_t i = 0; i < n; ++i) {
        v[i] = slope * static_cast<double>(i) +
               std::sin(freq * static_cast<double>(i) + phase);
      }
      break;
    }
    case 2: {  // Steps.
      double level = 0.0;
      for (size_t i = 0; i < n; ++i) {
        if (i % (n / 5 + 1) == 0) level += rng->Normal(0.0, 1.0);
        v[i] = level;
      }
      break;
    }
    default: {  // Damped oscillation.
      const double freq =
          rng->Uniform(2.0, 8.0) * 2.0 * M_PI / static_cast<double>(n);
      for (size_t i = 0; i < n; ++i) {
        v[i] = std::exp(-2.0 * static_cast<double>(i) /
                        static_cast<double>(n)) *
               std::cos(freq * static_cast<double>(i));
      }
    }
  }
  for (auto& y : v) y = offset + scale * y;
  return v;
}

}  // namespace

std::vector<AlignmentPair> MakeAlignmentPairs(int n, uint64_t seed) {
  common::Rng rng(seed);
  vision::ClassicalExtractor extractor;
  vision::MaskOracleExtractor oracle;
  std::vector<AlignmentPair> pairs;
  pairs.reserve(static_cast<size_t>(n));
  while (static_cast<int>(pairs.size()) < n) {
    const size_t len = 80 + rng.UniformInt(160);
    AlignmentPair pair;
    pair.column = RandomShape(&rng, len);
    table::DataSeries series;
    series.y = pair.column;
    const auto rendered = chart::RenderLineChart({series});
    auto extracted = extractor.Extract(rendered);
    if (!extracted.ok()) extracted = oracle.Extract(rendered);
    if (!extracted.ok()) continue;
    pair.chart = std::move(extracted).ValueOrDie();
    pairs.push_back(std::move(pair));
  }
  return pairs;
}

}  // namespace fcm::core
