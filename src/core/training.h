// Cross-modal relevance training (paper Sec. IV-E + Appendix B):
// negative-log-likelihood loss (Eq. 2) over positive triplets and
// per-anchor negatives selected inside each mini-batch by the configured
// strategy (semi-hard by default).

#ifndef FCM_CORE_TRAINING_H_
#define FCM_CORE_TRAINING_H_

#include <functional>
#include <vector>

#include "core/fcm_model.h"
#include "relevance/relevance.h"
#include "table/data_lake.h"
#include "table/data_series.h"
#include "vision/extracted_chart.h"

namespace fcm::core {

/// One training triplet (V_i, D_i, T_i) per Def. 2: the extracted chart,
/// its underlying data (available at training time), and the source table.
struct TrainingTriplet {
  vision::ExtractedChart chart;
  table::UnderlyingData underlying;
  table::TableId table_id = table::kInvalidTableId;
};

/// Negative-example selection strategies (Appendix E).
enum class NegativeStrategy { kSemiHard, kRandom, kHard, kEasy };

const char* NegativeStrategyName(NegativeStrategy s);

/// Training objective.
///  * kBinaryCrossEntropy — the paper's Eq. 2: absolute 0/1 targets per
///    (chart, table) pair.
///  * kPairwiseRanking — logistic ranking loss on (positive, negative)
///    logit pairs: BCE(pos_logit - neg_logit, 1). This is the default at
///    this reproduction's CPU scale: with ~10^2 triplets, Eq. 2's absolute
///    0-target on *semi-hard* (genuinely similar) negatives is noisy
///    enough to erase the ranking signal prec@k measures, while the
///    pairwise form optimizes exactly the ordering Def. 2's
///    |Rel'(V,T) - Rel(D,T)| objective induces. At the paper's data scale
///    the two coincide in ranking terms (see DESIGN.md Sec. 2.1).
enum class LossType { kBinaryCrossEntropy, kPairwiseRanking };

const char* LossTypeName(LossType t);

/// Trainer options; model-architecture options live in FcmConfig.
struct TrainOptions {
  int epochs = 30;
  int batch_size = 8;
  int num_negatives = 3;  // N^-.
  float learning_rate = 1e-3f;
  /// Decoupled (AdamW) weight decay; regularizes the small-data regime.
  float weight_decay = 1e-4f;
  NegativeStrategy strategy = NegativeStrategy::kSemiHard;
  LossType loss = LossType::kPairwiseRanking;
  double grad_clip_norm = 5.0;
  uint64_t seed = 123;
  /// On-the-fly positive augmentation: with this probability, each anchor
  /// also trains against a noisy copy of its table (multiplicative
  /// U(1-amp, 1+amp) noise — the same perturbation the benchmark's
  /// ground-truth near-duplicates use), teaching the noise invariance the
  /// relevance definition implies.
  double noisy_positive_prob = 0.5;
  double noisy_positive_amplitude = 0.1;
  /// Cross-modal contrastive pretraining of the encoders before
  /// relevance training (the paper starts from pretrained ViT/TURL
  /// encoders; this is the scale-appropriate equivalent — see
  /// core/pretrain.h). 0 disables.
  int pretrain_pairs = 288;
  int pretrain_epochs = 8;
  /// Called after each epoch with (epoch index, mean epoch loss); return
  /// false to stop early (used by the convergence study, Fig. 5).
  std::function<bool(int, double)> epoch_callback;
  /// Fraction of triplets held out for validation-based early stopping
  /// (0 disables). After each epoch the mean reciprocal rank of each
  /// held-out anchor's own table (among all training tables) is measured;
  /// when it stops improving for `early_stop_patience` epochs, training
  /// stops and the best-validation parameters are restored. At this
  /// reproduction's scale (10^2 triplets vs. the paper's ~6000) the model
  /// otherwise overfits within a few epochs and the learned ranking decays
  /// (see DESIGN.md Sec. 2.1).
  double validation_fraction = 0.25;
  int early_stop_patience = 2;
  /// Epochs always run before early stopping may trigger.
  int min_epochs = 3;
};

/// Per-epoch training statistics.
struct TrainStats {
  std::vector<double> epoch_losses;
  /// Validation MRR per epoch (empty when validation is disabled).
  std::vector<double> val_mrr;
  /// Epoch whose parameters were restored (-1 = last epoch, no restore).
  int best_epoch = -1;
  int pairs_trained = 0;
};

/// Trains `model` in place on `triplets`; negatives are drawn from the
/// other triplets' tables within each mini-batch ranked by the
/// ground-truth Rel(D, T) (Sec. III-A).
TrainStats TrainFcm(FcmModel* model, const table::DataLake& lake,
                    const std::vector<TrainingTriplet>& triplets,
                    const TrainOptions& options);

namespace internal {

/// Model-agnostic mini-batch trainer shared by FCM and the learned
/// baselines. `Model` must provide EncodeChart / EncodeDataset /
/// ScoreLogit(chart_rep, dataset_rep, y_lo, y_hi) / Parameters().
template <typename Model>
TrainStats TrainRelevanceModel(Model* model, const table::DataLake& lake,
                               const std::vector<TrainingTriplet>& triplets,
                               const TrainOptions& options);

/// Selects negative table ids for one anchor from candidates ranked by
/// ground-truth relevance (descending). Exposed for unit testing.
std::vector<table::TableId> SelectNegatives(
    const std::vector<std::pair<double, table::TableId>>& ranked,
    NegativeStrategy strategy, int num_negatives, common::Rng* rng);

}  // namespace internal

}  // namespace fcm::core

#include "core/training_impl.h"  // IWYU pragma: keep (template definition)

#endif  // FCM_CORE_TRAINING_H_
