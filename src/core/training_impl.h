// Template definition for internal::TrainRelevanceModel — included at the
// bottom of training.h; do not include directly.

#ifndef FCM_CORE_TRAINING_IMPL_H_
#define FCM_CORE_TRAINING_IMPL_H_

#include <algorithm>
#include <map>
#include <numeric>
#include <utility>

#include "common/logging.h"
#include "core/pretrain.h"
#include "core/training.h"
#include "nn/optimizer.h"
#include "nn/ops.h"
#include "table/noise.h"

namespace fcm::core::internal {

template <typename Model>
TrainStats TrainRelevanceModel(Model* model, const table::DataLake& lake,
                               const std::vector<TrainingTriplet>& triplets,
                               const TrainOptions& options) {
  TrainStats stats;
  if (triplets.empty()) return stats;

  common::Rng rng(options.seed);

  if (options.pretrain_pairs > 0) {
    PretrainOptions pretrain_options;
    pretrain_options.num_pairs = options.pretrain_pairs;
    pretrain_options.epochs = options.pretrain_epochs;
    pretrain_options.seed = options.seed ^ 0xa5a5a5a5ULL;
    const auto pairs = MakeAlignmentPairs(pretrain_options.num_pairs,
                                          pretrain_options.seed);
    PretrainEncoders(model, pairs, pretrain_options);
  }

  nn::Adam optimizer(model->Parameters(), options.learning_rate,
                     /*beta1=*/0.9f, /*beta2=*/0.999f, /*epsilon=*/1e-8f,
                     options.weight_decay);

  // Ground-truth relevance between an anchor's underlying data and a
  // candidate table, cached across epochs (labels do not change).
  std::map<std::pair<size_t, table::TableId>, double> rel_cache;
  rel::RelevanceOptions rel_options;
  rel_options.dtw.band_fraction = 0.2;  // Banded DTW for label speed.
  auto ground_truth = [&](size_t anchor, table::TableId tid) {
    const auto key = std::make_pair(anchor, tid);
    auto it = rel_cache.find(key);
    if (it != rel_cache.end()) return it->second;
    const double r = rel::Relevance(triplets[anchor].underlying,
                                    lake.Get(tid), rel_options);
    rel_cache.emplace(key, r);
    return r;
  };

  // Validation split for early stopping: hold out anchors (not tables, so
  // the validation measures chart->table generalization on unseen charts).
  std::vector<size_t> order(triplets.size());
  std::iota(order.begin(), order.end(), 0);
  std::vector<size_t> val_anchors;
  const bool use_validation =
      options.validation_fraction > 0.0 && triplets.size() >= 8;
  if (use_validation) {
    rng.Shuffle(&order);
    const size_t val_count = std::max<size_t>(
        2, static_cast<size_t>(options.validation_fraction *
                               static_cast<double>(order.size())));
    val_anchors.assign(order.end() - static_cast<long>(val_count),
                       order.end());
    order.resize(order.size() - val_count);
  }

  // Distinct training tables, used as the validation ranking pool.
  std::vector<table::TableId> pool;
  for (const auto& t : triplets) {
    if (std::find(pool.begin(), pool.end(), t.table_id) == pool.end()) {
      pool.push_back(t.table_id);
    }
  }

  // Mean reciprocal rank of each validation anchor's own table.
  auto validation_mrr = [&]() {
    std::map<table::TableId, decltype(FcmModel::Detach(
                                 model->EncodeDataset(lake.Get(0))))>
        reps;
    for (const auto tid : pool) {
      reps.emplace(tid, FcmModel::Detach(model->EncodeDataset(lake.Get(tid))));
    }
    double mrr = 0.0;
    int n = 0;
    for (const size_t anchor : val_anchors) {
      const auto& triplet = triplets[anchor];
      if (triplet.chart.lines.empty()) continue;
      const auto chart_rep =
          FcmModel::Detach(model->EncodeChart(triplet.chart));
      const double own = model->ScoreEncoded(
          chart_rep, reps.at(triplet.table_id), triplet.chart.y_lo,
          triplet.chart.y_hi);
      int rank = 1;
      for (const auto tid : pool) {
        if (tid == triplet.table_id) continue;
        if (model->ScoreEncoded(chart_rep, reps.at(tid), triplet.chart.y_lo,
                                triplet.chart.y_hi) > own) {
          ++rank;
        }
      }
      mrr += 1.0 / static_cast<double>(rank);
      ++n;
    }
    return n > 0 ? mrr / n : 0.0;
  };

  std::vector<uint8_t> best_state;
  double best_mrr = -1.0;
  int stale_epochs = 0;
  if (use_validation) {
    // The pre-training state (descriptor-calibrated via the zero-init
    // head) is itself a candidate: relevance training must beat it on
    // validation MRR or be rolled back entirely.
    best_mrr = validation_mrr();
    stats.best_epoch = -1;
    common::BinaryWriter writer;
    model->SaveState(&writer);
    best_state = writer.buffer();
    FCM_LOGS(INFO) << "initial val MRR " << best_mrr;
  }

  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    rng.Shuffle(&order);
    double epoch_loss = 0.0;
    int batches = 0;
    for (size_t start = 0; start < order.size();
         start += static_cast<size_t>(options.batch_size)) {
      const size_t end = std::min(
          order.size(), start + static_cast<size_t>(options.batch_size));
      if (end - start < 2) continue;  // Need in-batch negatives.

      // Encode each distinct table in the batch once (parameters are
      // frozen within a step).
      std::map<table::TableId, decltype(model->EncodeDataset(
                                   lake.Get(0)))> table_reps;
      for (size_t i = start; i < end; ++i) {
        const auto tid = triplets[order[i]].table_id;
        if (!table_reps.count(tid)) {
          table_reps.emplace(tid, model->EncodeDataset(lake.Get(tid)));
        }
      }

      nn::Tensor pos_loss, neg_loss, pair_loss;
      int num_pos = 0, num_neg = 0, num_pairs = 0;
      for (size_t i = start; i < end; ++i) {
        const size_t anchor = order[i];
        const auto& triplet = triplets[anchor];
        if (triplet.chart.lines.empty()) continue;
        const auto chart_rep = model->EncodeChart(triplet.chart);

        // Positive logits: the source table and (with some probability) a
        // noisy near-duplicate of it (see TrainOptions).
        std::vector<nn::Tensor> pos_logits;
        pos_logits.push_back(
            model->ScoreLogit(chart_rep, table_reps.at(triplet.table_id),
                              triplet.chart.y_lo, triplet.chart.y_hi));
        if (options.noisy_positive_prob > 0.0 &&
            rng.Bernoulli(options.noisy_positive_prob)) {
          const table::Table noisy = table::InjectMultiplicativeNoise(
              lake.Get(triplet.table_id),
              options.noisy_positive_amplitude, /*x_column=*/-1, &rng);
          pos_logits.push_back(
              model->ScoreLogit(chart_rep, model->EncodeDataset(noisy),
                                triplet.chart.y_lo, triplet.chart.y_hi));
        }

        // Rank in-batch candidate tables by ground-truth relevance.
        std::vector<std::pair<double, table::TableId>> ranked;
        for (size_t j = start; j < end; ++j) {
          const auto tid = triplets[order[j]].table_id;
          if (tid == triplet.table_id) continue;
          ranked.emplace_back(ground_truth(anchor, tid), tid);
        }
        std::sort(ranked.begin(), ranked.end(),
                  [](const auto& a, const auto& b) {
                    return a.first > b.first;
                  });
        ranked.erase(std::unique(ranked.begin(), ranked.end(),
                                 [](const auto& a, const auto& b) {
                                   return a.second == b.second;
                                 }),
                     ranked.end());
        std::vector<nn::Tensor> neg_logits;
        for (const auto tid : SelectNegatives(ranked, options.strategy,
                                              options.num_negatives, &rng)) {
          neg_logits.push_back(
              model->ScoreLogit(chart_rep, table_reps.at(tid),
                                triplet.chart.y_lo, triplet.chart.y_hi));
        }

        if (options.loss == LossType::kBinaryCrossEntropy) {
          for (const auto& pos : pos_logits) {
            const nn::Tensor pl = nn::BinaryCrossEntropyWithLogits(pos, 1.0f);
            pos_loss = pos_loss.defined() ? nn::Add(pos_loss, pl) : pl;
            ++num_pos;
          }
          for (const auto& neg : neg_logits) {
            const nn::Tensor nl = nn::BinaryCrossEntropyWithLogits(neg, 0.0f);
            neg_loss = neg_loss.defined() ? nn::Add(neg_loss, nl) : nl;
            ++num_neg;
          }
        } else {
          // Pairwise ranking: every (positive, negative) logit pair should
          // be ordered; logistic loss on the difference.
          for (const auto& pos : pos_logits) {
            ++num_pos;
            for (const auto& neg : neg_logits) {
              const nn::Tensor pl = nn::BinaryCrossEntropyWithLogits(
                  nn::Sub(pos, neg), 1.0f);
              pair_loss = pair_loss.defined() ? nn::Add(pair_loss, pl) : pl;
              ++num_pairs;
            }
          }
          num_neg += static_cast<int>(neg_logits.size());
        }
      }
      if (num_pos == 0) continue;

      nn::Tensor loss;
      if (options.loss == LossType::kBinaryCrossEntropy) {
        // Eq. 2: positive and negative terms normalized separately.
        loss = nn::Scale(pos_loss, 1.0f / static_cast<float>(num_pos));
        if (num_neg > 0) {
          loss = nn::Add(
              loss, nn::Scale(neg_loss, 1.0f / static_cast<float>(num_neg)));
        }
      } else {
        if (num_pairs == 0) continue;
        loss = nn::Scale(pair_loss, 1.0f / static_cast<float>(num_pairs));
      }
      optimizer.ZeroGrad();
      loss.Backward();
      optimizer.ClipGradNorm(options.grad_clip_norm);
      optimizer.Step();

      epoch_loss += loss.item();
      ++batches;
      stats.pairs_trained += num_pos + num_neg;
    }
    const double mean_loss = batches > 0 ? epoch_loss / batches : 0.0;
    stats.epoch_losses.push_back(mean_loss);
    FCM_LOGS(INFO) << "epoch " << epoch << " ("
                   << NegativeStrategyName(options.strategy) << ") loss "
                   << mean_loss;
    if (options.epoch_callback &&
        !options.epoch_callback(epoch, mean_loss)) {
      break;
    }

    if (use_validation) {
      const double mrr = validation_mrr();
      stats.val_mrr.push_back(mrr);
      FCM_LOGS(INFO) << "epoch " << epoch << " val MRR " << mrr;
      if (mrr > best_mrr + 1e-9) {
        best_mrr = mrr;
        stats.best_epoch = epoch;
        stale_epochs = 0;
        common::BinaryWriter writer;
        model->SaveState(&writer);
        best_state = writer.buffer();
      } else if (++stale_epochs > options.early_stop_patience &&
                 epoch + 1 >= options.min_epochs) {
        FCM_LOGS(INFO) << "early stop at epoch " << epoch
                       << " (best epoch " << stats.best_epoch << ")";
        break;
      }
    }
  }

  if (use_validation && !best_state.empty()) {
    common::BinaryReader reader(best_state);
    const common::Status status = model->LoadState(&reader);
    FCM_CHECK(status.ok());
  }
  return stats;
}

}  // namespace fcm::core::internal

#endif  // FCM_CORE_TRAINING_IMPL_H_
