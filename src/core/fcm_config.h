// Configuration for FCM (paper Sec. VII-B "Model Configuration", scaled to
// the CPU substrate: the paper uses K=768, 12 layers, 8 heads, P1=60,
// P2=64; the defaults below shrink every axis proportionally so training
// runs in minutes while preserving the architecture).

#ifndef FCM_CORE_FCM_CONFIG_H_
#define FCM_CORE_FCM_CONFIG_H_

#include <cstdint>

namespace fcm::core {

/// Hyper-parameters of the FCM architecture and trainer.
struct FcmConfig {
  // ---- Shared transformer dimensions ----
  int embed_dim = 32;       // K (paper: 768).
  int num_heads = 2;        // (paper: 8).
  int num_layers = 2;       // J (paper: 12).
  int mlp_hidden = 64;

  // ---- Segment-level line chart encoder (Sec. IV-B) ----
  int strip_height = 32;    // H: extracted line strips are resized to this.
  int strip_width = 128;    // W.
  int line_segment_width = 16;  // P1 (paper: 60). N1 = W / P1.

  // ---- Segment-level dataset encoder (Sec. IV-C) ----
  int column_length = 128;  // Columns are resampled to this length.
  int data_segment_size = 16;  // P2 (paper: 64). N2 = column_length / P2.

  // ---- DA-related layers (Sec. V) ----
  bool use_da_layers = true;
  int beta = 2;             // 2^beta sub-segments per data segment.
  int moe_gate_hidden = 16;

  // ---- Matcher (Sec. IV-D) ----
  bool use_hcman = true;    // false = FCM-HCMAN ablation (mean pooling).
  int matcher_hidden = 32;
  /// Points per segment in the deterministic shape descriptors that
  /// bridge the two modalities (see DESIGN.md Sec. 2.1).
  int descriptor_size = 8;

  // ---- Training (Sec. IV-E / VII-B) ----
  float learning_rate = 1e-3f;  // (paper: 1e-6 at full scale).
  int epochs = 30;              // (paper: 60).
  int batch_size = 8;
  int num_negatives = 3;        // N^- (paper default: 3).
  uint64_t seed = 42;

  int NumLineSegments() const { return strip_width / line_segment_width; }
  int NumDataSegments() const { return column_length / data_segment_size; }
  int NumSubSegments() const { return 1 << beta; }
  int SubSegmentSize() const { return data_segment_size / NumSubSegments(); }
};

}  // namespace fcm::core

#endif  // FCM_CORE_FCM_CONFIG_H_
