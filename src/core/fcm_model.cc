#include "core/fcm_model.h"

#include <cmath>

#include "nn/ops.h"

namespace fcm::core {

FcmModel::FcmModel(const FcmConfig& config)
    : config_(config),
      rng_(config.seed),
      chart_encoder_(config, &rng_),
      dataset_encoder_(config, &rng_),
      matcher_(config, &rng_) {
  RegisterModule("chart_encoder", &chart_encoder_);
  RegisterModule("dataset_encoder", &dataset_encoder_);
  RegisterModule("matcher", &matcher_);
}

ChartRepresentation FcmModel::EncodeChart(
    const vision::ExtractedChart& chart) const {
  return chart_encoder_.Forward(chart);
}

DatasetRepresentation FcmModel::EncodeDataset(const table::Table& t) const {
  return dataset_encoder_.Forward(t);
}

std::vector<const ColumnEncoding*> FcmModel::FilterColumns(
    const DatasetRepresentation& dataset, double y_lo, double y_hi) {
  std::vector<const ColumnEncoding*> out;
  for (const auto& col : dataset) {
    if (col.range_hi >= y_lo && col.range_lo <= y_hi) {
      out.push_back(&col);
    }
  }
  if (out.empty()) {
    for (const auto& col : dataset) out.push_back(&col);
  }
  return out;
}

nn::Tensor FcmModel::ScoreLogit(const ChartRepresentation& chart_rep,
                                const DatasetRepresentation& dataset_rep,
                                double y_lo, double y_hi) const {
  const auto columns = FilterColumns(dataset_rep, y_lo, y_hi);
  return matcher_.ForwardLogit(chart_rep, columns);
}

double FcmModel::Score(const vision::ExtractedChart& chart,
                       const table::Table& t) const {
  if (chart.lines.empty() || t.num_columns() == 0) return 0.0;
  const ChartRepresentation chart_rep = EncodeChart(chart);
  const DatasetRepresentation dataset_rep = EncodeDataset(t);
  return ScoreEncoded(chart_rep, dataset_rep, chart.y_lo, chart.y_hi);
}

double FcmModel::ScoreEncoded(const ChartRepresentation& chart_rep,
                              const DatasetRepresentation& dataset_rep,
                              double y_lo, double y_hi) const {
  if (chart_rep.empty() || dataset_rep.empty()) return 0.0;
  const nn::Tensor logit = ScoreLogit(chart_rep, dataset_rep, y_lo, y_hi);
  return 1.0 / (1.0 + std::exp(-static_cast<double>(logit.item())));
}

double FcmModel::DescriptorScore(const ChartRepresentation& chart_rep,
                                 const DatasetRepresentation& dataset_rep,
                                 double y_lo, double y_hi) const {
  if (chart_rep.empty() || dataset_rep.empty()) return 0.0;
  const auto columns = FilterColumns(dataset_rep, y_lo, y_hi);
  return matcher_.DescriptorOnlyScore(chart_rep, columns);
}

ChartRepresentation FcmModel::Detach(const ChartRepresentation& rep) {
  ChartRepresentation out;
  out.reserve(rep.size());
  for (const auto& line : rep) {
    LineEncoding detached;
    detached.representation = line.representation.Detach();
    detached.descriptor = line.descriptor;
    out.push_back(std::move(detached));
  }
  return out;
}

DatasetRepresentation FcmModel::Detach(const DatasetRepresentation& rep) {
  DatasetRepresentation out;
  out.reserve(rep.size());
  for (const auto& col : rep) {
    ColumnEncoding c = col;
    c.representation = col.representation.Detach();
    out.push_back(std::move(c));
  }
  return out;
}

common::Status FcmModel::SaveToFile(const std::string& path) const {
  common::BinaryWriter writer;
  SaveState(&writer);
  return writer.SaveToFile(path);
}

common::Status FcmModel::LoadFromFile(const std::string& path) {
  auto reader = common::BinaryReader::LoadFromFile(path);
  if (!reader.ok()) return reader.status();
  common::BinaryReader r = std::move(reader).ValueOrDie();
  return LoadState(&r);
}

}  // namespace fcm::core
