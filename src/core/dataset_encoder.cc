#include "core/dataset_encoder.h"

#include <algorithm>

#include "common/math_util.h"
#include "common/string_util.h"
#include "nn/ops.h"

namespace fcm::core {

TransformationLayer::TransformationLayer(int sub_segment_size, int embed_dim,
                                         common::Rng* rng)
    : mlp_(sub_segment_size, embed_dim, embed_dim, rng,
           nn::Activation::kGelu) {
  RegisterModule("mlp", &mlp_);
}

nn::Tensor TransformationLayer::Forward(const nn::Tensor& x) const {
  return mlp_.Forward(x);
}

HierarchicalMultiScaleLayer::HierarchicalMultiScaleLayer(int embed_dim,
                                                         int beta,
                                                         common::Rng* rng)
    : beta_(beta) {
  for (int level = 0; level < beta; ++level) {
    combiners_.push_back(std::make_unique<nn::Mlp>(
        2 * embed_dim, embed_dim, embed_dim, rng, nn::Activation::kGelu));
    RegisterModule(common::StrFormat("combiner%d", level),
                   combiners_.back().get());
  }
}

nn::Tensor HierarchicalMultiScaleLayer::Forward(
    const nn::Tensor& leaves) const {
  FCM_CHECK_EQ(leaves.dim(0), 1 << beta_);
  std::vector<nn::Tensor> level;
  for (int i = 0; i < leaves.dim(0); ++i) {
    level.push_back(nn::Row(leaves, i));
  }
  for (int l = 0; l < beta_; ++l) {
    std::vector<nn::Tensor> next;
    for (size_t i = 0; i + 1 < level.size(); i += 2) {
      const nn::Tensor pair = nn::ConcatVec({level[i], level[i + 1]});
      // Residual around the combiner keeps gradient flow through the tree.
      nn::Tensor combined = combiners_[static_cast<size_t>(l)]->Forward(pair);
      combined = nn::Add(combined,
                         nn::Scale(nn::Add(level[i], level[i + 1]), 0.5f));
      next.push_back(combined);
    }
    level = std::move(next);
  }
  FCM_CHECK_EQ(level.size(), 1u);
  return level[0];
}

MoEGate::MoEGate(int embed_dim, int gate_hidden, int num_experts,
                 common::Rng* rng) {
  for (int i = 0; i < num_experts; ++i) {
    gates_.push_back(std::make_unique<nn::Mlp>(embed_dim, gate_hidden, 1,
                                               rng,
                                               nn::Activation::kLeakyRelu));
    RegisterModule(common::StrFormat("gate%d", i), gates_.back().get());
  }
}

nn::Tensor MoEGate::GateWeights(
    const std::vector<nn::Tensor>& expert_outputs) const {
  FCM_CHECK_EQ(expert_outputs.size(), gates_.size());
  std::vector<nn::Tensor> logits;
  logits.reserve(gates_.size());
  for (size_t i = 0; i < gates_.size(); ++i) {
    logits.push_back(gates_[i]->Forward(expert_outputs[i]));  // [1]
  }
  return nn::Softmax(nn::ConcatVec(logits));  // [num_experts]
}

nn::Tensor MoEGate::Forward(
    const std::vector<nn::Tensor>& expert_outputs) const {
  const nn::Tensor weights = GateWeights(expert_outputs);
  nn::Tensor combined;
  for (size_t i = 0; i < expert_outputs.size(); ++i) {
    const nn::Tensor wi =
        nn::Reshape(nn::SliceCols(nn::Reshape(weights, {1, weights.dim(0)}),
                                  static_cast<int>(i),
                                  static_cast<int>(i) + 1),
                    {1});
    // Broadcast the scalar gate over the expert embedding.
    const int k = expert_outputs[i].dim(0);
    std::vector<nn::Tensor> reps(static_cast<size_t>(k), wi);
    const nn::Tensor scaled =
        nn::Mul(expert_outputs[i], nn::ConcatVec(reps));
    combined = combined.defined() ? nn::Add(combined, scaled) : scaled;
  }
  return combined;
}

DatasetEncoder::DatasetEncoder(const FcmConfig& config, common::Rng* rng)
    : config_(config),
      encoder_(config.embed_dim, config.num_heads, config.mlp_hidden,
               config.num_layers, config.NumDataSegments(), rng) {
  if (config.use_da_layers) {
    FCM_CHECK_EQ(config.SubSegmentSize() * config.NumSubSegments(),
                 config.data_segment_size);
    for (int op = 0; op < table::kNumAggregateOps; ++op) {
      transformations_.push_back(std::make_unique<TransformationLayer>(
          config.SubSegmentSize(), config.embed_dim, rng));
      RegisterModule(
          common::StrFormat("transform_%s",
                            table::AggregateOpName(
                                static_cast<table::AggregateOp>(op))),
          transformations_.back().get());
    }
    hmrl_ = std::make_unique<HierarchicalMultiScaleLayer>(config.embed_dim,
                                                          config.beta, rng);
    RegisterModule("hmrl", hmrl_.get());
    moe_ = std::make_unique<MoEGate>(config.embed_dim, config.moe_gate_hidden,
                                     table::kNumAggregateOps, rng);
    RegisterModule("moe", moe_.get());
  } else {
    segment_projection_ = std::make_unique<nn::Linear>(
        config.data_segment_size, config.embed_dim, rng);
    RegisterModule("segment_projection", segment_projection_.get());
  }
  RegisterModule("encoder", &encoder_);
}

nn::Tensor DatasetEncoder::EncodeColumn(
    const std::vector<double>& values) const {
  FCM_CHECK(!values.empty());
  // Resample to the fixed column length, then min-max normalize to [0, 1]
  // — mirroring how a plotted line fills its chart's vertical extent.
  std::vector<double> resampled = common::ResampleLinear(
      values, static_cast<size_t>(config_.column_length));
  const double lo = common::Min(resampled);
  const double hi = common::Max(resampled);
  const double span = hi - lo < 1e-12 ? 1.0 : hi - lo;
  std::vector<float> norm(resampled.size());
  for (size_t i = 0; i < resampled.size(); ++i) {
    norm[i] = static_cast<float>((resampled[i] - lo) / span);
  }

  const int n2 = config_.NumDataSegments();
  const int p2 = config_.data_segment_size;

  nn::Tensor tokens;  // [N2, K]
  if (config_.use_da_layers) {
    const int n_sub = config_.NumSubSegments();
    const int sub = config_.SubSegmentSize();
    std::vector<nn::Tensor> segment_vectors;
    segment_vectors.reserve(static_cast<size_t>(n2));
    for (int s = 0; s < n2; ++s) {
      // Sub-segment matrix for this segment: [2^beta, sub].
      std::vector<float> sub_data(static_cast<size_t>(n_sub) * sub);
      for (int i = 0; i < n_sub * sub; ++i) {
        sub_data[static_cast<size_t>(i)] =
            norm[static_cast<size_t>(s) * p2 + i];
      }
      const nn::Tensor sub_segments =
          nn::Tensor::FromVector({n_sub, sub}, std::move(sub_data));
      // Five experts: per-operator transformation -> HMRL root.
      std::vector<nn::Tensor> expert_roots;
      expert_roots.reserve(transformations_.size());
      for (const auto& transform : transformations_) {
        const nn::Tensor leaves = transform->Forward(sub_segments);
        expert_roots.push_back(hmrl_->Forward(leaves));
      }
      segment_vectors.push_back(moe_->Forward(expert_roots));  // [K]
    }
    tokens = nn::StackRows(segment_vectors);
  } else {
    std::vector<float> seg_data(norm.begin(), norm.end());
    const nn::Tensor segments =
        nn::Tensor::FromVector({n2, p2}, std::move(seg_data));
    tokens = segment_projection_->Forward(segments);
  }
  return encoder_.Forward(tokens);  // [N2, K]
}

std::vector<float> DatasetEncoder::ColumnDescriptor(
    const std::vector<double>& values) const {
  FCM_CHECK(!values.empty());
  std::vector<double> resampled = common::ResampleLinear(
      values, static_cast<size_t>(config_.column_length));
  const double lo = common::Min(resampled);
  const double hi = common::Max(resampled);
  const double span = hi - lo < 1e-12 ? 1.0 : hi - lo;
  const int n2 = config_.NumDataSegments();
  const int p2 = config_.data_segment_size;
  const int s_points = config_.descriptor_size;
  std::vector<float> out(static_cast<size_t>(n2) * s_points);
  for (int s = 0; s < n2; ++s) {
    std::vector<double> seg(resampled.begin() + static_cast<long>(s) * p2,
                            resampled.begin() +
                                static_cast<long>(s + 1) * p2);
    const auto r = common::ResampleLinear(seg,
                                          static_cast<size_t>(s_points));
    for (int i = 0; i < s_points; ++i) {
      out[static_cast<size_t>(s) * s_points + i] =
          static_cast<float>((r[static_cast<size_t>(i)] - lo) / span);
    }
  }
  return out;
}

std::vector<double> DatasetEncoder::InferOperatorDistribution(
    const std::vector<double>& values) const {
  std::vector<double> dist(table::kNumAggregateOps,
                           1.0 / table::kNumAggregateOps);
  if (!config_.use_da_layers || values.empty()) return dist;

  std::vector<double> resampled = common::ResampleLinear(
      values, static_cast<size_t>(config_.column_length));
  const double lo = common::Min(resampled);
  const double hi = common::Max(resampled);
  const double span = hi - lo < 1e-12 ? 1.0 : hi - lo;
  std::vector<float> norm(resampled.size());
  for (size_t i = 0; i < resampled.size(); ++i) {
    norm[i] = static_cast<float>((resampled[i] - lo) / span);
  }

  const int n2 = config_.NumDataSegments();
  const int p2 = config_.data_segment_size;
  const int n_sub = config_.NumSubSegments();
  const int sub = config_.SubSegmentSize();
  std::fill(dist.begin(), dist.end(), 0.0);
  for (int s = 0; s < n2; ++s) {
    std::vector<float> sub_data(static_cast<size_t>(n_sub) * sub);
    for (int i = 0; i < n_sub * sub; ++i) {
      sub_data[static_cast<size_t>(i)] =
          norm[static_cast<size_t>(s) * p2 + i];
    }
    const nn::Tensor sub_segments =
        nn::Tensor::FromVector({n_sub, sub}, std::move(sub_data));
    std::vector<nn::Tensor> expert_roots;
    expert_roots.reserve(transformations_.size());
    for (const auto& transform : transformations_) {
      expert_roots.push_back(hmrl_->Forward(transform->Forward(sub_segments)));
    }
    const nn::Tensor weights = moe_->GateWeights(expert_roots);
    for (int op = 0; op < table::kNumAggregateOps; ++op) {
      dist[static_cast<size_t>(op)] +=
          static_cast<double>(weights.data()[static_cast<size_t>(op)]);
    }
  }
  for (auto& v : dist) v /= static_cast<double>(n2);
  return dist;
}

DatasetRepresentation DatasetEncoder::Forward(const table::Table& t) const {
  DatasetRepresentation out;
  for (size_t ci = 0; ci < t.num_columns(); ++ci) {
    const auto& col = t.column(ci);
    if (col.empty()) continue;
    ColumnEncoding enc;
    enc.representation = EncodeColumn(col.values);
    enc.descriptor = ColumnDescriptor(col.values);
    if (config_.use_da_layers) {
      // Aggregated-shape variants (two windows per operator) so DA-based
      // charts can descriptor-match the column they were derived from.
      for (const auto op : table::RealAggregateOps()) {
        for (const size_t window : {size_t{4}, size_t{16}}) {
          if (col.values.size() < 2 * window) continue;
          enc.da_descriptors.push_back(
              ColumnDescriptor(table::Aggregate(col.values, op, window)));
        }
      }
    }
    enc.range_lo = col.MinValue();
    enc.range_hi = col.SumValue();
    if (enc.range_hi < enc.range_lo) std::swap(enc.range_lo, enc.range_hi);
    enc.column_index = static_cast<int>(ci);
    out.push_back(std::move(enc));
  }
  return out;
}

}  // namespace fcm::core
