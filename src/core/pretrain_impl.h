// Template definition for PretrainEncoders — included from pretrain.h.

#ifndef FCM_CORE_PRETRAIN_IMPL_H_
#define FCM_CORE_PRETRAIN_IMPL_H_

#include <algorithm>
#include <numeric>

#include "common/logging.h"
#include "common/rng.h"
#include "nn/optimizer.h"
#include "nn/ops.h"

namespace fcm::core {

namespace pretrain_internal {

/// L2-normalizes each row of [n, k] (rows with near-zero norm pass
/// through scaled by 1/sqrt(eps), which is harmless for the objective).
inline nn::Tensor NormalizeRows(const nn::Tensor& x) {
  const int n = x.dim(0);
  std::vector<nn::Tensor> rows;
  rows.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    const nn::Tensor row = nn::Row(x, i);
    const nn::Tensor inv_norm = nn::Rsqrt(nn::DotProduct(row, row));
    // Broadcast the scalar inverse norm across the row.
    std::vector<nn::Tensor> reps(static_cast<size_t>(x.dim(1)), inv_norm);
    rows.push_back(nn::Mul(row, nn::ConcatVec(reps)));
  }
  return nn::StackRows(rows);
}

}  // namespace pretrain_internal

template <typename Model>
double PretrainEncoders(Model* model,
                        const std::vector<AlignmentPair>& pairs,
                        const PretrainOptions& options) {
  if (pairs.size() < 2) return 0.0;
  common::Rng rng(options.seed);
  nn::Adam optimizer(model->Parameters(), options.learning_rate);

  std::vector<size_t> order(pairs.size());
  std::iota(order.begin(), order.end(), 0);
  double final_loss = 0.0;
  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    rng.Shuffle(&order);
    double epoch_loss = 0.0;
    int batches = 0;
    for (size_t start = 0; start + 1 < order.size();
         start += static_cast<size_t>(options.batch_size)) {
      const size_t end = std::min(
          order.size(), start + static_cast<size_t>(options.batch_size));
      const int b = static_cast<int>(end - start);
      if (b < 2) continue;

      std::vector<nn::Tensor> chart_vecs, column_vecs;
      for (size_t i = start; i < end; ++i) {
        const auto& pair = pairs[order[i]];
        const auto chart_rep = model->EncodeChart(pair.chart);
        std::vector<nn::Tensor> line_means;
        for (const auto& line : chart_rep) {
          line_means.push_back(nn::MeanRows(line.representation));
        }
        chart_vecs.push_back(nn::MeanRows(nn::StackRows(line_means)));
        column_vecs.push_back(
            nn::MeanRows(model->EncodeColumnValues(pair.column)));
      }
      const nn::Tensor charts = pretrain_internal::NormalizeRows(
          nn::StackRows(chart_vecs));  // [b, K]
      const nn::Tensor columns = pretrain_internal::NormalizeRows(
          nn::StackRows(column_vecs));  // [b, K]
      const nn::Tensor logits = nn::Scale(
          nn::MatMul(charts, nn::Transpose(columns)), options.temperature);
      std::vector<int> diagonal(static_cast<size_t>(b));
      std::iota(diagonal.begin(), diagonal.end(), 0);
      nn::Tensor loss =
          nn::Add(nn::CrossEntropyWithLogits(logits, diagonal),
                  nn::CrossEntropyWithLogits(nn::Transpose(logits),
                                             diagonal));
      optimizer.ZeroGrad();
      loss.Backward();
      optimizer.ClipGradNorm(5.0);
      optimizer.Step();
      epoch_loss += loss.item();
      ++batches;
    }
    final_loss = batches > 0 ? epoch_loss / batches : 0.0;
    FCM_LOGS(INFO) << "pretrain epoch " << epoch << " loss " << final_loss;
  }
  return final_loss;
}

}  // namespace fcm::core

#endif  // FCM_CORE_PRETRAIN_IMPL_H_
