#include "core/training.h"

namespace fcm::core {

const char* NegativeStrategyName(NegativeStrategy s) {
  switch (s) {
    case NegativeStrategy::kSemiHard: return "semi-hard";
    case NegativeStrategy::kRandom: return "random";
    case NegativeStrategy::kHard: return "hard";
    case NegativeStrategy::kEasy: return "easy";
  }
  return "?";
}

const char* LossTypeName(LossType t) {
  switch (t) {
    case LossType::kBinaryCrossEntropy: return "bce";
    case LossType::kPairwiseRanking: return "pairwise";
  }
  return "?";
}

namespace internal {

std::vector<table::TableId> SelectNegatives(
    const std::vector<std::pair<double, table::TableId>>& ranked,
    NegativeStrategy strategy, int num_negatives, common::Rng* rng) {
  const int n = static_cast<int>(ranked.size());
  const int take = std::min(num_negatives, n);
  std::vector<table::TableId> out;
  out.reserve(static_cast<size_t>(take));
  switch (strategy) {
    case NegativeStrategy::kHard:
      for (int i = 0; i < take; ++i) {
        out.push_back(ranked[static_cast<size_t>(i)].second);
      }
      break;
    case NegativeStrategy::kEasy:
      for (int i = 0; i < take; ++i) {
        out.push_back(ranked[static_cast<size_t>(n - 1 - i)].second);
      }
      break;
    case NegativeStrategy::kSemiHard: {
      // The N^- candidates with middle-range relevance scores.
      const int start = std::max(0, (n - take) / 2);
      for (int i = 0; i < take; ++i) {
        out.push_back(ranked[static_cast<size_t>(start + i)].second);
      }
      break;
    }
    case NegativeStrategy::kRandom: {
      const auto idx = rng->SampleWithoutReplacement(
          static_cast<size_t>(n), static_cast<size_t>(take));
      for (size_t i : idx) out.push_back(ranked[i].second);
      break;
    }
  }
  return out;
}

}  // namespace internal

TrainStats TrainFcm(FcmModel* model, const table::DataLake& lake,
                    const std::vector<TrainingTriplet>& triplets,
                    const TrainOptions& options) {
  return internal::TrainRelevanceModel(model, lake, triplets, options);
}

}  // namespace fcm::core
