// Cross-modal contrastive pretraining of the FCM/CML encoders.
//
// The paper builds on *pretrained* unimodal encoders (a ViT for images,
// TURL for tables) before cross-modal relevance training; at our scale we
// provide the equivalent warm start by self-supervised alignment: render
// single-line charts from synthetic series (free supervision — the
// chart/column correspondence is known by construction), and pull each
// chart's pooled embedding toward its source column's pooled embedding
// with a symmetric InfoNCE objective. After pretraining, "same shape"
// is the dominant axis of both embedding spaces, so the downstream
// matcher learns ranking rather than memorization.

#ifndef FCM_CORE_PRETRAIN_H_
#define FCM_CORE_PRETRAIN_H_

#include <cstdint>
#include <vector>

#include "nn/tensor.h"
#include "table/column.h"
#include "vision/extracted_chart.h"

namespace fcm::core {

/// Pretraining hyper-parameters.
struct PretrainOptions {
  int num_pairs = 288;
  int epochs = 5;
  int batch_size = 16;
  float learning_rate = 1e-3f;
  float temperature = 10.0f;
  uint64_t seed = 31337;
};

/// One (chart, source column) alignment pair.
struct AlignmentPair {
  vision::ExtractedChart chart;
  std::vector<double> column;
};

/// Generates `n` alignment pairs from synthetic series (random walks,
/// trends, waves, steps) rendered as single-line charts and extracted
/// with the classical extractor.
std::vector<AlignmentPair> MakeAlignmentPairs(int n, uint64_t seed);

/// Runs symmetric InfoNCE alignment over mini-batches: within each batch,
/// chart i must match column i against all other columns (and vice
/// versa). `Model` needs EncodeChart / EncodeColumnValues / Parameters.
/// Returns the final epoch's mean loss.
template <typename Model>
double PretrainEncoders(Model* model,
                        const std::vector<AlignmentPair>& pairs,
                        const PretrainOptions& options);

}  // namespace fcm::core

#include "core/pretrain_impl.h"

#endif  // FCM_CORE_PRETRAIN_H_
