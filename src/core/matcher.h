// Hierarchical cross-modal attention network (HCMAN, paper Sec. IV-D):
// segment-level attention (SL-SAN) matches every line segment against
// every data segment and reconstructs line/column vectors as relevance-
// weighted sums; line-to-column attention (LL-SAN) then matches lines with
// columns and reconstructs chart/dataset vectors; an MLP head maps the
// concatenation to Rel'(V, T).

#ifndef FCM_CORE_MATCHER_H_
#define FCM_CORE_MATCHER_H_

#include "core/dataset_encoder.h"
#include "core/fcm_config.h"
#include "core/line_chart_encoder.h"
#include "nn/layers.h"

namespace fcm::core {

class CrossModalMatcher : public nn::Module {
 public:
  CrossModalMatcher(const FcmConfig& config, common::Rng* rng);

  /// Returns the relevance logit (apply Sigmoid for Rel'(V,T) in (0,1)).
  /// `chart_rep` holds E_V[i] per line; `columns` holds the (possibly
  /// y-range-filtered) column encodings.
  nn::Tensor ForwardLogit(const ChartRepresentation& chart_rep,
                          const std::vector<const ColumnEncoding*>& columns)
      const;

  /// Pure descriptor-bridge relevance (no learned parameters): the mean
  /// best line->column and column->line descriptor match. Used as an
  /// interpretable diagnostic/ablation of the deterministic shape path.
  double DescriptorOnlyScore(
      const ChartRepresentation& chart_rep,
      const std::vector<const ColumnEncoding*>& columns) const;

 private:
  // HCMAN path.
  nn::Tensor HcmanLogit(const ChartRepresentation& chart_rep,
                        const std::vector<const ColumnEncoding*>& columns)
      const;
  // FCM-HCMAN ablation path (Sec. VII-D1): mean-pool everything, concat,
  // MLP.
  nn::Tensor MeanPoolLogit(const ChartRepresentation& chart_rep,
                           const std::vector<const ColumnEncoding*>& columns)
      const;

  FcmConfig config_;
  // SL-SAN projections (queries from line segments, keys/values from data
  // segments, and the symmetric pair).
  nn::Linear sl_query_;
  nn::Linear sl_key_;
  nn::Linear sl_value_;
  nn::Linear sl_line_out_;
  nn::Linear sl_col_out_;
  // LL-SAN projections.
  nn::Linear ll_query_;
  nn::Linear ll_key_;
  // Learnable weight of the deterministic descriptor similarity inside
  // the LL-SAN attention logits.
  nn::Tensor descriptor_gate_;
  // Linear shortcut from the descriptor-match statistics straight to the
  // relevance logit. Without it the two statistics are diluted among
  // ~100 MLP inputs and the (overfitting-prone) learned path dominates;
  // with it the model *starts* at descriptor-level ranking quality and
  // training adjusts around that operating point.
  nn::Tensor descriptor_logit_weight_;  // [2]
  // Relevance head.
  nn::Mlp head_;
};

}  // namespace fcm::core

#endif  // FCM_CORE_MATCHER_H_
