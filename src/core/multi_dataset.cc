#include "core/multi_dataset.h"

#include <algorithm>
#include <map>

namespace fcm::core {

vision::ExtractedChart SingleLineChart(const vision::ExtractedChart& chart,
                                       size_t i) {
  vision::ExtractedChart out;
  out.y_lo = chart.y_lo;
  out.y_hi = chart.y_hi;
  out.tick_values = chart.tick_values;
  out.lines.push_back(chart.lines[i]);
  return out;
}

MultiDatasetResult DiscoverMultiDataset(const FcmModel& model,
                                        const vision::ExtractedChart& chart,
                                        const table::DataLake& lake,
                                        const MultiDatasetOptions& options) {
  MultiDatasetResult result;

  // Encode all candidate tables once (or reuse the caller's cache).
  std::vector<DatasetRepresentation> local;
  const std::vector<DatasetRepresentation>* encodings = options.encodings;
  if (encodings == nullptr) {
    local.reserve(lake.size());
    for (const auto& t : lake.tables()) {
      local.push_back(FcmModel::Detach(model.EncodeDataset(t)));
    }
    encodings = &local;
  }

  // Aggregate score per table: its best per-line score (argmax lines
  // first in the combined ranking).
  std::map<table::TableId, double> best_score;

  for (size_t li = 0; li < chart.lines.size(); ++li) {
    const vision::ExtractedChart sub = SingleLineChart(chart, li);
    const ChartRepresentation chart_rep =
        FcmModel::Detach(model.EncodeChart(sub));

    LineCandidates candidates;
    candidates.line_index = static_cast<int>(li);
    candidates.ranked.reserve(lake.size());
    for (const auto& t : lake.tables()) {
      const double s = model.ScoreEncoded(
          chart_rep, (*encodings)[static_cast<size_t>(t.id())], sub.y_lo,
          sub.y_hi);
      candidates.ranked.emplace_back(s, t.id());
    }
    const size_t keep = std::min<size_t>(
        static_cast<size_t>(options.per_line_k), candidates.ranked.size());
    std::partial_sort(candidates.ranked.begin(),
                      candidates.ranked.begin() + static_cast<long>(keep),
                      candidates.ranked.end(),
                      [](const auto& a, const auto& b) {
                        return a.first > b.first;
                      });
    candidates.ranked.resize(keep);
    for (const auto& [score, tid] : candidates.ranked) {
      auto it = best_score.find(tid);
      if (it == best_score.end() || score > it->second) {
        best_score[tid] = score;
      }
    }
    result.per_line.push_back(std::move(candidates));
  }

  // Combined ranking: per-line winners first (dedup), then the remaining
  // candidates by best score.
  std::vector<std::pair<double, table::TableId>> ordered;
  ordered.reserve(best_score.size());
  for (const auto& [tid, score] : best_score) {
    ordered.emplace_back(score, tid);
  }
  std::sort(ordered.begin(), ordered.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });

  std::vector<table::TableId> winners;
  for (const auto& line : result.per_line) {
    if (!line.ranked.empty()) winners.push_back(line.ranked[0].second);
  }
  auto push_unique = [&](table::TableId tid) {
    if (std::find(result.tables.begin(), result.tables.end(), tid) ==
        result.tables.end()) {
      result.tables.push_back(tid);
    }
  };
  for (const auto tid : winners) push_unique(tid);
  for (const auto& [score, tid] : ordered) push_unique(tid);
  return result;
}

}  // namespace fcm::core
