#include "core/line_chart_encoder.h"

#include <algorithm>

#include "common/math_util.h"
#include "nn/ops.h"
#include "vision/image_resize.h"

namespace fcm::core {

LineChartEncoder::LineChartEncoder(const FcmConfig& config, common::Rng* rng)
    : config_(config),
      patch_projection_((config.strip_height + 1) *
                            config.line_segment_width,
                        config.embed_dim, rng),
      encoder_(config.embed_dim, config.num_heads, config.mlp_hidden,
               config.num_layers, config.NumLineSegments(), rng) {
  RegisterModule("patch_projection", &patch_projection_);
  RegisterModule("encoder", &encoder_);
}

LineEncoding LineChartEncoder::EncodeStrip(const std::vector<float>& strip,
                                           int width, int height) const {
  const int h = config_.strip_height;
  const int w = config_.strip_width;
  const int p1 = config_.line_segment_width;
  const int n1 = config_.NumLineSegments();

  // ROI crop: tighten to the line's own bounding box before resizing
  // (what an instance-segmentation pipeline feeds downstream). This makes
  // the strip span the line's own vertical extent, mirroring the dataset
  // encoder's per-column min-max normalization — without it, a matched
  // (line, column) pair differs by an arbitrary affine offset whenever
  // the chart's y range is shared across several lines.
  int y_lo = height, y_hi = -1;
  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      if (strip[static_cast<size_t>(y) * width + x] > 0.05f) {
        y_lo = std::min(y_lo, y);
        y_hi = std::max(y_hi, y);
        break;
      }
    }
  }
  std::vector<float> cropped;
  int crop_h = height;
  if (y_hi >= y_lo && y_hi > y_lo) {
    crop_h = y_hi - y_lo + 1;
    cropped.resize(static_cast<size_t>(width) * crop_h);
    std::copy(strip.begin() + static_cast<long>(
                                  static_cast<size_t>(y_lo) * width),
              strip.begin() + static_cast<long>(
                                  static_cast<size_t>(y_hi + 1) * width),
              cropped.begin());
  } else {
    cropped = strip;  // Blank or single-row strip: keep as-is.
  }
  const std::vector<float> resized =
      vision::ResizeBilinear(cropped, width, crop_h, w, h);

  // Per pixel column: ink-weighted vertical center of mass, flipped so 1
  // = top of the plot (largest value). This is a deterministic feature of
  // the pixels (no information beyond the raster) appended to each patch
  // so the line's shape is linearly decodable — at our reduced training
  // scale this replaces gradient steps the paper's GPU budget affords.
  std::vector<float> center(static_cast<size_t>(w), 0.5f);
  for (int x = 0; x < w; ++x) {
    float mass = 0.0f, weighted = 0.0f;
    for (int y = 0; y < h; ++y) {
      const float ink = resized[static_cast<size_t>(y) * w + x];
      mass += ink;
      weighted += ink * static_cast<float>(y);
    }
    if (mass > 1e-4f) {
      center[static_cast<size_t>(x)] =
          1.0f - weighted / mass / static_cast<float>(h - 1);
    }
  }

  // Flatten each width-P1 patch (all rows + the center-of-mass row).
  const int patch_dim = (h + 1) * p1;
  std::vector<float> patches(static_cast<size_t>(n1) * patch_dim);
  for (int s = 0; s < n1; ++s) {
    const int x0 = s * p1;
    float* patch = patches.data() + static_cast<size_t>(s) * patch_dim;
    for (int y = 0; y < h; ++y) {
      for (int dx = 0; dx < p1; ++dx) {
        patch[static_cast<size_t>(y) * p1 + dx] =
            resized[static_cast<size_t>(y) * w + x0 + dx];
      }
    }
    for (int dx = 0; dx < p1; ++dx) {
      patch[static_cast<size_t>(h) * p1 + dx] =
          center[static_cast<size_t>(x0 + dx)];
    }
  }
  nn::Tensor x =
      nn::Tensor::FromVector({n1, patch_dim}, std::move(patches));

  LineEncoding out;
  out.representation =
      encoder_.Forward(patch_projection_.Forward(x));  // [N1, K]

  // Shape descriptor: the center-of-mass curve of each segment resampled
  // to the configured descriptor size.
  const int s_points = config_.descriptor_size;
  out.descriptor.resize(static_cast<size_t>(n1) * s_points);
  for (int s = 0; s < n1; ++s) {
    std::vector<double> seg(center.begin() + static_cast<long>(s) * p1,
                            center.begin() + static_cast<long>(s + 1) * p1);
    const auto resampled_seg =
        common::ResampleLinear(seg, static_cast<size_t>(s_points));
    for (int i = 0; i < s_points; ++i) {
      out.descriptor[static_cast<size_t>(s) * s_points + i] =
          static_cast<float>(resampled_seg[static_cast<size_t>(i)]);
    }
  }
  return out;
}

ChartRepresentation LineChartEncoder::Forward(
    const vision::ExtractedChart& chart) const {
  ChartRepresentation out;
  out.reserve(chart.lines.size());
  for (const auto& line : chart.lines) {
    out.push_back(EncodeStrip(line.strip, line.width, line.height));
  }
  return out;
}

}  // namespace fcm::core
