// Multi-dataset line chart queries (paper Sec. IX "Multiple datasets"):
// when the lines of one chart may originate from *different* tables joined
// on a shared x value, per-chart scoring against single tables cannot
// recover the sources. This module scores each extracted line separately
// against every candidate table and assigns lines to tables.

#ifndef FCM_CORE_MULTI_DATASET_H_
#define FCM_CORE_MULTI_DATASET_H_

#include <vector>

#include "core/fcm_model.h"
#include "table/data_lake.h"
#include "vision/extracted_chart.h"

namespace fcm::core {

/// Best candidate tables for one line of a multi-dataset query.
struct LineCandidates {
  int line_index = 0;
  /// Tables in descending relevance order, truncated to the requested k.
  std::vector<std::pair<double, table::TableId>> ranked;
};

/// The discovery result: per-line rankings plus the combined table set.
struct MultiDatasetResult {
  std::vector<LineCandidates> per_line;
  /// Union of per-line winners in descending aggregate score, deduplicated
  /// (a table that best-matches two lines appears once).
  std::vector<table::TableId> tables;
};

struct MultiDatasetOptions {
  /// Candidates kept per line.
  int per_line_k = 5;
  /// Pre-encoded dataset representations (index = table id); empty means
  /// encode on the fly.
  const std::vector<DatasetRepresentation>* encodings = nullptr;
};

/// Splits `chart` into single-line sub-queries (each inheriting the y-tick
/// range), scores every (line, table) pair with `model`, and aggregates:
/// `tables` holds each line's argmax table first (by score), then
/// remaining high-scoring candidates.
MultiDatasetResult DiscoverMultiDataset(const FcmModel& model,
                                        const vision::ExtractedChart& chart,
                                        const table::DataLake& lake,
                                        const MultiDatasetOptions& options = {});

/// Convenience: a single-line ExtractedChart containing line `i` of
/// `chart` with the same y range (the sub-query DiscoverMultiDataset
/// scores). Exposed for testing and the example binaries.
vision::ExtractedChart SingleLineChart(const vision::ExtractedChart& chart,
                                       size_t i);

}  // namespace fcm::core

#endif  // FCM_CORE_MULTI_DATASET_H_
