// Segment-level line chart encoder (paper Sec. IV-B): each extracted line
// strip is divided into width-P1 patches, linearly projected, position-
// embedded and transformer-encoded (ViT-style), yielding E_V[i] in
// R^{N1 x K} per line.

#ifndef FCM_CORE_LINE_CHART_ENCODER_H_
#define FCM_CORE_LINE_CHART_ENCODER_H_

#include <vector>

#include "core/fcm_config.h"
#include "nn/attention.h"
#include "vision/extracted_chart.h"

namespace fcm::core {

/// One encoded line: the learned segment representations E_V[i] of shape
/// [N1, K] plus a deterministic per-segment shape descriptor — the
/// line's ink center-of-mass curve resampled to `descriptor_size` points
/// per segment (row-major [N1 x S]). The descriptor is a fixed function
/// of the pixels; it gives the matcher a modality-bridging shape signal
/// that needs no gradient steps (see DESIGN.md Sec. 2.1).
struct LineEncoding {
  nn::Tensor representation;        // [N1, K], learned.
  std::vector<float> descriptor;    // [N1 * S], deterministic, in [0, 1].
};

/// Per-line encodings for a whole chart.
using ChartRepresentation = std::vector<LineEncoding>;

class LineChartEncoder : public nn::Module {
 public:
  LineChartEncoder(const FcmConfig& config, common::Rng* rng);

  /// Encodes every line of an extracted chart. Strips are resized to the
  /// configured (H, W) before patching.
  ChartRepresentation Forward(const vision::ExtractedChart& chart) const;

  /// Encodes one strip image of arbitrary size.
  LineEncoding EncodeStrip(const std::vector<float>& strip, int width,
                           int height) const;

 private:
  FcmConfig config_;
  nn::Linear patch_projection_;
  nn::TransformerEncoder encoder_;
};

}  // namespace fcm::core

#endif  // FCM_CORE_LINE_CHART_ENCODER_H_
