// FCM: the fine-grained cross-modal relevance learning model (paper
// Fig. 2) — visual-element-extracted line charts and candidate datasets
// are encoded at segment level and matched by HCMAN into Rel'(V, T).

#ifndef FCM_CORE_FCM_MODEL_H_
#define FCM_CORE_FCM_MODEL_H_

#include <memory>
#include <string>
#include <vector>

#include "core/dataset_encoder.h"
#include "core/fcm_config.h"
#include "core/line_chart_encoder.h"
#include "core/matcher.h"
#include "table/table.h"
#include "vision/extracted_chart.h"

namespace fcm::core {

class FcmModel : public nn::Module {
 public:
  explicit FcmModel(const FcmConfig& config);

  const FcmConfig& config() const { return config_; }

  /// Encodes a line chart: E_V[i] in R^{N1 x K} per line.
  ChartRepresentation EncodeChart(const vision::ExtractedChart& chart) const;

  /// Encodes a candidate dataset: per-column [N2, K] + value ranges.
  DatasetRepresentation EncodeDataset(const table::Table& t) const;

  /// Encodes a single column's values to [N2, K] (pretraining hook).
  nn::Tensor EncodeColumnValues(const std::vector<double>& values) const {
    return dataset_encoder_.EncodeColumn(values);
  }

  /// Y-tick filtering (Sec. IV-C / VI-A): keeps columns whose possible
  /// range [min(C), sum(C)] overlaps the chart's tick range. Falls back to
  /// all columns when none overlap (the chart may be aggregated beyond the
  /// raw range).
  static std::vector<const ColumnEncoding*> FilterColumns(
      const DatasetRepresentation& dataset, double y_lo, double y_hi);

  /// Relevance logit with gradients (training path).
  nn::Tensor ScoreLogit(const ChartRepresentation& chart_rep,
                        const DatasetRepresentation& dataset_rep,
                        double y_lo, double y_hi) const;

  /// Convenience: Rel'(V, T) in (0, 1) for a chart/table pair.
  double Score(const vision::ExtractedChart& chart,
               const table::Table& t) const;

  /// Rel'(V, T) from cached (typically detached) representations.
  double ScoreEncoded(const ChartRepresentation& chart_rep,
                      const DatasetRepresentation& dataset_rep, double y_lo,
                      double y_hi) const;

  /// Pure descriptor-bridge score (no learned parameters; see
  /// CrossModalMatcher::DescriptorOnlyScore).
  double DescriptorScore(const ChartRepresentation& chart_rep,
                         const DatasetRepresentation& dataset_rep,
                         double y_lo, double y_hi) const;

  /// Detaches a representation from the autograd graph so it can be cached
  /// across queries without retaining encoder graphs.
  static ChartRepresentation Detach(const ChartRepresentation& rep);
  static DatasetRepresentation Detach(const DatasetRepresentation& rep);

  /// Persists / restores all trainable parameters.
  common::Status SaveToFile(const std::string& path) const;
  common::Status LoadFromFile(const std::string& path);

 private:
  FcmConfig config_;
  common::Rng rng_;
  LineChartEncoder chart_encoder_;
  DatasetEncoder dataset_encoder_;
  CrossModalMatcher matcher_;
};

}  // namespace fcm::core

#endif  // FCM_CORE_FCM_MODEL_H_
