// Segment-level dataset encoder (paper Secs. IV-C and V): columns are
// resampled, min-max normalized, divided into N2 segments, and — when the
// DA extension is enabled — each segment is subdivided into 2^beta
// sub-segments routed through five per-operator transformation layers, a
// hierarchical multi-scale representation layer (binary MLP tree), and a
// mixture-of-experts gate before the shared transformer.

#ifndef FCM_CORE_DATASET_ENCODER_H_
#define FCM_CORE_DATASET_ENCODER_H_

#include <memory>
#include <vector>

#include "core/fcm_config.h"
#include "nn/attention.h"
#include "table/aggregate.h"
#include "table/table.h"

namespace fcm::core {

/// Per-column encoding: representation [N2, K] plus the column's possible
/// value range [min(C), sum(C)] used for y-tick filtering (Sec. VI-A).
struct ColumnEncoding {
  nn::Tensor representation;  // [N2, K]
  /// Deterministic per-segment shape descriptor: min-max normalized
  /// column values resampled to descriptor_size points per segment
  /// (row-major [N2 x S]); the dataset-side counterpart of
  /// LineEncoding::descriptor.
  std::vector<float> descriptor;
  /// DA-aware descriptor variants (Sec. V, deterministic counterpart of
  /// the transformation layers): the same descriptor computed on the
  /// column after each real aggregation operator at a few window sizes.
  /// A DA-based line chart's shape matches one of these rather than the
  /// raw column shape. Empty when use_da_layers is off (the FCM-DA
  /// ablation loses this bridge along with the learned DA layers).
  std::vector<std::vector<float>> da_descriptors;
  double range_lo = 0.0;      // min(C).
  double range_hi = 0.0;      // sum(C).
  int column_index = -1;
};

/// Dataset representation: one ColumnEncoding per column.
using DatasetRepresentation = std::vector<ColumnEncoding>;

/// One per-operator transformation layer (Sec. V-B): a two-layer MLP from
/// raw sub-segment values to the embedding space, modelling the data shift
/// that operator induces.
class TransformationLayer : public nn::Module {
 public:
  TransformationLayer(int sub_segment_size, int embed_dim, common::Rng* rng);

  /// x: [n_subsegments, sub_segment_size] -> [n_subsegments, K].
  nn::Tensor Forward(const nn::Tensor& x) const;

 private:
  nn::Mlp mlp_;
};

/// Hierarchical multi-scale representation layer (Sec. V-C): a binary tree
/// of MLP combiners over the 2^beta sub-segment embeddings; the root
/// integrates every scale.
class HierarchicalMultiScaleLayer : public nn::Module {
 public:
  HierarchicalMultiScaleLayer(int embed_dim, int beta, common::Rng* rng);

  /// leaves: [2^beta, K] -> root embedding [K].
  nn::Tensor Forward(const nn::Tensor& leaves) const;

 private:
  int beta_;
  /// One combiner MLP per tree level (shared across nodes of the level).
  std::vector<std::unique_ptr<nn::Mlp>> combiners_;
};

/// Mixture-of-experts gate (Sec. V-D): per-expert two-layer gate networks
/// with LeakyReLU, softmax-normalized across the five experts.
class MoEGate : public nn::Module {
 public:
  MoEGate(int embed_dim, int gate_hidden, int num_experts, common::Rng* rng);

  /// expert_outputs: num_experts tensors of shape [K]. Returns the gated
  /// combination v = sum_i g_i(e_i) * e_i, shape [K].
  nn::Tensor Forward(const std::vector<nn::Tensor>& expert_outputs) const;

  /// The gate distribution for the given expert outputs (diagnostics /
  /// operator inference), shape [num_experts].
  nn::Tensor GateWeights(const std::vector<nn::Tensor>& expert_outputs) const;

 private:
  std::vector<std::unique_ptr<nn::Mlp>> gates_;
};

class DatasetEncoder : public nn::Module {
 public:
  DatasetEncoder(const FcmConfig& config, common::Rng* rng);

  /// Encodes every column of a table.
  DatasetRepresentation Forward(const table::Table& t) const;

  /// Encodes a single column's values (learned representation only).
  nn::Tensor EncodeColumn(const std::vector<double>& values) const;

  /// The deterministic shape descriptor for a column ([N2 * S]).
  std::vector<float> ColumnDescriptor(
      const std::vector<double>& values) const;

  /// Mean MoE gate distribution over the column's segments — the model's
  /// inference of the most likely aggregation operator (paper Sec. V-D);
  /// indexed by AggregateOp. Requires use_da_layers; returns a uniform
  /// distribution otherwise.
  std::vector<double> InferOperatorDistribution(
      const std::vector<double>& values) const;

 private:
  FcmConfig config_;
  // Base path (no DA): direct linear projection of raw segments.
  std::unique_ptr<nn::Linear> segment_projection_;
  // DA path: 5 transformation layers (avg/sum/max/min/identity), shared
  // HMRL, and the MoE gate.
  std::vector<std::unique_ptr<TransformationLayer>> transformations_;
  std::unique_ptr<HierarchicalMultiScaleLayer> hmrl_;
  std::unique_ptr<MoEGate> moe_;
  nn::TransformerEncoder encoder_;
};

}  // namespace fcm::core

#endif  // FCM_CORE_DATASET_ENCODER_H_
