// Shared setup for the paper-reproduction bench binaries: benchmark
// construction at a CPU-friendly scale (overridable via FCM_SCALE,
// FCM_EPOCHS and FCM_TRAIN_TABLES environment variables) and method training helpers.

#ifndef FCM_BENCH_BENCH_COMMON_H_
#define FCM_BENCH_BENCH_COMMON_H_

#include <memory>
#include <string>

#include "baselines/cml.h"
#include "baselines/de_ln.h"
#include "baselines/fcm_method.h"
#include "baselines/qetch.h"
#include "benchgen/benchmark.h"
#include "core/fcm_config.h"
#include "core/training.h"
#include "eval/experiment.h"
#include "eval/report.h"

namespace fcm::bench {

/// Scale knobs for a bench run. Defaults reproduce the paper's shapes in
/// minutes on a CPU; FCM_SCALE=large doubles the corpus, FCM_SCALE=small
/// halves it (for quick sanity runs). FCM_EPOCHS overrides training
/// epochs.
struct BenchScale {
  int training_tables = 32;   // x2 charts/table = 64 triplets.
  int query_tables = 12;
  int extra_tables = 60;
  int duplicates = 6;
  int k = 6;
  int epochs = 12;
  uint64_t seed = 2024;
};

/// Reads the scale from the environment.
BenchScale ReadScale();

/// Builds the shared benchmark for a scale (classical extractor pipeline).
benchgen::Benchmark BuildBench(const BenchScale& scale,
                               double da_fraction = 0.5);

/// Model configuration used by all benches (paper Sec. VII-B, scaled).
core::FcmConfig DefaultModelConfig(const BenchScale& scale);

/// Training options matching the scale.
core::TrainOptions DefaultTrainOptions(const BenchScale& scale);

/// Prints the standard bench header (what is being reproduced).
void PrintHeader(const std::string& title, const std::string& paper_ref,
                 const BenchScale& scale);

/// Formats an Aggregate pair as "prec / ndcg" cells.
std::string PrecCell(const eval::Aggregate& a);
std::string NdcgCell(const eval::Aggregate& a);

}  // namespace fcm::bench

#endif  // FCM_BENCH_BENCH_COMMON_H_
