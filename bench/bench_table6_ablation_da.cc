// Reproduces Table VI: ablation of the three DA-related layers
// (transformation layers, HMRL, MoE) — FCM vs FCM-DA, overall and on the
// with/without-aggregation query splits.

#include <cstdio>

#include "bench/bench_common.h"

namespace fcm {
namespace {

int Run() {
  const bench::BenchScale scale = bench::ReadScale();
  bench::PrintHeader("Table VI: impact of the DA-related layers",
                     "paper Sec. VII-D2, Table VI", scale);
  const benchgen::Benchmark b = bench::BuildBench(scale);

  core::FcmConfig full_config = bench::DefaultModelConfig(scale);
  core::FcmConfig ablated_config = full_config;
  ablated_config.use_da_layers = false;
  const core::TrainOptions train_options =
      bench::DefaultTrainOptions(scale);

  baselines::FcmMethod full(full_config, train_options);
  baselines::FcmMethod ablated(ablated_config, train_options);
  ablated.set_name("FCM-DA");

  std::printf("fitting FCM ...\n");
  std::fflush(stdout);
  full.Fit(b.lake, b.training);
  const eval::MethodResults fr = eval::EvaluateMethod(full, b);
  std::printf("fitting FCM-DA (DA layers removed) ...\n");
  std::fflush(stdout);
  ablated.Fit(b.lake, b.training);
  const eval::MethodResults ar = eval::EvaluateMethod(ablated, b);

  eval::ReportTable table(
      {"", "Metrics", "Overall", "With DA", "Without DA"});
  const std::string prec_label = "prec@" + std::to_string(scale.k);
  const std::string ndcg_label = "ndcg@" + std::to_string(scale.k);
  table.AddRow({"FCM", prec_label, bench::PrecCell(fr.Overall()),
                bench::PrecCell(fr.WithDa()),
                bench::PrecCell(fr.WithoutDa())});
  table.AddRow({"", ndcg_label, bench::NdcgCell(fr.Overall()),
                bench::NdcgCell(fr.WithDa()),
                bench::NdcgCell(fr.WithoutDa())});
  table.AddRow({"FCM-DA", prec_label, bench::PrecCell(ar.Overall()),
                bench::PrecCell(ar.WithDa()),
                bench::PrecCell(ar.WithoutDa())});
  table.AddRow({"", ndcg_label, bench::NdcgCell(ar.Overall()),
                bench::NdcgCell(ar.WithDa()),
                bench::NdcgCell(ar.WithoutDa())});
  table.Print();

  std::printf(
      "\nPaper (Table VI): removing the DA layers collapses DA-query "
      "effectiveness (0.398 -> 0.175 prec) while leaving non-DA queries "
      "essentially unchanged.\n");
  return 0;
}

}  // namespace
}  // namespace fcm

int main() { return fcm::Run(); }
