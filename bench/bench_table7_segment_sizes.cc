// Reproduces Table VII: hyper-parameter study over the line segment width
// P1 and data segment size P2 (prec@k for every combination). The paper
// sweeps P1 in {15..240} px over W=?, P2 in {16..256}; scaled to our
// strip width 128 / column length 128, P1 and P2 sweep {8, 16, 64}.
// The expected shape: performance peaks at moderate sizes and degrades at
// both extremes.

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"

namespace fcm {
namespace {

int Run() {
  bench::BenchScale scale = bench::ReadScale();
  // 16 models are trained; use a reduced budget per model so the sweep
  // finishes in minutes.
  scale.epochs = std::max(8, scale.epochs / 2);
  bench::PrintHeader("Table VII: impact of segment sizes P1 and P2",
                     "paper Sec. VII-E, Table VII", scale);
  const benchgen::Benchmark b = bench::BuildBench(scale);

  const std::vector<int> p1_values = {8, 16, 64};
  const std::vector<int> p2_values = {8, 16, 64};

  std::vector<std::string> header = {"P1 \\ P2"};
  for (int p2 : p2_values) header.push_back(std::to_string(p2));
  eval::ReportTable table(header);

  for (int p1 : p1_values) {
    std::vector<std::string> row = {std::to_string(p1)};
    for (int p2 : p2_values) {
      core::FcmConfig config = bench::DefaultModelConfig(scale);
      config.line_segment_width = p1;
      config.data_segment_size = p2;
      // beta must keep sub-segments at least 2 elements wide.
      while (config.SubSegmentSize() < 2 && config.beta > 0) --config.beta;
      core::TrainOptions train_options =
          bench::DefaultTrainOptions(scale);
      // 16 models: halve the pretraining budget per model.
      train_options.pretrain_pairs = 128;
      train_options.pretrain_epochs = 4;
      baselines::FcmMethod fcm(config, train_options);
      std::printf("fitting FCM with P1=%d P2=%d ...\n", p1, p2);
      std::fflush(stdout);
      fcm.Fit(b.lake, b.training);
      const eval::MethodResults results = eval::EvaluateMethod(fcm, b);
      row.push_back(bench::PrecCell(results.Overall()));
    }
    table.AddRow(row);
  }
  table.Print();

  std::printf(
      "\nPaper (Table VII): best prec at moderate (P1=60, P2=64); both "
      "very small and very large segments hurt.\n");
  return 0;
}

}  // namespace
}  // namespace fcm

int main() { return fcm::Run(); }
