// Reproduces Fig. 5 (appendix): convergence and final effectiveness of
// FCM under the four negative sampling strategies (semi-hard, random,
// hard, easy), reported as prec@k per training epoch.

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"

namespace fcm {
namespace {

int Run() {
  bench::BenchScale scale = bench::ReadScale();
  bench::PrintHeader(
      "Fig. 5: negative sampling strategies vs convergence (prec@k per "
      "epoch)",
      "paper Appendix E, Fig. 5", scale);
  const benchgen::Benchmark b = bench::BuildBench(scale);

  const std::vector<core::NegativeStrategy> strategies = {
      core::NegativeStrategy::kSemiHard, core::NegativeStrategy::kRandom,
      core::NegativeStrategy::kHard, core::NegativeStrategy::kEasy};

  const int eval_every = std::max(1, scale.epochs / 2);
  std::vector<std::string> header = {"Strategy"};
  for (int e = eval_every - 1; e < scale.epochs; e += eval_every) {
    header.push_back("ep" + std::to_string(e + 1));
  }
  eval::ReportTable table(header);

  for (const auto strategy : strategies) {
    core::FcmConfig config = bench::DefaultModelConfig(scale);
    core::FcmModel model(config);
    baselines::FcmMethod probe(&model);  // Wraps without retraining.

    std::vector<std::string> row = {core::NegativeStrategyName(strategy)};
    core::TrainOptions options = bench::DefaultTrainOptions(scale);
    // Convergence study: run the full epoch schedule (no early stop).
    options.validation_fraction = 0.0;
    // 4 models: halve the pretraining budget per model.
    options.pretrain_pairs = 128;
    options.pretrain_epochs = 4;
    options.strategy = strategy;
    options.epoch_callback = [&](int epoch, double) {
      if ((epoch + 1) % eval_every != 0) return true;
      // Evaluate the current model on the benchmark queries.
      probe.Fit(b.lake, b.training);  // Rebuilds cached encodings only.
      const eval::MethodResults results = eval::EvaluateMethod(probe, b);
      row.push_back(bench::PrecCell(results.Overall()));
      std::printf("  %s epoch %d: prec@%d = %.3f\n",
                  core::NegativeStrategyName(strategy), epoch + 1, scale.k,
                  results.Overall().prec);
      std::fflush(stdout);
      return true;
    };
    std::printf("training with %s negatives ...\n",
                core::NegativeStrategyName(strategy));
    std::fflush(stdout);
    core::TrainFcm(&model, b.lake, b.training, options);
    table.AddRow(row);
  }
  table.Print();

  std::printf(
      "\nPaper (Fig. 5): semi-hard converges first and reaches the best "
      "prec; random is close (-10%%); hard and easy plateau lower.\n");
  return 0;
}

}  // namespace
}  // namespace fcm

int main() { return fcm::Run(); }
