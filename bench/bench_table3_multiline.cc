// Reproduces Table III: effectiveness stratified by the number of lines M
// (1, 2-4, 5-7, >7) for all five methods.

#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_common.h"

namespace fcm {
namespace {

int Run() {
  const bench::BenchScale scale = bench::ReadScale();
  bench::PrintHeader("Table III: Overall effectiveness w.r.t. varying M",
                     "paper Sec. VII-C, Table III", scale);
  const benchgen::Benchmark b = bench::BuildBench(scale);

  const core::FcmConfig model_config = bench::DefaultModelConfig(scale);
  const core::TrainOptions train_options =
      bench::DefaultTrainOptions(scale);

  baselines::LineNetConfig linenet_config;
  auto linenet = std::make_shared<baselines::LineNetLite>(linenet_config);
  baselines::TrainLineNet(linenet.get(), b.lake, b.training);

  std::vector<std::unique_ptr<baselines::RetrievalMethod>> methods;
  methods.push_back(
      std::make_unique<baselines::CmlMethod>(model_config, train_options));
  methods.push_back(std::make_unique<baselines::DeLnMethod>(
      linenet, /*train_on_fit=*/false));
  methods.push_back(std::make_unique<baselines::OptLnMethod>(
      linenet, /*train_on_fit=*/false));
  methods.push_back(std::make_unique<baselines::QetchStarMethod>());
  methods.push_back(
      std::make_unique<baselines::FcmMethod>(model_config, train_options));

  std::vector<eval::MethodResults> results;
  for (auto& method : methods) {
    std::printf("fitting %s ...\n", method->name());
    std::fflush(stdout);
    method->Fit(b.lake, b.training);
    results.push_back(eval::EvaluateMethod(*method, b));
  }

  auto header = std::vector<std::string>{"M", "Metrics"};
  for (const auto& r : results) header.push_back(r.method_name);
  eval::ReportTable table(header);
  for (int bucket = 0; bucket < 4; ++bucket) {
    std::vector<std::string> prec_row = {
        benchgen::Benchmark::LineCountBucketName(bucket),
        "prec@" + std::to_string(scale.k)};
    std::vector<std::string> ndcg_row = {
        "", "ndcg@" + std::to_string(scale.k)};
    for (const auto& r : results) {
      const eval::Aggregate a = r.ByLineBucket(bucket);
      prec_row.push_back(bench::PrecCell(a));
      ndcg_row.push_back(bench::NdcgCell(a));
    }
    table.AddRow(prec_row);
    table.AddRow(ndcg_row);
  }
  table.Print();

  std::printf(
      "\nPaper (Table III): effectiveness decreases with M for every "
      "method; FCM stays best in every stratum and its margin over CML "
      "grows with M.\n");
  return 0;
}

}  // namespace
}  // namespace fcm

int main() { return fcm::Run(); }
