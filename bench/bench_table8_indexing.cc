// Reproduces Table VIII: comparison of indexing strategies — No Index /
// Interval Tree / LSH / Hybrid — on effectiveness (prec@k, ndcg@k),
// per-query time, candidates scored, plus index build time and memory.

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "eval/metrics.h"
#include "index/search_engine.h"

namespace fcm {
namespace {

int Run() {
  const bench::BenchScale scale = bench::ReadScale();
  bench::PrintHeader("Table VIII: comparison of indexing strategies",
                     "paper Sec. VII-F, Table VIII", scale);
  const benchgen::Benchmark b = bench::BuildBench(scale);

  core::FcmModel model(bench::DefaultModelConfig(scale));
  std::printf("training FCM ...\n");
  std::fflush(stdout);
  core::TrainFcm(&model, b.lake, b.training,
                 bench::DefaultTrainOptions(scale));

  index::SearchEngine engine(&model, &b.lake);
  engine.Build();

  const std::vector<index::IndexStrategy> strategies = {
      index::IndexStrategy::kNoIndex, index::IndexStrategy::kIntervalTree,
      index::IndexStrategy::kLsh, index::IndexStrategy::kHybrid};

  eval::ReportTable table({"Strategy", "prec@k", "ndcg@k",
                           "query time (ms)", "candidates"});
  for (const auto strategy : strategies) {
    std::vector<double> precs, ndcgs;
    double total_seconds = 0.0;
    size_t total_candidates = 0;
    for (const auto& q : b.queries) {
      index::QueryStats stats;
      const auto hits = engine.Search(q.extracted, scale.k, strategy,
                                      &stats);
      std::vector<table::TableId> ranked;
      for (const auto& h : hits) ranked.push_back(h.table_id);
      precs.push_back(eval::PrecisionAtK(ranked, q.relevant, scale.k));
      ndcgs.push_back(eval::NdcgAtK(ranked, q.relevant, scale.k));
      total_seconds += stats.seconds;
      total_candidates += stats.candidates_scored;
    }
    const double n = static_cast<double>(b.queries.size());
    table.AddRow({index::IndexStrategyName(strategy),
                  eval::Fmt3(eval::MeanOf(precs)),
                  eval::Fmt3(eval::MeanOf(ndcgs)),
                  eval::Fmt1(1000.0 * total_seconds / n),
                  eval::Fmt1(static_cast<double>(total_candidates) / n)});
  }
  table.Print();

  const auto& bs = engine.build_stats();
  std::printf(
      "\nBuild: encode %.1fs | interval tree %.3fs, %.1f KB | LSH %.3fs, "
      "%.1f KB\n",
      bs.encode_seconds, bs.interval_build_seconds,
      bs.interval_memory_bytes / 1024.0, bs.lsh_build_seconds,
      bs.lsh_memory_bytes / 1024.0);
  std::printf(
      "\nPaper (Table VIII): interval tree halves query time with zero "
      "effectiveness loss; LSH prunes much more with a small loss; the "
      "hybrid is fastest (41x over linear scan) at LSH-level "
      "effectiveness.\n");
  return 0;
}

}  // namespace
}  // namespace fcm

int main() { return fcm::Run(); }
