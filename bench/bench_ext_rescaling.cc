// Future-work extension (paper Sec. IX "Data Re-scaling"): queries whose
// underlying data was normalized or affinely re-scaled before plotting.
// Ground truth uses scale-invariant (z-normalized) DTW, so the source
// table and its near-duplicates remain the correct answer; the bench
// measures how much each re-scaling operator costs FCM.

#include <cstdio>

#include "bench/bench_common.h"
#include "benchgen/futurework.h"
#include "eval/metrics.h"
#include "vision/classical_extractor.h"

namespace fcm {
namespace {

/// Evaluates FCM on a family of extension queries via QueryRecord
/// adaptation (the extension query carries its own ground truth).
eval::Aggregate EvaluateExtension(
    const baselines::FcmMethod& fcm,
    const std::vector<benchgen::ExtensionQuery>& queries,
    const table::DataLake& lake, int k) {
  eval::Aggregate agg;
  // Materialize all records up front: FcmMethod caches per-query chart
  // encodings by QueryRecord address, so records must have stable,
  // distinct addresses for the whole evaluation.
  std::vector<benchgen::QueryRecord> records;
  records.reserve(queries.size());
  for (const auto& q : queries) {
    if (q.extracted.lines.empty() || q.relevant.empty()) continue;
    benchgen::QueryRecord record;
    record.extracted = q.extracted;
    record.underlying = q.underlying;
    record.y_lo = q.y_lo;
    record.y_hi = q.y_hi;
    record.relevant = q.relevant;
    records.push_back(std::move(record));
  }
  double prec = 0.0, ndcg = 0.0;
  for (const auto& record : records) {
    const auto ranked = eval::RankRepository(fcm, record, lake, k);
    prec += eval::PrecisionAtK(ranked, record.relevant, k);
    ndcg += eval::NdcgAtK(ranked, record.relevant, k);
    ++agg.count;
  }
  if (agg.count > 0) {
    agg.prec = prec / agg.count;
    agg.ndcg = ndcg / agg.count;
  }
  return agg;
}

int Run() {
  const bench::BenchScale scale = bench::ReadScale();
  bench::PrintHeader(
      "Extension: re-scaled queries (normalized/scaled before plotting)",
      "paper Sec. IX future work, 'Data Re-scaling'", scale);

  benchgen::Benchmark b = bench::BuildBench(scale);
  vision::ClassicalExtractor extractor;
  benchgen::FutureworkConfig ext_config;
  ext_config.num_queries = scale.query_tables;
  ext_config.duplicates_per_query = scale.duplicates;
  ext_config.ground_truth_k = scale.k;
  ext_config.chart_style = b.config.chart_style;

  // One query family per operator; all mutate the same lake, so generate
  // everything before fitting.
  const table::RescaleOp ops[] = {
      table::RescaleOp::kNone, table::RescaleOp::kZScore,
      table::RescaleOp::kMinMax, table::RescaleOp::kAffine};
  std::vector<std::vector<benchgen::ExtensionQuery>> families;
  for (const auto op : ops) {
    benchgen::FutureworkConfig config = ext_config;
    config.seed = ext_config.seed + static_cast<uint64_t>(op);
    families.push_back(
        benchgen::MakeRescaledQueries(&b, extractor, config, op));
  }
  std::printf("lake %zu after adding rescale queries\n", b.lake.size());

  std::printf("fitting FCM ...\n");
  std::fflush(stdout);
  baselines::FcmMethod fcm(bench::DefaultModelConfig(scale),
                           bench::DefaultTrainOptions(scale));
  fcm.Fit(b.lake, b.training);

  eval::ReportTable table({"Re-scaling", "prec@" + std::to_string(scale.k),
                           "ndcg@" + std::to_string(scale.k), "queries"});
  for (size_t i = 0; i < families.size(); ++i) {
    const auto agg =
        EvaluateExtension(fcm, families[i], b.lake, scale.k);
    table.AddRow({table::RescaleOpName(ops[i]), eval::Fmt3(agg.prec),
                  eval::Fmt3(agg.ndcg), std::to_string(agg.count)});
  }
  table.Print();

  std::printf(
      "\nInterpretation: the descriptor bridge is min-max normalized, so\n"
      "shape matching itself is scale-invariant — min-max re-scaling can\n"
      "even help (it matches the dataset encoder's own normalization).\n"
      "What breaks is the y-tick range filter: z-score/affine move the\n"
      "chart's value range away from the source column's [min, sum]\n"
      "interval, so the correct column is filtered out whenever any other\n"
      "column overlaps the re-scaled range. This quantifies the open\n"
      "problem the paper lists; no method component addresses it yet.\n");
  return 0;
}

}  // namespace
}  // namespace fcm

int main() { return fcm::Run(); }
