// Extra ablation (not a paper table; validates the Mask R-CNN
// substitution documented in DESIGN.md): extraction fidelity of the mask
// oracle, classical, and learned extractors on freshly rendered charts —
// line-count accuracy, per-value MAE relative to the y range, and
// y-range recovery error.

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "benchgen/series_generator.h"
#include "chart/linechartseg.h"
#include "common/math_util.h"
#include "vision/classical_extractor.h"
#include "vision/learned_extractor.h"
#include "vision/mask_oracle_extractor.h"

namespace fcm {
namespace {

struct Fidelity {
  int charts = 0;
  int extraction_failures = 0;
  int correct_line_count = 0;
  double value_mae_sum = 0.0;  // Relative to the y range.
  int value_mae_count = 0;
  double range_err_sum = 0.0;
};

void Measure(const vision::VisualElementExtractor& extractor,
             const chart::RenderedChart& chart,
             const table::UnderlyingData& d, Fidelity* f) {
  ++f->charts;
  auto result = extractor.Extract(chart);
  if (!result.ok()) {
    ++f->extraction_failures;
    return;
  }
  const auto& ex = result.value();
  if (ex.num_lines() == static_cast<int>(d.size())) {
    ++f->correct_line_count;
  }
  const double span =
      chart.y_ticks_layout.axis_hi - chart.y_ticks_layout.axis_lo;
  f->range_err_sum +=
      (std::fabs(ex.y_lo - chart.y_ticks_layout.axis_lo) +
       std::fabs(ex.y_hi - chart.y_ticks_layout.axis_hi)) /
      (2.0 * span);
  // Match extracted lines to data series greedily by MAE (extraction
  // order is not guaranteed to equal plot order).
  const size_t lines = std::min<size_t>(ex.lines.size(), d.size());
  std::vector<bool> used(d.size(), false);
  for (size_t li = 0; li < lines; ++li) {
    double best = 1e300;
    size_t best_series = 0;
    for (size_t si = 0; si < d.size(); ++si) {
      if (used[si] || d[si].empty()) continue;
      const auto truth = common::ResampleLinear(
          d[si].y, ex.lines[li].values.size());
      double mae = 0.0;
      for (size_t i = 0; i < truth.size(); ++i) {
        mae += std::fabs(truth[i] - ex.lines[li].values[i]);
      }
      mae /= static_cast<double>(truth.size());
      if (mae < best) {
        best = mae;
        best_series = si;
      }
    }
    used[best_series] = true;
    f->value_mae_sum += best / span;
    ++f->value_mae_count;
  }
}

int Run() {
  const bench::BenchScale scale = bench::ReadScale();
  bench::PrintHeader(
      "Extractor ablation: mask oracle vs classical vs learned (LCSeg)",
      "validates DESIGN.md's Mask R-CNN substitution (paper Sec. IV-A)",
      scale);

  // Train the learned pixel classifier on LineChartSeg examples.
  common::Rng rng(scale.seed + 5);
  std::vector<chart::SegExample> seg_train;
  for (int i = 0; i < 12; ++i) {
    table::Table t;
    const int cols = 1 + static_cast<int>(rng.UniformInt(3));
    for (int c = 0; c < cols; ++c) {
      t.AddColumn(table::Column(
          "c" + std::to_string(c),
          benchgen::GenerateSeries(benchgen::RandomFamily(&rng), 120,
                                   &rng)));
    }
    chart::VisSpec spec;
    for (int c = 0; c < cols; ++c) spec.y_columns.push_back(c);
    const auto examples = chart::GenerateLineChartSeg(
        t, spec, /*augmentations=*/2, chart::ChartStyle{}, &rng);
    seg_train.insert(seg_train.end(), examples.begin(), examples.end());
  }
  vision::SegClassifier classifier;
  std::printf("training LCSeg pixel classifier on %zu LineChartSeg "
              "examples ...\n", seg_train.size());
  std::fflush(stdout);
  classifier.Train(seg_train);

  vision::MaskOracleExtractor oracle;
  vision::ClassicalExtractor classical;
  vision::LearnedExtractor learned(&classifier);

  Fidelity fo, fc, fl;
  const int charts = 40;
  for (int i = 0; i < charts; ++i) {
    const int m = 1 + static_cast<int>(rng.UniformInt(6));
    table::UnderlyingData d;
    for (int li = 0; li < m; ++li) {
      table::DataSeries s;
      s.y = benchgen::GenerateSeries(benchgen::RandomFamily(&rng), 150,
                                     &rng);
      d.push_back(std::move(s));
    }
    const auto chart = chart::RenderLineChart(d);
    Measure(oracle, chart, d, &fo);
    Measure(classical, chart, d, &fc);
    Measure(learned, chart, d, &fl);
  }

  eval::ReportTable table({"Extractor", "line count acc", "value MAE (rel)",
                           "y-range err (rel)", "failures"});
  auto row = [&](const char* name, const Fidelity& f) {
    table.AddRow(
        {name,
         eval::Fmt3(static_cast<double>(f.correct_line_count) / f.charts),
         f.value_mae_count > 0
             ? eval::Fmt3(f.value_mae_sum / f.value_mae_count)
             : "-",
         eval::Fmt3(f.range_err_sum /
                    std::max(1, f.charts - f.extraction_failures)),
         std::to_string(f.extraction_failures)});
  };
  row("mask oracle", fo);
  row("classical", fc);
  row("learned (LCSeg)", fl);
  table.Print();

  std::printf(
      "\nExpected shape: oracle ~perfect; classical close behind (exact "
      "tick OCR, small tracing error on dense charts); learned slightly "
      "behind classical but well above failure.\n");
  return 0;
}

}  // namespace
}  // namespace fcm

int main() { return fcm::Run(); }
