#include "bench/bench_common.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "vision/classical_extractor.h"

namespace fcm::bench {

BenchScale ReadScale() {
  BenchScale scale;
  const char* env = std::getenv("FCM_SCALE");
  if (env != nullptr && std::strcmp(env, "small") == 0) {
    scale.training_tables = 24;
    scale.query_tables = 12;
    scale.extra_tables = 40;
    scale.duplicates = 5;
    scale.k = 5;
    scale.epochs = 12;
  } else if (env != nullptr && std::strcmp(env, "large") == 0) {
    scale.training_tables = 120;
    scale.query_tables = 40;
    scale.extra_tables = 240;
    scale.duplicates = 15;
    scale.k = 15;
    scale.epochs = 40;
  }
  const char* epochs = std::getenv("FCM_EPOCHS");
  if (epochs != nullptr) scale.epochs = std::atoi(epochs);
  const char* train_tables = std::getenv("FCM_TRAIN_TABLES");
  if (train_tables != nullptr) scale.training_tables = std::atoi(train_tables);
  return scale;
}

benchgen::Benchmark BuildBench(const BenchScale& scale, double da_fraction) {
  benchgen::BenchmarkConfig config;
  config.num_training_tables = scale.training_tables;
  config.num_query_tables = scale.query_tables;
  config.extra_lake_tables = scale.extra_tables;
  config.duplicates_per_query = scale.duplicates;
  config.ground_truth_k = scale.k;
  config.da_query_fraction = da_fraction;
  config.seed = scale.seed;
  vision::ClassicalExtractor extractor;
  return benchgen::BuildBenchmark(config, extractor);
}

core::FcmConfig DefaultModelConfig(const BenchScale& scale) {
  core::FcmConfig config;
  config.epochs = scale.epochs;
  return config;
}

core::TrainOptions DefaultTrainOptions(const BenchScale& scale) {
  core::TrainOptions options;
  options.epochs = scale.epochs;
  return options;
}

void PrintHeader(const std::string& title, const std::string& paper_ref,
                 const BenchScale& scale) {
  std::printf("==========================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("Reproduces: %s\n", paper_ref.c_str());
  std::printf(
      "Scale: %d training tables, %d queries, %d background tables, "
      "%d dups/query, k=%d, %d epochs\n",
      scale.training_tables, scale.query_tables, scale.extra_tables,
      scale.duplicates, scale.k, scale.epochs);
  std::printf(
      "(absolute numbers differ from the paper's GPU-scale setup; the\n"
      " comparison *shape* across methods/conditions is the target)\n");
  std::printf("==========================================================\n");
  std::fflush(stdout);
}

std::string PrecCell(const eval::Aggregate& a) { return eval::Fmt3(a.prec); }
std::string NdcgCell(const eval::Aggregate& a) { return eval::Fmt3(a.ndcg); }

}  // namespace fcm::bench
