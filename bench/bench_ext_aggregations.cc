// Future-work extensions (paper Sec. IX "Nested aggregations" and
// "Multiple aggregations"): queries built from two-step aggregation
// pipelines, and queries whose lines are the same column under different
// aggregation operators. Compares FCM with and without the DA layers.

#include <cstdio>

#include "bench/bench_common.h"
#include "benchgen/futurework.h"
#include "eval/metrics.h"
#include "vision/classical_extractor.h"

namespace fcm {
namespace {

eval::Aggregate EvaluateExtension(
    const baselines::FcmMethod& fcm,
    const std::vector<benchgen::ExtensionQuery>& queries,
    const table::DataLake& lake, int k) {
  eval::Aggregate agg;
  // Materialize all records up front: FcmMethod caches per-query chart
  // encodings by QueryRecord address, so records must have stable,
  // distinct addresses for the whole evaluation.
  std::vector<benchgen::QueryRecord> records;
  records.reserve(queries.size());
  for (const auto& q : queries) {
    if (q.extracted.lines.empty() || q.relevant.empty()) continue;
    benchgen::QueryRecord record;
    record.extracted = q.extracted;
    record.underlying = q.underlying;
    record.y_lo = q.y_lo;
    record.y_hi = q.y_hi;
    record.relevant = q.relevant;
    records.push_back(std::move(record));
  }
  double prec = 0.0, ndcg = 0.0;
  for (const auto& record : records) {
    const auto ranked = eval::RankRepository(fcm, record, lake, k);
    prec += eval::PrecisionAtK(ranked, record.relevant, k);
    ndcg += eval::NdcgAtK(ranked, record.relevant, k);
    ++agg.count;
  }
  if (agg.count > 0) {
    agg.prec = prec / agg.count;
    agg.ndcg = ndcg / agg.count;
  }
  return agg;
}

int Run() {
  const bench::BenchScale scale = bench::ReadScale();
  bench::PrintHeader(
      "Extension: nested & multiple aggregations",
      "paper Sec. IX future work, 'Nested/Multiple aggregations'", scale);

  benchgen::Benchmark b = bench::BuildBench(scale);
  vision::ClassicalExtractor extractor;
  benchgen::FutureworkConfig ext_config;
  ext_config.num_queries = scale.query_tables;
  ext_config.duplicates_per_query = scale.duplicates;
  ext_config.ground_truth_k = scale.k;
  ext_config.chart_style = b.config.chart_style;

  const auto nested =
      benchgen::MakeNestedAggQueries(&b, extractor, ext_config);
  const auto multi = benchgen::MakeMultiAggQueries(&b, extractor, ext_config);
  std::printf("%zu nested-aggregation + %zu multi-aggregation queries\n",
              nested.size(), multi.size());

  core::FcmConfig full_config = bench::DefaultModelConfig(scale);
  core::FcmConfig ablated_config = full_config;
  ablated_config.use_da_layers = false;
  const core::TrainOptions train_options = bench::DefaultTrainOptions(scale);

  std::printf("fitting FCM ...\n");
  std::fflush(stdout);
  baselines::FcmMethod full(full_config, train_options);
  full.Fit(b.lake, b.training);
  std::printf("fitting FCM-DA ...\n");
  std::fflush(stdout);
  baselines::FcmMethod ablated(ablated_config, train_options);
  ablated.set_name("FCM-DA");
  ablated.Fit(b.lake, b.training);

  // Baseline condition: the main benchmark's single-aggregation queries.
  const eval::MethodResults full_main = eval::EvaluateMethod(full, b);
  const eval::MethodResults ablated_main = eval::EvaluateMethod(ablated, b);

  eval::ReportTable table({"Query family", "FCM prec", "FCM ndcg",
                           "FCM-DA prec", "FCM-DA ndcg"});
  table.AddRow({"single agg (paper Sec. V)",
                eval::Fmt3(full_main.WithDa().prec),
                eval::Fmt3(full_main.WithDa().ndcg),
                eval::Fmt3(ablated_main.WithDa().prec),
                eval::Fmt3(ablated_main.WithDa().ndcg)});
  const auto full_nested = EvaluateExtension(full, nested, b.lake, scale.k);
  const auto ablated_nested =
      EvaluateExtension(ablated, nested, b.lake, scale.k);
  table.AddRow({"nested (2-step pipeline)", eval::Fmt3(full_nested.prec),
                eval::Fmt3(full_nested.ndcg), eval::Fmt3(ablated_nested.prec),
                eval::Fmt3(ablated_nested.ndcg)});
  const auto full_multi = EvaluateExtension(full, multi, b.lake, scale.k);
  const auto ablated_multi =
      EvaluateExtension(ablated, multi, b.lake, scale.k);
  table.AddRow({"multiple ops, one column", eval::Fmt3(full_multi.prec),
                eval::Fmt3(full_multi.ndcg), eval::Fmt3(ablated_multi.prec),
                eval::Fmt3(ablated_multi.ndcg)});
  table.Print();

  std::printf(
      "\nExpected shape: the DA layers (and the DA-aware descriptor\n"
      "variants removed with them) help on every aggregated family.\n"
      "Multiple-operator charts give the matcher several views of the\n"
      "same column and rank easiest; nested pipelines remain the open\n"
      "problem the paper lists (no component models compositions).\n");
  return 0;
}

}  // namespace
}  // namespace fcm

int main() { return fcm::Run(); }
