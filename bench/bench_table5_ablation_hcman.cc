// Reproduces Table V: ablation of the hierarchical cross-modal attention
// network — FCM vs FCM-HCMAN (mean-pooled encoders + MLP), overall and by
// line-count stratum.

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"

namespace fcm {
namespace {

int Run() {
  const bench::BenchScale scale = bench::ReadScale();
  bench::PrintHeader("Table V: FCM vs FCM-HCMAN (matcher ablation)",
                     "paper Sec. VII-D1, Table V", scale);
  const benchgen::Benchmark b = bench::BuildBench(scale);

  core::FcmConfig full_config = bench::DefaultModelConfig(scale);
  core::FcmConfig ablated_config = full_config;
  ablated_config.use_hcman = false;
  const core::TrainOptions train_options =
      bench::DefaultTrainOptions(scale);

  baselines::FcmMethod full(full_config, train_options);
  baselines::FcmMethod ablated(ablated_config, train_options);
  ablated.set_name("FCM-HCMAN");

  std::printf("fitting FCM ...\n");
  std::fflush(stdout);
  full.Fit(b.lake, b.training);
  const eval::MethodResults full_results = eval::EvaluateMethod(full, b);
  std::printf("fitting FCM-HCMAN ...\n");
  std::fflush(stdout);
  ablated.Fit(b.lake, b.training);
  const eval::MethodResults ablated_results =
      eval::EvaluateMethod(ablated, b);

  eval::ReportTable table({"M", "FCM prec", "FCM ndcg", "FCM-HCMAN prec",
                           "FCM-HCMAN ndcg"});
  table.AddRow({"Overall", bench::PrecCell(full_results.Overall()),
                bench::NdcgCell(full_results.Overall()),
                bench::PrecCell(ablated_results.Overall()),
                bench::NdcgCell(ablated_results.Overall())});
  for (int bucket = 0; bucket < 4; ++bucket) {
    table.AddRow({benchgen::Benchmark::LineCountBucketName(bucket),
                  bench::PrecCell(full_results.ByLineBucket(bucket)),
                  bench::NdcgCell(full_results.ByLineBucket(bucket)),
                  bench::PrecCell(ablated_results.ByLineBucket(bucket)),
                  bench::NdcgCell(ablated_results.ByLineBucket(bucket))});
  }
  table.Print();

  std::printf(
      "\nPaper (Table V): FCM 0.454/0.347 vs FCM-HCMAN 0.368/0.267 "
      "overall; the fine-grained matcher's advantage grows with M.\n");
  return 0;
}

}  // namespace
}  // namespace fcm

int main() { return fcm::Run(); }
