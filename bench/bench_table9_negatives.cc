// Reproduces Table IX (appendix): impact of the number of negative
// samples N^- on effectiveness. Expected shape: rising to a plateau
// around N^- = 3, slight degradation for large N^-.

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"

namespace fcm {
namespace {

int Run() {
  bench::BenchScale scale = bench::ReadScale();
  scale.epochs = std::max(8, scale.epochs / 2);  // 8 models trained.
  bench::PrintHeader("Table IX: impact of the number of negatives N^-",
                     "paper Appendix D, Table IX", scale);
  const benchgen::Benchmark b = bench::BuildBench(scale);

  eval::ReportTable table({"N^-", "prec@k", "ndcg@k"});
  for (const int n_neg : {1, 2, 3, 4, 6, 8}) {
    core::FcmConfig config = bench::DefaultModelConfig(scale);
    core::TrainOptions train_options = bench::DefaultTrainOptions(scale);
    // 8 models: halve the pretraining budget per model.
    train_options.pretrain_pairs = 128;
    train_options.pretrain_epochs = 4;
    train_options.num_negatives = n_neg;
    // Batches must be able to supply N^- distinct negatives.
    train_options.batch_size =
        std::max(train_options.batch_size, n_neg + 2);
    baselines::FcmMethod fcm(config, train_options);
    std::printf("fitting FCM with N^- = %d ...\n", n_neg);
    std::fflush(stdout);
    fcm.Fit(b.lake, b.training);
    const eval::MethodResults results = eval::EvaluateMethod(fcm, b);
    table.AddRow({std::to_string(n_neg),
                  bench::PrecCell(results.Overall()),
                  bench::NdcgCell(results.Overall())});
  }
  table.Print();

  std::printf(
      "\nPaper (Table IX): prec rises from 0.147 (N^-=1) to ~0.212 at "
      "N^-=3, then plateaus and slightly degrades at N^-=8.\n");
  return 0;
}

}  // namespace
}  // namespace fcm

int main() { return fcm::Run(); }
