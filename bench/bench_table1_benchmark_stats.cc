// Reproduces Table I: statistical properties of the benchmark — query and
// repository counts stratified by the number of lines M.

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "eval/report.h"

namespace fcm {
namespace {

int Run() {
  const bench::BenchScale scale = bench::ReadScale();
  bench::PrintHeader("Table I: Statistical properties of the benchmark",
                     "paper Sec. VII-A, Table I", scale);
  const benchgen::Benchmark b = bench::BuildBench(scale);

  // Queries are stratified by their rendered line count. The paper's
  // "Repository" row counts the charts attached to repository tables; in
  // this benchmark those are the generated training charts, whose M is
  // sampled from the paper's 36/25/21/18% mix.
  std::vector<int> query_counts(4, 0);
  for (const auto& q : b.queries) {
    ++query_counts[static_cast<size_t>(
        benchgen::Benchmark::LineCountBucket(q.num_lines))];
  }
  std::vector<int> repo_counts(4, 0);
  int repo_total = 0;
  for (const auto& triplet : b.training) {
    ++repo_total;
    ++repo_counts[static_cast<size_t>(benchgen::Benchmark::LineCountBucket(
        static_cast<int>(triplet.underlying.size())))];
  }

  eval::ReportTable table({"", "Overall", "M=1", "M=2-4", "M=5-7", "M=>7"});
  table.AddRow({"Query", std::to_string(b.queries.size()),
                std::to_string(query_counts[0]),
                std::to_string(query_counts[1]),
                std::to_string(query_counts[2]),
                std::to_string(query_counts[3])});
  table.AddRow({"Repository", std::to_string(repo_total),
                std::to_string(repo_counts[0]),
                std::to_string(repo_counts[1]),
                std::to_string(repo_counts[2]),
                std::to_string(repo_counts[3])});
  table.Print();

  std::printf(
      "\nPaper (Table I): 200 queries / 10161 repo charts split "
      "74/48/44/34 and 3658/2540/2134/1829.\n");
  std::printf("Lake size: %zu tables, %zu training triplets.\n",
              b.lake.size(), b.training.size());
  return 0;
}

}  // namespace
}  // namespace fcm

int main() { return fcm::Run(); }
