// Future-work extension (paper Sec. IX "Multiple datasets"): line charts
// whose lines originate from different tables joined on a shared x value.
// Compares per-line assignment (core/multi_dataset.h) against naive
// whole-chart scoring, measuring recall of the true source-table set.

#include <algorithm>
#include <cstdio>

#include "bench/bench_common.h"
#include "benchgen/futurework.h"
#include "core/multi_dataset.h"
#include "vision/classical_extractor.h"

namespace fcm {
namespace {

/// Fraction of the true source tables recovered in the first `k` entries
/// of `ranked`.
double RecallAtK(const std::vector<table::TableId>& ranked,
                 const std::vector<table::TableId>& sources, size_t k) {
  size_t hit = 0;
  const size_t end = std::min(k, ranked.size());
  for (const auto tid : sources) {
    if (std::find(ranked.begin(), ranked.begin() + static_cast<long>(end),
                  tid) != ranked.begin() + static_cast<long>(end)) {
      ++hit;
    }
  }
  return sources.empty()
             ? 0.0
             : static_cast<double>(hit) / static_cast<double>(sources.size());
}

int Run() {
  const bench::BenchScale scale = bench::ReadScale();
  bench::PrintHeader(
      "Extension: multi-dataset queries (lines from different tables)",
      "paper Sec. IX future work, 'Multiple datasets'", scale);

  benchgen::Benchmark b = bench::BuildBench(scale);
  vision::ClassicalExtractor extractor;
  benchgen::FutureworkConfig ext_config;
  ext_config.num_queries = scale.query_tables;
  ext_config.chart_style = b.config.chart_style;
  const auto queries = benchgen::MakeMultiDatasetQueries(
      &b, extractor, ext_config, /*num_sources=*/2);
  std::printf("%zu multi-dataset queries (2 sources each), lake %zu\n",
              queries.size(), b.lake.size());

  std::printf("fitting FCM ...\n");
  std::fflush(stdout);
  baselines::FcmMethod fcm(bench::DefaultModelConfig(scale),
                           bench::DefaultTrainOptions(scale));
  fcm.Fit(b.lake, b.training);
  const core::FcmModel& model = *fcm.model();

  // Pre-encode the lake once for both strategies.
  std::vector<core::DatasetRepresentation> encodings;
  encodings.reserve(b.lake.size());
  for (const auto& t : b.lake.tables()) {
    encodings.push_back(core::FcmModel::Detach(model.EncodeDataset(t)));
  }

  const size_t k_set = 2;    // |source set|.
  const size_t k_wide = 5;   // A wider budget.
  double per_line_r2 = 0.0, per_line_r5 = 0.0;
  double whole_r2 = 0.0, whole_r5 = 0.0;
  int n = 0;
  core::MultiDatasetOptions md_options;
  md_options.per_line_k = static_cast<int>(k_wide);
  md_options.encodings = &encodings;

  for (const auto& q : queries) {
    if (q.extracted.lines.empty()) continue;
    // Strategy A: per-line assignment.
    const auto result =
        core::DiscoverMultiDataset(model, q.extracted, b.lake, md_options);
    per_line_r2 += RecallAtK(result.tables, q.source_tables, k_set);
    per_line_r5 += RecallAtK(result.tables, q.source_tables, k_wide);

    // Strategy B: whole-chart scoring (what plain FCM would do).
    const auto chart_rep =
        core::FcmModel::Detach(model.EncodeChart(q.extracted));
    std::vector<std::pair<double, table::TableId>> scored;
    for (const auto& t : b.lake.tables()) {
      scored.emplace_back(
          model.ScoreEncoded(chart_rep,
                             encodings[static_cast<size_t>(t.id())], q.y_lo,
                             q.y_hi),
          t.id());
    }
    std::sort(scored.begin(), scored.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });
    std::vector<table::TableId> ranked;
    for (const auto& [s, tid] : scored) ranked.push_back(tid);
    whole_r2 += RecallAtK(ranked, q.source_tables, k_set);
    whole_r5 += RecallAtK(ranked, q.source_tables, k_wide);
    ++n;
  }
  if (n == 0) {
    std::printf("no queries extracted; aborting\n");
    return 1;
  }

  eval::ReportTable table({"Strategy", "recall@2", "recall@5"});
  table.AddRow({"per-line assignment", eval::Fmt3(per_line_r2 / n),
                eval::Fmt3(per_line_r5 / n)});
  table.AddRow({"whole-chart scoring", eval::Fmt3(whole_r2 / n),
                eval::Fmt3(whole_r5 / n)});
  table.Print();

  std::printf(
      "\nExpected shape: per-line assignment recovers more of the true\n"
      "source set than whole-chart scoring, which can only surface one\n"
      "table per query (paper Sec. IX motivates exactly this split).\n");
  return 0;
}

}  // namespace
}  // namespace fcm

int main() { return fcm::Run(); }
