// Search-pipeline throughput benchmark: index build and batched query
// serving at 1/2/N threads over a synthetic lake, async-serving phases
// (concurrent submitters against AsyncSearchService's futures queue in
// closed- and open-loop shapes, static and adaptive batching, reporting
// QPS plus closed-loop p50/p99 latency and the adaptive controller's
// decision trace), a fault-injection phase (a keyed failpoint poisons a
// known subset of request ids; the "faults" JSON section records recovery
// QPS and blast-radius isolation), sharded-LSH build and
// candidate-generation phases, and a "quant" phase comparing the int8
// quantized embedding tier against f32 (memory footprint, QPS, top-k
// recall with its gating floor, determinism, snapshot round-trip) over a
// dim-32 model, and an "ingest" phase (serving QPS/p99 while a writer
// appends tables at a fixed cadence with background + forced mid-stream
// compaction, gated on the epoch-determinism verdict: the post-append
// engine must rank bit-identically to a from-scratch build), emitting
// machine-readable JSON (written to --out=PATH or the path in argv[1])
// so perf PRs can track the BENCH_*.json trajectory.
// A "machine" section (nproc, CPU model, active SIMD target) makes runs
// comparable across hosts.
// Parallel/sharded/async and serial paths must return identical top-k
// rankings, and the async service must drop nothing in block mode; the
// JSON records every check and the exit code is nonzero when any fails.
// docs/BENCHMARKS.md documents every emitted field.
//
// Batching knobs are CLI flags so bench configs are reproducible from
// the command line (tools/run_benchmarks.sh passes them):
//   --out=PATH              also write the JSON here (same as argv[1])
//   --async-queue=N         request-queue capacity        (default 64)
//   --async-max-batch=N     micro-batch size cap          (default 16)
//   --async-max-delay-ms=X  static coalesce window, also the adaptive
//                           controller's window cap       (default 2.0)
//   --async-adaptive=0|1    run the adaptive phases + comparison (def. 1)
//
// Scale knobs: FCM_BENCH_TABLES (default 96), FCM_BENCH_QUERIES (default
// 24), FCM_BENCH_LSH_ITEMS (default 20000), FCM_BENCH_ASYNC_REQUESTS
// (default 160), FCM_BENCH_ASYNC_SUBMITTERS (default 4). Runtime is a
// couple of minutes at the defaults on one core.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "chart/renderer.h"
#include "index/async_service.h"
#include "index/ingest.h"
#include "common/failpoint.h"
#include "common/rng.h"
#include "common/simd.h"
#include "common/thread_pool.h"
#include "core/fcm_config.h"
#include "core/fcm_model.h"
#include "index/lsh.h"
#include "index/search_engine.h"
#include "nn/ops.h"
#include "nn/tensor.h"
#include "storage/snapshot.h"
#include "table/data_lake.h"
#include "vision/mask_oracle_extractor.h"

namespace {

using Clock = std::chrono::steady_clock;

double Seconds(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

int EnvInt(const char* name, int fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atoi(v) : fallback;
}

/// CLI-selectable batching knobs (reproducible bench configs; see the
/// file comment). Everything else stays an FCM_BENCH_* env knob.
struct BenchFlags {
  std::string out;
  size_t async_queue = 64;
  size_t async_max_batch = 16;
  double async_max_delay_ms = 2.0;
  bool async_adaptive = true;
};

bool ParseFlag(const std::string& arg, const char* name, std::string* value) {
  const std::string prefix = std::string("--") + name + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *value = arg.substr(prefix.size());
  return true;
}

/// Returns false (after printing usage) on an unknown or malformed flag.
bool ParseArgs(int argc, char** argv, BenchFlags* flags) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string value;
    if (ParseFlag(arg, "out", &value)) {
      flags->out = value;
    } else if (ParseFlag(arg, "async-queue", &value)) {
      flags->async_queue = static_cast<size_t>(std::atoll(value.c_str()));
    } else if (ParseFlag(arg, "async-max-batch", &value)) {
      flags->async_max_batch = static_cast<size_t>(std::atoll(value.c_str()));
    } else if (ParseFlag(arg, "async-max-delay-ms", &value)) {
      flags->async_max_delay_ms = std::atof(value.c_str());
    } else if (ParseFlag(arg, "async-adaptive", &value)) {
      flags->async_adaptive = value != "0" && value != "false";
    } else if (arg.rfind("--", 0) != 0 && flags->out.empty()) {
      flags->out = arg;  // Legacy positional output path.
    } else {
      std::fprintf(stderr,
                   "unknown argument '%s'\nusage: %s [--out=PATH] "
                   "[--async-queue=N] [--async-max-batch=N] "
                   "[--async-max-delay-ms=X] [--async-adaptive=0|1] "
                   "[OUT_PATH]\n",
                   arg.c_str(), argv[0]);
      return false;
    }
  }
  if (flags->async_queue == 0 || flags->async_max_batch == 0 ||
      flags->async_max_delay_ms < 0.0) {
    std::fprintf(stderr, "invalid async batching flags\n");
    return false;
  }
  return true;
}

bool SameHits(const std::vector<fcm::index::SearchHit>& a,
              const std::vector<fcm::index::SearchHit>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].table_id != b[i].table_id || a[i].score != b[i].score) {
      return false;
    }
  }
  return true;
}

bool SameHitLists(const std::vector<std::vector<fcm::index::SearchHit>>& a,
                  const std::vector<std::vector<fcm::index::SearchHit>>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!SameHits(a[i], b[i])) return false;
  }
  return true;
}

/// One async serving phase: `submitters` threads drive `requests`
/// requests at the service. Closed loop waits for each response before
/// submitting the next (per-request latency is meaningful); open loop
/// fires every request as fast as backpressure admits it and latency is
/// queueing-dominated, so only throughput is reported.
struct AsyncPhaseResult {
  double seconds = 0.0;
  double qps = 0.0;
  double p50_ms = 0.0;  // Closed loop only.
  double p99_ms = 0.0;  // Closed loop only.
  bool identical = true;
  bool clean = false;
  fcm::index::AsyncServiceStats stats;
  std::vector<fcm::index::AdaptiveBatchController::TraceEntry> trace;
};

AsyncPhaseResult RunAsyncPhase(
    const fcm::index::SearchEngine& engine,
    const fcm::index::AsyncServiceOptions& options,
    const std::vector<fcm::vision::ExtractedChart>& queries,
    const std::vector<std::vector<fcm::index::SearchHit>>& reference, int k,
    fcm::index::IndexStrategy strategy, int requests, int submitters,
    bool open_loop) {
  AsyncPhaseResult out;
  std::vector<double> latencies_ms(static_cast<size_t>(requests), 0.0);
  std::atomic<bool> identical{true};
  std::atomic<int> next_request{0};
  fcm::index::AsyncSearchService service(&engine, options);
  const auto t_phase = Clock::now();
  if (open_loop) {
    // Submitters only enqueue; the main thread collects every future, so
    // the clock stops when the last response lands.
    std::vector<std::future<std::vector<fcm::index::SearchHit>>> futures(
        static_cast<size_t>(requests));
    std::vector<std::thread> threads;
    for (int s = 0; s < submitters; ++s) {
      threads.emplace_back([&]() {
        for (;;) {
          const int r = next_request.fetch_add(1);
          if (r >= requests) break;
          const size_t qi = static_cast<size_t>(r) % queries.size();
          futures[static_cast<size_t>(r)] = service.Submit(queries[qi], k,
                                                           strategy);
        }
      });
    }
    for (auto& t : threads) t.join();
    for (int r = 0; r < requests; ++r) {
      const size_t qi = static_cast<size_t>(r) % queries.size();
      if (!SameHits(futures[static_cast<size_t>(r)].get(), reference[qi])) {
        identical.store(false);
      }
    }
  } else {
    std::vector<std::thread> threads;
    for (int s = 0; s < submitters; ++s) {
      threads.emplace_back([&]() {
        for (;;) {
          const int r = next_request.fetch_add(1);
          if (r >= requests) break;
          const size_t qi = static_cast<size_t>(r) % queries.size();
          const auto t0 = Clock::now();
          auto hits = service.Submit(queries[qi], k, strategy).get();
          latencies_ms[static_cast<size_t>(r)] = Seconds(t0) * 1e3;
          if (!SameHits(hits, reference[qi])) identical.store(false);
        }
      });
    }
    for (auto& t : threads) t.join();
  }
  out.seconds = Seconds(t_phase);
  service.Shutdown();
  out.stats = service.stats();
  out.trace = service.controller_trace();
  out.identical = identical.load();
  out.qps = static_cast<double>(requests) / std::max(out.seconds, 1e-9);
  if (!open_loop) {
    std::sort(latencies_ms.begin(), latencies_ms.end());
    out.p50_ms = latencies_ms[latencies_ms.size() / 2];
    out.p99_ms = latencies_ms[std::min(latencies_ms.size() - 1,
                                       latencies_ms.size() * 99 / 100)];
  }
  // Block mode must not drop or reject anything.
  out.clean = out.identical && out.stats.rejected == 0 &&
              out.stats.cancelled == 0 && out.stats.failed == 0 &&
              out.stats.completed == static_cast<uint64_t>(requests);
  return out;
}

std::vector<std::vector<float>> RandomEmbeddings(int n, int dim,
                                                 uint64_t seed) {
  fcm::common::Rng rng(seed);
  std::vector<std::vector<float>> out(static_cast<size_t>(n));
  for (auto& v : out) {
    v.resize(static_cast<size_t>(dim));
    for (auto& x : v) x = static_cast<float>(rng.Normal());
  }
  return out;
}

/// Per-kernel GFLOP/s for one dispatch target: the float32 dot product
/// (LSH codes / GemmAccumulateBt shape), the full MatMul GEMM path, and
/// the int8 quantized-tier kernels (GOPS = multiply-accumulate ops/s, the
/// f32-equivalent work rate).
struct SimdKernelRates {
  fcm::simd::Target target;
  double dot_f32_gflops = 0.0;
  double gemm_gflops = 0.0;
  double dot_i8_gops = 0.0;
  double gemm_i8f32_gops = 0.0;
};

SimdKernelRates MeasureKernelRates(fcm::simd::Target target) {
  SimdKernelRates out{target, 0.0, 0.0, 0.0, 0.0};
  constexpr size_t kDotN = 4096;
  constexpr int kGemmN = 160;
  fcm::common::Rng rng(404);
  std::vector<float> a(kDotN), b(kDotN);
  for (auto& x : a) x = static_cast<float>(rng.Normal());
  for (auto& x : b) x = static_cast<float>(rng.Normal());
  // Dot: run enough repetitions for a stable sub-second measurement.
  constexpr int kDotReps = 20000;
  float sink = 0.0f;
  const auto t_dot = Clock::now();
  for (int r = 0; r < kDotReps; ++r) {
    sink += fcm::simd::DotF32(a.data(), b.data(), kDotN);
  }
  const double dot_secs = Seconds(t_dot);
  out.dot_f32_gflops = 2.0 * static_cast<double>(kDotN) * kDotReps /
                       std::max(dot_secs, 1e-9) / 1e9;
  fcm::nn::Tensor ta =
      fcm::nn::Tensor::RandomNormal({kGemmN, kGemmN}, 1.0f, &rng, false);
  fcm::nn::Tensor tb =
      fcm::nn::Tensor::RandomNormal({kGemmN, kGemmN}, 1.0f, &rng, false);
  constexpr int kGemmReps = 20;
  const auto t_gemm = Clock::now();
  for (int r = 0; r < kGemmReps; ++r) {
    sink += fcm::nn::MatMul(ta, tb).data()[0];
  }
  const double gemm_secs = Seconds(t_gemm);
  out.gemm_gflops = 2.0 * std::pow(static_cast<double>(kGemmN), 3) *
                    kGemmReps / std::max(gemm_secs, 1e-9) / 1e9;
  // Int8 quantized-tier kernels on the same dot shape: codes in
  // [-127, 127] (the quantizer's range contract).
  std::vector<int8_t> qa(kDotN), qb(kDotN);
  for (size_t i = 0; i < kDotN; ++i) {
    qa[i] = static_cast<int8_t>(static_cast<int>(rng.Uniform() * 255.0) - 127);
    qb[i] = static_cast<int8_t>(static_cast<int>(rng.Uniform() * 255.0) - 127);
  }
  int64_t isink = 0;
  const auto t_dot_i8 = Clock::now();
  for (int r = 0; r < kDotReps; ++r) {
    isink += fcm::simd::DotI8(qa.data(), qb.data(), kDotN);
  }
  const double dot_i8_secs = Seconds(t_dot_i8);
  out.dot_i8_gops = 2.0 * static_cast<double>(kDotN) * kDotReps /
                    std::max(dot_i8_secs, 1e-9) / 1e9;
  // GEMM shape of the mean-similarity prefilter: one quantized query row
  // against a block of candidate rows.
  constexpr size_t kGemmRows = 64;
  constexpr size_t kGemmDim = 64;
  std::vector<int8_t> gb(kGemmRows * kGemmDim);
  for (auto& x : gb) {
    x = static_cast<int8_t>(static_cast<int>(rng.Uniform() * 255.0) - 127);
  }
  std::vector<float> scales(kGemmRows, 0.01f), c(kGemmRows);
  constexpr int kGemmI8Reps = 40000;
  const auto t_gemm_i8 = Clock::now();
  for (int r = 0; r < kGemmI8Reps; ++r) {
    fcm::simd::GemmI8F32(qa.data(), gb.data(), kGemmDim, kGemmDim, 0.02f,
                         scales.data(), c.data(), kGemmRows);
    sink += c[0];
  }
  const double gemm_i8_secs = Seconds(t_gemm_i8);
  out.gemm_i8f32_gops = 2.0 * static_cast<double>(kGemmRows * kGemmDim) *
                        kGemmI8Reps / std::max(gemm_i8_secs, 1e-9) / 1e9;
  // Keep the accumulated sinks observable so the loops cannot be elided.
  if (sink == 12345.678f || isink == 987654321) {
    std::fprintf(stderr, "%f %lld\n", sink, static_cast<long long>(isink));
  }
  return out;
}

/// First "model name" line from /proc/cpuinfo ("unknown" elsewhere) for
/// the JSON "machine" section.
std::string CpuModelName() {
  std::FILE* f = std::fopen("/proc/cpuinfo", "r");
  if (f == nullptr) return "unknown";
  char line[256];
  std::string model = "unknown";
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, "model name", 10) == 0) {
      const char* colon = std::strchr(line, ':');
      if (colon != nullptr) {
        model = colon + 1;
        // Trim surrounding whitespace/newline and JSON-hostile quotes.
        while (!model.empty() &&
               (model.front() == ' ' || model.front() == '\t')) {
          model.erase(model.begin());
        }
        while (!model.empty() &&
               (model.back() == '\n' || model.back() == ' ')) {
          model.pop_back();
        }
        for (auto& ch : model) {
          if (ch == '"' || ch == '\\') ch = '\'';
        }
      }
      break;
    }
  }
  std::fclose(f);
  return model;
}

}  // namespace

int main(int argc, char** argv) {
  BenchFlags flags;
  if (!ParseArgs(argc, argv, &flags)) return 64;
  const int num_tables = EnvInt("FCM_BENCH_TABLES", 96);
  const int num_queries = EnvInt("FCM_BENCH_QUERIES", 24);
  const int lsh_items = EnvInt("FCM_BENCH_LSH_ITEMS", 20000);
  const int k = 10;
  const int hardware =
      std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
  bool all_identical = true;
  char buf[256];

  // Synthetic lake of mixed sinusoid tables (same substrate as the index
  // tests, scaled up). A pure function of i, so the ingest phase below
  // can rebuild any prefix/suffix of the same logical lake.
  const auto make_bench_table = [](int i) {
    fcm::table::Table t;
    for (int c = 0; c < 3; ++c) {
      std::vector<double> v(96);
      for (size_t j = 0; j < v.size(); ++j) {
        v[j] = std::sin(static_cast<double>(j) * (0.03 + 0.011 * (i % 17)) +
                        1.3 * c) *
                   (2.0 + (i % 7)) +
               0.8 * c;
      }
      t.AddColumn(fcm::table::Column("c" + std::to_string(c), std::move(v)));
    }
    return t;
  };
  fcm::table::DataLake lake;
  for (int i = 0; i < num_tables; ++i) lake.Add(make_bench_table(i));

  fcm::core::FcmConfig config;
  config.embed_dim = 16;
  config.num_layers = 1;
  config.strip_height = 16;
  config.strip_width = 64;
  config.line_segment_width = 16;
  config.column_length = 64;
  config.data_segment_size = 16;
  fcm::core::FcmModel model(config);

  std::vector<fcm::vision::ExtractedChart> queries;
  fcm::vision::MaskOracleExtractor oracle;
  for (int q = 0; q < num_queries; ++q) {
    fcm::table::DataSeries d;
    d.y = lake.Get(q % num_tables).column(q % 3).values;
    queries.push_back(oracle.Extract(fcm::chart::RenderLineChart({d})).value());
  }

  // ---- Index build at each (threads, shards) configuration ----
  // num_shards 0 resolves to the thread count; the final row pins a single
  // shard at full thread count to isolate the sharded-build effect.
  struct EngineConfig {
    int threads;
    int shards;  // 0 = resolve to threads.
  };
  std::vector<int> thread_counts = {1, 2, hardware};
  std::sort(thread_counts.begin(), thread_counts.end());
  thread_counts.erase(
      std::unique(thread_counts.begin(), thread_counts.end()),
      thread_counts.end());
  std::vector<EngineConfig> engine_configs;
  for (int threads : thread_counts) engine_configs.push_back({threads, 0});
  if (hardware > 1) engine_configs.push_back({hardware, 1});

  struct BuildRow {
    int threads;
    int shards;
    double seconds;
    double lsh_seconds;
  };
  std::vector<BuildRow> builds;
  std::vector<std::unique_ptr<fcm::index::SearchEngine>> engines;
  for (const auto& ec : engine_configs) {
    fcm::index::SearchEngineOptions options;
    options.num_threads = ec.threads;
    options.lsh.num_shards = ec.shards;
    auto engine = std::make_unique<fcm::index::SearchEngine>(&model, &lake);
    const auto t0 = Clock::now();
    engine->BuildWithOptions(options);
    // Record the resolved (power-of-two) shard count, not the request —
    // the trajectory file must label configurations accurately.
    builds.push_back({ec.threads, engine->build_stats().lsh_shards,
                      Seconds(t0), engine->build_stats().lsh_build_seconds});
    engines.push_back(std::move(engine));
  }
  fcm::index::SearchEngine& serial_engine = *engines.front();

  const auto strategy = fcm::index::IndexStrategy::kNoIndex;

  // ---- Per-query serving on the serial engine (baseline) ----
  const auto t_serial = Clock::now();
  std::vector<std::vector<fcm::index::SearchHit>> serial_results;
  serial_results.reserve(queries.size());
  for (const auto& q : queries) {
    serial_results.push_back(serial_engine.Search(q, k, strategy));
  }
  const double serial_seconds = Seconds(t_serial);

  // ---- Batched serving at each configuration ----
  struct SearchRow {
    int threads;
    int shards;
    double seconds;
    bool identical;
  };
  std::vector<SearchRow> searches;
  for (size_t e = 0; e < engines.size(); ++e) {
    const auto t0 = Clock::now();
    const auto results = engines[e]->SearchBatch(queries, k, strategy);
    const double secs = Seconds(t0);
    const bool identical = SameHitLists(results, serial_results);
    all_identical = all_identical && identical;
    searches.push_back(
        {builds[e].threads, builds[e].shards, secs, identical});
  }

  // ---- Ranking determinism across shard and thread counts ----
  // For the strategies that consult the LSH index, every engine's batched
  // ranking (including tie order) must equal the serial engine's
  // per-query ranking.
  struct DeterminismRow {
    const char* strategy;
    bool identical;
  };
  std::vector<DeterminismRow> determinism;
  for (const auto s : {fcm::index::IndexStrategy::kLsh,
                       fcm::index::IndexStrategy::kHybrid}) {
    std::vector<std::vector<fcm::index::SearchHit>> reference;
    reference.reserve(queries.size());
    for (const auto& q : queries) {
      reference.push_back(serial_engine.Search(q, k, s));
    }
    bool identical = true;
    for (auto& engine : engines) {
      identical =
          identical && SameHitLists(engine->SearchBatch(queries, k, s),
                                    reference);
    }
    all_identical = all_identical && identical;
    determinism.push_back({fcm::index::IndexStrategyName(s), identical});
  }

  // ---- Async serving: closed- and open-loop phases vs a serial loop ----
  // All phases run block-mode backpressure (nothing may be dropped) and
  // every response is checked bit-identical against Search. The baseline
  // is the plain serial loop a caller without the service would write:
  // one thread, one Search per request, on the same engine. Closed loop
  // measures the latency story (a static coalesce window inflates p99
  // when the queue never backs up); open loop measures the throughput
  // story (immediate dispatch forfeits coalescing when arrivals pause).
  // The adaptive phases run the queue-depth controller, which must match
  // the best static configuration on both axes from one configuration.
  const int async_requests = EnvInt("FCM_BENCH_ASYNC_REQUESTS", 160);
  const int async_submitters =
      std::max(1, EnvInt("FCM_BENCH_ASYNC_SUBMITTERS", 4));
  fcm::index::SearchEngine& hw_engine = *engines[thread_counts.size() - 1];
  std::vector<std::vector<fcm::index::SearchHit>> async_reference(
      queries.size());
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    async_reference[qi] = hw_engine.Search(queries[qi], k, strategy);
  }
  const auto t_async_serial = Clock::now();
  for (int r = 0; r < async_requests; ++r) {
    hw_engine.Search(queries[static_cast<size_t>(r) % queries.size()], k,
                     strategy);
  }
  const double async_serial_seconds = Seconds(t_async_serial);
  const double async_serial_qps = static_cast<double>(async_requests) /
                                  std::max(async_serial_seconds, 1e-9);

  // The adaptive controller's window cap: the static window, floored so
  // a delay-0 CLI config still leaves the controller room to coalesce.
  // One variable so the options the phases run with and the max_delay_ms
  // the JSON reports cannot drift apart.
  const double adaptive_delay_cap_ms = std::max(flags.async_max_delay_ms, 0.5);
  const auto make_options = [&](double delay_ms, bool adaptive) {
    fcm::index::AsyncServiceOptions options;
    options.queue_capacity = flags.async_queue;
    options.backpressure = fcm::index::BackpressureMode::kBlock;
    options.max_batch_size = flags.async_max_batch;
    options.max_batch_delay_ms = delay_ms;
    options.adaptive = adaptive;
    if (adaptive) {
      // Fair comparison: the controller's window cap is the static
      // window, its size cap the static batch cap (inherited via 0).
      options.adaptive_config.max_delay_ms = adaptive_delay_cap_ms;
      options.adaptive_config.max_batch_size = 0;
    }
    return options;
  };
  struct AsyncPhase {
    const char* name;
    bool open_loop;
    bool adaptive;
    double delay_ms;  // Static window; ignored when adaptive.
    AsyncPhaseResult result;
  };
  std::vector<AsyncPhase> phases = {
      {"closed_delay0", false, false, 0.0, {}},
      {"closed_static", false, false, flags.async_max_delay_ms, {}},
      {"open_delay0", true, false, 0.0, {}},
      {"open_static", true, false, flags.async_max_delay_ms, {}},
  };
  if (flags.async_adaptive) {
    phases.push_back({"closed_adaptive", false, true, 0.0, {}});
    phases.push_back({"open_adaptive", true, true, 0.0, {}});
  }
  bool async_all_clean = true;
  for (auto& phase : phases) {
    phase.result = RunAsyncPhase(
        hw_engine, make_options(phase.delay_ms, phase.adaptive), queries,
        async_reference, k, strategy, async_requests, async_submitters,
        phase.open_loop);
    async_all_clean = async_all_clean && phase.result.clean;
  }
  all_identical = all_identical && async_all_clean;

  // Adaptive acceptance numbers: one adaptive configuration must match
  // (within measurement noise on a loaded container) the best static
  // open-loop QPS and the delay-0 closed-loop p99. Recorded in the JSON;
  // correctness (identical hits, zero drops) gates the exit code, perf
  // ratios are trajectory data.
  const AsyncPhaseResult* closed_delay0 = &phases[0].result;
  const AsyncPhaseResult* closed_adaptive = nullptr;
  const AsyncPhaseResult* open_adaptive = nullptr;
  double best_static_open_qps = 0.0;
  for (const auto& phase : phases) {
    if (phase.open_loop && !phase.adaptive) {
      best_static_open_qps = std::max(best_static_open_qps, phase.result.qps);
    }
    if (phase.adaptive) {
      (phase.open_loop ? open_adaptive : closed_adaptive) = &phase.result;
    }
  }

  // ---- Fault-injection serving: blast-radius isolation + recovery ----
  // Submitting from one thread makes request ids deterministic (the
  // service assigns 1..N in Submit order), so a keyed failpoint at the
  // per-query scoring site poisons a known subset: every id = 3 mod 10.
  // Three passes over the same workload measure the whole story: healthy
  // (baseline QPS), armed (poisoned requests must fail alone — neighbors
  // in their coalesced batches stay bit-identical — at whatever QPS the
  // re-run recovery path sustains), and recovered (disarmed again; the
  // service must serve exactly like before the faults). Isolation and
  // recovery gate the exit code; the QPS ratios are trajectory data.
  struct FaultPass {
    double seconds = 0.0;
    double qps = 0.0;
    uint64_t ok = 0;
    uint64_t faulted = 0;
    bool isolation_ok = true;  // Failures exactly on the poisoned set.
    fcm::index::AsyncServiceStats stats;
  };
  auto fault_options = make_options(0.0, false);
  // The breaker is covered by the stress tests; here it is disabled so
  // the phase isolates the per-batch recovery cost.
  fault_options.breaker_threshold = 0;
  const auto run_fault_pass = [&](bool armed) {
    FaultPass out;
    fcm::index::AsyncSearchService service(&hw_engine, fault_options);
    std::vector<std::future<std::vector<fcm::index::SearchHit>>> futures(
        static_cast<size_t>(async_requests));
    const auto t0 = Clock::now();
    for (int r = 0; r < async_requests; ++r) {
      futures[static_cast<size_t>(r)] = service.Submit(
          queries[static_cast<size_t>(r) % queries.size()], k, strategy);
    }
    for (int r = 0; r < async_requests; ++r) {
      const size_t qi = static_cast<size_t>(r) % queries.size();
      // Submit order == id order on a single submitter thread.
      const bool poisoned = armed && (static_cast<uint64_t>(r) + 1) % 10 == 3;
      try {
        const auto hits = futures[static_cast<size_t>(r)].get();
        ++out.ok;
        if (poisoned || !SameHits(hits, async_reference[qi])) {
          out.isolation_ok = false;
        }
      } catch (const fcm::common::failpoint::FailpointError&) {
        ++out.faulted;
        if (!poisoned) out.isolation_ok = false;
      } catch (...) {
        out.isolation_ok = false;  // Outside the documented taxonomy.
      }
    }
    out.seconds = Seconds(t0);
    service.Shutdown();
    out.stats = service.stats();
    out.qps = static_cast<double>(async_requests) /
              std::max(out.seconds, 1e-9);
    return out;
  };
  const FaultPass fault_healthy = run_fault_pass(false);
  uint64_t fault_injected = 0;
  for (int r = 0; r < async_requests; ++r) {
    if ((static_cast<uint64_t>(r) + 1) % 10 == 3) ++fault_injected;
  }
  {
    fcm::common::failpoint::Spec poison;
    poison.matcher = [](uint64_t key) { return key % 10 == 3; };
    fcm::common::failpoint::Arm("engine.score_query", std::move(poison));
  }
  const FaultPass fault_armed = run_fault_pass(true);
  fcm::common::failpoint::DisarmAll();
  const FaultPass fault_recovered = run_fault_pass(false);
  const bool fault_phase_ok =
      fault_healthy.isolation_ok && fault_healthy.faulted == 0 &&
      fault_armed.isolation_ok && fault_armed.faulted == fault_injected &&
      fault_armed.ok ==
          static_cast<uint64_t>(async_requests) - fault_injected &&
      fault_armed.stats.failed == fault_injected &&
      (fault_injected == 0 || fault_armed.stats.retried > 0) &&
      fault_recovered.isolation_ok && fault_recovered.faulted == 0;
  all_identical = all_identical && fault_phase_ok;

  // ---- Sharded LSH build + candidate generation (index layer only) ----
  // The engine-level lake keeps LSH build in the microseconds, so this
  // phase scales the index layer alone: one batch insert of `lsh_items`
  // embeddings, unsharded (legacy serial) vs sharded across the pool,
  // then batched candidate generation on both indexes.
  fcm::index::LshConfig lsh_base;
  lsh_base.num_bits = 16;
  lsh_base.num_tables = 8;
  const int lsh_dim = 32;
  const auto embeddings = RandomEmbeddings(lsh_items, lsh_dim, 101);
  const auto lsh_queries = RandomEmbeddings(256, lsh_dim, 102);
  std::vector<fcm::index::LshInsertItem> items(embeddings.size());
  for (size_t i = 0; i < embeddings.size(); ++i) {
    // Three consecutive columns per synthetic table.
    items[i] = {embeddings[i].data(), static_cast<int64_t>(i / 3)};
  }
  fcm::common::ThreadPool lsh_pool(hardware);

  auto unsharded_config = lsh_base;
  unsharded_config.num_shards = 1;
  fcm::index::RandomHyperplaneLsh unsharded(lsh_dim, unsharded_config);
  const auto t_unsharded = Clock::now();
  unsharded.InsertBatch(items, &lsh_pool);
  const double unsharded_build = Seconds(t_unsharded);

  // max(2, ...) keeps the sharded code path exercised (and the candidate
  // equivalence check meaningful) even on a single-core machine, where it
  // would otherwise collapse onto the serial fallback.
  auto sharded_config = lsh_base;
  sharded_config.num_shards = std::max(2, hardware);
  fcm::index::RandomHyperplaneLsh sharded(lsh_dim, sharded_config);
  const auto t_sharded = Clock::now();
  sharded.InsertBatch(items, &lsh_pool);
  const double sharded_build = Seconds(t_sharded);

  const auto t_query_serial = Clock::now();
  const auto unsharded_hits = unsharded.QueryBatch(lsh_queries, nullptr);
  const double query_serial_seconds = Seconds(t_query_serial);
  const auto t_query_batch = Clock::now();
  const auto sharded_hits = sharded.QueryBatch(lsh_queries, &lsh_pool);
  const double query_batch_seconds = Seconds(t_query_batch);
  const bool candidates_identical = sharded_hits == unsharded_hits;
  all_identical = all_identical && candidates_identical;

  // ---- Snapshot: save / open vs rebuild (cold-start serving) ----
  // The case for frozen storage: a serving process that OpenSnapshot()s a
  // saved engine must come up faster than one that re-encodes the lake
  // (rebuild at full hardware parallelism — the honest baseline), and
  // must rank bit-identically to the engine that saved the snapshot,
  // under every pruning strategy.
  const std::string snap_path = "/tmp/fcm_bench_snapshot.fcmsnap";
  fcm::index::SearchEngineOptions rebuild_options;
  rebuild_options.num_threads = hardware;
  const auto t_rebuild = Clock::now();
  fcm::index::SearchEngine rebuilt(&model, &lake);
  rebuilt.BuildWithOptions(rebuild_options);
  const double rebuild_seconds = Seconds(t_rebuild);

  const auto t_save = Clock::now();
  const auto save_status = rebuilt.SaveSnapshot(snap_path);
  const double save_seconds = Seconds(t_save);
  bool snapshot_ok = save_status.ok();
  double open_seconds = 0.0, open_heap_seconds = 0.0;
  size_t snapshot_bytes = 0;
  bool snapshot_identical = snapshot_ok;
  if (snapshot_ok) {
    const auto t_open = Clock::now();
    auto snap = fcm::index::SearchEngine::OpenSnapshot(snap_path);
    open_seconds = Seconds(t_open);
    snapshot_ok = snap.ok();
    if (snap.ok()) {
      fcm::index::SnapshotOpenOptions heap_options;
      heap_options.use_mmap = false;
      const auto t_heap = Clock::now();
      auto heap_snap =
          fcm::index::SearchEngine::OpenSnapshot(snap_path, heap_options);
      open_heap_seconds = Seconds(t_heap);
      snapshot_ok = snapshot_ok && heap_snap.ok();
      {
        auto reader = fcm::storage::SnapshotReader::Open(snap_path);
        if (reader.ok()) snapshot_bytes = reader.value()->file_bytes();
      }
      // Equivalence across every strategy: snapshot-served rankings
      // (mmap and heap) vs the engine that saved them.
      for (const auto s :
           {fcm::index::IndexStrategy::kNoIndex,
            fcm::index::IndexStrategy::kIntervalTree,
            fcm::index::IndexStrategy::kLsh,
            fcm::index::IndexStrategy::kHybrid}) {
        std::vector<std::vector<fcm::index::SearchHit>> reference;
        reference.reserve(queries.size());
        for (const auto& q : queries) {
          reference.push_back(rebuilt.Search(q, k, s));
        }
        snapshot_identical =
            snapshot_identical &&
            SameHitLists(snap.value()->SearchBatch(queries, k, s), reference);
        if (heap_snap.ok()) {
          snapshot_identical =
              snapshot_identical &&
              SameHitLists(heap_snap.value()->SearchBatch(queries, k, s),
                           reference);
        }
      }
    } else {
      snapshot_identical = false;
    }
  } else {
    snapshot_identical = false;
  }
  std::remove(snap_path.c_str());
  all_identical = all_identical && snapshot_ok && snapshot_identical;

  // ---- Quantized embedding tier: int8 vs f32 ----
  // A dim-32 model (the repo default width) so the footprint story is
  // honest: per row, int8 costs dim + 4 scale bytes vs 4*dim for f32 —
  // 0.281x at dim 32. Both engines run the mean-similarity prefilter so
  // the comparison isolates precision; the f32 no-prefilter engine is the
  // exhaustive baseline recall is also measured against. Candidate sets
  // may legitimately differ between precisions (LSH codes index the
  // dequantized means); the final DTW scoring path stays float in both.
  const int quant_prefilter = 32;
  const int quant_queries =
      std::min<int>(12, static_cast<int>(queries.size()));
  fcm::core::FcmConfig quant_config;  // Defaults: embed_dim 32.
  quant_config.num_layers = 1;
  fcm::core::FcmModel quant_model(quant_config);
  const auto build_quant_engine = [&](fcm::index::EmbeddingPrecision prec,
                                      int prefilter, int threads) {
    fcm::index::SearchEngineOptions options;
    options.precision = prec;
    options.mean_prefilter = prefilter;
    options.num_threads = threads;
    auto engine =
        std::make_unique<fcm::index::SearchEngine>(&quant_model, &lake);
    engine->BuildWithOptions(options);
    return engine;
  };
  const auto t_quant_f32_build = Clock::now();
  const auto quant_f32 = build_quant_engine(
      fcm::index::EmbeddingPrecision::kFloat32, quant_prefilter, hardware);
  const double quant_f32_build_seconds = Seconds(t_quant_f32_build);
  const auto t_quant_i8_build = Clock::now();
  const auto quant_i8 = build_quant_engine(
      fcm::index::EmbeddingPrecision::kInt8, quant_prefilter, hardware);
  const double quant_i8_build_seconds = Seconds(t_quant_i8_build);
  const auto quant_f32_full = build_quant_engine(
      fcm::index::EmbeddingPrecision::kFloat32, 0, hardware);
  const auto quant_i8_serial = build_quant_engine(
      fcm::index::EmbeddingPrecision::kInt8, quant_prefilter, 1);

  const auto quant_strategy = fcm::index::IndexStrategy::kNoIndex;
  const auto time_quant_qps = [&](fcm::index::SearchEngine& engine,
                                  std::vector<std::vector<
                                      fcm::index::SearchHit>>* results) {
    constexpr int kReps = 3;
    if (results != nullptr) results->clear();
    const auto t0 = Clock::now();
    for (int rep = 0; rep < kReps; ++rep) {
      for (int q = 0; q < quant_queries; ++q) {
        auto hits = engine.Search(queries[static_cast<size_t>(q)], k,
                                  quant_strategy);
        if (rep == 0 && results != nullptr) {
          results->push_back(std::move(hits));
        }
      }
    }
    return static_cast<double>(kReps * quant_queries) /
           std::max(Seconds(t0), 1e-9);
  };
  std::vector<std::vector<fcm::index::SearchHit>> quant_f32_hits,
      quant_i8_hits, quant_full_hits;
  const double quant_f32_qps = time_quant_qps(*quant_f32, &quant_f32_hits);
  const double quant_i8_qps = time_quant_qps(*quant_i8, &quant_i8_hits);
  const double quant_full_qps =
      time_quant_qps(*quant_f32_full, &quant_full_hits);

  // Top-k recall of the int8 tier: average id-set overlap with the f32
  // prefilter engine (isolates quantization) and with the exhaustive f32
  // engine (end-to-end), plus rank-1 agreement. The floor is the
  // acceptance contract run_benchmarks.sh gates on.
  const double quant_recall_floor = 0.95;
  const auto topk_overlap =
      [&](const std::vector<std::vector<fcm::index::SearchHit>>& got,
          const std::vector<std::vector<fcm::index::SearchHit>>& want) {
        double sum = 0.0;
        size_t top1 = 0;
        for (size_t q = 0; q < got.size(); ++q) {
          size_t common = 0;
          for (const auto& g : got[q]) {
            for (const auto& w : want[q]) {
              if (g.table_id == w.table_id) {
                ++common;
                break;
              }
            }
          }
          const size_t denom = std::max<size_t>(want[q].size(), 1);
          sum += static_cast<double>(common) / static_cast<double>(denom);
          if (!got[q].empty() && !want[q].empty() &&
              got[q][0].table_id == want[q][0].table_id) {
            ++top1;
          }
        }
        return std::make_pair(
            got.empty() ? 0.0 : sum / static_cast<double>(got.size()),
            got.empty() ? 0.0
                        : static_cast<double>(top1) /
                              static_cast<double>(got.size()));
      };
  const auto recall_vs_f32 = topk_overlap(quant_i8_hits, quant_f32_hits);
  const auto recall_vs_full = topk_overlap(quant_i8_hits, quant_full_hits);

  // Determinism contract for the int8 mode: serial Search, pooled Search,
  // and pooled SearchBatch must agree bit-for-bit, per strategy.
  bool quant_deterministic = true;
  for (const auto s : {fcm::index::IndexStrategy::kNoIndex,
                       fcm::index::IndexStrategy::kLsh}) {
    std::vector<fcm::vision::ExtractedChart> qset(
        queries.begin(), queries.begin() + quant_queries);
    const auto batched = quant_i8->SearchBatch(qset, k, s);
    for (int q = 0; q < quant_queries; ++q) {
      const auto serial =
          quant_i8_serial->Search(queries[static_cast<size_t>(q)], k, s);
      const auto pooled =
          quant_i8->Search(queries[static_cast<size_t>(q)], k, s);
      quant_deterministic = quant_deterministic &&
                            SameHits(serial, pooled) &&
                            SameHits(serial, batched[static_cast<size_t>(q)]);
    }
  }

  // Int8 snapshot round-trip: mmap and heap backings must rank exactly
  // like the engine that saved them.
  const std::string quant_snap_path = "/tmp/fcm_bench_quant.fcmsnap";
  bool quant_snapshot_ok =
      quant_i8->SaveSnapshot(quant_snap_path).ok();
  bool quant_snapshot_identical = quant_snapshot_ok;
  size_t quant_snapshot_bytes = 0;
  if (quant_snapshot_ok) {
    for (const bool use_mmap : {true, false}) {
      fcm::index::SnapshotOpenOptions open_options;
      open_options.use_mmap = use_mmap;
      auto snap =
          fcm::index::SearchEngine::OpenSnapshot(quant_snap_path,
                                                 open_options);
      quant_snapshot_ok = quant_snapshot_ok && snap.ok();
      if (!snap.ok()) {
        quant_snapshot_identical = false;
        break;
      }
      for (const auto s : {fcm::index::IndexStrategy::kNoIndex,
                           fcm::index::IndexStrategy::kLsh}) {
        for (int q = 0; q < quant_queries; ++q) {
          quant_snapshot_identical =
              quant_snapshot_identical &&
              SameHits(
                  snap.value()->Search(queries[static_cast<size_t>(q)], k,
                                       s),
                  quant_i8->Search(queries[static_cast<size_t>(q)], k, s));
        }
      }
    }
    auto reader = fcm::storage::SnapshotReader::Open(quant_snap_path);
    if (reader.ok()) quant_snapshot_bytes = reader.value()->file_bytes();
  } else {
    quant_snapshot_identical = false;
  }
  std::remove(quant_snap_path.c_str());
  const double quant_bytes_ratio =
      static_cast<double>(quant_i8->embedding_bytes()) /
      std::max<double>(static_cast<double>(quant_f32->embedding_bytes()),
                       1.0);
  all_identical = all_identical && quant_deterministic &&
                  quant_snapshot_ok && quant_snapshot_identical;

  // ---- Live ingestion: serving QPS/p99 while appending at a fixed rate --
  // One submitter drives the async service closed-loop while a writer
  // thread appends the second half of the lake in fixed-size batches on a
  // fixed cadence, a background Compactor merges deltas, and one explicit
  // mid-stream Compact measures the pause a forced merge costs under
  // traffic. After the dust settles the engine must rank bit-identically
  // to the from-scratch engines built over the full lake above, for every
  // strategy — the epoch-determinism verdict tools/run_benchmarks.sh
  // gates on.
  const int ingest_base = num_tables / 2;
  const int ingest_appended = num_tables - ingest_base;
  const int ingest_batch_size = std::max(1, ingest_appended / 6);
  const double append_interval_ms = 40.0;
  fcm::table::DataLake ingest_lake;
  for (int i = 0; i < ingest_base; ++i) ingest_lake.Add(make_bench_table(i));
  fcm::index::SearchEngineOptions ingest_build_options;
  ingest_build_options.num_threads = hardware;
  fcm::index::SearchEngine ingest_engine(&model, &ingest_lake);
  ingest_engine.BuildWithOptions(ingest_build_options);

  double ingest_serving_qps = 0.0, ingest_p50_ms = 0.0, ingest_p99_ms = 0.0;
  double ingest_publish_ms_mean = 0.0, ingest_publish_ms_max = 0.0;
  double mid_compact_pause_ms = 0.0, final_compact_pause_ms = 0.0;
  int ingest_batches = 0;
  uint64_t ingest_requests = 0;
  size_t delta_segments_precompact = 0;
  std::atomic<bool> ingest_clean{true};  // Written by writer + submitter.
  uint64_t background_compactions = 0;
  {
    fcm::index::AsyncSearchService ingest_service(&ingest_engine,
                                                  make_options(0.0, false));
    fcm::index::CompactorOptions compactor_options;
    compactor_options.max_delta_segments = 4;
    compactor_options.poll_interval = std::chrono::milliseconds(10);
    fcm::index::Compactor compactor(&ingest_engine, compactor_options);
    compactor.Start();

    std::atomic<bool> writer_done{false};
    std::thread writer([&] {
      for (int lo = ingest_base; lo < num_tables; lo += ingest_batch_size) {
        const int hi = std::min(lo + ingest_batch_size, num_tables);
        std::vector<fcm::table::Table> batch;
        for (int i = lo; i < hi; ++i) batch.push_back(make_bench_table(i));
        const auto t0 = Clock::now();
        if (!ingest_service.Ingest(std::move(batch)).ok()) {
          ingest_clean = false;
          break;
        }
        const double ms = Seconds(t0) * 1e3;
        ingest_publish_ms_mean += ms;
        ingest_publish_ms_max = std::max(ingest_publish_ms_max, ms);
        ++ingest_batches;
        compactor.Notify();
        if (ingest_batches == 3) {
          // One forced merge mid-traffic: the pause a compaction costs
          // while requests are in flight.
          fcm::index::CompactStats stats;
          if (ingest_service.Compact(&stats).ok()) {
            mid_compact_pause_ms = stats.seconds * 1e3;
          }
        }
        std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
            append_interval_ms));
      }
      writer_done.store(true, std::memory_order_release);
    });

    std::vector<double> latencies_ms;
    const auto t_serving = Clock::now();
    while (!writer_done.load(std::memory_order_acquire) ||
           latencies_ms.size() < 32) {
      const size_t qi = latencies_ms.size() % queries.size();
      const auto t0 = Clock::now();
      try {
        auto hits = ingest_service.Submit(queries[qi], k, strategy).get();
        if (hits.empty()) ingest_clean = false;
      } catch (...) {
        ingest_clean = false;
      }
      latencies_ms.push_back(Seconds(t0) * 1e3);
    }
    const double serving_seconds = Seconds(t_serving);
    writer.join();
    delta_segments_precompact = ingest_engine.num_delta_segments();
    compactor.Stop();
    background_compactions = compactor.stats().compactions;
    {
      fcm::index::CompactStats stats;
      if (ingest_engine.Compact(&stats).ok()) {
        final_compact_pause_ms = stats.seconds * 1e3;
      } else {
        ingest_clean = false;
      }
    }
    ingest_service.Shutdown();
    ingest_requests = static_cast<uint64_t>(latencies_ms.size());
    ingest_serving_qps =
        static_cast<double>(latencies_ms.size()) /
        std::max(serving_seconds, 1e-9);
    std::sort(latencies_ms.begin(), latencies_ms.end());
    const auto pct = [&](double p) {
      if (latencies_ms.empty()) return 0.0;
      const size_t idx = static_cast<size_t>(
          p * static_cast<double>(latencies_ms.size() - 1));
      return latencies_ms[idx];
    };
    ingest_p50_ms = pct(0.50);
    ingest_p99_ms = pct(0.99);
    if (ingest_batches > 0) {
      ingest_publish_ms_mean /= static_cast<double>(ingest_batches);
    }
  }
  // The verdict: after live appends + compactions, every strategy must
  // rank exactly like the from-scratch build over the same tables.
  bool ingest_identical =
      ingest_engine.num_tables() == static_cast<size_t>(num_tables);
  for (const auto s : {fcm::index::IndexStrategy::kNoIndex,
                       fcm::index::IndexStrategy::kIntervalTree,
                       fcm::index::IndexStrategy::kLsh,
                       fcm::index::IndexStrategy::kHybrid}) {
    std::vector<std::vector<fcm::index::SearchHit>> reference;
    reference.reserve(queries.size());
    for (const auto& q : queries) {
      reference.push_back(serial_engine.Search(q, k, s));
    }
    ingest_identical =
        ingest_identical &&
        SameHitLists(ingest_engine.SearchBatch(queries, k, s), reference);
  }
  all_identical = all_identical && ingest_identical && ingest_clean;

  // ---- SIMD kernel dispatch: per-target GFLOP/s ----
  // The startup-resolved target (cpuid + FCM_SIMD env var) served every
  // phase above; here each compiled-in target is forced in turn so the
  // BENCH trajectory records the per-kernel speedup of simd dispatch.
  const fcm::simd::Target startup_target = fcm::simd::ActiveTarget();
  std::vector<SimdKernelRates> simd_rates;
  for (fcm::simd::Target t : fcm::simd::SupportedTargets()) {
    fcm::simd::SetTarget(t);
    simd_rates.push_back(MeasureKernelRates(t));
  }
  fcm::simd::ResetTarget();
  double scalar_dot = 0.0, scalar_gemm = 0.0;
  for (const auto& r : simd_rates) {
    if (r.target == fcm::simd::Target::kScalar) {
      scalar_dot = r.dot_f32_gflops;
      scalar_gemm = r.gemm_gflops;
    }
  }

  // ---- JSON report ----
  std::string json = "{\n";
  json += "  \"bench\": \"search_throughput\",\n";
  // Machine identity: BENCH_*.json files from different hosts are only
  // comparable when the run records what it ran on.
  json += "  \"machine\": {\n";
  std::snprintf(buf, sizeof(buf),
                "    \"nproc\": %d,\n    \"cpu_model\": \"%s\",\n"
                "    \"simd_target\": \"%s\"\n  },\n",
                hardware, CpuModelName().c_str(),
                fcm::simd::TargetName(startup_target));
  json += buf;
  json += std::string("  \"simd\": {\n    \"active\": \"") +
          fcm::simd::TargetName(startup_target) + "\",\n";
  json += "    \"kernels\": [\n";
  for (size_t i = 0; i < simd_rates.size(); ++i) {
    const auto& r = simd_rates[i];
    std::snprintf(
        buf, sizeof(buf),
        "      {\"target\": \"%s\", \"dot_f32_gflops\": %.2f, "
        "\"gemm_gflops\": %.2f, \"dot_speedup_vs_scalar\": %.2f, "
        "\"gemm_speedup_vs_scalar\": %.2f,\n",
        fcm::simd::TargetName(r.target), r.dot_f32_gflops, r.gemm_gflops,
        r.dot_f32_gflops / std::max(scalar_dot, 1e-9),
        r.gemm_gflops / std::max(scalar_gemm, 1e-9));
    json += buf;
    // Int8 quantized-tier kernels; the vs-f32 ratio on the same target is
    // the quantization speedup story (acceptance: >= 1.5 on avx2).
    std::snprintf(
        buf, sizeof(buf),
        "       \"dot_i8_gops\": %.2f, \"gemm_i8f32_gops\": %.2f, "
        "\"dot_i8_speedup_vs_f32\": %.2f}%s\n",
        r.dot_i8_gops, r.gemm_i8f32_gops,
        r.dot_i8_gops / std::max(r.dot_f32_gflops, 1e-9),
        i + 1 < simd_rates.size() ? "," : "");
    json += buf;
  }
  json += "    ]\n  },\n";
  json += "  \"tables\": " + std::to_string(num_tables) + ",\n";
  json += "  \"queries\": " + std::to_string(num_queries) + ",\n";
  json += "  \"k\": " + std::to_string(k) + ",\n";
  json += "  \"hardware_threads\": " + std::to_string(hardware) + ",\n";
  json += "  \"build\": [\n";
  for (size_t i = 0; i < builds.size(); ++i) {
    std::snprintf(buf, sizeof(buf),
                  "    {\"threads\": %d, \"shards\": %d, \"seconds\": %.4f, "
                  "\"lsh_seconds\": %.5f, \"speedup\": %.3f}%s\n",
                  builds[i].threads, builds[i].shards, builds[i].seconds,
                  builds[i].lsh_seconds,
                  builds[0].seconds / std::max(builds[i].seconds, 1e-9),
                  i + 1 < builds.size() ? "," : "");
    json += buf;
  }
  json += "  ],\n";
  std::snprintf(buf, sizeof(buf),
                "  \"search_single_query\": {\"threads\": 1, \"seconds\": "
                "%.4f, \"qps\": %.2f},\n",
                serial_seconds,
                static_cast<double>(queries.size()) /
                    std::max(serial_seconds, 1e-9));
  json += buf;
  json += "  \"search_batch\": [\n";
  for (size_t i = 0; i < searches.size(); ++i) {
    std::snprintf(
        buf, sizeof(buf),
        "    {\"threads\": %d, \"shards\": %d, \"seconds\": %.4f, "
        "\"qps\": %.2f, \"speedup_vs_single\": %.3f, "
        "\"identical_topk\": %s}%s\n",
        searches[i].threads, searches[i].shards, searches[i].seconds,
        static_cast<double>(queries.size()) /
            std::max(searches[i].seconds, 1e-9),
        serial_seconds / std::max(searches[i].seconds, 1e-9),
        searches[i].identical ? "true" : "false",
        i + 1 < searches.size() ? "," : "");
    json += buf;
  }
  json += "  ],\n";
  json += "  \"ranking_determinism\": [\n";
  for (size_t i = 0; i < determinism.size(); ++i) {
    std::snprintf(buf, sizeof(buf),
                  "    {\"strategy\": \"%s\", \"identical_topk\": %s}%s\n",
                  determinism[i].strategy,
                  determinism[i].identical ? "true" : "false",
                  i + 1 < determinism.size() ? "," : "");
    json += buf;
  }
  json += "  ],\n";
  json += "  \"async\": {\n";
  std::snprintf(buf, sizeof(buf),
                "    \"requests\": %d, \"submitters\": %d, "
                "\"queue_capacity\": %zu, \"max_batch_size\": %zu, "
                "\"static_max_delay_ms\": %.2f, \"adaptive_enabled\": %s, "
                "\"backpressure\": \"block\",\n",
                async_requests, async_submitters, flags.async_queue,
                flags.async_max_batch, flags.async_max_delay_ms,
                flags.async_adaptive ? "true" : "false");
  json += buf;
  std::snprintf(buf, sizeof(buf),
                "    \"serial_seconds\": %.4f, \"serial_qps\": %.2f,\n",
                async_serial_seconds, async_serial_qps);
  json += buf;
  // Legacy trajectory summary: the closed-loop delay-0 phase is the same
  // configuration earlier BENCH_*.json files recorded as the whole
  // section, so these keys stay comparable across PRs.
  std::snprintf(buf, sizeof(buf),
                "    \"seconds\": %.4f, \"qps\": %.2f, "
                "\"qps_speedup_vs_serial\": %.3f,\n",
                closed_delay0->seconds, closed_delay0->qps,
                closed_delay0->qps / std::max(async_serial_qps, 1e-9));
  json += buf;
  std::snprintf(buf, sizeof(buf), "    \"p50_ms\": %.3f, \"p99_ms\": %.3f,\n",
                closed_delay0->p50_ms, closed_delay0->p99_ms);
  json += buf;
  std::snprintf(buf, sizeof(buf),
                "    \"batches\": %llu, \"max_coalesced\": %zu, "
                "\"rejected\": %llu, \"cancelled\": %llu, "
                "\"failed\": %llu, \"identical_topk\": %s,\n",
                static_cast<unsigned long long>(closed_delay0->stats.batches),
                closed_delay0->stats.max_coalesced,
                static_cast<unsigned long long>(closed_delay0->stats.rejected),
                static_cast<unsigned long long>(
                    closed_delay0->stats.cancelled),
                static_cast<unsigned long long>(closed_delay0->stats.failed),
                closed_delay0->clean ? "true" : "false");
  json += buf;
  json += "    \"phases\": [\n";
  for (size_t i = 0; i < phases.size(); ++i) {
    const auto& phase = phases[i];
    const auto& r = phase.result;
    std::snprintf(buf, sizeof(buf),
                  "      {\"name\": \"%s\", \"loop\": \"%s\", "
                  "\"batching\": \"%s\", \"max_delay_ms\": %.2f,\n",
                  phase.name, phase.open_loop ? "open" : "closed",
                  phase.adaptive ? "adaptive" : "static",
                  phase.adaptive ? adaptive_delay_cap_ms : phase.delay_ms);
    json += buf;
    std::snprintf(buf, sizeof(buf),
                  "       \"seconds\": %.4f, \"qps\": %.2f, "
                  "\"qps_speedup_vs_serial\": %.3f,\n",
                  r.seconds, r.qps, r.qps / std::max(async_serial_qps, 1e-9));
    json += buf;
    if (!phase.open_loop) {
      std::snprintf(buf, sizeof(buf),
                    "       \"p50_ms\": %.3f, \"p99_ms\": %.3f,\n", r.p50_ms,
                    r.p99_ms);
      json += buf;
    }
    const double avg_coalesced =
        r.stats.batches > 0 ? static_cast<double>(r.stats.completed) /
                                  static_cast<double>(r.stats.batches)
                            : 0.0;
    std::snprintf(buf, sizeof(buf),
                  "       \"batches\": %llu, \"max_coalesced\": %zu, "
                  "\"avg_coalesced\": %.2f, \"rejected\": %llu, "
                  "\"cancelled\": %llu, \"failed\": %llu, "
                  "\"identical_topk\": %s%s\n",
                  static_cast<unsigned long long>(r.stats.batches),
                  r.stats.max_coalesced, avg_coalesced,
                  static_cast<unsigned long long>(r.stats.rejected),
                  static_cast<unsigned long long>(r.stats.cancelled),
                  static_cast<unsigned long long>(r.stats.failed),
                  r.clean ? "true" : "false", phase.adaptive ? "," : "");
    json += buf;
    if (phase.adaptive) {
      const auto& c = r.stats.controller;
      std::snprintf(buf, sizeof(buf),
                    "       \"controller\": {\"decisions\": %llu, "
                    "\"grows\": %llu, \"decays\": %llu, \"holds\": %llu, "
                    "\"idle_resets\": %llu, \"max_window_ms\": %.3f, "
                    "\"max_batch_size\": %zu, \"ewma_service_ms\": %.3f}\n",
                    static_cast<unsigned long long>(c.decisions),
                    static_cast<unsigned long long>(c.grows),
                    static_cast<unsigned long long>(c.decays),
                    static_cast<unsigned long long>(c.holds),
                    static_cast<unsigned long long>(c.idle_resets),
                    c.max_window_ms, c.max_batch_size, c.ewma_service_ms);
      json += buf;
    }
    json += i + 1 < phases.size() ? "      },\n" : "      }\n";
  }
  json += "    ]";
  if (flags.async_adaptive && open_adaptive != nullptr &&
      closed_adaptive != nullptr) {
    // Acceptance comparison: adaptive vs best static open-loop QPS and
    // vs delay-0 closed-loop p99 (ratios >= / <= 1 mean "beats"; the
    // match booleans allow measurement noise on a loaded container).
    json += ",\n";
    std::snprintf(buf, sizeof(buf),
                  "    \"adaptive_summary\": {\n"
                  "      \"open_qps_best_static\": %.2f, "
                  "\"open_qps_adaptive\": %.2f, \"open_qps_ratio\": %.3f,\n",
                  best_static_open_qps, open_adaptive->qps,
                  open_adaptive->qps / std::max(best_static_open_qps, 1e-9));
    json += buf;
    std::snprintf(
        buf, sizeof(buf),
        "      \"closed_p99_delay0_ms\": %.3f, "
        "\"closed_p99_adaptive_ms\": %.3f, \"closed_p99_ratio\": %.3f,\n",
        closed_delay0->p99_ms, closed_adaptive->p99_ms,
        closed_adaptive->p99_ms / std::max(closed_delay0->p99_ms, 1e-9));
    json += buf;
    std::snprintf(
        buf, sizeof(buf),
        "      \"matches_best_static_open_qps\": %s, "
        "\"matches_delay0_closed_p99\": %s\n    },\n",
        open_adaptive->qps >= 0.9 * best_static_open_qps ? "true" : "false",
        closed_adaptive->p99_ms <= 1.25 * closed_delay0->p99_ms ? "true"
                                                                : "false");
    json += buf;
    // Controller decision trace from the open-loop adaptive phase (the
    // one that exercises growth): queue depth in, window / size cap out.
    const auto& trace = open_adaptive->trace;
    constexpr size_t kMaxTraceEntries = 64;
    const size_t emit = std::min(trace.size(), kMaxTraceEntries);
    std::snprintf(buf, sizeof(buf),
                  "    \"controller_trace\": {\"phase\": \"open_adaptive\", "
                  "\"total_decisions\": %zu, \"entries\": [\n",
                  trace.size());
    json += buf;
    for (size_t i = 0; i < emit; ++i) {
      const auto& e = trace[i];
      std::snprintf(
          buf, sizeof(buf),
          "      {\"t_ms\": %.3f, \"queue_depth\": %zu, "
          "\"window_ms\": %.3f, \"batch_size\": %zu, \"event\": \"%s\"}%s\n",
          e.t_ms, e.queue_depth, e.window_ms, e.batch_size,
          fcm::index::AdaptiveBatchController::EventName(e.event),
          i + 1 < emit ? "," : "");
      json += buf;
    }
    json += "    ]}";
  }
  json += "\n  },\n";
  // Fault-injection phase. Key names deliberately avoid "rejected" /
  // "cancelled" / "failed": tools/run_benchmarks.sh sums those as
  // block-mode drops, and these failures are injected on purpose.
  json += "  \"faults\": {\n";
  std::snprintf(buf, sizeof(buf),
                "    \"requests\": %d, \"injected\": %llu, "
                "\"site\": \"engine.score_query\", "
                "\"poisoned_ids\": \"id %% 10 == 3\",\n",
                async_requests,
                static_cast<unsigned long long>(fault_injected));
  json += buf;
  std::snprintf(buf, sizeof(buf),
                "    \"healthy_qps\": %.2f, \"fault_qps\": %.2f, "
                "\"recovered_qps\": %.2f, "
                "\"fault_qps_ratio_vs_healthy\": %.3f,\n",
                fault_healthy.qps, fault_armed.qps, fault_recovered.qps,
                fault_armed.qps / std::max(fault_healthy.qps, 1e-9));
  json += buf;
  std::snprintf(buf, sizeof(buf),
                "    \"completed_ok\": %llu, \"request_failures\": %llu, "
                "\"retried\": %llu, \"expired\": %llu,\n",
                static_cast<unsigned long long>(fault_armed.stats.completed),
                static_cast<unsigned long long>(fault_armed.stats.failed),
                static_cast<unsigned long long>(fault_armed.stats.retried),
                static_cast<unsigned long long>(
                    fault_armed.stats.deadline_expired));
  json += buf;
  std::snprintf(buf, sizeof(buf),
                "    \"isolation_ok\": %s, \"recovered_clean\": %s, "
                "\"clean\": %s\n  },\n",
                fault_armed.isolation_ok ? "true" : "false",
                fault_recovered.isolation_ok && fault_recovered.faulted == 0
                    ? "true"
                    : "false",
                fault_phase_ok ? "true" : "false");
  json += buf;
  json += "  \"lsh_index\": {\n";
  std::snprintf(buf, sizeof(buf),
                "    \"items\": %d, \"dim\": %d, \"tables\": %d, "
                "\"bits\": %d,\n",
                lsh_items, lsh_dim, lsh_base.num_tables, lsh_base.num_bits);
  json += buf;
  std::snprintf(buf, sizeof(buf),
                "    \"build\": [\n      {\"shards\": 1, \"seconds\": "
                "%.4f},\n      {\"shards\": %d, \"seconds\": %.4f, "
                "\"speedup_vs_unsharded\": %.3f}\n    ],\n",
                unsharded_build, sharded.num_shards(), sharded_build,
                unsharded_build / std::max(sharded_build, 1e-9));
  json += buf;
  std::snprintf(
      buf, sizeof(buf),
      "    \"candidate_generation\": [\n      {\"shards\": 1, \"threads\": "
      "1, \"seconds\": %.4f, \"qps\": %.1f},\n      {\"shards\": %d, "
      "\"threads\": %d, \"seconds\": %.4f, \"qps\": %.1f, "
      "\"speedup_vs_serial\": %.3f}\n    ],\n",
      query_serial_seconds,
      static_cast<double>(lsh_queries.size()) /
          std::max(query_serial_seconds, 1e-9),
      sharded.num_shards(), hardware, query_batch_seconds,
      static_cast<double>(lsh_queries.size()) /
          std::max(query_batch_seconds, 1e-9),
      query_serial_seconds / std::max(query_batch_seconds, 1e-9));
  json += buf;
  std::snprintf(buf, sizeof(buf), "    \"identical_candidates\": %s\n  },\n",
                candidates_identical ? "true" : "false");
  json += buf;
  // Snapshot cold start: open (mmap zero-copy and heap) must beat a full
  // rebuild, and snapshot-served rankings must be bit-identical across
  // every strategy. tools/run_benchmarks.sh gates on both.
  json += "  \"snapshot\": {\n";
  std::snprintf(buf, sizeof(buf),
                "    \"file_bytes\": %zu, \"rebuild_seconds\": %.4f, "
                "\"save_seconds\": %.4f,\n",
                snapshot_bytes, rebuild_seconds, save_seconds);
  json += buf;
  std::snprintf(buf, sizeof(buf),
                "    \"open_seconds\": %.4f, \"open_heap_seconds\": %.4f, "
                "\"open_speedup_vs_rebuild\": %.2f,\n",
                open_seconds, open_heap_seconds,
                rebuild_seconds / std::max(open_seconds, 1e-9));
  json += buf;
  std::snprintf(buf, sizeof(buf),
                "    \"save_open_ok\": %s, \"identical_topk\": %s\n  },\n",
                snapshot_ok ? "true" : "false",
                snapshot_identical ? "true" : "false");
  json += buf;
  // Quantized embedding tier. Key names deliberately avoid "rejected" /
  // "cancelled" / "failed" (run_benchmarks.sh sums those as drops).
  json += "  \"quant\": {\n";
  std::snprintf(buf, sizeof(buf),
                "    \"embed_dim\": %d, \"tables\": %d, \"queries\": %d, "
                "\"k\": %d, \"mean_prefilter\": %d, \"strategy\": "
                "\"no_index\",\n",
                quant_config.embed_dim, num_tables, quant_queries, k,
                quant_prefilter);
  json += buf;
  std::snprintf(buf, sizeof(buf),
                "    \"embedding_bytes_f32\": %zu, "
                "\"embedding_bytes_int8\": %zu, "
                "\"embedding_bytes_ratio\": %.4f, "
                "\"bytes_ratio_ceiling\": 0.30,\n",
                quant_f32->embedding_bytes(), quant_i8->embedding_bytes(),
                quant_bytes_ratio);
  json += buf;
  std::snprintf(buf, sizeof(buf),
                "    \"build_seconds_f32\": %.4f, "
                "\"build_seconds_int8\": %.4f, "
                "\"snapshot_file_bytes\": %zu,\n",
                quant_f32_build_seconds, quant_i8_build_seconds,
                quant_snapshot_bytes);
  json += buf;
  std::snprintf(buf, sizeof(buf),
                "    \"qps_f32\": %.2f, \"qps_int8\": %.2f, "
                "\"qps_f32_exhaustive\": %.2f, "
                "\"prefilter_speedup_vs_exhaustive\": %.3f,\n",
                quant_f32_qps, quant_i8_qps, quant_full_qps,
                quant_i8_qps / std::max(quant_full_qps, 1e-9));
  json += buf;
  std::snprintf(buf, sizeof(buf),
                "    \"topk_recall_vs_f32\": %.4f, "
                "\"top1_agreement_vs_f32\": %.4f, "
                "\"topk_recall_vs_f32_exhaustive\": %.4f, "
                "\"recall_floor\": %.2f,\n",
                recall_vs_f32.first, recall_vs_f32.second,
                recall_vs_full.first, quant_recall_floor);
  json += buf;
  std::snprintf(buf, sizeof(buf),
                "    \"determinism_ok\": %s, \"snapshot_save_open_ok\": %s, "
                "\"snapshot_identical_topk\": %s\n  },\n",
                quant_deterministic ? "true" : "false",
                quant_snapshot_ok ? "true" : "false",
                quant_snapshot_identical ? "true" : "false");
  json += buf;
  // Live-ingestion phase. Key names deliberately avoid "rejected" /
  // "cancelled" / "failed" (run_benchmarks.sh sums those as drops).
  json += "  \"ingest\": {\n";
  std::snprintf(buf, sizeof(buf),
                "    \"tables_base\": %d, \"tables_appended\": %d, "
                "\"batch_size\": %d, \"batches\": %d, "
                "\"append_interval_ms\": %.1f,\n",
                ingest_base, ingest_appended, ingest_batch_size,
                ingest_batches, append_interval_ms);
  json += buf;
  std::snprintf(buf, sizeof(buf),
                "    \"requests\": %llu, \"serving_qps\": %.2f, "
                "\"p50_ms\": %.3f, \"p99_ms\": %.3f,\n",
                static_cast<unsigned long long>(ingest_requests),
                ingest_serving_qps, ingest_p50_ms, ingest_p99_ms);
  json += buf;
  std::snprintf(buf, sizeof(buf),
                "    \"ingest_publish_ms_mean\": %.3f, "
                "\"ingest_publish_ms_max\": %.3f,\n",
                ingest_publish_ms_mean, ingest_publish_ms_max);
  json += buf;
  std::snprintf(buf, sizeof(buf),
                "    \"mid_compact_pause_ms\": %.3f, "
                "\"final_compact_pause_ms\": %.3f, "
                "\"background_compactions\": %llu, "
                "\"delta_segments_precompact\": %zu,\n",
                mid_compact_pause_ms, final_compact_pause_ms,
                static_cast<unsigned long long>(background_compactions),
                delta_segments_precompact);
  json += buf;
  std::snprintf(buf, sizeof(buf),
                "    \"epoch_determinism_ok\": %s, \"clean\": %s\n  }\n",
                ingest_identical ? "true" : "false",
                ingest_clean ? "true" : "false");
  json += buf;
  json += "}\n";

  std::fputs(json.c_str(), stdout);
  if (!flags.out.empty()) {
    std::FILE* f = std::fopen(flags.out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", flags.out.c_str());
      return 1;
    }
    std::fputs(json.c_str(), f);
    std::fclose(f);
  }

  return all_identical ? 0 : 2;
}
