// Search-pipeline throughput benchmark: index build and batched query
// serving at 1/2/N threads over a synthetic lake, emitting machine-
// readable JSON (also written to the path in argv[1] when given) so perf
// PRs can track the BENCH_*.json trajectory. Parallel and serial paths
// must return identical top-k rankings; the JSON records the check.
//
// Scale knobs: FCM_BENCH_TABLES (default 96), FCM_BENCH_QUERIES (default
// 24). Runtime is a couple of minutes at the defaults on one core.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "chart/renderer.h"
#include "core/fcm_config.h"
#include "core/fcm_model.h"
#include "index/search_engine.h"
#include "table/data_lake.h"
#include "vision/mask_oracle_extractor.h"

namespace {

using Clock = std::chrono::steady_clock;

double Seconds(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

int EnvInt(const char* name, int fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atoi(v) : fallback;
}

bool SameHits(const std::vector<fcm::index::SearchHit>& a,
              const std::vector<fcm::index::SearchHit>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].table_id != b[i].table_id || a[i].score != b[i].score) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const int num_tables = EnvInt("FCM_BENCH_TABLES", 96);
  const int num_queries = EnvInt("FCM_BENCH_QUERIES", 24);
  const int k = 10;
  const int hardware =
      std::max(1, static_cast<int>(std::thread::hardware_concurrency()));

  // Synthetic lake of mixed sinusoid tables (same substrate as the index
  // tests, scaled up).
  fcm::table::DataLake lake;
  for (int i = 0; i < num_tables; ++i) {
    fcm::table::Table t;
    for (int c = 0; c < 3; ++c) {
      std::vector<double> v(96);
      for (size_t j = 0; j < v.size(); ++j) {
        v[j] = std::sin(static_cast<double>(j) * (0.03 + 0.011 * (i % 17)) +
                        1.3 * c) *
                   (2.0 + (i % 7)) +
               0.8 * c;
      }
      t.AddColumn(fcm::table::Column("c" + std::to_string(c), std::move(v)));
    }
    lake.Add(std::move(t));
  }

  fcm::core::FcmConfig config;
  config.embed_dim = 16;
  config.num_layers = 1;
  config.strip_height = 16;
  config.strip_width = 64;
  config.line_segment_width = 16;
  config.column_length = 64;
  config.data_segment_size = 16;
  fcm::core::FcmModel model(config);

  std::vector<fcm::vision::ExtractedChart> queries;
  fcm::vision::MaskOracleExtractor oracle;
  for (int q = 0; q < num_queries; ++q) {
    fcm::table::DataSeries d;
    d.y = lake.Get(q % num_tables).column(q % 3).values;
    queries.push_back(oracle.Extract(fcm::chart::RenderLineChart({d})).value());
  }

  // ---- Index build at each thread count ----
  std::vector<int> thread_counts = {1, 2, hardware};
  std::sort(thread_counts.begin(), thread_counts.end());
  thread_counts.erase(std::unique(thread_counts.begin(), thread_counts.end()),
                      thread_counts.end());

  struct BuildRow {
    int threads;
    double seconds;
  };
  std::vector<BuildRow> builds;
  std::vector<std::unique_ptr<fcm::index::SearchEngine>> engines;
  for (int threads : thread_counts) {
    fcm::index::SearchEngineOptions options;
    options.num_threads = threads;
    auto engine = std::make_unique<fcm::index::SearchEngine>(&model, &lake);
    const auto t0 = Clock::now();
    engine->BuildWithOptions(options);
    builds.push_back({threads, Seconds(t0)});
    engines.push_back(std::move(engine));
  }
  fcm::index::SearchEngine& serial_engine = *engines.front();

  const auto strategy = fcm::index::IndexStrategy::kNoIndex;

  // ---- Per-query serving on the serial engine (baseline) ----
  const auto t_serial = Clock::now();
  std::vector<std::vector<fcm::index::SearchHit>> serial_results;
  serial_results.reserve(queries.size());
  for (const auto& q : queries) {
    serial_results.push_back(serial_engine.Search(q, k, strategy));
  }
  const double serial_seconds = Seconds(t_serial);

  // ---- Batched serving at each thread count ----
  struct SearchRow {
    int threads;
    double seconds;
    bool identical;
  };
  std::vector<SearchRow> searches;
  for (size_t e = 0; e < engines.size(); ++e) {
    const auto t0 = Clock::now();
    const auto results = engines[e]->SearchBatch(queries, k, strategy);
    const double secs = Seconds(t0);
    bool identical = results.size() == serial_results.size();
    for (size_t i = 0; identical && i < results.size(); ++i) {
      identical = SameHits(results[i], serial_results[i]);
    }
    searches.push_back({thread_counts[e], secs, identical});
  }

  // ---- JSON report ----
  std::string json = "{\n";
  json += "  \"bench\": \"search_throughput\",\n";
  json += "  \"tables\": " + std::to_string(num_tables) + ",\n";
  json += "  \"queries\": " + std::to_string(num_queries) + ",\n";
  json += "  \"k\": " + std::to_string(k) + ",\n";
  json += "  \"hardware_threads\": " + std::to_string(hardware) + ",\n";
  json += "  \"build\": [\n";
  char buf[256];
  for (size_t i = 0; i < builds.size(); ++i) {
    std::snprintf(buf, sizeof(buf),
                  "    {\"threads\": %d, \"seconds\": %.4f, \"speedup\": "
                  "%.3f}%s\n",
                  builds[i].threads, builds[i].seconds,
                  builds[0].seconds / std::max(builds[i].seconds, 1e-9),
                  i + 1 < builds.size() ? "," : "");
    json += buf;
  }
  json += "  ],\n";
  std::snprintf(buf, sizeof(buf),
                "  \"search_single_query\": {\"threads\": 1, \"seconds\": "
                "%.4f, \"qps\": %.2f},\n",
                serial_seconds,
                static_cast<double>(queries.size()) /
                    std::max(serial_seconds, 1e-9));
  json += buf;
  json += "  \"search_batch\": [\n";
  for (size_t i = 0; i < searches.size(); ++i) {
    std::snprintf(
        buf, sizeof(buf),
        "    {\"threads\": %d, \"seconds\": %.4f, \"qps\": %.2f, "
        "\"speedup_vs_single\": %.3f, \"identical_topk\": %s}%s\n",
        searches[i].threads, searches[i].seconds,
        static_cast<double>(queries.size()) /
            std::max(searches[i].seconds, 1e-9),
        serial_seconds / std::max(searches[i].seconds, 1e-9),
        searches[i].identical ? "true" : "false",
        i + 1 < searches.size() ? "," : "");
    json += buf;
  }
  json += "  ]\n}\n";

  std::fputs(json.c_str(), stdout);
  if (argc > 1) {
    std::FILE* f = std::fopen(argv[1], "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", argv[1]);
      return 1;
    }
    std::fputs(json.c_str(), f);
    std::fclose(f);
  }

  bool all_identical = true;
  for (const auto& s : searches) all_identical = all_identical && s.identical;
  return all_identical ? 0 : 2;
}
