// Reproduces Table IV: FCM's prec@k on DA-based queries broken down by
// aggregation operator (min/max/sum/avg) and aggregation window size.
// The paper's window buckets 0-10 .. 80-100 (with degradation once the
// window exceeds the data segment size P2=64) scale here to buckets over
// 2..24 with P2=16: degradation is expected in the >16 bucket.

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"

namespace fcm {
namespace {

int Run() {
  bench::BenchScale scale = bench::ReadScale();
  // All queries aggregated; more queries so each (op, window) cell has
  // mass.
  scale.query_tables *= 2;
  bench::PrintHeader("Table IV: Breakdown of DA-based queries (FCM)",
                     "paper Sec. VII-C, Table IV", scale);
  const benchgen::Benchmark b =
      bench::BuildBench(scale, /*da_fraction=*/1.0);

  baselines::FcmMethod fcm(bench::DefaultModelConfig(scale),
                           bench::DefaultTrainOptions(scale));
  std::printf("fitting FCM ...\n");
  std::fflush(stdout);
  fcm.Fit(b.lake, b.training);
  const eval::MethodResults results = eval::EvaluateMethod(fcm, b);

  struct WindowBucket {
    const char* label;
    size_t lo, hi;
  };
  // Scaled from the paper's 0-10/20-40/40-60/60-80/80-100 buckets; the
  // third boundary is P2 (=16), where the paper observes the drop.
  const std::vector<WindowBucket> buckets = {
      {"2-6", 2, 6}, {"7-11", 7, 11}, {"12-16", 12, 16}, {">16", 17, 1000}};

  std::vector<std::string> header = {"op"};
  for (const auto& wb : buckets) header.push_back(wb.label);
  eval::ReportTable table(header);
  for (table::AggregateOp op : table::RealAggregateOps()) {
    std::vector<std::string> row = {table::AggregateOpName(op)};
    for (const auto& wb : buckets) {
      const eval::Aggregate a =
          results.ByOperatorAndWindow(op, wb.lo, wb.hi);
      row.push_back(a.count > 0
                        ? bench::PrecCell(a) + " (" +
                              std::to_string(a.count) + ")"
                        : "-");
    }
    table.AddRow(row);
  }
  table.Print();

  // Marginals per operator (more queries per cell -> stabler shape).
  eval::ReportTable marginals({"op", "prec@k", "ndcg@k", "queries"});
  for (table::AggregateOp op : table::RealAggregateOps()) {
    const eval::Aggregate a = results.ByOperator(op);
    marginals.AddRow({table::AggregateOpName(op), bench::PrecCell(a),
                      bench::NdcgCell(a), std::to_string(a.count)});
  }
  std::printf("\nPer-operator marginals:\n");
  marginals.Print();

  std::printf(
      "\nPaper (Table IV): sum/avg outperform min/max; performance is "
      "stable for windows below P2 and degrades sharply beyond it.\n");
  return 0;
}

}  // namespace
}  // namespace fcm

int main() { return fcm::Run(); }
