// Google-benchmark micro-benchmarks for the substrates: DTW, Hungarian
// matching, chart rendering, visual extraction, tensor ops, transformer
// forward/backward, interval tree and LSH queries.

#include <benchmark/benchmark.h>

#include <cmath>

#include "chart/renderer.h"
#include "common/rng.h"
#include "index/interval_tree.h"
#include "index/lsh.h"
#include "nn/attention.h"
#include "nn/ops.h"
#include "relevance/dtw.h"
#include "relevance/hungarian.h"
#include "vision/classical_extractor.h"

namespace fcm {
namespace {

std::vector<double> RandomSeries(size_t n, uint64_t seed) {
  common::Rng rng(seed);
  std::vector<double> v(n);
  for (auto& x : v) x = rng.Normal();
  return v;
}

void BM_DtwFull(benchmark::State& state) {
  const auto a = RandomSeries(static_cast<size_t>(state.range(0)), 1);
  const auto b = RandomSeries(static_cast<size_t>(state.range(0)), 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rel::DtwDistance(a, b));
  }
}
BENCHMARK(BM_DtwFull)->Arg(64)->Arg(160)->Arg(320);

void BM_DtwBanded(benchmark::State& state) {
  const auto a = RandomSeries(static_cast<size_t>(state.range(0)), 1);
  const auto b = RandomSeries(static_cast<size_t>(state.range(0)), 2);
  rel::DtwOptions options;
  options.band_fraction = 0.2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rel::DtwDistance(a, b, options));
  }
}
BENCHMARK(BM_DtwBanded)->Arg(64)->Arg(160)->Arg(320);

void BM_DtwPruned(benchmark::State& state) {
  // Dissimilar random pairs with a tight cutoff: the LB_Keogh-style
  // prefilter should reject most pairs in O(n) without running the DP.
  const auto a = RandomSeries(static_cast<size_t>(state.range(0)), 1);
  const auto b = RandomSeries(static_cast<size_t>(state.range(0)), 2);
  rel::DtwOptions options;
  options.band_fraction = 0.2;
  options.abandon_above = 0.05 * static_cast<double>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(rel::DtwDistance(a, b, options));
  }
}
BENCHMARK(BM_DtwPruned)->Arg(64)->Arg(160)->Arg(320);

void BM_Hungarian(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  common::Rng rng(3);
  std::vector<std::vector<double>> w(
      static_cast<size_t>(n), std::vector<double>(static_cast<size_t>(n)));
  for (auto& row : w) {
    for (auto& x : row) x = rng.Uniform();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(rel::MaxWeightBipartiteMatching(w));
  }
}
BENCHMARK(BM_Hungarian)->Arg(4)->Arg(8)->Arg(16);

table::UnderlyingData MakeWaves(int m, size_t n) {
  table::UnderlyingData d;
  for (int i = 0; i < m; ++i) {
    table::DataSeries s;
    for (size_t j = 0; j < n; ++j) {
      s.y.push_back(std::sin(static_cast<double>(j) * 0.1 + i) * 10.0);
    }
    d.push_back(std::move(s));
  }
  return d;
}

void BM_RenderChart(benchmark::State& state) {
  const auto d = MakeWaves(static_cast<int>(state.range(0)), 200);
  for (auto _ : state) {
    benchmark::DoNotOptimize(chart::RenderLineChart(d));
  }
}
BENCHMARK(BM_RenderChart)->Arg(1)->Arg(4)->Arg(8);

void BM_ClassicalExtract(benchmark::State& state) {
  const auto chart = chart::RenderLineChart(
      MakeWaves(static_cast<int>(state.range(0)), 200));
  vision::ClassicalExtractor extractor;
  for (auto _ : state) {
    benchmark::DoNotOptimize(extractor.Extract(chart));
  }
}
BENCHMARK(BM_ClassicalExtract)->Arg(1)->Arg(4);

void BM_MatMul(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  common::Rng rng(5);
  nn::Tensor a = nn::Tensor::RandomNormal({n, n}, 1.0f, &rng, false);
  nn::Tensor b = nn::Tensor::RandomNormal({n, n}, 1.0f, &rng, false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(nn::MatMul(a, b));
  }
}
BENCHMARK(BM_MatMul)->Arg(32)->Arg(64)->Arg(128);

void BM_TransformerForward(benchmark::State& state) {
  common::Rng rng(6);
  nn::TransformerEncoder encoder(32, 2, 64, 2, 16, &rng);
  nn::Tensor x = nn::Tensor::RandomNormal({8, 32}, 1.0f, &rng, false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(encoder.Forward(x));
  }
}
BENCHMARK(BM_TransformerForward);

void BM_TransformerForwardBackward(benchmark::State& state) {
  common::Rng rng(7);
  nn::TransformerEncoder encoder(32, 2, 64, 2, 16, &rng);
  nn::Tensor x = nn::Tensor::RandomNormal({8, 32}, 1.0f, &rng, false);
  for (auto _ : state) {
    nn::Tensor loss = nn::MeanAll(encoder.Forward(x));
    loss.Backward();
    encoder.ZeroGrad();
  }
}
BENCHMARK(BM_TransformerForwardBackward);

void BM_IntervalTreeQuery(benchmark::State& state) {
  common::Rng rng(8);
  std::vector<index::Interval> intervals;
  for (int i = 0; i < static_cast<int>(state.range(0)); ++i) {
    const double lo = rng.Uniform(-1000.0, 1000.0);
    intervals.push_back({lo, lo + rng.Uniform(0.0, 100.0), i});
  }
  index::IntervalTree tree(std::move(intervals));
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.QueryOverlap(-50.0, 50.0));
  }
}
BENCHMARK(BM_IntervalTreeQuery)->Arg(1000)->Arg(10000);

void BM_LshQuery(benchmark::State& state) {
  common::Rng rng(9);
  index::LshConfig config;
  index::RandomHyperplaneLsh lsh(32, config);
  for (int i = 0; i < static_cast<int>(state.range(0)); ++i) {
    std::vector<float> v(32);
    for (auto& x : v) x = static_cast<float>(rng.Normal());
    lsh.Insert(v, i);
  }
  std::vector<float> q(32);
  for (auto& x : q) x = static_cast<float>(rng.Normal());
  for (auto _ : state) {
    benchmark::DoNotOptimize(lsh.Query(q));
  }
}
BENCHMARK(BM_LshQuery)->Arg(1000)->Arg(10000);

}  // namespace
}  // namespace fcm

BENCHMARK_MAIN();
