// Google-benchmark micro-benchmarks for the substrates: DTW, Hungarian
// matching, chart rendering, visual extraction, tensor ops, transformer
// forward/backward, interval tree and LSH queries — plus per-kernel
// GFLOP/s for every SIMD dispatch target compiled into the binary (the
// BM_Simd* / BM_MatMulDispatch families; targets this machine cannot run
// report themselves as skipped).

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdint>

#include "chart/renderer.h"
#include "common/rng.h"
#include "common/simd.h"
#include "index/interval_tree.h"
#include "index/lsh.h"
#include "nn/attention.h"
#include "nn/ops.h"
#include "relevance/dtw.h"
#include "relevance/hungarian.h"
#include "vision/classical_extractor.h"

namespace fcm {
namespace {

std::vector<double> RandomSeries(size_t n, uint64_t seed) {
  common::Rng rng(seed);
  std::vector<double> v(n);
  for (auto& x : v) x = rng.Normal();
  return v;
}

void BM_DtwFull(benchmark::State& state) {
  const auto a = RandomSeries(static_cast<size_t>(state.range(0)), 1);
  const auto b = RandomSeries(static_cast<size_t>(state.range(0)), 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rel::DtwDistance(a, b));
  }
}
BENCHMARK(BM_DtwFull)->Arg(64)->Arg(160)->Arg(320);

void BM_DtwBanded(benchmark::State& state) {
  const auto a = RandomSeries(static_cast<size_t>(state.range(0)), 1);
  const auto b = RandomSeries(static_cast<size_t>(state.range(0)), 2);
  rel::DtwOptions options;
  options.band_fraction = 0.2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rel::DtwDistance(a, b, options));
  }
}
BENCHMARK(BM_DtwBanded)->Arg(64)->Arg(160)->Arg(320);

void BM_DtwPruned(benchmark::State& state) {
  // Dissimilar random pairs with a tight cutoff: the LB_Keogh-style
  // prefilter should reject most pairs in O(n) without running the DP.
  const auto a = RandomSeries(static_cast<size_t>(state.range(0)), 1);
  const auto b = RandomSeries(static_cast<size_t>(state.range(0)), 2);
  rel::DtwOptions options;
  options.band_fraction = 0.2;
  options.abandon_above = 0.05 * static_cast<double>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(rel::DtwDistance(a, b, options));
  }
}
BENCHMARK(BM_DtwPruned)->Arg(64)->Arg(160)->Arg(320);

void BM_Hungarian(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  common::Rng rng(3);
  std::vector<std::vector<double>> w(
      static_cast<size_t>(n), std::vector<double>(static_cast<size_t>(n)));
  for (auto& row : w) {
    for (auto& x : row) x = rng.Uniform();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(rel::MaxWeightBipartiteMatching(w));
  }
}
BENCHMARK(BM_Hungarian)->Arg(4)->Arg(8)->Arg(16);

table::UnderlyingData MakeWaves(int m, size_t n) {
  table::UnderlyingData d;
  for (int i = 0; i < m; ++i) {
    table::DataSeries s;
    for (size_t j = 0; j < n; ++j) {
      s.y.push_back(std::sin(static_cast<double>(j) * 0.1 + i) * 10.0);
    }
    d.push_back(std::move(s));
  }
  return d;
}

void BM_RenderChart(benchmark::State& state) {
  const auto d = MakeWaves(static_cast<int>(state.range(0)), 200);
  for (auto _ : state) {
    benchmark::DoNotOptimize(chart::RenderLineChart(d));
  }
}
BENCHMARK(BM_RenderChart)->Arg(1)->Arg(4)->Arg(8);

void BM_ClassicalExtract(benchmark::State& state) {
  const auto chart = chart::RenderLineChart(
      MakeWaves(static_cast<int>(state.range(0)), 200));
  vision::ClassicalExtractor extractor;
  for (auto _ : state) {
    benchmark::DoNotOptimize(extractor.Extract(chart));
  }
}
BENCHMARK(BM_ClassicalExtract)->Arg(1)->Arg(4);

void BM_MatMul(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  common::Rng rng(5);
  nn::Tensor a = nn::Tensor::RandomNormal({n, n}, 1.0f, &rng, false);
  nn::Tensor b = nn::Tensor::RandomNormal({n, n}, 1.0f, &rng, false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(nn::MatMul(a, b));
  }
}
BENCHMARK(BM_MatMul)->Arg(32)->Arg(64)->Arg(128);

void BM_TransformerForward(benchmark::State& state) {
  common::Rng rng(6);
  nn::TransformerEncoder encoder(32, 2, 64, 2, 16, &rng);
  nn::Tensor x = nn::Tensor::RandomNormal({8, 32}, 1.0f, &rng, false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(encoder.Forward(x));
  }
}
BENCHMARK(BM_TransformerForward);

void BM_TransformerForwardBackward(benchmark::State& state) {
  common::Rng rng(7);
  nn::TransformerEncoder encoder(32, 2, 64, 2, 16, &rng);
  nn::Tensor x = nn::Tensor::RandomNormal({8, 32}, 1.0f, &rng, false);
  for (auto _ : state) {
    nn::Tensor loss = nn::MeanAll(encoder.Forward(x));
    loss.Backward();
    encoder.ZeroGrad();
  }
}
BENCHMARK(BM_TransformerForwardBackward);

void BM_IntervalTreeQuery(benchmark::State& state) {
  common::Rng rng(8);
  std::vector<index::Interval> intervals;
  for (int i = 0; i < static_cast<int>(state.range(0)); ++i) {
    const double lo = rng.Uniform(-1000.0, 1000.0);
    intervals.push_back({lo, lo + rng.Uniform(0.0, 100.0), i});
  }
  index::IntervalTree tree(std::move(intervals));
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.QueryOverlap(-50.0, 50.0));
  }
}
BENCHMARK(BM_IntervalTreeQuery)->Arg(1000)->Arg(10000);

// ---- SIMD kernels, one benchmark per (kernel, dispatch target). The
// second range argument is the simd::Target enum value; the GFLOP/s
// counter is what the acceptance bar (>= 2x dot, >= 1.5x GEMM for avx2
// over scalar) reads. ----

/// Forces `target` for one benchmark run; reports skip when this binary
/// or machine lacks it. Restores startup dispatch on destruction.
class BenchTarget {
 public:
  BenchTarget(benchmark::State& state, int64_t target_index)
      : ok_(simd::SetTarget(static_cast<simd::Target>(target_index))) {
    if (!ok_) {
      state.SkipWithError("dispatch target not available on this machine");
    } else {
      state.SetLabel(
          simd::TargetName(static_cast<simd::Target>(target_index)));
    }
  }
  ~BenchTarget() { simd::ResetTarget(); }
  bool ok() const { return ok_; }

 private:
  bool ok_;
};

std::vector<float> RandomF32(size_t n, uint64_t seed) {
  common::Rng rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.Normal());
  return v;
}

void SetGflops(benchmark::State& state, double flops_per_iteration) {
  state.counters["GFLOP/s"] =
      benchmark::Counter(flops_per_iteration * 1e-9,
                         benchmark::Counter::kIsIterationInvariantRate);
}

void BM_SimdDotF32(benchmark::State& state) {
  BenchTarget target(state, state.range(1));
  if (!target.ok()) return;
  const size_t n = static_cast<size_t>(state.range(0));
  const auto a = RandomF32(n, 101);
  const auto b = RandomF32(n, 102);
  for (auto _ : state) {
    benchmark::DoNotOptimize(simd::DotF32(a.data(), b.data(), n));
  }
  SetGflops(state, 2.0 * static_cast<double>(n));
}
BENCHMARK(BM_SimdDotF32)
    ->ArgNames({"n", "target"})
    ->ArgsProduct({{64, 1024, 16384}, {0, 1, 2}});

void BM_SimdDotF64(benchmark::State& state) {
  BenchTarget target(state, state.range(1));
  if (!target.ok()) return;
  const size_t n = static_cast<size_t>(state.range(0));
  const auto a = RandomSeries(n, 103);
  const auto b = RandomSeries(n, 104);
  for (auto _ : state) {
    benchmark::DoNotOptimize(simd::DotF64(a.data(), b.data(), n));
  }
  SetGflops(state, 2.0 * static_cast<double>(n));
}
BENCHMARK(BM_SimdDotF64)
    ->ArgNames({"n", "target"})
    ->ArgsProduct({{1024, 16384}, {0, 1, 2}});

void BM_SimdReduceSumF64(benchmark::State& state) {
  BenchTarget target(state, state.range(1));
  if (!target.ok()) return;
  const size_t n = static_cast<size_t>(state.range(0));
  const auto a = RandomSeries(n, 105);
  for (auto _ : state) {
    benchmark::DoNotOptimize(simd::ReduceSumF64(a.data(), n));
  }
  SetGflops(state, static_cast<double>(n));
}
BENCHMARK(BM_SimdReduceSumF64)
    ->ArgNames({"n", "target"})
    ->ArgsProduct({{1024, 16384}, {0, 1, 2}});

void BM_SimdAxpyF32(benchmark::State& state) {
  BenchTarget target(state, state.range(1));
  if (!target.ok()) return;
  const size_t n = static_cast<size_t>(state.range(0));
  const auto x = RandomF32(n, 106);
  auto y = RandomF32(n, 107);
  for (auto _ : state) {
    simd::AxpyF32(1.000001f, x.data(), y.data(), n);
    benchmark::DoNotOptimize(y.data());
  }
  SetGflops(state, 2.0 * static_cast<double>(n));
}
BENCHMARK(BM_SimdAxpyF32)
    ->ArgNames({"n", "target"})
    ->ArgsProduct({{1024, 16384}, {0, 1, 2}});

std::vector<int8_t> RandomI8(size_t n, uint64_t seed) {
  common::Rng rng(seed);
  std::vector<int8_t> v(n);
  for (auto& x : v) {
    // The quantizer's range contract: [-127, 127], never -128.
    x = static_cast<int8_t>(static_cast<int>(rng.Uniform() * 255.0) - 127);
  }
  return v;
}

void BM_SimdDotI8(benchmark::State& state) {
  // Quantized-tier dot product; the GFLOP/s counter is the f32-equivalent
  // multiply-accumulate rate (acceptance: >= 1.5x BM_SimdDotF32 on avx2).
  BenchTarget target(state, state.range(1));
  if (!target.ok()) return;
  const size_t n = static_cast<size_t>(state.range(0));
  const auto a = RandomI8(n, 111);
  const auto b = RandomI8(n, 112);
  for (auto _ : state) {
    benchmark::DoNotOptimize(simd::DotI8(a.data(), b.data(), n));
  }
  SetGflops(state, 2.0 * static_cast<double>(n));
}
BENCHMARK(BM_SimdDotI8)
    ->ArgNames({"n", "target"})
    ->ArgsProduct({{64, 1024, 16384}, {0, 1, 2}});

void BM_SimdGemmI8F32(benchmark::State& state) {
  // The mean-similarity prefilter shape: one quantized query row against
  // a block of candidate rows, dequantized in the epilogue.
  BenchTarget target(state, state.range(1));
  if (!target.ok()) return;
  const size_t dim = static_cast<size_t>(state.range(0));
  const size_t rows = 64;
  const auto a = RandomI8(dim, 113);
  const auto b = RandomI8(rows * dim, 114);
  const auto scales = RandomF32(rows, 115);
  std::vector<float> c(rows);
  for (auto _ : state) {
    simd::GemmI8F32(a.data(), b.data(), dim, dim, 0.02f, scales.data(),
                    c.data(), rows);
    benchmark::DoNotOptimize(c.data());
  }
  SetGflops(state, 2.0 * static_cast<double>(rows * dim));
}
BENCHMARK(BM_SimdGemmI8F32)
    ->ArgNames({"dim", "target"})
    ->ArgsProduct({{32, 128}, {0, 1, 2}});

void BM_MatMulDispatch(benchmark::State& state) {
  // The end-to-end GEMM path (blocked loops + micro-kernel) per target;
  // flops = 2 n^3 per MatMul.
  BenchTarget target(state, state.range(1));
  if (!target.ok()) return;
  const int n = static_cast<int>(state.range(0));
  common::Rng rng(108);
  nn::Tensor a = nn::Tensor::RandomNormal({n, n}, 1.0f, &rng, false);
  nn::Tensor b = nn::Tensor::RandomNormal({n, n}, 1.0f, &rng, false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(nn::MatMul(a, b));
  }
  SetGflops(state, 2.0 * std::pow(static_cast<double>(n), 3));
}
BENCHMARK(BM_MatMulDispatch)
    ->ArgNames({"n", "target"})
    ->ArgsProduct({{64, 128, 256}, {0, 1, 2}});

void BM_MatMulBackwardDispatch(benchmark::State& state) {
  BenchTarget target(state, state.range(1));
  if (!target.ok()) return;
  const int n = static_cast<int>(state.range(0));
  common::Rng rng(109);
  nn::Tensor a = nn::Tensor::RandomNormal({n, n}, 1.0f, &rng, true);
  nn::Tensor b = nn::Tensor::RandomNormal({n, n}, 1.0f, &rng, true);
  for (auto _ : state) {
    nn::Tensor loss = nn::SumAll(nn::MatMul(a, b));
    loss.Backward();
    a.grad().assign(a.grad().size(), 0.0f);
    b.grad().assign(b.grad().size(), 0.0f);
  }
  // Forward 2n^3 plus two n^3-sized backward GEMMs.
  SetGflops(state, 6.0 * std::pow(static_cast<double>(n), 3));
}
BENCHMARK(BM_MatMulBackwardDispatch)
    ->ArgNames({"n", "target"})
    ->ArgsProduct({{64, 128}, {0, 1, 2}});

void BM_DtwDispatch(benchmark::State& state) {
  BenchTarget target(state, state.range(1));
  if (!target.ok()) return;
  const auto a = RandomSeries(static_cast<size_t>(state.range(0)), 1);
  const auto b = RandomSeries(static_cast<size_t>(state.range(0)), 2);
  rel::DtwOptions options;
  options.band_fraction = 0.2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rel::DtwDistance(a, b, options));
  }
}
BENCHMARK(BM_DtwDispatch)
    ->ArgNames({"n", "target"})
    ->ArgsProduct({{160, 320}, {0, 1, 2}});

void BM_LshCodeDispatch(benchmark::State& state) {
  // Hyperplane sign codes: num_bits x num_tables dot products per item.
  BenchTarget target(state, state.range(1));
  if (!target.ok()) return;
  common::Rng rng(110);
  index::LshConfig config;
  const int dim = static_cast<int>(state.range(0));
  index::RandomHyperplaneLsh lsh(dim, config);
  std::vector<float> v(static_cast<size_t>(dim));
  for (auto& x : v) x = static_cast<float>(rng.Normal());
  int64_t payload = 0;
  for (auto _ : state) {
    lsh.Insert(v, payload++);
  }
  SetGflops(state, 2.0 * static_cast<double>(dim) * config.num_bits *
                       config.num_tables);
}
BENCHMARK(BM_LshCodeDispatch)
    ->ArgNames({"dim", "target"})
    ->ArgsProduct({{32, 128}, {0, 1, 2}});

void BM_LshQuery(benchmark::State& state) {
  common::Rng rng(9);
  index::LshConfig config;
  index::RandomHyperplaneLsh lsh(32, config);
  for (int i = 0; i < static_cast<int>(state.range(0)); ++i) {
    std::vector<float> v(32);
    for (auto& x : v) x = static_cast<float>(rng.Normal());
    lsh.Insert(v, i);
  }
  std::vector<float> q(32);
  for (auto& x : q) x = static_cast<float>(rng.Normal());
  for (auto _ : state) {
    benchmark::DoNotOptimize(lsh.Query(q));
  }
}
BENCHMARK(BM_LshQuery)->Arg(1000)->Arg(10000);

}  // namespace
}  // namespace fcm

BENCHMARK_MAIN();
