// Reproduces Table II: overall effectiveness (prec@k, ndcg@k) of CML,
// DE-LN, Opt-LN, Qetch*, and FCM on all queries and on the with/without
// data-aggregation splits.

#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_common.h"

namespace fcm {
namespace {

int Run() {
  const bench::BenchScale scale = bench::ReadScale();
  bench::PrintHeader(
      "Table II: Effectiveness for all queries and with/without DA",
      "paper Sec. VII-C, Table II", scale);
  const benchgen::Benchmark b = bench::BuildBench(scale);

  const core::FcmConfig model_config = bench::DefaultModelConfig(scale);
  const core::TrainOptions train_options =
      bench::DefaultTrainOptions(scale);

  // LineNet is shared by DE-LN and Opt-LN and trained once.
  baselines::LineNetConfig linenet_config;
  auto linenet =
      std::make_shared<baselines::LineNetLite>(linenet_config);
  baselines::TrainLineNet(linenet.get(), b.lake, b.training);

  std::vector<std::unique_ptr<baselines::RetrievalMethod>> methods;
  methods.push_back(
      std::make_unique<baselines::CmlMethod>(model_config, train_options));
  methods.push_back(std::make_unique<baselines::DeLnMethod>(
      linenet, /*train_on_fit=*/false));
  methods.push_back(std::make_unique<baselines::OptLnMethod>(
      linenet, /*train_on_fit=*/false));
  methods.push_back(std::make_unique<baselines::QetchStarMethod>());
  methods.push_back(
      std::make_unique<baselines::FcmMethod>(model_config, train_options));

  std::vector<eval::MethodResults> results;
  for (auto& method : methods) {
    std::printf("fitting %s ...\n", method->name());
    std::fflush(stdout);
    method->Fit(b.lake, b.training);
    results.push_back(eval::EvaluateMethod(*method, b));
  }

  auto header = std::vector<std::string>{"", "Metrics"};
  for (const auto& r : results) header.push_back(r.method_name);

  eval::ReportTable table(header);
  auto add_rows = [&](const char* split,
                      auto agg_of) {
    std::vector<std::string> prec_row = {split,
                                         "prec@" + std::to_string(scale.k)};
    std::vector<std::string> ndcg_row = {"",
                                         "ndcg@" + std::to_string(scale.k)};
    for (const auto& r : results) {
      const eval::Aggregate a = agg_of(r);
      prec_row.push_back(bench::PrecCell(a));
      ndcg_row.push_back(bench::NdcgCell(a));
    }
    table.AddRow(prec_row);
    table.AddRow(ndcg_row);
  };
  add_rows("Overall",
           [](const eval::MethodResults& r) { return r.Overall(); });
  add_rows("With DA",
           [](const eval::MethodResults& r) { return r.WithDa(); });
  add_rows("Without DA",
           [](const eval::MethodResults& r) { return r.WithoutDa(); });
  table.Print();

  std::printf(
      "\nPaper (Table II) overall: CML 0.349/0.246, DE-LN 0.224/0.162, "
      "Opt-LN 0.287/0.211, Qetch* 0.256/0.179, FCM 0.454/0.347.\n"
      "Expected shape: FCM best overall; every method drops on DA "
      "queries; FCM drops least.\n");
  return 0;
}

}  // namespace
}  // namespace fcm

int main() { return fcm::Run(); }
