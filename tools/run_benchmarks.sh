#!/usr/bin/env bash
# Builds Release, runs the throughput bench suite, and writes
# BENCH_<date>.json at the repo root — the perf trajectory consumed by
# future performance PRs. The JSON's "simd" section records the active
# kernel dispatch target plus per-target GFLOP/s; set FCM_SIMD
# (scalar|avx2|neon|auto) to override the dispatch for a run. The "async"
# section records the AsyncSearchService phase (QPS, p50/p99 latency); the
# service runs with block-mode backpressure, so any dropped (rejected or
# cancelled) request is a bug and fails this script loudly.
# Usage: tools/run_benchmarks.sh [build_dir]
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${1:-"$REPO_ROOT/build"}"
OUT="$REPO_ROOT/BENCH_$(date +%Y-%m-%d).json"

cmake -B "$BUILD_DIR" -S "$REPO_ROOT" -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" --target bench_search_throughput -j"$(nproc)"

BIN="$BUILD_DIR/bench_search_throughput"
if [[ ! -x "$BIN" ]]; then
  echo "error: $BIN is missing or not executable (build failed or the" \
       "target was disabled); no benchmark JSON written" >&2
  exit 1
fi

"$BIN" "$OUT"

# Block-mode backpressure means no request may ever be dropped; a nonzero
# rejected/cancelled count in the async section is a serving bug. A json
# without an async section means a stale bench binary served the run —
# also an error, not a silent pass.
if ! grep -q '"async": {' "$OUT"; then
  echo "error: $OUT has no \"async\" section (stale bench_search_throughput" \
       "binary in $BUILD_DIR?)" >&2
  exit 1
fi
# `|| true`: under pipefail a no-match grep would otherwise kill the
# script silently; awk still prints 0 on empty input.
DROPPED=$(grep -oE '"(rejected|cancelled|failed)": [0-9]+' "$OUT" \
          | awk '{sum += $2} END {print sum + 0}' || true)
if [[ "$DROPPED" -ne 0 ]]; then
  echo "error: async serving phase dropped $DROPPED request(s) in block" \
       "mode (see the \"async\" section of $OUT)" >&2
  exit 1
fi

echo "wrote $OUT (simd dispatch: $(grep -o '"active": "[a-z0-9]*"' "$OUT" \
     | head -1 | cut -d'"' -f4))"
ASYNC=$(sed -n '/"async": {/,/},/p' "$OUT")
echo "async serving: $(echo "$ASYNC" | grep -o '"qps": [0-9.]*' \
     | cut -d' ' -f2) qps, p50/p99 $(echo "$ASYNC" \
     | grep -o '"p50_ms": [0-9.]*' | cut -d' ' -f2)/$(echo "$ASYNC" \
     | grep -o '"p99_ms": [0-9.]*' | cut -d' ' -f2) ms, 0 dropped"
