#!/usr/bin/env bash
# Builds Release, runs the throughput bench suite, and writes
# BENCH_<date>.json at the repo root — the perf trajectory consumed by
# future performance PRs (schema: docs/BENCHMARKS.md). The JSON's "simd"
# section records the active kernel dispatch target plus per-target
# GFLOP/s; set FCM_SIMD (scalar|avx2|neon|auto) to override the dispatch
# for a run. The "async" section records the serving phases — closed- and
# open-loop, static and adaptive micro-batching, with the adaptive
# controller's decision trace; the service runs with block-mode
# backpressure in every phase, so any dropped (rejected or cancelled)
# request is a bug and fails this script loudly. The "faults" section
# records the fault-injection phase (keyed failpoint poisoning a known
# request subset); its isolation/recovery verdicts also gate this script,
# and the whole file must parse as JSON before anything trusts it. The
# "quant" section compares the int8 quantized embedding tier against f32;
# its top-k recall must clear the recall_floor recorded in the JSON, the
# embedding footprint must stay under the 0.30x ceiling, and int8
# determinism plus snapshot round-trip verdicts gate the run. The
# "ingest" section records serving QPS/p99 while a writer appends tables
# at a fixed cadence with background + forced compaction; its
# epoch-determinism verdict (post-append rankings bit-identical to a
# from-scratch build) gates the run. A "machine" section records what
# hardware served the numbers.
#
# The batching knobs are passed as CLI flags so a BENCH json names the
# exact command that reproduces it; override via env:
#   FCM_BENCH_ASYNC_QUEUE      request-queue capacity       (default 64)
#   FCM_BENCH_MAX_BATCH        micro-batch size cap         (default 16)
#   FCM_BENCH_MAX_DELAY_MS     static coalesce window / adaptive window
#                              cap                          (default 2)
#   FCM_BENCH_ADAPTIVE         0 skips the adaptive phases  (default 1)
# Usage: tools/run_benchmarks.sh [build_dir]
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${1:-"$REPO_ROOT/build"}"
OUT="$REPO_ROOT/BENCH_$(date +%Y-%m-%d).json"

ASYNC_QUEUE="${FCM_BENCH_ASYNC_QUEUE:-64}"
MAX_BATCH="${FCM_BENCH_MAX_BATCH:-16}"
MAX_DELAY_MS="${FCM_BENCH_MAX_DELAY_MS:-2}"
ADAPTIVE="${FCM_BENCH_ADAPTIVE:-1}"

cmake -B "$BUILD_DIR" -S "$REPO_ROOT" -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" --target bench_search_throughput -j"$(nproc)"

BIN="$BUILD_DIR/bench_search_throughput"
if [[ ! -x "$BIN" ]]; then
  echo "error: $BIN is missing or not executable (build failed or the" \
       "target was disabled); no benchmark JSON written" >&2
  exit 1
fi

"$BIN" --out="$OUT" --async-queue="$ASYNC_QUEUE" \
       --async-max-batch="$MAX_BATCH" --async-max-delay-ms="$MAX_DELAY_MS" \
       --async-adaptive="$ADAPTIVE"

# The trajectory file is consumed programmatically by future perf PRs, so
# an output that does not parse as JSON is an error here, not a surprise
# there. (The bench assembles the report by hand; a truncated snprintf or
# a misplaced comma would otherwise slip through.)
if ! python3 -c 'import json,sys; json.load(open(sys.argv[1]))' "$OUT"; then
  echo "error: $OUT is not parseable JSON (truncated or malformed bench" \
       "output); fix bench_search_throughput before trusting this run" >&2
  exit 1
fi
# Block-mode backpressure means no request may ever be dropped; a nonzero
# rejected/cancelled count in any async phase is a serving bug. A json
# without an async section means a stale bench binary served the run —
# also an error, not a silent pass.
if ! grep -q '"async": {' "$OUT"; then
  echo "error: $OUT has no \"async\" section (stale bench_search_throughput" \
       "binary in $BUILD_DIR?)" >&2
  exit 1
fi
# Same staleness guard for the fault-injection phase, and its correctness
# verdicts (blast-radius isolation + post-fault recovery) fail the run.
if ! grep -q '"faults": {' "$OUT"; then
  echo "error: $OUT has no \"faults\" section (stale bench binary?)" >&2
  exit 1
fi
if ! python3 -c '
import json, sys
f = json.load(open(sys.argv[1]))["faults"]
sys.exit(0 if f["isolation_ok"] and f["recovered_clean"] and f["clean"]
         else 1)' "$OUT"; then
  echo "error: fault-injection phase failed isolation or recovery (see" \
       "the \"faults\" section of $OUT)" >&2
  exit 1
fi
# Staleness guard for the snapshot phase, then its gates: save/open must
# succeed, snapshot-served rankings must be bit-identical across every
# strategy, and opening a snapshot must beat rebuilding the engine — the
# whole point of frozen columnar storage (see docs/BENCHMARKS.md).
if ! grep -q '"snapshot": {' "$OUT"; then
  echo "error: $OUT has no \"snapshot\" section (stale bench binary?)" >&2
  exit 1
fi
if ! python3 -c '
import json, sys
s = json.load(open(sys.argv[1]))["snapshot"]
ok = s["save_open_ok"] and s["identical_topk"]
ok = ok and s["open_seconds"] < s["rebuild_seconds"]
sys.exit(0 if ok else 1)' "$OUT"; then
  echo "error: snapshot phase failed (save/open error, non-identical" \
       "rankings, or open slower than rebuild; see the \"snapshot\"" \
       "section of $OUT)" >&2
  exit 1
fi
# Staleness guards for the machine and quant sections, then the quant
# gates: recall at or above the floor the JSON itself records (a bench
# that stopped stating its floor is a bug, not a pass), footprint at or
# under the 0.30x ceiling, int8 determinism, and snapshot round-trip.
if ! grep -q '"machine": {' "$OUT"; then
  echo "error: $OUT has no \"machine\" section (stale bench binary?)" >&2
  exit 1
fi
if ! grep -q '"quant": {' "$OUT"; then
  echo "error: $OUT has no \"quant\" section (stale bench binary?)" >&2
  exit 1
fi
if ! python3 -c '
import json, sys
q = json.load(open(sys.argv[1]))["quant"]
floor = q["recall_floor"]
ok = q["topk_recall_vs_f32"] >= floor
ok = ok and q["embedding_bytes_ratio"] <= q["bytes_ratio_ceiling"]
ok = ok and q["determinism_ok"] and q["snapshot_save_open_ok"]
ok = ok and q["snapshot_identical_topk"]
sys.exit(0 if ok else 1)' "$OUT"; then
  echo "error: quant phase failed (int8 top-k recall below recall_floor," \
       "embedding bytes over the 0.30x ceiling, non-deterministic int8" \
       "rankings, or a broken int8 snapshot round-trip; see the \"quant\"" \
       "section of $OUT)" >&2
  exit 1
fi
# Staleness guard for the ingest section, then its gate: the
# epoch-determinism verdict (the post-append engine must rank
# bit-identically to a from-scratch build over the same tables) and a
# clean serving run (every future resolved with hits, every append and
# compaction succeeded).
if ! grep -q '"ingest": {' "$OUT"; then
  echo "error: $OUT has no \"ingest\" section (stale bench binary?)" >&2
  exit 1
fi
if ! python3 -c '
import json, sys
g = json.load(open(sys.argv[1]))["ingest"]
sys.exit(0 if g["epoch_determinism_ok"] and g["clean"] else 1)' "$OUT"; then
  echo "error: ingest phase failed the epoch-determinism verdict or" \
       "dropped work under live appends (see the \"ingest\" section of" \
       "$OUT)" >&2
  exit 1
fi
# `|| true`: under pipefail a no-match grep would otherwise kill the
# script silently; awk still prints 0 on empty input.
DROPPED=$(grep -oE '"(rejected|cancelled|failed)": [0-9]+' "$OUT" \
          | awk '{sum += $2} END {print sum + 0}' || true)
if [[ "$DROPPED" -ne 0 ]]; then
  echo "error: async serving phases dropped $DROPPED request(s) in block" \
       "mode (see the \"async\" section of $OUT)" >&2
  exit 1
fi

echo "wrote $OUT (simd dispatch: $(grep -o '"active": "[a-z0-9]*"' "$OUT" \
     | head -1 | cut -d'"' -f4))"
# The async section's legacy summary line (closed-loop delay-0 phase) is
# the first line carrying qps_speedup_vs_serial; p50/p99 head -1 are the
# same phase's.
QPS=$(grep -m1 '"qps_speedup_vs_serial"' "$OUT" \
      | grep -o '"qps": [0-9.]*' | cut -d' ' -f2)
echo "async serving (closed-loop, delay 0): $QPS qps, p50/p99 $(grep -o \
     '"p50_ms": [0-9.]*' "$OUT" | head -1 | cut -d' ' -f2)/$(grep -o \
     '"p99_ms": [0-9.]*' "$OUT" | head -1 | cut -d' ' -f2) ms, 0 dropped"
if [[ "$ADAPTIVE" != "0" ]]; then
  echo "adaptive vs static: open-loop qps ratio $(grep -o \
       '"open_qps_ratio": [0-9.]*' "$OUT" | cut -d' ' -f2) (>=1 beats best" \
       "static), closed-loop p99 ratio $(grep -o \
       '"closed_p99_ratio": [0-9.]*' "$OUT" | cut -d' ' -f2) (vs delay-0)"
fi
echo "faults: $(grep -o '"injected": [0-9]*' "$OUT" | cut -d' ' -f2)" \
     "injected, fault/healthy qps ratio $(grep -o \
     '"fault_qps_ratio_vs_healthy": [0-9.]*' "$OUT" | cut -d' ' -f2)," \
     "isolation+recovery clean"
echo "snapshot: open $(grep -o '"open_seconds": [0-9.]*' "$OUT" \
     | cut -d' ' -f2)s vs rebuild $(grep -o '"rebuild_seconds": [0-9.]*' \
     "$OUT" | cut -d' ' -f2)s ($(grep -o \
     '"open_speedup_vs_rebuild": [0-9.]*' "$OUT" | cut -d' ' -f2)x)," \
     "rankings identical"
echo "quant: int8 tier $(grep -o '"embedding_bytes_ratio": [0-9.]*' "$OUT" \
     | cut -d' ' -f2)x of f32 bytes, top-k recall $(grep -o \
     '"topk_recall_vs_f32": [0-9.]*' "$OUT" | cut -d' ' -f2) (floor" \
     "$(grep -o '"recall_floor": [0-9.]*' "$OUT" | cut -d' ' -f2))," \
     "deterministic + snapshot round-trip clean"
echo "ingest: $(grep -o '"serving_qps": [0-9.]*' "$OUT" \
     | cut -d' ' -f2) qps under live appends, mid-stream compact pause" \
     "$(grep -o '"mid_compact_pause_ms": [0-9.]*' "$OUT" \
     | cut -d' ' -f2) ms, epoch determinism verified"
