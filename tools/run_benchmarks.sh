#!/usr/bin/env bash
# Builds Release, runs the throughput bench suite, and writes
# BENCH_<date>.json at the repo root — the perf trajectory consumed by
# future performance PRs. The JSON's "simd" section records the active
# kernel dispatch target plus per-target GFLOP/s; set FCM_SIMD
# (scalar|avx2|neon|auto) to override the dispatch for a run.
# Usage: tools/run_benchmarks.sh [build_dir]
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${1:-"$REPO_ROOT/build"}"
OUT="$REPO_ROOT/BENCH_$(date +%Y-%m-%d).json"

cmake -B "$BUILD_DIR" -S "$REPO_ROOT" -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" --target bench_search_throughput -j"$(nproc)"

BIN="$BUILD_DIR/bench_search_throughput"
if [[ ! -x "$BIN" ]]; then
  echo "error: $BIN is missing or not executable (build failed or the" \
       "target was disabled); no benchmark JSON written" >&2
  exit 1
fi

"$BIN" "$OUT"
echo "wrote $OUT (simd dispatch: $(grep -o '"active": "[a-z0-9]*"' "$OUT" \
     | head -1 | cut -d'"' -f4))"
