#!/usr/bin/env bash
# Builds the stress suites under ThreadSanitizer AND AddressSanitizer and
# runs every ctest target labeled `stress` in each build tree:
#   - tests/fault_stress_test.cc: a seeded randomized fault schedule
#     hammers AsyncSearchService's recovery paths — RecoverBatch re-runs,
#     deadline shedding, breaker transitions;
#   - tests/ingest_stress_test.cc: concurrent writer/reader/compactor
#     interleavings over the epoch-based mutable index (pinned readers,
#     async requests, background compaction racing explicit Compact).
# TSan watches the settle/accounting and epoch publish/pin ordering; ASan
# watches segment retirement (a retired epoch's buffers must outlive its
# last reader). Separate build trees keep instrumented binaries out of
# the Release build.
#
#   FCM_STRESS_REQUESTS  requests per stress run          (default 200)
#   FCM_STRESS_SEED      stress-schedule seed             (default 1234)
# Usage: tools/run_fault_stress.sh [tsan_build_dir [asan_build_dir]]
#        (defaults build-tsan and build-asan)
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
TSAN_DIR="${1:-"$REPO_ROOT/build-tsan"}"
ASAN_DIR="${2:-"$REPO_ROOT/build-asan"}"

run_pass() {  # run_pass <sanitizer> <build_dir> <env_var=opts>
  local sanitizer="$1" build_dir="$2" san_env="$3"
  cmake -B "$build_dir" -S "$REPO_ROOT" -DFCM_SANITIZE="$sanitizer" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build "$build_dir" --target fault_stress_test \
        --target ingest_stress_test -j"$(nproc)"
  # halt_on_error: a single sanitizer report is a failure, not a log line.
  env "$san_env" \
      ctest --test-dir "$build_dir" -L stress --output-on-failure
  echo "stress suites passed under ${sanitizer} sanitizer"
}

run_pass thread "$TSAN_DIR" "TSAN_OPTIONS=${TSAN_OPTIONS:-halt_on_error=1}"
run_pass address "$ASAN_DIR" "ASAN_OPTIONS=${ASAN_OPTIONS:-halt_on_error=1}"

echo "fault + ingest stress passed under TSan and ASan (seed" \
     "${FCM_STRESS_SEED:-1234}, ${FCM_STRESS_REQUESTS:-200} requests;" \
     "rerun with FCM_STRESS_SEED to explore other schedules)"
