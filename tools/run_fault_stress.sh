#!/usr/bin/env bash
# Builds the fault-injection stress suite under ThreadSanitizer and runs
# every ctest target labeled `stress` (tests/fault_stress_test.cc): a
# seeded randomized fault schedule hammers AsyncSearchService's recovery
# paths — RecoverBatch re-runs, deadline shedding, breaker transitions —
# while TSan watches the settle/accounting ordering. A separate build
# tree keeps the instrumented binaries out of the Release build.
#
#   FCM_STRESS_REQUESTS  total requests per stress run   (default 200)
#   FCM_STRESS_SEED      chaos-schedule seed             (default 1234)
# Usage: tools/run_fault_stress.sh [build_dir]   (default build-tsan)
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${1:-"$REPO_ROOT/build-tsan"}"

cmake -B "$BUILD_DIR" -S "$REPO_ROOT" -DFCM_SANITIZE=thread \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR" --target fault_stress_test -j"$(nproc)"

# halt_on_error: a single race report is a failure, not a log line.
TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}" \
    ctest --test-dir "$BUILD_DIR" -L stress --output-on-failure

echo "fault stress passed under TSan (seed ${FCM_STRESS_SEED:-1234}," \
     "${FCM_STRESS_REQUESTS:-200} requests; rerun with FCM_STRESS_SEED" \
     "to explore other schedules)"
