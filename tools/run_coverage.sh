#!/usr/bin/env bash
# Per-subsystem line-coverage report with a hard gate on the two
# subsystems this repo's correctness story leans on: src/index (epoch
# publication, pinned serving, ingestion/compaction) and src/storage
# (snapshot encode/decode) must each stay >= 80% line coverage or the
# script fails. Everything else is reported but not gated.
#
# Pipeline: a gcov-instrumented build tree (-DFCM_COVERAGE=ON, Debug so
# optimization doesn't fold lines), the full ctest suite, then `gcov
# --json-format --stdout` over every .gcda aggregated by an embedded
# python3 reducer — a line is covered if ANY translation unit executed
# it. No gcovr/lcov dependency; plain gcov + python3 only (llvm-cov's
# `gcov` mode works as a drop-in via FCM_GCOV=llvm-cov-gcov-wrapper).
#
#   FCM_COVERAGE_MIN   gate threshold in percent        (default 80)
#   FCM_GCOV           gcov binary                      (default gcov)
# Usage: tools/run_coverage.sh [build_dir]   (default build-coverage)
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${1:-"$REPO_ROOT/build-coverage"}"
GCOV_BIN="${FCM_GCOV:-gcov}"
MIN_PCT="${FCM_COVERAGE_MIN:-80}"

for tool in "$GCOV_BIN" python3 cmake; do
  if ! command -v "$tool" >/dev/null 2>&1; then
    echo "SKIP: $tool not found; coverage needs gcov + python3 + cmake"
    exit 0
  fi
done

cmake -B "$BUILD_DIR" -S "$REPO_ROOT" -DFCM_COVERAGE=ON \
      -DCMAKE_BUILD_TYPE=Debug
cmake --build "$BUILD_DIR" -j"$(nproc)"

# Stale counters from a previous run would inflate the report.
find "$BUILD_DIR" -name '*.gcda' -delete

ctest --test-dir "$BUILD_DIR" --output-on-failure -j2

GCOV_BIN="$GCOV_BIN" BUILD_DIR="$BUILD_DIR" REPO_ROOT="$REPO_ROOT" \
MIN_PCT="$MIN_PCT" python3 - <<'PY'
import json, os, subprocess, sys
from collections import defaultdict

build = os.environ["BUILD_DIR"]
root = os.environ["REPO_ROOT"]
gcov = os.environ["GCOV_BIN"]
min_pct = float(os.environ["MIN_PCT"])

gcda = []
for dirpath, _, names in os.walk(build):
    gcda += [os.path.join(dirpath, n) for n in names if n.endswith(".gcda")]
if not gcda:
    sys.exit("no .gcda files produced; did the instrumented tests run?")

# (source file, line) -> executed by any TU. Dedup across TUs matters:
# headers and template bodies show up in many objects.
hits = defaultdict(bool)
for path in gcda:
    proc = subprocess.run(
        [gcov, "--json-format", "--stdout",
         "-o", os.path.dirname(path), path],
        capture_output=True, text=True)
    if proc.returncode != 0:
        sys.exit(f"gcov failed on {path}: {proc.stderr.strip()}")
    for doc in proc.stdout.splitlines():
        if not doc.strip():
            continue
        data = json.loads(doc)
        for f in data.get("files", []):
            name = os.path.normpath(os.path.join(build, f["file"]))
            rel = os.path.relpath(name, root)
            if not rel.startswith("src" + os.sep):
                continue
            for line in f.get("lines", []):
                key = (rel, line["line_number"])
                hits[key] = hits[key] or line["count"] > 0

subsystems = defaultdict(lambda: [0, 0])  # name -> [covered, total]
for (rel, _), covered in hits.items():
    parts = rel.split(os.sep)
    name = parts[1] if len(parts) > 2 else "(top)"
    subsystems[name][1] += 1
    subsystems[name][0] += 1 if covered else 0

print(f"\n{'subsystem':<12} {'covered':>8} {'total':>8} {'line%':>7}")
gated = {"index", "storage"}
failed = []
for name in sorted(subsystems):
    covered, total = subsystems[name]
    pct = 100.0 * covered / total if total else 0.0
    mark = ""
    if name in gated:
        mark = "  (gate >= %.0f%%)" % min_pct
        if pct < min_pct:
            mark += "  FAIL"
            failed.append((name, pct))
    print(f"src/{name:<8} {covered:>8} {total:>8} {pct:>6.1f}%{mark}")

if failed:
    detail = ", ".join(f"src/{n} at {p:.1f}%" for n, p in failed)
    sys.exit(f"\ncoverage gate failed: {detail} (need >= {min_pct:.0f}%)")
print(f"\ncoverage gate passed (src/index, src/storage >= {min_pct:.0f}%)")
PY
