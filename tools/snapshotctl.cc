// snapshotctl — build / inspect / verify frozen index snapshots
// (storage/snapshot.h container, index/engine_snapshot.cc contents).
//
//   snapshotctl build <out.fcmsnap>    build a bench-scale engine (untrained
//                                      model, synthetic lake; FCM_SCALE
//                                      applies) and save its snapshot
//   snapshotctl inspect <file>         print the header and section table
//   snapshotctl verify <file>          container validation + a full engine
//                                      open (mmap), exit 1 on any failure
//
// inspect/verify never modify the file; build writes atomically.

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string>

#include "bench/bench_common.h"
#include "core/fcm_model.h"
#include "index/search_engine.h"
#include "storage/snapshot.h"

namespace fcm {
namespace {

int Build(const std::string& path) {
  const bench::BenchScale scale = bench::ReadScale();
  std::printf("building synthetic lake (FCM_SCALE-dependent)...\n");
  benchgen::Benchmark b = bench::BuildBench(scale);
  core::FcmConfig config = bench::DefaultModelConfig(scale);
  core::FcmModel model(config);
  index::SearchEngine engine(&model, &b.lake);
  engine.Build();
  std::printf("built engine over %zu tables\n", b.lake.size());
  const common::Status s = engine.SaveSnapshot(path);
  if (!s.ok()) {
    std::fprintf(stderr, "save failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s\n", path.c_str());
  return 0;
}

int Inspect(const std::string& path) {
  // Heap read: inspect should work on filesystems where mmap is flaky.
  storage::SnapshotReadOptions options;
  options.use_mmap = false;
  auto reader = storage::SnapshotReader::Open(path, options);
  if (!reader.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 reader.status().ToString().c_str());
    return 1;
  }
  const storage::SnapshotReader& r = *reader.value();
  std::printf("%s: format v%u, %zu bytes, %zu sections\n", path.c_str(),
              r.format_version(), r.file_bytes(), r.section_names().size());
  std::printf("%-24s %12s %10s\n", "section", "bytes", "crc32");
  for (const std::string& name : r.section_names()) {
    std::printf("%-24s %12zu 0x%08" PRIx32 "\n", name.c_str(),
                r.SectionBytes(name), r.SectionCrc(name));
  }
  return 0;
}

int Verify(const std::string& path) {
  // Layer 1: container integrity (magic, version, every checksum, section
  // table shape, byte coverage).
  auto reader = storage::SnapshotReader::Open(path);
  if (!reader.ok()) {
    std::fprintf(stderr, "container: FAIL (%s)\n",
                 reader.status().ToString().c_str());
    return 1;
  }
  std::printf("container: OK (%zu sections, %zu bytes, %s)\n",
              reader.value()->section_names().size(),
              reader.value()->file_bytes(),
              reader.value()->mmap_backed() ? "mmap" : "heap");
  reader.value().reset();
  // Layer 2: the contents decode into a servable engine (frozen-structure
  // invariants, model state shapes, exact block consumption).
  auto engine = index::SearchEngine::OpenSnapshot(path);
  if (!engine.ok()) {
    std::fprintf(stderr, "engine: FAIL (%s)\n",
                 engine.status().ToString().c_str());
    return 1;
  }
  std::printf("engine: OK (lsh %zu bytes, interval tree %zu bytes)\n",
              engine.value()->build_stats().lsh_memory_bytes,
              engine.value()->build_stats().interval_memory_bytes);
  return 0;
}

int Usage() {
  std::fprintf(stderr,
               "usage: snapshotctl build <out.fcmsnap>\n"
               "       snapshotctl inspect <file>\n"
               "       snapshotctl verify <file>\n");
  return 2;
}

}  // namespace
}  // namespace fcm

int main(int argc, char** argv) {
  if (argc != 3) return fcm::Usage();
  const std::string cmd = argv[1];
  const std::string path = argv[2];
  if (cmd == "build") return fcm::Build(path);
  if (cmd == "inspect") return fcm::Inspect(path);
  if (cmd == "verify") return fcm::Verify(path);
  return fcm::Usage();
}
