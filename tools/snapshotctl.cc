// snapshotctl — build / inspect / verify frozen index snapshots
// (storage/snapshot.h container, index/engine_snapshot.cc contents).
//
//   snapshotctl build <out.fcmsnap>    build a bench-scale engine (untrained
//                                      model, synthetic lake; FCM_SCALE
//                                      applies) and save its snapshot
//   snapshotctl inspect <file>         print the header and section table
//                                      (element type, count, bytes/row,
//                                      and the embedding-tier footprint)
//   snapshotctl verify <file>          container validation + a full engine
//                                      open (mmap), exit 1 on any failure
//
// inspect/verify never modify the file; build writes atomically.

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string>

#include "bench/bench_common.h"
#include "common/serialize.h"
#include "core/fcm_model.h"
#include "index/search_engine.h"
#include "storage/snapshot.h"

namespace fcm {
namespace {

int Build(const std::string& path) {
  const bench::BenchScale scale = bench::ReadScale();
  std::printf("building synthetic lake (FCM_SCALE-dependent)...\n");
  benchgen::Benchmark b = bench::BuildBench(scale);
  core::FcmConfig config = bench::DefaultModelConfig(scale);
  core::FcmModel model(config);
  index::SearchEngine engine(&model, &b.lake);
  engine.Build();
  std::printf("built engine over %zu tables\n", b.lake.size());
  const common::Status s = engine.SaveSnapshot(path);
  if (!s.ok()) {
    std::fprintf(stderr, "save failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s\n", path.c_str());
  return 0;
}

/// Element width + label inferred from the section-name suffix (the
/// engine snapshot naming contract, index/engine_snapshot.cc). Framed
/// byte streams (meta, enc.index, model.state) report as raw bytes.
struct ElemType {
  const char* label;
  size_t bytes;
};

ElemType ElemTypeFor(const std::string& name) {
  struct Suffix {
    const char* suffix;
    ElemType type;
  };
  static const Suffix kSuffixes[] = {
      {".f32", {"f32", 4}}, {".f64", {"f64", 8}}, {".u64", {"u64", 8}},
      {".i64", {"i64", 8}}, {".i32", {"i32", 4}}, {".i8", {"i8", 1}},
  };
  for (const auto& s : kSuffixes) {
    const size_t len = std::strlen(s.suffix);
    if (name.size() >= len &&
        name.compare(name.size() - len, len, s.suffix) == 0) {
      return s.type;
    }
  }
  return {"bytes", 1};
}

/// embed_dim from the meta stream (u64 table count, then the config's
/// leading u32 is embed_dim — the documented layout); 0 when unreadable.
size_t ReadEmbedDim(const storage::SnapshotReader& r) {
  auto meta = r.Section("meta");
  if (!meta.ok()) return 0;
  common::BinaryReader reader(meta.value().ToVector());
  if (!reader.ReadU64().ok()) return 0;
  auto dim = reader.ReadU32();
  return dim.ok() ? dim.value() : 0;
}

/// Bytes per logical row: embed_dim elements for mean/hyperplane blocks,
/// one element for the per-row scale vector.
size_t BytesPerRow(const std::string& name, ElemType type,
                   size_t embed_dim) {
  if (name == "means.scale.f32") return type.bytes;
  if (name == "means.f32" || name == "means.i8" ||
      name == "lsh.planes.f32") {
    return type.bytes * embed_dim;
  }
  return 0;
}

int Inspect(const std::string& path) {
  // Heap read: inspect should work on filesystems where mmap is flaky.
  storage::SnapshotReadOptions options;
  options.use_mmap = false;
  auto reader = storage::SnapshotReader::Open(path, options);
  if (!reader.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 reader.status().ToString().c_str());
    return 1;
  }
  const storage::SnapshotReader& r = *reader.value();
  const size_t embed_dim = ReadEmbedDim(r);
  std::printf("%s: format v%u, %zu bytes, %zu sections\n", path.c_str(),
              r.format_version(), r.file_bytes(), r.section_names().size());
  std::printf("%-24s %12s %10s %6s %10s %6s\n", "section", "bytes", "crc32",
              "elem", "count", "B/row");
  for (const std::string& name : r.section_names()) {
    const ElemType type = ElemTypeFor(name);
    const size_t bytes = r.SectionBytes(name);
    const size_t bpr = BytesPerRow(name, type, embed_dim);
    char bpr_str[32] = "-";
    if (bpr > 0) std::snprintf(bpr_str, sizeof(bpr_str), "%zu", bpr);
    std::printf("%-24s %12zu 0x%08" PRIx32 " %6s %10zu %6s\n", name.c_str(),
                bytes, r.SectionCrc(name), type.label, bytes / type.bytes,
                bpr_str);
  }
  // Footprint line: makes the f32-vs-int8 embedding-tier cost auditable
  // straight from the CLI.
  const auto names = r.section_names();
  const bool has_i8 =
      std::find(names.begin(), names.end(), "means.i8") != names.end();
  const bool has_f32 =
      std::find(names.begin(), names.end(), "means.f32") != names.end();
  if (has_i8) {
    const size_t i8 = r.SectionBytes("means.i8");
    const size_t scales = r.SectionBytes("means.scale.f32");
    const size_t f32_equiv = i8 * sizeof(float);
    std::printf("embedding tier: int8, %zu bytes (codes %zu + scales %zu)"
                " = %.3fx of the %zu-byte f32 equivalent\n",
                i8 + scales, i8, scales,
                f32_equiv > 0
                    ? static_cast<double>(i8 + scales) / f32_equiv
                    : 0.0,
                f32_equiv);
  } else if (has_f32) {
    std::printf("embedding tier: f32, %zu bytes\n",
                r.SectionBytes("means.f32"));
  }
  return 0;
}

int Verify(const std::string& path) {
  // Layer 1: container integrity (magic, version, every checksum, section
  // table shape, byte coverage).
  auto reader = storage::SnapshotReader::Open(path);
  if (!reader.ok()) {
    std::fprintf(stderr, "container: FAIL (%s)\n",
                 reader.status().ToString().c_str());
    return 1;
  }
  std::printf("container: OK (%zu sections, %zu bytes, %s)\n",
              reader.value()->section_names().size(),
              reader.value()->file_bytes(),
              reader.value()->mmap_backed() ? "mmap" : "heap");
  reader.value().reset();
  // Layer 2: the contents decode into a servable engine (frozen-structure
  // invariants, model state shapes, exact block consumption).
  auto engine = index::SearchEngine::OpenSnapshot(path);
  if (!engine.ok()) {
    std::fprintf(stderr, "engine: FAIL (%s)\n",
                 engine.status().ToString().c_str());
    return 1;
  }
  std::printf("engine: OK (lsh %zu bytes, interval tree %zu bytes)\n",
              engine.value()->build_stats().lsh_memory_bytes,
              engine.value()->build_stats().interval_memory_bytes);
  return 0;
}

int Usage() {
  std::fprintf(stderr,
               "usage: snapshotctl build <out.fcmsnap>\n"
               "       snapshotctl inspect <file>\n"
               "       snapshotctl verify <file>\n");
  return 2;
}

}  // namespace
}  // namespace fcm

int main(int argc, char** argv) {
  if (argc != 3) return fcm::Usage();
  const std::string cmd = argv[1];
  const std::string path = argv[2];
  if (cmd == "build") return fcm::Build(path);
  if (cmd == "inspect") return fcm::Inspect(path);
  if (cmd == "verify") return fcm::Verify(path);
  return fcm::Usage();
}
