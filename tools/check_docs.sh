#!/usr/bin/env bash
# Doc-rot guard, registered as the `check_docs` ctest so tier-1 catches
# stale documentation:
#   1. every intra-repo markdown link in docs/*.md and README.md must
#      resolve (relative to the file containing it);
#   2. every src/ subdirectory must appear (as `src/<name>`) in
#      docs/ARCHITECTURE.md — a new subsystem lands with its map entry.
# External links (http/https/mailto) and pure #anchors are not checked.
# Usage: tools/check_docs.sh [repo_root]
set -euo pipefail

REPO_ROOT="${1:-"$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"}"
fail=0

for required in docs/ARCHITECTURE.md docs/SERVING.md docs/BENCHMARKS.md; do
  if [[ ! -f "$REPO_ROOT/$required" ]]; then
    echo "check_docs: missing $required" >&2
    fail=1
  fi
done

check_file_links() {
  local f="$1"
  local dir links link target
  dir="$(dirname "$f")"
  # Inline links: ](target). Targets with spaces are not used here and
  # would be quoted in markdown anyway.
  links="$(grep -oE '\]\([^) ]+\)' "$f" | sed -E 's/^\]\(//; s/\)$//' \
           || true)"
  while IFS= read -r link; do
    [[ -z "$link" ]] && continue
    case "$link" in
      http://*|https://*|mailto:*|'#'*) continue ;;
    esac
    target="${link%%#*}"
    [[ -z "$target" ]] && continue
    if [[ ! -e "$dir/$target" ]]; then
      echo "check_docs: broken link in ${f#"$REPO_ROOT/"}: $link" >&2
      fail=1
    fi
  done <<< "$links"
}

for f in "$REPO_ROOT"/docs/*.md "$REPO_ROOT/README.md"; do
  [[ -f "$f" ]] && check_file_links "$f"
done

ARCH="$REPO_ROOT/docs/ARCHITECTURE.md"
if [[ -f "$ARCH" ]]; then
  for d in "$REPO_ROOT"/src/*/; do
    name="$(basename "$d")"
    if ! grep -q "src/$name" "$ARCH"; then
      echo "check_docs: src/$name has no entry in docs/ARCHITECTURE.md" >&2
      fail=1
    fi
  done
fi

if [[ "$fail" -ne 0 ]]; then
  echo "check_docs: FAILED" >&2
  exit 1
fi
echo "check_docs: OK"
