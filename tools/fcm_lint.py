#!/usr/bin/env python3
"""fcm_lint: repo-invariant linter for the determinism & concurrency rules
the test suite cannot see (registered as the tier-1 `fcm_lint` ctest,
label `static`; see docs/ARCHITECTURE.md "Static analysis & invariant
enforcement").

Rules (all scoped to src/):

  unordered-iter   No iteration over std::unordered_map/unordered_set in
                   src/index or src/relevance: hash iteration order leaks
                   straight into ranked output (use SortedIds or sort the
                   result — see search_engine.cc).
  wall-clock       No rand()/std::random_device/time()/system_clock/
                   gettimeofday outside src/common/rng.* — randomness
                   flows through seeded common::Rng and time through
                   injected clocks (batch_controller takes `now`;
                   steady_clock is monotonic and allowed).
  float-order      A sort comparator over a float score field in
                   src/index or src/relevance must carry the documented
                   tie-break pattern (`a.x != b.x ? a.x > b.x : a.id <
                   b.id` — RankHits) or ties rank nondeterministically
                   across stdlibs.
  naked-mutex      No std::mutex/std::shared_mutex/std::condition_variable
                   (or std lock RAII types) outside
                   src/common/annotated_mutex.h: the annotated wrappers
                   are what make the clang -Wthread-safety build able to
                   prove lock discipline.
  cast-justify     reinterpret_cast outside src/storage and
                   src/common/simd* needs a `// fcm-lint:` justification
                   on the same or preceding line.
  epoch-pin        No raw `EngineEpoch*`/`EngineEpoch&` in src/index
                   outside the engine internals (search_engine.{h,cc},
                   ingest.{h,cc}, engine_snapshot.cc, index_segment.h):
                   a raw epoch pointer can outlive the EpochPin that
                   keeps its segments alive — hold the pin (a
                   shared_ptr) for the duration of the request instead.

Suppression: `// fcm-lint: disable=<rule>[,<rule>]` on the offending line
or the line directly above. `// fcm-lint: <free text>` is the cast
justification form (and also suppresses cast-justify on the next line).

Usage:
  fcm_lint.py [repo_root]   lint the tree (default: repo containing this
                            script); exit 1 on any violation
  fcm_lint.py --self-test   run the violation fixtures under
                            tools/lint_fixtures/; exit 1 on any mismatch
  fcm_lint.py --list-rules  print the rule table
"""

import os
import re
import sys

RULES = {
    "unordered-iter": "unordered-container iteration in ranking code "
                      "(hash-order nondeterminism)",
    "wall-clock": "ambient randomness/wall-clock read outside "
                  "src/common/rng.* (breaks reproducibility)",
    "float-order": "float sort comparator without the documented "
                   "tie-break pattern",
    "naked-mutex": "raw std mutex/condvar outside "
                   "src/common/annotated_mutex.h (bypasses thread-safety "
                   "annotations)",
    "cast-justify": "reinterpret_cast without a `// fcm-lint:` "
                    "justification",
    "epoch-pin": "raw EngineEpoch pointer/reference outside the engine "
                 "internals (hold an EpochPin for the request instead)",
}

RANKING_DIRS = ("src/index/", "src/relevance/")
RNG_FILES = ("src/common/rng.h", "src/common/rng.cc")
ANNOTATED_MUTEX = "src/common/annotated_mutex.h"
CAST_EXEMPT_PREFIXES = ("src/storage/",)
CAST_EXEMPT_GLOBS = ("src/common/simd",)  # simd.h, simd.cc, simd_avx2.cc...
# The engine internals that implement the epoch machinery itself — the
# only files allowed to touch EngineEpoch outside a pin.
EPOCH_PIN_EXEMPT = (
    "src/index/search_engine.h", "src/index/search_engine.cc",
    "src/index/ingest.h", "src/index/ingest.cc",
    "src/index/engine_snapshot.cc", "src/index/index_segment.h",
)

SUPPRESS_RE = re.compile(r"//\s*fcm-lint:\s*disable=([\w,-]+)")
JUSTIFY_RE = re.compile(r"//\s*fcm-lint:")

UNORDERED_DECL_RE = re.compile(
    r"\bunordered_(?:map|set)\s*<[^;{}]*>\s*&?\s*(\w+)\s*[;={(,)]")
UNORDERED_ALIAS_RE = re.compile(
    r"\busing\s+(\w+)\s*=\s*(?:std::)?unordered_(?:map|set)\b")
WALL_CLOCK_RE = re.compile(
    r"(?:(?<![\w.:>])rand\s*\(|\brandom_device\b|(?<![\w.:>_])time\s*\(|"
    r"\bsystem_clock\b|\bgettimeofday\b|\blocaltime\b|\bstrftime\b)")
NAKED_MUTEX_RE = re.compile(
    r"\bstd::(?:mutex|shared_mutex|timed_mutex|recursive_mutex|"
    r"condition_variable(?:_any)?|lock_guard|unique_lock|shared_lock|"
    r"scoped_lock)\b")
EPOCH_PIN_RE = re.compile(r"\bEngineEpoch\b\s*(?:const\b\s*)?[*&]")
SORT_CALL_RE = re.compile(
    r"\b(?:sort|stable_sort|partial_sort|nth_element|max_element|"
    r"min_element)\s*\(")
FLOAT_FIELD_RE = re.compile(
    r"[\w\)\]]\s*\.\s*(?:score|sim|similarity|dist|distance|first)\b"
    r"\s*[<>]")
TIEBREAK_RE = re.compile(r"!=|\bid\b|table_id|\bsecond\b|\bindex\b|\btie\b")


def strip_comment(line):
    """Code part of a line (string literals are rare enough here that a
    naive // split, guarded against ://, stays accurate)."""
    idx = 0
    while True:
        idx = line.find("//", idx)
        if idx < 0:
            return line
        if idx > 0 and line[idx - 1] == ":":  # http:// inside a string
            idx += 2
            continue
        return line[:idx]


class FileLinter:
    """Lints one file; regex + just enough context to keep the noise at
    zero (declared-name tracking for unordered containers, balanced-paren
    capture for sort comparators)."""

    def __init__(self, rel_path, text):
        self.rel = rel_path.replace(os.sep, "/")
        self.lines = text.splitlines()
        self.violations = []  # (line_no, rule, message)

    def suppressed(self, line_no, rule):
        """`// fcm-lint: disable=<rule>` on the line or the one above."""
        for candidate in (line_no, line_no - 1):
            if 1 <= candidate <= len(self.lines):
                m = SUPPRESS_RE.search(self.lines[candidate - 1])
                if m and rule in m.group(1).split(","):
                    return True
        return False

    def justified(self, line_no):
        """Any `// fcm-lint:` comment on the line or the one above."""
        for candidate in (line_no, line_no - 1):
            if 1 <= candidate <= len(self.lines):
                if JUSTIFY_RE.search(self.lines[candidate - 1]):
                    return True
        return False

    def add(self, line_no, rule, message):
        if not self.suppressed(line_no, rule):
            self.violations.append((line_no, rule, message))

    def in_ranking_dir(self):
        return any(self.rel.startswith(d) for d in RANKING_DIRS)

    def run(self):
        if self.rel.startswith("src/"):
            self.check_wall_clock()
            self.check_naked_mutex()
            self.check_cast_justify()
        if self.in_ranking_dir():
            self.check_unordered_iter()
            self.check_float_order()
        if self.rel.startswith("src/index/"):
            self.check_epoch_pin()
        return self.violations

    # ---- wall-clock ----
    def check_wall_clock(self):
        if self.rel in RNG_FILES:
            return
        for i, raw in enumerate(self.lines, 1):
            m = WALL_CLOCK_RE.search(strip_comment(raw))
            if m:
                self.add(i, "wall-clock",
                         f"ambient nondeterminism source `{m.group(0).strip()}`"
                         " (route randomness through common::Rng and time "
                         "through an injected clock)")

    # ---- naked-mutex ----
    def check_naked_mutex(self):
        if self.rel == ANNOTATED_MUTEX:
            return
        for i, raw in enumerate(self.lines, 1):
            m = NAKED_MUTEX_RE.search(strip_comment(raw))
            if m:
                self.add(i, "naked-mutex",
                         f"`{m.group(0)}` outside {ANNOTATED_MUTEX} (use "
                         "common::Mutex/MutexLock/CondVar so thread-safety "
                         "annotations apply)")

    # ---- cast-justify ----
    def check_cast_justify(self):
        if any(self.rel.startswith(p) for p in CAST_EXEMPT_PREFIXES):
            return
        if any(self.rel.startswith(g) for g in CAST_EXEMPT_GLOBS):
            return
        for i, raw in enumerate(self.lines, 1):
            if "reinterpret_cast" in strip_comment(raw):
                if not self.justified(i):
                    self.add(i, "cast-justify",
                             "reinterpret_cast needs a `// fcm-lint: "
                             "<why this aliasing is sound>` comment here "
                             "or on the line above")

    # ---- epoch-pin ----
    def check_epoch_pin(self):
        if self.rel in EPOCH_PIN_EXEMPT:
            return
        for i, raw in enumerate(self.lines, 1):
            m = EPOCH_PIN_RE.search(strip_comment(raw))
            if m:
                self.add(i, "epoch-pin",
                         f"`{m.group(0).strip()}` outside the engine "
                         "internals — a raw epoch pointer can outlive the "
                         "pin that keeps its segments alive; hold the "
                         "EpochPin (shared_ptr) for the whole request")

    # ---- unordered-iter ----
    def check_unordered_iter(self):
        # Pass 1: names declared (or aliased) as unordered containers in
        # this file. Member declarations count too — iteration anywhere in
        # the file over those names is what leaks hash order.
        names = set()
        aliases = set()
        for raw in self.lines:
            code = strip_comment(raw)
            am = UNORDERED_ALIAS_RE.search(code)
            if am:
                aliases.add(am.group(1))
            for dm in UNORDERED_DECL_RE.finditer(code):
                names.add(dm.group(1))
        for alias in aliases:
            alias_decl = re.compile(
                r"\b" + re.escape(alias) + r"\s*&?\s*(\w+)\s*[;={(]")
            for raw in self.lines:
                dm = alias_decl.search(strip_comment(raw))
                if dm and dm.group(1) != alias:
                    names.add(dm.group(1))
        if not names:
            return
        # Pass 2: range-for or .begin() iteration over those names.
        name_alt = "|".join(sorted(re.escape(n) for n in names))
        range_for = re.compile(
            r"\bfor\s*\([^;)]*:\s*\*?(?:\w+[.->]+)*(" + name_alt + r")\s*\)")
        iter_for = re.compile(
            r"\bfor\s*\([^;)]*=\s*(" + name_alt + r")\s*\.\s*c?begin\s*\(")
        for i, raw in enumerate(self.lines, 1):
            code = strip_comment(raw)
            m = range_for.search(code) or iter_for.search(code)
            if m:
                self.add(i, "unordered-iter",
                         f"iteration over unordered container `{m.group(1)}`"
                         " feeds hash order into a ranking path (sort the "
                         "ids first — see SortedIds in search_engine.cc)")

    # ---- float-order ----
    def check_float_order(self):
        # For each sort-family call, capture through the matching close
        # paren (joining lines) and inspect any lambda comparator.
        text = "\n".join(self.lines)
        for m in SORT_CALL_RE.finditer(text):
            start = m.end() - 1
            depth = 0
            end = start
            for j in range(start, min(len(text), start + 2000)):
                if text[j] == "(":
                    depth += 1
                elif text[j] == ")":
                    depth -= 1
                    if depth == 0:
                        end = j
                        break
            call = text[start:end + 1]
            if "[" not in call:  # No lambda comparator: default ordering.
                continue
            body = call[call.index("["):]
            if FLOAT_FIELD_RE.search(body) and not TIEBREAK_RE.search(body):
                line_no = text.count("\n", 0, m.start()) + 1
                self.add(line_no, "float-order",
                         "float comparator without a tie-break: rank ties "
                         "deterministically (`a.x != b.x ? a.x > b.x : "
                         "a.id < b.id` — see RankHits)")


def iter_source_files(repo_root):
    src = os.path.join(repo_root, "src")
    for dirpath, _, filenames in os.walk(src):
        for name in sorted(filenames):
            if name.endswith((".h", ".cc", ".cpp", ".hpp")):
                full = os.path.join(dirpath, name)
                yield os.path.relpath(full, repo_root), full


def lint_tree(repo_root):
    failures = 0
    for rel, full in iter_source_files(repo_root):
        with open(full, encoding="utf-8") as f:
            text = f.read()
        for line_no, rule, message in FileLinter(rel, text).run():
            print(f"{rel}:{line_no}: [{rule}] {message}")
            failures += 1
    if failures:
        print(f"fcm_lint: {failures} violation(s)", file=sys.stderr)
        return 1
    print("fcm_lint: OK")
    return 0


# ---- self-test over the violation fixtures ----
#
# Fixture files live in tools/lint_fixtures/ and look like normal C++
# sources; a line that must be flagged carries a `// expect[<rule>]`
# marker (the marker is not a suppression). Lines exercising suppressions
# carry real `// fcm-lint: disable=` comments and must NOT be flagged.
EXPECT_RE = re.compile(r"//\s*expect\[([\w-]+)\]")

# Each fixture lints as if it lived at this path (rules are path-scoped).
FIXTURE_PATHS = {
    "unordered_iter.cc": "src/index/fixture.cc",
    "wall_clock.cc": "src/common/fixture.cc",
    "float_order.cc": "src/relevance/fixture.cc",
    "naked_mutex.cc": "src/common/fixture.cc",
    "cast_justify.cc": "src/common/fixture.cc",
    "exempt_paths.cc": "src/storage/fixture.cc",
    "epoch_pin.cc": "src/index/fixture.cc",
}


def self_test(fixtures_dir):
    failures = []
    seen_rules = set()
    for name in sorted(os.listdir(fixtures_dir)):
        if not name.endswith(".cc"):
            continue
        rel = FIXTURE_PATHS.get(name)
        if rel is None:
            failures.append(f"{name}: no entry in FIXTURE_PATHS")
            continue
        with open(os.path.join(fixtures_dir, name), encoding="utf-8") as f:
            text = f.read()
        expected = {}
        for i, line in enumerate(text.splitlines(), 1):
            m = EXPECT_RE.search(line)
            if m:
                expected.setdefault(i, set()).add(m.group(1))
        got = {}
        for line_no, rule, _ in FileLinter(rel, text).run():
            got.setdefault(line_no, set()).add(rule)
            seen_rules.add(rule)
        for line_no, rules in sorted(expected.items()):
            missing = rules - got.get(line_no, set())
            for rule in sorted(missing):
                failures.append(
                    f"{name}:{line_no}: expected [{rule}] but the linter "
                    "did not flag it")
        for line_no, rules in sorted(got.items()):
            surplus = rules - expected.get(line_no, set())
            for rule in sorted(surplus):
                failures.append(
                    f"{name}:{line_no}: linter flagged [{rule}] on a line "
                    "with no expect marker (false positive or a broken "
                    "suppression)")
    missing_rules = set(RULES) - seen_rules
    for rule in sorted(missing_rules):
        failures.append(
            f"rule [{rule}] has no firing fixture — every rule must be "
            "covered by at least one known violation")
    if failures:
        for f in failures:
            print(f"fcm_lint --self-test: {f}", file=sys.stderr)
        print(f"fcm_lint --self-test: FAILED ({len(failures)} problem(s))",
              file=sys.stderr)
        return 1
    print("fcm_lint --self-test: OK "
          f"({len(seen_rules)} rule(s) exercised)")
    return 0


def main(argv):
    script_dir = os.path.dirname(os.path.abspath(__file__))
    if "--list-rules" in argv:
        for rule, desc in RULES.items():
            print(f"{rule:16s} {desc}")
        return 0
    if "--self-test" in argv:
        return self_test(os.path.join(script_dir, "lint_fixtures"))
    repo_root = argv[1] if len(argv) > 1 else os.path.dirname(script_dir)
    if not os.path.isdir(os.path.join(repo_root, "src")):
        print(f"fcm_lint: {repo_root} has no src/ directory", file=sys.stderr)
        return 2
    return lint_tree(repo_root)


if __name__ == "__main__":
    sys.exit(main(sys.argv))
