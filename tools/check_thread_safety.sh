#!/usr/bin/env bash
# check_thread_safety.sh — prove the clang thread-safety annotation layer
# actually analyzes (registered as the tier-1 `thread_safety_annotations`
# ctest, label `static`).
#
# Three stages, all under `clang++ -fsyntax-only -Wthread-safety
# -Werror=thread-safety`:
#   1. positive probe: a correct Mutex/MutexLock/CondVar usage compiles;
#   2. negative probe: a deliberately broken lock pattern (guarded field
#      touched without the lock, Unlock of an unheld mutex) FAILS to
#      compile — guards against the macros silently expanding to nothing;
#   3. tree check: every migrated translation unit in src/ passes the
#      analysis.
#
# Without clang on PATH (the annotations are no-ops under gcc) the script
# exits 77, which ctest reports as SKIP via SKIP_RETURN_CODE.
#
# Usage: check_thread_safety.sh [repo_root]

set -euo pipefail

REPO_ROOT="${1:-$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)}"

CLANG=""
for cand in clang++ clang++-20 clang++-19 clang++-18 clang++-17 clang++-16 \
            clang++-15 clang++-14; do
  if command -v "$cand" >/dev/null 2>&1; then
    CLANG="$cand"
    break
  fi
done

if [[ -z "$CLANG" ]]; then
  echo "thread_safety_annotations: no clang++ on PATH — annotations are" \
       "no-ops under this toolchain; SKIPPED (run on a machine with clang" \
       "to exercise -Wthread-safety)."
  exit 77
fi

TSA_FLAGS=(-std=c++17 -fsyntax-only -Wthread-safety -Werror=thread-safety
           -I "$REPO_ROOT/src")
TMPDIR_PROBE="$(mktemp -d)"
trap 'rm -rf "$TMPDIR_PROBE"' EXIT

# ---- 1. positive probe -------------------------------------------------
cat > "$TMPDIR_PROBE/good.cc" <<'EOF'
#include "common/annotated_mutex.h"

class Counter {
 public:
  void Add(int d) {
    fcm::common::MutexLock lk(&mu_);
    value_ += d;
    cv_.NotifyAll();
  }
  int Get() const {
    fcm::common::MutexLock lk(&mu_);
    return value_;
  }

 private:
  bool NonZeroLocked() const FCM_REQUIRES(mu_) { return value_ != 0; }

  mutable fcm::common::Mutex mu_;
  fcm::common::CondVar cv_;
  int value_ FCM_GUARDED_BY(mu_) = 0;
};

int main() {
  Counter c;
  c.Add(1);
  return c.Get() - 1;
}
EOF
if ! "$CLANG" "${TSA_FLAGS[@]}" "$TMPDIR_PROBE/good.cc"; then
  echo "thread_safety_annotations: FAIL — correct annotated locking did" \
       "not compile under -Wthread-safety (annotation layer is broken)." >&2
  exit 1
fi
echo "  [1/3] positive probe: correct locking compiles"

# ---- 2. negative probe -------------------------------------------------
cat > "$TMPDIR_PROBE/bad.cc" <<'EOF'
#include "common/annotated_mutex.h"

class Racy {
 public:
  // Guarded field touched without the lock: must be a -Wthread-safety error.
  void Add(int d) { value_ += d; }
  // Unlock of a mutex this function never acquired: also an error.
  void Drop() { mu_.Unlock(); }

 private:
  fcm::common::Mutex mu_;
  int value_ FCM_GUARDED_BY(mu_) = 0;
};

int main() {
  Racy r;
  r.Add(1);
  return 0;
}
EOF
if "$CLANG" "${TSA_FLAGS[@]}" "$TMPDIR_PROBE/bad.cc" 2>/dev/null; then
  echo "thread_safety_annotations: FAIL — a guarded-field race compiled" \
       "cleanly; the capability macros are expanding to nothing under" \
       "clang." >&2
  exit 1
fi
echo "  [2/3] negative probe: broken locking rejected"

# ---- 3. whole-tree analysis -------------------------------------------
failures=0
while IFS= read -r tu; do
  if ! "$CLANG" "${TSA_FLAGS[@]}" "$tu"; then
    echo "thread_safety_annotations: analysis failed for $tu" >&2
    failures=$((failures + 1))
  fi
done < <(find "$REPO_ROOT/src" -name '*.cc' | sort)

if [[ "$failures" -ne 0 ]]; then
  echo "thread_safety_annotations: FAIL — $failures translation unit(s)" \
       "violate the lock annotations." >&2
  exit 1
fi
echo "  [3/3] tree analysis: all src/ translation units pass -Wthread-safety"
echo "thread_safety_annotations: OK"
