// fcm_lint fixture: epoch-pin rule (linted as src/index/fixture.cc —
// NOT one of the exempt engine-internal files, so raw EngineEpoch
// pointers/references must be flagged).
#include <memory>

namespace fcm::index {

class EngineEpoch;
using EpochPin = std::shared_ptr<const EngineEpoch>;

void BadRawPointer(const EngineEpoch* epoch);   // expect[epoch-pin]
void BadRawReference(const EngineEpoch& epoch); // expect[epoch-pin]

struct BadMember {
  EngineEpoch* current = nullptr;  // expect[epoch-pin]
};

// Holding the pin is the sanctioned form: the shared_ptr keeps the
// epoch's segments alive for the whole request.
void GoodPinned(const EpochPin& epoch);
void GoodPinnedByValue(EpochPin epoch);

// Mentioning the type without taking a raw pointer/reference is fine.
// (EngineEpoch is the payload; EpochPin is the handle.)
void GoodTypeMention();  // returns stats about the EngineEpoch chain

void SuppressedEscape() {
  // fcm-lint: disable=epoch-pin
  EngineEpoch* scratch = nullptr;
  (void)scratch;
}

}  // namespace fcm::index
