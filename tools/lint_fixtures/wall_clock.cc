// fcm_lint fixture: wall-clock rule (linted as src/common/fixture.cc).
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

long Bad() {
  long x = rand();                           // expect[wall-clock]
  std::random_device rd;                     // expect[wall-clock]
  x += static_cast<long>(rd());
  x += static_cast<long>(time(nullptr));     // expect[wall-clock]
  auto wall = std::chrono::system_clock::now();  // expect[wall-clock]
  x += wall.time_since_epoch().count();
  return x;
}

long Good() {
  // Monotonic clocks are allowed (latency measurement, deadlines):
  auto t0 = std::chrono::steady_clock::now();
  // Identifiers merely containing "time"/"rand" must not trip the rule:
  long build_time(0);
  long strand(1);
  (void)strand;
  // Sanctioned escape hatch for a deliberate wall read:
  auto wall = std::chrono::system_clock::now();  // fcm-lint: disable=wall-clock
  return build_time + wall.time_since_epoch().count() +
         t0.time_since_epoch().count();
}
