// fcm_lint fixture: cast-justify rule (linted as src/common/fixture.cc).
#include <cstdint>

float Bad(const char* bytes) {
  const auto* f = reinterpret_cast<const float*>(bytes);  // expect[cast-justify]
  return *f;
}

float GoodSameLine(const char* bytes) {
  // fcm-lint: serialized little-endian float32, alignment checked by caller
  const auto* f = reinterpret_cast<const float*>(bytes);
  return *f;
}

const char* GoodPrevLine(const float* values) {
  return reinterpret_cast<const char*>(values);  // fcm-lint: byte view for I/O
}
