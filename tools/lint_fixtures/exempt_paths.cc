// fcm_lint fixture: path exemptions (linted as src/storage/fixture.cc).
// src/storage is the mmap/zero-copy layer: reinterpret_cast is its bread
// and butter and needs no per-site justification there. The other rules
// still apply.
#include <cstdint>
#include <cstdlib>

float NoJustificationNeededHere(const char* bytes) {
  return *reinterpret_cast<const float*>(bytes);
}

long StillNoWallClock() {
  return rand();  // expect[wall-clock]
}
