// fcm_lint fixture: float-order rule (linted as src/relevance/fixture.cc).
#include <algorithm>
#include <vector>

struct Hit {
  int id;
  float score;
};

void Bad(std::vector<Hit>& hits) {
  std::sort(hits.begin(), hits.end(),  // expect[float-order]
            [](const Hit& a, const Hit& b) { return a.score > b.score; });
}

void Good(std::vector<Hit>& hits) {
  // The documented tie-break pattern (see RankHits in search_engine.cc):
  std::sort(hits.begin(), hits.end(), [](const Hit& a, const Hit& b) {
    return a.score != b.score ? a.score > b.score : a.id < b.id;
  });
  // Sorting by an integral key needs no tie-break:
  std::sort(hits.begin(), hits.end(),
            [](const Hit& a, const Hit& b) { return a.id < b.id; });
  // Default ordering of scalars is fine too:
  std::vector<int> ids;
  std::sort(ids.begin(), ids.end());
  // Suppressible when ties are provably absent:
  // fcm-lint: disable=float-order
  std::stable_sort(hits.begin(), hits.end(),
                   [](const Hit& a, const Hit& b) { return a.score > b.score; });
}
