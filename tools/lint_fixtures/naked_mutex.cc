// fcm_lint fixture: naked-mutex rule (linted as src/common/fixture.cc).
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

struct Bad {
  std::mutex mu;                 // expect[naked-mutex]
  std::shared_mutex smu;         // expect[naked-mutex]
  std::condition_variable cv;    // expect[naked-mutex]
};

void BadLocking(Bad& b) {
  std::lock_guard<std::mutex> lk(b.mu);        // expect[naked-mutex]
}

void BadUnique(Bad& b) {
  std::unique_lock<std::mutex> lk(b.mu);       // expect[naked-mutex]
}

struct Interop {
  // Wrapping a std primitive is exactly what annotated_mutex.h does; any
  // other site must justify why it cannot use common::Mutex.
  // fcm-lint: disable=naked-mutex
  std::mutex raw_for_c_api;
};
