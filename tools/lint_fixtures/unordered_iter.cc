// fcm_lint fixture: unordered-iter rule (linted as src/index/fixture.cc).
// Lines with an expect marker MUST be flagged; every other line MUST
// stay clean (suppressions included).
#include <unordered_map>
#include <unordered_set>
#include <vector>

using IdSet = std::unordered_set<int>;

struct Index {
  std::unordered_map<int, float> scores;
  IdSet live;
};

int Sum(const Index& idx) {
  std::unordered_set<int> seen;
  int total = 0;
  for (const auto& kv : idx.scores) {  // expect[unordered-iter]
    total += kv.first;
  }
  for (int id : idx.live) {  // expect[unordered-iter]
    total += id;
  }
  for (auto it = seen.begin(); it != seen.end(); ++it) {  // expect[unordered-iter]
    total += *it;
  }
  // Membership tests and sorted materialization are fine:
  if (seen.count(3) != 0) ++total;
  std::vector<int> sorted_ids(seen.begin(), seen.end());
  // Justified iteration (order does not reach output) is suppressible:
  // fcm-lint: disable=unordered-iter
  for (int id : seen) total += id;
  return total;
}
