#!/usr/bin/env bash
# Drives the full static-analysis & hygiene gauntlet (docs/ARCHITECTURE.md
# "Static analysis & invariant enforcement"):
#
#   1. fcm_lint         repo-invariant linter, tree must be clean
#   2. fcm_lint --self-test   every rule still fires on its fixtures
#   3. thread-safety    clang -Wthread-safety probes + whole-tree analysis
#                       (skipped loudly when no clang++ is on PATH)
#   4. warn-clean       full tree configured with -DFCM_WERROR=ON: -Wall
#                       -Wextra promoted to errors, plus
#                       -Werror=thread-safety under clang; suite must pass
#   5. sanitizers       one build + full ctest run per FCM_SANITIZE value
#                       (undefined runs with -fno-sanitize-recover, so any
#                       UB aborts the offending test)
#
# Each stage fails loudly and independently; the script stops at the first
# failure so the log ends at the culprit. Build trees are kept under
# build-sa-* so re-runs are incremental.
#
# Env knobs:
#   FCM_SA_SANITIZERS   space-separated subset of "undefined address
#                       thread" (default: all three)
#   FCM_SA_JOBS         parallel build jobs (default: nproc)
# Usage: tools/run_static_analysis.sh
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
JOBS="${FCM_SA_JOBS:-$(nproc)}"
SANITIZERS="${FCM_SA_SANITIZERS:-undefined address thread}"

stage() { echo; echo "==== [$1] $2 ===="; }

fail() {
  echo "run_static_analysis: FAILED at stage [$1] — $2" >&2
  exit 1
}

stage lint "fcm_lint over src/"
python3 "$REPO_ROOT/tools/fcm_lint.py" "$REPO_ROOT" \
  || fail lint "repo-invariant violations above"

stage lint-selftest "fcm_lint fixtures still fire"
python3 "$REPO_ROOT/tools/fcm_lint.py" --self-test \
  || fail lint-selftest "a lint rule or suppression regressed"

stage thread-safety "clang -Wthread-safety annotation check"
rc=0
bash "$REPO_ROOT/tools/check_thread_safety.sh" "$REPO_ROOT" || rc=$?
if [[ "$rc" -ne 0 && "$rc" -ne 77 ]]; then
  fail thread-safety "annotation analysis failed (rc=$rc)"
fi

stage warn-clean "full build + suite under -DFCM_WERROR=ON"
WARN_DIR="$REPO_ROOT/build-sa-werror"
cmake -B "$WARN_DIR" -S "$REPO_ROOT" -DCMAKE_BUILD_TYPE=Release \
      -DFCM_WERROR=ON >/dev/null \
  || fail warn-clean "configure failed"
cmake --build "$WARN_DIR" -j "$JOBS" \
  || fail warn-clean "-Wall -Wextra is not warning-clean (see errors above)"
(cd "$WARN_DIR" && ctest --output-on-failure) \
  || fail warn-clean "suite failed under the -Werror build"

for san in $SANITIZERS; do
  stage "san-$san" "full suite under FCM_SANITIZE=$san"
  SAN_DIR="$REPO_ROOT/build-sa-$san"
  cmake -B "$SAN_DIR" -S "$REPO_ROOT" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DFCM_SANITIZE="$san" >/dev/null \
    || fail "san-$san" "configure failed"
  cmake --build "$SAN_DIR" -j "$JOBS" \
    || fail "san-$san" "build failed"
  (cd "$SAN_DIR" && ctest --output-on-failure) \
    || fail "san-$san" "sanitizer findings above"
done

echo
echo "run_static_analysis: OK — lint clean, warning-clean under -Werror," \
     "suite green under: $SANITIZERS"
