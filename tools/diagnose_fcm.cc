// Diagnostic harness for FCM training health: tracks retrieval quality and
// score separation (source table vs. ground-truth near-duplicates vs.
// background tables) across training epochs. Not part of the paper
// reproduction; used to tune the CPU-scale training recipe.

#include <cstdio>
#include <vector>

#include "baselines/fcm_method.h"
#include "bench/bench_common.h"
#include "eval/experiment.h"
#include "eval/metrics.h"

namespace fcm {
namespace {

struct Separation {
  double mean_source = 0.0;   // Score of the query's source table.
  double mean_relevant = 0.0; // Mean score over ground-truth tables.
  double mean_background = 0.0;
  double prec = 0.0;
  double ndcg = 0.0;
};

Separation Measure(const core::FcmModel& model,
                   const benchgen::Benchmark& bench, int k) {
  Separation sep;
  int nq = 0;
  for (const auto& query : bench.queries) {
    if (query.extracted.lines.empty()) continue;
    const auto chart_rep =
        core::FcmModel::Detach(model.EncodeChart(query.extracted));
    std::vector<std::pair<double, table::TableId>> scored;
    double source = 0.0, relevant_sum = 0.0, background_sum = 0.0;
    int n_rel = 0, n_bg = 0;
    std::vector<char> is_rel(bench.lake.size(), 0);
    for (const auto tid : query.relevant) is_rel[tid] = 1;
    for (const auto& t : bench.lake.tables()) {
      const auto rep = core::FcmModel::Detach(model.EncodeDataset(t));
      const double s =
          model.ScoreEncoded(chart_rep, rep, query.y_lo, query.y_hi);
      scored.emplace_back(s, t.id());
      if (t.id() == query.source_table) source = s;
      if (is_rel[t.id()]) {
        relevant_sum += s;
        ++n_rel;
      } else {
        background_sum += s;
        ++n_bg;
      }
    }
    std::sort(scored.begin(), scored.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });
    std::vector<table::TableId> ranked;
    for (int i = 0; i < k && i < static_cast<int>(scored.size()); ++i) {
      ranked.push_back(scored[i].second);
    }
    sep.prec += eval::PrecisionAtK(ranked, query.relevant, k);
    sep.ndcg += eval::NdcgAtK(ranked, query.relevant, k);
    sep.mean_source += source;
    if (n_rel > 0) sep.mean_relevant += relevant_sum / n_rel;
    if (n_bg > 0) sep.mean_background += background_sum / n_bg;
    ++nq;
  }
  if (nq > 0) {
    sep.prec /= nq;
    sep.ndcg /= nq;
    sep.mean_source /= nq;
    sep.mean_relevant /= nq;
    sep.mean_background /= nq;
  }
  return sep;
}

void Run() {
  const bench::BenchScale scale = bench::ReadScale();
  benchgen::Benchmark b = bench::BuildBench(scale);
  std::printf("lake=%zu queries=%zu triplets=%zu\n", b.lake.size(),
              b.queries.size(), b.training.size());

  core::FcmConfig config = bench::DefaultModelConfig(scale);
  core::FcmModel model(config);
  core::TrainOptions options = bench::DefaultTrainOptions(scale);

  {
    // Descriptor-bridge-only ranking quality (no learned parameters).
    double prec = 0.0, ndcg = 0.0;
    int nq = 0;
    for (const auto& query : b.queries) {
      if (query.extracted.lines.empty()) continue;
      const auto chart_rep =
          core::FcmModel::Detach(model.EncodeChart(query.extracted));
      std::vector<std::pair<double, table::TableId>> scored;
      for (const auto& t : b.lake.tables()) {
        const auto rep = core::FcmModel::Detach(model.EncodeDataset(t));
        scored.emplace_back(
            model.DescriptorScore(chart_rep, rep, query.y_lo, query.y_hi),
            t.id());
      }
      std::sort(scored.begin(), scored.end(),
                [](const auto& a, const auto& b) { return a.first > b.first; });
      std::vector<table::TableId> ranked;
      for (int i = 0; i < scale.k && i < static_cast<int>(scored.size()); ++i) {
        ranked.push_back(scored[static_cast<size_t>(i)].second);
      }
      prec += eval::PrecisionAtK(ranked, query.relevant, scale.k);
      ndcg += eval::NdcgAtK(ranked, query.relevant, scale.k);
      ++nq;
    }
    std::printf("descriptor-only: prec=%.3f ndcg=%.3f\n",
                nq > 0 ? prec / nq : 0.0, nq > 0 ? ndcg / nq : 0.0);
  }

  const Separation before = Measure(model, b, scale.k);
  std::printf(
      "epoch %2d: prec=%.3f ndcg=%.3f source=%.3f relevant=%.3f bg=%.3f\n",
      -1, before.prec, before.ndcg, before.mean_source, before.mean_relevant,
      before.mean_background);

  options.epoch_callback = [&](int epoch, double loss) {
    if ((epoch + 1) % 2 == 0 || epoch == 0) {
      const Separation sep = Measure(model, b, scale.k);
      std::printf(
          "epoch %2d: loss=%.4f prec=%.3f ndcg=%.3f source=%.3f "
          "relevant=%.3f bg=%.3f\n",
          epoch, loss, sep.prec, sep.ndcg, sep.mean_source,
          sep.mean_relevant, sep.mean_background);
      std::fflush(stdout);
    }
    return true;
  };
  const core::TrainStats stats = core::TrainFcm(&model, b.lake, b.training, options);
  const Separation final = Measure(model, b, scale.k);
  std::printf(
      "final (best epoch %d): prec=%.3f ndcg=%.3f source=%.3f "
      "relevant=%.3f bg=%.3f\n",
      stats.best_epoch, final.prec, final.ndcg, final.mean_source,
      final.mean_relevant, final.mean_background);
}

}  // namespace
}  // namespace fcm

int main() {
  fcm::Run();
  return 0;
}
